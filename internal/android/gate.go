package android

import (
	"sync"
	"time"
)

// Gate is a best-effort rendezvous used to force the thread interleaving
// that triggers a race (the paper "made a small Android application in
// which one thread issues a notification, and a second thread expands the
// status bar, in the same time"). Each party calls Sync while holding its
// first lock; once all parties have arrived, everyone proceeds to the
// crossing acquisition simultaneously.
//
// The timeout makes the gate safe under avoidance: when Dimmunix suspends
// one party before it can arrive, the other party times out and proceeds
// alone instead of hanging the scenario.
type Gate struct {
	mu      sync.Mutex
	needed  int
	arrived int
	opened  chan struct{}
	timeout time.Duration
}

// NewGate creates a gate for the given number of parties.
func NewGate(parties int, timeout time.Duration) *Gate {
	return &Gate{
		needed:  parties,
		opened:  make(chan struct{}),
		timeout: timeout,
	}
}

// Sync signals arrival and blocks until all parties arrive or the timeout
// elapses. It reports whether the rendezvous completed.
func (g *Gate) Sync() bool {
	g.mu.Lock()
	g.arrived++
	if g.arrived == g.needed {
		close(g.opened)
	}
	g.mu.Unlock()

	select {
	case <-g.opened:
		return true
	case <-time.After(g.timeout):
		return false
	}
}
