package android

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// testPhoneConfig returns a fast-reacting phone for tests.
func testPhoneConfig(dimmunix bool, store core.HistoryStore) PhoneConfig {
	return PhoneConfig{
		Dimmunix:          dimmunix,
		History:           store,
		WatchdogInterval:  20 * time.Millisecond,
		WatchdogThreshold: 700 * time.Millisecond,
		GateTimeout:       150 * time.Millisecond,
	}
}

const scenarioTimeout = 30 * time.Second

// TestPhoneNormalNotificationFlow checks the services work when the race
// window is not forced: a notification lands and the panel expands.
func TestPhoneNormalNotificationFlow(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	ss := ph.System()

	user, err := ss.Proc.Start("user", func(th *vm.Thread) {
		ss.NMS.EnqueueNotificationWithTag(th, "com.example", "hello", 1)
		ss.StatusBar.ExpandNotificationsPanel(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-user.Done()
	if user.Err() != nil {
		t.Fatal(user.Err())
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && ss.StatusBar.Expansions() == 0 {
		time.Sleep(time.Millisecond)
	}
	if ss.StatusBar.Expansions() == 0 {
		t.Fatal("panel never expanded")
	}

	check, err := ss.Proc.Start("check", func(th *vm.Thread) {
		if n := ss.NMS.Count(th); n != 1 {
			t.Errorf("notification count = %d, want 1", n)
		}
		if n := ss.StatusBar.IconCount(th); n != 1 {
			t.Errorf("icon count = %d, want 1", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-check.Done()
}

// TestPhoneDeadlockImmunity is experiment E1 end to end, exactly the
// paper's §5 narrative: the forced race freezes the phone's interface
// once; Dimmunix detects the deadlock and saves its signature; after a
// reboot the same race is avoided with no user intervention.
func TestPhoneDeadlockImmunity(t *testing.T) {
	store := core.NewMemHistory()
	ph := NewPhone(testPhoneConfig(true, store))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	// Run 1: the phone freezes; the watchdog notices.
	out, err := ph.RunNotificationScenario(scenarioTimeout)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if out != OutcomeFroze {
		t.Fatalf("run 1 outcome = %v, want froze", out)
	}
	sys1 := ph.System()
	if got := sys1.Proc.Dimmunix().Stats().DeadlocksDetected; got != 1 {
		t.Fatalf("run 1 detected %d deadlocks, want 1", got)
	}
	if store.Len() != 1 {
		t.Fatalf("history has %d signatures after run 1, want 1", store.Len())
	}

	// Reboot: fresh processes reload the history.
	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}
	if ph.Boots() != 2 {
		t.Fatalf("boots = %d, want 2", ph.Boots())
	}
	sys2 := ph.System()
	if got := sys2.Proc.Dimmunix().HistorySize(); got != 1 {
		t.Fatalf("rebooted system loaded %d signatures, want 1", got)
	}

	// Run 2: same forced race — now avoided.
	out, err = ph.RunNotificationScenario(scenarioTimeout)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if out != OutcomeCompleted {
		t.Fatalf("run 2 outcome = %v, want completed", out)
	}
	st := sys2.Proc.Dimmunix().Stats()
	if st.DeadlocksDetected != 0 || st.DuplicateDeadlocks != 0 {
		t.Errorf("run 2 deadlocked: %+v", st)
	}
	if st.Yields == 0 {
		t.Error("run 2 must have engaged avoidance")
	}
}

// TestVanillaPhoneKeepsFreezing is the baseline: without Dimmunix the
// phone freezes on every encounter of the race — "without deadlock
// immunity, the phone may freeze whenever the user expands the status bar
// while notifications are sent".
func TestVanillaPhoneKeepsFreezing(t *testing.T) {
	ph := NewPhone(testPhoneConfig(false, nil))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	for run := 1; run <= 2; run++ {
		out, err := ph.RunNotificationScenario(scenarioTimeout)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if out != OutcomeFroze {
			t.Fatalf("run %d outcome = %v, want froze (vanilla has no immunity)", run, out)
		}
		if err := ph.Reboot(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPhoneImmunityFromFirstBoot: with the signature already on flash
// (from a previous life), even the first boot is immune.
func TestPhoneImmunityFromFirstBoot(t *testing.T) {
	store := core.NewMemHistory()
	// Life 1 discovers the deadlock.
	ph1 := NewPhone(testPhoneConfig(true, store))
	if err := ph1.Boot(); err != nil {
		t.Fatal(err)
	}
	if out, err := ph1.RunNotificationScenario(scenarioTimeout); err != nil || out != OutcomeFroze {
		t.Fatalf("life 1: out=%v err=%v", out, err)
	}
	ph1.Shutdown()

	// Life 2 boots already immune.
	ph2 := NewPhone(testPhoneConfig(true, store))
	if err := ph2.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph2.Shutdown()
	if out, err := ph2.RunNotificationScenario(scenarioTimeout); err != nil || out != OutcomeCompleted {
		t.Fatalf("life 2: out=%v err=%v", out, err)
	}
}

func TestPhoneForkApp(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	app, err := ph.ForkApp("com.example.app")
	if err != nil {
		t.Fatal(err)
	}
	if app.Dimmunix() == nil {
		t.Error("forked app must run with immunity")
	}
	if app.Dimmunix() == ph.System().Proc.Dimmunix() {
		t.Error("app must have its own per-process core")
	}
}

func TestPhoneLifecycleErrors(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if _, err := ph.ForkApp("x"); err == nil {
		t.Error("ForkApp before Boot must fail")
	}
	if _, err := ph.RunNotificationScenario(time.Second); err == nil {
		t.Error("scenario before Boot must fail")
	}
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := ph.Boot(); err == nil {
		t.Error("double Boot must fail")
	}
	ph.Shutdown()
	ph.Shutdown() // idempotent
}
