package android

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// PhoneConfig configures a simulated phone.
type PhoneConfig struct {
	// Dimmunix enables platform-wide deadlock immunity (the Android
	// Dimmunix build); false is the vanilla Android baseline.
	Dimmunix bool
	// History is the persistent deadlock history shared by every process
	// across reboots (the on-flash history file). Required when Dimmunix
	// is on and immunity should survive reboots.
	History core.HistoryStore
	// Immunity, when non-nil, is the device's live-propagation hub: it
	// supersedes History as the processes' store (give the hub the
	// on-flash store instead), every forked process subscribes for
	// hot-installs, and the system server registers the "dimmunix"
	// service. The hub outlives reboots — a rebooted phone's processes
	// resubscribe to the same hub, like the system re-binding a service.
	Immunity *immunity.Service
	// CoreOptions are forwarded to each process's core.
	CoreOptions []core.Option
	// WatchdogInterval is the handler heartbeat period.
	WatchdogInterval time.Duration
	// WatchdogThreshold is how long a heartbeat may stay unprocessed
	// before the handler is declared frozen. It must comfortably exceed
	// GateTimeout so avoidance yields (bounded by the gate) are never
	// misread as freezes; the real Android watchdog uses 60 seconds.
	WatchdogThreshold time.Duration
	// GateTimeout bounds the race-gate rendezvous in scenarios.
	GateTimeout time.Duration
}

// DefaultPhoneConfig returns a Dimmunix-enabled phone with an in-memory
// history.
func DefaultPhoneConfig() PhoneConfig {
	return PhoneConfig{
		Dimmunix:          true,
		History:           core.NewMemHistory(),
		WatchdogInterval:  50 * time.Millisecond,
		WatchdogThreshold: 3 * time.Second,
		GateTimeout:       time.Second,
	}
}

// ScenarioOutcome is the result of driving a scenario on the phone.
type ScenarioOutcome int

// Scenario outcomes.
const (
	// OutcomeCompleted: both operations finished; no freeze.
	OutcomeCompleted ScenarioOutcome = iota + 1
	// OutcomeFroze: the watchdog reported a frozen handler (deadlock).
	OutcomeFroze
)

// String returns a readable outcome.
func (o ScenarioOutcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeFroze:
		return "froze"
	default:
		return fmt.Sprintf("ScenarioOutcome(%d)", int(o))
	}
}

// ErrScenarioTimeout reports that a scenario neither completed nor froze
// within its deadline.
var ErrScenarioTimeout = errors.New("android: scenario timed out")

// Phone is the simulated device: a Zygote, a system server, and
// (optionally) application processes, with boot/freeze/reboot lifecycle.
type Phone struct {
	cfg PhoneConfig

	mu     sync.Mutex
	zygote *vm.Zygote
	system *SystemServer
	boots  int

	freezeCh chan string
	anrs     anrLog
}

// NewPhone creates a phone; call Boot to start it.
func NewPhone(cfg PhoneConfig) *Phone {
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = 50 * time.Millisecond
	}
	if cfg.GateTimeout <= 0 {
		cfg.GateTimeout = time.Second
	}
	if cfg.WatchdogThreshold <= 0 {
		cfg.WatchdogThreshold = 3 * cfg.GateTimeout
	}
	return &Phone{cfg: cfg, freezeCh: make(chan string, 16)}
}

// Boot starts the platform: a fresh Zygote (whose forked processes load
// the persistent history) and the system server.
func (ph *Phone) Boot() error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if ph.system != nil {
		return errors.New("android: phone already booted")
	}
	zopts := []vm.ZygoteOption{vm.WithDimmunix(ph.cfg.Dimmunix)}
	if len(ph.cfg.CoreOptions) > 0 {
		zopts = append(zopts, vm.WithCoreOptions(ph.cfg.CoreOptions...))
	}
	if ph.cfg.Immunity != nil {
		zopts = append(zopts, vm.WithSignatureBus(ph.cfg.Immunity))
	} else if ph.cfg.History != nil {
		zopts = append(zopts, vm.WithHistory(ph.cfg.History))
	}
	ph.zygote = vm.NewZygote(zopts...)
	ss, err := BootSystemServer(ph.zygote, ph.cfg.Immunity, ph.cfg.WatchdogInterval, ph.cfg.WatchdogThreshold, ph.reportFreeze)
	if err != nil {
		return fmt.Errorf("phone boot: %w", err)
	}
	ph.system = ss
	ph.boots++
	return nil
}

// reportFreeze captures the ANR diagnostics and forwards the watchdog
// freeze report without ever blocking the watchdog thread.
func (ph *Phone) reportFreeze(looper string) {
	if sys := ph.System(); sys != nil {
		ph.anrs.add(&ANRReport{
			Looper:  looper,
			Process: sys.Proc.Name(),
			When:    time.Now(),
			Threads: sys.Proc.DumpThreads(),
		})
	}
	select {
	case ph.freezeCh <- looper:
	default:
	}
}

// LastANR returns the most recent freeze's thread-dump report, or nil.
func (ph *Phone) LastANR() *ANRReport { return ph.anrs.last() }

// ANRs returns all freeze reports captured since the phone was created
// (they survive reboots, like files in /data/anr).
func (ph *Phone) ANRs() []*ANRReport { return ph.anrs.all() }

// Shutdown powers the phone off: every process is killed and all threads
// (including frozen ones) are reaped.
func (ph *Phone) Shutdown() {
	ph.mu.Lock()
	zyg := ph.zygote
	ph.zygote = nil
	ph.system = nil
	ph.mu.Unlock()
	if zyg != nil {
		zyg.KillAll()
	}
	ph.drainFreezes()
}

// Reboot is Shutdown followed by Boot: processes restart with fresh cores
// that reload the (now larger) persistent history — the paper's "after
// rebooting the phone, Dimmunix successfully avoided any reoccurrence".
func (ph *Phone) Reboot() error {
	ph.Shutdown()
	return ph.Boot()
}

// drainFreezes clears stale freeze reports across reboots.
func (ph *Phone) drainFreezes() {
	for {
		select {
		case <-ph.freezeCh:
		default:
			return
		}
	}
}

// System returns the current system server (nil before Boot).
func (ph *Phone) System() *SystemServer {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	return ph.system
}

// Boots returns how many times the phone has booted.
func (ph *Phone) Boots() int {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	return ph.boots
}

// FreezeEvents exposes watchdog freeze reports (handler names).
func (ph *Phone) FreezeEvents() <-chan string { return ph.freezeCh }

// ForkApp launches an application process from the Zygote.
func (ph *Phone) ForkApp(name string) (*vm.Process, error) {
	ph.mu.Lock()
	zyg := ph.zygote
	ph.mu.Unlock()
	if zyg == nil {
		return nil, errors.New("android: phone not booted")
	}
	return zyg.Fork(name)
}

// RunNotificationScenario triggers the issue-7986 interleaving and waits
// until it completes, the watchdog reports a freeze, or the timeout
// passes.
func (ph *Phone) RunNotificationScenario(timeout time.Duration) (ScenarioOutcome, error) {
	return ph.runScenario(timeout, func(ss *SystemServer) (<-chan struct{}, error) {
		return ss.NotificationRace(ph.cfg.GateTimeout)
	})
}

// RunWindowScenario triggers the ActivityManager/WindowManager inversion
// (the platform's second immunizable deadlock) and waits for the outcome.
func (ph *Phone) RunWindowScenario(timeout time.Duration) (ScenarioOutcome, error) {
	return ph.runScenario(timeout, func(ss *SystemServer) (<-chan struct{}, error) {
		return ss.WindowRace(ph.cfg.GateTimeout)
	})
}

// runScenario starts a race scenario and resolves its outcome.
func (ph *Phone) runScenario(timeout time.Duration, start func(*SystemServer) (<-chan struct{}, error)) (ScenarioOutcome, error) {
	ss := ph.System()
	if ss == nil {
		return 0, errors.New("android: phone not booted")
	}
	done, err := start(ss)
	if err != nil {
		return 0, err
	}
	select {
	case <-done:
		return OutcomeCompleted, nil
	case <-ph.freezeCh:
		return OutcomeFroze, nil
	case <-time.After(timeout):
		return 0, ErrScenarioTimeout
	}
}
