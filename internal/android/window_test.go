package android

import (
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// TestWindowScenarioFreezesAndImmunizes mirrors E1 for the second platform
// deadlock (ActivityManagerService ↔ WindowManagerService).
func TestWindowScenarioFreezesAndImmunizes(t *testing.T) {
	store := core.NewMemHistory()
	ph := NewPhone(testPhoneConfig(true, store))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	out, err := ph.RunWindowScenario(scenarioTimeout)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if out != OutcomeFroze {
		t.Fatalf("run 1 outcome = %v, want froze", out)
	}
	if store.Len() != 1 {
		t.Fatalf("history has %d signatures, want 1", store.Len())
	}

	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}
	out, err = ph.RunWindowScenario(scenarioTimeout)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if out != OutcomeCompleted {
		t.Fatalf("run 2 outcome = %v, want completed", out)
	}
	if st := ph.System().Proc.Dimmunix().Stats(); st.DeadlocksDetected != 0 {
		t.Errorf("run 2 deadlocked: %+v", st)
	}
}

// TestPhoneTwoBugImmunity accumulates antibodies for both platform bugs:
// after each has frozen the phone once, both scenarios complete on the
// same boot.
func TestPhoneTwoBugImmunity(t *testing.T) {
	store := core.NewMemHistory()
	ph := NewPhone(testPhoneConfig(true, store))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	// Bug 1: notification/status bar.
	if out, err := ph.RunNotificationScenario(scenarioTimeout); err != nil || out != OutcomeFroze {
		t.Fatalf("bug 1: out=%v err=%v", out, err)
	}
	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}
	// Bug 2: activity/window manager — a different deadlock, still unknown.
	if out, err := ph.RunWindowScenario(scenarioTimeout); err != nil || out != OutcomeFroze {
		t.Fatalf("bug 2: out=%v err=%v", out, err)
	}
	if store.Len() != 2 {
		t.Fatalf("history has %d signatures, want 2", store.Len())
	}
	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}

	// Both bugs immunized on one boot.
	if out, err := ph.RunNotificationScenario(scenarioTimeout); err != nil || out != OutcomeCompleted {
		t.Fatalf("immunized bug 1: out=%v err=%v", out, err)
	}
	if out, err := ph.RunWindowScenario(scenarioTimeout); err != nil || out != OutcomeCompleted {
		t.Fatalf("immunized bug 2: out=%v err=%v", out, err)
	}
	if st := ph.System().Proc.Dimmunix().Stats(); st.DeadlocksDetected+st.DuplicateDeadlocks != 0 {
		t.Errorf("immunized boot deadlocked: %+v", st)
	}
}

// TestANRReportCapturedOnFreeze verifies the freeze diagnostics: the dump
// must contain the two deadlocked threads, blocked, with the deadlock's
// frames on their stacks.
func TestANRReportCapturedOnFreeze(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	if out, err := ph.RunNotificationScenario(scenarioTimeout); err != nil || out != OutcomeFroze {
		t.Fatalf("out=%v err=%v", out, err)
	}

	anr := ph.LastANR()
	if anr == nil {
		t.Fatal("no ANR report captured")
	}
	if anr.Looper != "android.ui" {
		t.Errorf("ANR looper = %q, want android.ui", anr.Looper)
	}
	if anr.Process != "system_server" {
		t.Errorf("ANR process = %q", anr.Process)
	}
	blocked := anr.BlockedThreads()
	if len(blocked) < 2 {
		t.Fatalf("blocked threads = %d, want >= 2 (both deadlock parties)", len(blocked))
	}
	text := anr.String()
	for _, needle := range []string{
		"NotificationManagerService.enqueueNotificationWithTag",
		"StatusBarService$H.handleMessage",
		"tid=",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("ANR text missing %q", needle)
		}
	}
	if len(ph.ANRs()) != 1 {
		t.Errorf("ANR count = %d, want 1", len(ph.ANRs()))
	}
}

// TestAMSWMSNormalOperation checks the services outside the race window.
func TestAMSWMSNormalOperation(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	ss := ph.System()

	user, err := ss.Proc.Start("user", func(th *vm.Thread) {
		ss.AMS.StartActivity(th, "com.example/.Main")
		ss.WMS.ScheduleAnimation(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-user.Done()
	if user.Err() != nil {
		t.Fatal(user.Err())
	}
	select {
	case comp := <-ss.WMS.AnimationsDone():
		if comp != "com.example/.Main" {
			t.Errorf("animated %q", comp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("animation never completed")
	}
	check, err := ss.Proc.Start("check", func(th *vm.Thread) {
		if n := ss.AMS.ActivityCount(th); n != 1 {
			t.Errorf("activities = %d, want 1", n)
		}
		if n := ss.WMS.WindowCount(th); n != 1 {
			t.Errorf("windows = %d, want 1", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-check.Done()
}
