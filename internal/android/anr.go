package android

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/vm"
)

// ANR reports — when the watchdog declares a handler frozen, the platform
// captures a full thread dump of system_server, as Android writes
// /data/anr/traces.txt before killing the process. The dump is what makes
// a freshly recorded deadlock signature diagnosable: the blocked threads'
// stacks show both halves of the inversion.

// ANRReport is one freeze's diagnostic capture.
type ANRReport struct {
	// Looper is the frozen looper thread's name.
	Looper string
	// Process is the frozen process's name.
	Process string
	// When is the capture time.
	When time.Time
	// Threads is the full thread dump.
	Threads []vm.ThreadDump
}

// String renders the report in traces.txt style.
func (r *ANRReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ANR: looper %q in %q not responding (captured %s)\n",
		r.Looper, r.Process, r.When.Format(time.RFC3339))
	b.WriteString(vm.FormatDump(r.Process, r.Threads))
	return b.String()
}

// BlockedThreads returns the subset of threads that were blocked on a
// monitor — for a deadlock freeze, the parties of the cycle.
func (r *ANRReport) BlockedThreads() []vm.ThreadDump {
	var out []vm.ThreadDump
	for _, d := range r.Threads {
		if d.State == vm.StateBlocked {
			out = append(out, d)
		}
	}
	return out
}

// anrLog collects ANR reports (thread-safe; written by the watchdog path,
// read by diagnostics).
type anrLog struct {
	mu      sync.Mutex
	reports []*ANRReport
}

// add appends a report.
func (l *anrLog) add(r *ANRReport) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reports = append(l.reports, r)
}

// last returns the most recent report, or nil.
func (l *anrLog) last() *ANRReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.reports) == 0 {
		return nil
	}
	return l.reports[len(l.reports)-1]
}

// all returns a copy of the report list.
func (l *anrLog) all() []*ANRReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*ANRReport, len(l.reports))
	copy(out, l.reports)
	return out
}
