package android

import (
	"sync"

	"github.com/dimmunix/dimmunix/internal/vm"
)

// ActivityManagerService and WindowManagerService, modeled with the
// lock-order inversion family well known from this Android era: AMS takes
// its own lock and calls into WMS (app start / visibility changes), while
// WMS animation handling takes the WMS lock and calls back into AMS
// (activity-drawn notifications). This is the repository's second
// immunizable platform deadlock, used to demonstrate that the history
// accumulates antibodies for multiple distinct bugs.

const (
	amsClass  = "com.android.server.am.ActivityManagerService"
	wmsClass  = "com.android.server.WindowManagerService"
	wmsHClass = "com.android.server.WindowManagerService$H"
)

// wmsMsgAnimate is the WMS handler's animation-step message.
const wmsMsgAnimate = 2000

// ActivityRecord is one started activity.
type ActivityRecord struct {
	Component string
	Visible   bool
	Drawn     bool
}

// ActivityManagerService models the AMS slice involved in the inversion.
type ActivityManagerService struct {
	proc *vm.Process
	// amLock is the service's global lock ("synchronized (this)" in the
	// real AMS).
	amLock     *vm.Object
	wms        *WindowManagerService
	activities []ActivityRecord

	hookMu   sync.Mutex
	raceHook func()
}

var _ Service = (*ActivityManagerService)(nil)

// NewActivityManagerService creates the service.
func NewActivityManagerService(p *vm.Process) *ActivityManagerService {
	return &ActivityManagerService{
		proc:   p,
		amLock: p.NewObject("AMS.this"),
	}
}

// ServiceName implements Service.
func (a *ActivityManagerService) ServiceName() string { return "activity" }

// SetWindowManager wires the WMS dependency.
func (a *ActivityManagerService) SetWindowManager(w *WindowManagerService) { a.wms = w }

// SetRaceHook installs the scenario race window. nil disables it.
func (a *ActivityManagerService) SetRaceHook(fn func()) {
	a.hookMu.Lock()
	a.raceHook = fn
	a.hookMu.Unlock()
}

func (a *ActivityManagerService) runRaceHook() {
	a.hookMu.Lock()
	fn := a.raceHook
	a.hookMu.Unlock()
	if fn != nil {
		fn()
	}
}

// StartActivity starts an activity: under the AMS lock it records the
// activity and pushes its visibility into the window manager — the first
// half of the inversion.
func (a *ActivityManagerService) StartActivity(t *vm.Thread, component string) {
	t.Call(amsClass, "startActivityLocked", 1502, func() {
		a.amLock.Synchronized(t, func() {
			a.activities = append(a.activities, ActivityRecord{Component: component, Visible: true})
			a.runRaceHook()
			// Still holding the AMS lock: cross into the window manager.
			a.wms.SetAppVisibility(t, component, true)
		})
	})
}

// NotifyActivityDrawn is WMS's callback when an activity's first frame is
// drawn; it takes the AMS lock — the second half of the inversion.
func (a *ActivityManagerService) NotifyActivityDrawn(t *vm.Thread, component string) {
	t.Call(amsClass, "activityDrawn", 1688, func() {
		a.amLock.Synchronized(t, func() {
			for i := range a.activities {
				if a.activities[i].Component == component {
					a.activities[i].Drawn = true
				}
			}
		})
	})
}

// ActivityCount returns the number of recorded activities.
func (a *ActivityManagerService) ActivityCount(t *vm.Thread) int {
	n := 0
	t.Call(amsClass, "getActivityCount", 1901, func() {
		a.amLock.Synchronized(t, func() { n = len(a.activities) })
	})
	return n
}

// censusSites lists the service's static synchronization sites.
func (a *ActivityManagerService) censusSites() []*vm.Site {
	return []*vm.Site{
		vm.NewSite(amsClass, "startActivityLocked", 1502),
		vm.NewSite(amsClass, "activityDrawn", 1688),
		vm.NewSite(amsClass, "getActivityCount", 1901),
	}
}

// WindowManagerService models the WMS slice involved in the inversion;
// its animation steps run on the UI looper via the $H handler.
type WindowManagerService struct {
	proc *vm.Process
	// wmLock is the window map lock ("synchronized (mWindowMap)").
	wmLock *vm.Object
	ams    *ActivityManagerService
	h      *Handler

	windows map[string]bool // component → visible
	// animations counts completed animation steps (atomic-free: guarded
	// by wmLock; exposed via pending channel signals instead).
	animationsDone chan string

	hookMu   sync.Mutex
	raceHook func()
}

var _ Service = (*WindowManagerService)(nil)

// NewWindowManagerService creates the service with its $H handler on the
// given looper.
func NewWindowManagerService(p *vm.Process, uiLooper *Looper) *WindowManagerService {
	w := &WindowManagerService{
		proc:           p,
		wmLock:         p.NewObject("WMS.mWindowMap"),
		windows:        make(map[string]bool),
		animationsDone: make(chan string, 64),
	}
	w.h = NewHandler(uiLooper, "WindowManagerService$H", w.handleMessage)
	return w
}

// ServiceName implements Service.
func (w *WindowManagerService) ServiceName() string { return "window" }

// SetActivityManager wires the AMS dependency.
func (w *WindowManagerService) SetActivityManager(a *ActivityManagerService) { w.ams = a }

// SetRaceHook installs the scenario race window. nil disables it.
func (w *WindowManagerService) SetRaceHook(fn func()) {
	w.hookMu.Lock()
	w.raceHook = fn
	w.hookMu.Unlock()
}

func (w *WindowManagerService) runRaceHook() {
	w.hookMu.Lock()
	fn := w.raceHook
	w.hookMu.Unlock()
	if fn != nil {
		fn()
	}
}

// Handler returns the $H handler (monitored by the watchdog).
func (w *WindowManagerService) Handler() *Handler { return w.h }

// SetAppVisibility updates a window's visibility under the WMS lock.
// Called by AMS while it holds its own lock.
func (w *WindowManagerService) SetAppVisibility(t *vm.Thread, component string, visible bool) {
	t.Call(wmsClass, "setAppVisibility", 3220, func() {
		w.wmLock.Synchronized(t, func() {
			w.windows[component] = visible
		})
	})
}

// ScheduleAnimation posts an animation step to the UI looper; the step
// animates every currently visible window.
func (w *WindowManagerService) ScheduleAnimation(t *vm.Thread) {
	t.Call(wmsClass, "scheduleAnimationLocked", 3475, func() {
		w.h.Send(t, Message{What: wmsMsgAnimate})
	})
}

// animate runs one animation step on the UI looper: under the WMS lock it
// completes the animation and notifies AMS that the activity is drawn —
// taking the AMS lock while holding the WMS lock.
func (w *WindowManagerService) handleMessage(t *vm.Thread, msg Message) {
	t.Call(wmsHClass, "handleMessage", 141, func() {
		if msg.What != wmsMsgAnimate {
			return
		}
		var drawn []string
		w.wmLock.Synchronized(t, func() {
			w.runRaceHook()
			for component, visible := range w.windows {
				if visible {
					drawn = append(drawn, component)
				}
			}
			// Still holding the WMS lock: call back into AMS (the
			// inversion; the real code notified from performLayout paths
			// while holding mWindowMap).
			for _, component := range drawn {
				if w.ams != nil {
					w.ams.NotifyActivityDrawn(t, component)
				}
			}
		})
		for _, component := range drawn {
			select {
			case w.animationsDone <- component:
			default:
			}
		}
	})
}

// AnimationsDone exposes completed animation signals (lock-free; scenario
// drivers select on it).
func (w *WindowManagerService) AnimationsDone() <-chan string { return w.animationsDone }

// WindowCount returns the number of tracked windows.
func (w *WindowManagerService) WindowCount(t *vm.Thread) int {
	n := 0
	t.Call(wmsClass, "getWindowCount", 3610, func() {
		w.wmLock.Synchronized(t, func() { n = len(w.windows) })
	})
	return n
}

// censusSites lists the service's static synchronization sites.
func (w *WindowManagerService) censusSites() []*vm.Site {
	return []*vm.Site{
		vm.NewSite(wmsClass, "setAppVisibility", 3220),
		vm.NewSite(wmsClass, "scheduleAnimationLocked", 3475),
		vm.NewSite(wmsHClass, "handleMessage", 141),
		vm.NewSite(wmsClass, "getWindowCount", 3610),
	}
}
