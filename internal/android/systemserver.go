package android

import (
	"fmt"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// SystemServer models Android's system_server process: the UI looper, the
// service registry, the notification manager and status bar services, and
// the watchdog. It is the process that freezes when issue 7986 fires —
// "this deadlock made the whole phone's interface hang".
type SystemServer struct {
	Proc      *vm.Process
	SM        *ServiceManager
	NMS       *NotificationManagerService
	StatusBar *StatusBarService
	AMS       *ActivityManagerService
	WMS       *WindowManagerService
	UILooper  *Looper
	Watchdog  *Watchdog
	Census    *vm.Census
	// Immunity is the registered platform immunity service, nil when the
	// phone runs without the live-propagation tier.
	Immunity *ImmunityService
}

// BootSystemServer forks system_server from the Zygote, starts the UI
// looper, wires the services, registers them, builds the platform census,
// and arms the watchdog. When hub is non-nil the immunity service is
// registered alongside the framework services and every watchdog freeze
// is noted on it with the hub epoch. onFreeze is invoked from the
// watchdog thread when a monitored handler stops processing messages for
// longer than watchdogThreshold.
func BootSystemServer(z *vm.Zygote, hub *immunity.Service, watchdogInterval, watchdogThreshold time.Duration, onFreeze func(string)) (*SystemServer, error) {
	proc, err := z.Fork("system_server")
	if err != nil {
		return nil, fmt.Errorf("boot system_server: %w", err)
	}
	ui, err := StartLooper(proc, "android.ui")
	if err != nil {
		return nil, fmt.Errorf("boot system_server: %w", err)
	}

	ss := &SystemServer{
		Proc:     proc,
		SM:       NewServiceManager(proc),
		UILooper: ui,
	}
	ss.StatusBar = NewStatusBarService(proc, ui)
	ss.NMS = NewNotificationManagerService(proc)
	ss.NMS.SetStatusBar(ss.StatusBar)
	ss.StatusBar.SetNotificationCallbacks(ss.NMS)
	ss.WMS = NewWindowManagerService(proc, ui)
	ss.AMS = NewActivityManagerService(proc)
	ss.AMS.SetWindowManager(ss.WMS)
	ss.WMS.SetActivityManager(ss.AMS)
	if hub != nil {
		ss.Immunity = NewImmunityService(hub)
	}

	// Register the services from a bootstrap thread (registry access
	// synchronizes on a VM monitor, so it needs a VM thread).
	boot, err := proc.Start("system-boot", func(t *vm.Thread) {
		t.Call("com.android.server.SystemServer", "run", 489, func() {
			ss.SM.AddService(t, ss.NMS)
			ss.SM.AddService(t, ss.StatusBar)
			ss.SM.AddService(t, ss.AMS)
			ss.SM.AddService(t, ss.WMS)
			if ss.Immunity != nil {
				ss.SM.AddService(t, ss.Immunity)
			}
		})
	})
	if err != nil {
		return nil, fmt.Errorf("boot system_server: %w", err)
	}
	select {
	case <-boot.Done():
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("boot system_server: service registration hung")
	}
	if err := boot.Err(); err != nil {
		return nil, fmt.Errorf("boot system_server: registration: %w", err)
	}

	census, err := FrameworkCensus(
		ss.NMS.censusSites(),
		ss.StatusBar.censusSites(),
		ss.AMS.censusSites(),
		ss.WMS.censusSites(),
	)
	if err != nil {
		return nil, fmt.Errorf("boot system_server: %w", err)
	}
	ss.Census = census

	monitored := []*Handler{ss.StatusBar.Handler(), ss.WMS.Handler()}
	freeze := onFreeze
	if ss.Immunity != nil {
		// Watchdog integration: every freeze is stamped with the immunity
		// epoch before the platform's own report runs.
		freeze = func(looper string) {
			ss.Immunity.NoteFreeze(looper)
			if onFreeze != nil {
				onFreeze(looper)
			}
		}
	}
	wd, err := StartWatchdog(proc, monitored, watchdogInterval, watchdogThreshold, freeze)
	if err != nil {
		return nil, fmt.Errorf("boot system_server: %w", err)
	}
	ss.Watchdog = wd
	return ss, nil
}

// Shutdown kills the system_server process, reaping all of its threads
// (including deadlocked ones).
func (ss *SystemServer) Shutdown() {
	ss.Proc.Kill()
}

// NotificationRace drives the paper's reproduction: one thread issues a
// notification while another expands the status bar, with a two-party gate
// holding each thread inside its first critical section until both arrive
// (or the gate times out — which is what happens when Dimmunix suspends
// one of them first). The returned channel closes if both operations
// complete; on a deadlock it never closes and the watchdog reports the
// freeze instead.
func (ss *SystemServer) NotificationRace(gateTimeout time.Duration) (<-chan struct{}, error) {
	gate := NewGate(2, gateTimeout)
	ss.NMS.SetRaceHook(func() { gate.Sync() })
	ss.StatusBar.SetRaceHook(func() { gate.Sync() })

	expansionsBefore := ss.StatusBar.Expansions()

	// The notifying thread: an app's binder call executing in
	// system_server, as binder transactions do.
	notifier, err := ss.Proc.Start("Binder-1", func(t *vm.Thread) {
		t.Call("android.os.Binder", "execTransact", 287, func() {
			ss.NMS.EnqueueNotificationWithTag(t, "com.example.messenger", "new-message", 1)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("notification race: %w", err)
	}
	// The expanding thread: the input path posting the expand to the $H
	// handler (the expansion itself runs on the UI looper).
	expander, err := ss.Proc.Start("InputDispatcher", func(t *vm.Thread) {
		t.Call("com.android.server.InputDispatcher", "notifyMotion", 166, func() {
			ss.StatusBar.ExpandNotificationsPanel(t)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("notification race: %w", err)
	}

	done := make(chan struct{})
	go func() {
		deadline := time.Now().Add(gateTimeout + 30*time.Second)
		// Both the binder call and the UI expansion must complete.
		for time.Now().Before(deadline) {
			select {
			case <-notifier.Done():
			default:
				time.Sleep(time.Millisecond)
				continue
			}
			if ss.StatusBar.Expansions() > expansionsBefore && notifier.Err() == nil {
				// Clear the race hooks for subsequent normal operation.
				ss.NMS.SetRaceHook(nil)
				ss.StatusBar.SetRaceHook(nil)
				close(done)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_ = expander
	return done, nil
}

// WindowRace drives the second platform deadlock: an app start (AMS lock →
// WMS lock) racing a window animation step (WMS lock → AMS lock), with the
// same gate scheme as NotificationRace. The returned channel closes if
// both operations complete.
func (ss *SystemServer) WindowRace(gateTimeout time.Duration) (<-chan struct{}, error) {
	gate := NewGate(2, gateTimeout)
	ss.AMS.SetRaceHook(func() { gate.Sync() })
	ss.WMS.SetRaceHook(func() { gate.Sync() })

	const component = "com.example.messenger/.ComposeActivity"
	// Seed a visible window so the animation step has a callback to make,
	// then race the app start against the animation.
	seed, err := ss.Proc.Start("wm-seed", func(t *vm.Thread) {
		ss.WMS.SetAppVisibility(t, "com.example.launcher/.Home", true)
	})
	if err != nil {
		return nil, fmt.Errorf("window race: %w", err)
	}
	select {
	case <-seed.Done():
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("window race: seeding hung")
	}

	starter, err := ss.Proc.Start("Binder-2", func(t *vm.Thread) {
		t.Call("android.os.Binder", "execTransact", 287, func() {
			ss.AMS.StartActivity(t, component)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("window race: %w", err)
	}
	animator, err := ss.Proc.Start("AnimationThread", func(t *vm.Thread) {
		ss.WMS.ScheduleAnimation(t)
	})
	if err != nil {
		return nil, fmt.Errorf("window race: %w", err)
	}

	done := make(chan struct{})
	go func() {
		deadline := time.Now().Add(gateTimeout + 30*time.Second)
		animated := false
		for time.Now().Before(deadline) {
			select {
			case <-ss.WMS.AnimationsDone():
				animated = true
			default:
			}
			select {
			case <-starter.Done():
				if animated && starter.Err() == nil {
					ss.AMS.SetRaceHook(nil)
					ss.WMS.SetRaceHook(nil)
					close(done)
					return
				}
			default:
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_ = animator
	return done, nil
}
