// Package android simulates the slice of the Android 2.2 platform the
// paper evaluates on: Looper/Handler message processing, the system-server
// services involved in the reproduced deadlock (NotificationManagerService
// and StatusBarService, Android issue 7986), the watchdog that notices a
// frozen platform, and the Phone controller that boots, freezes, reboots
// and recovers.
//
// All platform synchronization goes through internal/vm monitors, so every
// lock acquisition in the platform is intercepted by Dimmunix exactly as
// Dalvik's monitorenter is in the paper.
package android

import (
	"github.com/dimmunix/dimmunix/internal/vm"
)

// Message is a unit of work posted to a Handler, mirroring
// android.os.Message: a what code, an integer argument, and (for
// Handler.Post-style usage) an optional callback.
type Message struct {
	// What identifies the operation to the handler.
	What int
	// Arg is an optional integer argument.
	Arg int
	// Callback, when non-nil, is executed instead of the handler's
	// handleMessage.
	Callback func(*vm.Thread)

	// target is the handler the message was sent to.
	target *Handler
}

// MessageQueue is android.os.MessageQueue: a FIFO of messages protected by
// a VM monitor, with Object.wait/notify providing the blocking behaviour.
// Because it synchronizes through the VM, queue operations are themselves
// covered by Dimmunix — platform-wide immunity includes the framework's
// own locks.
type MessageQueue struct {
	lock     *vm.Object
	messages []Message
	quitting bool
}

// newMessageQueue creates a queue owned by process p.
func newMessageQueue(p *vm.Process, name string) *MessageQueue {
	return &MessageQueue{lock: p.NewObject("MessageQueue:" + name)}
}

// Enqueue appends a message and wakes the looper. Mirrors
// MessageQueue.enqueueMessage.
func (q *MessageQueue) Enqueue(t *vm.Thread, m Message) {
	t.Call("android.os.MessageQueue", "enqueueMessage", 316, func() {
		q.lock.Synchronized(t, func() {
			q.messages = append(q.messages, m)
			// We own the monitor; Notify cannot fail.
			_ = q.lock.Notify(t)
		})
	})
}

// Next blocks until a message is available and returns it; ok=false means
// the queue is quitting and drained. Mirrors MessageQueue.next.
func (q *MessageQueue) Next(t *vm.Thread) (msg Message, ok bool) {
	t.Call("android.os.MessageQueue", "next", 188, func() {
		q.lock.Synchronized(t, func() {
			for len(q.messages) == 0 && !q.quitting {
				if _, err := q.lock.Wait(t, 0); err != nil {
					// Interrupted or killed: treat as quit; the looper
					// thread unwinds on the next iteration.
					q.quitting = true
					return
				}
			}
			if len(q.messages) == 0 {
				return
			}
			msg = q.messages[0]
			q.messages = q.messages[1:]
			ok = true
		})
	})
	return msg, ok
}

// Quit marks the queue as quitting and wakes the looper; pending messages
// are still delivered first.
func (q *MessageQueue) Quit(t *vm.Thread) {
	t.Call("android.os.MessageQueue", "quit", 421, func() {
		q.lock.Synchronized(t, func() {
			q.quitting = true
			_ = q.lock.NotifyAll(t)
		})
	})
}

// Len returns the number of queued messages (diagnostics; racy by nature).
func (q *MessageQueue) Len(t *vm.Thread) int {
	n := 0
	q.lock.Synchronized(t, func() { n = len(q.messages) })
	return n
}
