package android

import (
	"fmt"
	"sync/atomic"

	"github.com/dimmunix/dimmunix/internal/vm"
)

// Looper is android.os.Looper: a VM thread draining a MessageQueue and
// dispatching each message to its target handler.
type Looper struct {
	name   string
	proc   *vm.Process
	queue  *MessageQueue
	thread *vm.Thread

	// dispatched counts processed messages; the watchdog's handler checks
	// ride on ordinary messages, so progress is observable here too.
	dispatched atomic.Uint64
}

// StartLooper creates the queue and launches the looper thread.
func StartLooper(p *vm.Process, name string) (*Looper, error) {
	l := &Looper{
		name:  name,
		proc:  p,
		queue: newMessageQueue(p, name),
	}
	th, err := p.Start(name, l.loop)
	if err != nil {
		return nil, fmt.Errorf("start looper %s: %w", name, err)
	}
	l.thread = th
	return l, nil
}

// Name returns the looper's thread name.
func (l *Looper) Name() string { return l.name }

// Thread returns the looper's VM thread.
func (l *Looper) Thread() *vm.Thread { return l.thread }

// Dispatched returns the number of messages processed so far.
func (l *Looper) Dispatched() uint64 { return l.dispatched.Load() }

// loop is Looper.loop: the message pump.
func (l *Looper) loop(t *vm.Thread) {
	t.Call("android.os.Looper", "loop", 123, func() {
		for {
			msg, ok := l.queue.Next(t)
			if !ok {
				return
			}
			l.dispatch(t, msg)
			l.dispatched.Add(1)
		}
	})
}

// dispatch mirrors Handler.dispatchMessage.
func (l *Looper) dispatch(t *vm.Thread, msg Message) {
	switch {
	case msg.Callback != nil:
		msg.Callback(t)
	case msg.target != nil:
		msg.target.handle(t, msg)
	}
}

// Quit stops the looper after the pending messages drain. Must be called
// from a VM thread of the same process.
func (l *Looper) Quit(t *vm.Thread) {
	l.queue.Quit(t)
}

// Handler is android.os.Handler: it posts messages to a looper's queue and
// processes them on the looper thread via handleMessage.
type Handler struct {
	name   string
	looper *Looper
	fn     func(t *vm.Thread, msg Message)
}

// NewHandler binds a handler to a looper. fn is the handleMessage body and
// may be nil for post-only handlers.
func NewHandler(l *Looper, name string, fn func(t *vm.Thread, msg Message)) *Handler {
	return &Handler{name: name, looper: l, fn: fn}
}

// Name returns the handler's name.
func (h *Handler) Name() string { return h.name }

// Looper returns the handler's looper.
func (h *Handler) Looper() *Looper { return h.looper }

// Send enqueues a message targeted at this handler.
func (h *Handler) Send(t *vm.Thread, msg Message) {
	msg.target = h
	h.looper.queue.Enqueue(t, msg)
}

// Post enqueues a callback to run on the looper thread.
func (h *Handler) Post(t *vm.Thread, fn func(*vm.Thread)) {
	h.looper.queue.Enqueue(t, Message{Callback: fn, target: h})
}

// handle runs handleMessage on the looper thread.
func (h *Handler) handle(t *vm.Thread, msg Message) {
	if h.fn != nil {
		h.fn(t, msg)
	}
}
