package android

import (
	"sync"
	"sync/atomic"

	"github.com/dimmunix/dimmunix/internal/vm"
)

// Status bar handler message codes (StatusBarService$H in Android 2.2).
const (
	msgAnimateExpand   = 1000
	msgAnimateCollapse = 1001
)

// StatusBarService models com.android.server.status.StatusBarService: the
// status bar state guarded by its own monitor, manipulated both by binder
// calls from other services (AddNotification) and by its $H handler on the
// UI thread (panel expansion). Expanding the panel calls back into the
// notification manager while the status-bar lock is held — with
// NotificationManagerService.enqueueNotificationWithTag holding its list
// lock and calling in the opposite direction, this is Android issue 7986:
// the two services deadlock and the whole interface freezes.
type StatusBarService struct {
	proc *vm.Process
	// mStatusBarLock guards icons and expansion state (the monitor the $H
	// handler holds during expansion).
	mStatusBarLock *vm.Object
	callbacks      NotificationCallbacks
	h              *Handler

	icons           []string
	expandedVisible bool
	// expansions counts completed panel expansions; atomic so scenario
	// drivers outside the VM can poll completion without a VM thread.
	expansions atomic.Int64

	// raceHook runs while mStatusBarLock is held during expansion, before
	// the callback into the notification manager. Guarded by hookMu: it is
	// written by scenario drivers outside the VM.
	hookMu   sync.Mutex
	raceHook func()
}

var _ Service = (*StatusBarService)(nil)

const (
	sbsClass  = "com.android.server.status.StatusBarService"
	sbsHClass = "com.android.server.status.StatusBarService$H"
)

// NewStatusBarService creates the service; its $H handler runs on the
// given looper (the system UI thread).
func NewStatusBarService(p *vm.Process, uiLooper *Looper) *StatusBarService {
	s := &StatusBarService{
		proc:           p,
		mStatusBarLock: p.NewObject("SBS.mStatusBarLock"),
	}
	s.h = NewHandler(uiLooper, "StatusBarService$H", s.handleMessage)
	return s
}

// ServiceName implements Service.
func (s *StatusBarService) ServiceName() string { return "statusbar" }

// SetNotificationCallbacks wires the callback interface (implemented by
// the notification manager).
func (s *StatusBarService) SetNotificationCallbacks(cb NotificationCallbacks) {
	s.callbacks = cb
}

// SetRaceHook installs the scenario race window. nil disables it.
func (s *StatusBarService) SetRaceHook(fn func()) {
	s.hookMu.Lock()
	s.raceHook = fn
	s.hookMu.Unlock()
}

// runRaceHook invokes the installed hook, if any.
func (s *StatusBarService) runRaceHook() {
	s.hookMu.Lock()
	fn := s.raceHook
	s.hookMu.Unlock()
	if fn != nil {
		fn()
	}
}

// Handler returns the service's $H handler (monitored by the watchdog).
func (s *StatusBarService) Handler() *Handler { return s.h }

// AddNotification installs a status bar icon for a notification. Called by
// the notification manager while it holds mNotificationList.
func (s *StatusBarService) AddNotification(t *vm.Thread, key string) {
	t.Call(sbsClass, "addNotification", 392, func() {
		s.mStatusBarLock.Synchronized(t, func() {
			s.icons = append(s.icons, key)
		})
	})
}

// RemoveNotification retracts an icon.
func (s *StatusBarService) RemoveNotification(t *vm.Thread, key string) {
	t.Call(sbsClass, "removeNotification", 421, func() {
		s.mStatusBarLock.Synchronized(t, func() {
			for i, k := range s.icons {
				if k == key {
					s.icons = append(s.icons[:i], s.icons[i+1:]...)
					return
				}
			}
		})
	})
}

// ExpandNotificationsPanel posts the expansion animation to the $H
// handler, as the real service does when the user drags the bar down.
func (s *StatusBarService) ExpandNotificationsPanel(t *vm.Thread) {
	t.Call(sbsClass, "expandNotificationsPanel", 508, func() {
		s.h.Send(t, Message{What: msgAnimateExpand})
	})
}

// CollapseNotificationsPanel posts the collapse animation.
func (s *StatusBarService) CollapseNotificationsPanel(t *vm.Thread) {
	t.Call(sbsClass, "collapseNotificationsPanel", 519, func() {
		s.h.Send(t, Message{What: msgAnimateCollapse})
	})
}

// handleMessage is StatusBarService$H.handleMessage, running on the UI
// looper thread. Expansion takes the status-bar lock and calls back into
// the notification manager — the paper's second deadlocked call path.
func (s *StatusBarService) handleMessage(t *vm.Thread, msg Message) {
	t.Call(sbsHClass, "handleMessage", 123, func() {
		switch msg.What {
		case msgAnimateExpand:
			s.mStatusBarLock.Synchronized(t, func() {
				s.expandedVisible = true
				s.runRaceHook()
				// Still holding the status-bar lock: call back into the
				// notification manager.
				if s.callbacks != nil {
					s.callbacks.OnPanelRevealed(t)
				}
				s.expansions.Add(1)
			})
		case msgAnimateCollapse:
			s.mStatusBarLock.Synchronized(t, func() {
				s.expandedVisible = false
			})
		}
	})
}

// Expansions returns how many panel expansions have completed. Lock-free:
// callable from outside the VM.
func (s *StatusBarService) Expansions() int64 { return s.expansions.Load() }

// IconCount returns the number of installed icons.
func (s *StatusBarService) IconCount(t *vm.Thread) int {
	n := 0
	t.Call(sbsClass, "getIconCount", 612, func() {
		s.mStatusBarLock.Synchronized(t, func() { n = len(s.icons) })
	})
	return n
}

// Icons returns a copy of the installed icon keys.
func (s *StatusBarService) Icons(t *vm.Thread) []string {
	var out []string
	t.Call(sbsClass, "getIcons", 623, func() {
		s.mStatusBarLock.Synchronized(t, func() {
			out = make([]string, len(s.icons))
			copy(out, s.icons)
		})
	})
	return out
}

// censusSites lists this service's static synchronization sites.
func (s *StatusBarService) censusSites() []*vm.Site {
	return []*vm.Site{
		vm.NewSite(sbsClass, "addNotification", 392),
		vm.NewSite(sbsClass, "removeNotification", 421),
		vm.NewSite(sbsHClass, "handleMessage", 123),
		vm.NewSite(sbsHClass, "handleMessage", 141),
		vm.NewSite(sbsClass, "getIconCount", 612),
		vm.NewSite(sbsClass, "getIcons", 623),
	}
}
