package android

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// testProc forks a Dimmunix-enabled process for platform tests.
func testProc(t *testing.T) *vm.Process {
	t.Helper()
	z := vm.NewZygote(vm.WithDimmunix(true))
	p, err := z.Fork("test-proc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Kill)
	return p
}

func TestLooperDispatchesInOrder(t *testing.T) {
	p := testProc(t)
	l, err := StartLooper(p, "test-looper")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	var order []int
	done := make(chan struct{})
	h := NewHandler(l, "h", func(_ *vm.Thread, msg Message) {
		order = append(order, msg.What) // only the looper thread touches it
		if msg.What == n-1 {
			close(done)
		}
	})
	sender, err := p.Start("sender", func(t *vm.Thread) {
		for i := 0; i < n; i++ {
			h.Send(t, Message{What: i})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-sender.Done()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("messages not dispatched")
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("message %d dispatched out of order: %v", i, order)
		}
	}
	if l.Dispatched() < n {
		t.Errorf("Dispatched = %d, want >= %d", l.Dispatched(), n)
	}
}

func TestHandlerPostCallback(t *testing.T) {
	p := testProc(t)
	l, err := StartLooper(p, "cb-looper")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(l, "h", nil)
	ran := make(chan string, 1)
	poster, err := p.Start("poster", func(t *vm.Thread) {
		h.Post(t, func(lt *vm.Thread) { ran <- lt.Name() })
	})
	if err != nil {
		t.Fatal(err)
	}
	<-poster.Done()
	select {
	case name := <-ran:
		if name != "cb-looper" {
			t.Errorf("callback ran on %q, want looper thread", name)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("callback never ran")
	}
}

func TestLooperQuitDrainsPending(t *testing.T) {
	p := testProc(t)
	l, err := StartLooper(p, "quit-looper")
	if err != nil {
		t.Fatal(err)
	}
	var processed atomic.Int32
	h := NewHandler(l, "h", func(*vm.Thread, Message) {
		processed.Add(1)
	})
	const n = 5
	ctl, err := p.Start("ctl", func(t *vm.Thread) {
		for i := 0; i < n; i++ {
			h.Send(t, Message{What: i})
		}
		l.Quit(t)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ctl.Done()
	select {
	case <-l.Thread().Done():
	case <-time.After(10 * time.Second):
		t.Fatal("looper did not quit")
	}
	if got := processed.Load(); got != n {
		t.Errorf("processed %d of %d pending messages before quitting", got, n)
	}
}

func TestMessageQueueBlocksUntilMessage(t *testing.T) {
	p := testProc(t)
	q := newMessageQueue(p, "q")
	got := make(chan Message, 1)
	consumer, err := p.Start("consumer", func(t *vm.Thread) {
		if m, ok := q.Next(t); ok {
			got <- m
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("Next returned before any message was queued")
	case <-time.After(20 * time.Millisecond):
	}
	producer, err := p.Start("producer", func(t *vm.Thread) {
		q.Enqueue(t, Message{What: 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-producer.Done()
	select {
	case m := <-got:
		if m.What != 7 {
			t.Errorf("got What=%d, want 7", m.What)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never woke")
	}
	<-consumer.Done()
}

func TestWatchdogQuietOnHealthyHandler(t *testing.T) {
	p := testProc(t)
	l, err := StartLooper(p, "healthy")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(l, "healthy-h", func(*vm.Thread, Message) {})
	var frozen atomic.Int32
	if _, err := StartWatchdog(p, []*Handler{h}, 10*time.Millisecond, 30*time.Millisecond, func(string) {
		frozen.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if got := frozen.Load(); got != 0 {
		t.Errorf("watchdog reported %d freezes on a healthy handler", got)
	}
}

func TestWatchdogDetectsFrozenHandler(t *testing.T) {
	p := testProc(t)
	l, err := StartLooper(p, "freezing")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	h := NewHandler(l, "frozen-h", func(*vm.Thread, Message) {
		<-block // freeze the looper on the first message
	})
	reports := make(chan string, 4)
	if _, err := StartWatchdog(p, []*Handler{h}, 10*time.Millisecond, 40*time.Millisecond, func(name string) {
		reports <- name
	}); err != nil {
		t.Fatal(err)
	}
	trigger, err := p.Start("trigger", func(t *vm.Thread) {
		h.Send(t, Message{What: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-trigger.Done()
	select {
	case name := <-reports:
		if name != "freezing" {
			t.Errorf("freeze reported for looper %q, want freezing", name)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never reported the freeze")
	}
	close(block)
}

func TestServiceManagerRegistry(t *testing.T) {
	p := testProc(t)
	sm := NewServiceManager(p)
	nms := NewNotificationManagerService(p)
	th, err := p.Start("registrar", func(vt *vm.Thread) {
		sm.AddService(vt, nms)
		if got := sm.GetService(vt, "notification"); got != Service(nms) {
			t.Error("GetService returned wrong service")
		}
		if got := sm.GetService(vt, "missing"); got != nil {
			t.Error("GetService for unknown name must return nil")
		}
		if names := sm.ListServices(vt); len(names) != 1 || names[0] != "notification" {
			t.Errorf("ListServices = %v", names)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-th.Done()
	if th.Err() != nil {
		t.Fatal(th.Err())
	}
}

func TestFrameworkCensusMatchesPaperCounts(t *testing.T) {
	census, err := FrameworkCensus()
	if err != nil {
		t.Fatal(err)
	}
	counts := census.Counts()
	if counts.TotalSyncSites != TargetSyncSites {
		t.Errorf("synchronized sites = %d, want %d", counts.TotalSyncSites, TargetSyncSites)
	}
	if counts.ExplicitLocks != TargetExplicitSites {
		t.Errorf("explicit lock sites = %d, want %d", counts.ExplicitLocks, TargetExplicitSites)
	}
	if counts.ClassesDeclared < 40 {
		t.Errorf("classes = %d, want a realistic platform spread (>= 40)", counts.ClassesDeclared)
	}
	// The live-service sites must also fit under the same total.
	p := testProc(t)
	nms := NewNotificationManagerService(p)
	l, err := StartLooper(p, "ui")
	if err != nil {
		t.Fatal(err)
	}
	sbs := NewStatusBarService(p, l)
	census2, err := FrameworkCensus(nms.censusSites(), sbs.censusSites())
	if err != nil {
		t.Fatal(err)
	}
	if got := census2.Counts().TotalSyncSites; got != TargetSyncSites {
		t.Errorf("census with service sites = %d, want %d", got, TargetSyncSites)
	}
}

func TestGateRendezvousAndTimeout(t *testing.T) {
	g := NewGate(2, time.Second)
	done := make(chan bool, 2)
	go func() { done <- g.Sync() }()
	go func() { done <- g.Sync() }()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-done:
			if !ok {
				t.Error("two-party gate must open, not time out")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("gate never opened")
		}
	}

	lone := NewGate(2, 10*time.Millisecond)
	if lone.Sync() {
		t.Error("lone party must time out")
	}
}

// ensure core import is used even if tests above change.
var _ = core.DeadlockSig
