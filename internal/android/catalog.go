package android

import (
	"fmt"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// Static synchronization-site catalog for experiment E6: the §3.2 census
// of Android 2.2 essential applications, which contain 1,050 synchronized
// blocks/methods and only 15 explicit lock()/unlock() call sites — the
// measurement that justifies Android Dimmunix handling only synchronized
// blocks/methods.
//
// The catalog models the platform's static code: each entry is a real
// Android 2.2 framework or bundled-app class with a plausible number of
// synchronized sites; a deterministic filler brings the total to exactly
// the paper's counts. The same class tables feed the application
// workloads' position pools, so profiled positions look like real ones.

// CatalogEntry is one class's synchronized-site allocation.
type CatalogEntry struct {
	Class       string
	SyncBlocks  int
	SyncMethods int
	// Methods are representative method names; sites cycle through them.
	Methods []string
}

// Paper census targets.
const (
	// TargetSyncSites is the §3.2 count of synchronized blocks/methods.
	TargetSyncSites = 1050
	// TargetExplicitSites is the §3.2 count of explicit lock/unlock
	// operations.
	TargetExplicitSites = 15
)

// FrameworkCatalog returns the modeled class table (without filler).
func FrameworkCatalog() []CatalogEntry {
	return []CatalogEntry{
		{Class: "com.android.server.am.ActivityManagerService", SyncBlocks: 96, SyncMethods: 14, Methods: []string{"startActivity", "bindService", "broadcastIntent", "attachApplication", "updateOomAdj"}},
		{Class: "com.android.server.WindowManagerService", SyncBlocks: 72, SyncMethods: 9, Methods: []string{"addWindow", "relayoutWindow", "performLayout", "setFocusedApp"}},
		{Class: "com.android.server.PackageManagerService", SyncBlocks: 54, SyncMethods: 8, Methods: []string{"installPackage", "queryIntentActivities", "getPackageInfo", "scanPackage"}},
		{Class: "com.android.server.PowerManagerService", SyncBlocks: 33, SyncMethods: 6, Methods: []string{"acquireWakeLock", "releaseWakeLock", "setScreenState", "userActivity"}},
		{Class: "com.android.server.AlarmManagerService", SyncBlocks: 14, SyncMethods: 3, Methods: []string{"set", "remove", "triggerAlarms"}},
		{Class: "com.android.server.AudioService", SyncBlocks: 22, SyncMethods: 5, Methods: []string{"setStreamVolume", "setRingerMode", "playSoundEffect"}},
		{Class: "com.android.server.ConnectivityService", SyncBlocks: 17, SyncMethods: 4, Methods: []string{"enforceAccessPermission", "handleConnect", "getActiveNetworkInfo"}},
		{Class: "com.android.server.WifiService", SyncBlocks: 19, SyncMethods: 4, Methods: []string{"setWifiEnabled", "startScan", "getScanResults"}},
		{Class: "com.android.server.InputMethodManagerService", SyncBlocks: 21, SyncMethods: 3, Methods: []string{"showSoftInput", "hideSoftInput", "bindCurrentMethod"}},
		{Class: "com.android.server.TelephonyRegistry", SyncBlocks: 12, SyncMethods: 2, Methods: []string{"notifyCallState", "notifyServiceState", "listen"}},
		{Class: "com.android.server.BatteryService", SyncBlocks: 6, SyncMethods: 2, Methods: []string{"update", "processValues"}},
		{Class: "com.android.server.ClipboardService", SyncBlocks: 4, SyncMethods: 2, Methods: []string{"setPrimaryClip", "getPrimaryClip"}},
		{Class: "android.os.Handler", SyncBlocks: 5, SyncMethods: 1, Methods: []string{"enqueueMessage", "obtainMessage"}},
		{Class: "android.os.MessageQueue", SyncBlocks: 7, SyncMethods: 2, Methods: []string{"enqueueMessage", "next", "quit", "removeMessages"}},
		{Class: "android.os.Looper", SyncBlocks: 3, SyncMethods: 1, Methods: []string{"loop", "quit"}},
		{Class: "android.os.Binder", SyncBlocks: 4, SyncMethods: 1, Methods: []string{"execTransact", "attachInterface"}},
		{Class: "android.content.res.AssetManager", SyncBlocks: 9, SyncMethods: 3, Methods: []string{"open", "openXmlAsset", "getResourceValue"}},
		{Class: "android.database.sqlite.SQLiteDatabase", SyncBlocks: 26, SyncMethods: 7, Methods: []string{"execSQL", "rawQuery", "beginTransaction", "endTransaction"}},
		{Class: "android.graphics.BitmapFactory", SyncBlocks: 3, SyncMethods: 1, Methods: []string{"decodeStream", "decodeResource"}},
		{Class: "android.view.ViewRoot", SyncBlocks: 11, SyncMethods: 2, Methods: []string{"performTraversals", "scheduleTraversals", "dispatchInput"}},
		{Class: "android.view.SurfaceView", SyncBlocks: 8, SyncMethods: 2, Methods: []string{"updateWindow", "lockCanvas", "unlockCanvasAndPost"}},
		{Class: "android.webkit.WebViewCore", SyncBlocks: 18, SyncMethods: 4, Methods: []string{"sendMessage", "drawContentPicture", "nativeTouchUp"}},
		{Class: "android.webkit.BrowserFrame", SyncBlocks: 7, SyncMethods: 2, Methods: []string{"loadUrl", "didFirstLayout"}},
		{Class: "android.media.MediaPlayer", SyncBlocks: 10, SyncMethods: 3, Methods: []string{"prepare", "start", "release", "postEventFromNative"}},
		{Class: "android.hardware.Camera", SyncBlocks: 6, SyncMethods: 2, Methods: []string{"open", "startPreview", "takePicture"}},
		{Class: "android.location.LocationManager", SyncBlocks: 8, SyncMethods: 2, Methods: []string{"requestLocationUpdates", "getLastKnownLocation"}},
		{Class: "com.android.email.Controller", SyncBlocks: 15, SyncMethods: 4, Methods: []string{"syncMailbox", "sendMessage", "updateMailboxList"}},
		{Class: "com.android.email.mail.store.ImapStore", SyncBlocks: 12, SyncMethods: 3, Methods: []string{"fetch", "checkSettings", "open"}},
		{Class: "com.android.browser.BrowserActivity", SyncBlocks: 13, SyncMethods: 3, Methods: []string{"onPageStarted", "onPageFinished", "updateInLoadMenuItems"}},
		{Class: "com.android.browser.TabControl", SyncBlocks: 7, SyncMethods: 2, Methods: []string{"createNewTab", "removeTab", "getCurrentTab"}},
		{Class: "com.google.android.maps.MapView", SyncBlocks: 16, SyncMethods: 4, Methods: []string{"onDraw", "computeScroll", "preLoad"}},
		{Class: "com.google.android.maps.TileCache", SyncBlocks: 9, SyncMethods: 2, Methods: []string{"getTile", "putTile", "evict"}},
		{Class: "com.android.vending.AssetStore", SyncBlocks: 11, SyncMethods: 3, Methods: []string{"fetchAssets", "installAsset", "refreshList"}},
		{Class: "com.android.calendar.SyncAdapter", SyncBlocks: 8, SyncMethods: 2, Methods: []string{"performSync", "applyBatch"}},
		{Class: "com.google.android.gtalkservice.GTalkConnection", SyncBlocks: 14, SyncMethods: 3, Methods: []string{"sendMessage", "processIncoming", "heartbeat"}},
		{Class: "com.rovio.angrybirds.GameEngine", SyncBlocks: 6, SyncMethods: 2, Methods: []string{"stepPhysics", "renderFrame", "loadLevel"}},
		{Class: "com.android.camera.Camera", SyncBlocks: 9, SyncMethods: 3, Methods: []string{"onSnap", "startPreview", "storeImage"}},
		{Class: "java.util.Hashtable", SyncBlocks: 0, SyncMethods: 12, Methods: []string{"get", "put", "remove", "size", "contains"}},
		{Class: "java.util.Vector", SyncBlocks: 0, SyncMethods: 18, Methods: []string{"add", "get", "remove", "elementAt", "size"}},
		{Class: "java.io.PrintStream", SyncBlocks: 12, SyncMethods: 0, Methods: []string{"println", "write", "format"}},
		{Class: "java.lang.StringBuffer", SyncBlocks: 0, SyncMethods: 16, Methods: []string{"append", "insert", "toString"}},
		{Class: "java.util.Random", SyncBlocks: 2, SyncMethods: 1, Methods: []string{"next", "setSeed"}},
	}
}

// explicitLockCatalog returns the 15 explicit lock/unlock sites (§3.2's
// small minority, typically java.util.concurrent ReentrantLock users).
func explicitLockCatalog() []*vm.Site {
	specs := []struct {
		class  string
		method string
		line   int
	}{
		{"com.android.server.am.ProcessStats", "updateCpuStats", 211},
		{"com.android.server.am.ProcessStats", "getCpuSpeedTimes", 388},
		{"android.os.AsyncTask$SerialExecutor", "execute", 237},
		{"java.util.concurrent.ThreadPoolExecutor", "addWorker", 941},
		{"java.util.concurrent.ThreadPoolExecutor", "processWorkerExit", 1019},
		{"java.util.concurrent.ThreadPoolExecutor", "tryTerminate", 701},
		{"java.util.concurrent.LinkedBlockingQueue", "put", 336},
		{"java.util.concurrent.LinkedBlockingQueue", "take", 439},
		{"java.util.concurrent.LinkedBlockingQueue", "poll", 467},
		{"com.android.browser.WebStorageSizeManager", "scheduleOutOfSpaceNotification", 144},
		{"com.android.email.service.MailService", "reschedule", 262},
		{"com.google.android.gtalkservice.ConnectionLock", "acquire", 44},
		{"com.google.android.gtalkservice.ConnectionLock", "release", 58},
		{"android.webkit.CookieSyncManager", "sync", 173},
		{"com.android.vending.util.WorkService", "enqueueWork", 91},
	}
	sites := make([]*vm.Site, 0, len(specs))
	for _, s := range specs {
		sites = append(sites, &vm.Site{
			Frame: core.Frame{Class: s.class, Method: s.method, Line: s.line},
			Kind:  vm.ExplicitLock,
		})
	}
	return sites
}

// entrySites expands one catalog entry into concrete sites with
// deterministic lines.
func entrySites(e CatalogEntry) []*vm.Site {
	sites := make([]*vm.Site, 0, e.SyncBlocks+e.SyncMethods)
	methods := e.Methods
	if len(methods) == 0 {
		methods = []string{"run"}
	}
	for i := 0; i < e.SyncBlocks; i++ {
		m := methods[i%len(methods)]
		sites = append(sites, vm.NewSite(e.Class, m, 100+i*17))
	}
	for i := 0; i < e.SyncMethods; i++ {
		m := methods[i%len(methods)]
		sites = append(sites, vm.NewMethodSite(e.Class, m+"Sync", 60+i*11))
	}
	return sites
}

// FrameworkCensus builds the full census: the class catalog, the provided
// live-service sites, the explicit-lock minority, and deterministic filler
// classes so the synchronized total is exactly TargetSyncSites.
func FrameworkCensus(serviceSites ...[]*vm.Site) (*vm.Census, error) {
	census := vm.NewCensus()
	syncCount := 0
	for _, group := range serviceSites {
		census.Register(group...)
		syncCount += len(group)
	}
	for _, e := range FrameworkCatalog() {
		sites := entrySites(e)
		census.Register(sites...)
		syncCount += len(sites)
	}
	if syncCount > TargetSyncSites {
		return nil, fmt.Errorf("census: catalog already has %d synchronized sites (> %d)", syncCount, TargetSyncSites)
	}
	// Filler: small utility classes rounding the platform out to the
	// paper's total.
	filler := TargetSyncSites - syncCount
	for i := 0; filler > 0; i++ {
		n := 4
		if n > filler {
			n = filler
		}
		class := fmt.Sprintf("com.android.internal.util.Helper%02d", i)
		for j := 0; j < n; j++ {
			census.Register(vm.NewSite(class, "apply", 40+j*13))
		}
		filler -= n
	}
	census.Register(explicitLockCatalog()...)
	return census, nil
}
