package android

import (
	"fmt"
	"sync"

	"github.com/dimmunix/dimmunix/internal/vm"
)

// Notification is one entry in the notification list.
type Notification struct {
	Pkg  string
	Tag  string
	ID   int
	Seen bool
}

// NotificationCallbacks is the interface the status bar uses to call back
// into the notification manager (NotificationManagerService's inner
// NotificationCallbacks binder in Android 2.2). The callback runs while
// the status bar holds its own lock — one half of the issue-7986
// inversion.
type NotificationCallbacks interface {
	OnPanelRevealed(t *vm.Thread)
	OnNotificationClick(t *vm.Thread, pkg, tag string, id int)
}

// NotificationManagerService models
// com.android.server.NotificationManagerService: the notification list
// guarded by the mNotificationList monitor, with calls into the status bar
// performed while that monitor is held (as in Android 2.2, where
// enqueueNotificationInternal calls mStatusBarService.addNotification
// inside synchronized(mNotificationList)).
type NotificationManagerService struct {
	proc *vm.Process
	// mNotificationList is the service's main lock object.
	mNotificationList *vm.Object
	statusBar         *StatusBarService
	notifications     []Notification

	// raceHook, when non-nil, runs while mNotificationList is held, just
	// before the status-bar call — the scenario's race window (§5: the
	// small application that triggers the deadlock). Guarded by hookMu:
	// it is written by scenario drivers outside the VM.
	hookMu   sync.Mutex
	raceHook func()
}

var _ Service = (*NotificationManagerService)(nil)
var _ NotificationCallbacks = (*NotificationManagerService)(nil)

// The service's program locations (class.method:line), mirroring the
// Android 2.2 sources.
const (
	nmsClass          = "com.android.server.NotificationManagerService"
	nmsCallbacksClass = "com.android.server.NotificationManagerService$NotificationCallbacks"
)

// NewNotificationManagerService creates the service in process p.
func NewNotificationManagerService(p *vm.Process) *NotificationManagerService {
	return &NotificationManagerService{
		proc:              p,
		mNotificationList: p.NewObject("NMS.mNotificationList"),
	}
}

// ServiceName implements Service.
func (n *NotificationManagerService) ServiceName() string { return "notification" }

// SetStatusBar wires the status bar dependency (done by SystemServer after
// both services exist).
func (n *NotificationManagerService) SetStatusBar(sb *StatusBarService) {
	n.statusBar = sb
}

// SetRaceHook installs the scenario race window. nil disables it.
func (n *NotificationManagerService) SetRaceHook(fn func()) {
	n.hookMu.Lock()
	n.raceHook = fn
	n.hookMu.Unlock()
}

// runRaceHook invokes the installed hook, if any.
func (n *NotificationManagerService) runRaceHook() {
	n.hookMu.Lock()
	fn := n.raceHook
	n.hookMu.Unlock()
	if fn != nil {
		fn()
	}
}

// EnqueueNotificationWithTag is the paper's named entry point: it appends
// to the list and pushes the notification to the status bar while holding
// mNotificationList.
func (n *NotificationManagerService) EnqueueNotificationWithTag(t *vm.Thread, pkg, tag string, id int) {
	t.Call(nmsClass, "enqueueNotificationWithTag", 843, func() {
		n.mNotificationList.Synchronized(t, func() {
			n.notifications = append(n.notifications, Notification{Pkg: pkg, Tag: tag, ID: id})
			n.runRaceHook()
			// Still holding mNotificationList: cross into the status bar.
			n.statusBar.AddNotification(t, fmt.Sprintf("%s/%s#%d", pkg, tag, id))
		})
	})
}

// CancelNotificationWithTag removes a notification and retracts its icon.
func (n *NotificationManagerService) CancelNotificationWithTag(t *vm.Thread, pkg, tag string, id int) {
	t.Call(nmsClass, "cancelNotificationWithTag", 934, func() {
		n.mNotificationList.Synchronized(t, func() {
			key := fmt.Sprintf("%s/%s#%d", pkg, tag, id)
			for i, ntf := range n.notifications {
				if ntf.Pkg == pkg && ntf.Tag == tag && ntf.ID == id {
					n.notifications = append(n.notifications[:i], n.notifications[i+1:]...)
					break
				}
			}
			n.statusBar.RemoveNotification(t, key)
		})
	})
}

// OnPanelRevealed implements NotificationCallbacks: called by the status
// bar (while the status bar holds its lock) when the user expands the
// panel; it marks all notifications seen under mNotificationList — the
// other half of the inversion.
func (n *NotificationManagerService) OnPanelRevealed(t *vm.Thread) {
	t.Call(nmsCallbacksClass, "onPanelRevealed", 112, func() {
		n.mNotificationList.Synchronized(t, func() {
			for i := range n.notifications {
				n.notifications[i].Seen = true
			}
		})
	})
}

// OnNotificationClick implements NotificationCallbacks.
func (n *NotificationManagerService) OnNotificationClick(t *vm.Thread, pkg, tag string, id int) {
	t.Call(nmsCallbacksClass, "onNotificationClick", 98, func() {
		n.mNotificationList.Synchronized(t, func() {
			for i, ntf := range n.notifications {
				if ntf.Pkg == pkg && ntf.Tag == tag && ntf.ID == id {
					n.notifications[i].Seen = true
				}
			}
		})
	})
}

// Count returns the number of pending notifications.
func (n *NotificationManagerService) Count(t *vm.Thread) int {
	count := 0
	t.Call(nmsClass, "getNotificationCount", 1011, func() {
		n.mNotificationList.Synchronized(t, func() {
			count = len(n.notifications)
		})
	})
	return count
}

// censusSites lists this service's static synchronization sites for the
// §3.2 census.
func (n *NotificationManagerService) censusSites() []*vm.Site {
	return []*vm.Site{
		vm.NewSite(nmsClass, "enqueueNotificationWithTag", 843),
		vm.NewSite(nmsClass, "cancelNotificationWithTag", 934),
		vm.NewSite(nmsClass, "getNotificationCount", 1011),
		vm.NewSite(nmsCallbacksClass, "onPanelRevealed", 112),
		vm.NewSite(nmsCallbacksClass, "onNotificationClick", 98),
	}
}
