package android

import "github.com/dimmunix/dimmunix/internal/vm"

// Service is anything registrable with the ServiceManager.
type Service interface {
	// ServiceName is the binder registration name (e.g. "notification").
	ServiceName() string
}

// ServiceManager is the system service registry (android.os.ServiceManager
// backed by servicemanager). Registration and lookup synchronize on a VM
// monitor, like the real sCache lock.
type ServiceManager struct {
	proc     *vm.Object
	services map[string]Service
}

// NewServiceManager creates the registry in process p.
func NewServiceManager(p *vm.Process) *ServiceManager {
	return &ServiceManager{
		proc:     p.NewObject("ServiceManager.sCache"),
		services: make(map[string]Service),
	}
}

// AddService registers a service.
func (sm *ServiceManager) AddService(t *vm.Thread, svc Service) {
	t.Call("android.os.ServiceManager", "addService", 72, func() {
		sm.proc.Synchronized(t, func() {
			sm.services[svc.ServiceName()] = svc
		})
	})
}

// GetService looks a service up, or returns nil.
func (sm *ServiceManager) GetService(t *vm.Thread, name string) Service {
	var svc Service
	t.Call("android.os.ServiceManager", "getService", 49, func() {
		sm.proc.Synchronized(t, func() {
			svc = sm.services[name]
		})
	})
	return svc
}

// ListServices returns the registered service names.
func (sm *ServiceManager) ListServices(t *vm.Thread) []string {
	var names []string
	t.Call("android.os.ServiceManager", "listServices", 95, func() {
		sm.proc.Synchronized(t, func() {
			names = make([]string, 0, len(sm.services))
			for n := range sm.services {
				names = append(names, n)
			}
		})
	})
	return names
}
