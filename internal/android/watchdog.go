package android

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/vm"
)

// Watchdog models com.android.server.Watchdog's HandlerChecker scheme: it
// keeps one outstanding heartbeat message per monitored handler and
// declares the platform frozen when a heartbeat has not executed within
// the freeze threshold — which is what happens when a looper thread is
// party to a deadlock. The threshold is deliberately much larger than the
// check interval (the real watchdog uses 60s) so that transient blocking —
// including Dimmunix avoidance yields — is never misread as a freeze. On a
// real phone the watchdog kills system_server; here it reports the freeze
// so the Phone controller can reboot.
type Watchdog struct {
	proc      *vm.Process
	interval  time.Duration
	threshold time.Duration
	onFreeze  func(handlerName string)
	checks    []*handlerCheck
	thread    *vm.Thread
}

// handlerCheck is one monitored looper thread's heartbeat state. Like
// Android's per-thread HandlerChecker, handlers sharing a looper share a
// check: a frozen looper is one freeze, however many services it hosts.
type handlerCheck struct {
	looper  *Looper
	handler *Handler
	// completed is set by the heartbeat executing on the looper.
	completed atomic.Bool
	// postedAt is when the outstanding heartbeat was posted.
	postedAt time.Time
	// outstanding reports whether a heartbeat is in flight.
	outstanding bool
	// reported suppresses duplicate freeze reports per episode.
	reported bool
}

// StartWatchdog launches the watchdog thread in p monitoring the given
// handlers' looper threads. A looper is declared frozen when its heartbeat
// stays unprocessed for longer than threshold. onFreeze is invoked (from
// the watchdog's VM thread) with the looper name, once per looper per
// freeze episode; it must not block.
func StartWatchdog(p *vm.Process, handlers []*Handler, interval, threshold time.Duration, onFreeze func(string)) (*Watchdog, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("watchdog: non-positive interval %v", interval)
	}
	if threshold < interval {
		return nil, fmt.Errorf("watchdog: threshold %v below interval %v", threshold, interval)
	}
	w := &Watchdog{proc: p, interval: interval, threshold: threshold, onFreeze: onFreeze}
	seen := make(map[*Looper]bool, len(handlers))
	for _, h := range handlers {
		if seen[h.Looper()] {
			continue
		}
		seen[h.Looper()] = true
		w.checks = append(w.checks, &handlerCheck{looper: h.Looper(), handler: h})
	}
	th, err := p.Start("watchdog", w.run)
	if err != nil {
		return nil, fmt.Errorf("watchdog: %w", err)
	}
	w.thread = th
	return w, nil
}

// run is the watchdog loop: keep a heartbeat outstanding per handler and
// flag the ones that exceed the threshold.
func (w *Watchdog) run(t *vm.Thread) {
	t.Call("com.android.server.Watchdog", "run", 351, func() {
		for w.sleep() {
			now := time.Now()
			for _, c := range w.checks {
				w.checkOne(t, c, now)
			}
		}
	})
}

// checkOne advances one handler's heartbeat state machine.
func (w *Watchdog) checkOne(t *vm.Thread, c *handlerCheck, now time.Time) {
	if c.outstanding {
		if c.completed.Load() {
			// Heartbeat landed: the handler is healthy again.
			c.outstanding = false
			c.reported = false
		} else if now.Sub(c.postedAt) >= w.threshold {
			if !c.reported {
				c.reported = true
				if w.onFreeze != nil {
					w.onFreeze(c.looper.Name())
				}
			}
			return // keep the episode open until the heartbeat lands
		} else {
			return // still within threshold: wait
		}
	}
	c.completed.Store(false)
	c.postedAt = now
	c.outstanding = true
	check := c
	c.handler.Post(t, func(*vm.Thread) { check.completed.Store(true) })
}

// sleep waits one interval in small slices so process teardown is prompt.
// It reports false when the process died while sleeping.
func (w *Watchdog) sleep() bool {
	const slice = 2 * time.Millisecond
	deadline := time.Now().Add(w.interval)
	for time.Now().Before(deadline) {
		if w.proc.Killed() {
			return false
		}
		time.Sleep(slice)
	}
	return !w.proc.Killed()
}
