package android

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// TestNotificationCancelFlow exercises the cancel path: enqueue installs
// an icon, cancel retracts it.
func TestNotificationCancelFlow(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	ss := ph.System()

	user, err := ss.Proc.Start("user", func(th *vm.Thread) {
		ss.NMS.EnqueueNotificationWithTag(th, "com.app", "chat", 7)
		ss.NMS.EnqueueNotificationWithTag(th, "com.app", "mail", 8)
		if n := ss.NMS.Count(th); n != 2 {
			t.Errorf("count after enqueue = %d, want 2", n)
		}
		if n := ss.StatusBar.IconCount(th); n != 2 {
			t.Errorf("icons after enqueue = %d, want 2", n)
		}
		ss.NMS.CancelNotificationWithTag(th, "com.app", "chat", 7)
		if n := ss.NMS.Count(th); n != 1 {
			t.Errorf("count after cancel = %d, want 1", n)
		}
		if n := ss.StatusBar.IconCount(th); n != 1 {
			t.Errorf("icons after cancel = %d, want 1", n)
		}
		icons := ss.StatusBar.Icons(th)
		if len(icons) != 1 || icons[0] != "com.app/mail#8" {
			t.Errorf("icons = %v", icons)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-user.Done()
	if user.Err() != nil {
		t.Fatal(user.Err())
	}
}

// TestNotificationClickMarksSeen exercises the callback interface's click
// path and the collapse message.
func TestNotificationClickAndCollapse(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	ss := ph.System()

	user, err := ss.Proc.Start("user", func(th *vm.Thread) {
		ss.NMS.EnqueueNotificationWithTag(th, "com.app", "chat", 7)
		ss.NMS.OnNotificationClick(th, "com.app", "chat", 7)
		ss.StatusBar.CollapseNotificationsPanel(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	<-user.Done()
	if user.Err() != nil {
		t.Fatal(user.Err())
	}
	// The collapse message lands on the UI looper.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && ss.UILooper.Dispatched() == 0 {
		time.Sleep(time.Millisecond)
	}
	if ss.UILooper.Dispatched() == 0 {
		t.Error("collapse message never dispatched")
	}
}

func TestDefaultPhoneConfig(t *testing.T) {
	cfg := DefaultPhoneConfig()
	if !cfg.Dimmunix {
		t.Error("default phone must have immunity on")
	}
	if cfg.History == nil {
		t.Error("default phone must carry a history store")
	}
	if cfg.WatchdogThreshold <= cfg.GateTimeout {
		t.Error("watchdog threshold must exceed the gate timeout (avoidance yields must not read as freezes)")
	}
}

func TestScenarioOutcomeStrings(t *testing.T) {
	if OutcomeCompleted.String() != "completed" || OutcomeFroze.String() != "froze" {
		t.Error("outcome strings wrong")
	}
	if ScenarioOutcome(9).String() == "" {
		t.Error("unknown outcome must render")
	}
}

func TestFreezeEventsExposed(t *testing.T) {
	ph := NewPhone(testPhoneConfig(true, core.NewMemHistory()))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()
	done, err := ph.System().NotificationRace(ph.cfg.GateTimeout)
	if err != nil {
		t.Fatal(err)
	}
	_ = done
	select {
	case name := <-ph.FreezeEvents():
		if name != "android.ui" {
			t.Errorf("freeze event = %q", name)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no freeze event")
	}
}

func TestMessageQueueLen(t *testing.T) {
	p := testProc(t)
	q := newMessageQueue(p, "q")
	th, err := p.Start("w", func(th *vm.Thread) {
		q.Enqueue(th, Message{What: 1})
		q.Enqueue(th, Message{What: 2})
		if n := q.Len(th); n != 2 {
			t.Errorf("Len = %d, want 2", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-th.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("thread hung")
	}
}

func TestLooperName(t *testing.T) {
	p := testProc(t)
	l, err := StartLooper(p, "named")
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "named" {
		t.Errorf("Name = %q", l.Name())
	}
	if h := NewHandler(l, "h", nil); h.Looper() != l || h.Name() != "h" {
		t.Error("handler accessors wrong")
	}
}
