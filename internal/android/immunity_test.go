package android

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// immunityPhoneConfig is testPhoneConfig with the live-propagation hub.
func immunityPhoneConfig(hub *immunity.Service) PhoneConfig {
	cfg := testPhoneConfig(true, nil)
	cfg.Immunity = hub
	return cfg
}

// TestPhoneLivePropagationNoRestart is the platform-level tentpole check:
// the issue-7986 freeze in system_server immunizes an application process
// that has been running since before the deadlock, with no reboot and no
// app restart.
func TestPhoneLivePropagationNoRestart(t *testing.T) {
	hub, err := immunity.NewService("phone0", core.NewMemHistory())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	ph := NewPhone(immunityPhoneConfig(hub))
	if err := ph.Boot(); err != nil {
		t.Fatal(err)
	}
	defer ph.Shutdown()

	// The app is already running when the platform deadlock happens.
	app, err := ph.ForkApp("com.example.bystander")
	if err != nil {
		t.Fatal(err)
	}
	if app.Dimmunix().HistorySize() != 0 {
		t.Fatal("bystander app armed before any detection")
	}

	outcome, err := ph.RunNotificationScenario(scenarioTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeFroze {
		t.Fatalf("run 1 outcome = %v, want froze", outcome)
	}

	// The signature reaches the live app process without any restart.
	deadline := time.Now().Add(5 * time.Second)
	for app.Dimmunix().HistorySize() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bystander app never hot-installed the antibody")
		}
		time.Sleep(time.Millisecond)
	}
	if got := app.Dimmunix().Stats().SignaturesInstalled; got == 0 {
		t.Error("antibody arrived by some path other than hot-install")
	}

	// The watchdog stamped the freeze with the hub epoch.
	sys := ph.System()
	if sys.Immunity == nil {
		t.Fatal("immunity service not wired into system_server")
	}
	notes := sys.Immunity.Freezes()
	if len(notes) == 0 {
		t.Fatal("watchdog freeze not noted on the immunity service")
	}
	if notes[0].Epoch == 0 {
		t.Errorf("freeze note epoch = 0, want >= 1 (detection precedes the watchdog threshold)")
	}

	// The service is discoverable like any system service.
	lookup, err := sys.Proc.Start("lookup", func(th *vm.Thread) {
		if svc := sys.SM.GetService(th, "dimmunix"); svc == nil {
			t.Error(`GetService("dimmunix") = nil`)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-lookup.Done()

	// Reboot against the same hub: the scenario is avoided (the paper's
	// run 2), proving the hub carried the history across the boot.
	if err := ph.Reboot(); err != nil {
		t.Fatal(err)
	}
	outcome, err = ph.RunNotificationScenario(scenarioTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeCompleted {
		t.Fatalf("run 2 outcome = %v, want completed", outcome)
	}
}
