package android

import (
	"fmt"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
)

// ImmunityService is the system-server face of the platform immunity
// hub: the binder-registered service ("dimmunix") wrapping the
// internal/immunity.Service that every forked process publishes to and
// subscribes from. Its watchdog integration records, for each freeze the
// watchdog declares, the hub epoch at that moment — so a freeze report
// shows whether the hang produced (or already had) an antibody: a freeze
// whose episode bumped the epoch is a detected deadlock whose signature
// is already propagating to every live process while the watchdog is
// still counting down.
type ImmunityService struct {
	hub *immunity.Service

	mu      sync.Mutex
	freezes []FreezeNote
}

// FreezeNote is one watchdog freeze as seen by the immunity service.
type FreezeNote struct {
	// Looper is the frozen looper thread's name.
	Looper string
	// When is the freeze report time.
	When time.Time
	// Epoch is the immunity hub's history epoch at the freeze — the
	// number of antibodies the platform held when the watchdog fired.
	Epoch uint64
}

// String renders the note for logs.
func (n FreezeNote) String() string {
	return fmt.Sprintf("freeze looper=%s epoch=%d at %s", n.Looper, n.Epoch, n.When.Format(time.RFC3339))
}

// NewImmunityService wraps the device hub for service registration.
func NewImmunityService(hub *immunity.Service) *ImmunityService {
	return &ImmunityService{hub: hub}
}

// ServiceName implements Service: the binder name apps resolve.
func (s *ImmunityService) ServiceName() string { return "dimmunix" }

// Hub returns the underlying device immunity hub.
func (s *ImmunityService) Hub() *immunity.Service { return s.hub }

// NoteFreeze records a watchdog freeze with the current hub epoch. Called
// from the watchdog path; it must not block (and does not: one mutex and
// an epoch read).
func (s *ImmunityService) NoteFreeze(looper string) {
	note := FreezeNote{Looper: looper, When: time.Now(), Epoch: s.hub.Epoch()}
	s.mu.Lock()
	s.freezes = append(s.freezes, note)
	s.mu.Unlock()
}

// Freezes returns the recorded freeze notes, oldest first.
func (s *ImmunityService) Freezes() []FreezeNote {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FreezeNote, len(s.freezes))
	copy(out, s.freezes)
	return out
}
