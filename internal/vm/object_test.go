package vm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// dimProcess creates a process backed by a fresh Dimmunix core.
func dimProcess(t *testing.T, opts ...core.Option) *Process {
	t.Helper()
	c, err := core.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess("dim", c)
	t.Cleanup(p.Kill)
	return p
}

func vanillaProcess(t *testing.T) *Process {
	t.Helper()
	p := NewProcess("vanilla", nil)
	t.Cleanup(p.Kill)
	return p
}

func TestThinLockFastPath(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Errorf("Enter: %v", err)
		}
		if o.IsFat() {
			t.Error("uncontended enter must stay thin")
		}
		if err := o.Exit(th); err != nil {
			t.Errorf("Exit: %v", err)
		}
	})
	waitDone(t, th)
	st := p.Stats()
	if st.ThinEnters != 1 || st.FatEnters != 0 {
		t.Errorf("thin=%d fat=%d, want 1/0", st.ThinEnters, st.FatEnters)
	}
	if st.SyncOps != 1 {
		t.Errorf("SyncOps = %d, want 1", st.SyncOps)
	}
}

func TestThinLockRecursion(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		const depth = 10
		for i := 0; i < depth; i++ {
			if err := o.Enter(th); err != nil {
				t.Errorf("Enter %d: %v", i, err)
			}
		}
		if o.IsFat() {
			t.Error("shallow recursion must stay thin")
		}
		for i := 0; i < depth; i++ {
			if err := o.Exit(th); err != nil {
				t.Errorf("Exit %d: %v", i, err)
			}
		}
		if o.lw.Load() != 0 {
			t.Errorf("lock word = %#x after full exit, want 0", o.lw.Load())
		}
	})
	waitDone(t, th)
}

func TestThinLockRecursionOverflowInflates(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		total := maxThinRecursion + 10
		for i := 0; i < total; i++ {
			if err := o.Enter(th); err != nil {
				t.Errorf("Enter %d: %v", i, err)
			}
		}
		if !o.IsFat() {
			t.Error("recursion overflow must inflate")
		}
		for i := 0; i < total; i++ {
			if err := o.Exit(th); err != nil {
				t.Errorf("Exit %d: %v", i, err)
			}
		}
		if o.Monitor().Owner() != nil {
			t.Error("monitor must be free after matching exits")
		}
	})
	waitDone(t, th)
}

func TestExitNotOwner(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("o")
	hold := make(chan struct{})
	release := make(chan struct{})
	owner := startThread(t, p, "owner", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Errorf("Enter: %v", err)
		}
		close(hold)
		<-release
		if err := o.Exit(th); err != nil {
			t.Errorf("Exit: %v", err)
		}
	})
	intruder := startThread(t, p, "intruder", func(th *Thread) {
		<-hold
		if err := o.Exit(th); !errors.Is(err, ErrNotOwner) {
			t.Errorf("foreign Exit = %v, want ErrNotOwner", err)
		}
		close(release)
	})
	waitDone(t, owner)
	waitDone(t, intruder)

	// Exit of a never-locked object.
	lone := startThread(t, p, "lone", func(th *Thread) {
		if err := o.Exit(th); !errors.Is(err, ErrNotOwner) {
			t.Errorf("Exit unlocked = %v, want ErrNotOwner", err)
		}
	})
	waitDone(t, lone)
}

func TestForeignThreadRejected(t *testing.T) {
	p1 := vanillaProcess(t)
	p2 := vanillaProcess(t)
	o := p1.NewObject("o")
	th := startThread(t, p2, "alien", func(th *Thread) {
		if err := o.Enter(th); !errors.Is(err, ErrForeignThread) {
			t.Errorf("cross-process Enter = %v, want ErrForeignThread", err)
		}
	})
	waitDone(t, th)
	if err := o.Enter(nil); !errors.Is(err, ErrNilThread) {
		t.Errorf("nil thread = %v, want ErrNilThread", err)
	}
}

// TestThinLockMutualExclusion stress-checks the CAS protocol: N threads
// increment a plain counter under the thin lock; any exclusion bug shows
// up as a lost update (and as a race under -race).
func TestThinLockMutualExclusion(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("ctr")
	const workers = 8
	const iters = 500
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		th := startThread(t, p, "w", func(th *Thread) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				if err := o.Enter(th); err != nil {
					t.Errorf("Enter: %v", err)
					return
				}
				counter++
				if err := o.Exit(th); err != nil {
					t.Errorf("Exit: %v", err)
					return
				}
			}
		})
		_ = th
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates!)", counter, workers*iters)
	}
	// Contention should have promoted the lock.
	if !o.IsFat() {
		t.Log("note: lock stayed thin (low contention this run)") // not an error: scheduling-dependent
	}
}

func TestDimmunixModeFattensImmediately(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Errorf("Enter: %v", err)
		}
		if !o.IsFat() {
			t.Error("Dimmunix mode must fatten on first monitorenter (§4)")
		}
		if err := o.Exit(th); err != nil {
			t.Errorf("Exit: %v", err)
		}
	})
	waitDone(t, th)
	// The core must have seen the full interception sequence.
	st := p.Dimmunix().Stats()
	if st.Requests != 1 || st.Acquisitions != 1 || st.Releases != 1 {
		t.Errorf("core saw %d/%d/%d, want 1/1/1", st.Requests, st.Acquisitions, st.Releases)
	}
}

func TestDimmunixRecursiveEnterSkipsCore(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Error(err)
		}
		if err := o.Enter(th); err != nil { // recursive
			t.Error(err)
		}
		if err := o.Exit(th); err != nil {
			t.Error(err)
		}
		if err := o.Exit(th); err != nil {
			t.Error(err)
		}
	})
	waitDone(t, th)
	st := p.Dimmunix().Stats()
	if st.Requests != 1 {
		t.Errorf("core Requests = %d, want 1 (recursion must not call the core)", st.Requests)
	}
	if st.Releases != 1 {
		t.Errorf("core Releases = %d, want 1", st.Releases)
	}
}

func TestPositionsComeFromFrames(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		th.Call("com.app.Service", "handle", 42, func() {
			o.Synchronized(th, func() {})
		})
	})
	waitDone(t, th)
	if n := p.Dimmunix().PositionCount(); n != 1 {
		t.Fatalf("positions = %d, want 1", n)
	}
	// Same site again: still one position (interned).
	th2 := startThread(t, p, "w2", func(th *Thread) {
		th.Call("com.app.Service", "handle", 42, func() {
			o.Synchronized(th, func() {})
		})
	})
	waitDone(t, th2)
	if n := p.Dimmunix().PositionCount(); n != 1 {
		t.Errorf("positions after repeat = %d, want 1", n)
	}
}

func TestEnterAtUsesStaticSite(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	site := NewSite("com.app.S", "m", 7)
	th := startThread(t, p, "w", func(th *Thread) {
		// No frames pushed: the position must come from the site, not the
		// (synthetic) stack.
		if err := o.EnterAt(th, site); err != nil {
			t.Error(err)
		}
		if err := o.Exit(th); err != nil {
			t.Error(err)
		}
	})
	waitDone(t, th)
	if n := p.Dimmunix().PositionCount(); n != 1 {
		t.Fatalf("positions = %d, want 1", n)
	}
	// A second process-independent use of the same site resolves to the
	// same cached position.
	th2 := startThread(t, p, "w2", func(th *Thread) {
		o.SynchronizedAt(th, site, func() {})
	})
	waitDone(t, th2)
	if n := p.Dimmunix().PositionCount(); n != 1 {
		t.Errorf("positions = %d, want 1 (site cached)", n)
	}
}

func TestKillUnblocksContender(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	held := make(chan struct{})
	blocked := startThread(t, p, "blocked", func(th *Thread) {
		<-held
		err := o.Enter(th)
		if !errors.Is(err, ErrProcessKilled) && !errors.Is(err, core.ErrCoreClosed) {
			t.Errorf("Enter on killed process = %v", err)
		}
	})
	holder := startThread(t, p, "holder", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Error(err)
			return
		}
		close(held)
		<-th.proc.killCh // hold until teardown
	})
	pollUntil(t, "contender blocked", func() bool {
		m := o.Monitor()
		return m != nil && m.Blocked() > 0
	})
	p.Kill()
	waitDone(t, blocked)
	waitDone(t, holder)
}

func TestKillUnblocksThinSpinner(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("o")
	held := make(chan struct{})
	holder := startThread(t, p, "holder", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Error(err)
			return
		}
		close(held)
		<-th.proc.killCh
	})
	spinner := startThread(t, p, "spinner", func(th *Thread) {
		<-held
		if err := o.Enter(th); !errors.Is(err, ErrProcessKilled) {
			t.Errorf("spinner Enter = %v, want ErrProcessKilled", err)
		}
	})
	<-held
	time.Sleep(5 * time.Millisecond) // let the spinner start contending
	p.Kill()
	waitDone(t, holder)
	waitDone(t, spinner)
}
