package vm

import (
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Monitor is a fat lock: Dalvik's struct Monitor with the paper's added
// RAG node. It provides mutual exclusion with recursion and the
// wait/notify wait set, and drives the Dimmunix interception:
//
//	dvmGetCallStack + getPosition          (capture, intern)
//	Request  — before blocking on the lock (detection + avoidance)
//	Acquired — right after obtaining it
//	Release  — right before releasing it
type Monitor struct {
	obj  *Object
	proc *Process
	// node is the RAG lock node ("Node node" added to struct Monitor);
	// nil when the process runs vanilla.
	node *core.Node

	mu        sync.Mutex
	acqCond   *sync.Cond
	owner     *Thread
	recursion int
	// blocked counts threads inside the acquisition loop (diagnostics).
	blocked int
	// waitSet holds threads parked in Object.wait, in arrival order.
	waitSet []*waitNode
}

// waitNode parks one waiting thread.
type waitNode struct {
	t        *Thread
	notified bool
	ch       chan struct{}
}

// Owner returns the current owner, or nil. Diagnostic only: the value may
// be stale by the time it is observed.
func (m *Monitor) Owner() *Thread {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owner
}

// Blocked returns how many threads are currently blocked entering.
func (m *Monitor) Blocked() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blocked
}

// enter acquires the monitor for t with the given recursion level
// (normally 1; Object.wait re-acquisition restores its saved count).
// site, when non-nil, supplies a pre-resolved position (static-id mode).
func (m *Monitor) enter(t *Thread, recursion int, site *Site) error {
	m.mu.Lock()
	if m.owner == t {
		m.recursion += recursion
		m.mu.Unlock()
		m.proc.stats.recursiveEnters.Add(1)
		m.proc.noteSync()
		return nil
	}
	m.mu.Unlock()

	// Dimmunix interception: position capture + Request. This may suspend
	// the thread in avoidance; it returns an error only if the core is
	// closed (process teardown) or detection fails the request.
	dim := m.proc.dim
	if dim != nil {
		pos, err := m.resolvePosition(t, site)
		if err != nil {
			return err
		}
		t.setState(StateBlocked)
		if err := dim.Request(t.node, m.node, pos); err != nil {
			t.setState(StateRunnable)
			return err
		}
	}

	m.mu.Lock()
	t.setState(StateBlocked)
	m.blocked++
	for {
		// The kill check runs on every wakeup and before the first wait:
		// a thread must never acquire a monitor (and run its critical
		// section) on a process being torn down, even if the owner's
		// unwinding just released it.
		if m.proc.isKilled() {
			m.blocked--
			m.mu.Unlock()
			t.setState(StateRunnable)
			if dim != nil {
				dim.Abort(t.node, m.node)
			}
			return ErrProcessKilled
		}
		if m.owner == nil {
			break
		}
		m.acqCond.Wait()
	}
	m.blocked--
	m.owner = t
	m.recursion = recursion
	m.mu.Unlock()
	t.setState(StateRunnable)

	if dim != nil {
		dim.Acquired(t.node, m.node)
	}
	m.proc.stats.fatEnters.Add(1)
	m.proc.noteSync()
	return nil
}

// resolvePosition produces the monitorenter position: the pre-resolved
// site id when available, otherwise a stack capture + intern (the paper's
// dvmGetCallStack + getPosition pair).
func (m *Monitor) resolvePosition(t *Thread, site *Site) (*core.Position, error) {
	if site != nil {
		return site.position(m.proc)
	}
	stack := t.captureTop(m.proc.captureDepth)
	return m.proc.dim.Intern(stack)
}

// exit releases the monitor (one recursion level).
func (m *Monitor) exit(t *Thread) error {
	m.mu.Lock()
	if m.owner != t {
		m.mu.Unlock()
		return ErrNotOwner
	}
	if m.recursion > 1 {
		m.recursion--
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()

	// Dimmunix interception right before the release (§4: unlockMonitor
	// notifies yielders on in-history positions, then calls Release).
	if dim := m.proc.dim; dim != nil {
		dim.Release(t.node, m.node)
	}

	m.mu.Lock()
	m.owner = nil
	m.recursion = 0
	m.acqCond.Signal()
	m.mu.Unlock()
	return nil
}

// wait implements Object.wait on the fat monitor: full release, park,
// re-acquire through the complete interception path (§3.2's waitMonitor
// change), restoring the saved recursion count.
func (m *Monitor) wait(t *Thread, timeout time.Duration) (bool, error) {
	m.mu.Lock()
	if m.owner != t {
		m.mu.Unlock()
		return false, ErrNotOwner
	}
	if t.Interrupted() {
		m.mu.Unlock()
		return false, ErrInterrupted
	}
	saved := m.recursion
	wn := &waitNode{t: t, ch: make(chan struct{})}
	m.waitSet = append(m.waitSet, wn)
	m.mu.Unlock()

	// Fully release the monitor (wait releases all recursion levels).
	if dim := m.proc.dim; dim != nil {
		dim.Release(t.node, m.node)
	}
	m.mu.Lock()
	m.owner = nil
	m.recursion = 0
	m.acqCond.Signal()
	m.mu.Unlock()
	m.proc.stats.waits.Add(1)

	// Park.
	t.setState(StateWaiting)
	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	interrupted := false
	killed := false
	select {
	case <-wn.ch:
	case <-timerC:
	case <-t.interruptCh:
		interrupted = true
	case <-m.proc.killCh:
		killed = true
	}
	t.setState(StateRunnable)

	// Determine the outcome and leave the wait set. A concurrent notify
	// wins over timeout/interrupt, consuming the notification (so it is
	// not lost for other waiters).
	m.mu.Lock()
	notified := wn.notified
	if !notified {
		m.removeWaiter(wn)
	}
	m.mu.Unlock()

	if killed {
		// Process teardown: do not re-acquire; unwind.
		return notified, ErrProcessKilled
	}

	// Re-acquire through the full path: this is where wait-inversion
	// deadlocks form, and exactly what Android Dimmunix intercepts by
	// changing the Object.wait native method (§3.2).
	if err := m.enter(t, saved, nil); err != nil {
		return notified, err
	}
	if interrupted {
		t.interrupted.Store(false)
		t.drainInterrupt()
		return notified, ErrInterrupted
	}
	return notified, nil
}

// removeWaiter unlinks wn from the wait set. Caller must hold m.mu.
func (m *Monitor) removeWaiter(wn *waitNode) {
	for i, x := range m.waitSet {
		if x == wn {
			m.waitSet = append(m.waitSet[:i], m.waitSet[i+1:]...)
			return
		}
	}
}

// notify wakes one (or all) waiters. Caller must own the monitor.
func (m *Monitor) notify(t *Thread, all bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.owner != t {
		return ErrNotOwner
	}
	for len(m.waitSet) > 0 {
		wn := m.waitSet[0]
		m.waitSet = m.waitSet[1:]
		wn.notified = true
		close(wn.ch)
		m.proc.stats.notifies.Add(1)
		if !all {
			break
		}
	}
	return nil
}

// killWake wakes every thread parked in this monitor (acquisition and wait
// set) during process teardown. Parked acquirers observe the killed flag;
// waiters observe killCh directly, so only the acquisition condition needs
// a broadcast.
func (m *Monitor) killWake() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acqCond.Broadcast()
}
