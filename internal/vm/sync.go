package vm

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dimmunix/dimmunix/internal/core"
)

// SiteKind classifies a synchronization site in simulated platform code,
// for the §3.2 census (Android 2.2 essential applications contain 1,050
// synchronized blocks/methods and only 15 explicit lock/unlock sites).
type SiteKind int

// Synchronization site kinds.
const (
	// SyncBlock is a synchronized(obj){...} block.
	SyncBlock SiteKind = iota + 1
	// SyncMethod is a synchronized method (a block over `this`).
	SyncMethod
	// ExplicitLock is an explicit lock()/unlock() pair (the minority case
	// Android Dimmunix does not intercept; counted for the census).
	ExplicitLock
)

// String returns a readable kind name.
func (k SiteKind) String() string {
	switch k {
	case SyncBlock:
		return "synchronized-block"
	case SyncMethod:
		return "synchronized-method"
	case ExplicitLock:
		return "explicit-lock"
	default:
		return fmt.Sprintf("SiteKind(%d)", int(k))
	}
}

// Site is a static synchronization statement: a program location that
// performs monitorenter. Sites serve two purposes: they are the unit of
// the §3.2 census, and they implement the §4 proposal of compiler-assigned
// static ids ("the compiler could produce a unique id for each
// synchronization statement ... retrieving the id would not incur any
// performance penalty") — EnterAt with a Site skips the stack capture.
type Site struct {
	// Frame is the site's program location.
	Frame core.Frame
	// Kind classifies the site.
	Kind SiteKind
}

// NewSite declares a synchronized-block site.
func NewSite(class, method string, line int) *Site {
	return &Site{Frame: core.Frame{Class: class, Method: method, Line: line}, Kind: SyncBlock}
}

// NewMethodSite declares a synchronized-method site.
func NewMethodSite(class, method string, line int) *Site {
	return &Site{Frame: core.Frame{Class: class, Method: method, Line: line}, Kind: SyncMethod}
}

// position resolves (and caches) the site's interned Position in process
// p. Positions are per-process, so the cache lives on the process. The
// cache is lock-free on the hit path (every monitorenter at an already
// seen site), keeping static-id interception off all process locks — the
// VM half of the core's sharded low-contention fast path. Interning is
// idempotent (the core's sharded table returns the same *Position for the
// same stack), so a racing first use stores the same value.
func (s *Site) position(p *Process) (*core.Position, error) {
	if pos, ok := p.sites.Load(s); ok {
		return pos.(*core.Position), nil
	}
	pos, err := p.dim.Intern(core.CallStack{s.Frame})
	if err != nil {
		return nil, err
	}
	if _, loaded := p.sites.LoadOrStore(s, pos); !loaded {
		p.siteCount.Add(1)
	}
	return pos, nil
}

// Synchronized runs body as a synchronized(o){...} block on thread t. If
// the monitor cannot be entered because the process is being torn down (or
// a fail-policy deadlock fires), the thread unwinds — the VM equivalent of
// a Java thread dying from an exception; Process.Start's trampoline
// absorbs it.
func (o *Object) Synchronized(t *Thread, body func()) {
	if err := o.Enter(t); err != nil {
		unwind(err)
	}
	defer o.exitOrUnwind(t)
	body()
}

// SynchronizedAt is Synchronized with a static site id (ablation A5).
func (o *Object) SynchronizedAt(t *Thread, site *Site, body func()) {
	if err := o.EnterAt(t, site); err != nil {
		unwind(err)
	}
	defer o.exitOrUnwind(t)
	body()
}

// exitOrUnwind releases the monitor on block exit. During a kill-driven
// unwind the exit may legitimately fail (e.g. a Wait abandoned the monitor
// without re-acquiring); re-panicking there would mask the original
// teardown error, so failures on a dying process are swallowed.
func (o *Object) exitOrUnwind(t *Thread) {
	if err := o.Exit(t); err != nil && !o.proc.isKilled() {
		unwind(err)
	}
}

// Census tallies the static synchronization sites declared by the
// simulated platform and applications, reproducing the §3.2 measurement
// that justifies handling only synchronized blocks/methods.
type Census struct {
	mu    sync.Mutex
	sites []*Site
}

// NewCensus returns an empty census.
func NewCensus() *Census { return &Census{} }

// Register adds sites to the census.
func (c *Census) Register(sites ...*Site) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sites = append(c.sites, sites...)
}

// CensusCounts summarizes a census.
type CensusCounts struct {
	SyncBlocks      int
	SyncMethods     int
	ExplicitLocks   int
	TotalSyncSites  int // blocks + methods
	TotalSites      int
	ClassesDeclared int
}

// Counts tallies the registered sites.
func (c *Census) Counts() CensusCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	classes := make(map[string]bool)
	var out CensusCounts
	for _, s := range c.sites {
		classes[s.Frame.Class] = true
		switch s.Kind {
		case SyncBlock:
			out.SyncBlocks++
		case SyncMethod:
			out.SyncMethods++
		case ExplicitLock:
			out.ExplicitLocks++
		}
	}
	out.TotalSyncSites = out.SyncBlocks + out.SyncMethods
	out.TotalSites = len(c.sites)
	out.ClassesDeclared = len(classes)
	return out
}

// ByClass returns per-class site counts, sorted by class name, for the
// syncstats report.
func (c *Census) ByClass() []ClassSites {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := make(map[string]*ClassSites)
	for _, s := range c.sites {
		cs, ok := agg[s.Frame.Class]
		if !ok {
			cs = &ClassSites{Class: s.Frame.Class}
			agg[s.Frame.Class] = cs
		}
		switch s.Kind {
		case SyncBlock, SyncMethod:
			cs.Synchronized++
		case ExplicitLock:
			cs.Explicit++
		}
	}
	out := make([]ClassSites, 0, len(agg))
	for _, cs := range agg {
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassSites is one class's site tally.
type ClassSites struct {
	Class        string
	Synchronized int
	Explicit     int
}
