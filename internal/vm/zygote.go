package vm

import (
	"fmt"
	"sync"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Zygote forks application processes, initializing a fresh per-process
// Dimmunix instance in each child — the paper's modification of
// Dalvik_dalvik_system_Zygote_fork / forkAndSpecializeCommon to call
// initDimmunix "as soon as the child process starts" (§4). Every forked
// process loads the shared persistent history, so an antibody discovered
// by any app protects all apps from the next boot (or next app start)
// onward.
type Zygote struct {
	mu       sync.Mutex
	nextPID  int
	dimmunix bool
	coreOpts []core.Option
	store    core.HistoryStore
	bus      SignatureBus
	procs    []*Process
}

// SignatureBus is the live signature-propagation hub (the platform
// immunity service) a Zygote can wire its children to. It subsumes the
// plain history store: forked cores load their initial history from it
// and publish detections to it (the HistoryStore half), and additionally
// every forked process subscribes for the deltas other processes publish,
// hot-installing them into its running core — so an antibody discovered
// by one app arms all live apps, not just future forks.
//
// Epoch returns the current history epoch (the number of accepted
// signatures); Subscribe delivers, on a dedicated goroutine, every
// signature accepted after epoch `from` (catch-up first, then live
// deltas, in order). The delivery callback takes the subscribing core's
// engine lock, so implementations must never invoke it synchronously
// from Append (see internal/immunity's lock-order documentation).
type SignatureBus interface {
	core.HistoryStore
	Epoch() uint64
	Subscribe(name string, from uint64, fn func(epoch uint64, sigs []*core.Signature)) (cancel func())
}

// ZygoteOption configures a Zygote.
type ZygoteOption func(*Zygote)

// WithDimmunix toggles platform-wide deadlock immunity for all forked
// processes. Enabled is the Android Dimmunix build; disabled is the
// vanilla Android build used as the evaluation baseline.
func WithDimmunix(enabled bool) ZygoteOption {
	return func(z *Zygote) { z.dimmunix = enabled }
}

// WithCoreOptions forwards options to each forked process's core.
func WithCoreOptions(opts ...core.Option) ZygoteOption {
	return func(z *Zygote) { z.coreOpts = append(z.coreOpts, opts...) }
}

// WithHistory sets the shared persistent history store (the on-flash
// history file).
func WithHistory(store core.HistoryStore) ZygoteOption {
	return func(z *Zygote) { z.store = store }
}

// WithSignatureBus wires forked processes to the platform immunity
// service: the bus becomes each child core's history store (load at fork,
// publish on detection), and every child subscribes to the bus so
// signatures detected elsewhere hot-install into its running core. Takes
// precedence over WithHistory.
func WithSignatureBus(bus SignatureBus) ZygoteOption {
	return func(z *Zygote) { z.bus = bus }
}

// NewZygote creates a Zygote.
func NewZygote(opts ...ZygoteOption) *Zygote {
	z := &Zygote{}
	for _, opt := range opts {
		opt(z)
	}
	return z
}

// DimmunixEnabled reports whether forked processes run with immunity.
func (z *Zygote) DimmunixEnabled() bool { return z.dimmunix }

// Fork creates a new process. With Dimmunix enabled, the child's core is
// initialized (and the shared history loaded) before the process can run
// any code, so immunity covers the app's entire lifetime. With a
// signature bus attached, the child additionally subscribes for live
// deltas before it can run, so there is no window in which a signature
// published elsewhere could be missed: anything accepted after the
// captured epoch is delivered (and hot-install deduplicates the overlap
// with what Load already returned).
func (z *Zygote) Fork(name string) (*Process, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.nextPID++
	var dim *core.Core
	var busFrom uint64
	if z.dimmunix {
		opts := make([]core.Option, 0, len(z.coreOpts)+1)
		opts = append(opts, z.coreOpts...)
		switch {
		case z.bus != nil:
			// Capture the epoch before the core loads, so the subscription
			// below cannot miss a concurrent publish.
			busFrom = z.bus.Epoch()
			opts = append(opts, core.WithStore(z.bus))
		case z.store != nil:
			opts = append(opts, core.WithStore(z.store))
		}
		var err error
		dim, err = core.New(opts...)
		if err != nil {
			return nil, fmt.Errorf("zygote fork %s: init dimmunix: %w", name, err)
		}
	}
	p := newProcess(z.nextPID, name, dim)
	if dim != nil && z.bus != nil {
		cancel := z.bus.Subscribe(name, busFrom, func(_ uint64, sigs []*core.Signature) {
			for _, sig := range sigs {
				// ErrCoreClosed after teardown and duplicate keys are both
				// benign; the kill hook below cancels the subscription.
				_, _, _ = dim.InstallSignature(sig)
			}
		})
		p.addKillHook(cancel)
	}
	z.procs = append(z.procs, p)
	return p, nil
}

// Processes returns all processes forked so far (including killed ones).
func (z *Zygote) Processes() []*Process {
	z.mu.Lock()
	defer z.mu.Unlock()
	out := make([]*Process, len(z.procs))
	copy(out, z.procs)
	return out
}

// KillAll tears down every forked process (the reboot path) and forgets
// them.
func (z *Zygote) KillAll() {
	z.mu.Lock()
	procs := z.procs
	z.procs = nil
	z.mu.Unlock()
	for _, p := range procs {
		p.Kill()
	}
}
