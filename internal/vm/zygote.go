package vm

import (
	"fmt"
	"sync"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Zygote forks application processes, initializing a fresh per-process
// Dimmunix instance in each child — the paper's modification of
// Dalvik_dalvik_system_Zygote_fork / forkAndSpecializeCommon to call
// initDimmunix "as soon as the child process starts" (§4). Every forked
// process loads the shared persistent history, so an antibody discovered
// by any app protects all apps from the next boot (or next app start)
// onward.
type Zygote struct {
	mu       sync.Mutex
	nextPID  int
	dimmunix bool
	coreOpts []core.Option
	store    core.HistoryStore
	procs    []*Process
}

// ZygoteOption configures a Zygote.
type ZygoteOption func(*Zygote)

// WithDimmunix toggles platform-wide deadlock immunity for all forked
// processes. Enabled is the Android Dimmunix build; disabled is the
// vanilla Android build used as the evaluation baseline.
func WithDimmunix(enabled bool) ZygoteOption {
	return func(z *Zygote) { z.dimmunix = enabled }
}

// WithCoreOptions forwards options to each forked process's core.
func WithCoreOptions(opts ...core.Option) ZygoteOption {
	return func(z *Zygote) { z.coreOpts = append(z.coreOpts, opts...) }
}

// WithHistory sets the shared persistent history store (the on-flash
// history file).
func WithHistory(store core.HistoryStore) ZygoteOption {
	return func(z *Zygote) { z.store = store }
}

// NewZygote creates a Zygote.
func NewZygote(opts ...ZygoteOption) *Zygote {
	z := &Zygote{}
	for _, opt := range opts {
		opt(z)
	}
	return z
}

// DimmunixEnabled reports whether forked processes run with immunity.
func (z *Zygote) DimmunixEnabled() bool { return z.dimmunix }

// Fork creates a new process. With Dimmunix enabled, the child's core is
// initialized (and the shared history loaded) before the process can run
// any code, so immunity covers the app's entire lifetime.
func (z *Zygote) Fork(name string) (*Process, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.nextPID++
	var dim *core.Core
	if z.dimmunix {
		opts := make([]core.Option, 0, len(z.coreOpts)+1)
		opts = append(opts, z.coreOpts...)
		if z.store != nil {
			opts = append(opts, core.WithStore(z.store))
		}
		var err error
		dim, err = core.New(opts...)
		if err != nil {
			return nil, fmt.Errorf("zygote fork %s: init dimmunix: %w", name, err)
		}
	}
	p := newProcess(z.nextPID, name, dim)
	z.procs = append(z.procs, p)
	return p, nil
}

// Processes returns all processes forked so far (including killed ones).
func (z *Zygote) Processes() []*Process {
	z.mu.Lock()
	defer z.mu.Unlock()
	out := make([]*Process, len(z.procs))
	copy(out, z.procs)
	return out
}

// KillAll tears down every forked process (the reboot path) and forgets
// them.
func (z *Zygote) KillAll() {
	z.mu.Lock()
	procs := z.procs
	z.procs = nil
	z.mu.Unlock()
	for _, p := range procs {
		p.Kill()
	}
}
