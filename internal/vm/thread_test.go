package vm

import (
	"errors"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// startThread launches a thread on p and fails the test on error.
func startThread(t *testing.T, p *Process, name string, fn func(*Thread)) *Thread {
	t.Helper()
	th, err := p.Start(name, fn)
	if err != nil {
		t.Fatalf("Start(%s): %v", name, err)
	}
	return th
}

// waitDone waits for a thread to terminate.
func waitDone(t *testing.T, th *Thread) {
	t.Helper()
	select {
	case <-th.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("thread %s did not terminate", th.Name())
	}
}

// pollUntil polls cond until true or the deadline passes. Main test
// goroutine only (it may call Fatalf).
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	if !pollSoft(cond) {
		t.Fatalf("timeout waiting for %s", what)
	}
}

// pollSoft polls cond from any goroutine, returning whether it held within
// the deadline.
func pollSoft(cond func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

func TestThreadLifecycle(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	ran := make(chan struct{})
	th := startThread(t, p, "worker", func(*Thread) { close(ran) })
	<-ran
	waitDone(t, th)
	if th.Err() != nil {
		t.Errorf("Err = %v, want nil", th.Err())
	}
	if th.State() != StateTerminated {
		t.Errorf("State = %v, want terminated", th.State())
	}
}

func TestThreadFrames(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	var stack core.CallStack
	var depthInside, depthAfter int
	th := startThread(t, p, "worker", func(th *Thread) {
		th.Call("com.example.A", "outer", 10, func() {
			th.Call("com.example.B", "inner", 20, func() {
				depthInside = th.FrameDepth()
				stack = th.CurrentStack()
			})
		})
		depthAfter = th.FrameDepth()
	})
	waitDone(t, th)
	if depthInside != 2 || depthAfter != 0 {
		t.Errorf("depths = %d/%d, want 2/0", depthInside, depthAfter)
	}
	if len(stack) != 2 {
		t.Fatalf("stack length = %d, want 2", len(stack))
	}
	// Innermost first.
	if stack[0].Class != "com.example.B" || stack[1].Class != "com.example.A" {
		t.Errorf("stack order wrong: %v", stack)
	}
}

func TestThreadCaptureTop(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	th := startThread(t, p, "worker", func(th *Thread) {
		th.PushFrame(core.Frame{Class: "a.A", Method: "m", Line: 1})
		th.PushFrame(core.Frame{Class: "b.B", Method: "n", Line: 2})
		th.PushFrame(core.Frame{Class: "c.C", Method: "o", Line: 3})

		top1 := th.captureTop(1)
		if len(top1) != 1 || top1[0].Class != "c.C" {
			t.Errorf("captureTop(1) = %v, want [c.C]", top1)
		}
		top2 := th.captureTop(2)
		if len(top2) != 2 || top2[0].Class != "c.C" || top2[1].Class != "b.B" {
			t.Errorf("captureTop(2) = %v", top2)
		}
		// Depth beyond the stack clamps.
		top9 := th.captureTop(9)
		if len(top9) != 3 {
			t.Errorf("captureTop(9) length = %d, want 3", len(top9))
		}
	})
	waitDone(t, th)
}

func TestThreadCaptureBufferReuse(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	th := startThread(t, p, "worker", func(th *Thread) {
		th.PushFrame(core.Frame{Class: "a.A", Method: "m", Line: 1})
		first := th.captureTop(1)
		second := th.captureTop(1)
		if &first[0] != &second[0] {
			t.Error("captureTop must reuse the stack buffer (paper's Thread.stackBuffer)")
		}
	})
	waitDone(t, th)
}

func TestThreadSyntheticFrameWhenEmpty(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	th := startThread(t, p, "bare", func(th *Thread) {
		cs := th.captureTop(1)
		if len(cs) != 1 || cs[0].Class != "vm.ThreadEntry" {
			t.Errorf("empty-stack capture = %v, want synthetic frame", cs)
		}
		full := th.CurrentStack()
		if len(full) != 1 || full[0].Method != "bare" {
			t.Errorf("CurrentStack on empty frames = %v", full)
		}
	})
	waitDone(t, th)
}

func TestThreadInterruptFlag(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	th := startThread(t, p, "w", func(th *Thread) {
		pollUntil(t, "interrupt flag", func() bool { return th.interrupted.Load() })
		if !th.Interrupted() {
			t.Error("Interrupted must report true once")
		}
		if th.Interrupted() {
			t.Error("Interrupted must clear the flag")
		}
	})
	th.Interrupt()
	waitDone(t, th)
}

func TestStartOnDeadProcess(t *testing.T) {
	p := NewProcess("test", nil)
	p.Kill()
	if _, err := p.Start("w", func(*Thread) {}); !errors.Is(err, ErrProcessDead) {
		t.Errorf("Start after Kill = %v, want ErrProcessDead", err)
	}
	if _, err := p.Start("w", nil); err == nil {
		t.Error("Start with nil function must fail")
	}
}

func TestThreadUnwindRecordsError(t *testing.T) {
	p := NewProcess("test", nil)
	defer p.Kill()
	sentinel := errors.New("boom")
	th := startThread(t, p, "w", func(*Thread) { unwind(sentinel) })
	waitDone(t, th)
	if !errors.Is(th.Err(), sentinel) {
		t.Errorf("Err = %v, want sentinel", th.Err())
	}
}
