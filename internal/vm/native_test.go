package vm

import (
	"testing"
	"time"
)

// The §4 limitation, as a negative test: "Android Dimmunix does not handle
// deadlocks involving native code" — synchronization that bypasses the
// monitor interception (NDK pthread mutexes on the phone; any non-monitor
// blocking primitive here) is invisible to the RAG, so a mixed
// monitor/native cycle is neither detected nor avoided.

// nativeLock is a non-monitor mutex (a pthread mutex stand-in) that the
// VM cannot intercept.
type nativeLock struct{ ch chan struct{} }

func newNativeLock() *nativeLock {
	l := &nativeLock{ch: make(chan struct{}, 1)}
	l.ch <- struct{}{}
	return l
}

// lock acquires, giving up after the timeout (so the test can dissolve the
// deadlock deterministically).
func (l *nativeLock) lock(timeout time.Duration) bool {
	select {
	case <-l.ch:
		return true
	case <-time.After(timeout):
		return false
	}
}

func (l *nativeLock) unlock() { l.ch <- struct{}{} }

// TestNativeLockCycleIsInvisible builds a cycle between a monitor and a
// native lock: thread A holds the native lock and blocks on the monitor;
// thread B holds the monitor and blocks on the native lock. Dimmunix sees
// only half of the cycle, so — exactly as §4 concedes — it neither detects
// nor avoids it. The test asserts the blind spot, then dissolves the
// deadlock via the native lock's timeout.
func TestNativeLockCycleIsInvisible(t *testing.T) {
	p := dimProcess(t)
	mon := p.NewObject("managed")
	native := newNativeLock()

	aHasNative := make(chan struct{})
	bHasMonitor := make(chan struct{})

	a := startThread(t, p, "A", func(th *Thread) {
		if !native.lock(time.Minute) {
			t.Error("A could not take the native lock")
			return
		}
		close(aHasNative)
		<-bHasMonitor
		// Blocks on the monitor held by B: the only RAG edge that exists.
		mon.Synchronized(th, func() {})
		native.unlock()
	})
	b := startThread(t, p, "B", func(th *Thread) {
		<-aHasNative
		mon.Synchronized(th, func() {
			close(bHasMonitor)
			// Blocks on the native lock held by A — invisible to the RAG.
			// The bounded wait models the user force-stopping the app.
			if native.lock(300 * time.Millisecond) {
				native.unlock()
			}
		})
	})

	// While the cycle exists, Dimmunix must not have detected anything:
	// the walk from the monitor ends at B, whose native-lock wait is not a
	// request edge.
	time.Sleep(100 * time.Millisecond)
	if got := p.Dimmunix().Stats().DeadlocksDetected; got != 0 {
		t.Errorf("detected %d deadlocks through a native lock (impossible: it is not intercepted)", got)
	}

	waitDone(t, a)
	waitDone(t, b)
	// After B's native wait timed out, everything drains; still nothing
	// recorded: no signature exists for uninterceptable cycles.
	if got := p.Dimmunix().HistorySize(); got != 0 {
		t.Errorf("history has %d signatures, want 0", got)
	}
}

func TestDumpThreads(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	hold := make(chan struct{})
	holder := startThread(t, p, "holder", func(th *Thread) {
		th.Call("com.app.Holder", "hold", 5, func() {
			o.Synchronized(th, func() {
				close(hold)
				<-th.proc.killCh
			})
		})
	})
	<-hold
	blocked := startThread(t, p, "blocked", func(th *Thread) {
		th.Call("com.app.Blocked", "take", 9, func() {
			o.Synchronized(th, func() {})
		})
	})
	pollUntil(t, "contender blocked", func() bool {
		m := o.Monitor()
		return m != nil && m.Blocked() == 1
	})

	dumps := p.DumpThreads()
	if len(dumps) != 2 {
		t.Fatalf("dumped %d threads, want 2", len(dumps))
	}
	byName := map[string]ThreadDump{}
	for _, d := range dumps {
		byName[d.Name] = d
	}
	h := byName["holder"]
	if h.State != StateRunnable && h.State != StateBlocked {
		t.Errorf("holder state = %v", h.State)
	}
	bd := byName["blocked"]
	if bd.State != StateBlocked {
		t.Errorf("blocked state = %v, want blocked", bd.State)
	}
	if len(bd.Stack) == 0 || bd.Stack[0].Class != "com.app.Blocked" {
		t.Errorf("blocked stack = %v", bd.Stack)
	}
	text := FormatDump(p.Name(), dumps)
	if text == "" || len(text) < 40 {
		t.Error("dump text too short")
	}

	p.Kill()
	waitDone(t, holder)
	waitDone(t, blocked)
}
