package vm

// Thin lock word encoding, modeled on Dalvik's u4 lock word: an unowned
// object has lock word 0; a thin-locked object encodes the owner thread id
// and a recursion count; a fattened object has the shape bit set and its
// Monitor published separately (Dalvik packs the Monitor pointer into the
// word; we keep an atomic pointer alongside, which preserves the protocol
// while staying in safe Go).
//
// Layout (64-bit word):
//
//	bit  63     : shape (0 = thin, 1 = fat)
//	bits 16..47 : owner thread id (32 bits)
//	bits  0..15 : recursion count - 1 (thin locks only)
const (
	lwShapeFat uint64 = 1 << 63

	lwOwnerShift        = 16
	lwOwnerMask  uint64 = 0xFFFFFFFF << lwOwnerShift

	lwCountMask uint64 = 0xFFFF

	// maxThinRecursion is the deepest recursion a thin lock can encode;
	// one past it forces inflation, as in Dalvik.
	maxThinRecursion = int(lwCountMask)
)

// thinWord builds a thin lock word for owner tid with the given recursion
// count (>= 1).
func thinWord(tid uint32, count int) uint64 {
	return uint64(tid)<<lwOwnerShift | uint64(count-1)
}

// lwIsFat reports whether the word has the fat shape bit.
func lwIsFat(lw uint64) bool { return lw&lwShapeFat != 0 }

// lwOwner extracts the owner tid of a thin word.
func lwOwner(lw uint64) uint32 { return uint32((lw & lwOwnerMask) >> lwOwnerShift) }

// lwCount extracts the recursion count of a thin word.
func lwCount(lw uint64) int { return int(lw&lwCountMask) + 1 }
