package vm

import "errors"

var (
	// ErrNotOwner reports a monitorexit/wait/notify by a thread that does
	// not own the monitor (Java's IllegalMonitorStateException).
	ErrNotOwner = errors.New("vm: thread does not own the monitor")
	// ErrInterrupted reports that a thread was interrupted while waiting
	// (Java's InterruptedException). The monitor has been re-acquired when
	// Wait returns this error.
	ErrInterrupted = errors.New("vm: interrupted while waiting")
	// ErrProcessKilled reports that the operation was abandoned because
	// the process is being torn down (reboot).
	ErrProcessKilled = errors.New("vm: process killed")
	// ErrNilThread reports a nil thread argument.
	ErrNilThread = errors.New("vm: nil thread")
	// ErrForeignThread reports a thread operating on another process's
	// object: processes are isolated address spaces.
	ErrForeignThread = errors.New("vm: thread belongs to a different process")
	// ErrProcessDead reports an operation on a killed process.
	ErrProcessDead = errors.New("vm: process is dead")
)
