package vm

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

func TestProcessJoin(t *testing.T) {
	p := vanillaProcess(t)
	release := make(chan struct{})
	startThread(t, p, "w", func(*Thread) { <-release })
	if p.Join(10 * time.Millisecond) {
		t.Error("Join must time out while a thread runs")
	}
	close(release)
	if !p.Join(5 * time.Second) {
		t.Error("Join must succeed after threads finish")
	}
}

func TestProcessKillIdempotent(t *testing.T) {
	p := NewProcess("test", nil)
	startThread(t, p, "w", func(th *Thread) { <-th.proc.killCh })
	p.Kill()
	p.Kill() // second kill must not panic or hang
}

func TestProcessStatsCounts(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("o")
	th := startThread(t, p, "w", func(th *Thread) {
		o.Synchronized(th, func() {})
		o.Synchronized(th, func() {
			o.Synchronized(th, func() {}) // recursive
		})
	})
	waitDone(t, th)
	st := p.Stats()
	if st.SyncOps != 3 {
		t.Errorf("SyncOps = %d, want 3", st.SyncOps)
	}
	if st.RecursiveEnters != 1 {
		t.Errorf("RecursiveEnters = %d, want 1", st.RecursiveEnters)
	}
	if st.Threads != 1 || st.Objects != 1 || st.Monitors != 1 {
		t.Errorf("threads/objects/monitors = %d/%d/%d, want 1/1/1", st.Threads, st.Objects, st.Monitors)
	}
}

func TestZygoteForkIsolation(t *testing.T) {
	z := NewZygote(WithDimmunix(true))
	p1, err := z.Fork("app1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := z.Fork("app2")
	if err != nil {
		t.Fatal(err)
	}
	defer z.KillAll()

	if p1.Dimmunix() == nil || p2.Dimmunix() == nil {
		t.Fatal("dimmunix zygote must give every process a core")
	}
	if p1.Dimmunix() == p2.Dimmunix() {
		t.Error("each process must have its own core (user-space isolation, §3.1)")
	}
	if p1.ID() == p2.ID() {
		t.Error("processes must have distinct pids")
	}
}

func TestZygoteVanillaFork(t *testing.T) {
	z := NewZygote(WithDimmunix(false))
	p, err := z.Fork("app")
	if err != nil {
		t.Fatal(err)
	}
	defer z.KillAll()
	if p.Dimmunix() != nil {
		t.Error("vanilla zygote must not attach a core")
	}
}

// TestZygoteSharedHistory is platform-wide immunity across apps: a
// deadlock detected in one app's process immunizes a different app forked
// later, because both load the same history store.
func TestZygoteSharedHistory(t *testing.T) {
	store := core.NewMemHistory()
	z := NewZygote(WithDimmunix(true), WithHistory(store))

	p1, err := z.Fork("buggy-app")
	if err != nil {
		t.Fatal(err)
	}
	abbaScenario(t, p1, true)
	pollUntil(t, "deadlock in app1", func() bool {
		return p1.Dimmunix().Stats().DeadlocksDetected == 1
	})
	p1.Kill()

	// A different app with the same code pattern is immune from birth.
	p2, err := z.Fork("other-app")
	if err != nil {
		t.Fatal(err)
	}
	defer z.KillAll()
	if p2.Dimmunix().HistorySize() != 1 {
		t.Fatalf("app2 loaded %d signatures, want 1", p2.Dimmunix().HistorySize())
	}
	t1, t2 := abbaScenario(t, p2, false)
	waitDone(t, t1)
	waitDone(t, t2)
	if st := p2.Dimmunix().Stats(); st.DeadlocksDetected != 0 {
		t.Errorf("app2 deadlocked: %+v", st)
	}
}

func TestZygoteForkFailsOnBadStore(t *testing.T) {
	z := NewZygote(WithDimmunix(true), WithHistory(badStore{}))
	if _, err := z.Fork("app"); err == nil {
		t.Error("fork with failing history store must error")
	}
}

// badStore always fails to load.
type badStore struct{}

func (badStore) Load() ([]*core.Signature, error) {
	return nil, errTest
}
func (badStore) Append(*core.Signature) error { return errTest }

var errTest = core.ErrHistoryFormat

func TestCensusCounts(t *testing.T) {
	c := NewCensus()
	c.Register(
		NewSite("a.A", "m", 1),
		NewSite("a.A", "m", 2),
		NewMethodSite("a.B", "n", 1),
		&Site{Frame: core.Frame{Class: "a.C", Method: "lock", Line: 3}, Kind: ExplicitLock},
	)
	got := c.Counts()
	if got.SyncBlocks != 2 || got.SyncMethods != 1 || got.ExplicitLocks != 1 {
		t.Errorf("counts = %+v", got)
	}
	if got.TotalSyncSites != 3 || got.TotalSites != 4 {
		t.Errorf("totals = %+v", got)
	}
	if got.ClassesDeclared != 3 {
		t.Errorf("classes = %d, want 3", got.ClassesDeclared)
	}
	by := c.ByClass()
	if len(by) != 3 || by[0].Class != "a.A" || by[0].Synchronized != 2 {
		t.Errorf("ByClass = %+v", by)
	}
}

// TestDeadlockFreezeKeepsOtherAppsAlive: platform-wide immunity is
// per-process; one app's freeze must not impede another process.
func TestDeadlockFreezeKeepsOtherAppsAlive(t *testing.T) {
	z := NewZygote(WithDimmunix(true), WithHistory(core.NewMemHistory()))
	frozen, err := z.Fork("frozen-app")
	if err != nil {
		t.Fatal(err)
	}
	abbaScenario(t, frozen, true)
	pollUntil(t, "freeze", func() bool {
		return frozen.Dimmunix().Stats().DeadlocksDetected == 1
	})

	healthy, err := z.Fork("healthy-app")
	if err != nil {
		t.Fatal(err)
	}
	defer z.KillAll()
	o := healthy.NewObject("o")
	th := startThread(t, healthy, "w", func(th *Thread) {
		for i := 0; i < 100; i++ {
			o.Synchronized(th, func() {})
		}
	})
	waitDone(t, th)
	if th.Err() != nil {
		t.Errorf("healthy app impacted by frozen app: %v", th.Err())
	}
}
