package vm

import (
	"testing"
	"testing/quick"
)

func TestThinWordRoundTrip(t *testing.T) {
	f := func(tid uint32, countSeed uint16) bool {
		count := int(countSeed) + 1 // 1..65536; cap at encodable max
		if count > maxThinRecursion {
			count = maxThinRecursion
		}
		lw := thinWord(tid, count)
		return !lwIsFat(lw) && lwOwner(lw) == tid && lwCount(lw) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestThinWordIncrementIsRecursion(t *testing.T) {
	lw := thinWord(7, 1)
	for want := 2; want <= 5; want++ {
		lw++
		if lwCount(lw) != want || lwOwner(lw) != 7 {
			t.Fatalf("after ++: count=%d owner=%d, want %d/7", lwCount(lw), lwOwner(lw), want)
		}
	}
}

func TestFatShapeBitDisjointFromThinFields(t *testing.T) {
	// The max thin word must not collide with the shape bit.
	lw := thinWord(^uint32(0), maxThinRecursion)
	if lwIsFat(lw) {
		t.Error("max thin word must not read as fat")
	}
	if !lwIsFat(lwShapeFat) {
		t.Error("shape constant must read as fat")
	}
	if lwIsFat(0) {
		t.Error("zero word must read as thin/free")
	}
}
