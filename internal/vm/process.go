package vm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Process is a simulated application process: an isolated set of threads,
// objects and monitors with its own Dimmunix instance (or none, in vanilla
// mode). Platform-wide immunity runs user-space Dimmunix per process, "in
// isolation from the other applications" (§3.1); the only state processes
// share is the persistent history store their cores load at fork time.
type Process struct {
	id   int
	name string

	// dim is this process's Dimmunix core; nil when running vanilla.
	dim *core.Core
	// captureDepth is how many frames monitorenter captures (the core's
	// outer depth; 1 in the paper).
	captureDepth int

	// fattenMu serializes lock fattening — the paper's globalLock around
	// dvmCreateMonitor.
	fattenMu sync.Mutex

	mu       sync.Mutex
	threads  map[uint32]*Thread
	nextTID  uint32
	monitors []*Monitor
	objects  int

	// sites caches each static Site's interned Position (sync.Map: written
	// once per site at first use, then read on every monitorenter at that
	// site from many threads — the read-mostly case sync.Map is for).
	// siteCount mirrors the number of cached sites for the footprint
	// estimate.
	sites     sync.Map // *Site -> *core.Position
	siteCount atomic.Int64

	killCh chan struct{}
	killed atomic.Bool
	wg     sync.WaitGroup

	// killHooks run once at the start of Kill, before the core closes —
	// the Zygote registers the signature-bus unsubscribe here so delta
	// delivery stops before the process is torn down.
	killHooksMu sync.Mutex
	killHooks   []func()

	stats procStats
}

// procStats are the process's synchronization counters.
type procStats struct {
	thinEnters      atomic.Uint64
	fatEnters       atomic.Uint64
	recursiveEnters atomic.Uint64
	inflations      atomic.Uint64
	waits           atomic.Uint64
	notifies        atomic.Uint64
	syncOps         atomic.Uint64
}

// ProcessStats is a snapshot of a process's synchronization counters.
type ProcessStats struct {
	// ThinEnters counts uncontended thin-lock acquisitions.
	ThinEnters uint64
	// FatEnters counts monitor (fat) acquisitions.
	FatEnters uint64
	// RecursiveEnters counts re-entrant acquisitions.
	RecursiveEnters uint64
	// Inflations counts thin→fat promotions.
	Inflations uint64
	// Waits counts Object.wait calls.
	Waits uint64
	// Notifies counts waiters woken by notify/notifyAll.
	Notifies uint64
	// SyncOps counts all completed monitorenters (the paper's
	// "synchronizations" throughput unit).
	SyncOps uint64
	// Threads is the number of threads ever started.
	Threads int
	// Monitors is the number of fat monitors created.
	Monitors int
	// Objects is the number of objects created.
	Objects int
}

// newProcess builds a process around an optional Dimmunix core.
func newProcess(id int, name string, dim *core.Core) *Process {
	depth := 1
	if dim != nil {
		depth = dim.Config().OuterDepth
	}
	return &Process{
		id:           id,
		name:         name,
		dim:          dim,
		captureDepth: depth,
		threads:      make(map[uint32]*Thread),
		killCh:       make(chan struct{}),
	}
}

// NewProcess creates a standalone process (outside any Zygote), with dim
// optionally nil for vanilla execution. Tests and microbenchmarks use this
// directly; platform code forks processes from the Zygote.
func NewProcess(name string, dim *core.Core) *Process {
	return newProcess(0, name, dim)
}

// ID returns the process id.
func (p *Process) ID() int { return p.id }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Dimmunix returns the process's core, or nil in vanilla mode.
func (p *Process) Dimmunix() *core.Core { return p.dim }

// Killed reports whether the process has been torn down. Long-running
// thread loops must poll this (or use bounded work) so Kill can complete.
func (p *Process) Killed() bool { return p.killed.Load() }

func (p *Process) isKilled() bool { return p.killed.Load() }

// Start launches a VM thread running fn. The thread's goroutine is tracked
// by the process and reaped by Kill/Join.
func (p *Process) Start(name string, fn func(*Thread)) (*Thread, error) {
	if fn == nil {
		return nil, fmt.Errorf("vm: nil thread function")
	}
	p.mu.Lock()
	if p.killed.Load() {
		p.mu.Unlock()
		return nil, ErrProcessDead
	}
	p.nextTID++
	t := &Thread{
		id:          p.nextTID,
		name:        name,
		proc:        p,
		interruptCh: make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	t.setState(StateNew)
	if p.dim != nil {
		t.node = p.dim.NewThreadNode(name, t.CurrentStack)
	}
	p.threads[t.id] = t
	p.wg.Add(1)
	p.mu.Unlock()
	go t.run(fn)
	return t, nil
}

// addKillHook registers fn to run once when the process is killed,
// before its threads and core are torn down. Hooks registered after Kill
// has started run immediately.
func (p *Process) addKillHook(fn func()) {
	p.killHooksMu.Lock()
	if !p.killed.Load() {
		p.killHooks = append(p.killHooks, fn)
		p.killHooksMu.Unlock()
		return
	}
	p.killHooksMu.Unlock()
	fn()
}

// NewObject creates a synchronizable object in this process.
func (p *Process) NewObject(name string) *Object {
	p.mu.Lock()
	p.objects++
	p.mu.Unlock()
	return &Object{name: name, proc: p}
}

// newMonitor creates a fat Monitor for obj (dvmCreateMonitor), wiring its
// RAG node when Dimmunix is enabled.
func (p *Process) newMonitor(obj *Object) *Monitor {
	m := &Monitor{obj: obj, proc: p}
	m.acqCond = sync.NewCond(&m.mu)
	if p.dim != nil {
		m.node = p.dim.NewLockNode(obj.name)
	}
	p.stats.inflations.Add(1)
	p.mu.Lock()
	p.monitors = append(p.monitors, m)
	p.mu.Unlock()
	return m
}

// noteSync counts one completed synchronization.
func (p *Process) noteSync() { p.stats.syncOps.Add(1) }

// SyncCount returns the number of completed monitorenters so far; the
// throughput meters sample it.
func (p *Process) SyncCount() uint64 { return p.stats.syncOps.Load() }

// Stats returns a snapshot of the process counters.
func (p *Process) Stats() ProcessStats {
	p.mu.Lock()
	threads := len(p.threads)
	monitors := len(p.monitors)
	objects := p.objects
	p.mu.Unlock()
	return ProcessStats{
		ThinEnters:      p.stats.thinEnters.Load(),
		FatEnters:       p.stats.fatEnters.Load(),
		RecursiveEnters: p.stats.recursiveEnters.Load(),
		Inflations:      p.stats.inflations.Load(),
		Waits:           p.stats.waits.Load(),
		Notifies:        p.stats.notifies.Load(),
		SyncOps:         p.stats.syncOps.Load(),
		Threads:         threads,
		Monitors:        monitors,
		Objects:         objects,
	}
}

// SyncFootprint estimates the bytes held by the process's
// synchronization-related VM structures: fattened monitors (each carrying
// the RAG-node pointer the paper adds to struct Monitor), per-thread stack
// capture buffers, and the static-site position cache. Together with
// core.MemStats this is the Dimmunix-attributable memory of experiment E5.
func (p *Process) SyncFootprint() int64 {
	p.mu.Lock()
	monitors := len(p.monitors)
	var waitNodes int
	for _, m := range p.monitors {
		m.mu.Lock()
		waitNodes += len(m.waitSet)
		m.mu.Unlock()
	}
	threads := p.threads
	var stackBufBytes int64
	for _, t := range threads {
		t.frameMu.Lock()
		stackBufBytes += int64(cap(t.stackBuf)) * sizeofFrame
		t.frameMu.Unlock()
	}
	p.mu.Unlock()

	sites := int(p.siteCount.Load())

	return int64(monitors)*sizeofMonitor +
		int64(waitNodes)*sizeofWaitNode +
		stackBufBytes +
		int64(sites)*sizeofSiteEntry
}

// Threads returns the process's threads (live and terminated).
func (p *Process) Threads() []*Thread {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Thread, 0, len(p.threads))
	for _, t := range p.threads {
		out = append(out, t)
	}
	return out
}

// Join waits until every thread has terminated or the timeout elapses,
// returning whether all terminated. A frozen (deadlocked) process reports
// false — that is how the platform watchdog notices the hang.
func (p *Process) Join(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return true
	}
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Kill tears the process down: all threads blocked in monitors, waits, or
// avoidance are woken and unwound, and Kill blocks until every thread has
// terminated. Kill is idempotent; the simulated reboot path relies on it
// never leaking goroutines even when the process is deadlocked.
func (p *Process) Kill() {
	if !p.killed.CompareAndSwap(false, true) {
		p.wg.Wait()
		return
	}
	p.killHooksMu.Lock()
	hooks := p.killHooks
	p.killHooks = nil
	p.killHooksMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	close(p.killCh)
	if p.dim != nil {
		_ = p.dim.Close() // wakes avoidance yields with ErrCoreClosed
	}
	p.mu.Lock()
	monitors := make([]*Monitor, len(p.monitors))
	copy(monitors, p.monitors)
	p.mu.Unlock()
	for _, m := range monitors {
		m.killWake()
	}
	p.wg.Wait()
}
