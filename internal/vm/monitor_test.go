package vm

import (
	"errors"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

func TestWaitNotifyHandoff(t *testing.T) {
	for _, mode := range []string{"vanilla", "dimmunix"} {
		t.Run(mode, func(t *testing.T) {
			var p *Process
			if mode == "vanilla" {
				p = vanillaProcess(t)
			} else {
				p = dimProcess(t)
			}
			o := p.NewObject("cond")
			ready := false

			waiter := startThread(t, p, "waiter", func(th *Thread) {
				if err := o.Enter(th); err != nil {
					t.Error(err)
					return
				}
				for !ready {
					notified, err := o.Wait(th, 0)
					if err != nil {
						t.Errorf("Wait: %v", err)
						return
					}
					if !notified {
						t.Error("Wait(0) returned without notification")
					}
				}
				if err := o.Exit(th); err != nil {
					t.Error(err)
				}
			})

			pollUntil(t, "waiter parked", func() bool { return p.Stats().Waits == 1 })
			notifier := startThread(t, p, "notifier", func(th *Thread) {
				if err := o.Enter(th); err != nil {
					t.Error(err)
					return
				}
				ready = true
				if err := o.Notify(th); err != nil {
					t.Errorf("Notify: %v", err)
				}
				if err := o.Exit(th); err != nil {
					t.Error(err)
				}
			})
			waitDone(t, waiter)
			waitDone(t, notifier)
			if st := p.Stats(); st.Notifies != 1 {
				t.Errorf("Notifies = %d, want 1", st.Notifies)
			}
		})
	}
}

func TestWaitTimeout(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Error(err)
			return
		}
		start := time.Now()
		notified, err := o.Wait(th, 20*time.Millisecond)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		if notified {
			t.Error("timeout wait must report notified=false")
		}
		if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
			t.Errorf("woke after %v, want >= ~20ms", elapsed)
		}
		if err := o.Exit(th); err != nil {
			t.Error(err) // the monitor must have been re-acquired
		}
	})
	waitDone(t, th)
}

func TestWaitRequiresOwnership(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	th := startThread(t, p, "w", func(th *Thread) {
		if _, err := o.Wait(th, 0); !errors.Is(err, ErrNotOwner) {
			t.Errorf("Wait without ownership = %v, want ErrNotOwner", err)
		}
		if err := o.Notify(th); !errors.Is(err, ErrNotOwner) {
			t.Errorf("Notify without ownership = %v, want ErrNotOwner", err)
		}
	})
	waitDone(t, th)
}

func TestWaitRestoresRecursion(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	th := startThread(t, p, "w", func(th *Thread) {
		// Acquire three levels deep, wait, and verify all three exits
		// still succeed afterwards.
		for i := 0; i < 3; i++ {
			if err := o.Enter(th); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := o.Wait(th, 10*time.Millisecond); err != nil {
			t.Errorf("Wait: %v", err)
		}
		for i := 0; i < 3; i++ {
			if err := o.Exit(th); err != nil {
				t.Errorf("Exit %d after wait: %v", i, err)
			}
		}
		if err := o.Exit(th); !errors.Is(err, ErrNotOwner) {
			t.Error("4th exit must fail: recursion must be restored exactly")
		}
	})
	waitDone(t, th)
}

func TestNotifyAllWakesEveryWaiter(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	const waiters = 4
	woken := make(chan string, waiters)
	for i := 0; i < waiters; i++ {
		startThread(t, p, "waiter", func(th *Thread) {
			if err := o.Enter(th); err != nil {
				t.Error(err)
				return
			}
			notified, err := o.Wait(th, 0)
			if err != nil || !notified {
				t.Errorf("Wait: notified=%v err=%v", notified, err)
			}
			if err := o.Exit(th); err != nil {
				t.Error(err)
			}
			woken <- th.Name()
		})
	}
	pollUntil(t, "all parked", func() bool { return p.Stats().Waits == waiters })
	n := startThread(t, p, "notifier", func(th *Thread) {
		o.Synchronized(th, func() {
			if err := o.NotifyAll(th); err != nil {
				t.Error(err)
			}
		})
	})
	waitDone(t, n)
	for i := 0; i < waiters; i++ {
		select {
		case <-woken:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d waiters woke", i, waiters)
		}
	}
}

func TestNotifyWakesExactlyOne(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	const waiters = 3
	for i := 0; i < waiters; i++ {
		startThread(t, p, "waiter", func(th *Thread) {
			if err := o.Enter(th); err != nil {
				t.Error(err)
				return
			}
			_, _ = o.Wait(th, 0) // woken either by notify or by kill
			_ = o.Exit(th)
		})
	}
	pollUntil(t, "all parked", func() bool { return p.Stats().Waits == waiters })
	n := startThread(t, p, "notifier", func(th *Thread) {
		o.Synchronized(th, func() {
			if err := o.Notify(th); err != nil {
				t.Error(err)
			}
		})
	})
	waitDone(t, n)
	pollUntil(t, "one waiter woken", func() bool { return p.Stats().Notifies == 1 })
	// The others must still be parked.
	time.Sleep(10 * time.Millisecond)
	if got := p.Stats().Notifies; got != 1 {
		t.Errorf("Notifies = %d, want 1", got)
	}
}

func TestWaitInterrupted(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Error(err)
			return
		}
		_, err := o.Wait(th, 0)
		if !errors.Is(err, ErrInterrupted) {
			t.Errorf("Wait = %v, want ErrInterrupted", err)
		}
		// Java semantics: the monitor is re-acquired before the exception.
		if err := o.Exit(th); err != nil {
			t.Errorf("Exit after interrupt: %v", err)
		}
	})
	pollUntil(t, "parked", func() bool { return p.Stats().Waits == 1 })
	th.Interrupt()
	waitDone(t, th)
}

func TestInterruptBeforeWait(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	th := startThread(t, p, "w", func(th *Thread) {
		th.Interrupt() // pre-set flag
		if err := o.Enter(th); err != nil {
			t.Error(err)
			return
		}
		if _, err := o.Wait(th, 0); !errors.Is(err, ErrInterrupted) {
			t.Errorf("Wait with pending interrupt = %v, want ErrInterrupted", err)
		}
		_ = o.Exit(th)
	})
	waitDone(t, th)
	if st := p.Stats(); st.Waits != 0 {
		t.Errorf("Waits = %d, want 0 (never parked)", st.Waits)
	}
}

func TestKillDuringWait(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.Enter(th); err != nil {
			t.Error(err)
			return
		}
		if _, err := o.Wait(th, 0); !errors.Is(err, ErrProcessKilled) {
			t.Errorf("Wait on killed process = %v, want ErrProcessKilled", err)
		}
	})
	pollUntil(t, "parked", func() bool { return p.Stats().Waits == 1 })
	p.Kill()
	waitDone(t, th)
}

// abbaScenario runs the classic inversion on a process: t1 takes A then B,
// t2 takes B then A. In run-1 style (strict=true) the threads rendezvous
// after their first acquisition so the deadlock is certain; with avoidance
// armed (strict=false) t2 yields before acquiring B, so t1 proceeds on a
// timeout instead of a rendezvous.
func abbaScenario(t *testing.T, p *Process, strict bool) (t1, t2 *Thread) {
	a, b := p.NewObject("lockA"), p.NewObject("lockB")
	t1HasA := make(chan struct{})
	t2HasB := make(chan struct{})

	t1 = startThread(t, p, "t1", func(th *Thread) {
		th.Call("com.app.Svc1", "methodA", 10, func() {
			a.Synchronized(th, func() {
				close(t1HasA)
				if strict {
					<-t2HasB
				} else {
					select {
					case <-t2HasB:
					case <-time.After(200 * time.Millisecond):
					}
				}
				th.Call("com.app.Svc1", "innerB", 11, func() {
					b.Synchronized(th, func() {})
				})
			})
		})
	})
	t2 = startThread(t, p, "t2", func(th *Thread) {
		th.Call("com.app.Svc2", "methodB", 20, func() {
			<-t1HasA
			b.Synchronized(th, func() {
				close(t2HasB)
				th.Call("com.app.Svc2", "innerA", 21, func() {
					a.Synchronized(th, func() {})
				})
			})
		})
	})
	return t1, t2
}

// TestVMDeadlockDetectionAndFreeze reproduces run 1 of the paper's
// scenario at VM level: the deadlock manifests (threads never finish), its
// signature is recorded and persisted, and Kill reaps the frozen threads.
func TestVMDeadlockDetectionAndFreeze(t *testing.T) {
	store := core.NewMemHistory()
	c, err := core.New(core.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess("run1", c)
	t1, t2 := abbaScenario(t, p, true)

	pollUntil(t, "deadlock detected", func() bool {
		return p.Dimmunix().Stats().DeadlocksDetected == 1
	})
	if p.Join(50 * time.Millisecond) {
		t.Fatal("process completed despite deadlock")
	}
	if store.Len() != 1 {
		t.Errorf("store has %d signatures, want 1", store.Len())
	}

	p.Kill() // reboot path: frozen threads must be reaped
	waitDone(t, t1)
	waitDone(t, t2)
}

// TestVMDeadlockImmunityAfterReboot is the headline end-to-end property at
// VM level: a second process sharing the history avoids the deadlock.
func TestVMDeadlockImmunityAfterReboot(t *testing.T) {
	store := core.NewMemHistory()

	// Run 1: detect and freeze.
	c1, err := core.New(core.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewProcess("run1", c1)
	abbaScenario(t, p1, true)
	pollUntil(t, "deadlock detected", func() bool {
		return p1.Dimmunix().Stats().DeadlocksDetected == 1
	})
	p1.Kill()

	// Run 2: fresh process, loaded history, relaxed interleaving.
	c2, err := core.New(core.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewProcess("run2", c2)
	t1, t2 := abbaScenario(t, p2, false)
	waitDone(t, t1)
	waitDone(t, t2)
	if err := t1.Err(); err != nil {
		t.Errorf("t1 err: %v", err)
	}
	if err := t2.Err(); err != nil {
		t.Errorf("t2 err: %v", err)
	}
	st := p2.Dimmunix().Stats()
	if st.DeadlocksDetected != 0 || st.DuplicateDeadlocks != 0 {
		t.Errorf("run 2 deadlocked: %+v", st)
	}
	if st.Yields == 0 {
		t.Error("run 2 must have engaged avoidance (yields > 0)")
	}
	p2.Kill()
}

// TestWaitInversionDeadlock reproduces §3.2's wait-induced lock inversion:
//
//	t1: synchronized(x){ synchronized(y){ x.wait() } }
//	t2: synchronized(x){ synchronized(y){} }
//
// When t1's wait re-acquires x while holding y, and t2 holds x wanting y,
// they deadlock. Only an implementation that intercepts the re-acquisition
// inside waitMonitor can see this cycle — which is why the paper modifies
// the Object.wait native method.
func TestWaitInversionDeadlock(t *testing.T) {
	store := core.NewMemHistory()

	// Run 1: detection.
	c1, err := core.New(core.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewProcess("run1", c1)
	runWaitInversion(t, p1, true)
	pollUntil(t, "wait-inversion deadlock detected", func() bool {
		return p1.Dimmunix().Stats().DeadlocksDetected == 1
	})
	p1.Kill()
	if store.Len() != 1 {
		t.Fatalf("store has %d signatures, want 1", store.Len())
	}

	// Run 2: avoidance. Both threads must complete.
	c2, err := core.New(core.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewProcess("run2", c2)
	t1, t2 := runWaitInversion(t, p2, false)
	waitDone(t, t1)
	waitDone(t, t2)
	st := p2.Dimmunix().Stats()
	if st.DeadlocksDetected != 0 || st.DuplicateDeadlocks != 0 {
		t.Errorf("run 2 deadlocked: %+v", st)
	}
	p2.Kill()
}

// runWaitInversion launches the two threads of the §3.2 example. t1 waits
// with a timeout (the paper's t1 simply "finishes waiting"); t2 enters
// once t1 is parked.
func runWaitInversion(t *testing.T, p *Process, _ bool) (t1, t2 *Thread) {
	x, y := p.NewObject("x"), p.NewObject("y")
	t1 = startThread(t, p, "t1", func(th *Thread) {
		th.Call("com.app.W", "holder", 30, func() {
			x.Synchronized(th, func() {
				y.Synchronized(th, func() {
					_, _ = x.Wait(th, 100*time.Millisecond)
				})
			})
		})
	})
	t2 = startThread(t, p, "t2", func(th *Thread) {
		th.Call("com.app.W", "taker", 40, func() {
			// Wait (off the test goroutine) until t1 is parked in x.wait.
			pollSoft(func() bool { return p.Stats().Waits >= 1 })
			x.Synchronized(th, func() {
				y.Synchronized(th, func() {})
			})
		})
	})
	return t1, t2
}
