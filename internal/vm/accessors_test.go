package vm

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

func TestVMAccessors(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("shared")
	if o.Name() != "shared" {
		t.Errorf("Object.Name = %q", o.Name())
	}
	if p.Killed() {
		t.Error("fresh process must not be killed")
	}
	th := startThread(t, p, "w", func(th *Thread) {
		if th.ID() == 0 {
			t.Error("thread ID must be assigned")
		}
		if th.Process() != p {
			t.Error("Thread.Process mismatch")
		}
		o.Synchronized(th, func() {})
	})
	waitDone(t, th)
	if p.SyncCount() != 1 {
		t.Errorf("SyncCount = %d, want 1", p.SyncCount())
	}
	if got := len(p.Threads()); got != 1 {
		t.Errorf("Threads() = %d, want 1", got)
	}
	if fp := p.SyncFootprint(); fp < 0 {
		t.Errorf("SyncFootprint = %d", fp)
	}
}

func TestThreadStateStrings(t *testing.T) {
	tests := []struct {
		state ThreadState
		want  string
	}{
		{StateNew, "new"},
		{StateRunnable, "runnable"},
		{StateBlocked, "blocked"},
		{StateWaiting, "waiting"},
		{StateTerminated, "terminated"},
		{ThreadState(99), "ThreadState(99)"},
	}
	for _, tc := range tests {
		if got := tc.state.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.state, got, tc.want)
		}
	}
	kinds := []struct {
		kind SiteKind
		want string
	}{
		{SyncBlock, "synchronized-block"},
		{SyncMethod, "synchronized-method"},
		{ExplicitLock, "explicit-lock"},
		{SiteKind(42), "SiteKind(42)"},
	}
	for _, tc := range kinds {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("SiteKind = %q, want %q", got, tc.want)
		}
	}
}

func TestZygoteAccessors(t *testing.T) {
	store := core.NewMemHistory()
	z := NewZygote(
		WithDimmunix(true),
		WithHistory(store),
		WithCoreOptions(core.WithOuterDepth(2)),
	)
	if !z.DimmunixEnabled() {
		t.Error("DimmunixEnabled = false")
	}
	p, err := z.Fork("app")
	if err != nil {
		t.Fatal(err)
	}
	defer z.KillAll()
	if got := p.Dimmunix().Config().OuterDepth; got != 2 {
		t.Errorf("forwarded OuterDepth = %d, want 2", got)
	}
	if procs := z.Processes(); len(procs) != 1 || procs[0] != p {
		t.Errorf("Processes() = %v", procs)
	}
}

// TestSyncFootprintGrowsWithMonitors: the E5 measurement must actually
// track monitor inflation.
func TestSyncFootprintGrowsWithMonitors(t *testing.T) {
	p := dimProcess(t)
	before := p.SyncFootprint()
	objs := make([]*Object, 50)
	for i := range objs {
		objs[i] = p.NewObject("o")
	}
	th := startThread(t, p, "w", func(th *Thread) {
		for _, o := range objs {
			o.Synchronized(th, func() {})
		}
	})
	waitDone(t, th)
	after := p.SyncFootprint()
	if after <= before {
		t.Errorf("footprint did not grow: %d -> %d", before, after)
	}
	if grown := after - before; grown < 50*sizeofMonitor {
		t.Errorf("footprint grew %d bytes for 50 monitors, want >= %d", grown, 50*sizeofMonitor)
	}
}

// TestEnterAtVanillaIgnoresSite: static sites only matter under Dimmunix;
// the vanilla thin path must work unchanged.
func TestEnterAtVanillaIgnoresSite(t *testing.T) {
	p := vanillaProcess(t)
	o := p.NewObject("o")
	site := NewSite("com.app.S", "m", 7)
	th := startThread(t, p, "w", func(th *Thread) {
		if err := o.EnterAt(th, site); err != nil {
			t.Error(err)
		}
		if o.IsFat() {
			t.Error("vanilla EnterAt must stay thin when uncontended")
		}
		if err := o.Exit(th); err != nil {
			t.Error(err)
		}
	})
	waitDone(t, th)
}

// TestWaitZeroTimeoutMeansForever plus notify path through SynchronizedAt.
func TestSynchronizedAtWaitNotify(t *testing.T) {
	p := dimProcess(t)
	o := p.NewObject("cond")
	site := NewSite("com.app.C", "await", 11)
	got := make(chan bool, 1)
	waiter := startThread(t, p, "waiter", func(th *Thread) {
		o.SynchronizedAt(th, site, func() {
			notified, err := o.Wait(th, 0)
			if err != nil {
				t.Error(err)
			}
			got <- notified
		})
	})
	pollUntil(t, "parked", func() bool { return p.Stats().Waits == 1 })
	n := startThread(t, p, "notifier", func(th *Thread) {
		o.SynchronizedAt(th, site, func() {
			if err := o.NotifyAll(th); err != nil {
				t.Error(err)
			}
		})
	})
	waitDone(t, n)
	select {
	case notified := <-got:
		if !notified {
			t.Error("waiter must be notified")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter hung")
	}
	waitDone(t, waiter)
}
