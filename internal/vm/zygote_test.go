package vm

import (
	"sync"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// fakeBus is a minimal SignatureBus capturing the wiring contract: what
// the Zygote loads, which epoch it subscribes from, and whether cancel
// runs at kill.
type fakeBus struct {
	mu        sync.Mutex
	sigs      []*core.Signature
	appended  []*core.Signature
	subs      map[string]func(uint64, []*core.Signature)
	subFrom   map[string]uint64
	cancelled map[string]bool
}

func newFakeBus(sigs ...*core.Signature) *fakeBus {
	return &fakeBus{
		sigs:      sigs,
		subs:      make(map[string]func(uint64, []*core.Signature)),
		subFrom:   make(map[string]uint64),
		cancelled: make(map[string]bool),
	}
}

func (b *fakeBus) Load() ([]*core.Signature, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*core.Signature(nil), b.sigs...), nil
}

// Append mirrors the real service: accept under the bus lock, then
// deliver to subscribers asynchronously (Append runs with the publishing
// core's engine lock held, so delivering synchronously would deadlock the
// publisher on its own subscription).
func (b *fakeBus) Append(sig *core.Signature) error {
	b.mu.Lock()
	b.sigs = append(b.sigs, sig)
	b.appended = append(b.appended, sig)
	epoch := uint64(len(b.sigs))
	fns := make([]func(uint64, []*core.Signature), 0, len(b.subs))
	for _, fn := range b.subs {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	go func() {
		for _, fn := range fns {
			fn(epoch, []*core.Signature{sig})
		}
	}()
	return nil
}

func (b *fakeBus) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return uint64(len(b.sigs))
}

func (b *fakeBus) Subscribe(name string, from uint64, fn func(uint64, []*core.Signature)) func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs[name] = fn
	b.subFrom[name] = from
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.cancelled[name] = true
		delete(b.subs, name)
	}
}

// push delivers a signature to all current subscribers (synchronously;
// the fake stands in for the service's delivery goroutines).
func (b *fakeBus) push(sig *core.Signature) {
	b.mu.Lock()
	b.sigs = append(b.sigs, sig)
	epoch := uint64(len(b.sigs))
	fns := make([]func(uint64, []*core.Signature), 0, len(b.subs))
	for _, fn := range b.subs {
		fns = append(fns, fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(epoch, []*core.Signature{sig})
	}
}

func busSig(line int) *core.Signature {
	a := core.Frame{Class: "com.bus.A", Method: "m", Line: line}
	b := core.Frame{Class: "com.bus.B", Method: "n", Line: line + 1}
	return &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{a}, Inner: core.CallStack{a}},
			{Outer: core.CallStack{b}, Inner: core.CallStack{b}},
		},
	}
}

// TestZygoteSignatureBusWiring: a forked process loads the bus history,
// subscribes from the pre-load epoch, hot-installs pushed deltas into its
// live core, publishes its own detections to the bus, and unsubscribes
// when killed.
func TestZygoteSignatureBusWiring(t *testing.T) {
	bus := newFakeBus(busSig(100))
	z := NewZygote(WithDimmunix(true), WithSignatureBus(bus))

	p, err := z.Fork("app.one")
	if err != nil {
		t.Fatal(err)
	}
	dim := p.Dimmunix()
	if dim == nil {
		t.Fatal("no core")
	}
	// Initial history came from the bus (the bus overrides WithHistory).
	if got := dim.HistorySize(); got != 1 {
		t.Fatalf("history size after fork = %d, want 1 (loaded from bus)", got)
	}
	if from := bus.subFrom["app.one"]; from != 1 {
		t.Fatalf("subscribed from epoch %d, want 1 (captured before load)", from)
	}

	// A push hot-installs into the live core — no restart.
	bus.push(busSig(200))
	if got := dim.HistorySize(); got != 2 {
		t.Fatalf("history size after push = %d, want 2", got)
	}
	if got := dim.Stats().SignaturesInstalled; got != 1 {
		t.Fatalf("hot-installs = %d, want 1", got)
	}

	// The core's own additions are published to the bus, not a file.
	if _, _, err := dim.AddSignature(busSig(300)); err != nil {
		t.Fatal(err)
	}
	if len(bus.appended) != 1 {
		t.Fatalf("bus received %d appends, want 1", len(bus.appended))
	}

	// Kill cancels the subscription.
	p.Kill()
	if !bus.cancelled["app.one"] {
		t.Fatal("kill did not cancel the bus subscription")
	}
}

// TestZygoteBusSecondProcessSeesFirstDetection: the end-to-end on-device
// story at VM level with a real fork pair and a synchronous fake bus.
func TestZygoteBusSecondProcessSeesFirstDetection(t *testing.T) {
	bus := newFakeBus()
	z := NewZygote(WithDimmunix(true), WithSignatureBus(bus))
	defer z.KillAll()

	a, err := z.Fork("app.a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := z.Fork("app.b")
	if err != nil {
		t.Fatal(err)
	}
	// app.a records a signature (standing in for its detection path).
	if _, _, err := a.Dimmunix().AddSignature(busSig(10)); err != nil {
		t.Fatal(err)
	}
	// app.b — running since before the detection — is armed.
	deadline := time.Now().Add(2 * time.Second)
	for b.Dimmunix().HistorySize() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("app.b not armed: history size %d", b.Dimmunix().HistorySize())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAddKillHookAfterKillRunsImmediately guards the hook-registration
// race: registering on an already-killed process runs the hook inline.
func TestAddKillHookAfterKillRunsImmediately(t *testing.T) {
	p := NewProcess("dead", nil)
	p.Kill()
	ran := false
	p.addKillHook(func() { ran = true })
	if !ran {
		t.Fatal("hook on killed process did not run")
	}
}
