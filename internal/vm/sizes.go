package vm

import (
	"unsafe"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Struct sizes for the SyncFootprint estimate.
const (
	sizeofMonitor  = int64(unsafe.Sizeof(Monitor{}))
	sizeofWaitNode = int64(unsafe.Sizeof(waitNode{}))
	sizeofFrame    = int64(unsafe.Sizeof(core.Frame{}))
	// sizeofSiteEntry approximates one map entry in the site cache
	// (key pointer + value pointer + bucket overhead).
	sizeofSiteEntry = 48
)
