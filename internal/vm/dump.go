package vm

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Thread dumps — the VM equivalent of the traces Android writes to
// /data/anr/traces.txt when the watchdog or ANR machinery fires. A dump
// snapshots every thread's name, state and simulated call stack; the
// platform attaches one to each freeze report so a recorded deadlock is
// diagnosable after the fact.

// ThreadDump is one thread's snapshot.
type ThreadDump struct {
	// ID is the thread id within its process.
	ID uint32
	// Name is the thread name.
	Name string
	// State is the thread state at snapshot time.
	State ThreadState
	// Stack is the thread's simulated call stack, innermost frame first.
	Stack core.CallStack
}

// String renders one thread like a traces.txt entry.
func (d ThreadDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\"%s\" tid=%d %s\n", d.Name, d.ID, d.State)
	for _, f := range d.Stack {
		fmt.Fprintf(&b, "    at %s\n", f)
	}
	return b.String()
}

// DumpThreads snapshots all threads of the process, sorted by id. The
// snapshot is taken thread by thread (each stack is internally consistent;
// the set is approximate while threads run, exact once they are blocked —
// which is the case that matters for freeze diagnosis).
func (p *Process) DumpThreads() []ThreadDump {
	p.mu.Lock()
	threads := make([]*Thread, 0, len(p.threads))
	for _, t := range p.threads {
		threads = append(threads, t)
	}
	p.mu.Unlock()

	dumps := make([]ThreadDump, 0, len(threads))
	for _, t := range threads {
		dumps = append(dumps, ThreadDump{
			ID:    t.id,
			Name:  t.name,
			State: t.State(),
			Stack: t.CurrentStack(),
		})
	}
	sort.Slice(dumps, func(i, j int) bool { return dumps[i].ID < dumps[j].ID })
	return dumps
}

// FormatDump renders a full process dump.
func FormatDump(procName string, dumps []ThreadDump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "----- thread dump of process %q (%d threads) -----\n", procName, len(dumps))
	for _, d := range dumps {
		b.WriteString(d.String())
	}
	b.WriteString("----- end dump -----\n")
	return b.String()
}
