// Package vm implements a Dalvik-like virtual machine substrate: VM
// threads with explicit call stacks, objects with thin/fat lock words,
// recursive monitors with wait/notify, and per-process Dimmunix
// integration.
//
// Go's runtime mutexes are opaque — their lock/unlock operations cannot be
// intercepted — which is precisely the paper's argument for implementing
// deadlock immunity inside the synchronization library itself (§3.1). This
// package therefore is the synchronization library: it reimplements
// Dalvik's monitor subsystem, with Dimmunix called at the paper's three
// interception points (before monitorenter, after monitorenter, before
// monitorexit) plus around the re-acquisition inside Object.wait (§3.2).
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dimmunix/dimmunix/internal/core"
)

// ThreadState describes what a VM thread is currently doing.
type ThreadState int32

// Thread states.
const (
	StateNew ThreadState = iota + 1
	StateRunnable
	StateBlocked // blocked entering a monitor (includes avoidance yields)
	StateWaiting // parked in Object.wait
	StateTerminated
)

// String returns a readable state name.
func (s ThreadState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	case StateWaiting:
		return "waiting"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("ThreadState(%d)", int32(s))
	}
}

// Thread is a VM thread: a goroutine paired with an explicit call stack
// (the simulated equivalent of Dalvik's interpreted frames), a reusable
// stack-capture buffer (the paper's Thread.stackBuffer), and a RAG node
// (the paper's Thread.node).
type Thread struct {
	id   uint32
	name string
	proc *Process

	// node is the Dimmunix RAG node; nil when the process runs vanilla.
	node *core.Node

	// frameMu guards frames. Pushes and pops happen only on the owning
	// goroutine, but deadlock detection captures the inner stacks of
	// *other* threads, so reads can come from any goroutine.
	frameMu sync.Mutex
	frames  []core.Frame

	// stackBuf is the reusable capture buffer: position capture fills it
	// top-frame-first without allocating (§4: "the dvmGetCallStack routine
	// does not need to allocate memory").
	stackBuf []core.Frame

	state       atomic.Int32
	interrupted atomic.Bool
	interruptCh chan struct{}

	// done closes when the thread's function returns.
	done chan struct{}
	// err records why the thread terminated abnormally (killed process,
	// deadlock unwind), nil for normal completion.
	err   error
	errMu sync.Mutex
}

// ID returns the thread's id, unique within its process.
func (t *Thread) ID() uint32 { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// State returns the thread's current state.
func (t *Thread) State() ThreadState { return ThreadState(t.state.Load()) }

func (t *Thread) setState(s ThreadState) { t.state.Store(int32(s)) }

// Done returns a channel closed when the thread terminates.
func (t *Thread) Done() <-chan struct{} { return t.done }

// Err returns the thread's termination error, if any. Valid after Done.
func (t *Thread) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

func (t *Thread) setErr(err error) {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	if t.err == nil {
		t.err = err
	}
}

// Interrupt sets the thread's interrupt flag and wakes it if it is parked
// in Object.wait (Java Thread.interrupt semantics for monitors).
func (t *Thread) Interrupt() {
	t.interrupted.Store(true)
	select {
	case t.interruptCh <- struct{}{}:
	default:
	}
}

// Interrupted reports and clears the interrupt flag.
func (t *Thread) Interrupted() bool {
	if !t.interrupted.Swap(false) {
		return false
	}
	t.drainInterrupt()
	return true
}

// drainInterrupt empties the interrupt channel after the flag is consumed.
func (t *Thread) drainInterrupt() {
	select {
	case <-t.interruptCh:
	default:
	}
}

// PushFrame enters a simulated method frame. Platform and application code
// brackets method bodies with PushFrame/PopFrame (or uses Call) so that
// monitorenter positions are meaningful, stable program locations.
func (t *Thread) PushFrame(f core.Frame) {
	t.frameMu.Lock()
	t.frames = append(t.frames, f)
	t.frameMu.Unlock()
}

// PopFrame leaves the innermost simulated frame. Popping an empty stack is
// a programming error in simulation code; it is tolerated as a no-op.
func (t *Thread) PopFrame() {
	t.frameMu.Lock()
	if n := len(t.frames); n > 0 {
		t.frames = t.frames[:n-1]
	}
	t.frameMu.Unlock()
}

// Call runs body inside a simulated frame, mirroring a method invocation.
func (t *Thread) Call(class, method string, line int, body func()) {
	t.PushFrame(core.Frame{Class: class, Method: method, Line: line})
	defer t.PopFrame()
	body()
}

// FrameDepth returns the current simulated stack depth.
func (t *Thread) FrameDepth() int {
	t.frameMu.Lock()
	defer t.frameMu.Unlock()
	return len(t.frames)
}

// CurrentStack returns a copy of the thread's full call stack, innermost
// frame first. Safe to call from any goroutine; used by the core for the
// informational inner stacks of signatures.
func (t *Thread) CurrentStack() core.CallStack {
	t.frameMu.Lock()
	defer t.frameMu.Unlock()
	n := len(t.frames)
	if n == 0 {
		return core.CallStack{t.syntheticFrame()}
	}
	out := make(core.CallStack, n)
	for i := 0; i < n; i++ {
		out[i] = t.frames[n-1-i]
	}
	return out
}

// captureTop fills the reusable stack buffer with the top `depth` frames,
// innermost first, and returns it — the simulated dvmGetCallStack. The
// returned slice aliases t.stackBuf and is only valid until the next
// capture; core.Intern copies what it keeps.
func (t *Thread) captureTop(depth int) core.CallStack {
	if depth < 1 {
		depth = 1
	}
	t.frameMu.Lock()
	n := len(t.frames)
	if n == 0 {
		t.frameMu.Unlock()
		if cap(t.stackBuf) < 1 {
			t.stackBuf = make([]core.Frame, 1)
		}
		t.stackBuf = t.stackBuf[:1]
		t.stackBuf[0] = t.syntheticFrame()
		return core.CallStack(t.stackBuf)
	}
	if depth > n {
		depth = n
	}
	if cap(t.stackBuf) < depth {
		t.stackBuf = make([]core.Frame, depth)
	}
	t.stackBuf = t.stackBuf[:depth]
	for i := 0; i < depth; i++ {
		t.stackBuf[i] = t.frames[n-1-i]
	}
	t.frameMu.Unlock()
	return core.CallStack(t.stackBuf)
}

// syntheticFrame stands in for threads that synchronize without having
// pushed any simulated frames (e.g. raw tests): the position is then the
// thread's entry point.
func (t *Thread) syntheticFrame() core.Frame {
	return core.Frame{Class: "vm.ThreadEntry", Method: t.name, Line: 0}
}

// run is the goroutine trampoline. Thread bodies unwind abnormal
// termination (process kill, deadlock-fail policy) with a typed panic that
// is recovered here, mimicking how a Java thread dies from an uncaught
// exception without taking the process down.
func (t *Thread) run(fn func(*Thread)) {
	defer t.proc.wg.Done()
	defer close(t.done)
	defer func() {
		t.setState(StateTerminated)
		// Retire the RAG node so the core's registry stays bounded by
		// live threads (long-lived processes spawn and reap many).
		if dim := t.proc.dim; dim != nil && t.node != nil {
			dim.RetireThreadNode(t.node)
		}
		if r := recover(); r != nil {
			if u, ok := r.(threadUnwind); ok {
				t.setErr(u.err)
				return
			}
			panic(r)
		}
	}()
	t.setState(StateRunnable)
	fn(t)
}

// threadUnwind is the typed panic payload used by Synchronized/MustEnter
// to unwind a thread that cannot continue (killed process or PolicyFail
// deadlock). It never escapes the package: run recovers it.
type threadUnwind struct{ err error }

// unwind aborts the current thread with err.
func unwind(err error) {
	panic(threadUnwind{err: err})
}
