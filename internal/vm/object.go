package vm

import (
	"runtime"
	"sync/atomic"
	"time"
)

// thinSpinLimit is how many times a vanilla-mode contender yields the
// processor before falling back to micro-sleeps and promoting the lock to
// a fat monitor on acquisition, approximating Dalvik's thin-lock contention
// handling.
const thinSpinLimit = 32

// contendedSleep is the vanilla-mode backoff once spinning has failed.
const contendedSleep = 5 * time.Microsecond

// Object is a VM object that can be synchronized on: the target of
// monitorenter/monitorexit and Object.wait/notify. Its lock starts thin (a
// single CAS-managed word, Dalvik-style); it is fattened to a Monitor on
// recursion overflow, on wait(), on observed contention — and immediately
// on first monitorenter when Dimmunix is enabled, because a RAG node must
// live in a Monitor object: "the thin lock is a simple integer field,
// which cannot accommodate a RAG node" (§4).
type Object struct {
	name string
	proc *Process
	lw   atomic.Uint64
	mon  atomic.Pointer[Monitor]
}

// Name returns the object's diagnostic name.
func (o *Object) Name() string { return o.name }

// IsFat reports whether the object's lock has been inflated to a Monitor.
func (o *Object) IsFat() bool { return lwIsFat(o.lw.Load()) }

// Monitor returns the object's fat monitor, or nil while the lock is still
// thin. Diagnostic use (watchdogs, tests).
func (o *Object) Monitor() *Monitor { return o.mon.Load() }

// Enter performs monitorenter on the object. With Dimmunix enabled the
// lock is fattened first and the monitor path runs the Request/Acquired
// interception; vanilla mode takes the thin-lock fast path.
//
// Enter returns ErrProcessKilled if the process is torn down while
// blocked, or a *core.DeadlockError under the fail policy.
func (o *Object) Enter(t *Thread) error {
	return o.enterInternal(t, nil)
}

// EnterAt is Enter with a pre-resolved position (ablation A5: the
// compiler-assigned static synchronization-statement ids proposed in §4,
// which eliminate the per-acquisition stack capture).
func (o *Object) EnterAt(t *Thread, site *Site) error {
	return o.enterInternal(t, site)
}

// enterInternal dispatches between the Dimmunix (always-fat) and vanilla
// (thin-first) paths.
func (o *Object) enterInternal(t *Thread, site *Site) error {
	if err := o.checkThread(t); err != nil {
		return err
	}
	if o.proc.dim != nil {
		m, err := o.fatten(t)
		if err != nil {
			return err
		}
		return m.enter(t, 1, site)
	}
	spins := 0
	for {
		if o.proc.isKilled() {
			return ErrProcessKilled
		}
		lw := o.lw.Load()
		switch {
		case lwIsFat(lw):
			return o.mon.Load().enter(t, 1, site)
		case lw == 0:
			if o.lw.CompareAndSwap(0, thinWord(t.id, 1)) {
				if spins >= thinSpinLimit {
					// Contended acquisition: promote so future contenders
					// park on the monitor instead of spinning.
					o.inflateOwned(t)
				}
				o.proc.stats.thinEnters.Add(1)
				o.proc.noteSync()
				return nil
			}
		case lwOwner(lw) == t.id:
			if lwCount(lw) >= maxThinRecursion {
				m := o.inflateOwned(t)
				return m.enter(t, 1, site)
			}
			o.lw.Store(lw + 1)
			o.proc.stats.recursiveEnters.Add(1)
			o.proc.noteSync()
			return nil
		default:
			// Thin lock owned by another thread: yield, then back off.
			spins++
			if spins < thinSpinLimit {
				runtime.Gosched()
			} else {
				time.Sleep(contendedSleep)
			}
		}
	}
}

// Exit performs monitorexit on the object.
func (o *Object) Exit(t *Thread) error {
	if err := o.checkThread(t); err != nil {
		return err
	}
	lw := o.lw.Load()
	if lwIsFat(lw) {
		return o.mon.Load().exit(t)
	}
	if lw == 0 || lwOwner(lw) != t.id {
		return ErrNotOwner
	}
	if lwCount(lw) > 1 {
		o.lw.Store(lw - 1)
	} else {
		o.lw.Store(0)
	}
	return nil
}

// Wait implements Object.wait: the calling thread must own the monitor; it
// releases it fully, parks until notify/timeout/interrupt, and re-acquires
// it through the full interception path so that deadlocks caused by lock
// inversions over wait() are detected and avoided (§3.2). A timeout of 0
// waits indefinitely. It returns whether the thread was notified (as
// opposed to timing out).
func (o *Object) Wait(t *Thread, timeout time.Duration) (bool, error) {
	if err := o.checkThread(t); err != nil {
		return false, err
	}
	lw := o.lw.Load()
	if !lwIsFat(lw) {
		if lw == 0 || lwOwner(lw) != t.id {
			return false, ErrNotOwner
		}
		// Dalvik also inflates on wait: the wait set lives in the Monitor.
		o.inflateOwned(t)
	}
	return o.mon.Load().wait(t, timeout)
}

// Notify wakes one thread waiting on the object, if any.
func (o *Object) Notify(t *Thread) error {
	return o.notifyInternal(t, false)
}

// NotifyAll wakes all threads waiting on the object.
func (o *Object) NotifyAll(t *Thread) error {
	return o.notifyInternal(t, true)
}

func (o *Object) notifyInternal(t *Thread, all bool) error {
	if err := o.checkThread(t); err != nil {
		return err
	}
	lw := o.lw.Load()
	if !lwIsFat(lw) {
		// A thin lock has no wait set: if we own it there is nothing to
		// notify; if we don't, it is an illegal monitor state.
		if lw == 0 || lwOwner(lw) != t.id {
			return ErrNotOwner
		}
		return nil
	}
	return o.mon.Load().notify(t, all)
}

// fatten publishes the object's Monitor, creating it under the process
// fatten lock with double-checking — the paper's pre-lockMonitor snippet
// guarded by globalLock.
func (o *Object) fatten(t *Thread) (*Monitor, error) {
	if m := o.mon.Load(); m != nil {
		return m, nil
	}
	p := o.proc
	p.fattenMu.Lock()
	defer p.fattenMu.Unlock()
	if m := o.mon.Load(); m != nil {
		return m, nil
	}
	if p.isKilled() {
		return nil, ErrProcessKilled
	}
	m := p.newMonitor(o)
	o.mon.Store(m)
	o.lw.Store(lwShapeFat)
	return m, nil
}

// inflateOwned converts a thin lock held by t into a fat monitor owned by
// t, preserving the recursion count. Only the thin owner may call it.
func (o *Object) inflateOwned(t *Thread) *Monitor {
	lw := o.lw.Load()
	m := o.proc.newMonitor(o)
	m.owner = t
	m.recursion = lwCount(lw)
	// Publish the monitor before flipping the shape bit so any thread that
	// observes the fat shape finds the monitor in place.
	o.mon.Store(m)
	o.lw.Store(lwShapeFat)
	return m
}

// checkThread validates the thread belongs to this object's process.
func (o *Object) checkThread(t *Thread) error {
	if t == nil {
		return ErrNilThread
	}
	if t.proc != o.proc {
		return ErrForeignThread
	}
	return nil
}
