package workload

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// TestRunFleetImmunity is the acceptance scenario: 4 phones, live
// processes armed without restart, threshold gating demonstrated, and a
// measured time-to-fleet-immunity.
func TestRunFleetImmunity(t *testing.T) {
	cfg := DefaultFleetImmunityConfig()
	res, err := RunFleetImmunity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceImmunity <= 0 {
		t.Errorf("device immunity %v, want > 0", res.DeviceImmunity)
	}
	if res.FleetImmunity <= 0 {
		t.Errorf("fleet immunity %v, want > 0", res.FleetImmunity)
	}
	if res.FleetArm > res.FleetImmunity {
		t.Errorf("fleet arm %v after fleet immunity %v", res.FleetArm, res.FleetImmunity)
	}
	if res.RemoteProcsSampled != (cfg.Phones-1)*cfg.ProcsPerPhone {
		t.Errorf("sampled %d remote procs, want %d", res.RemoteProcsSampled, (cfg.Phones-1)*cfg.ProcsPerPhone)
	}
	if res.RemoteArmedBeforeThreshold != 0 {
		t.Errorf("%d remote procs armed below the confirmation threshold", res.RemoteArmedBeforeThreshold)
	}
	if len(res.Provenance) != 1 {
		t.Fatalf("provenance has %d entries, want 1", len(res.Provenance))
	}
	prov := res.Provenance[0]
	if !prov.Armed || prov.Confirmations != cfg.ConfirmThreshold || prov.FirstSeen != "phone0" {
		t.Errorf("provenance %+v, want armed, %d confirmations, first-seen phone0", prov, cfg.ConfirmThreshold)
	}

	out := FormatFleetImmunity(res)
	for _, want := range []string{"fleet immunity:", "threshold gating", "provenance:", "first-seen=phone0"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestRunFleetImmunityThresholdOne: with threshold 1 a single detection
// immunizes the whole fleet.
func TestRunFleetImmunityThresholdOne(t *testing.T) {
	cfg := FleetImmunityConfig{Phones: 2, ProcsPerPhone: 2, ConfirmThreshold: 1, Timeout: 30 * time.Second}
	res, err := RunFleetImmunity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FleetImmunity <= 0 {
		t.Errorf("fleet immunity %v, want > 0", res.FleetImmunity)
	}
	if res.RemoteProcsSampled != 0 {
		t.Errorf("gating sampled %d procs with threshold 1, want 0", res.RemoteProcsSampled)
	}
}

// TestFleetImmunityConfigValidate rejects inconsistent configs.
func TestFleetImmunityConfigValidate(t *testing.T) {
	base := DefaultFleetImmunityConfig()
	cases := []struct {
		name   string
		mutate func(*FleetImmunityConfig)
	}{
		{"one phone", func(c *FleetImmunityConfig) { c.Phones = 1 }},
		{"zero procs", func(c *FleetImmunityConfig) { c.ProcsPerPhone = 0 }},
		{"zero threshold", func(c *FleetImmunityConfig) { c.ConfirmThreshold = 0 }},
		{"threshold above phones", func(c *FleetImmunityConfig) { c.ConfirmThreshold = c.Phones + 1 }},
		{"no timeout", func(c *FleetImmunityConfig) { c.Timeout = 0 }},
		{"bad transport", func(c *FleetImmunityConfig) { c.Transport = "carrier-pigeon" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := RunFleetImmunity(cfg); err == nil {
				t.Error("want config error")
			}
		})
	}
}

// TestFleetImmunityTransportEquivalence is the transport-equivalence
// acceptance criterion: the identical scenario over the in-process
// loopback and over real TCP sockets must produce identical arming
// decisions — same gating (0 remote procs armed below threshold), same
// provenance (armed flags, confirmation counts, confirming devices,
// first-seen). Only the latencies may differ.
func TestFleetImmunityTransportEquivalence(t *testing.T) {
	type decision struct {
		remoteArmedBelowThreshold int
		provenance                []immunity.Provenance
	}
	cases := []struct {
		name string
		cfg  FleetImmunityConfig
	}{
		{"default threshold 2", DefaultFleetImmunityConfig()},
		{"threshold 1", FleetImmunityConfig{Phones: 2, ProcsPerPhone: 2, ConfirmThreshold: 1, Timeout: 30 * time.Second}},
		{"threshold 3 of 3", FleetImmunityConfig{Phones: 3, ProcsPerPhone: 1, ConfirmThreshold: 3, Timeout: 30 * time.Second}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results := make(map[FleetTransport]decision)
			for _, tr := range []FleetTransport{TransportLoopback, TransportTCP} {
				cfg := tc.cfg
				cfg.Transport = tr
				res, err := RunFleetImmunity(cfg)
				if err != nil {
					t.Fatalf("%s: %v", tr, err)
				}
				results[tr] = decision{
					remoteArmedBelowThreshold: res.RemoteArmedBeforeThreshold,
					provenance:                res.Provenance,
				}
			}
			lo, tcp := results[TransportLoopback], results[TransportTCP]
			if lo.remoteArmedBelowThreshold != 0 || tcp.remoteArmedBelowThreshold != 0 {
				t.Fatalf("gating broke: loopback %d, tcp %d remote procs armed below threshold",
					lo.remoteArmedBelowThreshold, tcp.remoteArmedBelowThreshold)
			}
			if !reflect.DeepEqual(lo.provenance, tcp.provenance) {
				t.Fatalf("arming decisions diverge across transports:\nloopback: %+v\ntcp:      %+v",
					lo.provenance, tcp.provenance)
			}
		})
	}
}

// TestPropagationLatencyTCP sanity-checks the cross-device TCP probe.
func TestPropagationLatencyTCP(t *testing.T) {
	res, err := PropagationLatencyTCP(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg <= 0 || res.Max < res.Avg {
		t.Errorf("latencies avg=%v max=%v, want 0 < avg <= max", res.Avg, res.Max)
	}
	if !strings.Contains(FormatPropagation(res), "over TCP") {
		t.Errorf("format: %q", FormatPropagation(res))
	}
}

// TestPropagationLatency sanity-checks the on-device latency probe.
func TestPropagationLatency(t *testing.T) {
	res, err := PropagationLatency(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg <= 0 || res.Max < res.Avg {
		t.Errorf("latencies avg=%v max=%v, want 0 < avg <= max", res.Avg, res.Max)
	}
	if !strings.Contains(FormatPropagation(res), "publish→all-armed") {
		t.Errorf("format: %q", FormatPropagation(res))
	}
}

// BenchmarkPropagation measures time-to-immunity on one device: one
// publish, N live processes hot-installed. ns/op ≈ the window in which a
// just-detected deadlock could still reoccur in another process.
func BenchmarkPropagation(b *testing.B) {
	const procs = 8
	svc, err := immunity.NewService("bench", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	z := vm.NewZygote(vm.WithDimmunix(true), vm.WithSignatureBus(svc))
	defer z.KillAll()
	ps := make([]*vm.Process, procs)
	for i := range ps {
		if ps[i], err = z.Fork(fmt.Sprintf("app%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.Publish("bench", propagationSig(i)); err != nil {
			b.Fatal(err)
		}
		if err := waitArmedCount(ps, i+1, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFleetImmunityFederationEquivalence is the federation-equivalence
// acceptance criterion: the identical scenario against a single hub and
// against a 3-hub federated cluster — devices split across hubs, over
// both loopback and TCP — must produce identical arming decisions at
// confirm thresholds 1, 2, and 3: same gating (0 remote procs armed
// below threshold), same armed signature, same confirmation count and
// confirming devices (i.e. a confirmation forwarded through a non-owner
// hub is counted exactly once). Only latencies and the owner
// attribution may differ.
func TestFleetImmunityFederationEquivalence(t *testing.T) {
	type decision struct {
		remoteArmedBelowThreshold int
		provenance                []immunity.Provenance
	}
	// normalize strips the fields that legitimately differ across
	// topologies: the owning hub's id.
	normalize := func(provs []immunity.Provenance) []immunity.Provenance {
		out := append([]immunity.Provenance{}, provs...)
		for i := range out {
			out[i].Owner = ""
		}
		return out
	}
	for threshold := 1; threshold <= 3; threshold++ {
		for _, tr := range []FleetTransport{TransportLoopback, TransportTCP} {
			t.Run(fmt.Sprintf("threshold%d_%s", threshold, tr), func(t *testing.T) {
				results := make(map[int]decision)
				for _, hubs := range []int{1, 3} {
					cfg := FleetImmunityConfig{
						Phones:           3,
						ProcsPerPhone:    1,
						ConfirmThreshold: threshold,
						Timeout:          30 * time.Second,
						Transport:        tr,
						Hubs:             hubs,
					}
					res, err := RunFleetImmunity(cfg)
					if err != nil {
						t.Fatalf("%d hub(s): %v", hubs, err)
					}
					results[hubs] = decision{
						remoteArmedBelowThreshold: res.RemoteArmedBeforeThreshold,
						provenance:                normalize(res.Provenance),
					}
				}
				single, clustered := results[1], results[3]
				if single.remoteArmedBelowThreshold != 0 || clustered.remoteArmedBelowThreshold != 0 {
					t.Fatalf("gating broke: single %d, cluster %d remote procs armed below threshold",
						single.remoteArmedBelowThreshold, clustered.remoteArmedBelowThreshold)
				}
				if !reflect.DeepEqual(single.provenance, clustered.provenance) {
					t.Fatalf("arming decisions diverge across topologies:\nsingle:  %+v\ncluster: %+v",
						single.provenance, clustered.provenance)
				}
			})
		}
	}
}
