package workload

import (
	"fmt"
	"strings"
	"time"
)

// SweepPoint is one (threads, signatures) cell of the E3 comparison.
type SweepPoint struct {
	Threads    int
	Signatures int
	Vanilla    Result
	Dimmunix   Result
}

// OverheadPct is the throughput overhead of Dimmunix at this point (the
// paper reports 4–5% at its operating point).
func (p SweepPoint) OverheadPct() float64 {
	if p.Vanilla.SyncsPerSec <= 0 {
		return 0
	}
	return (p.Vanilla.SyncsPerSec - p.Dimmunix.SyncsPerSec) / p.Vanilla.SyncsPerSec * 100
}

// SweepConfig parameterizes the E3 sweep.
type SweepConfig struct {
	// ThreadCounts to sweep (the paper: 2–512).
	ThreadCounts []int
	// SignatureCounts to sweep (the paper: 64–256).
	SignatureCounts []int
	// Duration per measurement.
	Duration time.Duration
	// WorkIters is the total busy-work per op; 0 means calibrate to the
	// paper's 1738–1756 syncs/sec operating point.
	WorkIters int
	// Seed for reproducibility.
	Seed int64
	// Serial runs the Dimmunix cells on the serial reference engine
	// instead of the sharded fast path.
	Serial bool
}

// DefaultSweepConfig returns the paper's sweep ranges.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		ThreadCounts:    []int{2, 8, 32, 128, 512},
		SignatureCounts: []int{64, 128, 256},
		Duration:        time.Second,
		Seed:            42,
	}
}

// RunSweep measures vanilla and Dimmunix throughput across the configured
// grid.
func RunSweep(cfg SweepConfig) ([]SweepPoint, error) {
	work := cfg.WorkIters
	if work == 0 {
		work = CalibrateWork(PaperTargetSyncsPerSec, cfg.ThreadCounts[0])
	}
	var points []SweepPoint
	for _, threads := range cfg.ThreadCounts {
		for _, sigs := range cfg.SignatureCounts {
			base := DefaultMicroConfig(threads)
			base.Duration = cfg.Duration
			base.Signatures = sigs
			base.InsideWork = work / 4
			base.OutsideWork = work - work/4
			base.Seed = cfg.Seed

			van := base
			van.Dimmunix = false
			vres, err := Run(van)
			if err != nil {
				return nil, fmt.Errorf("sweep threads=%d sigs=%d vanilla: %w", threads, sigs, err)
			}
			dim := base
			dim.Dimmunix = true
			dim.Serial = cfg.Serial
			dres, err := Run(dim)
			if err != nil {
				return nil, fmt.Errorf("sweep threads=%d sigs=%d dimmunix: %w", threads, sigs, err)
			}
			points = append(points, SweepPoint{
				Threads:    threads,
				Signatures: sigs,
				Vanilla:    vres,
				Dimmunix:   dres,
			})
		}
	}
	return points, nil
}

// FormatSweep renders the sweep as the paper reports it: vanilla vs
// Dimmunix syncs/sec and the overhead percentage.
func FormatSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %6s %16s %16s %10s\n", "threads", "sigs", "vanilla", "dimmunix", "overhead")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %6d %13.0f/s %13.0f/s %9.1f%%\n",
			p.Threads, p.Signatures, p.Vanilla.SyncsPerSec, p.Dimmunix.SyncsPerSec, p.OverheadPct())
	}
	return b.String()
}
