package workload

import (
	"testing"
	"time"
)

// fleetTestConfig returns a small, fast fleet for tests.
func fleetTestConfig() FleetConfig {
	cfg := DefaultFleetConfig()
	cfg.Processes = 4
	cfg.ThreadsPerProc = 6
	cfg.Locks = 16
	cfg.Duration = 150 * time.Millisecond
	cfg.InsideWork = 5
	cfg.OutsideWork = 10
	return cfg
}

func TestFleetRunsMixedProfiles(t *testing.T) {
	res, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("fleet made no progress")
	}
	if len(res.PerProcess) != 4 {
		t.Fatalf("per-process results = %d, want 4", len(res.PerProcess))
	}
	seen := map[string]bool{}
	for _, pr := range res.PerProcess {
		if pr.TotalOps == 0 {
			t.Errorf("process %s made no progress", pr.Name)
		}
		if pr.CoreStats.DeadlocksDetected != 0 {
			t.Errorf("process %s detected %d deadlocks in a deadlock-free workload",
				pr.Name, pr.CoreStats.DeadlocksDetected)
		}
		// The armed (never-instantiable) signatures must route their
		// sites through the slow path without ever suspending anyone.
		if pr.CoreStats.Yields != 0 {
			t.Errorf("process %s yielded %d times on never-instantiable signatures",
				pr.Name, pr.CoreStats.Yields)
		}
		seen[pr.Profile] = true
	}
	if len(seen) != 4 {
		t.Errorf("profiles mixed = %d distinct, want 4 (round-robin)", len(seen))
	}
	// With 25% of sites armed, traffic must split between fast and slow
	// paths: the fast path carries real load but never 100%.
	if res.FastPathPct <= 0 || res.FastPathPct >= 100 {
		t.Errorf("fast-path share = %.1f%%, want strictly between 0 and 100", res.FastPathPct)
	}
}

func TestFleetSerialEngineNeverFastPaths(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.Processes = 2
	cfg.Duration = 80 * time.Millisecond
	cfg.Serial = true
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("serial fleet made no progress")
	}
	if res.FastPathPct != 0 {
		t.Errorf("serial engine fast-path share = %.1f%%, want 0", res.FastPathPct)
	}
	for _, pr := range res.PerProcess {
		st := pr.CoreStats
		if st.FastRequests != 0 || st.FastAcquisitions != 0 || st.FastReleases != 0 {
			t.Errorf("process %s took fast paths under the serial engine: %+v", pr.Name, st)
		}
	}
}

func TestFleetVanillaBaseline(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.Processes = 2
	cfg.Duration = 80 * time.Millisecond
	cfg.Dimmunix = false
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("vanilla fleet made no progress")
	}
	if res.FastPathPct != 0 || res.Yields != 0 {
		t.Errorf("vanilla fleet reported core activity: %+v", res)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	bad := []FleetConfig{
		{Processes: 0, Duration: time.Second},
		{Processes: 1, Duration: 0},
		{Processes: 1, Duration: time.Second, ArmedSiteFraction: 1.5},
		{Processes: 1, Duration: time.Second, ThreadsPerProc: -1},
	}
	for i, cfg := range bad {
		if _, err := RunFleet(cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}
