// Partition storm workload: drives a report storm at a federation
// while a scripted network fault (fault.Network) splits it, then
// asserts the partition-tolerance contract end to end:
//
//   - with quorum leases on (the default), the minority side loses its
//     lease, parks every arming decision that crosses the confirmation
//     threshold during the split (zero arms on the minority while
//     split — the double-arm window the lease exists to close), while
//     the majority side promotes the isolated owner's keys and arms
//     the full set;
//   - with NoLease (the pre-lease baseline the fencing rule alone must
//     handle), both sides arm independently during the split and the
//     post-heal fencing/union merge still converges every hub to the
//     single-hub reference with per-hub epoch == armed count;
//   - after Heal, parked decisions drain to zero in bounded time and
//     every hub converges to exactly the single-hub armed set.
//
// Three fault shapes are scripted: a symmetric split (minority hub cut
// off in both directions), an asymmetric split (only the minority's
// outbound word is cut — it still hears its peers while its lease
// acks, forwards, and broadcasts vanish), and a flapping link (one
// direction of one majority link blinks faster than the suspicion
// window — indirect probes through the third hub must ride it out with
// no down-marks and no lease losses).
package workload

import (
	"fmt"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/fault"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Partition scenarios.
const (
	// ScenarioSymmetric cuts the last hub off in both directions.
	ScenarioSymmetric = "symmetric"
	// ScenarioAsymmetric cuts only the last hub's outbound paths: it
	// still hears its peers, but nothing it says gets out.
	ScenarioAsymmetric = "asymmetric"
	// ScenarioFlap blinks one direction of one majority link faster
	// than the suspicion window; nothing may be marked down.
	ScenarioFlap = "flap"
)

// PartitionConfig parameterizes one partition storm.
type PartitionConfig struct {
	// Devices is how many simulated phones report, attached round-robin
	// across all hubs (the minority hub included — its devices are what
	// force arming decisions onto the wrong side of the split).
	Devices int
	// Sigs is how many distinct signatures the fleet reports.
	Sigs int
	// ConfirmThreshold gates arming on every hub.
	ConfirmThreshold int
	// Hubs is the federation size (>= 3; the last hub is the minority
	// side of every split).
	Hubs int
	// Scenario selects the fault shape (symmetric, asymmetric, flap).
	Scenario string
	// NoLease disables quorum leases — the regression baseline where
	// both sides arm during a split and only fencing plus the union
	// merge reconcile them after the heal.
	NoLease bool
	// FailoverAfter is the failure-detection budget the probe timings
	// are derived from (default 150ms).
	FailoverAfter time.Duration
	// Timeout bounds every wait.
	Timeout time.Duration
	// Metrics, when non-nil, is shared with every hub and node.
	Metrics *metrics.Registry
}

// DefaultPartitionConfig is the CI partition shape: 6 devices, 24
// signatures, threshold 3 over a 3-hub federation, symmetric split.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{
		Devices:          6,
		Sigs:             24,
		ConfirmThreshold: 3,
		Hubs:             3,
		Scenario:         ScenarioSymmetric,
		FailoverAfter:    150 * time.Millisecond,
		Timeout:          60 * time.Second,
	}
}

// PartitionResult is the outcome of one partition storm.
type PartitionResult struct {
	Config PartitionConfig
	// MinorityKeys is how many signatures the isolated hub owned at the
	// cut — the slice whose arming had to ride the promotion.
	MinorityKeys int
	// Armed is the cluster-wide armed count at the end (minimum across
	// hubs).
	Armed int
	// ParkedPeak is the parked-decision depth observed on the minority
	// during the split (0 in flap and NoLease runs).
	ParkedPeak int
	// MinoritySplitArms is how many signatures the minority armed while
	// split: 0 with leases on, at least its owned slice with NoLease.
	MinoritySplitArms int
	// LeaseLost counts lease losses on the minority over the run.
	LeaseLost uint64
	// ParkClear is Heal to the minority's parked set draining to zero
	// (and the federation reconverging) — the bounded-park-time number.
	ParkClear time.Duration
	// Fenced sums the stale arm-broadcasts refused across hubs.
	Fenced uint64
	// Elapsed is storm start to final convergence.
	Elapsed time.Duration
}

func (cfg PartitionConfig) validate() error {
	if cfg.ConfirmThreshold < 1 {
		return fmt.Errorf("partition: confirm threshold %d < 1", cfg.ConfirmThreshold)
	}
	if cfg.Devices < cfg.ConfirmThreshold {
		return fmt.Errorf("partition: %d devices cannot cross threshold %d", cfg.Devices, cfg.ConfirmThreshold)
	}
	if cfg.Sigs < 1 {
		return fmt.Errorf("partition: need >= 1 signature, got %d", cfg.Sigs)
	}
	if cfg.Hubs < 3 {
		return fmt.Errorf("partition: need >= 3 hubs for a majority side, got %d", cfg.Hubs)
	}
	switch cfg.Scenario {
	case ScenarioSymmetric, ScenarioAsymmetric, ScenarioFlap:
	default:
		return fmt.Errorf("partition: unknown scenario %q (want %s|%s|%s)",
			cfg.Scenario, ScenarioSymmetric, ScenarioAsymmetric, ScenarioFlap)
	}
	if cfg.Timeout <= 0 {
		return fmt.Errorf("partition: non-positive timeout %v", cfg.Timeout)
	}
	if cfg.Scenario != ScenarioFlap {
		// The post-cut reporters must cover both sides: at least one
		// device on the minority hub (to force threshold crossings there)
		// and one on the majority (to finish arming the full set there).
		minority := cfg.Hubs - 1
		var lateMinority, lateMajority bool
		for i := cfg.ConfirmThreshold - 1; i < cfg.Devices; i++ {
			if i%cfg.Hubs == minority {
				lateMinority = true
			} else {
				lateMajority = true
			}
		}
		if !lateMinority || !lateMajority {
			return fmt.Errorf("partition: device/hub shape leaves a side of the split without post-cut reporters (devices %d, threshold %d, hubs %d)",
				cfg.Devices, cfg.ConfirmThreshold, cfg.Hubs)
		}
	}
	return nil
}

// RunPartitionStorm executes the partition storm and verifies the
// partition-tolerance contract. Any violation — an arm on the minority
// while its lease is lost, a double-arm (epoch past the armed count),
// a hub diverging from the single-hub reference after the heal, parked
// decisions that never drain — is an error.
func RunPartitionStorm(cfg PartitionConfig) (PartitionResult, error) {
	if err := cfg.validate(); err != nil {
		return PartitionResult{}, err
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = 150 * time.Millisecond
	}
	res := PartitionResult{Config: cfg}
	leases := !cfg.NoLease
	deadline := time.Now().Add(cfg.Timeout)
	var hubs []*immunity.Exchange
	var nodes []*cluster.Node
	snapshot := func() string {
		var out string
		for i := range hubs {
			if hubs[i] == nil || nodes[i] == nil {
				continue
			}
			held, _, lost := nodes[i].LeaseStats()
			out += fmt.Sprintf(" hub%d{armed:%d parked:%d members:%d lease:%v lost:%d fenced:%d",
				i, hubs[i].ArmedCount(), hubs[i].Stats().Parked, len(nodes[i].Members()), held, lost, hubs[i].Stats().Fenced)
			for _, ps := range nodes[i].Status() {
				out += fmt.Sprintf(" %s[conn:%v last:%d app:%d dup:%d]", ps.ID, ps.Connected, ps.LastApplied, ps.Applied, ps.Duplicates)
			}
			out += "}"
		}
		return out
	}
	waitFor := func(what string, cond func() bool) error {
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("partition: timed out waiting for %s;%s", what, snapshot())
			}
			time.Sleep(500 * time.Microsecond)
		}
		return nil
	}

	fullSet := make([]wire.Signature, cfg.Sigs)
	for s := range fullSet {
		fullSet[s] = wire.FromCore(propagationSig(s))
	}

	// Reference: the same fleet against one hub — the arming decisions
	// the split federation must reconverge to.
	refArmed, err := singleHubReference(ChaosConfig{
		Devices: cfg.Devices, Sigs: cfg.Sigs,
		ConfirmThreshold: cfg.ConfirmThreshold, Timeout: cfg.Timeout,
	}, fullSet, deadline)
	if err != nil {
		return res, err
	}

	// The federation: every directed hub-pair path runs through the
	// fault network, so the scenario can cut, blink, and heal exactly
	// the links it means to.
	hubID := func(i int) string { return fmt.Sprintf("hub%d", i) }
	net := fault.NewNetwork()
	minority := cfg.Hubs - 1
	switches := make([]*SwitchTransport, cfg.Hubs)
	for i := range switches {
		switches[i] = NewSwitchTransport(nil)
	}
	hubs = make([]*immunity.Exchange, cfg.Hubs)
	nodes = make([]*cluster.Node, cfg.Hubs)
	defer func() {
		for i := range nodes {
			if nodes[i] != nil {
				nodes[i].Close()
			}
			if hubs[i] != nil {
				hubs[i].Close()
			}
		}
	}()
	for i := range hubs {
		hub, err := immunity.NewExchange(cfg.ConfirmThreshold)
		if err != nil {
			return res, fmt.Errorf("partition: %s: %w", hubID(i), err)
		}
		var peers []cluster.Member
		for j := range switches {
			if j != i {
				peers = append(peers, cluster.Member{
					ID:        hubID(j),
					Transport: net.Wrap(hubID(i), hubID(j), switches[j]),
				})
			}
		}
		node, err := cluster.New(cluster.Config{
			Self: hubID(i), Hub: hub, Peers: peers,
			FailoverAfter: cfg.FailoverAfter, NoLease: cfg.NoLease,
			Metrics: cfg.Metrics,
		})
		if err != nil {
			hub.Close()
			return res, fmt.Errorf("partition: %s: %w", hubID(i), err)
		}
		hubs[i], nodes[i] = hub, node
		switches[i].Swap(hub)
	}

	// Settle: every link handshaken, every node holding its lease —
	// the steady state the fault hits.
	if err := waitFor("federation links to come up", func() bool {
		for _, n := range nodes {
			for _, ps := range n.Status() {
				if !ps.Connected {
					return false
				}
			}
		}
		return true
	}); err != nil {
		return res, err
	}
	if leases {
		if err := waitFor("initial lease acquisition", func() bool {
			for _, n := range nodes {
				if held, _, _ := n.LeaseStats(); !held {
					return false
				}
			}
			return true
		}); err != nil {
			return res, err
		}
	}

	// The minority's slice of the signature space: the keys whose
	// arming must cross the split by deputy promotion.
	ring := nodes[0].Ring()
	hubIndex := make(map[string]int, cfg.Hubs)
	for i := 0; i < cfg.Hubs; i++ {
		hubIndex[hubID(i)] = i
	}
	var minorityKeys []string
	for _, ws := range fullSet {
		if sig, err := ws.ToCore(); err == nil && ring.Owner(sig.Key()) == hubID(minority) {
			minorityKeys = append(minorityKeys, sig.Key())
		}
	}
	res.MinorityKeys = len(minorityKeys)
	if len(minorityKeys) == 0 && cfg.Scenario != ScenarioFlap {
		return res, fmt.Errorf("partition: the minority hub owns none of the %d signatures; raise Sigs", cfg.Sigs)
	}

	// Devices attach round-robin across ALL hubs — unlike the chaos
	// storm's victim, the minority hub keeps serving devices through the
	// split, which is exactly what forces arming decisions onto it.
	devices := make([]*stormSession, cfg.Devices)
	for i := range devices {
		dev, err := dialStorm(immunity.NewLoopback(hubs[i%cfg.Hubs]), fmt.Sprintf("part%d", i), "", cfg.Timeout)
		if err != nil {
			return res, fmt.Errorf("partition: %w", err)
		}
		defer dev.close()
		devices[i] = dev
	}
	report := func(devs []*stormSession) error {
		for _, dev := range devs {
			for s := range fullSet {
				m := wire.Message{V: dev.ver, Type: wire.TypeReport,
					Report: &wire.Report{Sigs: fullSet[s : s+1]}}
				if err := dev.sess.Send(m); err != nil {
					return fmt.Errorf("partition: %s report: %w", dev.id, err)
				}
			}
		}
		return nil
	}

	started := time.Now()

	// Phase 1 — mid-confirmation: threshold-1 devices report and every
	// confirmation settles on its owner (and the minority slice's
	// deputy shadows) BEFORE the cut, so phase 2's single confirmation
	// is exactly what crosses the threshold on each side of the split.
	confirms := func(h *immunity.Exchange, key string) int {
		for _, p := range h.Provenance() {
			if p.Key == key {
				return len(p.ConfirmedBy)
			}
		}
		return -1
	}
	early := devices[:cfg.ConfirmThreshold-1]
	if err := report(early); err != nil {
		return res, err
	}
	if len(early) > 0 {
		if err := waitFor("phase-1 confirmations to settle on every owner", func() bool {
			for _, ws := range fullSet {
				sig, err := ws.ToCore()
				if err != nil {
					return false
				}
				owner := hubIndex[ring.Owner(sig.Key())]
				if confirms(hubs[owner], sig.Key()) < len(early) {
					return false
				}
			}
			return true
		}); err != nil {
			return res, err
		}
		if err := waitFor("deputy shadows of the minority slice", func() bool {
			for _, key := range minorityKeys {
				deputy, ok := hubIndex[ring.Deputy(key)]
				if !ok || deputy == minority {
					continue
				}
				if confirms(hubs[deputy], key) < 0 {
					return false
				}
			}
			return true
		}); err != nil {
			return res, err
		}
	}

	if cfg.Scenario == ScenarioFlap {
		return runFlapStorm(cfg, res, net, hubs, nodes, devices, report, waitFor, refArmed, hubID, leases, started)
	}

	// The cut.
	switch cfg.Scenario {
	case ScenarioSymmetric:
		var majorityIDs []string
		for i := 0; i < minority; i++ {
			majorityIDs = append(majorityIDs, hubID(i))
		}
		net.Partition(majorityIDs, []string{hubID(minority)})
	case ScenarioAsymmetric:
		for i := 0; i < minority; i++ {
			net.Block(hubID(minority), hubID(i))
		}
	}

	// The majority's probes condemn the silent member and promote its
	// keys; with leases on, the minority's own lease round dies first
	// (its renewals cannot reach a majority) and it loses the right to
	// arm before anyone could promote against it.
	if err := waitFor("the majority to mark the minority down", func() bool {
		for i := 0; i < minority; i++ {
			if len(nodes[i].Members()) != cfg.Hubs-1 {
				return false
			}
		}
		return true
	}); err != nil {
		return res, err
	}
	if leases {
		if err := waitFor("the minority to lose its lease", func() bool {
			held, _, lost := nodes[minority].LeaseStats()
			return !held && lost >= 1
		}); err != nil {
			return res, err
		}
	}

	// Phase 2 — the remaining devices report into the split: majority-
	// side confirmations finish arming the full set over there (the
	// minority's old slice arms on its promoted deputies), while the
	// minority-side device pushes its hub's owned keys over the
	// threshold with no lease to arm under.
	if err := report(devices[len(early):]); err != nil {
		return res, err
	}
	if err := waitFor("the majority side to arm the full set", func() bool {
		for i := 0; i < minority; i++ {
			if hubs[i].ArmedCount() < cfg.Sigs {
				return false
			}
		}
		return true
	}); err != nil {
		return res, err
	}

	if leases {
		// The lease contract, mid-split: threshold crossings on the
		// minority PARK — zero arms over there while the majority is
		// promoting, which is precisely the double-arm window.
		if err := waitFor("the minority to park its crossings", func() bool {
			return hubs[minority].Stats().Parked > 0
		}); err != nil {
			return res, err
		}
		res.ParkedPeak = hubs[minority].Stats().Parked
		if got := hubs[minority].ArmedCount(); got != 0 {
			return res, fmt.Errorf("partition: minority armed %d signatures during the split with its lease lost (double-arm window open)", got)
		}
	} else {
		// NoLease baseline: the minority arms its own slice independently
		// — the divergence the post-heal merge must reconcile.
		if err := waitFor("the minority to arm its slice independently", func() bool {
			return hubs[minority].ArmedCount() >= len(minorityKeys)
		}); err != nil {
			return res, err
		}
		if got := hubs[minority].Stats().Parked; got != 0 {
			return res, fmt.Errorf("partition: NoLease run parked %d decisions", got)
		}
	}
	res.MinoritySplitArms = hubs[minority].ArmedCount()

	// Heal: redials land, handshakes replay the missed armings from
	// their cursors, membership re-merges, the minority's lease comes
	// back, and every parked decision settles (armed by the replayed
	// broadcast, or re-armed by the lease-regain sweep).
	healStart := time.Now()
	net.Heal()
	if err := waitFor("post-heal convergence", func() bool {
		for i := range nodes {
			if len(nodes[i].Members()) != cfg.Hubs {
				return false
			}
		}
		for _, hub := range hubs {
			if hub.ArmedCount() < cfg.Sigs {
				return false
			}
		}
		if hubs[minority].Stats().Parked != 0 {
			return false
		}
		if leases {
			if held, _, _ := nodes[minority].LeaseStats(); !held {
				return false
			}
		}
		return true
	}); err != nil {
		return res, err
	}
	res.ParkClear = time.Since(healStart)
	res.Elapsed = time.Since(started)
	_, _, res.LeaseLost = nodes[minority].LeaseStats()
	if leases && res.LeaseLost == 0 {
		return res, fmt.Errorf("partition: minority reports zero lease losses after the split")
	}

	return finishPartition(cfg, res, hubs, refArmed, hubID)
}

// runFlapStorm is the flap scenario's middle and end: one direction of
// the hub0→hub1 link blinks faster than the suspicion window while the
// storm completes. Indirect probes through the remaining hubs must keep
// every member alive — no down-marks, no lease losses — and the armed
// set must converge as if the link were clean.
func runFlapStorm(cfg PartitionConfig, res PartitionResult, net *fault.Network,
	hubs []*immunity.Exchange, nodes []*cluster.Node, devices []*stormSession,
	report func([]*stormSession) error, waitFor func(string, func() bool) error,
	refArmed []string, hubID func(int) string, leases bool, started time.Time) (PartitionResult, error) {

	// Blink windows sit well under the suspicion window (FailoverAfter/2
	// by derivation), so a down-mark can only come from the detector
	// overreacting — which is what this scenario pins down.
	window := cfg.FailoverAfter / 5
	if window < time.Millisecond {
		window = time.Millisecond
	}
	const cycles = 16
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for c := 0; c < cycles; c++ {
			net.Block(hubID(0), hubID(1))
			time.Sleep(window)
			net.Unblock(hubID(0), hubID(1))
			time.Sleep(window)
		}
	}()

	// Phase 2 lands mid-flap: reports, forwards, and arm broadcasts
	// ride the blinking link's outbox through the blocks.
	if err := report(devices[cfg.ConfirmThreshold-1:]); err != nil {
		<-flapDone
		return res, err
	}
	<-flapDone

	// Nothing may have been condemned: every node still sees the full
	// membership, and (with leases on) nobody ever lost one.
	for i, n := range nodes {
		if got := len(n.Members()); got != cfg.Hubs {
			return res, fmt.Errorf("partition: flap marked a member down on %s (%d/%d members live)", hubID(i), got, cfg.Hubs)
		}
		if leases {
			if _, _, lost := n.LeaseStats(); lost != 0 {
				return res, fmt.Errorf("partition: flap cost %s its lease %d times", hubID(i), lost)
			}
		}
	}

	// The flap subsides: Heal replaces every session the blinking link
	// touched — the reverse-direction session sat half-deaf through the
	// blocks, silently missing broadcasts, and only its re-handshake
	// (replaying from the cursor) gets them back.
	net.Heal()

	if err := waitFor("post-flap convergence", func() bool {
		for _, hub := range hubs {
			if hub.ArmedCount() < cfg.Sigs {
				return false
			}
		}
		return true
	}); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(started)
	return finishPartition(cfg, res, hubs, refArmed, hubID)
}

// finishPartition asserts federation equivalence against the
// single-hub reference and the no-double-arm invariant, then fills the
// summary counters.
func finishPartition(cfg PartitionConfig, res PartitionResult,
	hubs []*immunity.Exchange, refArmed []string, hubID func(int) string) (PartitionResult, error) {
	res.Armed = cfg.Sigs
	for i, hub := range hubs {
		if n := hub.ArmedCount(); n < res.Armed {
			res.Armed = n
		}
		armed := armedKeys(hub)
		if !equalKeys(armed, refArmed) {
			return res, fmt.Errorf("partition: %s armed set diverged from the single-hub reference (%d vs %d keys)",
				hubID(i), len(armed), len(refArmed))
		}
		st := hub.Stats()
		if st.Epoch != uint64(len(armed)) {
			return res, fmt.Errorf("partition: %s delta epoch %d != armed count %d (double-arm)",
				hubID(i), st.Epoch, len(armed))
		}
		res.Fenced += st.Fenced
	}
	return res, nil
}

// FormatPartition renders a partition result for the CLI.
func FormatPartition(res PartitionResult) string {
	cfg := res.Config
	mode := "quorum leases"
	if cfg.NoLease {
		mode = "no leases (fencing-only baseline)"
	}
	out := fmt.Sprintf("partition storm: %s split, %d devices × %d signatures over %d hubs, threshold %d, %s\n",
		cfg.Scenario, cfg.Devices, cfg.Sigs, cfg.Hubs, cfg.ConfirmThreshold, mode)
	if cfg.Scenario == ScenarioFlap {
		out += "  flapping link        no down-marks, no lease losses\n"
	} else {
		out += fmt.Sprintf("  minority slice       %d/%d signatures owned by the isolated hub\n", res.MinorityKeys, cfg.Sigs)
		out += fmt.Sprintf("  during the split     minority armed %d, parked %d, lease lost %d times\n",
			res.MinoritySplitArms, res.ParkedPeak, res.LeaseLost)
		out += fmt.Sprintf("  park drain           %s from heal to zero parked\n", res.ParkClear.Round(time.Millisecond))
	}
	out += fmt.Sprintf("  armed cluster-wide   %d/%d in %s (federation-equivalent, zero double-arms)\n",
		res.Armed, cfg.Sigs, res.Elapsed.Round(time.Millisecond))
	out += fmt.Sprintf("  fenced replays       %d\n", res.Fenced)
	return out
}
