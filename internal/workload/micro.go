// Package workload implements the paper's §5 performance microbenchmark
// (experiment E3): 2–512 threads executing synchronized blocks on random
// lock objects (random to avoid contention, which would hide the
// overhead), busy-waiting instead of sleeping inside and outside the
// critical sections (sleeps also hide overhead), against a history of
// 64–256 synthetic signatures that put the benchmark's synchronization
// statements on the avoidance path without ever instantiating.
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// MicroConfig parameterizes one microbenchmark run.
type MicroConfig struct {
	// Threads is the worker count (the paper sweeps 2–512).
	Threads int
	// Locks is the lock-pool size; workers pick randomly to avoid
	// contention.
	Locks int
	// Sites is the number of distinct synchronization statements the
	// workers cycle through.
	Sites int
	// InsideWork / OutsideWork are busy-wait iteration counts simulating
	// computation inside and outside the critical section.
	InsideWork  int
	OutsideWork int
	// Duration is how long the measurement runs.
	Duration time.Duration
	// Signatures is the synthetic history size (the paper uses 64–256);
	// 0 leaves the history empty.
	Signatures int
	// Dimmunix enables immunity; false is the vanilla baseline.
	Dimmunix bool
	// StaticSites uses pre-resolved site ids instead of per-acquisition
	// stack capture (ablation A5 — §4's compiler-assigned ids).
	StaticSites bool
	// OuterDepth is the outer call-stack depth (ablation A1); 0 means 1.
	OuterDepth int
	// QueueReuse toggles the entry free-list (ablation A2); ignored for
	// vanilla runs.
	QueueReuse bool
	// Serial forces the core's serial reference engine (global engine
	// lock, no sharded fast path) — the before/after baseline for the
	// sharded-engine numbers. Ignored for vanilla runs.
	Serial bool
	// Seed makes lock selection reproducible.
	Seed int64
}

// DefaultMicroConfig mirrors the paper's setup at a given thread count.
func DefaultMicroConfig(threads int) MicroConfig {
	return MicroConfig{
		Threads:     threads,
		Locks:       4 * threads,
		Sites:       16,
		InsideWork:  200,
		OutsideWork: 600,
		Duration:    time.Second,
		Signatures:  128,
		Dimmunix:    true,
		QueueReuse:  true,
		Seed:        42,
	}
}

// validate rejects inconsistent configs.
func (cfg MicroConfig) validate() error {
	if cfg.Threads < 1 {
		return fmt.Errorf("microbench: need >= 1 thread, got %d", cfg.Threads)
	}
	if cfg.Locks < 1 {
		return fmt.Errorf("microbench: need >= 1 lock, got %d", cfg.Locks)
	}
	if cfg.Sites < 1 {
		return fmt.Errorf("microbench: need >= 1 site, got %d", cfg.Sites)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("microbench: non-positive duration %v", cfg.Duration)
	}
	return nil
}

// Result is one microbenchmark measurement.
type Result struct {
	Config MicroConfig
	// Ops is the total number of completed synchronizations.
	Ops uint64
	// Wall is the measured duration.
	Wall time.Duration
	// SyncsPerSec is the aggregate throughput (the paper's metric).
	SyncsPerSec float64
	// NsPerOp is the mean latency of one synchronized operation.
	NsPerOp float64
	// CoreStats snapshots the Dimmunix core counters (zero for vanilla).
	CoreStats core.Stats
	// ProcStats snapshots the VM counters.
	ProcStats vm.ProcessStats
}

// benchFrames returns the benchmark's synchronization statements.
func benchFrames(sites int) []core.Frame {
	frames := make([]core.Frame, sites)
	for i := range frames {
		frames[i] = core.Frame{
			Class:  "com.dimmunix.bench.Worker",
			Method: "criticalSection",
			Line:   100 + i*10,
		}
	}
	return frames
}

// SyntheticSignatures builds n deadlock signatures for the history: each
// pairs one hot outer position (one of the benchmark's own sites, so
// matching runs on every acquisition there) with one cold position that
// never executes (so the signature can never be instantiated and the
// benchmark's behaviour is unchanged). This reproduces the paper's
// "history of 64–256 synthetic signatures ... to simulate the scenario in
// which many synchronization statements are involved in deadlock bugs".
func SyntheticSignatures(n int, hot []core.Frame) []*core.Signature {
	sigs := make([]*core.Signature, 0, n)
	for i := 0; i < n; i++ {
		hotFrame := hot[i%len(hot)]
		coldFrame := core.Frame{
			Class:  "com.dimmunix.bench.Cold",
			Method: "neverExecuted",
			Line:   1000 + i,
		}
		sigs = append(sigs, &core.Signature{
			Kind: core.DeadlockSig,
			Pairs: []core.SigPair{
				{Outer: core.CallStack{hotFrame}, Inner: core.CallStack{hotFrame}},
				{Outer: core.CallStack{coldFrame}, Inner: core.CallStack{coldFrame}},
			},
		})
	}
	return sigs
}

// Run executes one microbenchmark configuration.
func Run(cfg MicroConfig) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var dim *core.Core
	if cfg.Dimmunix {
		opts := []core.Option{core.WithQueueReuse(cfg.QueueReuse), core.WithSerialEngine(cfg.Serial)}
		if cfg.OuterDepth > 0 {
			opts = append(opts, core.WithOuterDepth(cfg.OuterDepth))
		}
		var err error
		dim, err = core.New(opts...)
		if err != nil {
			return Result{}, fmt.Errorf("microbench: %w", err)
		}
		for _, sig := range SyntheticSignatures(cfg.Signatures, benchFrames(cfg.Sites)) {
			if _, _, err := dim.AddSignature(sig); err != nil {
				return Result{}, fmt.Errorf("microbench: synthetic signature: %w", err)
			}
		}
	}
	proc := vm.NewProcess("microbench", dim)
	defer proc.Kill()

	locks := make([]*vm.Object, cfg.Locks)
	for i := range locks {
		locks[i] = proc.NewObject(fmt.Sprintf("bench-lock-%d", i))
	}
	frames := benchFrames(cfg.Sites)
	sites := make([]*vm.Site, len(frames))
	for i, f := range frames {
		sites[i] = &vm.Site{Frame: f, Kind: vm.SyncBlock}
	}

	var ops atomic.Uint64
	stop := make(chan struct{})
	for i := 0; i < cfg.Threads; i++ {
		idx := i
		if _, err := proc.Start(fmt.Sprintf("bench-%d", i), func(t *vm.Thread) {
			runWorker(t, cfg, idx, locks, frames, sites, &ops, stop)
		}); err != nil {
			close(stop)
			return Result{}, fmt.Errorf("microbench: %w", err)
		}
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	proc.Join(30 * time.Second)
	wall := time.Since(start)

	res := Result{
		Config:      cfg,
		Ops:         ops.Load(),
		Wall:        wall,
		SyncsPerSec: float64(ops.Load()) / wall.Seconds(),
		ProcStats:   proc.Stats(),
	}
	if res.Ops > 0 {
		res.NsPerOp = float64(wall.Nanoseconds()) / float64(res.Ops)
	}
	if dim != nil {
		res.CoreStats = dim.Stats()
	}
	return res, nil
}

// runWorker is the benchmark loop: random lock, synchronized block with
// busy work inside, busy work outside.
func runWorker(t *vm.Thread, cfg MicroConfig, idx int, locks []*vm.Object, frames []core.Frame, sites []*vm.Site, ops *atomic.Uint64, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)))
	n := len(locks)
	for k := 0; ; k++ {
		select {
		case <-stop:
			return
		default:
		}
		if t.Process().Killed() {
			return
		}
		lock := locks[rng.Intn(n)]
		siteIdx := (idx + k) % len(frames)
		if cfg.StaticSites {
			// §4's compiler-assigned ids: no frame push, no capture.
			lock.SynchronizedAt(t, sites[siteIdx], func() {
				spin(cfg.InsideWork)
			})
		} else {
			f := frames[siteIdx]
			t.Call(f.Class, f.Method, f.Line, func() {
				lock.Synchronized(t, func() {
					spin(cfg.InsideWork)
				})
			})
		}
		spin(cfg.OutsideWork)
		ops.Add(1)
	}
}

// spinSink defeats dead-code elimination.
var spinSink atomic.Uint64

// spin busy-waits for the given iteration count.
func spin(iters int) {
	var acc uint64
	for i := 0; i < iters; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	spinSink.Add(acc)
}

// CalibrateWork sizes the busy-work iteration count so that a vanilla run
// with the given thread count achieves approximately the target aggregate
// throughput — the paper's microbenchmark executes 1738–1756 syncs/sec on
// the Nexus One, "similar to the synchronization throughput of the most
// lock-intensive applications". The returned count is the total per-op
// work; callers typically split it 1:3 between inside and outside.
func CalibrateWork(targetSyncsPerSec float64, threads int) int {
	if targetSyncsPerSec <= 0 {
		return 0
	}
	perIter := measureSpinCost()
	// CPU-bound workers: aggregate throughput ≈ P/(perOpSeconds) with P
	// schedulable processors; sizing for P=1 reproduces the single-core
	// Nexus One.
	perOp := 1.0 / targetSyncsPerSec
	iters := int(perOp / perIter)
	if iters < 1 {
		iters = 1
	}
	return iters
}

// measureSpinCost times one busy-wait iteration.
func measureSpinCost() float64 {
	const probe = 2_000_000
	start := time.Now()
	spin(probe)
	return time.Since(start).Seconds() / probe
}

// PaperTargetSyncsPerSec is the §5 vanilla operating point.
const PaperTargetSyncsPerSec = 1747 // midpoint of 1738–1756
