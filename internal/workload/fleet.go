// Fleet stress workload: many processes × many threads of mixed
// application profiles, driving the sharded engine under heavy traffic.
// Where the Table 1 replays (internal/apps) pace every thread to the
// profiled per-app rate, the fleet runs unpaced — every thread issues
// synchronized operations as fast as it can over its app's lock pool and
// call sites — which is the platform-under-load scenario the ROADMAP's
// production-scale north star asks for. Each process is forked from a
// Zygote sharing one history store, and a fraction of each app's call
// sites is covered by synthetic signatures, so the traffic is a mix of
// fast-path (unnamed positions) and slow-path (armed positions, full
// avoidance) interceptions, like a real device with a populated history.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/apps"
	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// FleetConfig parameterizes one fleet stress run.
type FleetConfig struct {
	// Processes is how many application processes the Zygote forks. Each
	// process replays one Table 1 profile, assigned round-robin.
	Processes int
	// ThreadsPerProc overrides the worker count per process; 0 uses each
	// profile's own thread count.
	ThreadsPerProc int
	// Locks caps each process's lock pool (0 = profile's pool / 8, to
	// create some real contention under unpaced load).
	Locks int
	// Duration is the measurement window.
	Duration time.Duration
	// Dimmunix enables immunity; false is the vanilla baseline.
	Dimmunix bool
	// Serial forces the serial reference engine (global engine lock).
	Serial bool
	// ArmedSiteFraction is the fraction (0..1) of each app's call sites
	// covered by synthetic signatures, putting them on the full
	// avoidance path. The rest of the traffic takes the fast path.
	ArmedSiteFraction float64
	// InsideWork / OutsideWork are busy-wait iteration counts per op.
	InsideWork  int
	OutsideWork int
	// Seed makes lock/site selection reproducible.
	Seed int64
}

// DefaultFleetConfig is a moderate fleet: 8 processes, profile thread
// counts, a quarter of the sites armed.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Processes:         8,
		Duration:          time.Second,
		Dimmunix:          true,
		ArmedSiteFraction: 0.25,
		InsideWork:        20,
		OutsideWork:       60,
		Seed:              42,
	}
}

// validate rejects inconsistent configs.
func (cfg FleetConfig) validate() error {
	if cfg.Processes < 1 {
		return fmt.Errorf("fleet: need >= 1 process, got %d", cfg.Processes)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("fleet: non-positive duration %v", cfg.Duration)
	}
	if cfg.ArmedSiteFraction < 0 || cfg.ArmedSiteFraction > 1 {
		return fmt.Errorf("fleet: armed-site fraction %v outside [0,1]", cfg.ArmedSiteFraction)
	}
	if cfg.ThreadsPerProc < 0 || cfg.Locks < 0 {
		return fmt.Errorf("fleet: negative thread or lock count")
	}
	return nil
}

// FleetProcResult is one process's share of a fleet run.
type FleetProcResult struct {
	// Name is the process name (app package + index).
	Name string
	// Profile is the replayed application profile's name.
	Profile string
	// Threads is the worker count.
	Threads int
	// Ops is the number of synchronized operations completed during the
	// measurement window (after the scheduler warmup).
	Ops uint64
	// TotalOps additionally includes warmup operations.
	TotalOps uint64
	// CoreStats snapshots the process's Dimmunix counters (zero when
	// vanilla).
	CoreStats core.Stats
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	Config FleetConfig
	// Wall is the measured duration.
	Wall time.Duration
	// Ops is the fleet-wide number of completed synchronizations.
	Ops uint64
	// SyncsPerSec is the aggregate throughput across all processes.
	SyncsPerSec float64
	// FastPathPct is the percentage of Requests served by the sharded
	// fast path, aggregated over all processes (0 for vanilla/serial).
	FastPathPct float64
	// Yields / DeadlocksDetected aggregate the respective core counters.
	Yields            uint64
	DeadlocksDetected uint64
	// PerProcess holds the per-process breakdown.
	PerProcess []FleetProcResult
}

// armedSignatures builds synthetic signatures covering the first
// fraction×len(frames) call sites, pairing each hot site with a cold
// never-executed position (so the signatures arm the avoidance path
// without ever being instantiable — the §5 methodology, scaled to the
// fleet).
func armedSignatures(frames []core.Frame, fraction float64) []*core.Signature {
	n := int(float64(len(frames)) * fraction)
	sigs := make([]*core.Signature, 0, n)
	for i := 0; i < n; i++ {
		hot := frames[i]
		cold := core.Frame{
			Class:  "com.dimmunix.fleet.Cold",
			Method: "neverExecuted",
			Line:   1000 + i,
		}
		sigs = append(sigs, &core.Signature{
			Kind: core.DeadlockSig,
			Pairs: []core.SigPair{
				{Outer: core.CallStack{hot}, Inner: core.CallStack{hot}},
				{Outer: core.CallStack{cold}, Inner: core.CallStack{cold}},
			},
		})
	}
	return sigs
}

// RunFleet executes one fleet stress configuration.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	if err := cfg.validate(); err != nil {
		return FleetResult{}, err
	}
	store := core.NewMemHistory()
	z := vm.NewZygote(
		vm.WithDimmunix(cfg.Dimmunix),
		vm.WithHistory(store),
		vm.WithCoreOptions(core.WithSerialEngine(cfg.Serial)),
	)
	defer z.KillAll()

	profiles := apps.Table1()
	type fleetProc struct {
		proc    *vm.Process
		profile apps.Profile
		threads int
		ops     atomic.Uint64
	}
	procs := make([]*fleetProc, 0, cfg.Processes)
	stop := make(chan struct{})

	for i := 0; i < cfg.Processes; i++ {
		profile := profiles[i%len(profiles)]
		p, err := z.Fork(fmt.Sprintf("%s.%d", profile.Package, i))
		if err != nil {
			close(stop)
			return FleetResult{}, fmt.Errorf("fleet: %w", err)
		}
		frames := profile.SiteFrames()
		if dim := p.Dimmunix(); dim != nil {
			for _, sig := range armedSignatures(frames, cfg.ArmedSiteFraction) {
				if _, _, err := dim.AddSignature(sig); err != nil {
					close(stop)
					return FleetResult{}, fmt.Errorf("fleet: arm signatures: %w", err)
				}
			}
		}

		threads := profile.Threads
		if cfg.ThreadsPerProc > 0 {
			threads = cfg.ThreadsPerProc
		}
		nLocks := profile.Locks / 8
		if cfg.Locks > 0 {
			nLocks = cfg.Locks
		}
		if nLocks < 1 {
			nLocks = 1
		}
		locks := make([]*vm.Object, nLocks)
		for li := range locks {
			locks[li] = p.NewObject(fmt.Sprintf("%s.lock%d", profile.Name, li))
		}

		fp := &fleetProc{proc: p, profile: profile, threads: threads}
		procs = append(procs, fp)
		for w := 0; w < threads; w++ {
			idx := w
			if _, err := p.Start(fmt.Sprintf("%s-w%d", profile.Name, w), func(t *vm.Thread) {
				fleetWorker(t, cfg, int64(i*1000+idx), idx, locks, frames, &fp.ops, stop)
			}); err != nil {
				close(stop)
				return FleetResult{}, fmt.Errorf("fleet: %w", err)
			}
		}
	}

	// Scheduling warmup: with hundreds of unpaced goroutines on few cores,
	// a process can go unscheduled for the whole window of a short run.
	// Wait (bounded) until every process has completed at least one op,
	// then measure from a post-warmup baseline so the reported throughput
	// covers only the intended window, not scheduler startup order.
	warmupDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(warmupDeadline) {
		warmed := true
		for _, fp := range procs {
			if fp.ops.Load() == 0 {
				warmed = false
				break
			}
		}
		if warmed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	base := make([]uint64, len(procs))
	for i, fp := range procs {
		base[i] = fp.ops.Load()
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	for _, fp := range procs {
		fp.proc.Join(30 * time.Second)
	}
	wall := time.Since(start)

	res := FleetResult{Config: cfg, Wall: wall}
	var fastReq, totalReq uint64
	for i, fp := range procs {
		total := fp.ops.Load()
		pr := FleetProcResult{
			Name:     fp.proc.Name(),
			Profile:  fp.profile.Name,
			Threads:  fp.threads,
			Ops:      total - base[i],
			TotalOps: total,
		}
		if dim := fp.proc.Dimmunix(); dim != nil {
			pr.CoreStats = dim.Stats()
			fastReq += pr.CoreStats.FastRequests
			totalReq += pr.CoreStats.Requests
			res.Yields += pr.CoreStats.Yields
			res.DeadlocksDetected += pr.CoreStats.DeadlocksDetected
		}
		res.Ops += pr.Ops
		res.PerProcess = append(res.PerProcess, pr)
	}
	res.SyncsPerSec = float64(res.Ops) / wall.Seconds()
	if totalReq > 0 {
		res.FastPathPct = 100 * float64(fastReq) / float64(totalReq)
	}
	return res, nil
}

// fleetWorker hammers the process's lock pool from its app's call sites,
// unpaced, until stopped.
func fleetWorker(t *vm.Thread, cfg FleetConfig, seed int64, idx int, locks []*vm.Object, frames []core.Frame, ops *atomic.Uint64, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(cfg.Seed + seed))
	n := len(locks)
	for k := 0; ; k++ {
		select {
		case <-stop:
			return
		default:
		}
		if t.Process().Killed() {
			return
		}
		lock := locks[rng.Intn(n)]
		f := frames[(idx+k)%len(frames)]
		t.Call(f.Class, f.Method, f.Line, func() {
			lock.Synchronized(t, func() {
				spin(cfg.InsideWork)
			})
		})
		spin(cfg.OutsideWork)
		ops.Add(1)
	}
}

// UncontendedEnterRate measures the aggregate core-level throughput of
// goroutines cycling Request/Acquired/Release on private (uncontended,
// unnamed) locks for the given duration. It is the CLI twin of
// BenchmarkUncontendedEnter: the interception cost the sharded engine's
// fast path attacks, with VM stack capture and monitor costs excluded.
func UncontendedEnterRate(goroutines int, duration time.Duration, serial bool) (float64, error) {
	if goroutines < 1 {
		return 0, fmt.Errorf("uncontended: need >= 1 goroutine, got %d", goroutines)
	}
	c, err := core.New(core.WithSerialEngine(serial))
	if err != nil {
		return 0, err
	}
	defer c.Close()

	var ops atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := c.NewThreadNode(fmt.Sprintf("w%d", i), nil)
			l := c.NewLockNode(fmt.Sprintf("l%d", i))
			pos, err := c.Intern(core.CallStack{{Class: "com.bench.Private", Method: "m", Line: i}})
			if err != nil {
				return
			}
			var n uint64
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				if err := c.Request(t, l, pos); err != nil {
					ops.Add(n)
					return
				}
				c.Acquired(t, l)
				c.Release(t, l)
				n++
			}
		}(i)
	}
	start := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	wall := time.Since(start)
	return float64(ops.Load()) / wall.Seconds(), nil
}

// FormatFleet renders a fleet result for the CLI.
func FormatFleet(res FleetResult) string {
	out := fmt.Sprintf("fleet: %d procs, %s, dimmunix=%v serial=%v armed=%.0f%%\n",
		res.Config.Processes, res.Wall.Round(time.Millisecond), res.Config.Dimmunix,
		res.Config.Serial, res.Config.ArmedSiteFraction*100)
	out += fmt.Sprintf("  total: %d ops, %.0f syncs/sec, fast-path %.1f%%, yields %d, deadlocks %d\n",
		res.Ops, res.SyncsPerSec, res.FastPathPct, res.Yields, res.DeadlocksDetected)
	for _, pr := range res.PerProcess {
		out += fmt.Sprintf("  %-28s %-12s %3d thr %10d ops (%d incl. warmup)\n",
			pr.Name, pr.Profile, pr.Threads, pr.Ops, pr.TotalOps)
	}
	return out
}
