// Report storm workload: drives a burst of device reports at the
// exchange far faster than the confirm pipeline wants to absorb them,
// to exercise the hub's admission control. With a bounded permit pool
// the storm degrades to bounded delay — publishers feel slow-ack
// backpressure, the delayed counter climbs, hub memory stays bounded —
// and every signature that reaches the threshold still arms fleet-wide.
// Without admission the same burst just races through (the counters
// stay zero); the CI storm step asserts the difference.
package workload

import (
	"crypto/tls"
	"fmt"
	"strings"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// StormConfig parameterizes one report storm.
type StormConfig struct {
	// Devices is how many simulated phones report concurrently (>= 2).
	Devices int
	// Sigs is how many distinct signatures each device reports; every
	// device reports the same set, so each signature collects Devices
	// confirmations and must arm.
	Sigs int
	// ConfirmThreshold gates arming on the in-process hubs (must not
	// exceed Devices; ignored in client mode, where the daemons own it —
	// there it must still not exceed Devices for arming to complete).
	ConfirmThreshold int
	// Hubs federates the in-process exchange (0 or 1 = single hub).
	// Ignored when Dial is set.
	Hubs int
	// AdmitCapacity and AdmitWait configure the in-process hubs'
	// admission pool (immunity.WithAdmission). Zero capacity disables
	// admission. Ignored when Dial is set — external daemons get their
	// pool from the -admit / -admit-wait flags.
	AdmitCapacity int
	AdmitWait     time.Duration
	// AdmitAuto replaces the fixed AdmitCapacity with an AIMD adaptive
	// admission pool per in-process hub: a Rates sampler and SLO
	// evaluator run beside each hub, and the pool's capacity follows
	// their verdicts (metrics.AdaptivePool). The run then reports the
	// controller's trace in the result. In-process only — in client
	// mode start the daemons with -admit auto instead. AdmitWait 0
	// defaults to 10s here (an adaptive pool that sheds instantly
	// would only ever back off).
	AdmitAuto bool
	// SLOTarget and SLOInterval shape the adaptive run's latency
	// objective: p99 of immunity_hub_report_seconds (admission wait
	// included) must stay at or under SLOTarget, evaluated every
	// SLOInterval (defaults 25ms / 250ms).
	SLOTarget   time.Duration
	SLOInterval time.Duration
	// Ramp, when non-nil, replaces the one-burst send pattern with two
	// phases: a paced warmup (each device trickles single-signature
	// reports, giving an adaptive pool ok-ticks to grow on) and then a
	// continuous full-batch flood (driving the latency SLO into breach
	// so the pool must back off). Afterwards each device sends one
	// final full batch, so every signature is reported regardless of
	// phase lengths.
	Ramp *StormRamp
	// Timeout bounds every wait.
	Timeout time.Duration
	// Dial, when non-empty, storms external daemons instead: a
	// comma-separated address list across which the devices attach
	// round-robin over TCP. Arming completion is observed through wire
	// status requests; the admission counters then live on the daemons'
	// /metrics endpoints, not in the returned result.
	Dial string
	// Token, in client mode, rides every storm device's hello as the
	// bearer credential for auth-enabled daemons.
	Token string
	// TLS, in client mode, dials every daemon connection under this
	// config. Nil dials plaintext.
	TLS *tls.Config
	// Metrics, when non-nil, is shared with the in-process hubs.
	// Incompatible with AdmitAuto over multiple hubs: each adaptive hub
	// needs its own registry (the capacity gauge and SLO state series
	// are per-controller).
	Metrics *metrics.Registry
}

// StormRamp shapes a two-phase (warmup, then flood) storm.
type StormRamp struct {
	// Warmup is how long each device paces single-signature reports at
	// WarmupRate per second (default 20/s), cycling through the set.
	Warmup     time.Duration
	WarmupRate int
	// Flood is how long each device then sends full-set report batches
	// back to back.
	Flood time.Duration
}

// DefaultStormConfig is the CI storm shape: 8 devices hammering 32
// shared signatures through a 2-permit pool with a generous wait, so
// the burst is delayed (bounded, backpressured) but never shed and
// arming still completes.
func DefaultStormConfig() StormConfig {
	return StormConfig{
		Devices:          8,
		Sigs:             32,
		ConfirmThreshold: 2,
		AdmitCapacity:    2,
		AdmitWait:        10 * time.Second,
		Timeout:          60 * time.Second,
	}
}

// StormResult is the outcome of one report storm.
type StormResult struct {
	Config StormConfig
	// Armed is the cluster-wide armed count after the storm (the minimum
	// across hubs; in client mode the minimum status epoch delta).
	Armed int
	// Elapsed is storm start to every hub armed.
	Elapsed time.Duration
	// Admitted, Delayed, and Shed are the summed admission verdicts
	// across the in-process hubs (zero in client mode — scrape the
	// daemons' /metrics for them).
	Admitted, Delayed, Shed uint64
	// Transport describes how the devices reached the hubs.
	Transport string

	// Adaptive-admission outcome (AdmitAuto in-process runs only).
	// InitialCapacity is every pool's starting capacity,
	// FinalCapacity the minimum capacity across hubs after the run,
	// AIMDIncreases/AIMDDecreases the summed controller moves, and SLO
	// the first hub's objective statuses at the end (after waiting for
	// the latency SLO to recover, so a flood's breach→ok transition is
	// captured in SLO[i].LastTransition).
	InitialCapacity int
	FinalCapacity   int
	AIMDIncreases   uint64
	AIMDDecreases   uint64
	SLO             []metrics.SLOStatus
}

func (cfg StormConfig) validate() error {
	if cfg.Devices < 2 {
		return fmt.Errorf("storm: need >= 2 devices, got %d", cfg.Devices)
	}
	if cfg.Sigs < 1 {
		return fmt.Errorf("storm: need >= 1 signature, got %d", cfg.Sigs)
	}
	if cfg.Timeout <= 0 {
		return fmt.Errorf("storm: non-positive timeout %v", cfg.Timeout)
	}
	if cfg.Dial == "" {
		if cfg.ConfirmThreshold < 1 || cfg.ConfirmThreshold > cfg.Devices {
			return fmt.Errorf("storm: confirm threshold %d outside [1,%d]", cfg.ConfirmThreshold, cfg.Devices)
		}
		if cfg.Hubs < 0 {
			return fmt.Errorf("storm: negative hub count %d", cfg.Hubs)
		}
		if cfg.AdmitAuto && cfg.AdmitCapacity > 0 {
			return fmt.Errorf("storm: AdmitAuto and a fixed AdmitCapacity are mutually exclusive")
		}
		if cfg.AdmitAuto && cfg.Metrics != nil && cfg.Hubs > 1 {
			return fmt.Errorf("storm: AdmitAuto over %d hubs needs per-hub registries, not a shared Metrics", cfg.Hubs)
		}
	} else if cfg.AdmitAuto {
		return fmt.Errorf("storm: AdmitAuto is in-process only (start external daemons with -admit auto)")
	}
	if r := cfg.Ramp; r != nil {
		if r.Warmup < 0 || r.Flood < 0 {
			return fmt.Errorf("storm: negative ramp phase (warmup %v, flood %v)", r.Warmup, r.Flood)
		}
		if r.Warmup == 0 && r.Flood == 0 {
			return fmt.Errorf("storm: ramp with no warmup and no flood")
		}
	}
	return nil
}

// RunReportStorm executes the storm: every device publishes the same
// Sigs signatures through its own exchange session as fast as the hub
// admits them, then the run waits for the whole set to arm cluster-wide.
// The admission pool never sheds under the default config — AdmitWait
// is far above the confirm pipeline's per-report cost — so "delayed
// grows, arming completes" is the bounded-degradation proof.
func RunReportStorm(cfg StormConfig) (StormResult, error) {
	if err := cfg.validate(); err != nil {
		return StormResult{}, err
	}
	res := StormResult{Config: cfg}

	var (
		deviceTransports []immunity.Transport
		hubs             []*immunity.Exchange
		monitors         []*stormMonitor
		armedTarget      func() (bool, int, error)
	)
	switch {
	case cfg.Dial != "":
		var addrs []string
		for _, a := range strings.Split(cfg.Dial, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return res, fmt.Errorf("storm: no address in dial list %q", cfg.Dial)
		}
		res.Transport = "client:" + strings.Join(addrs, ",")
		var dialOpts []immunity.TCPOption
		if cfg.TLS != nil {
			res.Transport = "client+tls:" + strings.Join(addrs, ",")
			dialOpts = append(dialOpts, immunity.WithDialTLS(cfg.TLS))
		}
		for _, addr := range addrs {
			deviceTransports = append(deviceTransports, immunity.NewTCPTransport(addr, dialOpts...))
		}
		// External daemons carry state across runs: arming completion is
		// "every hub's armed count grew by Sigs over its own baseline".
		baselines := make([]uint64, len(addrs))
		for i, addr := range addrs {
			st, err := immunity.FetchStatus(addr, cfg.Timeout, dialOpts...)
			if err != nil {
				return res, fmt.Errorf("storm: baseline status from %s: %w", addr, err)
			}
			baselines[i] = st.Epoch
		}
		armedTarget = func() (bool, int, error) {
			minGrown := cfg.Sigs
			for i, addr := range addrs {
				st, err := immunity.FetchStatus(addr, cfg.Timeout, dialOpts...)
				if err != nil {
					return false, 0, err
				}
				grown := 0 // a daemon restart mid-storm reads as no progress
				if st.Epoch >= baselines[i] {
					grown = int(st.Epoch - baselines[i])
				}
				if grown < minGrown {
					minGrown = grown
				}
			}
			return minGrown >= cfg.Sigs, minGrown, nil
		}
	default:
		hubCount := cfg.Hubs
		if hubCount < 1 {
			hubCount = 1
		}
		res.Transport = "loopback"
		if hubCount > 1 {
			res.Transport = fmt.Sprintf("cluster(%d)+loopback", hubCount)
		}
		hubs = make([]*immunity.Exchange, hubCount)
		for i := range hubs {
			var hubOpts []immunity.ExchangeOption
			if cfg.AdmitAuto {
				// Each adaptive hub gets its own controller: registry,
				// sampler, evaluator, and AIMD pool (the capacity gauge and
				// SLO state are per-controller series). The monitor picks
				// cfg.Metrics when shareable (single hub), so hubOpts must
				// not add WithMetricsRegistry on top.
				mon := newStormMonitor(cfg)
				monitors = append(monitors, mon)
				hubOpts = append(hubOpts,
					immunity.WithMetricsRegistry(mon.reg),
					immunity.WithAdmissionPool(mon.pool.Pool))
				defer mon.rates.Stop()
			} else {
				if cfg.Metrics != nil {
					hubOpts = append(hubOpts, immunity.WithMetricsRegistry(cfg.Metrics))
				}
				if cfg.AdmitCapacity > 0 {
					hubOpts = append(hubOpts, immunity.WithAdmission(cfg.AdmitCapacity, cfg.AdmitWait))
				}
			}
			hub, err := immunity.NewExchange(cfg.ConfirmThreshold, hubOpts...)
			if err != nil {
				return res, fmt.Errorf("storm: %w", err)
			}
			defer hub.Close()
			hubs[i] = hub
		}
		for _, mon := range monitors {
			mon.rates.Start()
		}
		if hubCount > 1 {
			for i := range hubs {
				var peers []cluster.Member
				for j := range hubs {
					if j != i {
						peers = append(peers, cluster.Member{ID: fmt.Sprintf("hub%d", j), Transport: immunity.NewLoopback(hubs[j])})
					}
				}
				node, err := cluster.New(cluster.Config{Self: fmt.Sprintf("hub%d", i), Hub: hubs[i], Peers: peers, Metrics: cfg.Metrics})
				if err != nil {
					return res, fmt.Errorf("storm: %w", err)
				}
				defer node.Close()
			}
		}
		for i := range hubs {
			deviceTransports = append(deviceTransports, immunity.NewLoopback(hubs[i]))
		}
		armedTarget = func() (bool, int, error) {
			minArmed := hubs[0].ArmedCount()
			for _, hub := range hubs[1:] {
				if n := hub.ArmedCount(); n < minArmed {
					minArmed = n
				}
			}
			return minArmed >= cfg.Sigs, minArmed, nil
		}
	}

	// One raw wire session per device. The full ExchangeClient coalesces
	// its whole backlog into one report message per drain — exactly the
	// behaviour that makes a healthy device cheap — so a storm driven
	// through it collapses to one message per device before the hub ever
	// sees it. The storm's whole point is the opposite shape: a fleet of
	// devices each hammering the ingest path with a message per
	// signature, which is what an unbatched or misbehaving client does.
	devices := make([]*stormSession, cfg.Devices)
	for i := range devices {
		dev, err := dialStorm(deviceTransports[i%len(deviceTransports)], fmt.Sprintf("storm%d", i), cfg.Token, cfg.Timeout)
		if err != nil {
			return res, fmt.Errorf("storm: %w", err)
		}
		defer dev.close()
		devices[i] = dev
	}

	start := time.Now()
	errCh := make(chan error, cfg.Devices)
	fullSet := make([]wire.Signature, cfg.Sigs)
	for s := range fullSet {
		fullSet[s] = wire.FromCore(propagationSig(s))
	}
	for _, dev := range devices {
		dev := dev
		go func() { errCh <- dev.drive(cfg, fullSet) }()
	}
	for range devices {
		if err := <-errCh; err != nil {
			return res, err
		}
	}

	deadline := time.Now().Add(cfg.Timeout)
	poll := 200 * time.Microsecond
	if cfg.Dial != "" {
		poll = 10 * time.Millisecond
	}
	for {
		done, armed, err := armedTarget()
		res.Armed = armed
		if err != nil {
			return res, fmt.Errorf("storm: %w", err)
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("storm: timed out with %d/%d signatures armed cluster-wide", armed, cfg.Sigs)
		}
		time.Sleep(poll)
	}
	res.Elapsed = time.Since(start)
	for _, hub := range hubs {
		st := hub.Stats()
		res.Admitted += st.AdmissionAdmitted
		res.Delayed += st.AdmissionDelayed
		res.Shed += st.AdmissionShed
	}
	if len(monitors) > 0 {
		// Let the latency SLO recover before snapshotting: the flood's
		// observations drain out of the evaluation window and the state
		// machine walks breach→ok, which is the convergence the adaptive
		// storm exists to prove.
		for {
			recovered := true
			for _, mon := range monitors {
				if st, ok := mon.eval.State(stormLatencySLO); !ok || st != metrics.SLOOK {
					recovered = false
				}
			}
			if recovered {
				break
			}
			if time.Now().After(deadline) {
				return res, fmt.Errorf("storm: latency SLO did not recover to ok before the deadline")
			}
			time.Sleep(10 * time.Millisecond)
		}
		res.InitialCapacity = monitors[0].pool.Config().Initial
		res.FinalCapacity = monitors[0].pool.Capacity()
		for _, mon := range monitors {
			if c := mon.pool.Capacity(); c < res.FinalCapacity {
				res.FinalCapacity = c
			}
			res.AIMDIncreases += mon.pool.Increases()
			res.AIMDDecreases += mon.pool.Decreases()
		}
		res.SLO = monitors[0].eval.Snapshot()
	}
	return res, nil
}

// stormLatencySLO names the adaptive storm's latency objective.
const stormLatencySLO = "report-latency"

// stormMonitor is one in-process hub's adaptive-admission control
// plane: its registry, rate sampler, SLO evaluator, and AIMD pool.
type stormMonitor struct {
	reg   *metrics.Registry
	rates *metrics.Rates
	eval  *metrics.Evaluator
	pool  *metrics.AdaptivePool
}

// newStormMonitor builds the control plane for one adaptive hub. The
// windows are compressed (2s shortest) so a seconds-long storm test
// sees the full breach→recover cycle.
func newStormMonitor(cfg StormConfig) *stormMonitor {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	interval := cfg.SLOInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	target := cfg.SLOTarget
	if target <= 0 {
		target = 25 * time.Millisecond
	}
	maxWait := cfg.AdmitWait
	if maxWait <= 0 {
		maxWait = 10 * time.Second
	}
	rates := metrics.NewRates(reg, metrics.RatesConfig{
		Interval: interval,
		Windows:  []time.Duration{2 * time.Second, 10 * time.Second, time.Minute},
	})
	rates.TrackCounter("immunity_hub_reports_total")
	rates.TrackCounter("immunity_hub_armed_total")
	eval := metrics.NewEvaluator(reg, rates, []metrics.SLO{
		{Name: stormLatencySLO, QuantileOf: "immunity_hub_report_seconds", Target: target.Seconds()},
		{Name: "shed-zero", RateOf: "immunity_hub_admission_shed_total", Target: 0},
	})
	pool := metrics.NewAdaptivePool(reg, "immunity_hub_admission", maxWait,
		metrics.AIMDConfig{SLO: stormLatencySLO})
	pool.Bind(eval)
	return &stormMonitor{reg: reg, rates: rates, eval: eval, pool: pool}
}

// drive sends one device's share of the storm: either the classic
// one-message-per-signature burst, or the two-phase ramp (paced warmup,
// continuous full-batch flood, and a final coverage batch).
func (d *stormSession) drive(cfg StormConfig, fullSet []wire.Signature) error {
	send := func(sigs []wire.Signature) error {
		m := wire.Message{V: d.ver, Type: wire.TypeReport,
			Report: &wire.Report{Sigs: sigs}}
		if err := d.sess.Send(m); err != nil {
			return fmt.Errorf("storm: %s report: %w", d.id, err)
		}
		return nil
	}
	if cfg.Ramp == nil {
		for s := range fullSet {
			if err := send(fullSet[s : s+1]); err != nil {
				return err
			}
		}
		return nil
	}
	rate := cfg.Ramp.WarmupRate
	if rate <= 0 {
		rate = 20
	}
	pace := time.Second / time.Duration(rate)
	for s, end := 0, time.Now().Add(cfg.Ramp.Warmup); time.Now().Before(end); s++ {
		i := s % len(fullSet)
		if err := send(fullSet[i : i+1]); err != nil {
			return err
		}
		time.Sleep(pace)
	}
	for end := time.Now().Add(cfg.Ramp.Flood); time.Now().Before(end); {
		if err := send(fullSet); err != nil {
			return err
		}
	}
	// Coverage batch: every signature reported at least once no matter
	// how short the phases were.
	return send(fullSet)
}

// stormSession is one device's raw wire session: hello/ack done, ready
// to flood reports at the negotiated version.
type stormSession struct {
	id   string
	sess immunity.Session
	ver  int
}

func (d *stormSession) close() { d.sess.Close() }

// dialStorm opens one device session and completes the handshake. The
// hub's pushes (catch-up delta, confirms, storm deltas) are drained and
// discarded — the storm measures ingest, not install.
func dialStorm(tr immunity.Transport, id, token string, timeout time.Duration) (*stormSession, error) {
	ackCh := make(chan wire.Ack, 1)
	sess, err := tr.Dial(func(m wire.Message) {
		if m.Type == wire.TypeAck && m.Ack != nil {
			select {
			case ackCh <- *m.Ack:
			default:
			}
		}
	}, func(error) {})
	if err != nil {
		return nil, fmt.Errorf("%s dial: %w", id, err)
	}
	hello := wire.Message{V: wire.MinVersion, Type: wire.TypeHello,
		Hello: &wire.Hello{Device: id, MinV: wire.MinVersion, MaxV: wire.Version, Token: token}}
	if err := sess.Send(hello); err != nil {
		sess.Close()
		return nil, fmt.Errorf("%s hello: %w", id, err)
	}
	select {
	case ack := <-ackCh:
		if !ack.OK {
			sess.Close()
			return nil, fmt.Errorf("%s refused: %s", id, ack.Error)
		}
		ver := wire.MinVersion
		if ack.V != 0 {
			ver = ack.V
		}
		return &stormSession{id: id, sess: sess, ver: ver}, nil
	case <-time.After(timeout):
		sess.Close()
		return nil, fmt.Errorf("%s: timed out waiting for hello ack", id)
	}
}

// FormatStorm renders a storm result for the CLI.
func FormatStorm(res StormResult) string {
	cfg := res.Config
	out := fmt.Sprintf("report storm: %d devices × %d shared signatures, transport %s\n",
		cfg.Devices, cfg.Sigs, res.Transport)
	if r := cfg.Ramp; r != nil {
		rate := r.WarmupRate
		if rate <= 0 {
			rate = 20
		}
		out += fmt.Sprintf("  ramp                 warmup %s (%d single-sig reports/s/device), flood %s (full batches)\n",
			r.Warmup, rate, r.Flood)
	}
	out += fmt.Sprintf("  armed cluster-wide   %6d/%d in %s\n", res.Armed, cfg.Sigs, res.Elapsed.Round(time.Millisecond))
	switch {
	case cfg.Dial != "":
		out += "  admission            counters live on the daemons' /metrics endpoints\n"
	case cfg.AdmitAuto:
		out += fmt.Sprintf("  admission            admitted=%d delayed=%d shed=%d (adaptive, max wait %s)\n",
			res.Admitted, res.Delayed, res.Shed, cfg.AdmitWait)
		out += fmt.Sprintf("  adaptive capacity    %d → %d (aimd increases=%d decreases=%d)\n",
			res.InitialCapacity, res.FinalCapacity, res.AIMDIncreases, res.AIMDDecreases)
		for _, s := range res.SLO {
			line := fmt.Sprintf("  slo %-16s %s", s.Name, s.State)
			if s.LastTransition != nil {
				line += fmt.Sprintf(" (last %s→%s)", s.LastTransition.From, s.LastTransition.To)
			}
			out += line + "\n"
		}
	default:
		out += fmt.Sprintf("  admission            admitted=%d delayed=%d shed=%d (pool capacity %d, max wait %s)\n",
			res.Admitted, res.Delayed, res.Shed, cfg.AdmitCapacity, cfg.AdmitWait)
	}
	return out
}
