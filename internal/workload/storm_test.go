package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
)

// TestRunReportStorm is the bounded-degradation proof: a burst far
// wider than the permit pool is delayed (backpressure visible in the
// counters) but never shed under the generous default wait, and every
// signature still arms.
func TestRunReportStorm(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.AdmitCapacity = 1 // maximize contention so delay is deterministic
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	res, err := RunReportStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < cfg.Sigs {
		t.Fatalf("armed %d/%d — the storm lost signatures", res.Armed, cfg.Sigs)
	}
	if res.Admitted == 0 {
		t.Fatal("no report was admitted")
	}
	if res.Delayed == 0 {
		t.Fatal("a 1-permit pool under an 8-device burst delayed nothing — admission is not engaging")
	}
	if res.Shed != 0 {
		t.Fatalf("shed %d reports under a %s wait — arming completeness was luck", res.Shed, cfg.AdmitWait)
	}
	// The verdicts are also live on the shared registry.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "immunity_hub_admission_delayed_total") {
		t.Fatalf("registry render missing admission series:\n%s", b.String())
	}
	out := FormatStorm(res)
	if !strings.Contains(out, "delayed=") {
		t.Fatalf("FormatStorm missing admission line:\n%s", out)
	}
}

// TestRunReportStormFederated runs the same burst against a 2-hub
// cluster without admission: arming must still complete cluster-wide
// and the counters must stay zero (the control for the CI assertion).
func TestRunReportStormFederated(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.Devices = 4
	cfg.Sigs = 8
	cfg.Hubs = 2
	cfg.AdmitCapacity = 0 // disabled
	res, err := RunReportStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < cfg.Sigs {
		t.Fatalf("armed %d/%d cluster-wide", res.Armed, cfg.Sigs)
	}
	if res.Admitted != 0 || res.Delayed != 0 || res.Shed != 0 {
		t.Fatalf("admission counters moved while disabled: %+v", res)
	}
	if !strings.Contains(res.Transport, "cluster(2)") {
		t.Fatalf("transport = %q, want cluster(2)", res.Transport)
	}
}

// TestRunReportStormAdaptive is the AIMD convergence proof: a ramped
// storm against an adaptive pool grows capacity during the paced
// warmup (SLO ok + demand), collapses it multiplicatively when the
// full-batch flood breaches the latency SLO, never sheds (the wait is
// generous), still arms everything, and ends with the SLO recovered to
// ok once the flood drains out of the evaluation window.
func TestRunReportStormAdaptive(t *testing.T) {
	cfg := StormConfig{
		Devices:          16,
		Sigs:             64,
		ConfirmThreshold: 2,
		AdmitAuto:        true,
		SLOTarget:        500 * time.Microsecond,
		SLOInterval:      50 * time.Millisecond,
		Timeout:          60 * time.Second,
		Ramp:             &StormRamp{Warmup: 600 * time.Millisecond, Flood: 600 * time.Millisecond},
	}
	res, err := RunReportStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < cfg.Sigs {
		t.Fatalf("armed %d/%d — the ramped storm lost signatures", res.Armed, cfg.Sigs)
	}
	if res.Shed != 0 {
		t.Fatalf("shed %d reports under a generous wait", res.Shed)
	}
	if res.InitialCapacity != 8 {
		t.Fatalf("initial capacity = %d, want the AIMD default 8", res.InitialCapacity)
	}
	if res.AIMDIncreases == 0 {
		t.Fatal("warmup produced no additive increase — the controller never grew on ok+demand")
	}
	if res.AIMDDecreases == 0 {
		t.Fatal("flood produced no multiplicative decrease — the latency SLO never drove a retreat")
	}
	if res.FinalCapacity >= res.InitialCapacity {
		t.Fatalf("final capacity %d did not converge below initial %d", res.FinalCapacity, res.InitialCapacity)
	}
	var lat *metrics.SLOStatus
	for i := range res.SLO {
		if res.SLO[i].Name == "report-latency" {
			lat = &res.SLO[i]
		}
	}
	if lat == nil {
		t.Fatalf("result carries no report-latency SLO: %+v", res.SLO)
	}
	if lat.State != "ok" {
		t.Fatalf("report-latency state = %q, want ok after recovery", lat.State)
	}
	if lat.Breaches == 0 {
		t.Fatal("the flood never breached the latency SLO")
	}
	if lat.LastTransition == nil || lat.LastTransition.To != "ok" {
		t.Fatalf("last transition = %+v, want →ok (the storm-drain recovery)", lat.LastTransition)
	}
	out := FormatStorm(res)
	for _, want := range []string{"adaptive capacity", "ramp", "slo report-latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatStorm missing %q:\n%s", want, out)
		}
	}
}

func TestStormConfigValidate(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.Devices = 1
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("1-device storm must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.ConfirmThreshold = cfg.Devices + 1
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("threshold above device count must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.Timeout = -time.Second
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("negative timeout must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.AdmitAuto = true
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("AdmitAuto with a fixed capacity must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.AdmitCapacity = 0
	cfg.AdmitAuto = true
	cfg.Hubs = 2
	cfg.Metrics = metrics.NewRegistry()
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("AdmitAuto over multiple hubs with a shared registry must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.AdmitAuto = true
	cfg.AdmitCapacity = 0
	cfg.Dial = "localhost:1"
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("AdmitAuto in client mode must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.Ramp = &StormRamp{}
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("an empty ramp must be rejected")
	}
}
