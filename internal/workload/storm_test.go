package workload

import (
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
)

// TestRunReportStorm is the bounded-degradation proof: a burst far
// wider than the permit pool is delayed (backpressure visible in the
// counters) but never shed under the generous default wait, and every
// signature still arms.
func TestRunReportStorm(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.AdmitCapacity = 1 // maximize contention so delay is deterministic
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	res, err := RunReportStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < cfg.Sigs {
		t.Fatalf("armed %d/%d — the storm lost signatures", res.Armed, cfg.Sigs)
	}
	if res.Admitted == 0 {
		t.Fatal("no report was admitted")
	}
	if res.Delayed == 0 {
		t.Fatal("a 1-permit pool under an 8-device burst delayed nothing — admission is not engaging")
	}
	if res.Shed != 0 {
		t.Fatalf("shed %d reports under a %s wait — arming completeness was luck", res.Shed, cfg.AdmitWait)
	}
	// The verdicts are also live on the shared registry.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "immunity_hub_admission_delayed_total") {
		t.Fatalf("registry render missing admission series:\n%s", b.String())
	}
	out := FormatStorm(res)
	if !strings.Contains(out, "delayed=") {
		t.Fatalf("FormatStorm missing admission line:\n%s", out)
	}
}

// TestRunReportStormFederated runs the same burst against a 2-hub
// cluster without admission: arming must still complete cluster-wide
// and the counters must stay zero (the control for the CI assertion).
func TestRunReportStormFederated(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.Devices = 4
	cfg.Sigs = 8
	cfg.Hubs = 2
	cfg.AdmitCapacity = 0 // disabled
	res, err := RunReportStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed < cfg.Sigs {
		t.Fatalf("armed %d/%d cluster-wide", res.Armed, cfg.Sigs)
	}
	if res.Admitted != 0 || res.Delayed != 0 || res.Shed != 0 {
		t.Fatalf("admission counters moved while disabled: %+v", res)
	}
	if !strings.Contains(res.Transport, "cluster(2)") {
		t.Fatalf("transport = %q, want cluster(2)", res.Transport)
	}
}

func TestStormConfigValidate(t *testing.T) {
	cfg := DefaultStormConfig()
	cfg.Devices = 1
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("1-device storm must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.ConfirmThreshold = cfg.Devices + 1
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("threshold above device count must be rejected")
	}
	cfg = DefaultStormConfig()
	cfg.Timeout = -time.Second
	if _, err := RunReportStorm(cfg); err == nil {
		t.Fatal("negative timeout must be rejected")
	}
}
