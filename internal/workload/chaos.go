// Chaos storm workload: drives a report storm at a federation while
// killing and restarting hubs mid-confirmation, then asserts federation
// equivalence — every hub ends with exactly the armed set a single hub
// serving the same fleet would produce, each signature armed once
// (per-hub delta epoch == armed count, so a failover can never
// double-arm), and the restarted hub resynced from its resume seq.
//
// The schedule is built to make the failover path load-bearing rather
// than merely possible: the victim hub (which serves no devices) owns a
// slice of the signature space, the first ConfirmThreshold-1 devices
// report while it is alive — leaving every victim-owned signature
// pending mid-confirmation, its set replicated to the deputy — and the
// remaining devices report only after the victim is killed, so those
// signatures can only arm on the deputy from the inherited set. The
// victim then restarts over the same provenance store, rejoins, takes
// its keys back by handoff, and must converge to the same armed set.
package workload

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// SwitchTransport is an in-process Transport whose target hub can be
// swapped at runtime. A plain Loopback is bound to one Exchange object
// forever — a closed in-process hub can never come back, so loopback
// dial errors classify as permanent — which makes it unable to model a
// hub *restart*. SwitchTransport is the restartable variant: peers dial
// through it, a kill swaps the hub out (dials fail transiently, so peer
// links keep redialing with backoff), and a restart swaps the new
// Exchange in, at which point the next redial lands on the reborn hub
// exactly as a TCP reconnect would land on a restarted daemon.
type SwitchTransport struct {
	hub atomic.Pointer[immunity.Exchange]
}

// NewSwitchTransport builds the transport, initially targeting hub
// (nil = down).
func NewSwitchTransport(hub *immunity.Exchange) *SwitchTransport {
	t := &SwitchTransport{}
	t.hub.Store(hub)
	return t
}

// Swap retargets the transport: nil models a crashed hub, non-nil a
// restarted one. Existing sessions are unaffected (the old hub's Close
// tears them down); only future dials see the new target.
func (t *SwitchTransport) Swap(hub *immunity.Exchange) { t.hub.Store(hub) }

// Dial implements immunity.Transport.
func (t *SwitchTransport) Dial(recv func(wire.Message), down func(err error)) (immunity.Session, error) {
	hub := t.hub.Load()
	if hub == nil {
		return nil, fmt.Errorf("switch transport: hub is down")
	}
	sess, err := immunity.NewLoopback(hub).Dial(recv, down)
	if err != nil {
		// Strip the loopback's permanent classification: behind the
		// switch this hub can restart, so its dial errors are transient.
		return nil, fmt.Errorf("switch transport: %v", err)
	}
	return sess, nil
}

// ChaosConfig parameterizes one chaos storm.
type ChaosConfig struct {
	// Devices is how many simulated phones report (>= ConfirmThreshold).
	// The first ConfirmThreshold-1 report before the kill, the rest
	// after it, so victim-owned signatures cross the threshold on the
	// deputy.
	Devices int
	// Sigs is how many distinct signatures the fleet reports.
	Sigs int
	// ConfirmThreshold gates arming on every hub.
	ConfirmThreshold int
	// Hubs is the federation size (>= 2; the last hub is the victim and
	// serves no devices).
	Hubs int
	// Kills is how many kill/restart cycles to run (default 1). The
	// first cycle interrupts arming mid-confirmation; later cycles kill
	// and restart the victim with the set already armed, proving the
	// restart resync path converges from any point.
	Kills int
	// FailoverAfter is the cluster failure-detector threshold (default
	// 150ms — short enough for a test-sized storm, long enough that a
	// slow scheduler tick does not read as a death).
	FailoverAfter time.Duration
	// Timeout bounds every wait.
	Timeout time.Duration
	// Metrics, when non-nil, is shared with every hub and node.
	Metrics *metrics.Registry
}

// DefaultChaosConfig is the CI chaos shape: 6 devices, 24 signatures,
// threshold 3 over a 3-hub federation, one kill/restart cycle.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Devices:          6,
		Sigs:             24,
		ConfirmThreshold: 3,
		Hubs:             3,
		Kills:            1,
		FailoverAfter:    150 * time.Millisecond,
		Timeout:          60 * time.Second,
	}
}

// ChaosResult is the outcome of one chaos storm.
type ChaosResult struct {
	Config ChaosConfig
	// Armed is the cluster-wide armed count at the end (the minimum
	// across hubs, restarted victim included).
	Armed int
	// VictimKeys is how many of the signatures the victim owned at the
	// first kill — the slice whose arming had to ride the failover.
	VictimKeys int
	// Kills is how many kill/restart cycles ran.
	Kills int
	// Fenced sums the stale arm-broadcasts refused by the fencing rule
	// across hubs over the whole run.
	Fenced uint64
	// Elapsed is storm start to final convergence.
	Elapsed time.Duration
}

func (cfg ChaosConfig) validate() error {
	if cfg.ConfirmThreshold < 1 {
		return fmt.Errorf("chaos: confirm threshold %d < 1", cfg.ConfirmThreshold)
	}
	if cfg.Devices < cfg.ConfirmThreshold || cfg.Devices < 2 {
		return fmt.Errorf("chaos: %d devices cannot cross threshold %d", cfg.Devices, cfg.ConfirmThreshold)
	}
	if cfg.Sigs < 1 {
		return fmt.Errorf("chaos: need >= 1 signature, got %d", cfg.Sigs)
	}
	if cfg.Hubs < 2 {
		return fmt.Errorf("chaos: need >= 2 hubs for a failover, got %d", cfg.Hubs)
	}
	if cfg.Kills < 1 {
		return fmt.Errorf("chaos: need >= 1 kill, got %d", cfg.Kills)
	}
	if cfg.Timeout <= 0 {
		return fmt.Errorf("chaos: non-positive timeout %v", cfg.Timeout)
	}
	return nil
}

// RunChaosStorm executes the chaos storm and verifies federation
// equivalence. Any divergence — a hub missing an arming, a double-arm
// (epoch past the armed count), a wrong armed set — is an error.
func RunChaosStorm(cfg ChaosConfig) (ChaosResult, error) {
	if err := cfg.validate(); err != nil {
		return ChaosResult{}, err
	}
	if cfg.FailoverAfter <= 0 {
		cfg.FailoverAfter = 150 * time.Millisecond
	}
	res := ChaosResult{Config: cfg}
	deadline := time.Now().Add(cfg.Timeout)
	waitFor := func(what string, cond func() bool) error {
		for !cond() {
			if time.Now().After(deadline) {
				return fmt.Errorf("chaos: timed out waiting for %s", what)
			}
			time.Sleep(500 * time.Microsecond)
		}
		return nil
	}

	fullSet := make([]wire.Signature, cfg.Sigs)
	for s := range fullSet {
		fullSet[s] = wire.FromCore(propagationSig(s))
	}

	// Reference: the same fleet against one hub — the arming decisions
	// the federation must reproduce under chaos.
	refArmed, err := singleHubReference(cfg, fullSet, deadline)
	if err != nil {
		return res, err
	}

	// The federation: every peer link runs through a SwitchTransport so
	// the victim can die and come back behind a stable address.
	hubID := func(i int) string { return fmt.Sprintf("hub%d", i) }
	victim := cfg.Hubs - 1
	stores := make([]*immunity.MemProvenance, cfg.Hubs)
	switches := make([]*SwitchTransport, cfg.Hubs)
	for i := range switches {
		stores[i] = immunity.NewMemProvenance()
		switches[i] = NewSwitchTransport(nil)
	}
	hubs := make([]*immunity.Exchange, cfg.Hubs)
	nodes := make([]*cluster.Node, cfg.Hubs)
	start := func(i int) error {
		hub, err := immunity.NewExchange(cfg.ConfirmThreshold, immunity.WithProvenanceStore(stores[i]))
		if err != nil {
			return fmt.Errorf("chaos: %s: %w", hubID(i), err)
		}
		var peers []cluster.Member
		for j := range switches {
			if j != i {
				peers = append(peers, cluster.Member{ID: hubID(j), Transport: switches[j]})
			}
		}
		node, err := cluster.New(cluster.Config{
			Self: hubID(i), Hub: hub, Peers: peers,
			FailoverAfter: cfg.FailoverAfter, Metrics: cfg.Metrics,
		})
		if err != nil {
			hub.Close()
			return fmt.Errorf("chaos: %s: %w", hubID(i), err)
		}
		hubs[i], nodes[i] = hub, node
		switches[i].Swap(hub)
		return nil
	}
	defer func() {
		for i := range nodes {
			if nodes[i] != nil {
				nodes[i].Close()
			}
			if hubs[i] != nil {
				hubs[i].Close()
			}
		}
	}()
	for i := range hubs {
		if err := start(i); err != nil {
			return res, err
		}
	}

	// The victim's slice of the signature space: these keys' arming must
	// survive the kill. (The fencing total below also counts any
	// post-restart replays the survivors refuse.)
	ring := nodes[0].Ring()
	var victimKeys []string
	for _, ws := range fullSet {
		if sig, err := ws.ToCore(); err == nil && ring.Owner(sig.Key()) == hubID(victim) {
			victimKeys = append(victimKeys, sig.Key())
		}
	}
	res.VictimKeys = len(victimKeys)

	// Devices attach round-robin to the survivor hubs only — the victim
	// participates purely as an owner, so its death never takes a device
	// session with it and every lost arming is the federation's fault.
	devices := make([]*stormSession, cfg.Devices)
	for i := range devices {
		dev, err := dialStorm(immunity.NewLoopback(hubs[i%victim]), fmt.Sprintf("chaos%d", i), "", cfg.Timeout)
		if err != nil {
			return res, fmt.Errorf("chaos: %w", err)
		}
		defer dev.close()
		devices[i] = dev
	}
	report := func(devs []*stormSession) error {
		for _, dev := range devs {
			for s := range fullSet {
				m := wire.Message{V: dev.ver, Type: wire.TypeReport,
					Report: &wire.Report{Sigs: fullSet[s : s+1]}}
				if err := dev.sess.Send(m); err != nil {
					return fmt.Errorf("chaos: %s report: %w", dev.id, err)
				}
			}
		}
		return nil
	}

	started := time.Now()

	// Phase 1 — mid-confirmation: threshold-1 devices report, so every
	// signature ends pending one confirmation short of arming, and the
	// victim's owned slice is replicated to its deputies.
	early := devices[:cfg.ConfirmThreshold-1]
	if err := report(early); err != nil {
		return res, err
	}
	if len(early) > 0 {
		if err := waitFor("victim to hold its pending slice", func() bool {
			return len(hubs[victim].Provenance()) >= len(victimKeys)
		}); err != nil {
			return res, err
		}
		// Replication barrier: each victim-owned key's deputy holds the
		// shadow before the kill, so the arming below can only come from
		// the inherited set.
		deputies := make(map[string]int)
		for _, key := range victimKeys {
			for i := 0; i < victim; i++ {
				if ring.Deputy(key) == hubID(i) {
					deputies[key] = i
				}
			}
		}
		if err := waitFor("deputy replicas of the victim's slice", func() bool {
			for key, i := range deputies {
				found := false
				for _, p := range hubs[i].Provenance() {
					if p.Key == key {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			return true
		}); err != nil {
			return res, err
		}
	}

	for k := 0; k < cfg.Kills; k++ {
		// Kill: no Leave, no drain — the crash analog. Peer dials start
		// failing first so no redial lands on the closing hub.
		switches[victim].Swap(nil)
		nodes[victim].Close()
		hubs[victim].Close()
		nodes[victim], hubs[victim] = nil, nil
		if err := waitFor("survivors to fail the victim over", func() bool {
			for i := 0; i < victim; i++ {
				if len(nodes[i].Members()) != cfg.Hubs-1 {
					return false
				}
			}
			return true
		}); err != nil {
			return res, err
		}

		if k == 0 {
			// Phase 2 — the remaining devices report while the victim is
			// dead: its former slice can only arm on the deputies, from
			// the replicated pending sets plus these confirmations.
			if err := report(devices[len(early):]); err != nil {
				return res, err
			}
			if err := waitFor("survivors to arm the full set", func() bool {
				for i := 0; i < victim; i++ {
					if hubs[i].ArmedCount() < cfg.Sigs {
						return false
					}
				}
				return true
			}); err != nil {
				return res, err
			}
		}

		// Restart over the same provenance store; the node rejoins via
		// its seed peers, takes its keys back by handoff, and resyncs
		// the armings it missed from its resume seqs.
		if err := start(victim); err != nil {
			return res, err
		}
		if err := waitFor("the restarted victim to rejoin", func() bool {
			for i := range nodes {
				if len(nodes[i].Members()) != cfg.Hubs {
					return false
				}
			}
			return true
		}); err != nil {
			return res, err
		}
		res.Kills++
	}

	// Convergence: every hub — restarted victim included — armed on the
	// whole set.
	if err := waitFor("cluster-wide convergence", func() bool {
		for _, hub := range hubs {
			if hub.ArmedCount() < cfg.Sigs {
				return false
			}
		}
		return true
	}); err != nil {
		for _, hub := range hubs {
			if n := hub.ArmedCount(); res.Armed == 0 || n < res.Armed {
				res.Armed = n
			}
		}
		return res, err
	}
	res.Elapsed = time.Since(started)

	// Federation equivalence against the single-hub reference, and the
	// no-double-arm invariant: a hub's delta epoch counts its armings,
	// so epoch == armed count means no failover replay armed twice.
	res.Armed = cfg.Sigs
	for i, hub := range hubs {
		if n := hub.ArmedCount(); n < res.Armed {
			res.Armed = n
		}
		armed := armedKeys(hub)
		if !equalKeys(armed, refArmed) {
			return res, fmt.Errorf("chaos: %s armed set diverged from the single-hub reference (%d vs %d keys)",
				hubID(i), len(armed), len(refArmed))
		}
		st := hub.Stats()
		if st.Epoch != uint64(len(armed)) {
			return res, fmt.Errorf("chaos: %s delta epoch %d != armed count %d (double-arm)",
				hubID(i), st.Epoch, len(armed))
		}
		res.Fenced += st.Fenced
	}
	return res, nil
}

// singleHubReference runs the fleet's report set against one hub and
// returns its armed key set.
func singleHubReference(cfg ChaosConfig, fullSet []wire.Signature, deadline time.Time) ([]string, error) {
	hub, err := immunity.NewExchange(cfg.ConfirmThreshold)
	if err != nil {
		return nil, fmt.Errorf("chaos: reference hub: %w", err)
	}
	defer hub.Close()
	tr := immunity.NewLoopback(hub)
	for i := 0; i < cfg.Devices; i++ {
		dev, err := dialStorm(tr, fmt.Sprintf("chaos%d", i), "", cfg.Timeout)
		if err != nil {
			return nil, fmt.Errorf("chaos: reference: %w", err)
		}
		for s := range fullSet {
			m := wire.Message{V: dev.ver, Type: wire.TypeReport,
				Report: &wire.Report{Sigs: fullSet[s : s+1]}}
			if err := dev.sess.Send(m); err != nil {
				dev.close()
				return nil, fmt.Errorf("chaos: reference report: %w", err)
			}
		}
		dev.close()
	}
	for hub.ArmedCount() < cfg.Sigs {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("chaos: reference hub armed %d/%d before timeout", hub.ArmedCount(), cfg.Sigs)
		}
		time.Sleep(500 * time.Microsecond)
	}
	return armedKeys(hub), nil
}

// armedKeys returns a hub's armed signature keys, sorted.
func armedKeys(hub *immunity.Exchange) []string {
	var keys []string
	for _, p := range hub.Provenance() {
		if p.Armed {
			keys = append(keys, p.Key)
		}
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatChaos renders a chaos result for the CLI.
func FormatChaos(res ChaosResult) string {
	cfg := res.Config
	out := fmt.Sprintf("chaos storm: %d devices × %d signatures over %d hubs, threshold %d\n",
		cfg.Devices, cfg.Sigs, cfg.Hubs, cfg.ConfirmThreshold)
	out += fmt.Sprintf("  victim slice         %d/%d signatures owned by the killed hub\n", res.VictimKeys, cfg.Sigs)
	out += fmt.Sprintf("  kill/restart cycles  %d (failover after %s)\n", res.Kills, cfg.FailoverAfter)
	out += fmt.Sprintf("  armed cluster-wide   %d/%d in %s (federation-equivalent, zero double-arms)\n",
		res.Armed, cfg.Sigs, res.Elapsed.Round(time.Millisecond))
	out += fmt.Sprintf("  fenced replays       %d\n", res.Fenced)
	return out
}
