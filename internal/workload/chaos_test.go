package workload

import (
	"testing"
	"time"
)

// TestRunChaosStorm is the federation-equivalence proof under failure:
// the victim hub is killed mid-confirmation (its pending sets one short
// of threshold, replicated to deputies), the remaining confirmations
// arm its slice on the deputies, and the restarted victim resyncs —
// every hub converges to the single-hub reference's armed set with no
// double-arm.
func TestRunChaosStorm(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.FailoverAfter = 50 * time.Millisecond
	res, err := RunChaosStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed != cfg.Sigs {
		t.Fatalf("armed %d/%d", res.Armed, cfg.Sigs)
	}
	if res.Kills != cfg.Kills {
		t.Fatalf("ran %d kill cycles, want %d", res.Kills, cfg.Kills)
	}
	if res.VictimKeys == 0 {
		t.Fatal("victim owned no signatures — the kill exercised nothing")
	}
	t.Logf("\n%s", FormatChaos(res))
}

// TestRunChaosStormRepeatedKills: extra kill/restart cycles after the
// set armed prove the restart resync path converges from an
// already-armed state too.
func TestRunChaosStormRepeatedKills(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated kill cycles in -short mode")
	}
	cfg := DefaultChaosConfig()
	cfg.Kills = 3
	cfg.FailoverAfter = 50 * time.Millisecond
	res, err := RunChaosStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills != 3 {
		t.Fatalf("ran %d kill cycles, want 3", res.Kills)
	}
}

// TestChaosConfigValidate pins the config error paths.
func TestChaosConfigValidate(t *testing.T) {
	bad := []ChaosConfig{
		{Devices: 2, Sigs: 1, ConfirmThreshold: 3, Hubs: 3, Kills: 1, Timeout: time.Second},
		{Devices: 4, Sigs: 0, ConfirmThreshold: 2, Hubs: 3, Kills: 1, Timeout: time.Second},
		{Devices: 4, Sigs: 1, ConfirmThreshold: 2, Hubs: 1, Kills: 1, Timeout: time.Second},
		{Devices: 4, Sigs: 1, ConfirmThreshold: 2, Hubs: 3, Kills: 0, Timeout: time.Second},
		{Devices: 4, Sigs: 1, ConfirmThreshold: 2, Hubs: 3, Kills: 1},
	}
	for i, cfg := range bad {
		if _, err := RunChaosStorm(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}
