package workload

import (
	"strings"
	"testing"
	"time"
)

func TestOverheadCurveSmall(t *testing.T) {
	points, err := OverheadCurve([]int{0, 500}, 2, 32, 100*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	// At zero work the interception cost dominates: vanilla must be
	// clearly faster and per-op latency must grow with work size.
	if points[0].OverheadPct() <= 0 {
		t.Errorf("zero-work overhead = %.1f%%, want > 0", points[0].OverheadPct())
	}
	if points[1].Vanilla.NsPerOp <= points[0].Vanilla.NsPerOp {
		t.Error("per-op latency must grow with work size")
	}
	out := FormatCurve(points)
	if !strings.Contains(out, "overhead") {
		t.Errorf("curve format missing header: %q", out)
	}
}

func TestDefaultCurveWorkSizes(t *testing.T) {
	sizes := DefaultCurveWorkSizes(500_000)
	if sizes[0] != 0 {
		t.Error("curve must start at zero work (pure interception cost)")
	}
	if sizes[len(sizes)-1] != 500_000 {
		t.Error("curve must end at the calibrated operating point")
	}
	// A calibrated point inside the default span must not be appended.
	small := DefaultCurveWorkSizes(100)
	if small[len(small)-1] == 100 {
		t.Error("calibrated point below span end must not be appended")
	}
}

func TestSweepPointOverheadDegenerate(t *testing.T) {
	p := SweepPoint{}
	if p.OverheadPct() != 0 {
		t.Error("zero vanilla rate must yield 0 overhead")
	}
	c := CurvePoint{}
	if c.OverheadPct() != 0 {
		t.Error("zero vanilla rate must yield 0 overhead")
	}
}

func TestDefaultSweepConfigMatchesPaperRanges(t *testing.T) {
	cfg := DefaultSweepConfig()
	if cfg.ThreadCounts[0] != 2 || cfg.ThreadCounts[len(cfg.ThreadCounts)-1] != 512 {
		t.Errorf("thread range %v, want 2..512 (paper)", cfg.ThreadCounts)
	}
	if cfg.SignatureCounts[0] != 64 || cfg.SignatureCounts[len(cfg.SignatureCounts)-1] != 256 {
		t.Errorf("signature range %v, want 64..256 (paper)", cfg.SignatureCounts)
	}
}
