package workload

import (
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

func fastConfig(threads int, dimmunix bool) MicroConfig {
	cfg := DefaultMicroConfig(threads)
	cfg.Duration = 150 * time.Millisecond
	cfg.InsideWork = 50
	cfg.OutsideWork = 150
	cfg.Dimmunix = dimmunix
	return cfg
}

func TestMicroConfigValidation(t *testing.T) {
	bad := []MicroConfig{
		{Threads: 0, Locks: 1, Sites: 1, Duration: time.Millisecond},
		{Threads: 1, Locks: 0, Sites: 1, Duration: time.Millisecond},
		{Threads: 1, Locks: 1, Sites: 0, Duration: time.Millisecond},
		{Threads: 1, Locks: 1, Sites: 1, Duration: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMicroVanillaRun(t *testing.T) {
	res, err := Run(fastConfig(4, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.SyncsPerSec <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.CoreStats.Requests != 0 {
		t.Error("vanilla run must not touch a core")
	}
	if res.ProcStats.SyncOps < res.Ops {
		t.Errorf("VM counted %d syncs for %d ops", res.ProcStats.SyncOps, res.Ops)
	}
}

func TestMicroDimmunixRunExercisesAvoidance(t *testing.T) {
	cfg := fastConfig(4, true)
	cfg.Signatures = 64
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoreStats.Requests == 0 {
		t.Fatal("dimmunix run must drive the core")
	}
	// Synthetic signatures put every benchmark site on the avoidance
	// path: matching must have run...
	if res.CoreStats.AvoidanceChecks == 0 {
		t.Error("synthetic history not exercised (no avoidance checks)")
	}
	// ...but can never instantiate (cold half never executes).
	if res.CoreStats.InstantiationsFound != 0 {
		t.Errorf("synthetic signatures instantiated %d times, want 0", res.CoreStats.InstantiationsFound)
	}
	if res.CoreStats.Yields != 0 {
		t.Errorf("benchmark yielded %d times, want 0", res.CoreStats.Yields)
	}
	if res.CoreStats.DeadlocksDetected != 0 {
		t.Errorf("benchmark deadlocked: %+v", res.CoreStats)
	}
}

func TestSyntheticSignaturesShape(t *testing.T) {
	hot := benchFrames(4)
	sigs := SyntheticSignatures(64, hot)
	if len(sigs) != 64 {
		t.Fatalf("got %d signatures, want 64", len(sigs))
	}
	keys := map[string]bool{}
	for i, sig := range sigs {
		if err := sig.Validate(); err != nil {
			t.Fatalf("sig %d invalid: %v", i, err)
		}
		if keys[sig.Key()] {
			t.Fatalf("sig %d duplicates an earlier key", i)
		}
		keys[sig.Key()] = true
		// One hot site, one cold site.
		if sig.Pairs[0].Outer[0].Class != "com.dimmunix.bench.Worker" {
			t.Errorf("sig %d first outer not hot: %v", i, sig.Pairs[0].Outer)
		}
		if sig.Pairs[1].Outer[0].Class != "com.dimmunix.bench.Cold" {
			t.Errorf("sig %d second outer not cold: %v", i, sig.Pairs[1].Outer)
		}
	}
	// All synthetic signatures install (no dedupe collisions).
	c, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sig := range sigs {
		if _, fresh, err := c.AddSignature(sig); err != nil || !fresh {
			t.Fatalf("install: fresh=%v err=%v", fresh, err)
		}
	}
	if c.HistorySize() != 64 {
		t.Errorf("history size = %d, want 64", c.HistorySize())
	}
}

func TestMicroStaticSitesMode(t *testing.T) {
	cfg := fastConfig(2, true)
	cfg.StaticSites = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops in static-site mode")
	}
	if res.CoreStats.Requests == 0 {
		t.Error("static-site mode must still drive the core")
	}
}

func TestMicroOverheadDirection(t *testing.T) {
	// Dimmunix must cost something: with near-zero per-op work the raw
	// interception overhead dominates, so vanilla must be faster. (The
	// calibrated operating-point comparison lives in the benchmarks.)
	cfg := fastConfig(2, false)
	cfg.InsideWork, cfg.OutsideWork = 0, 0
	cfg.Duration = 250 * time.Millisecond
	van, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dimmunix = true
	dim, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dim.SyncsPerSec >= van.SyncsPerSec {
		t.Errorf("dimmunix (%0.f/s) not slower than vanilla (%0.f/s) at zero work",
			dim.SyncsPerSec, van.SyncsPerSec)
	}
}

func TestCalibrateWork(t *testing.T) {
	iters := CalibrateWork(1747, 2)
	if iters < 100 {
		t.Errorf("calibrated iters = %d; suspiciously small for ~1.7k syncs/sec", iters)
	}
	if CalibrateWork(0, 2) != 0 {
		t.Error("zero target must calibrate to zero work")
	}
}

func TestRunSweepSmall(t *testing.T) {
	cfg := SweepConfig{
		ThreadCounts:    []int{2, 4},
		SignatureCounts: []int{64},
		Duration:        120 * time.Millisecond,
		WorkIters:       200,
		Seed:            1,
	}
	points, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.Vanilla.SyncsPerSec <= 0 || p.Dimmunix.SyncsPerSec <= 0 {
			t.Errorf("empty measurement at threads=%d", p.Threads)
		}
	}
	if out := FormatSweep(points); len(out) == 0 {
		t.Error("empty sweep report")
	}
}
