package workload

import (
	"fmt"
	"strings"
	"time"
)

// Overhead curve: the paper's 4–5% overhead is a property of an operating
// point — the ratio between per-operation computation and the per-
// operation interception cost (dominated by dvmGetCallStack on the
// paper's 1 GHz ARM). On a faster host with a cheaper stack capture, the
// same ratio occurs at a smaller per-op work size. The curve sweeps per-op
// busy work from zero (pure interception cost, the upper bound on
// overhead) to the paper-calibrated operating point, locating where the
// 4–5% regime falls.

// CurvePoint is one work-size measurement.
type CurvePoint struct {
	// WorkIters is the busy-work iterations per op.
	WorkIters int
	// Vanilla and Dimmunix are the measured results.
	Vanilla  Result
	Dimmunix Result
}

// OverheadPct is the throughput overhead at this work size.
func (p CurvePoint) OverheadPct() float64 {
	if p.Vanilla.SyncsPerSec <= 0 {
		return 0
	}
	return (p.Vanilla.SyncsPerSec - p.Dimmunix.SyncsPerSec) / p.Vanilla.SyncsPerSec * 100
}

// OverheadCurve measures vanilla vs Dimmunix throughput across per-op work
// sizes with the given thread count and synthetic history size.
func OverheadCurve(workSizes []int, threads, signatures int, duration time.Duration, seed int64) ([]CurvePoint, error) {
	points := make([]CurvePoint, 0, len(workSizes))
	for _, work := range workSizes {
		base := DefaultMicroConfig(threads)
		base.Duration = duration
		base.Signatures = signatures
		base.InsideWork = work / 4
		base.OutsideWork = work - work/4
		base.Seed = seed

		van := base
		van.Dimmunix = false
		vres, err := Run(van)
		if err != nil {
			return nil, fmt.Errorf("curve work=%d vanilla: %w", work, err)
		}
		dim := base
		dim.Dimmunix = true
		dres, err := Run(dim)
		if err != nil {
			return nil, fmt.Errorf("curve work=%d dimmunix: %w", work, err)
		}
		points = append(points, CurvePoint{WorkIters: work, Vanilla: vres, Dimmunix: dres})
	}
	return points, nil
}

// FormatCurve renders the overhead curve.
func FormatCurve(points []CurvePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %16s %16s %12s %10s\n", "work/op", "vanilla", "dimmunix", "ns/op(van)", "overhead")
	for _, p := range points {
		fmt.Fprintf(&b, "%12d %13.0f/s %13.0f/s %12.0f %9.1f%%\n",
			p.WorkIters, p.Vanilla.SyncsPerSec, p.Dimmunix.SyncsPerSec, p.Vanilla.NsPerOp, p.OverheadPct())
	}
	return b.String()
}

// DefaultCurveWorkSizes spans pure interception cost up to (and past) the
// paper-calibrated operating point.
func DefaultCurveWorkSizes(calibrated int) []int {
	sizes := []int{0, 200, 1000, 4000, 16000, 64000}
	if calibrated > sizes[len(sizes)-1] {
		sizes = append(sizes, calibrated)
	}
	return sizes
}
