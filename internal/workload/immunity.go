// Fleet immunity workload: measures how fast an antibody travels once
// detected — first across the live processes of the detecting phone (the
// on-device propagation tier), then across a simulated fleet of phones
// through the signature exchange, gated by the confirm-before-arm
// threshold. The headline number is time-to-fleet-immunity: from the
// moment the threshold-completing detection is accepted to the moment the
// last live process on the last phone is armed.
//
// The phones reach the exchange through any of its transports: the
// in-process loopback, an in-process hub served over real TCP sockets,
// or — in client mode (Dial) — an external immunityd daemon, observed
// through wire status requests. With Hubs > 1 (or several Dial
// addresses) the exchange is a federated cluster: phones attach
// round-robin across hubs, reports are forwarded to each signature's
// owning hub, and arming must propagate cluster-wide before the
// scenario counts it. Arming decisions are identical across transports
// and topologies; only latencies differ (the federation-equivalence
// test in this package asserts it).
package workload

import (
	"crypto/tls"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
	"github.com/dimmunix/dimmunix/internal/vm"
)

// FleetTransport selects how the workload's phones reach the exchange.
type FleetTransport string

// Fleet transport modes.
const (
	// TransportLoopback runs the wire protocol in-process (no sockets).
	TransportLoopback FleetTransport = "loopback"
	// TransportTCP serves an in-process hub on an OS-assigned loopback
	// TCP port and connects every phone through real sockets.
	TransportTCP FleetTransport = "tcp"
)

// FleetImmunityConfig parameterizes one fleet immunity run.
type FleetImmunityConfig struct {
	// Phones is the number of simulated devices (>= 2; the acceptance
	// scenario uses >= 4).
	Phones int
	// ProcsPerPhone is how many live application processes each phone
	// runs (forked before any detection, so arming them proves the
	// no-restart path).
	ProcsPerPhone int
	// ConfirmThreshold is how many distinct devices must independently
	// detect the deadlock before the exchange arms it fleet-wide. It must
	// not exceed Phones (ignored in client mode, where the daemon owns
	// the threshold).
	ConfirmThreshold int
	// Timeout bounds every wait in the scenario.
	Timeout time.Duration
	// Transport selects loopback (default) or tcp for the in-process
	// hub(s). Ignored when Dial is set.
	Transport FleetTransport
	// Hubs federates the in-process exchange into a cluster of this many
	// hubs (per-signature ownership, hub-to-hub delta exchange); phones
	// attach round-robin across them. 0 or 1 keeps the single hub.
	// Ignored when Dial is set (an external cluster is given by listing
	// several addresses in Dial instead).
	Hubs int
	// Dial, when non-empty, runs the workload in client mode against
	// external exchange daemons (immunityd -serve): a comma-separated
	// address list — one address for a single hub, several for a
	// federated cluster — across which phones attach round-robin over
	// TCP, with gating/provenance observed through wire status requests.
	// The daemons must be running with a confirm threshold of
	// ConfirmThreshold for the gating check to be meaningful.
	Dial string
	// Token, in client mode, rides every phone's hello as the bearer
	// credential — required against daemons serving with -auth-key or
	// -auth-keyring, ignored by auth-disabled daemons.
	Token string
	// TLS, in client mode, dials every daemon connection (device
	// sessions and status probes) under this config — typically
	// auth.ClientConfig over the fleet CA. Nil dials plaintext.
	TLS *tls.Config
	// Metrics, when non-nil, is shared with every in-process hub (the
	// hub-side counters/gauges land on it) and receives the run's
	// propagation latencies as immunity_propagation_device_seconds and
	// immunity_propagation_fleet_seconds histogram observations, so the
	// percentiles the CLI prints are also scrapeable live. Ignored in
	// client mode (external daemons own their registries).
	Metrics *metrics.Registry
}

// DefaultFleetImmunityConfig is the acceptance-scenario shape: 4 phones,
// 3 live processes each, arm after 2 independent confirmations.
func DefaultFleetImmunityConfig() FleetImmunityConfig {
	return FleetImmunityConfig{
		Phones:           4,
		ProcsPerPhone:    3,
		ConfirmThreshold: 2,
		Timeout:          30 * time.Second,
		Transport:        TransportLoopback,
	}
}

// validate rejects inconsistent configs.
func (cfg FleetImmunityConfig) validate() error {
	if cfg.Phones < 2 {
		return fmt.Errorf("fleet immunity: need >= 2 phones, got %d", cfg.Phones)
	}
	if cfg.ProcsPerPhone < 1 {
		return fmt.Errorf("fleet immunity: need >= 1 process per phone, got %d", cfg.ProcsPerPhone)
	}
	if cfg.ConfirmThreshold < 1 || cfg.ConfirmThreshold > cfg.Phones {
		return fmt.Errorf("fleet immunity: confirm threshold %d outside [1,%d]", cfg.ConfirmThreshold, cfg.Phones)
	}
	if cfg.Timeout <= 0 {
		return fmt.Errorf("fleet immunity: non-positive timeout %v", cfg.Timeout)
	}
	switch cfg.Transport {
	case "", TransportLoopback, TransportTCP:
	default:
		return fmt.Errorf("fleet immunity: unknown transport %q", cfg.Transport)
	}
	if cfg.Hubs < 0 {
		return fmt.Errorf("fleet immunity: negative hub count %d", cfg.Hubs)
	}
	if cfg.Hubs > cfg.Phones {
		return fmt.Errorf("fleet immunity: %d hubs for %d phones (each hub needs a phone)", cfg.Hubs, cfg.Phones)
	}
	return nil
}

// FleetImmunityResult is the measured timeline of one run.
type FleetImmunityResult struct {
	Config FleetImmunityConfig
	// DeviceImmunity is first detection → every live process on the
	// detecting phone armed (the on-device propagation latency).
	DeviceImmunity time.Duration
	// RemoteArmedBeforeThreshold counts processes on non-detecting phones
	// that were armed after the first detection but before the threshold
	// was met. It must be 0 when ConfirmThreshold > 1 — the gating proof.
	RemoteArmedBeforeThreshold int
	// RemoteProcsSampled is the number of processes the gating check
	// sampled.
	RemoteProcsSampled int
	// FleetArm is last (threshold-completing) detection → the exchange
	// arming the signature.
	FleetArm time.Duration
	// FleetImmunity is last detection → the last live process on the last
	// phone armed: the headline time-to-fleet-immunity.
	FleetImmunity time.Duration
	// Provenance is the exchange's audit trail after the run.
	Provenance []immunity.Provenance
	// Transport describes how phones reached the hub: "loopback", "tcp",
	// or "client:ADDR" for an external daemon.
	Transport string
	// DeltaBatches and DeltaSignatures are the hub's push-coalescing
	// counters after the run.
	DeltaBatches, DeltaSignatures uint64
}

// buggyFrames are the injected deadlock's two outer positions — identical
// on every phone, so each device's detection yields the same signature
// key and the confirmations accumulate on one fleet entry.
var buggyOuterA = core.Frame{Class: "com.buggy.App", Method: "lockAB", Line: 10}
var buggyOuterB = core.Frame{Class: "com.buggy.App", Method: "lockBA", Line: 20}

// buggyKey is the injected deadlock's signature key.
func buggyKey() string {
	sig := &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{buggyOuterA}, Inner: core.CallStack{buggyOuterA}},
			{Outer: core.CallStack{buggyOuterB}, Inner: core.CallStack{buggyOuterB}},
		},
	}
	return sig.Key()
}

// armedWith reports whether the process's core holds the signature.
func armedWith(p *vm.Process, key string) bool {
	dim := p.Dimmunix()
	if dim == nil {
		return false
	}
	for _, info := range dim.History() {
		sig := &core.Signature{Kind: info.Kind, Pairs: info.Pairs}
		if sig.Key() == key {
			return true
		}
	}
	return false
}

// injectDeadlock forks a buggy app on the phone and drives its two
// threads into a certain AB/BA inversion (strict rendezvous on channels).
// Under PolicyFreeze the process freezes — like a real buggy app — and
// the detection publishes the signature to the phone's service. The
// process is left frozen; the Zygote reaps it at teardown.
func injectDeadlock(z *vm.Zygote) error {
	p, err := z.Fork("com.buggy.app")
	if err != nil {
		return fmt.Errorf("inject: %w", err)
	}
	a, b := p.NewObject("buggy.A"), p.NewObject("buggy.B")
	hasA := make(chan struct{})
	hasB := make(chan struct{})
	if _, err := p.Start("t1", func(t *vm.Thread) {
		t.Call(buggyOuterA.Class, buggyOuterA.Method, buggyOuterA.Line, func() {
			a.Synchronized(t, func() {
				close(hasA)
				<-hasB
				t.Call("com.buggy.App", "innerB", 11, func() {
					b.Synchronized(t, func() {})
				})
			})
		})
	}); err != nil {
		return fmt.Errorf("inject: %w", err)
	}
	if _, err := p.Start("t2", func(t *vm.Thread) {
		t.Call(buggyOuterB.Class, buggyOuterB.Method, buggyOuterB.Line, func() {
			<-hasA
			b.Synchronized(t, func() {
				close(hasB)
				t.Call("com.buggy.App", "innerA", 21, func() {
					a.Synchronized(t, func() {})
				})
			})
		})
	}); err != nil {
		return fmt.Errorf("inject: %w", err)
	}
	return nil
}

// immunityPhone is one simulated device of the fleet.
type immunityPhone struct {
	svc    *immunity.Service
	zygote *vm.Zygote
	procs  []*vm.Process
	client *immunity.ExchangeClient
}

// hubView abstracts how the scenario observes fleet state: the
// in-process hub(s) directly, or wire status requests against external
// daemons. Multi-hub views report the cluster-wide floor: armedCount is
// the minimum across hubs (a signature is only fleet-armed once every
// hub installed it), provenance merges per key with the owner's full
// record winning, batching sums.
type hubView interface {
	armedCount() (int, error)
	provenance() ([]immunity.Provenance, error)
	batching() (batches, sigs uint64)
}

// mergeProvenance folds per-hub provenance into the cluster view: one
// record per key, the owner's (the one carrying the confirmation set,
// or failing that the highest confirmation count) winning.
func mergeProvenance(views ...[]immunity.Provenance) []immunity.Provenance {
	var order []string
	best := make(map[string]immunity.Provenance)
	for _, view := range views {
		for _, p := range view {
			old, ok := best[p.Key]
			if !ok {
				order = append(order, p.Key)
				best[p.Key] = p
				continue
			}
			if len(p.ConfirmedBy) > len(old.ConfirmedBy) || p.Confirmations > old.Confirmations {
				best[p.Key] = p
			}
		}
	}
	out := make([]immunity.Provenance, 0, len(order))
	for _, key := range order {
		out = append(out, best[key])
	}
	return out
}

// localView reads one or more in-process hubs.
type localView struct{ hubs []*immunity.Exchange }

func (v localView) armedCount() (int, error) {
	minArmed := v.hubs[0].ArmedCount()
	for _, hub := range v.hubs[1:] {
		if n := hub.ArmedCount(); n < minArmed {
			minArmed = n
		}
	}
	return minArmed, nil
}

func (v localView) provenance() ([]immunity.Provenance, error) {
	views := make([][]immunity.Provenance, len(v.hubs))
	for i, hub := range v.hubs {
		views[i] = hub.Provenance()
	}
	return mergeProvenance(views...), nil
}

func (v localView) batching() (uint64, uint64) {
	var batches, sigs uint64
	for _, hub := range v.hubs {
		st := hub.Stats()
		batches += st.DeltaBatches
		sigs += st.DeltaSignatures
	}
	return batches, sigs
}

// statusView polls external daemons over the wire protocol.
type statusView struct {
	addrs    []string
	timeout  time.Duration
	dialOpts []immunity.TCPOption
}

func (v statusView) statuses() ([]wire.Status, error) {
	out := make([]wire.Status, len(v.addrs))
	for i, addr := range v.addrs {
		st, err := immunity.FetchStatus(addr, v.timeout, v.dialOpts...)
		if err != nil {
			return nil, fmt.Errorf("hub %s: %w", addr, err)
		}
		out[i] = st
	}
	return out, nil
}

func (v statusView) armedCount() (int, error) {
	sts, err := v.statuses()
	if err != nil {
		return 0, err
	}
	minArmed := int(sts[0].Epoch)
	for _, st := range sts[1:] {
		if n := int(st.Epoch); n < minArmed {
			minArmed = n
		}
	}
	return minArmed, nil
}

func (v statusView) provenance() ([]immunity.Provenance, error) {
	sts, err := v.statuses()
	if err != nil {
		return nil, err
	}
	views := make([][]immunity.Provenance, 0, len(sts))
	for _, st := range sts {
		view := make([]immunity.Provenance, 0, len(st.Provenance))
		for _, p := range st.Provenance {
			kind, err := wire.ParseKind(p.Kind)
			if err != nil {
				return nil, fmt.Errorf("daemon status (newer protocol?): %w", err)
			}
			view = append(view, immunity.Provenance{
				Key:           p.Key,
				Kind:          kind,
				FirstSeen:     p.FirstSeen,
				Confirmations: p.Confirmations,
				ConfirmedBy:   p.ConfirmedBy,
				Armed:         p.Armed,
				Owner:         p.Owner,
			})
		}
		views = append(views, view)
	}
	return mergeProvenance(views...), nil
}

func (v statusView) batching() (uint64, uint64) {
	sts, err := v.statuses()
	if err != nil {
		return 0, 0
	}
	var batches, sigs uint64
	for _, st := range sts {
		batches += st.Batching.Batches
		sigs += st.Batching.Signatures
	}
	return batches, sigs
}

// RunFleetImmunity executes the scenario: fork all live processes on all
// phones, inject the deadlock on ConfirmThreshold phones one at a time,
// verify the gating after the first detection, and measure the
// propagation latencies. The phones reach the exchange through the
// configured transport; loopback and TCP run the identical wire
// protocol, so the arming decisions must match across them (the
// equivalence test in the package asserts it).
func RunFleetImmunity(cfg FleetImmunityConfig) (FleetImmunityResult, error) {
	if err := cfg.validate(); err != nil {
		return FleetImmunityResult{}, err
	}
	res := FleetImmunityResult{Config: cfg}
	key := buggyKey()

	// Hub topology and per-phone transports by mode. Phones attach
	// round-robin across deviceTransports — a single hub is the
	// degenerate one-element case.
	var (
		deviceTransports []immunity.Transport
		view             hubView
	)
	switch {
	case cfg.Dial != "":
		var addrs []string
		for _, a := range strings.Split(cfg.Dial, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return res, fmt.Errorf("fleet immunity: no address in dial list %q", cfg.Dial)
		}
		res.Transport = "client:" + strings.Join(addrs, ",")
		var dialOpts []immunity.TCPOption
		if cfg.TLS != nil {
			res.Transport = "client+tls:" + strings.Join(addrs, ",")
			dialOpts = append(dialOpts, immunity.WithDialTLS(cfg.TLS))
		}
		for _, addr := range addrs {
			deviceTransports = append(deviceTransports, immunity.NewTCPTransport(addr, dialOpts...))
		}
		view = statusView{addrs: addrs, timeout: cfg.Timeout, dialOpts: dialOpts}
		// An external daemon carries state across runs. If it already
		// armed this scenario's signature (an earlier -connect run, or a
		// -provenance store from one), the injected deadlock would be
		// avoided instead of detected and the run would time out with a
		// misleading error — fail up front with the real cause.
		if provs, err := view.provenance(); err == nil {
			for _, p := range provs {
				if p.Key == key && p.Armed {
					return res, fmt.Errorf("fleet immunity: daemon at %s already has this scenario's signature armed (stale state from an earlier run?) — restart it with a fresh provenance store", cfg.Dial)
				}
			}
		}
	default:
		hubCount := cfg.Hubs
		if hubCount < 1 {
			hubCount = 1
		}
		useTCP := cfg.Transport == TransportTCP
		res.Transport = string(TransportLoopback)
		if useTCP {
			res.Transport = string(TransportTCP)
		}
		if hubCount > 1 {
			res.Transport = fmt.Sprintf("cluster(%d)+%s", hubCount, res.Transport)
		}
		var hubOpts []immunity.ExchangeOption
		if cfg.Metrics != nil {
			hubOpts = append(hubOpts, immunity.WithMetricsRegistry(cfg.Metrics))
		}
		hubs := make([]*immunity.Exchange, hubCount)
		addrs := make([]string, hubCount)
		for i := range hubs {
			hub, err := immunity.NewExchange(cfg.ConfirmThreshold, hubOpts...)
			if err != nil {
				return res, fmt.Errorf("fleet immunity: %w", err)
			}
			defer hub.Close()
			hubs[i] = hub
			if useTCP {
				srv, err := immunity.ServeTCP(hub, "127.0.0.1:0")
				if err != nil {
					return res, fmt.Errorf("fleet immunity: %w", err)
				}
				defer srv.Close()
				addrs[i] = srv.Addr()
			}
		}
		// Transport to hub j, as seen from anywhere in this process.
		hubTransport := func(j int) immunity.Transport {
			if useTCP {
				return immunity.NewTCPTransport(addrs[j])
			}
			return immunity.NewLoopback(hubs[j])
		}
		if hubCount > 1 {
			for i := range hubs {
				var peers []cluster.Member
				for j := range hubs {
					if j != i {
						peers = append(peers, cluster.Member{ID: fmt.Sprintf("hub%d", j), Transport: hubTransport(j)})
					}
				}
				node, err := cluster.New(cluster.Config{Self: fmt.Sprintf("hub%d", i), Hub: hubs[i], Peers: peers})
				if err != nil {
					return res, fmt.Errorf("fleet immunity: %w", err)
				}
				defer node.Close()
			}
		}
		for i := range hubs {
			deviceTransports = append(deviceTransports, hubTransport(i))
		}
		view = localView{hubs}
	}

	phones := make([]*immunityPhone, cfg.Phones)
	for i := range phones {
		svc, err := immunity.NewService(fmt.Sprintf("phone%d", i), core.NewMemHistory())
		if err != nil {
			return res, fmt.Errorf("fleet immunity: %w", err)
		}
		ph := &immunityPhone{svc: svc}
		ph.zygote = vm.NewZygote(vm.WithDimmunix(true), vm.WithSignatureBus(svc))
		defer ph.zygote.KillAll()
		defer svc.Close()
		for j := 0; j < cfg.ProcsPerPhone; j++ {
			p, err := ph.zygote.Fork(fmt.Sprintf("com.example.app%d", j))
			if err != nil {
				return res, fmt.Errorf("fleet immunity: %w", err)
			}
			ph.procs = append(ph.procs, p)
		}
		var connOpts []immunity.ClientOption
		if cfg.Token != "" {
			connOpts = append(connOpts, immunity.WithClientToken(cfg.Token))
		}
		client, err := immunity.Connect(deviceTransports[i%len(deviceTransports)], svc.Name(), svc, connOpts...)
		if err != nil {
			return res, fmt.Errorf("fleet immunity: %w", err)
		}
		ph.client = client
		defer client.Close()
		phones[i] = ph
	}

	// waitUntil polls cond at microsecond-ish granularity — except in
	// client mode, where cond may open a status connection to the daemon
	// per call: there the poll backs off to milliseconds so a slow (or
	// hung) daemon sees hundreds of probes, not a hundred-thousand-socket
	// connection storm.
	poll := 20 * time.Microsecond
	if cfg.Dial != "" {
		poll = 5 * time.Millisecond
	}
	waitUntil := func(what string, cond func() bool) (time.Time, error) {
		deadline := time.Now().Add(cfg.Timeout)
		for {
			if cond() {
				return time.Now(), nil
			}
			if time.Now().After(deadline) {
				return time.Time{}, fmt.Errorf("fleet immunity: timed out waiting for %s", what)
			}
			time.Sleep(poll)
		}
	}

	// detect triggers the deadlock on phone i and returns the moment its
	// service accepted the signature.
	detect := func(i int) (time.Time, error) {
		epochBefore := phones[i].svc.Epoch()
		if err := injectDeadlock(phones[i].zygote); err != nil {
			return time.Time{}, err
		}
		return waitUntil(fmt.Sprintf("detection on phone%d", i),
			func() bool { return phones[i].svc.Epoch() > epochBefore })
	}

	// First detection: on-device propagation on phone 0.
	tDetect0, err := detect(0)
	if err != nil {
		return res, err
	}
	tArmedDevice, err := waitUntil("phone0 processes armed", func() bool {
		for _, p := range phones[0].procs {
			if !armedWith(p, key) {
				return false
			}
		}
		return true
	})
	if err != nil {
		return res, err
	}
	res.DeviceImmunity = tArmedDevice.Sub(tDetect0)

	// Gating check: below the threshold, no remote process may be armed.
	// Give propagation a real chance to misbehave before sampling.
	if cfg.ConfirmThreshold > 1 {
		time.Sleep(20 * time.Millisecond)
		for _, ph := range phones[1:] {
			for _, p := range ph.procs {
				res.RemoteProcsSampled++
				if armedWith(p, key) {
					res.RemoteArmedBeforeThreshold++
				}
			}
		}
	}

	// Remaining confirmations, one phone at a time.
	tDetectLast := tDetect0
	for i := 1; i < cfg.ConfirmThreshold; i++ {
		if tDetectLast, err = detect(i); err != nil {
			return res, err
		}
	}

	var lastStatusErr error
	tArm, err := waitUntil("exchange arming", func() bool {
		n, err := view.armedCount()
		if err != nil {
			lastStatusErr = err
			return false
		}
		return n >= 1
	})
	if err != nil {
		if lastStatusErr != nil {
			// A dead daemon must not masquerade as a gating failure.
			return res, fmt.Errorf("%w (last status error: %v)", err, lastStatusErr)
		}
		return res, err
	}
	res.FleetArm = tArm.Sub(tDetectLast)

	tAll, err := waitUntil("all fleet processes armed", func() bool {
		for _, ph := range phones {
			for _, p := range ph.procs {
				if !armedWith(p, key) {
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return res, err
	}
	res.FleetImmunity = tAll.Sub(tDetectLast)
	cfg.Metrics.Histogram("immunity_propagation_device_seconds",
		"First detection to every live process on the detecting phone armed.",
		metrics.DurationBuckets()).ObserveDuration(res.DeviceImmunity)
	cfg.Metrics.Histogram("immunity_propagation_fleet_seconds",
		"Threshold-completing detection to the last process on the last phone armed.",
		metrics.DurationBuckets()).ObserveDuration(res.FleetImmunity)
	if res.Provenance, err = view.provenance(); err != nil {
		return res, fmt.Errorf("fleet immunity: %w", err)
	}
	res.DeltaBatches, res.DeltaSignatures = view.batching()
	return res, nil
}

// FormatFleetImmunity renders a fleet immunity result for the CLI.
func FormatFleetImmunity(res FleetImmunityResult) string {
	cfg := res.Config
	out := fmt.Sprintf("fleet immunity: %d phones × %d live procs, confirm-before-arm threshold %d, transport %s\n",
		cfg.Phones, cfg.ProcsPerPhone, cfg.ConfirmThreshold, res.Transport)
	out += fmt.Sprintf("  on-device immunity   %12s  (detection → all %d procs on the detecting phone armed, no restart)\n",
		res.DeviceImmunity.Round(time.Microsecond), cfg.ProcsPerPhone)
	if cfg.ConfirmThreshold > 1 {
		out += fmt.Sprintf("  threshold gating     %6d/%d remote procs armed below %d confirmations (want 0)\n",
			res.RemoteArmedBeforeThreshold, res.RemoteProcsSampled, cfg.ConfirmThreshold)
	}
	out += fmt.Sprintf("  fleet arm            %12s  (last confirming detection → exchange armed)\n",
		res.FleetArm.Round(time.Microsecond))
	out += fmt.Sprintf("  fleet immunity       %12s  (last confirming detection → last of %d procs on %d phones armed)\n",
		res.FleetImmunity.Round(time.Microsecond), cfg.Phones*cfg.ProcsPerPhone, cfg.Phones)
	if res.DeltaBatches > 0 {
		out += fmt.Sprintf("  delta batching       %6d signatures in %d pushes\n", res.DeltaSignatures, res.DeltaBatches)
	}
	out += "provenance:\n"
	for _, prov := range res.Provenance {
		out += fmt.Sprintf("  %s first-seen=%s confirms=%d %v armed=%v\n",
			prov.Key, prov.FirstSeen, prov.Confirmations, prov.ConfirmedBy, prov.Armed)
	}
	return out
}

// PropagationResult reports on-device publish→armed latency.
type PropagationResult struct {
	// Procs is the number of live subscriber processes.
	Procs int
	// Sigs is how many signatures were published.
	Sigs int
	// Avg and Max are per-signature latencies from Publish returning to
	// every process armed.
	Avg, Max time.Duration
	// P50, P90, and P99 are percentiles over the same per-signature
	// latencies — the machine-readable trajectory BENCH_wire.json tracks.
	P50, P90, P99 time.Duration
	// TCP marks the cross-device variant (publish on one phone, armed
	// processes on another, over the TCP exchange).
	TCP bool
	// Auth marks the authenticated cross-device variant: the same wire
	// path under TLS with token-authenticated hellos.
	Auth bool
}

// fillPercentiles computes P50/P90/P99 from the per-signature latency
// samples (lats is sorted in place).
func (res *PropagationResult) fillPercentiles(lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	res.P50, res.P90, res.P99 = at(0.50), at(0.90), at(0.99)
}

// propagationSig builds the i-th synthetic benchmark signature (hot site
// paired with a cold never-executed one, as in the §5 methodology).
func propagationSig(i int) *core.Signature {
	hot := core.Frame{Class: "com.bench.Prop", Method: "hot", Line: i}
	cold := core.Frame{Class: "com.bench.Prop", Method: "neverExecuted", Line: 100000 + i}
	return &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{hot}, Inner: core.CallStack{hot}},
			{Outer: core.CallStack{cold}, Inner: core.CallStack{cold}},
		},
	}
}

// PropagationLatency measures the on-device tier in isolation: one
// service, procs live processes, sigs sequential publishes, each timed
// from Publish to the moment every process has hot-installed it. It is
// the CLI twin of BenchmarkPropagation.
func PropagationLatency(procs, sigs int) (PropagationResult, error) {
	if procs < 1 || sigs < 1 {
		return PropagationResult{}, fmt.Errorf("propagation: need >= 1 proc and >= 1 sig, got %d/%d", procs, sigs)
	}
	svc, err := immunity.NewService("bench", nil)
	if err != nil {
		return PropagationResult{}, err
	}
	defer svc.Close()
	z := vm.NewZygote(vm.WithDimmunix(true), vm.WithSignatureBus(svc))
	defer z.KillAll()
	ps := make([]*vm.Process, procs)
	for i := range ps {
		if ps[i], err = z.Fork(fmt.Sprintf("app%d", i)); err != nil {
			return PropagationResult{}, err
		}
	}

	res := PropagationResult{Procs: procs, Sigs: sigs}
	var total time.Duration
	lats := make([]time.Duration, 0, sigs)
	for i := 0; i < sigs; i++ {
		want := i + 1
		start := time.Now()
		if _, _, err := svc.Publish("bench", propagationSig(i)); err != nil {
			return res, err
		}
		if err := waitArmedCount(ps, want, 10*time.Second); err != nil {
			return res, fmt.Errorf("propagation: signature %d: %w", i, err)
		}
		lat := time.Since(start)
		total += lat
		lats = append(lats, lat)
		if lat > res.Max {
			res.Max = lat
		}
	}
	res.Avg = total / time.Duration(sigs)
	res.fillPercentiles(lats)
	return res, nil
}

// waitArmedCount spins until every process's history holds at least want
// signatures, yielding so the delivery goroutines get the (possibly
// single) CPU instead of waiting out a preemption slice. Bounded: a
// process that can never arm (died, delivery failed) returns an error
// instead of pinning the CPU forever.
func waitArmedCount(ps []*vm.Process, want int, timeout time.Duration) error {
	return waitArmedCountWith(ps, want, timeout, runtime.Gosched)
}

// waitArmedCountWith polls until every process holds want signatures,
// calling wait between polls.
func waitArmedCountWith(ps []*vm.Process, want int, timeout time.Duration, wait func()) error {
	deadline := time.Now().Add(timeout)
	for {
		armed := true
		for _, p := range ps {
			if p.Dimmunix().HistorySize() < want {
				armed = false
				break
			}
		}
		if armed {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %d signatures in all %d processes", want, len(ps))
		}
		wait()
	}
}

// waitArmedCountSleeping is waitArmedCount for the networked tier: it
// parks between polls instead of spinning with Gosched. A Gosched spin
// loop on a single-CPU box keeps the P busy, so socket readiness only
// surfaces on sysmon's ~10ms netpoll sweeps and every wire hop costs
// tens of milliseconds; sleeping parks the P and lets the netpoller
// wake the read goroutine immediately.
func waitArmedCountSleeping(ps []*vm.Process, want int, timeout time.Duration) error {
	return waitArmedCountWith(ps, want, timeout, func() { time.Sleep(20 * time.Microsecond) })
}

// FormatPropagation renders a propagation latency result for the CLI.
func FormatPropagation(res PropagationResult) string {
	tier := "on-device"
	if res.TCP {
		tier = "cross-device over TCP"
	}
	if res.Auth {
		tier = "cross-device over TLS+token auth"
	}
	return fmt.Sprintf("propagation (%s): %d live procs, %d signatures: avg %s, p50 %s, p99 %s, max %s publish→all-armed\n",
		tier, res.Procs, res.Sigs, res.Avg.Round(100*time.Nanosecond), res.P50.Round(100*time.Nanosecond),
		res.P99.Round(100*time.Nanosecond), res.Max.Round(100*time.Nanosecond))
}

// PropagationLatencyTCP measures the cross-device tier over real
// sockets: a publisher device and a subscriber device (procs live
// processes) joined by a threshold-1 TCP exchange; each publish is timed
// from the publisher's Service accepting it to every process on the
// *other* phone hot-installing it — detection on one phone to immunity
// on another, through the full wire path.
func PropagationLatencyTCP(procs, sigs int) (PropagationResult, error) {
	return propagationTCP(procs, sigs, false)
}

// PropagationLatencyTCPAuth is PropagationLatencyTCP with the full
// trust fabric turned on: TLS on the wire (an in-memory dev CA, server
// cert verified by the devices) and token-authenticated hellos. It is
// the bench guard's authenticated tier — the handshake plus
// record-layer cost must stay within the same order as plaintext.
func PropagationLatencyTCPAuth(procs, sigs int) (PropagationResult, error) {
	return propagationTCP(procs, sigs, true)
}

func propagationTCP(procs, sigs int, authOn bool) (PropagationResult, error) {
	if procs < 1 || sigs < 1 {
		return PropagationResult{}, fmt.Errorf("propagation: need >= 1 proc and >= 1 sig, got %d/%d", procs, sigs)
	}
	var (
		hubOpts    []immunity.ExchangeOption
		serveOpts  []immunity.ServeOption
		dialOpts   []immunity.TCPOption
		clientOpts []immunity.ClientOption
	)
	if authOn {
		ca, err := auth.NewCA("bench-ca")
		if err != nil {
			return PropagationResult{}, err
		}
		cert, err := ca.IssueTLS("bench-hub", nil)
		if err != nil {
			return PropagationResult{}, err
		}
		key := []byte("bench-token-key")
		token, err := auth.Mint(key, auth.Claims{Device: auth.WildcardDevice})
		if err != nil {
			return PropagationResult{}, err
		}
		hubOpts = append(hubOpts, immunity.WithAuthVerifier(auth.NewStatic(key)))
		serveOpts = append(serveOpts, immunity.WithServeTLS(auth.ServerConfig(cert, nil)))
		dialOpts = append(dialOpts, immunity.WithDialTLS(auth.ClientConfig(ca.Pool(), "")))
		clientOpts = append(clientOpts, immunity.WithClientToken(token))
	}
	hub, err := immunity.NewExchange(1, hubOpts...)
	if err != nil {
		return PropagationResult{}, err
	}
	defer hub.Close()
	srv, err := immunity.ServeTCP(hub, "127.0.0.1:0", serveOpts...)
	if err != nil {
		return PropagationResult{}, err
	}
	defer srv.Close()
	transport := immunity.NewTCPTransport(srv.Addr(), dialOpts...)

	pubSvc, err := immunity.NewService("publisher", nil)
	if err != nil {
		return PropagationResult{}, err
	}
	defer pubSvc.Close()
	pubClient, err := immunity.Connect(transport, "publisher", pubSvc, clientOpts...)
	if err != nil {
		return PropagationResult{}, err
	}
	defer pubClient.Close()

	subSvc, err := immunity.NewService("subscriber", nil)
	if err != nil {
		return PropagationResult{}, err
	}
	defer subSvc.Close()
	subClient, err := immunity.Connect(transport, "subscriber", subSvc, clientOpts...)
	if err != nil {
		return PropagationResult{}, err
	}
	defer subClient.Close()
	z := vm.NewZygote(vm.WithDimmunix(true), vm.WithSignatureBus(subSvc))
	defer z.KillAll()
	ps := make([]*vm.Process, procs)
	for i := range ps {
		if ps[i], err = z.Fork(fmt.Sprintf("app%d", i)); err != nil {
			return PropagationResult{}, err
		}
	}

	res := PropagationResult{Procs: procs, Sigs: sigs, TCP: true, Auth: authOn}
	var total time.Duration
	lats := make([]time.Duration, 0, sigs)
	for i := 0; i < sigs; i++ {
		want := i + 1
		start := time.Now()
		if _, _, err := pubSvc.Publish("bench", propagationSig(i)); err != nil {
			return res, err
		}
		if err := waitArmedCountSleeping(ps, want, 10*time.Second); err != nil {
			return res, fmt.Errorf("tcp propagation: signature %d: %w", i, err)
		}
		lat := time.Since(start)
		total += lat
		lats = append(lats, lat)
		if lat > res.Max {
			res.Max = lat
		}
	}
	res.Avg = total / time.Duration(sigs)
	res.fillPercentiles(lats)
	return res, nil
}
