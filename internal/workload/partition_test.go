package workload

import (
	"testing"
	"time"
)

// TestRunPartitionStormSymmetric is the quorum-lease acceptance test: a
// symmetric split cuts the minority hub off mid-storm, its lease dies,
// every threshold crossing on it parks (zero arms on the minority while
// the majority promotes its keys — the double-arm window stays closed),
// and after the heal every hub converges to the single-hub reference
// with parked decisions drained in bounded time.
func TestRunPartitionStormSymmetric(t *testing.T) {
	cfg := DefaultPartitionConfig()
	cfg.FailoverAfter = 50 * time.Millisecond
	res, err := RunPartitionStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed != cfg.Sigs {
		t.Fatalf("armed %d/%d", res.Armed, cfg.Sigs)
	}
	if res.MinorityKeys == 0 {
		t.Fatal("minority owned no signatures — the split exercised nothing")
	}
	if res.MinoritySplitArms != 0 {
		t.Fatalf("minority armed %d signatures during the split", res.MinoritySplitArms)
	}
	if res.ParkedPeak == 0 {
		t.Fatal("minority parked nothing — the lease gate never engaged")
	}
	if res.LeaseLost == 0 {
		t.Fatal("minority never lost its lease")
	}
	if res.ParkClear <= 0 || res.ParkClear > cfg.Timeout {
		t.Fatalf("park drain took %v", res.ParkClear)
	}
	t.Logf("\n%s", FormatPartition(res))
}

// TestRunPartitionStormAsymmetric: only the minority's outbound word is
// cut — it still hears its peers, but its lease renewals, acks, and
// broadcasts vanish. The same contract must hold: lease lost, crossings
// parked, majority promotes, heal reconverges.
func TestRunPartitionStormAsymmetric(t *testing.T) {
	cfg := DefaultPartitionConfig()
	cfg.Scenario = ScenarioAsymmetric
	cfg.FailoverAfter = 50 * time.Millisecond
	res, err := RunPartitionStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinoritySplitArms != 0 {
		t.Fatalf("minority armed %d signatures during the one-way split", res.MinoritySplitArms)
	}
	if res.ParkedPeak == 0 || res.LeaseLost == 0 {
		t.Fatalf("one-way split never engaged the lease gate (parked %d, lost %d)", res.ParkedPeak, res.LeaseLost)
	}
	t.Logf("\n%s", FormatPartition(res))
}

// TestRunPartitionStormFlap: a link blinking faster than the suspicion
// window must not condemn anyone — indirect probes through the third
// hub keep every member alive, no lease is lost, and the storm arms as
// if the link were clean.
func TestRunPartitionStormFlap(t *testing.T) {
	cfg := DefaultPartitionConfig()
	cfg.Scenario = ScenarioFlap
	cfg.FailoverAfter = 50 * time.Millisecond
	res, err := RunPartitionStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed != cfg.Sigs {
		t.Fatalf("armed %d/%d", res.Armed, cfg.Sigs)
	}
	t.Logf("\n%s", FormatPartition(res))
}

// TestRunPartitionStormNoLease is the regression baseline for the
// pre-lease merge semantics: with leases off, BOTH sides arm during a
// symmetric split (the minority at least its own slice), and the
// post-heal fencing/union merge still converges every hub to the
// single-hub reference with per-hub epoch == armed count.
func TestRunPartitionStormNoLease(t *testing.T) {
	cfg := DefaultPartitionConfig()
	cfg.NoLease = true
	cfg.FailoverAfter = 50 * time.Millisecond
	res, err := RunPartitionStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Armed != cfg.Sigs {
		t.Fatalf("armed %d/%d", res.Armed, cfg.Sigs)
	}
	if res.MinoritySplitArms < res.MinorityKeys {
		t.Fatalf("minority armed %d during the split, want at least its %d owned keys", res.MinoritySplitArms, res.MinorityKeys)
	}
	if res.ParkedPeak != 0 {
		t.Fatalf("NoLease run parked %d decisions", res.ParkedPeak)
	}
	t.Logf("\n%s", FormatPartition(res))
}

// TestPartitionConfigValidate pins the config error paths.
func TestPartitionConfigValidate(t *testing.T) {
	base := DefaultPartitionConfig()
	bad := []PartitionConfig{
		{Devices: 2, Sigs: 1, ConfirmThreshold: 3, Hubs: 3, Scenario: ScenarioSymmetric, Timeout: time.Second},
		{Devices: 4, Sigs: 0, ConfirmThreshold: 2, Hubs: 3, Scenario: ScenarioSymmetric, Timeout: time.Second},
		{Devices: 4, Sigs: 1, ConfirmThreshold: 2, Hubs: 2, Scenario: ScenarioSymmetric, Timeout: time.Second},
		{Devices: 4, Sigs: 1, ConfirmThreshold: 2, Hubs: 3, Scenario: "thirdsplit", Timeout: time.Second},
		{Devices: 4, Sigs: 1, ConfirmThreshold: 2, Hubs: 3, Scenario: ScenarioSymmetric},
		// The only post-cut reporter (device 2) attaches to the minority
		// hub, leaving the majority side unable to finish arming.
		{Devices: 3, Sigs: 1, ConfirmThreshold: 3, Hubs: 3, Scenario: ScenarioSymmetric, Timeout: time.Second},
	}
	for i, cfg := range bad {
		if _, err := RunPartitionStorm(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := base.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
