package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Power attribution model for experiment E4. Android's battery stats
// attribute consumption to components (display, cell radio, wifi, idle)
// and to "Android applications and the OS" via CPU time. The paper reports
// that with and without Dimmunix the apps+OS share stays at 14%: the 4-5%
// CPU overhead is far too small to move a share that is itself a fraction
// of a display-dominated budget. The model reproduces that arithmetic with
// component drains in the range published for the Nexus One.

// PowerModel holds component drain rates in milliwatts.
type PowerModel struct {
	// DisplayMW is the screen's drain while on (Nexus One AMOLED at
	// typical brightness: ~400mW).
	DisplayMW float64
	// RadioMW is the cellular radio's average drain during use.
	RadioMW float64
	// WifiMW is the WiFi average drain.
	WifiMW float64
	// IdleMW is the baseline system drain.
	IdleMW float64
	// CPUActiveMW is the additional drain per second of busy CPU.
	CPUActiveMW float64
}

// DefaultPowerModel returns Nexus One-like drains.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		DisplayMW:   400,
		RadioMW:     250,
		WifiMW:      120,
		IdleMW:      35,
		CPUActiveMW: 340,
	}
}

// PowerComponent is one attributed consumer.
type PowerComponent struct {
	Name string
	// EnergyMJ is the consumed energy in millijoules.
	EnergyMJ float64
	// SharePct is the component's percentage of the total.
	SharePct float64
}

// PowerReport is the simulated battery-stats screen.
type PowerReport struct {
	// Wall is the usage interval length.
	Wall time.Duration
	// TotalMJ is total consumed energy.
	TotalMJ float64
	// Components is the per-consumer breakdown, largest first.
	Components []PowerComponent
	// AppsAndOSPct is the share attributed to applications and the OS —
	// the figure the paper compares across builds.
	AppsAndOSPct float64
}

// Attribute computes the battery report for a usage interval in which the
// CPU was busy for cpuBusy (summed across apps and the OS, including any
// Dimmunix overhead).
func (pm PowerModel) Attribute(wall, cpuBusy time.Duration) PowerReport {
	if cpuBusy > wall {
		cpuBusy = wall // single-core device: busy time is capped by wall time
	}
	w := wall.Seconds()
	comps := []PowerComponent{
		{Name: "display", EnergyMJ: pm.DisplayMW * w},
		{Name: "cell-radio", EnergyMJ: pm.RadioMW * w},
		{Name: "wifi", EnergyMJ: pm.WifiMW * w},
		{Name: "idle", EnergyMJ: pm.IdleMW * w},
		{Name: "apps+os", EnergyMJ: pm.CPUActiveMW * cpuBusy.Seconds()},
	}
	var total float64
	for _, c := range comps {
		total += c.EnergyMJ
	}
	report := PowerReport{Wall: wall, TotalMJ: total}
	for _, c := range comps {
		if total > 0 {
			c.SharePct = c.EnergyMJ / total * 100
		}
		report.Components = append(report.Components, c)
		if c.Name == "apps+os" {
			report.AppsAndOSPct = c.SharePct
		}
	}
	sort.Slice(report.Components, func(i, j int) bool {
		return report.Components[i].EnergyMJ > report.Components[j].EnergyMJ
	})
	return report
}

// String renders the report like a battery-stats screen.
func (r PowerReport) String() string {
	s := fmt.Sprintf("battery usage over %v (total %.0f mJ):\n", r.Wall.Round(time.Second), r.TotalMJ)
	for _, c := range r.Components {
		s += fmt.Sprintf("  %-11s %5.1f%%\n", c.Name, c.SharePct)
	}
	return s
}
