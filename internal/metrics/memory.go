package metrics

import "fmt"

// Memory accounting for experiment E5 (Table 1's memory columns and the
// overall 4% claim). The vanilla footprint of each application is modeled
// from the paper's own measurements (we have no phone to run procrank on);
// the Dimmunix-attributable bytes are *measured* from the live data
// structures: interned positions, RAG nodes, queue entries and signatures
// in the core, plus fattened monitors, per-thread stack buffers and site
// caches in the VM.

const bytesPerMB = 1024 * 1024

// AppMemory is one application row of Table 1's memory columns.
type AppMemory struct {
	// Name is the application name.
	Name string
	// VanillaMB is the modeled footprint without Dimmunix.
	VanillaMB float64
	// CoreBytes is the measured footprint of the app process's Dimmunix
	// core structures.
	CoreBytes int64
	// VMBytes is the measured footprint of Dimmunix-attributable VM
	// structures (extra fattened monitors, stack buffers, RAG nodes).
	VMBytes int64
}

// DimmunixMB returns the total footprint with Dimmunix enabled.
func (a AppMemory) DimmunixMB() float64 {
	return a.VanillaMB + float64(a.CoreBytes+a.VMBytes)/bytesPerMB
}

// OverheadPct returns the per-app memory overhead percentage (the paper
// reports 1.3–5.3% across the 8 applications).
func (a AppMemory) OverheadPct() float64 {
	if a.VanillaMB <= 0 {
		return 0
	}
	return (a.DimmunixMB() - a.VanillaMB) / a.VanillaMB * 100
}

// PlatformMemory aggregates all running applications against the device's
// RAM to reproduce the paper's overall figures: "the overall memory
// consumption is 52% for the Dimmunix-enabled Android OS, and 50% for the
// vanilla Android OS".
type PlatformMemory struct {
	// DeviceMB is the device RAM (Nexus One: 512 MB).
	DeviceMB float64
	// BaseOSMB is the OS footprint outside the profiled apps.
	BaseOSMB float64
	// Apps are the per-application rows.
	Apps []AppMemory
}

// VanillaUsedMB sums the vanilla footprints plus the OS base.
func (p PlatformMemory) VanillaUsedMB() float64 {
	total := p.BaseOSMB
	for _, a := range p.Apps {
		total += a.VanillaMB
	}
	return total
}

// DimmunixUsedMB sums the Dimmunix footprints plus the OS base.
func (p PlatformMemory) DimmunixUsedMB() float64 {
	total := p.BaseOSMB
	for _, a := range p.Apps {
		total += a.DimmunixMB()
	}
	return total
}

// VanillaPct returns vanilla memory utilization as a percentage of device
// RAM.
func (p PlatformMemory) VanillaPct() float64 {
	if p.DeviceMB <= 0 {
		return 0
	}
	return p.VanillaUsedMB() / p.DeviceMB * 100
}

// DimmunixPct returns Dimmunix memory utilization as a percentage of
// device RAM.
func (p PlatformMemory) DimmunixPct() float64 {
	if p.DeviceMB <= 0 {
		return 0
	}
	return p.DimmunixUsedMB() / p.DeviceMB * 100
}

// OverallOverheadPct returns the total memory overhead across all apps —
// the paper's "overall, for all the running applications, the memory
// overhead is 4%".
func (p PlatformMemory) OverallOverheadPct() float64 {
	van := 0.0
	dim := 0.0
	for _, a := range p.Apps {
		van += a.VanillaMB
		dim += a.DimmunixMB()
	}
	if van <= 0 {
		return 0
	}
	return (dim - van) / van * 100
}

// FormatMB renders a footprint like the paper's table ("15.8 MB").
func FormatMB(mb float64) string {
	return fmt.Sprintf("%.1f MB", mb)
}
