package metrics

import (
	"sync/atomic"
	"testing"
	"time"
)

// fixedClockMeter builds a meter with hand-placed samples.
func fixedClockMeter(samples []Sample) *Meter {
	m := NewMeter(func() uint64 { return 0 })
	m.samples = samples
	return m
}

func at(sec int) time.Time {
	return time.Date(2026, 6, 10, 0, 0, sec, 0, time.UTC)
}

func TestMeterRate(t *testing.T) {
	m := fixedClockMeter([]Sample{
		{At: at(0), Count: 0},
		{At: at(10), Count: 1000},
	})
	if got := m.Rate(); got != 100 {
		t.Errorf("Rate = %v, want 100", got)
	}
}

func TestMeterRateDegenerate(t *testing.T) {
	if got := fixedClockMeter(nil).Rate(); got != 0 {
		t.Errorf("empty Rate = %v, want 0", got)
	}
	one := fixedClockMeter([]Sample{{At: at(0), Count: 5}})
	if got := one.Rate(); got != 0 {
		t.Errorf("single-sample Rate = %v, want 0", got)
	}
	same := fixedClockMeter([]Sample{{At: at(0), Count: 5}, {At: at(0), Count: 9}})
	if got := same.Rate(); got != 0 {
		t.Errorf("zero-duration Rate = %v, want 0", got)
	}
}

func TestMeterPeakWindowSelectsBusiestInterval(t *testing.T) {
	// 1-second samples: slow (10/s), then a 3-second burst (100/s), then
	// slow again. The peak 3s window must find the burst.
	samples := []Sample{
		{At: at(0), Count: 0},
		{At: at(1), Count: 10},
		{At: at(2), Count: 20},
		{At: at(3), Count: 120},
		{At: at(4), Count: 220},
		{At: at(5), Count: 320},
		{At: at(6), Count: 330},
	}
	m := fixedClockMeter(samples)
	rate, start, end, ok := m.PeakWindow(3 * time.Second)
	if !ok {
		t.Fatal("PeakWindow found no window")
	}
	if rate != 100 {
		t.Errorf("peak rate = %v, want 100", rate)
	}
	if !start.Equal(at(2)) || !end.Equal(at(5)) {
		t.Errorf("peak window = [%v, %v], want [2s, 5s]", start, end)
	}
}

func TestMeterPeakWindowTooShort(t *testing.T) {
	m := fixedClockMeter([]Sample{
		{At: at(0), Count: 0},
		{At: at(1), Count: 10},
	})
	if _, _, _, ok := m.PeakWindow(30 * time.Second); ok {
		t.Error("PeakWindow must report ok=false when no window is wide enough")
	}
}

func TestMeterBackgroundSampling(t *testing.T) {
	var counter atomic.Uint64
	m := NewMeter(counter.Load)
	m.Start(5 * time.Millisecond)
	for i := 0; i < 50; i++ {
		counter.Add(10)
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	if len(m.Samples()) < 3 {
		t.Fatalf("collected %d samples, want >= 3", len(m.Samples()))
	}
	if r := m.Rate(); r <= 0 {
		t.Errorf("Rate = %v, want > 0", r)
	}
}

func TestFormatRate(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{309, "309"},
		{1952.4, "1,952"},
		{1143, "1,143"},
		{999.6, "1,000"},
		{0, "0"},
	}
	for _, tc := range tests {
		if got := FormatRate(tc.in); got != tc.want {
			t.Errorf("FormatRate(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestAppMemoryOverhead(t *testing.T) {
	a := AppMemory{Name: "Email", VanillaMB: 15.0, CoreBytes: 400 * 1024, VMBytes: 400 * 1024}
	want := 15.0 + 800.0/1024
	if got := a.DimmunixMB(); got < want-0.01 || got > want+0.01 {
		t.Errorf("DimmunixMB = %v, want ~%v", got, want)
	}
	if pct := a.OverheadPct(); pct < 5.0 || pct > 5.5 {
		t.Errorf("OverheadPct = %v, want ~5.2", pct)
	}
	if (AppMemory{}).OverheadPct() != 0 {
		t.Error("zero vanilla footprint must yield 0 overhead")
	}
}

func TestPlatformMemoryAggregates(t *testing.T) {
	p := PlatformMemory{
		DeviceMB: 512,
		BaseOSMB: 100,
		Apps: []AppMemory{
			{Name: "a", VanillaMB: 50, CoreBytes: bytesPerMB},      // 51 with dimmunix
			{Name: "b", VanillaMB: 100, CoreBytes: 3 * bytesPerMB}, // 103
		},
	}
	if got := p.VanillaUsedMB(); got != 250 {
		t.Errorf("VanillaUsedMB = %v, want 250", got)
	}
	if got := p.DimmunixUsedMB(); got != 254 {
		t.Errorf("DimmunixUsedMB = %v, want 254", got)
	}
	if got := p.VanillaPct(); got < 48.8 || got > 48.9 {
		t.Errorf("VanillaPct = %v", got)
	}
	// Overall overhead: (154-150)/150 = 2.67%.
	if got := p.OverallOverheadPct(); got < 2.6 || got > 2.7 {
		t.Errorf("OverallOverheadPct = %v, want ~2.67", got)
	}
}

func TestPowerAttributionArithmetic(t *testing.T) {
	pm := DefaultPowerModel()
	wall := 10 * time.Minute
	// ~37% CPU busy puts apps+os near the paper's 14%.
	busy := time.Duration(float64(wall) * 0.37)
	rep := pm.Attribute(wall, busy)
	if rep.AppsAndOSPct < 13 || rep.AppsAndOSPct > 15 {
		t.Errorf("apps+os share = %.1f%%, want ~14%%", rep.AppsAndOSPct)
	}
	// A 5% CPU overhead must not move the rounded share.
	repDim := pm.Attribute(wall, time.Duration(float64(busy)*1.05))
	if int(rep.AppsAndOSPct+0.5) != int(repDim.AppsAndOSPct+0.5) {
		t.Errorf("share moved: vanilla %.1f%% vs dimmunix %.1f%%", rep.AppsAndOSPct, repDim.AppsAndOSPct)
	}
	// Components must sum to ~100%.
	var sum float64
	for _, c := range rep.Components {
		sum += c.SharePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("component shares sum to %.2f%%", sum)
	}
	// Display dominates on this device.
	if rep.Components[0].Name != "display" {
		t.Errorf("largest component = %s, want display", rep.Components[0].Name)
	}
}

func TestPowerBusyCappedByWall(t *testing.T) {
	pm := DefaultPowerModel()
	rep := pm.Attribute(time.Second, 10*time.Second)
	capped := pm.Attribute(time.Second, time.Second)
	if rep.AppsAndOSPct != capped.AppsAndOSPct {
		t.Error("busy time must be capped at wall time (single core)")
	}
}
