// Package metrics provides the measurement substrate for the evaluation:
// windowed synchronization-throughput meters (Table 1's syncs/sec and the
// §5 microbenchmark), memory accounting (the 4% platform overhead), and a
// battery power model (the 14% attribution claim).
package metrics

import (
	"fmt"
	"sync"
	"time"
)

// Sample is one observation of a cumulative counter.
type Sample struct {
	At    time.Time
	Count uint64
}

// Meter samples a monotonically non-decreasing counter (e.g. a process's
// completed synchronizations) and answers rate queries over windows. The
// paper profiles each application for several minutes and then selects
// "the 30 seconds interval with the highest average synchronization
// throughput"; PeakWindow implements exactly that selection.
type Meter struct {
	source func() uint64

	mu      sync.Mutex
	samples []Sample

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewMeter creates a meter over the given cumulative counter.
func NewMeter(source func() uint64) *Meter {
	return &Meter{source: source}
}

// Observe records one sample now.
func (m *Meter) Observe() {
	m.observeAt(time.Now())
}

func (m *Meter) observeAt(at time.Time) {
	c := m.source()
	m.mu.Lock()
	m.samples = append(m.samples, Sample{At: at, Count: c})
	m.mu.Unlock()
}

// Start begins background sampling with the given period; Stop ends it.
// Start must not be called twice without an intervening Stop.
func (m *Meter) Start(period time.Duration) {
	m.stop = make(chan struct{})
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		m.Observe()
		for {
			select {
			case <-m.stop:
				m.Observe()
				return
			case <-ticker.C:
				m.Observe()
			}
		}
	}()
}

// Stop halts background sampling, recording one final sample.
func (m *Meter) Stop() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	m.wg.Wait()
	m.stop = nil
}

// Samples returns a copy of the recorded samples.
func (m *Meter) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Rate returns the overall average rate (events/sec) across all samples,
// or 0 with fewer than two samples.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.samples)
	if n < 2 {
		return 0
	}
	first, last := m.samples[0], m.samples[n-1]
	dt := last.At.Sub(first.At).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(last.Count-first.Count) / dt
}

// PeakWindow returns the highest average rate over any sample interval at
// least `width` long, and that interval's bounds. It returns ok=false when
// no interval of the required width exists.
func (m *Meter) PeakWindow(width time.Duration) (rate float64, start, end time.Time, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.samples)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dt := m.samples[j].At.Sub(m.samples[i].At)
			if dt < width {
				continue
			}
			r := float64(m.samples[j].Count-m.samples[i].Count) / dt.Seconds()
			if !ok || r > rate {
				rate, start, end, ok = r, m.samples[i].At, m.samples[j].At, true
			}
			break // longer windows from i only dilute the average
		}
	}
	return rate, start, end, ok
}

// FormatRate renders a rate the way the paper's tables do (integer
// syncs/sec with thousands separator).
func FormatRate(r float64) string {
	n := int64(r + 0.5)
	if n < 1000 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d,%03d", n/1000, n%1000)
}
