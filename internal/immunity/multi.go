package immunity

import (
	"errors"
	"sync"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// MultiTransport fans a device out over several hub transports — the
// addresses of a federated hub cluster. Every dial tries the backends
// in rotation starting after the last one that answered, so a device
// sticks to a healthy hub while it stays healthy and rolls to the next
// when it dies; the client's per-gen epoch map (hello `epochs`) makes
// the roam seamless, because whichever hub answers finds its own resume
// point in the hello. Combined with the cluster's per-signature
// ownership this means a device needs no knowledge of which hub owns
// what: it attaches anywhere, and the hubs route its reports.
type MultiTransport struct {
	ts []Transport

	mu   sync.Mutex
	next int
}

var _ Transport = (*MultiTransport)(nil)

// NewMultiTransport builds the failover transport over the given
// backends, tried in rotation.
func NewMultiTransport(ts ...Transport) *MultiTransport {
	return &MultiTransport{ts: append([]Transport{}, ts...)}
}

// Dial implements Transport: the first backend that answers wins. A
// permanent refusal from one backend is returned as-is (it is the hub
// telling this device to stop, not a routing failure).
func (m *MultiTransport) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	if len(m.ts) == 0 {
		return nil, errors.New("multi transport: no backends")
	}
	m.mu.Lock()
	start := m.next
	m.mu.Unlock()
	var lastErr error
	for i := 0; i < len(m.ts); i++ {
		idx := (start + i) % len(m.ts)
		sess, err := m.ts[idx].Dial(recv, down)
		if err == nil {
			m.mu.Lock()
			m.next = idx
			m.mu.Unlock()
			return sess, nil
		}
		lastErr = err
		var perm errPermanent
		if errors.As(err, &perm) {
			return nil, err
		}
	}
	return nil, lastErr
}
