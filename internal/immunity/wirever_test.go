package immunity

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// TestWireVersionMatrix: every (hub ceiling, client ceiling) pairing of
// the shipped versions negotiates the expected version over real TCP
// and still moves antibodies in both directions — a v2-pinned client
// interoperates with a v3 hub, a v3 client with a v2-pinned hub, and
// two unpinned ends land on the binary codec.
func TestWireVersionMatrix(t *testing.T) {
	cases := []struct {
		name                 string
		hubPin, clientPin    int // 0 = newest
		want                 int
	}{
		{"v6-hub_v6-client", 0, 0, 6},
		{"v4-hub_v4-client", 4, 4, 4},
		{"v3-hub_v2-client", 0, 2, 2},
		{"v3-hub_v1-client", 0, 1, 1},
		{"v2-hub_v3-client", 2, 0, 2},
		{"v2-hub_v2-client", 2, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hubOpts []ExchangeOption
			if tc.hubPin != 0 {
				hubOpts = append(hubOpts, WithWireCeiling(tc.hubPin))
			}
			hub := newTestHub(t, 1, hubOpts...)
			srv, err := ServeTCP(hub, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			svc, err := NewService("matrix-phone", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			proc, _ := attach(t, svc, "app")
			var clientOpts []ClientOption
			if tc.clientPin != 0 {
				clientOpts = append(clientOpts, WithClientWireCeiling(tc.clientPin))
			}
			client, err := Connect(NewTCPTransport(srv.Addr()), "matrix-phone", svc, clientOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			if got := client.WireVersion(); got != tc.want {
				t.Fatalf("negotiated v%d, want v%d", got, tc.want)
			}

			// Upward: the report arms at threshold 1 (framed at the
			// negotiated version — binary only on an unpinned pairing).
			if _, _, err := svc.Publish("local", testSig(7)); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "report armed the hub", func() bool { return hub.ArmedCount() == 1 })

			// Downward: a second device's arming must reach this one.
			svc2, err := NewService("matrix-phone2", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer svc2.Close()
			client2, err := Connect(NewTCPTransport(srv.Addr()), "matrix-phone2", svc2, clientOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer client2.Close()
			if _, _, err := svc2.Publish("local", testSig(8)); err != nil {
				t.Fatal(err)
			}
			key := testSig(8).Key()
			waitFor(t, "delta reached the first phone's live process", func() bool {
				return (&phoneSim{svc: svc, proc: proc}).armedOn(key)
			})
		})
	}
}

// TestWireVersionMatrixRefusals: pairings with no common version still
// refuse cleanly under the v3 ceiling plumbing.
func TestWireVersionMatrixRefusals(t *testing.T) {
	hub := newTestHub(t, 1)
	lb := NewLoopback(hub)
	svc, err := NewService("beyond", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// A "client" advertising only versions the hub does not speak.
	if _, err := Connect(futureVersionTransport{lb}, "beyond", svc); err == nil {
		t.Fatal("future-only version range accepted")
	}
}

// futureVersionTransport rewrites hellos to advertise only versions
// beyond the hub's ceiling.
type futureVersionTransport struct{ inner Transport }

func (f futureVersionTransport) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	s, err := f.inner.Dial(recv, down)
	if err != nil {
		return nil, err
	}
	return futureVersionSession{s}, nil
}

type futureVersionSession struct{ Session }

func (s futureVersionSession) Send(m wire.Message) error {
	if m.Type == wire.TypeHello {
		m.V = wire.Version + 1
		m.Hello.MinV = wire.Version + 1
		m.Hello.MaxV = wire.Version + 9
	}
	return s.Session.Send(m)
}

// TestMergeNeverMutatesSharedFrame: coalescing a queued broadcast with
// a later delta must build a fresh message — the Shared's message and
// its cached frames are concurrently handed to other sessions, and an
// in-place append would corrupt a frame already queued elsewhere.
func TestMergeNeverMutatesSharedFrame(t *testing.T) {
	sigA, sigB := wire.FromCore(testSig(1)), wire.FromCore(testSig(2))
	sh := wire.NewShared(wire.Message{Type: wire.TypeDelta,
		Delta: &wire.Delta{Epoch: 1, Sigs: []wire.Signature{sigA}}})
	frame, err := sh.Frame(wire.BinaryVersion)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), frame...)

	next := outMsg{m: wire.Message{Type: wire.TypeDelta,
		Delta: &wire.Delta{Epoch: 2, Sigs: []wire.Signature{sigB}}}}
	merged, ok := mergeOutMsgs(outMsg{shared: sh}, next)
	if !ok {
		t.Fatal("adjacent deltas did not merge")
	}
	if merged.shared != nil {
		t.Fatal("merged delivery still points at the shared frame")
	}
	if merged.m.Delta.Epoch != 2 || len(merged.m.Delta.Sigs) != 2 {
		t.Fatalf("bad merge: %+v", merged.m.Delta)
	}
	// The shared message and its cached frame are untouched.
	if got := sh.Msg(); len(got.Delta.Sigs) != 1 || got.Delta.Epoch != 1 {
		t.Fatalf("merge mutated the shared message: %+v", got.Delta)
	}
	after, err := sh.Frame(wire.BinaryVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("merge mutated the shared frame bytes")
	}
}

// TestBroadcastSupersedeRaceKeepsFramesIntact (-race gated like the
// whole package): encode-once frames are handed to every session's
// queue; a device redialing in a tight loop — superseding its own
// sessions while armings broadcast — must never corrupt a frame already
// queued to a stable session. The stable observer decodes every frame
// it receives and must end up with every armed signature, bit-exact.
func TestBroadcastSupersedeRaceKeepsFramesIntact(t *testing.T) {
	hub := newTestHub(t, 1)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Stable observer phone over real TCP (stream sessions share frames).
	obsSvc, err := NewService("observer", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer obsSvc.Close()
	obsProc, _ := attach(t, obsSvc, "app")
	obsClient, err := Connect(NewTCPTransport(srv.Addr()), "observer", obsSvc)
	if err != nil {
		t.Fatal(err)
	}
	defer obsClient.Close()

	// Flapper: redials under one device id as fast as it can, tearing
	// down the superseded sessions while broadcasts are in flight.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := NewTCPTransport(srv.Addr())
		for !stop.Load() {
			sess, err := tr.Dial(func(wire.Message) {}, func(error) {})
			if err != nil {
				continue
			}
			sess.Send(wire.Message{V: wire.MinVersion, Type: wire.TypeHello,
				Hello: &wire.Hello{Device: "flapper", MinV: wire.MinVersion, MaxV: wire.Version}})
			time.Sleep(200 * time.Microsecond)
			sess.Close()
		}
	}()

	// Publisher: arms a stream of signatures (threshold 1), each one an
	// encode-once broadcast to every live session.
	pubSvc, err := NewService("publisher", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pubSvc.Close()
	pubClient, err := Connect(NewTCPTransport(srv.Addr()), "publisher", pubSvc)
	if err != nil {
		t.Fatal(err)
	}
	defer pubClient.Close()

	const arms = 40
	for i := 0; i < arms; i++ {
		if _, _, err := pubSvc.Publish("local", testSig(100+i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	// Every armed signature must reach the stable observer uncorrupted:
	// a mutated shared frame would fail decode (killing the session) or
	// deliver a wrong signature key.
	obs := &phoneSim{svc: obsSvc, proc: obsProc}
	for i := 0; i < arms; i++ {
		key := testSig(100 + i).Key()
		waitFor(t, fmt.Sprintf("observer armed on sig %d", i), func() bool { return obs.armedOn(key) })
	}
	if got := obsClient.Reconnects(); got != 0 {
		t.Fatalf("stable observer had to reconnect %d times (corrupt frame killed its session?)", got)
	}
	stop.Store(true)
	wg.Wait()
}
