package immunity

import (
	"errors"
	"sync"
	"testing"
)

// TestQueueDeliverBatch: batch mode hands each drain's (coalesced)
// items over in one call, in order, and still fires OnDeliver per item.
func TestQueueDeliverBatch(t *testing.T) {
	var mu sync.Mutex
	var batches [][]int
	var delivered []int
	ready := make(chan struct{}, 16)
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			mu.Lock()
			batches = append(batches, append([]int(nil), b...))
			mu.Unlock()
			return nil
		},
		OnDeliver: func(v int) {
			mu.Lock()
			delivered = append(delivered, v)
			mu.Unlock()
			ready <- struct{}{}
		},
	})
	for i := 1; i <= 5; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 5; i++ {
		<-ready
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	var flat []int
	for _, b := range batches {
		flat = append(flat, b...)
	}
	for i, v := range flat {
		if v != i+1 {
			t.Fatalf("out-of-order batch delivery: %v", batches)
		}
	}
	if len(delivered) != 5 {
		t.Fatalf("OnDeliver fired %d times, want 5", len(delivered))
	}
}

// TestQueueDeliverBatchDropOnError: a batch error in drop mode kills
// the queue, discards pending items, and fires OnDead exactly once —
// the same contract the per-item path has.
func TestQueueDeliverBatchDropOnError(t *testing.T) {
	dead := make(chan struct{})
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func([]int) error { return errors.New("session died") },
		OnDead:       func() { close(dead) },
	})
	q.Enqueue(1)
	<-dead
	q.Enqueue(2) // no-op after death
	if n := q.Pending(); n != 0 {
		t.Fatalf("dead queue holds %d items", n)
	}
	q.Close()
}

// TestQueueDeliverBatchRetryParks: in retry mode a failed batch is
// re-queued whole and the drain parks until Resume, after which the
// entire batch (plus anything enqueued meanwhile) is redelivered — the
// at-least-once contract the peer outboxes rely on.
func TestQueueDeliverBatchRetryParks(t *testing.T) {
	var mu sync.Mutex
	fail := true
	var got []int
	done := make(chan struct{}, 16)
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return errors.New("link down")
			}
			got = append(got, b...)
			for range b {
				done <- struct{}{}
			}
			return nil
		},
		RetryOnError: true,
	})
	q.Enqueue(1)
	q.Enqueue(2)
	waitFor(t, "failed batch parked, items held", func() bool { return q.Pending() == 2 })
	q.Enqueue(3) // lands behind the parked batch
	mu.Lock()
	fail = false
	mu.Unlock()
	q.Resume()
	for i := 0; i < 3; i++ {
		<-done
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("retry redelivered out of order: %v", got)
		}
	}
}
