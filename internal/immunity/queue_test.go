package immunity

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
)

// TestQueueDeliverBatch: batch mode hands each drain's (coalesced)
// items over in one call, in order, and still fires OnDeliver per item.
func TestQueueDeliverBatch(t *testing.T) {
	var mu sync.Mutex
	var batches [][]int
	var delivered []int
	ready := make(chan struct{}, 16)
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			mu.Lock()
			batches = append(batches, append([]int(nil), b...))
			mu.Unlock()
			return nil
		},
		OnDeliver: func(v int) {
			mu.Lock()
			delivered = append(delivered, v)
			mu.Unlock()
			ready <- struct{}{}
		},
	})
	for i := 1; i <= 5; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 5; i++ {
		<-ready
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	var flat []int
	for _, b := range batches {
		flat = append(flat, b...)
	}
	for i, v := range flat {
		if v != i+1 {
			t.Fatalf("out-of-order batch delivery: %v", batches)
		}
	}
	if len(delivered) != 5 {
		t.Fatalf("OnDeliver fired %d times, want 5", len(delivered))
	}
}

// TestQueueDeliverBatchDropOnError: a batch error in drop mode kills
// the queue, discards pending items, and fires OnDead exactly once —
// the same contract the per-item path has.
func TestQueueDeliverBatchDropOnError(t *testing.T) {
	dead := make(chan struct{})
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func([]int) error { return errors.New("session died") },
		OnDead:       func() { close(dead) },
	})
	q.Enqueue(1)
	<-dead
	q.Enqueue(2) // no-op after death
	if n := q.Pending(); n != 0 {
		t.Fatalf("dead queue holds %d items", n)
	}
	q.Close()
}

// TestQueueDeliverBatchRetryParks: in retry mode a failed batch is
// re-queued whole and the drain parks until Resume, after which the
// entire batch (plus anything enqueued meanwhile) is redelivered — the
// at-least-once contract the peer outboxes rely on.
func TestQueueDeliverBatchRetryParks(t *testing.T) {
	var mu sync.Mutex
	fail := true
	var got []int
	done := make(chan struct{}, 16)
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return errors.New("link down")
			}
			got = append(got, b...)
			for range b {
				done <- struct{}{}
			}
			return nil
		},
		RetryOnError: true,
	})
	q.Enqueue(1)
	q.Enqueue(2)
	waitFor(t, "failed batch parked, items held", func() bool { return q.Pending() == 2 })
	q.Enqueue(3) // lands behind the parked batch
	mu.Lock()
	fail = false
	mu.Unlock()
	q.Resume()
	for i := 0; i < 3; i++ {
		<-done
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("retry redelivered out of order: %v", got)
		}
	}
}

// TestQueuePendingSeesInFlightBatch: the batch the drain has taken but
// not yet delivered still counts toward Pending — depth gauges must not
// under-report by a full drain batch while a slow consumer holds it.
func TestQueuePendingSeesInFlightBatch(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			started <- struct{}{}
			<-release
			return nil
		},
	})
	q.Enqueue(1)
	<-started // the drain took [1]; delivery is parked
	q.Enqueue(2)
	q.Enqueue(3)
	if n := q.Pending(); n != 3 {
		t.Fatalf("Pending = %d during slow delivery, want 3 (1 in flight + 2 queued)", n)
	}
	close(release)
	<-started // second drain: [2 3] taken
	waitFor(t, "in-flight batch settled", func() bool { return q.Pending() == 0 })
	q.Close()
}

// TestQueueCloseRacesDeliverFailure: when Close has already initiated
// teardown, a concurrent drop-mode delivery failure must NOT fire
// OnDead — the owner is tearing the session down and must not be told
// to do it again. Run with -race: the original code fired OnDead from
// the drain while Close's caller was mid-teardown.
func TestQueueCloseRacesDeliverFailure(t *testing.T) {
	for i := 0; i < 50; i++ {
		inDeliver := make(chan struct{})
		release := make(chan struct{})
		dead := make(chan struct{}, 1)
		q := NewQueue(QueueConfig[int]{
			Deliver: func(int) error {
				close(inDeliver)
				<-release
				return errors.New("send failed")
			},
			OnDead: func() { dead <- struct{}{} },
		})
		q.Enqueue(1)
		<-inDeliver // delivery in flight, queue lock free
		closed := make(chan struct{})
		go func() {
			q.Close()
			close(closed)
		}()
		// Wait until Close has marked the queue closed, then let the
		// in-flight delivery fail.
		waitFor(t, "Close set closed", func() bool {
			q.mu.Lock()
			defer q.mu.Unlock()
			return q.closed
		})
		close(release)
		<-closed
		select {
		case <-dead:
			t.Fatal("OnDead fired even though Close initiated teardown")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestQueueDeliverFailureWithoutCloseStillDies: the suppression above
// must not eat the legitimate case — a delivery failure with no Close
// in flight still fires OnDead exactly once.
func TestQueueDeliverFailureWithoutCloseStillDies(t *testing.T) {
	dead := make(chan struct{})
	q := NewQueue(QueueConfig[int]{
		Deliver: func(int) error { return errors.New("send failed") },
		OnDead:  func() { close(dead) },
	})
	q.Enqueue(1)
	select {
	case <-dead:
	case <-time.After(2 * time.Second):
		t.Fatal("OnDead did not fire for a genuine delivery failure")
	}
	q.Close()
}

// TestQueueRetryBatchRedeliversSentPrefix: the documented at-least-once
// contract of DeliverBatch in retry mode — a batch error re-queues the
// WHOLE coalesced batch, so after Resume the receiver sees the
// already-sent prefix again, in order, with nothing lost.
func TestQueueRetryBatchRedeliversSentPrefix(t *testing.T) {
	var mu sync.Mutex
	var calls [][]int
	gate := make(chan struct{})
	started := make(chan struct{})
	fail := false
	delivered := make(chan int, 16)
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			mu.Lock()
			calls = append(calls, append([]int(nil), b...))
			n := len(calls)
			shouldFail := fail
			mu.Unlock()
			if n == 1 {
				started <- struct{}{}
				<-gate // hold the drain so 1,2,3 queue up as one batch
				return nil
			}
			if shouldFail {
				// The transport wrote a prefix of b before erroring out —
				// the queue must still re-queue the whole batch.
				return errors.New("link down mid-write")
			}
			for _, v := range b {
				delivered <- v
			}
			return nil
		},
		RetryOnError: true,
	})
	q.Enqueue(0)
	<-started
	q.Enqueue(1)
	q.Enqueue(2)
	q.Enqueue(3)
	mu.Lock()
	fail = true
	mu.Unlock()
	close(gate) // call 1 ([0]) succeeds; call 2 gets [1 2 3] and fails
	waitFor(t, "failed batch parked whole", func() bool { return q.Pending() == 3 })
	q.Enqueue(4) // lands behind the re-queued batch
	mu.Lock()
	fail = false
	mu.Unlock()
	q.Resume()
	var got []int
	for i := 0; i < 4; i++ {
		got = append(got, <-delivered)
	}
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 3 {
		t.Fatalf("expected 3 DeliverBatch calls, got %v", calls)
	}
	failed, redelivered := calls[1], calls[2]
	if len(failed) != 3 || failed[0] != 1 || failed[1] != 2 || failed[2] != 3 {
		t.Fatalf("failed batch = %v, want [1 2 3]", failed)
	}
	// The already-sent prefix (all of [1 2 3]) comes back, in order,
	// followed by the item enqueued while parked.
	want := []int{1, 2, 3, 4}
	if len(redelivered) != len(want) {
		t.Fatalf("redelivered = %v, want %v", redelivered, want)
	}
	for i, v := range want {
		if redelivered[i] != v || got[i] != v {
			t.Fatalf("redelivery order/loss: calls=%v got=%v", calls, got)
		}
	}
}

// TestQueueGaugeInstrumentation: shared Depth/InFlight gauges track the
// live counts as deltas and settle to zero once the queue drains, and
// the batch-size/coalesce histograms observe each drain.
func TestQueueGaugeInstrumentation(t *testing.T) {
	reg := metrics.NewRegistry()
	depth := reg.Gauge("depth", "")
	inFlight := reg.Gauge("in_flight", "")
	sizes := reg.Histogram("batch_size", "", metrics.SizeBuckets())
	ratio := reg.Histogram("coalesce_ratio", "", metrics.RatioBuckets())
	started := make(chan struct{})
	release := make(chan struct{})
	q := NewQueue(QueueConfig[int]{
		DeliverBatch: func(b []int) error {
			started <- struct{}{}
			<-release
			return nil
		},
		// Sum-merge everything: the second drain coalesces to one item.
		Merge: func(prev, next int) (int, bool) { return prev + next, true },
		Depth: depth, InFlight: inFlight,
		BatchSizes: sizes, CoalesceRatio: ratio,
	})
	q.Enqueue(1)
	<-started // [1] in flight
	q.Enqueue(2)
	q.Enqueue(3)
	if d, f := depth.Value(), inFlight.Value(); d != 3 || f != 1 {
		t.Fatalf("depth=%d inFlight=%d during slow delivery, want 3/1", d, f)
	}
	release <- struct{}{}
	<-started // [2 3] coalesced to [5], in flight
	if d, f := depth.Value(), inFlight.Value(); d != 1 || f != 1 {
		t.Fatalf("depth=%d inFlight=%d during coalesced delivery, want 1/1", d, f)
	}
	release <- struct{}{}
	waitFor(t, "gauges settle to zero", func() bool {
		return depth.Value() == 0 && inFlight.Value() == 0
	})
	q.Close()
	if n := sizes.Count(); n != 2 {
		t.Fatalf("batch-size observations = %d, want 2", n)
	}
	if n := ratio.Count(); n != 2 {
		t.Fatalf("coalesce-ratio observations = %d, want 2", n)
	}
	// Second drain folded 2 raw items into 1 delivery: ratio 2 lands in
	// a bucket above 1.5.
	if q := ratio.Quantile(1); q < 2 {
		t.Fatalf("max coalesce ratio %v, want >= 2", q)
	}
}
