package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// memSession / memTransport are a minimal in-process transport: every
// Send lands in a shared log, down is controllable — just enough
// surface to watch the fault layer's behavior without a hub.
type memSession struct {
	mu     sync.Mutex
	sent   []wire.Message
	closed bool
}

func (s *memSession) Send(m wire.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("closed")
	}
	s.sent = append(s.sent, m)
	return nil
}

func (s *memSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *memSession) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sent)
}

type memTransport struct {
	mu   sync.Mutex
	sess *memSession
	recv func(wire.Message)
	down func(err error)
}

func (t *memTransport) Dial(recv func(wire.Message), down func(err error)) (immunity.Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sess = &memSession{}
	t.recv = recv
	t.down = down
	return t.sess, nil
}

// deliver pushes one hub→client frame through whatever recv wrapper
// the fault layer installed.
func (t *memTransport) deliver(m wire.Message) {
	t.mu.Lock()
	recv := t.recv
	t.mu.Unlock()
	if recv != nil {
		recv(m)
	}
}

func ping(seq uint64) wire.Message {
	return wire.Message{Type: wire.TypePing, Ping: &wire.Ping{From: "a", Target: "b", Seq: seq}}
}

func TestBlockSeversAndFailsSends(t *testing.T) {
	n := NewNetwork()
	inner := &memTransport{}
	downCh := make(chan error, 1)
	tr := n.Wrap("a", "b", inner)
	sess, err := tr.Dial(func(wire.Message) {}, func(err error) { downCh <- err })
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Send(ping(1)); err != nil {
		t.Fatalf("send on open path: %v", err)
	}

	n.Block("a", "b")
	select {
	case <-downCh:
	case <-time.After(time.Second):
		t.Fatal("block did not sever the a->b session")
	}
	if err := sess.Send(ping(2)); err == nil {
		t.Fatal("send on blocked path succeeded")
	}
	if _, err := tr.Dial(func(wire.Message) {}, nil); !errors.Is(err, ErrBlocked) {
		t.Fatalf("dial through blocked path: err=%v, want ErrBlocked", err)
	}

	n.Unblock("a", "b")
	sess2, err := tr.Dial(func(wire.Message) {}, func(error) {})
	if err != nil {
		t.Fatalf("dial after unblock: %v", err)
	}
	if err := sess2.Send(ping(3)); err != nil {
		t.Fatalf("send after unblock: %v", err)
	}
	if got := inner.sess.count(); got != 1 {
		t.Fatalf("reopened session delivered %d sends, want 1", got)
	}
}

func TestReverseBlockDropsRecvSilently(t *testing.T) {
	n := NewNetwork()
	inner := &memTransport{}
	var mu sync.Mutex
	var got int
	tr := n.Wrap("a", "b", inner)
	sess, err := tr.Dial(func(wire.Message) { mu.Lock(); got++; mu.Unlock() }, func(error) {})
	if err != nil {
		t.Fatal(err)
	}
	inner.deliver(ping(1))

	// Block only the receive direction (b -> a): sends still flow — the
	// asymmetric half-open link — while inbound frames vanish and the
	// session stays alive.
	n.Block("b", "a")
	inner.deliver(ping(2))
	if err := sess.Send(ping(3)); err != nil {
		t.Fatalf("send with only the reverse path blocked: %v", err)
	}

	n.Heal()
	inner.deliver(ping(4))
	mu.Lock()
	defer mu.Unlock()
	if got != 2 {
		t.Fatalf("received %d frames, want 2 (the blocked one dropped silently)", got)
	}
}

func TestHealSeversHalfDeafSessions(t *testing.T) {
	n := NewNetwork()
	inner := &memTransport{}
	downCh := make(chan error, 1)
	tr := n.Wrap("a", "b", inner)
	if _, err := tr.Dial(func(wire.Message) {}, func(err error) { downCh <- err }); err != nil {
		t.Fatal(err)
	}
	// Reverse-direction block: the session is not severed (its send
	// side is open), it just goes deaf...
	n.Block("b", "a")
	select {
	case <-downCh:
		t.Fatal("reverse block severed the send-side session")
	case <-time.After(10 * time.Millisecond):
	}
	// ...until Heal replaces every session the block touched, so the
	// missed frames are recovered by a fresh handshake's replay.
	n.Heal()
	select {
	case <-downCh:
	case <-time.After(time.Second):
		t.Fatal("heal did not sever the half-deaf session")
	}
}

func TestPartitionBlocksBothDirectionsPairwise(t *testing.T) {
	n := NewNetwork()
	n.Partition([]string{"a", "b"}, []string{"c"})
	for _, p := range [][2]string{{"a", "c"}, {"c", "a"}, {"b", "c"}, {"c", "b"}} {
		if !n.isBlocked(p[0], p[1]) {
			t.Fatalf("path %s->%s not blocked by partition", p[0], p[1])
		}
	}
	for _, p := range [][2]string{{"a", "b"}, {"b", "a"}} {
		if n.isBlocked(p[0], p[1]) {
			t.Fatalf("intra-group path %s->%s blocked", p[0], p[1])
		}
	}
	n.Heal()
	if n.isBlocked("a", "c") {
		t.Fatal("heal left a->c blocked")
	}
}

func TestPolicyDropDelayDuplicate(t *testing.T) {
	n := NewNetwork()
	inner := &memTransport{}
	tr := n.Wrap("a", "b", inner)
	sess, err := tr.Dial(func(wire.Message) {}, func(error) {})
	if err != nil {
		t.Fatal(err)
	}

	n.SetPolicy("a", "b", Policy{DropNth: 3})
	for i := 1; i <= 6; i++ {
		if err := sess.Send(ping(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.sess.count(); got != 4 {
		t.Fatalf("DropNth=3 delivered %d of 6, want 4", got)
	}

	n.SetPolicy("a", "b", Policy{DupNth: 1})
	if err := sess.Send(ping(7)); err != nil {
		t.Fatal(err)
	}
	if got := inner.sess.count(); got != 6 {
		t.Fatalf("DupNth=1 should deliver twice: %d total, want 6", got)
	}

	n.SetPolicy("a", "b", Policy{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := sess.Send(ping(8)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delayed send returned in %v, want >= 20ms", d)
	}
	n.SetPolicy("a", "b", Policy{})
}
