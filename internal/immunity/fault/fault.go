// Package fault is a deterministic network fault-injection layer for
// the immunity fabric: a Network wraps any immunity.Transport with a
// per-directed-path (src → dst) fault script — block, drop every Nth
// message, delay, duplicate — and flips the script at the times the
// test chooses. It exists to drive the partition chaos scenarios
// (symmetric split, asymmetric split, flapping link) against real hub
// and cluster code with no real network misbehavior required, so the
// same failure unfolds identically on every run.
//
// Faults are directional. A path (src, dst) covers every message
// src sends to dst: the Send side of sessions src dialed, and the
// receive side of sessions dst dialed (a session dialed by dst has its
// hub→client frames traveling src → dst). Blocking therefore composes
// into both partition shapes:
//
//   - symmetric split: Partition(groupA, groupB) blocks every pair in
//     both directions — neither side hears the other at all;
//   - asymmetric split: Block(owner, peer) for each peer blocks only
//     the owner's outbound word — the owner still hears its peers
//     (their pings arrive, proving them alive to it), but its answers,
//     lease requests, and broadcasts vanish, so the peers' probes
//     condemn it while its own lease quietly expires.
//
// Send through a blocked path returns an error — the cluster's retry
// outboxes park exactly as they would on a dead TCP session, nothing
// is silently lost. A frame arriving over a blocked receive path is
// dropped silently — the sender believes it delivered, the one-way
// stall a half-open link really produces. Dial fails while either
// direction is blocked (no handshake completes over a half-open
// path). Blocking also severs the registered live sessions whose send
// side it covers — their owners see the session die and begin
// redialing into the block; Heal severs every session a block touched
// in either direction, so half-deaf survivors are replaced by fresh
// handshakes that resume from their cursors instead of staying
// silently behind.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// ErrBlocked is the error a Send or Dial through a blocked path
// returns.
var ErrBlocked = errors.New("fault: path blocked")

// Policy shapes a path's message stream without cutting it: every
// DropNth-th send vanishes silently (the lossy-link fault: the sender
// believes it delivered), every send sleeps Delay first (in order —
// the delay is synchronous, so it reorders nothing), and every
// DupNth-th send is delivered twice (the at-least-once duplicate the
// receivers must dedup anyway). Zero fields are inert.
type Policy struct {
	DropNth int
	Delay   time.Duration
	DupNth  int
}

type pathKey struct{ src, dst string }

// Network scripts the faults for a set of wrapped transports. The
// zero value is not usable; NewNetwork.
type Network struct {
	mu      sync.Mutex
	blocked map[pathKey]bool
	// touched remembers every path a block covered since the last Heal
	// — Unblock reopens a path without severing anything, so a session
	// that sat deaf behind a since-cleared block (a flapping link) is
	// only found again at Heal time.
	touched  map[pathKey]bool
	policies map[pathKey]*pathPolicy
	sessions map[*faultSession]struct{}
}

// pathPolicy is a Policy plus its per-path send counter (DropNth and
// DupNth count per path, not per session, so the script is stable
// across redials).
type pathPolicy struct {
	Policy
	sends uint64
}

func NewNetwork() *Network {
	return &Network{
		blocked:  make(map[pathKey]bool),
		touched:  make(map[pathKey]bool),
		policies: make(map[pathKey]*pathPolicy),
		sessions: make(map[*faultSession]struct{}),
	}
}

// Wrap returns t with this network's fault script applied to the
// directed path src → dst (sends, and the receive side of the same
// dialed sessions, which travels dst → src).
func (n *Network) Wrap(src, dst string, t immunity.Transport) immunity.Transport {
	return &faultTransport{net: n, src: src, dst: dst, inner: t}
}

// Block cuts the directed path src → dst and severs the registered
// live sessions whose send side it covers.
func (n *Network) Block(src, dst string) {
	n.mu.Lock()
	n.blocked[pathKey{src, dst}] = true
	n.touched[pathKey{src, dst}] = true
	victims := n.sessionsOnLocked(src, dst)
	n.mu.Unlock()
	sever(victims)
}

// Unblock reopens the directed path src → dst without touching
// sessions (redials flow again on their own).
func (n *Network) Unblock(src, dst string) {
	n.mu.Lock()
	delete(n.blocked, pathKey{src, dst})
	n.mu.Unlock()
}

// Partition blocks every pair across the two groups, both directions —
// the symmetric split. Members within a group stay connected.
func (n *Network) Partition(groupA, groupB []string) {
	n.mu.Lock()
	var victims []*faultSession
	for _, a := range groupA {
		for _, b := range groupB {
			n.blocked[pathKey{a, b}] = true
			n.blocked[pathKey{b, a}] = true
			n.touched[pathKey{a, b}] = true
			n.touched[pathKey{b, a}] = true
			victims = append(victims, n.sessionsOnLocked(a, b)...)
			victims = append(victims, n.sessionsOnLocked(b, a)...)
		}
	}
	n.mu.Unlock()
	sever(victims)
}

// Heal clears every block and severs every session a block has touched
// in either direction since the last Heal — Unblocked (flapped) paths
// included: a session that sat half-deaf behind a block silently
// missed frames, and only a fresh handshake (resuming from its cursor)
// repairs that.
func (n *Network) Heal() {
	n.mu.Lock()
	var victims []*faultSession
	for p := range n.touched {
		victims = append(victims, n.sessionsOnLocked(p.src, p.dst)...)
		victims = append(victims, n.sessionsOnLocked(p.dst, p.src)...)
	}
	n.blocked = make(map[pathKey]bool)
	n.touched = make(map[pathKey]bool)
	n.mu.Unlock()
	sever(victims)
}

// SetPolicy installs (or, with the zero Policy, clears) the drop/
// delay/duplicate script for the directed path src → dst.
func (n *Network) SetPolicy(src, dst string, p Policy) {
	n.mu.Lock()
	if p == (Policy{}) {
		delete(n.policies, pathKey{src, dst})
	} else {
		n.policies[pathKey{src, dst}] = &pathPolicy{Policy: p}
	}
	n.mu.Unlock()
}

func (n *Network) isBlocked(src, dst string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[pathKey{src, dst}]
}

// sessionsOnLocked collects the registered sessions whose send path is
// src → dst. Caller holds n.mu.
func (n *Network) sessionsOnLocked(src, dst string) []*faultSession {
	var out []*faultSession
	for s := range n.sessions {
		if s.t.src == src && s.t.dst == dst {
			out = append(out, s)
		}
	}
	return out
}

// sever kills sessions outside the network lock: Close and the down
// callback both re-enter the owning link's machinery.
func sever(victims []*faultSession) {
	for _, s := range victims {
		s.sever()
	}
}

type faultTransport struct {
	net      *Network
	src, dst string
	inner    immunity.Transport
}

// Dial opens a session through the fault layer. It fails while either
// direction of the path is blocked — no handshake completes over a
// half-open link — and registers the session for sever-on-block.
func (t *faultTransport) Dial(recv func(wire.Message), down func(err error)) (immunity.Session, error) {
	if t.net.isBlocked(t.src, t.dst) || t.net.isBlocked(t.dst, t.src) {
		return nil, fmt.Errorf("fault: dial %s->%s: %w", t.src, t.dst, ErrBlocked)
	}
	fs := &faultSession{t: t, down: down}
	inner, err := t.inner.Dial(func(m wire.Message) {
		// The receive side of this session travels dst → src: a block
		// there drops the frame silently — the hub already counts it
		// delivered, exactly the half-open stall being simulated.
		if t.net.isBlocked(t.dst, t.src) {
			return
		}
		recv(m)
	}, func(err error) { fs.innerDown(err) })
	if err != nil {
		return nil, err
	}
	fs.inner = inner
	t.net.mu.Lock()
	t.net.sessions[fs] = struct{}{}
	t.net.mu.Unlock()
	return fs, nil
}

type faultSession struct {
	t    *faultTransport
	down func(err error)

	mu       sync.Mutex
	inner    immunity.Session
	closed   bool // locally closed or severed: the down relay stops
	unusable bool // severed: Sends fail even though inner may linger
}

// Send applies the path script: error while blocked (the owner's
// outbox parks and retries, as on a dead link), then drop / delay /
// duplicate per the policy.
func (s *faultSession) Send(m wire.Message) error {
	s.mu.Lock()
	inner, unusable := s.inner, s.unusable
	s.mu.Unlock()
	if inner == nil || unusable {
		return fmt.Errorf("fault: send %s->%s: session severed", s.t.src, s.t.dst)
	}
	net := s.t.net
	key := pathKey{s.t.src, s.t.dst}
	net.mu.Lock()
	if net.blocked[key] {
		net.mu.Unlock()
		return fmt.Errorf("fault: send %s->%s: %w", s.t.src, s.t.dst, ErrBlocked)
	}
	pol := net.policies[key]
	var drop, dup bool
	var delay time.Duration
	if pol != nil {
		pol.sends++
		drop = pol.DropNth > 0 && pol.sends%uint64(pol.DropNth) == 0
		dup = pol.DupNth > 0 && pol.sends%uint64(pol.DupNth) == 0
		delay = pol.Delay
	}
	net.mu.Unlock()
	if drop {
		return nil // the lossy link: sender believes it delivered
	}
	if delay > 0 {
		// Synchronous: every later send on this session waits behind
		// this one, so delay slows the path without reordering it.
		time.Sleep(delay)
	}
	if err := inner.Send(m); err != nil {
		return err
	}
	if dup {
		return inner.Send(m)
	}
	return nil
}

func (s *faultSession) Close() error {
	s.mu.Lock()
	s.closed = true
	inner := s.inner
	s.mu.Unlock()
	s.t.net.mu.Lock()
	delete(s.t.net.sessions, s)
	s.t.net.mu.Unlock()
	if inner == nil {
		return nil
	}
	return inner.Close()
}

// sever kills the session from the fault script's side: the owner
// sees its down callback fire, exactly as if the TCP peer vanished.
func (s *faultSession) sever() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.unusable = true
	inner := s.inner
	down := s.down
	s.mu.Unlock()
	s.t.net.mu.Lock()
	delete(s.t.net.sessions, s)
	s.t.net.mu.Unlock()
	if inner != nil {
		inner.Close()
	}
	if down != nil {
		down(fmt.Errorf("fault: %s->%s severed", s.t.src, s.t.dst))
	}
}

// innerDown relays the inner session's death unless this layer closed
// or severed it first (the inner close then produced the event, and
// the owner has already been told — or asked for it).
func (s *faultSession) innerDown(err error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	s.t.net.mu.Lock()
	delete(s.t.net.sessions, s)
	s.t.net.mu.Unlock()
	if !closed && s.down != nil {
		s.down(err)
	}
}
