package immunity

import (
	"strings"
	"testing"
	"time"
)

// TestAdmissionShedsAtCapacity: with the permit pool saturated, an
// over-capacity report waits its bounded delay and is then shed —
// dropped without error, session intact — and every verdict shows up
// in Stats and on the registry.
func TestAdmissionShedsAtCapacity(t *testing.T) {
	hub := newTestHub(t, 1, WithAdmission(1, 30*time.Millisecond))
	block := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- hub.admitReport(func() error {
			close(entered)
			<-block
			return nil
		})
	}()
	<-entered // permit held

	ran := false
	if err := hub.admitReport(func() error { ran = true; return nil }); err != nil {
		t.Fatalf("shed batch must not error the session: %v", err)
	}
	if ran {
		t.Fatal("shed batch must not be processed")
	}
	st := hub.Stats()
	if st.AdmissionAdmitted != 1 || st.AdmissionShed != 1 {
		t.Fatalf("admitted=%d shed=%d, want 1/1", st.AdmissionAdmitted, st.AdmissionShed)
	}

	// A waiter that outlasts a short hold is delayed, not shed.
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(block)
	}()
	delayedRan := false
	if err := hub.admitReport(func() error { delayedRan = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !delayedRan {
		t.Fatal("delayed batch must still be processed")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := hub.Stats(); st.AdmissionDelayed != 1 {
		t.Fatalf("delayed=%d, want 1", st.AdmissionDelayed)
	}

	var b strings.Builder
	if err := hub.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"immunity_hub_admission_admitted_total 1",
		"immunity_hub_admission_delayed_total 1",
		"immunity_hub_admission_shed_total 1",
		"immunity_hub_admission_capacity 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAdmissionDisabledByDefault: without WithAdmission every report
// admits immediately and the counters stay zero.
func TestAdmissionDisabledByDefault(t *testing.T) {
	hub := newTestHub(t, 1)
	ran := false
	if err := hub.admitReport(func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("report not processed with admission disabled")
	}
	st := hub.Stats()
	if st.AdmissionAdmitted != 0 || st.AdmissionDelayed != 0 || st.AdmissionShed != 0 {
		t.Fatalf("admission counters moved while disabled: %+v", st)
	}
}

// TestExchangeMetricsRegistry: hub traffic lands on the registry — the
// report/confirmation/armed counters move with reportFrom and the
// whole thing renders in Prometheus text format.
func TestExchangeMetricsRegistry(t *testing.T) {
	hub := newTestHub(t, 2)
	sig := testSig(1)
	hub.report("devA", sig)
	hub.report("devA", sig) // echo
	hub.report("devB", sig) // arms at threshold 2
	var b strings.Builder
	if err := hub.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"immunity_hub_reports_total 3",
		"immunity_hub_confirmations_total 2",
		"immunity_hub_echoes_total 1",
		"immunity_hub_armed_total 1",
		"# TYPE immunity_hub_push_batch_size histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
