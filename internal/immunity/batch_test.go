package immunity

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// TestServiceDeltaBatching: a publish storm against a slow subscriber is
// coalesced — fewer callbacks than publishes, every signature delivered,
// epochs strictly increasing (never stale), and the batching counters
// account for exactly what was delivered.
func TestServiceDeltaBatching(t *testing.T) {
	const sigs = 200
	svc, err := NewService("phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var mu sync.Mutex
	var calls int
	var got int
	var epochs []uint64
	cancel := svc.Subscribe("slow", 0, func(epoch uint64, batch []*core.Signature) {
		time.Sleep(2 * time.Millisecond) // a slow consumer lets the queue pile up
		mu.Lock()
		calls++
		got += len(batch)
		epochs = append(epochs, epoch)
		mu.Unlock()
	})
	defer cancel()

	for i := 0; i < sigs; i++ {
		if _, _, err := svc.Publish("local", testSig(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all signatures delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == sigs
	})

	mu.Lock()
	defer mu.Unlock()
	if calls >= sigs {
		t.Fatalf("no coalescing: %d callbacks for %d publishes", calls, sigs)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("stale epoch delivered: %d after %d (all: %v)", epochs[i], epochs[i-1], epochs)
		}
	}
	if epochs[len(epochs)-1] != sigs {
		t.Fatalf("final epoch %d, want %d", epochs[len(epochs)-1], sigs)
	}
	stats := svc.Stats()
	if stats.DeltaBatches != uint64(calls) || stats.DeltaSignatures != uint64(got) {
		t.Fatalf("batching counters = %d/%d, want %d/%d",
			stats.DeltaBatches, stats.DeltaSignatures, calls, got)
	}
	if stats.DeltaSignatures <= stats.DeltaBatches {
		t.Fatalf("counters show no batching: %d sigs in %d batches", stats.DeltaSignatures, stats.DeltaBatches)
	}
}

// slowSession wraps a loopback session, stalling hub→client deliveries
// so the hub-side push queue piles up and must coalesce.
type slowSessionTransport struct {
	inner Transport
	delay time.Duration
	// epochs records every delta epoch the client saw, in order.
	mu     sync.Mutex
	epochs []uint64
	sigs   atomic.Uint64
}

func (s *slowSessionTransport) Dial(recv func(m wire.Message), down func(err error)) (Session, error) {
	wrapped := func(m wire.Message) {
		if m.Type == wire.TypeDelta {
			time.Sleep(s.delay)
			s.mu.Lock()
			s.epochs = append(s.epochs, m.Delta.Epoch)
			s.mu.Unlock()
			s.sigs.Add(uint64(len(m.Delta.Sigs)))
		}
		recv(m)
	}
	return s.inner.Dial(wrapped, down)
}

// TestExchangeDeltaBatchingUnderStorm: many signatures arming back to
// back against a slow subscriber device must coalesce into fewer delta
// pushes, with the epochs the device observes strictly increasing and
// the last one equal to the hub's final epoch — no subscriber ever
// receives a stale epoch.
func TestExchangeDeltaBatchingUnderStorm(t *testing.T) {
	const storm = 64
	hub := newTestHub(t, 1)
	lb := NewLoopback(hub)

	// The observed device: slow deliveries, records what it saw.
	slowTr := &slowSessionTransport{inner: lb, delay: time.Millisecond}
	slowSvc, err := NewService("slow-phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer slowSvc.Close()
	slowClient, err := Connect(slowTr, "slow-phone", slowSvc)
	if err != nil {
		t.Fatal(err)
	}
	defer slowClient.Close()

	// The storm source.
	pubSvc, err := NewService("pub-phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pubSvc.Close()
	pubClient, err := Connect(lb, "pub-phone", pubSvc)
	if err != nil {
		t.Fatal(err)
	}
	defer pubClient.Close()

	for i := 0; i < storm; i++ {
		if _, _, err := pubSvc.Publish("local", testSig(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "slow device received the storm", func() bool { return slowTr.sigs.Load() == storm })

	slowTr.mu.Lock()
	epochs := append([]uint64{}, slowTr.epochs...)
	slowTr.mu.Unlock()
	if len(epochs) >= storm {
		t.Fatalf("no exchange-side coalescing: %d delta pushes for %d armings", len(epochs), storm)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("stale epoch pushed: %d after %d (all: %v)", epochs[i], epochs[i-1], epochs)
		}
	}
	if final := epochs[len(epochs)-1]; final != storm {
		t.Fatalf("final pushed epoch %d, want %d", final, storm)
	}
	stats := hub.Stats()
	if stats.DeltaBatches == 0 || stats.DeltaSignatures < storm {
		t.Fatalf("exchange batching counters = %+v, want >=%d signatures", stats, storm)
	}
	if stats.DeltaSignatures <= stats.DeltaBatches {
		t.Fatalf("counters show no batching: %d sigs in %d batches", stats.DeltaSignatures, stats.DeltaBatches)
	}
	// The client ends at the hub's epoch.
	waitFor(t, "slow client at hub epoch", func() bool {
		return slowClient.FleetEpoch() == uint64(hub.ArmedCount())
	})
}
