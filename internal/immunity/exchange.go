package immunity

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// The cross-device tier. An Exchange is the fleet hub a set of phones
// syncs deadlock histories through, and it speaks only the wire protocol
// (package wire): each phone's Service connects via an ExchangeClient
// over a Transport — the in-process loopback or real TCP — reports
// locally detected signatures upward, and receives fleet-armed
// signatures downward as delta pushes, which it publishes into the local
// Service, immunizing every live process on the phone. The hub keeps
// per-signature provenance (first-seen device, the set of confirming
// devices, the set of devices it pushed to) and arms a signature
// fleet-wide only after the confirm-before-arm threshold of *distinct*
// devices has independently reported it: one device's false positive (a
// mis-detected cycle, a corrupted history) cannot degrade avoidance on
// the whole fleet.
//
// A signature the hub has pushed to a device is never counted again as
// that device's confirmation — whether it comes back through a live
// client's echo, a reconnect's epoch-0 re-report, or (with a
// ProvenanceStore) a report replayed after a hub reboot — so the
// threshold counts independent observations only.

// Provenance is one fleet signature's audit record.
type Provenance struct {
	// Key is the signature's canonical identity (core.Signature.Key).
	Key string
	// Kind is the signature kind.
	Kind core.SigKind
	// FirstSeen is the device that first reported the signature.
	FirstSeen string
	// Confirmations is the number of distinct devices that independently
	// reported it.
	Confirmations int
	// ConfirmedBy lists those devices, sorted.
	ConfirmedBy []string
	// Armed reports whether the signature has been armed fleet-wide.
	Armed bool
}

// ExchangeStats snapshots the hub's counters.
type ExchangeStats struct {
	// Epoch is the fleet delta epoch (number of armings so far).
	Epoch uint64
	// Devices is the number of currently connected devices.
	Devices int
	// Reports counts signatures received in report messages.
	Reports uint64
	// Confirmations counts reports accepted as fresh confirmations.
	Confirmations uint64
	// Echoes counts reports discarded because the device had already
	// confirmed the signature or only held it via a hub push.
	Echoes uint64
	// DeltaBatches and DeltaSignatures count delta pushes actually sent:
	// DeltaSignatures/DeltaBatches > 1 means publish storms were
	// coalesced into fewer wire messages.
	DeltaBatches, DeltaSignatures uint64
	// PersistErrors counts failed provenance-store appends (the
	// in-memory state still gates correctly; only restart durability of
	// the failed record is lost).
	PersistErrors uint64
}

// fleetSig is the hub-side state of one signature.
type fleetSig struct {
	sig         *core.Signature
	seq         int // first-report order, 1-based
	firstSeen   string
	confirmedBy map[string]bool
	// pushedTo records the devices the hub has delivered this signature
	// to. A report from such a device is not an independent observation —
	// it is the push coming back (possibly via the device's persistent
	// store after a reconnect or reboot) — and never counts as a
	// confirmation. This state survives client churn and, with a
	// ProvenanceStore, hub restarts.
	pushedTo map[string]bool
	armed    bool
	armEpoch uint64 // fleet epoch assigned at arming; 0 while unarmed
}

// Exchange is the fleet hub. It holds no references to device Services —
// devices exist for it only as wire sessions attached with Accept — so
// any transport that moves wire messages can carry a fleet.
type Exchange struct {
	threshold int
	store     ProvenanceStore
	// gen identifies this hub incarnation in acks. Fleet epochs are only
	// meaningful within one incarnation: after a restart (above all one
	// without a provenance store) the counter may regrow past a
	// disconnected client's epoch, so clients key their resume point on
	// (gen, epoch) and start over when gen changes. A full re-catch-up
	// after a restart is a little redundant traffic — hot-install
	// dedupes — never a lost antibody.
	gen string

	mu                        sync.Mutex
	entries                   map[string]*fleetSig
	order                     []string // keys in first-report order
	conns                     map[string]*Conn
	epoch                     uint64 // fleet arm counter (the delta epoch for pushes)
	closed                    bool
	reports, confirms, echoes uint64

	// persistMu serializes provenance-store appends in mutation order;
	// acquired while still holding mu, released after the write (same
	// handoff as Service.persistMu). Lock order: mu > persistMu.
	persistMu sync.Mutex

	batchBatches  atomic.Uint64
	batchSigs     atomic.Uint64
	persistErrors atomic.Uint64
}

// ExchangeOption configures an Exchange.
type ExchangeOption func(*Exchange)

// WithProvenanceStore attaches durable provenance: every confirmation,
// push, and arming is upserted to the store, and a new Exchange over the
// same store resumes with the full fleet state — a rebooted hub neither
// arms below threshold nor loses confirmations.
func WithProvenanceStore(store ProvenanceStore) ExchangeOption {
	return func(x *Exchange) { x.store = store }
}

// NewExchange creates a hub that arms a signature fleet-wide once
// confirmThreshold distinct devices have reported it (values below 1 are
// treated as 1: arm on first report). With WithProvenanceStore, prior
// fleet state is reloaded before the hub accepts its first session.
func NewExchange(confirmThreshold int, opts ...ExchangeOption) (*Exchange, error) {
	if confirmThreshold < 1 {
		confirmThreshold = 1
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("exchange: generation nonce: %w", err)
	}
	x := &Exchange{
		threshold: confirmThreshold,
		entries:   make(map[string]*fleetSig),
		conns:     make(map[string]*Conn),
		gen:       hex.EncodeToString(nonce[:]),
	}
	for _, opt := range opts {
		opt(x)
	}
	if x.store != nil {
		recs, err := x.store.Load()
		if err != nil {
			return nil, fmt.Errorf("exchange: load provenance: %w", err)
		}
		for _, rec := range recs {
			sig, err := rec.Sig.ToCore()
			if err != nil {
				return nil, fmt.Errorf("exchange: provenance record %q: %w", rec.Key, err)
			}
			e := &fleetSig{
				sig:         sig,
				seq:         rec.Seq,
				firstSeen:   rec.FirstSeen,
				confirmedBy: make(map[string]bool, len(rec.ConfirmedBy)),
				pushedTo:    make(map[string]bool, len(rec.PushedTo)),
				armed:       rec.Armed,
				armEpoch:    rec.ArmEpoch,
			}
			for _, d := range rec.ConfirmedBy {
				e.confirmedBy[d] = true
			}
			for _, d := range rec.PushedTo {
				e.pushedTo[d] = true
			}
			x.entries[rec.Key] = e
			x.order = append(x.order, rec.Key)
			if rec.ArmEpoch > x.epoch {
				x.epoch = rec.ArmEpoch
			}
		}
	}
	return x, nil
}

// Threshold returns the confirm-before-arm threshold.
func (x *Exchange) Threshold() int { return x.threshold }

// recordLocked snapshots e as a provenance record. Caller holds x.mu.
func (x *Exchange) recordLocked(key string, e *fleetSig) ProvenanceRecord {
	return ProvenanceRecord{
		Seq:         e.seq,
		Key:         key,
		Sig:         wire.FromCore(e.sig),
		FirstSeen:   e.firstSeen,
		ConfirmedBy: sortedKeys(e.confirmedBy),
		PushedTo:    sortedKeys(e.pushedTo),
		Armed:       e.armed,
		ArmEpoch:    e.armEpoch,
	}
}

// persistHandoffLocked must be called with x.mu held and the dirty
// records already snapshotted. It takes persistMu (so writes land in
// mutation order), and returns the function the caller runs after
// releasing x.mu to perform the writes.
func (x *Exchange) persistHandoffLocked(recs []ProvenanceRecord) func() {
	if x.store == nil || len(recs) == 0 {
		return func() {}
	}
	x.persistMu.Lock()
	store := x.store
	return func() {
		defer x.persistMu.Unlock()
		// One write per mutation when the store can batch (FileProvenance
		// does), instead of an open/write/close cycle per record.
		if ba, ok := store.(interface {
			AppendBatch([]ProvenanceRecord) error
		}); ok {
			if err := ba.AppendBatch(recs); err != nil {
				x.persistErrors.Add(1)
			}
			return
		}
		for _, rec := range recs {
			if err := store.Append(rec); err != nil {
				x.persistErrors.Add(1)
			}
		}
	}
}

// Accept attaches one inbound wire session to the hub. send delivers one
// hub→client message over the session and is only ever called from the
// connection's dedicated push goroutine; closeSession tears the carrying
// session down (close the socket, signal the loopback peer) and is
// called exactly once, after the push queue has drained. The transport
// feeds client→hub messages to Conn.Handle and must close the Conn when
// its session dies.
func (x *Exchange) Accept(send func(wire.Message) error, closeSession func()) (*Conn, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, fmt.Errorf("exchange: closed")
	}
	c := &Conn{hub: x, closeSession: closeSession}
	c.out = newMsgQueue(send, func(batches, sigs uint64) {
		x.batchBatches.Add(batches)
		x.batchSigs.Add(sigs)
	})
	// Set before Accept returns: nothing can be enqueued (and thus no
	// send can fail) until the caller has the Conn.
	c.out.onDead = c.Close
	return c, nil
}

// Conn is the hub's side of one wire session. Transports create it with
// Exchange.Accept, feed inbound messages to Handle, and Close it when
// the session ends.
type Conn struct {
	hub          *Exchange
	out          *msgQueue
	closeSession func()

	mu        sync.Mutex
	device    string // set by a successful hello
	closed    bool
	closeOnce sync.Once
}

// Device returns the device id bound by hello, or "".
func (c *Conn) Device() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.device
}

// refuse sends a final failure ack and reports the protocol error.
func (c *Conn) refuse(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	c.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeAck, Ack: &wire.Ack{OK: false, Error: msg}})
	return fmt.Errorf("exchange session: %s", msg)
}

// Handle processes one client→hub message. A non-nil error means the
// session violated the protocol (bad version, malformed signature,
// message before hello): the hub has already queued a failure ack where
// one applies, and the transport must Close the Conn.
func (c *Conn) Handle(m wire.Message) error {
	if err := m.Validate(); err != nil {
		// The TCP path validates at decode, but Handle is the hub's API
		// surface for any transport (the loopback hands messages over
		// directly): a structurally broken envelope — wrong or missing
		// payload — must refuse, not panic on a nil payload below.
		return c.refuse("%v", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("exchange session: closed")
	}
	device := c.device
	c.mu.Unlock()

	switch m.Type {
	case wire.TypeHello:
		return c.handleHello(m)
	case wire.TypeStatusReq:
		// Status is answerable before hello: monitoring probes need no
		// device identity.
		c.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeStatus, Status: c.hub.status()})
		return nil
	case wire.TypeReport:
		if device == "" {
			return c.refuse("report before hello")
		}
		return c.handleReport(device, m.Report)
	default:
		return c.refuse("unexpected client message type %q", m.Type)
	}
}

// handleHello validates the handshake and registers the device: version
// check, supersede of any stale session with the same device id, an ok
// ack carrying the hub epoch, then one catch-up delta with every armed
// signature the device's epoch predates.
func (c *Conn) handleHello(m wire.Message) error {
	if m.V != wire.Version {
		return c.refuse("unsupported protocol version %d (hub speaks %d)", m.V, wire.Version)
	}
	h := m.Hello
	if h.Device == "" {
		return c.refuse("empty device id")
	}
	c.mu.Lock()
	already := c.device
	c.mu.Unlock()
	if already != "" {
		// A second hello on one session would re-register the Conn under
		// a new id while x.conns still mapped the old id to it, so pushes
		// would be recorded against a device that never received them.
		return c.refuse("duplicate hello (session already bound to device %s)", already)
	}

	x := c.hub
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return c.refuse("exchange closed")
	}
	// Reconnect-friendly registration: a new hello for a device that
	// still has a (possibly dead) session supersedes it. TCP clients
	// redial before the hub notices the old socket died.
	var stale *Conn
	if old, ok := x.conns[h.Device]; ok && old != c {
		stale = old
	}
	c.mu.Lock()
	c.device = h.Device
	c.mu.Unlock()
	x.conns[h.Device] = c

	c.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeAck, Ack: &wire.Ack{OK: true, Epoch: x.epoch, Gen: x.gen}})

	// Catch-up: every armed signature the client's epoch predates, as a
	// single batched delta, oldest arming first.
	var dirty []ProvenanceRecord
	var sigs []wire.Signature
	type armedEntry struct {
		key string
		e   *fleetSig
	}
	var catchup []armedEntry
	for _, key := range x.order {
		if e := x.entries[key]; e.armed && e.armEpoch > h.Epoch {
			catchup = append(catchup, armedEntry{key, e})
		}
	}
	sort.Slice(catchup, func(i, j int) bool { return catchup[i].e.armEpoch < catchup[j].e.armEpoch })
	for _, ae := range catchup {
		sigs = append(sigs, wire.FromCore(ae.e.sig))
		if !ae.e.pushedTo[h.Device] {
			ae.e.pushedTo[h.Device] = true
			dirty = append(dirty, x.recordLocked(ae.key, ae.e))
		}
	}
	if len(sigs) > 0 {
		c.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeDelta, Delta: &wire.Delta{Epoch: x.epoch, Sigs: sigs}})
	}
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()

	if stale != nil {
		// A final failure ack tells the stale session's client to stop
		// for good instead of redialing into a supersession ping-pong;
		// Close drains the queue, so the ack goes out first. Close runs
		// on its own goroutine: it waits out the stale drain, which on a
		// wedged TCP peer only unblocks at the transport write deadline,
		// and the new session's handshake must not wait for that.
		stale.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeAck,
			Ack: &wire.Ack{OK: false, Error: fmt.Sprintf("superseded by a newer session for device %s", h.Device)}})
		go stale.Close()
	}
	return nil
}

// handleReport records the batch's signatures as confirmations by
// device, arming at threshold, and answers each with a confirm receipt.
// The whole batch is one hub mutation: a reconnect re-reports a
// device's entire history in one report message, and that must not cost
// one lock acquisition and one store write per signature.
func (c *Conn) handleReport(device string, r *wire.Report) error {
	sigs := make([]*core.Signature, 0, len(r.Sigs))
	for _, ws := range r.Sigs {
		sig, err := ws.ToCore()
		if err != nil {
			return c.refuse("malformed reported signature: %v", err)
		}
		sigs = append(sigs, sig)
	}
	for _, confirm := range c.hub.reportAll(device, sigs) {
		c.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeConfirm, Confirm: confirm})
	}
	return nil
}

// Close detaches the session: the device slot is released (unless a
// newer session superseded it), the push queue drains, and the transport
// teardown hook runs. Close is idempotent.
func (c *Conn) Close() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		device := c.device
		c.mu.Unlock()
		x := c.hub
		x.mu.Lock()
		if device != "" && x.conns[device] == c {
			delete(x.conns, device)
		}
		x.mu.Unlock()
		c.out.close()
		if c.closeSession != nil {
			c.closeSession()
		}
	})
}

// report records a single confirmation; tests drive the hub's dedup
// guards through it directly.
func (x *Exchange) report(device string, sig *core.Signature) (confirmations int, armed bool) {
	confirms := x.reportAll(device, []*core.Signature{sig})
	if len(confirms) == 0 {
		return 0, false
	}
	return confirms[0].Confirmations, confirms[0].Armed
}

// reportAll records the batch as confirmations by device and arms
// signatures whose threshold is reached, under one hub lock and one
// provenance write. It returns a confirm receipt per signature and is
// called from transport goroutines with no service or core locks held.
func (x *Exchange) reportAll(device string, sigs []*core.Signature) []*wire.Confirm {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return nil
	}
	confirms := make([]*wire.Confirm, 0, len(sigs))
	var dirty []ProvenanceRecord
	for _, sig := range sigs {
		key := sig.Key()
		x.reports++
		e, ok := x.entries[key]
		if !ok {
			e = &fleetSig{
				sig:         &core.Signature{Kind: sig.Kind, Pairs: core.ClonePairs(sig.Pairs)},
				seq:         len(x.order) + 1,
				firstSeen:   device,
				confirmedBy: make(map[string]bool),
				pushedTo:    make(map[string]bool),
			}
			x.entries[key] = e
			x.order = append(x.order, key)
		}
		switch {
		case e.confirmedBy[device] || e.pushedTo[device]:
			// Already counted, or the device only has the signature
			// because the hub pushed it there: not an independent
			// observation.
			x.echoes++
		default:
			e.confirmedBy[device] = true
			x.confirms++
			if !e.armed && len(e.confirmedBy) >= x.threshold {
				e.armed = true
				x.epoch++
				e.armEpoch = x.epoch
				d := &wire.Delta{Epoch: x.epoch, Sigs: []wire.Signature{wire.FromCore(e.sig)}}
				for id, conn := range x.conns {
					conn.out.enqueue(wire.Message{V: wire.Version, Type: wire.TypeDelta, Delta: d})
					e.pushedTo[id] = true
				}
			}
			dirty = append(dirty, x.recordLocked(key, e))
		}
		confirms = append(confirms, &wire.Confirm{Key: key, Confirmations: len(e.confirmedBy), Armed: e.armed})
	}
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()
	return confirms
}

// status snapshots the hub as a wire status payload.
func (x *Exchange) status() *wire.Status {
	x.mu.Lock()
	defer x.mu.Unlock()
	st := &wire.Status{
		Epoch:     x.epoch,
		Threshold: x.threshold,
		Batching:  wire.Batching{Batches: x.batchBatches.Load(), Signatures: x.batchSigs.Load()},
	}
	for id := range x.conns {
		st.Devices = append(st.Devices, id)
	}
	sort.Strings(st.Devices)
	for _, key := range x.order {
		e := x.entries[key]
		st.Provenance = append(st.Provenance, wire.SigStatus{
			Key:           key,
			Kind:          e.sig.Kind.String(),
			FirstSeen:     e.firstSeen,
			Confirmations: len(e.confirmedBy),
			ConfirmedBy:   sortedKeys(e.confirmedBy),
			Armed:         e.armed,
		})
	}
	return st
}

// Status returns the hub's observability snapshot — the same payload a
// status-req receives over the wire and the daemon serves on /status.
func (x *Exchange) Status() wire.Status { return *x.status() }

// Provenance returns the audit records of every signature the fleet has
// seen, in first-report order.
func (x *Exchange) Provenance() []Provenance {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Provenance, 0, len(x.order))
	for _, key := range x.order {
		e := x.entries[key]
		out = append(out, Provenance{
			Key:           key,
			Kind:          e.sig.Kind,
			FirstSeen:     e.firstSeen,
			Confirmations: len(e.confirmedBy),
			ConfirmedBy:   sortedKeys(e.confirmedBy),
			Armed:         e.armed,
		})
	}
	return out
}

// ArmedCount returns how many signatures are armed fleet-wide.
func (x *Exchange) ArmedCount() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return int(x.epoch)
}

// Stats snapshots the hub counters.
func (x *Exchange) Stats() ExchangeStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return ExchangeStats{
		Epoch:           x.epoch,
		Devices:         len(x.conns),
		Reports:         x.reports,
		Confirmations:   x.confirms,
		Echoes:          x.echoes,
		DeltaBatches:    x.batchBatches.Load(),
		DeltaSignatures: x.batchSigs.Load(),
		PersistErrors:   x.persistErrors.Load(),
	}
}

// Close disconnects every session and shuts the hub down. Provenance
// already persisted survives for the next Exchange over the same store.
// Close is idempotent.
func (x *Exchange) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	conns := make([]*Conn, 0, len(x.conns))
	for _, c := range x.conns {
		conns = append(conns, c)
	}
	x.mu.Unlock()
	// Concurrently: each Close drains its push queue, and a wedged TCP
	// peer holds its drain until the transport write deadline — serial
	// teardown would stack those waits.
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *Conn) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
}

// msgQueue is a connection's ordered hub→client push queue, drained by a
// dedicated goroutine so the hub never blocks on a slow session, with
// delta coalescing: consecutive queued deltas collapse into one wire
// message carrying the newest epoch — under a publish storm a slow
// subscriber receives one batched push, never a backlog of stale ones.
type msgQueue struct {
	send    func(wire.Message) error
	onBatch func(batches, sigs uint64)
	// onDead runs (once, on its own goroutine) when a send fails: the
	// session is unusable and its Conn must be torn down even if the
	// peer never closes its side of the socket (a reader that went
	// silent would otherwise stay registered forever).
	onDead func()

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []wire.Message
	closed bool
	done   chan struct{}
}

func newMsgQueue(send func(wire.Message) error, onBatch func(batches, sigs uint64)) *msgQueue {
	q := &msgQueue{send: send, onBatch: onBatch, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.drain()
	return q
}

// enqueue appends a message. Never blocks.
func (q *msgQueue) enqueue(m wire.Message) {
	q.mu.Lock()
	if !q.closed {
		q.queue = append(q.queue, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// coalesce collapses consecutive deltas in batch into single messages.
// Ordering relative to non-delta messages is preserved; a merged delta
// carries the newest epoch of its run, so no stale epoch is ever sent.
func coalesce(batch []wire.Message) []wire.Message {
	out := batch[:0]
	for _, m := range batch {
		if m.Type == wire.TypeDelta && len(out) > 0 && out[len(out)-1].Type == wire.TypeDelta {
			prev := out[len(out)-1].Delta
			merged := &wire.Delta{Epoch: prev.Epoch, Sigs: append(append([]wire.Signature{}, prev.Sigs...), m.Delta.Sigs...)}
			if m.Delta.Epoch > merged.Epoch {
				merged.Epoch = m.Delta.Epoch
			}
			out[len(out)-1].Delta = merged
			continue
		}
		out = append(out, m)
	}
	return out
}

// drain sends queued messages in order until closed, coalescing pending
// deltas. A send error ends the queue and fires onDead (on a fresh
// goroutine — the teardown calls close, which waits for this goroutine
// to exit).
func (q *msgQueue) drain() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.queue) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.queue) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		batch := q.queue
		q.queue = nil
		q.mu.Unlock()
		for _, m := range coalesce(batch) {
			if err := q.send(m); err != nil {
				q.mu.Lock()
				q.closed = true
				q.queue = nil
				q.mu.Unlock()
				if q.onDead != nil {
					go q.onDead()
				}
				return
			}
			if m.Type == wire.TypeDelta && q.onBatch != nil {
				q.onBatch(1, uint64(len(m.Delta.Sigs)))
			}
		}
	}
}

// close stops the queue after delivering what is already enqueued, and
// waits for the drain goroutine to exit.
func (q *msgQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	q.cond.Signal()
	q.mu.Unlock()
	<-q.done
}
