package immunity

import (
	"fmt"
	"sync"

	"github.com/dimmunix/dimmunix/internal/core"
)

// The cross-device tier. An Exchange is the fleet hub a set of phones
// syncs deadlock histories through: each phone's Service connects via an
// ExchangeClient, reports locally detected signatures upward, and
// receives fleet-armed signatures downward, which it publishes into the
// local Service — immunizing every live process on the phone. The hub
// keeps per-signature provenance (first-seen device, the set of
// confirming devices) and arms a signature fleet-wide only after the
// confirm-before-arm threshold of *distinct* devices has independently
// reported it: one device's false positive (a mis-detected cycle, a
// corrupted history) cannot degrade avoidance on the whole fleet.
//
// A signature a client receives from the hub is never re-reported as a
// local confirmation — confirmations count independent observations
// only, so the threshold is meaningful.

// Provenance is one fleet signature's audit record.
type Provenance struct {
	// Key is the signature's canonical identity (core.Signature.Key).
	Key string
	// Kind is the signature kind.
	Kind core.SigKind
	// FirstSeen is the device that first reported the signature.
	FirstSeen string
	// Confirmations is the number of distinct devices that independently
	// reported it.
	Confirmations int
	// ConfirmedBy lists those devices, sorted.
	ConfirmedBy []string
	// Armed reports whether the signature has been armed fleet-wide.
	Armed bool
}

// fleetSig is the hub-side state of one signature.
type fleetSig struct {
	sig         *core.Signature
	firstSeen   string
	confirmedBy map[string]bool
	// pushedTo records the devices the hub has delivered this signature
	// to. A report from such a device is not an independent observation —
	// it is the push coming back (possibly via the device's persistent
	// store after a reconnect or reboot) — and never counts as a
	// confirmation. Hub-side state survives client churn, which the
	// client's own fromFleet map does not.
	pushedTo map[string]bool
	armed    bool
}

// Exchange is the fleet hub.
type Exchange struct {
	threshold int

	mu      sync.Mutex
	entries map[string]*fleetSig
	order   []string // keys in first-report order
	clients map[string]*ExchangeClient
	armed   uint64 // fleet arm counter (the delta epoch for pushes)
	closed  bool
}

// NewExchange creates a hub that arms a signature fleet-wide once
// confirmThreshold distinct devices have reported it (values below 1 are
// treated as 1: arm on first report).
func NewExchange(confirmThreshold int) *Exchange {
	if confirmThreshold < 1 {
		confirmThreshold = 1
	}
	return &Exchange{
		threshold: confirmThreshold,
		entries:   make(map[string]*fleetSig),
		clients:   make(map[string]*ExchangeClient),
	}
}

// Threshold returns the confirm-before-arm threshold.
func (x *Exchange) Threshold() int { return x.threshold }

// ExchangeClient bridges one phone's Service to the hub.
type ExchangeClient struct {
	id  string
	hub *Exchange
	svc *Service

	mu        sync.Mutex
	fromFleet map[string]bool // keys received from the hub; not re-reported
	// cancelLocal (the phone → hub subscription) and closed are guarded
	// by mu: Connect assigns the cancel after the client is already
	// reachable through the hub, so a concurrent Close must either find
	// it or leave a note that Connect should cancel immediately.
	cancelLocal func()
	closed      bool

	push      *subscriber // hub → phone deliveries
	closeOnce sync.Once
}

// Connect attaches a phone's Service to the hub under deviceID. The
// client immediately receives every already-armed fleet signature
// (catch-up), then reports the phone's entire local history — including
// signatures recorded before connecting — and every future local
// detection upward. Disconnect with Close.
func (x *Exchange) Connect(deviceID string, svc *Service) (*ExchangeClient, error) {
	if svc == nil {
		return nil, fmt.Errorf("exchange connect %s: nil service", deviceID)
	}
	c := &ExchangeClient{id: deviceID, hub: x, svc: svc, fromFleet: make(map[string]bool)}
	c.push = newSubscriber("fleet->"+deviceID, c.receive)

	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		c.push.close()
		return nil, fmt.Errorf("exchange connect %s: exchange closed", deviceID)
	}
	if _, dup := x.clients[deviceID]; dup {
		x.mu.Unlock()
		c.push.close()
		return nil, fmt.Errorf("exchange connect %s: device already connected", deviceID)
	}
	x.clients[deviceID] = c
	// Catch-up: a phone joining (or rejoining after a reboot) receives
	// the armed set before any live pushes.
	var catchup []*core.Signature
	for _, key := range x.order {
		if e := x.entries[key]; e.armed {
			catchup = append(catchup, e.sig)
			e.pushedTo[deviceID] = true
		}
	}
	if len(catchup) > 0 {
		c.push.enqueue(delta{epoch: x.armed, sigs: catchup})
	}
	x.mu.Unlock()

	// Subscribe from epoch 0 so pre-existing local history is reported
	// too; the delivery goroutine calls report with no locks held.
	cancel := svc.Subscribe("exchange:"+deviceID, 0, func(_ uint64, sigs []*core.Signature) {
		for _, sig := range sigs {
			c.reportLocal(sig)
		}
	})
	c.mu.Lock()
	c.cancelLocal = cancel
	closed := c.closed
	c.mu.Unlock()
	if closed {
		cancel()
	}
	return c, nil
}

// reportLocal forwards one locally accepted signature to the hub, unless
// the signature came *from* the hub in the first place.
func (c *ExchangeClient) reportLocal(sig *core.Signature) {
	key := sig.Key()
	c.mu.Lock()
	skip := c.fromFleet[key]
	c.mu.Unlock()
	if skip {
		return
	}
	c.hub.report(c.id, sig)
}

// receive delivers fleet-armed signatures into the phone's Service. The
// key is marked before publishing so the local delta subscription never
// echoes it back as a confirmation.
func (c *ExchangeClient) receive(_ uint64, sigs []*core.Signature) {
	for _, sig := range sigs {
		c.mu.Lock()
		c.fromFleet[sig.Key()] = true
		c.mu.Unlock()
		_, _, _ = c.svc.Publish("fleet", sig)
	}
}

// DeviceID returns the client's device id.
func (c *ExchangeClient) DeviceID() string { return c.id }

// Close disconnects the phone from the hub: local reporting stops, the
// push queue drains, and the device slot is released. Close is
// idempotent.
func (c *ExchangeClient) Close() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		cancel := c.cancelLocal
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		c.hub.mu.Lock()
		delete(c.hub.clients, c.id)
		c.hub.mu.Unlock()
		c.push.close()
	})
}

// report records a confirmation of sig by device and arms the signature
// fleet-wide when the threshold is reached. It is called from client
// delivery goroutines with no service or core locks held.
func (x *Exchange) report(device string, sig *core.Signature) {
	key := sig.Key()
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	e, ok := x.entries[key]
	if !ok {
		e = &fleetSig{
			sig:         &core.Signature{Kind: sig.Kind, Pairs: core.ClonePairs(sig.Pairs)},
			firstSeen:   device,
			confirmedBy: make(map[string]bool),
			pushedTo:    make(map[string]bool),
		}
		x.entries[key] = e
		x.order = append(x.order, key)
	}
	if e.confirmedBy[device] || e.pushedTo[device] {
		// Already counted, or the device only has the signature because
		// the hub pushed it there: not an independent observation.
		x.mu.Unlock()
		return
	}
	e.confirmedBy[device] = true
	if !e.armed && len(e.confirmedBy) >= x.threshold {
		e.armed = true
		x.armed++
		d := delta{epoch: x.armed, sigs: []*core.Signature{e.sig}}
		for id, c := range x.clients {
			c.push.enqueue(d)
			e.pushedTo[id] = true
		}
	}
	x.mu.Unlock()
}

// Provenance returns the audit records of every signature the fleet has
// seen, in first-report order.
func (x *Exchange) Provenance() []Provenance {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Provenance, 0, len(x.order))
	for _, key := range x.order {
		e := x.entries[key]
		out = append(out, Provenance{
			Key:           key,
			Kind:          e.sig.Kind,
			FirstSeen:     e.firstSeen,
			Confirmations: len(e.confirmedBy),
			ConfirmedBy:   sortedKeys(e.confirmedBy),
			Armed:         e.armed,
		})
	}
	return out
}

// ArmedCount returns how many signatures are armed fleet-wide.
func (x *Exchange) ArmedCount() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return int(x.armed)
}

// Close disconnects every client and shuts the hub down. Close is
// idempotent.
func (x *Exchange) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	clients := make([]*ExchangeClient, 0, len(x.clients))
	for _, c := range x.clients {
		clients = append(clients, c)
	}
	x.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
