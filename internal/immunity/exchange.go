package immunity

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// The cross-device tier. An Exchange is the fleet hub a set of phones
// syncs deadlock histories through, and it speaks only the wire protocol
// (package wire): each phone's Service connects via an ExchangeClient
// over a Transport — the in-process loopback or real TCP — reports
// locally detected signatures upward, and receives fleet-armed
// signatures downward as delta pushes, which it publishes into the local
// Service, immunizing every live process on the phone. The hub keeps
// per-signature provenance (first-seen device, the set of confirming
// devices, the set of devices it pushed to) and arms a signature
// fleet-wide only after the confirm-before-arm threshold of *distinct*
// devices has independently reported it: one device's false positive (a
// mis-detected cycle, a corrupted history) cannot degrade avoidance on
// the whole fleet.
//
// A signature the hub has pushed to a device is never counted again as
// that device's confirmation — whether it comes back through a live
// client's echo, a reconnect's epoch-0 re-report, or (with a
// ProvenanceStore) a report replayed after a hub reboot — so the
// threshold counts independent observations only.

// ErrFenced reports that a peer arm-broadcast was refused by the
// membership fencing rule: its fence epoch was stale and its sender no
// longer owns the signature. The link layer treats it as a refusal —
// counted, cursor not advanced — not a session error.
var ErrFenced = errors.New("exchange: stale owner arm-broadcast fenced")

// Provenance is one fleet signature's audit record.
type Provenance struct {
	// Key is the signature's canonical identity (core.Signature.Key).
	Key string
	// Kind is the signature kind.
	Kind core.SigKind
	// FirstSeen is the device that first reported the signature.
	FirstSeen string
	// Confirmations is the number of distinct devices that independently
	// reported it. On a non-owning hub of a cluster this is the count
	// replicated at arming, not a live view.
	Confirmations int
	// ConfirmedBy lists those devices, sorted. Only the owning hub holds
	// the authoritative set; a replicated armed entry's is empty.
	ConfirmedBy []string
	// Armed reports whether the signature has been armed fleet-wide.
	Armed bool
	// Owner is the cluster id of the hub that owns the signature's
	// confirm-before-arm bookkeeping ("" outside a cluster).
	Owner string
	// Tenant scopes the record to one tenant's fleet ("" for the
	// default tenant). Tenants' records never mix: confirmations,
	// arming, and pushes all stay within the record's tenant.
	Tenant string
}

// ExchangeStats snapshots the hub's counters.
type ExchangeStats struct {
	// Epoch is the fleet delta epoch (number of armings so far).
	Epoch uint64
	// Devices is the number of currently connected devices.
	Devices int
	// Reports counts signatures received in report messages.
	Reports uint64
	// Confirmations counts reports accepted as fresh confirmations.
	Confirmations uint64
	// Echoes counts reports discarded because the device had already
	// confirmed the signature or only held it via a hub push.
	Echoes uint64
	// DeltaBatches and DeltaSignatures count delta pushes actually sent:
	// DeltaSignatures/DeltaBatches > 1 means publish storms were
	// coalesced into fewer wire messages.
	DeltaBatches, DeltaSignatures uint64
	// PersistErrors counts failed provenance-store appends (the
	// in-memory state still gates correctly; only restart durability of
	// the failed record is lost).
	PersistErrors uint64
	// Forwards counts device-reported signatures relayed to their owning
	// hub (cluster mode only).
	Forwards uint64
	// RemoteInstalls counts armed signatures installed from peer
	// arm-broadcasts (cluster mode only).
	RemoteInstalls uint64
	// Fenced counts stale peer arm-broadcasts refused by the membership
	// fencing rule (cluster mode only).
	Fenced uint64
	// AdmissionAdmitted/Delayed/Shed snapshot the report admission pool
	// (all zero when admission is disabled): reports admitted without
	// waiting, admitted after a bounded wait, and dropped at max wait.
	AdmissionAdmitted, AdmissionDelayed, AdmissionShed uint64
	// Parked is the number of signatures whose threshold crossing is
	// currently deferred because the hub does not hold the quorum lease
	// (cluster mode with leases only; see ClusterBinding.MayArm).
	Parked int
}

// hubMetrics bundles the registry instruments the Exchange hot paths
// touch. Every field is created once at construction; all operations
// are lock-free atomics, safe under x.mu and the push-queue locks.
type hubMetrics struct {
	reports        *metrics.Counter
	confirms       *metrics.Counter
	echoes         *metrics.Counter
	armed          *metrics.Counter
	forwards       *metrics.Counter
	remoteInstalls *metrics.Counter
	persistErrors  *metrics.Counter
	fenced         *metrics.Counter
	replicaRecords *metrics.Counter
	handoffRecords *metrics.Counter
	parkedArms     *metrics.Counter
	parkedGauge    *metrics.Gauge
	authFailures   *metrics.CounterVec
	deviceSessions *metrics.Gauge
	peerSessions   *metrics.Gauge
	pushDepth      *metrics.Gauge
	pushInFlight   *metrics.Gauge
	pushBatchSizes *metrics.Histogram
	pushCoalesce   *metrics.Histogram
	reportSeconds  *metrics.Histogram
	handleSeconds  *metrics.Histogram
}

func newHubMetrics(reg *metrics.Registry) hubMetrics {
	return hubMetrics{
		reports:        reg.Counter("immunity_hub_reports_total", "Signatures received in report messages."),
		confirms:       reg.Counter("immunity_hub_confirmations_total", "Reports accepted as fresh confirmations."),
		echoes:         reg.Counter("immunity_hub_echoes_total", "Reports discarded as echoes of hub pushes or duplicates."),
		armed:          reg.Counter("immunity_hub_armed_total", "Signatures armed fleet-wide on this hub (local + remote installs)."),
		forwards:       reg.Counter("immunity_hub_forwards_total", "Device-reported signatures relayed to their owning hub."),
		remoteInstalls: reg.Counter("immunity_hub_remote_installs_total", "Armed signatures installed from peer arm-broadcasts."),
		persistErrors:  reg.Counter("immunity_hub_persist_errors_total", "Failed provenance-store appends."),
		fenced:         reg.Counter("immunity_hub_fenced_total", "Stale peer arm-broadcasts refused by the membership fencing rule."),
		replicaRecords: reg.Counter("immunity_hub_replica_records_total", "Deputy-replicated pending confirmation sets installed."),
		handoffRecords: reg.Counter("immunity_hub_handoff_records_total", "Owned provenance records imported via ownership handoff."),
		parkedArms:     reg.Counter("immunity_hub_parked_arms_total", "Threshold crossings deferred because the hub did not hold the quorum lease."),
		parkedGauge:    reg.Gauge("immunity_hub_parked_arms", "Signatures currently parked at threshold awaiting the quorum lease."),
		authFailures:   reg.CounterVec("immunity_hub_auth_failures_total", "Sessions refused by authentication, by reason.", "reason"),
		deviceSessions: reg.Gauge("immunity_hub_device_sessions", "Devices currently attached by hello."),
		peerSessions:   reg.Gauge("immunity_hub_peer_sessions", "Peer hubs currently attached by peer-hello."),
		pushDepth:      reg.Gauge("immunity_hub_push_pending", "Items pending (queued + in flight) across all session push queues."),
		pushInFlight:   reg.Gauge("immunity_hub_push_inflight", "Items taken by push-queue drains and not yet delivered."),
		pushBatchSizes: reg.Histogram("immunity_hub_push_batch_size", "Messages per push-queue drain after coalescing.", metrics.SizeBuckets()),
		pushCoalesce:   reg.Histogram("immunity_hub_push_coalesce_ratio", "Raw queued messages per delivered message, per drain.", metrics.RatioBuckets()),
		reportSeconds:  reg.Histogram("immunity_hub_report_seconds", "Report-batch handling time, admission wait included.", metrics.DurationBuckets()),
		handleSeconds:  reg.Histogram("immunity_hub_report_handle_seconds", "Report-batch processing time, admission wait excluded.", metrics.DurationBuckets()),
	}
}

// fleetSig is the hub-side state of one signature.
type fleetSig struct {
	sig *core.Signature
	// ws is the canonical wire form, interned when the record is created:
	// the catch-up, broadcast, delta, and provenance paths reuse it
	// instead of re-deriving every call-stack key per message.
	ws          wire.Signature
	seq         int // first-report order, 1-based
	firstSeen   string
	confirmedBy map[string]bool
	// pushedTo records the devices the hub has delivered this signature
	// to. A report from such a device is not an independent observation —
	// it is the push coming back (possibly via the device's persistent
	// store after a reconnect or reboot) — and never counts as a
	// confirmation. This state survives client churn and, with a
	// ProvenanceStore, hub restarts.
	pushedTo map[string]bool
	armed    bool
	armEpoch uint64 // fleet epoch assigned at arming; 0 while unarmed

	// Cluster fields. owner is the cluster id of the hub owning the
	// signature's confirm bookkeeping ("" outside a cluster); ownerSeq is
	// the owner's monotonic arming sequence (0 while unarmed) — for owned
	// entries it orders peer catch-up replay, for replicated entries it is
	// the peer resume point. remoteConfirms caches the confirmation count
	// an arm-broadcast carried, so a non-owner hub can answer echo
	// reports without a round trip to the owner.
	owner          string
	ownerSeq       uint64
	remoteConfirms int

	// tenant is the fleet the signature belongs to ("" = default). The
	// entry's map key is tenantKey(tenant, sig.Key()), so two tenants
	// reporting the byte-identical signature hold two independent
	// entries — confirmations, thresholds, and armings never cross.
	tenant string
}

// tenantKey derives a signature's canonical hub key: the plain
// signature key for the default tenant (every pre-v5 key is unchanged),
// a tenant-prefixed key otherwise. The prefix rides through the
// ownership ring hash, forwarding, replication, and handoff untouched —
// tenancy is a property of the key, so every cluster path is
// tenant-aware for free.
func tenantKey(tenant, key string) string {
	if tenant == "" {
		return key
	}
	return "t=" + tenant + "|" + key
}

// sessKey is the conns-map key for one device session: device ids are
// only unique within a tenant.
func sessKey(tenant, device string) string {
	if tenant == "" {
		return device
	}
	return tenant + "/" + device
}

// authReason maps a verifier error to its failure-counter label.
func authReason(err error) string {
	switch {
	case errors.Is(err, auth.ErrExpired):
		return "expired"
	case errors.Is(err, auth.ErrBadSignature):
		return "bad-signature"
	case errors.Is(err, auth.ErrUnknownKey):
		return "unknown-key"
	default:
		return "malformed"
	}
}

// ClusterBinding is how a federated cluster node (internal/immunity/
// cluster) plugs into a hub. The Exchange calls it to decide ownership
// and to relay device reports for foreign signatures; it never holds
// Exchange.mu across these calls except the pure ones (Owns, OwnerOf,
// Epoch, MemberSnapshot), which must not call back into the Exchange —
// the node answers them from its own leaf-locked membership state.
type ClusterBinding interface {
	// SelfID is this hub's cluster id.
	SelfID() string
	// Members is the full ownership-ring membership, self included.
	Members() []string
	// Owns reports whether this hub owns the signature key. It is called
	// with Exchange.mu held and must not call back into the Exchange.
	Owns(key string) bool
	// OwnerOf names the hub currently owning key under the live ring.
	// Pure: called with Exchange.mu held.
	OwnerOf(key string) string
	// Epoch is the membership epoch — the fencing token stamped on
	// arm-broadcasts and checked on receipt. Pure: called with
	// Exchange.mu held.
	Epoch() uint64
	// MemberSnapshot is the full membership state at its current epoch,
	// pushed to freshly handshaken peers. Pure: called with Exchange.mu
	// held.
	MemberSnapshot() wire.MemberUpdate
	// ForwardReport relays a device's report for foreign signatures
	// toward their owning hubs, preserving the tenant and device
	// attribution; keys holds each signature's canonical (tenant-
	// prefixed) key (parallel to sigs) so the node can group by owner
	// without re-decoding, and hops the number of forwarding legs
	// already taken. It is called without Exchange.mu held and must not
	// block (the cluster queues per-peer and redials in the background).
	ForwardReport(tenant, device string, sigs []wire.Signature, keys []string, hops int)
	// Replicate copies one owned, unarmed confirmation set to the key's
	// deputy so arming survives an owner crash. Called without
	// Exchange.mu held; must not block.
	Replicate(key string, rec wire.OwnedRecord)
	// ApplyMemberUpdate merges a peer's membership snapshot (adopt if
	// newer, deterministic merge at equal epochs). Called without
	// Exchange.mu held — it re-binds ownership, which locks the hub.
	ApplyMemberUpdate(u wire.MemberUpdate)
	// PeerSeen records a completed inbound peer handshake: an unknown
	// hub with an address is admitted into the membership, a down-marked
	// hub is revived. Called without Exchange.mu held.
	PeerSeen(hub, addr string)
	// MayArm reports whether this hub currently holds the right to take
	// a fresh arming decision — true always without a quorum lease,
	// else only while the lease is held. The Exchange consults it at
	// every threshold crossing; when false the decision parks (the hub
	// degrades to read-only forwarding and confirmation counting) until
	// LeaseChanged(true) replays the parked set. Pure and lock-cheap:
	// called with Exchange.mu held on the report hot path.
	MayArm() bool
	// HandleProbe routes one probe or lease frame (wire.TypePing,
	// TypePingAck, TypeLease, TypeLeaseAck) that arrived on a registered
	// peer session. Called without Exchange.mu held — the node may send
	// replies synchronously from inside it.
	HandleProbe(m wire.Message)
}

// Exchange is the fleet hub. It holds no references to device Services —
// devices exist for it only as wire sessions attached with Accept — so
// any transport that moves wire messages can carry a fleet.
type Exchange struct {
	threshold int
	// tenantThresholds overrides the confirm-before-arm threshold per
	// tenant (WithTenantThreshold); tenants not listed use threshold.
	tenantThresholds map[string]int
	// verifier authenticates device hellos (nil = auth disabled: any
	// socket may claim any device id, tokens are ignored — the pre-v5
	// behavior). peerAuth additionally requires every peer-hello to
	// arrive on a session whose transport identity (mutual-TLS client
	// certificate) matches the claimed hub id.
	verifier auth.Verifier
	peerAuth bool
	store    ProvenanceStore
	// maxVer caps the negotiated wire version (WithWireCeiling); default
	// wire.Version.
	maxVer int
	// gen identifies this hub incarnation in acks. Fleet epochs are only
	// meaningful within one incarnation: after a restart (above all one
	// without a provenance store) the counter may regrow past a
	// disconnected client's epoch, so clients key their resume point on
	// (gen, epoch) and start over when gen changes. A full re-catch-up
	// after a restart is a little redundant traffic — hot-install
	// dedupes — never a lost antibody.
	gen string

	mu                        sync.Mutex
	entries                   map[string]*fleetSig
	order                     []string // keys in first-report order
	conns                     map[string]*Conn
	epoch                     uint64 // fleet arm counter (the delta epoch for pushes)
	closed                    bool
	reports, confirms, echoes uint64

	// Cluster state (nil/zero outside a federation). cluster and selfID
	// are set once by BindCluster before the hub serves traffic; peers
	// maps cluster ids of hubs with a live inbound peer session to their
	// conns; ownerSeq numbers this hub's own armings for peer catch-up.
	cluster        ClusterBinding
	selfID         string
	peers          map[string]*Conn
	ownerSeq       uint64
	forwards       uint64
	remoteInstalls uint64
	fenced         uint64
	// parked holds the keys whose fresh arming decision was refused by
	// MayArm (quorum lease lost on a minority partition side): their
	// confirmation sets keep growing, but the threshold crossing is
	// deferred until LeaseChanged(true) re-scans the set. Keys leave the
	// set by arming (locally on unpark, or via a peer's arm-broadcast).
	parked map[string]bool

	// persistMu serializes provenance-store appends in mutation order;
	// acquired while still holding mu, released after the write (same
	// handoff as Service.persistMu). Lock order: mu > persistMu.
	persistMu sync.Mutex

	batchBatches  atomic.Uint64
	batchSigs     atomic.Uint64
	persistErrors atomic.Uint64

	// Observability + admission (tentpole of the metrics PR). reg is the
	// hub's metric registry (always non-nil after NewExchange; shareable
	// across hubs via WithMetricsRegistry), met its pre-created
	// instruments, admit the optional report-ingest permit pool (nil =
	// admission disabled; see WithAdmission). The registry locks are
	// leaves — see package metrics — so met's atomics are touched under
	// x.mu and queue locks freely.
	reg       *metrics.Registry
	met       hubMetrics
	admit     *metrics.Pool
	admitPool *metrics.Pool
	admitCap  int
	admitWait time.Duration
}

// ExchangeOption configures an Exchange.
type ExchangeOption func(*Exchange)

// WithProvenanceStore attaches durable provenance: every confirmation,
// push, and arming is upserted to the store, and a new Exchange over the
// same store resumes with the full fleet state — a rebooted hub neither
// arms below threshold nor loses confirmations.
func WithProvenanceStore(store ProvenanceStore) ExchangeOption {
	return func(x *Exchange) { x.store = store }
}

// WithWireCeiling pins the hub's negotiated wire version at v — e.g. 2
// keeps every session on the JSON codec during a staged v3 rollout, and
// it is how the mixed-version tests hold one hub back. Values outside
// [wire.MinVersion, wire.Version] mean no pin.
func WithWireCeiling(v int) ExchangeOption {
	return func(x *Exchange) { x.maxVer = v }
}

// WithMetricsRegistry makes the hub register its instruments on reg
// instead of a private registry — the daemon shares one registry
// between the hub, the cluster node, and the /metrics endpoint, and
// several in-process hubs sharing one registry aggregate into the same
// series. Without this option the hub still meters itself on a private
// registry, reachable via Metrics().
func WithMetricsRegistry(reg *metrics.Registry) ExchangeOption {
	return func(x *Exchange) { x.reg = reg }
}

// WithAdmission puts a bounded permit pool in front of report ingest
// (device reports and peer forward-reports): at most capacity report
// batches are processed concurrently, an over-capacity batch waits up
// to maxWait — blocking its session's transport read goroutine, which
// the device experiences as a slow ack and TCP turns into backpressure
// — and a batch still waiting at maxWait is shed (dropped without
// killing the session; the client's full-history re-report on its next
// reconnect redelivers it, so shedding trades latency for bounded hub
// memory, never a permanently lost report). Keep maxWait well below
// the transport write timeout (30s for TCP) or slow-acked clients
// start redialing. Verdicts are counted on the registry
// (immunity_hub_admission_*) and in ExchangeStats. capacity <= 0
// disables admission (the default).
func WithAdmission(capacity int, maxWait time.Duration) ExchangeOption {
	return func(x *Exchange) {
		x.admitCap = capacity
		x.admitWait = maxWait
	}
}

// WithAdmissionPool puts a caller-built permit pool in front of report
// ingest instead of a fixed-capacity one — the seam the AIMD adaptive
// admission controller plugs into (pass an AdaptivePool's embedded
// Pool; its capacity then tracks the SLO evaluator's verdicts live).
// The pool must be registered on the same registry the hub uses, or
// its verdicts won't appear on /metrics. Takes precedence over
// WithAdmission; nil means no injection.
func WithAdmissionPool(p *metrics.Pool) ExchangeOption {
	return func(x *Exchange) { x.admitPool = p }
}

// WithAuthVerifier turns on device authentication: every hello must
// carry a bearer token the verifier accepts, whose device claim matches
// the hello's device id; the token's tenant claim scopes the session,
// so the device's signatures, confirmations, pushes, and thresholds
// live in its tenant's namespace. Refusals are counted per reason on
// immunity_hub_auth_failures_total. nil keeps auth disabled (the
// default): tokens are ignored and every session lives in the default
// "" tenant.
func WithAuthVerifier(v auth.Verifier) ExchangeOption {
	return func(x *Exchange) { x.verifier = v }
}

// WithPeerAuth requires every peer-hello to arrive on a session whose
// transport identity — the mutual-TLS client-certificate common name
// the transport recorded via Conn.SetTransportIdentity — matches the
// claimed hub id. A rogue hub without a fleet-CA certificate (no
// identity) or with another hub's name therefore cannot join the mesh
// or replay arm-broadcasts.
func WithPeerAuth() ExchangeOption {
	return func(x *Exchange) { x.peerAuth = true }
}

// WithTenantThreshold overrides the confirm-before-arm threshold for
// one tenant — tenants run fleets of very different sizes, so "distinct
// devices before arming" is a per-tenant policy. Unlisted tenants use
// the exchange-wide threshold.
func WithTenantThreshold(tenant string, threshold int) ExchangeOption {
	return func(x *Exchange) {
		if threshold < 1 {
			threshold = 1
		}
		if x.tenantThresholds == nil {
			x.tenantThresholds = make(map[string]int)
		}
		x.tenantThresholds[tenant] = threshold
	}
}

// thresholdFor is the confirm-before-arm threshold for one tenant.
func (x *Exchange) thresholdFor(tenant string) int {
	if t, ok := x.tenantThresholds[tenant]; ok {
		return t
	}
	return x.threshold
}

// NewExchange creates a hub that arms a signature fleet-wide once
// confirmThreshold distinct devices have reported it (values below 1 are
// treated as 1: arm on first report). With WithProvenanceStore, prior
// fleet state is reloaded before the hub accepts its first session.
func NewExchange(confirmThreshold int, opts ...ExchangeOption) (*Exchange, error) {
	if confirmThreshold < 1 {
		confirmThreshold = 1
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("exchange: generation nonce: %w", err)
	}
	x := &Exchange{
		threshold: confirmThreshold,
		entries:   make(map[string]*fleetSig),
		conns:     make(map[string]*Conn),
		peers:     make(map[string]*Conn),
		parked:    make(map[string]bool),
		gen:       hex.EncodeToString(nonce[:]),
	}
	for _, opt := range opts {
		opt(x)
	}
	if x.maxVer < wire.MinVersion || x.maxVer > wire.Version {
		x.maxVer = wire.Version
	}
	if x.reg == nil {
		x.reg = metrics.NewRegistry()
	}
	x.met = newHubMetrics(x.reg)
	if x.admitPool != nil {
		x.admit = x.admitPool
	} else {
		x.admit = metrics.NewPool(x.reg, "immunity_hub_admission", x.admitCap, x.admitWait)
	}
	if x.store != nil {
		recs, err := x.store.Load()
		if err != nil {
			return nil, fmt.Errorf("exchange: load provenance: %w", err)
		}
		for _, rec := range recs {
			sig, err := rec.Sig.ToCore()
			if err != nil {
				return nil, fmt.Errorf("exchange: provenance record %q: %w", rec.Key, err)
			}
			e := &fleetSig{
				sig:            sig,
				ws:             rec.Sig,
				seq:            rec.Seq,
				firstSeen:      rec.FirstSeen,
				confirmedBy:    make(map[string]bool, len(rec.ConfirmedBy)),
				pushedTo:       make(map[string]bool, len(rec.PushedTo)),
				armed:          rec.Armed,
				armEpoch:       rec.ArmEpoch,
				owner:          rec.Owner,
				ownerSeq:       rec.OwnerSeq,
				remoteConfirms: rec.RemoteConfirms,
				tenant:         rec.Tenant,
			}
			for _, d := range rec.ConfirmedBy {
				e.confirmedBy[d] = true
			}
			for _, d := range rec.PushedTo {
				e.pushedTo[d] = true
			}
			x.entries[rec.Key] = e
			x.order = append(x.order, rec.Key)
			if rec.ArmEpoch > x.epoch {
				x.epoch = rec.ArmEpoch
			}
		}
	}
	return x, nil
}

// Threshold returns the confirm-before-arm threshold.
func (x *Exchange) Threshold() int { return x.threshold }

// Metrics returns the hub's metric registry — the one passed via
// WithMetricsRegistry, or the hub's private registry otherwise. The
// daemon renders it on /metrics.
func (x *Exchange) Metrics() *metrics.Registry { return x.reg }

// BindCluster federates the hub: b decides per-signature ownership and
// carries forwarded reports; the hub handles inbound peer sessions
// (peer-hello, forward-report), broadcasts its own armings to them, and
// installs peers' broadcasts via InstallRemote. Must be called before
// the hub serves any traffic. Reloaded provenance is reconciled with
// the ring: entries this hub owns get their owner stamped and — for
// armed entries a pre-cluster hub never sequenced — an arming seq in
// armEpoch order, so a freshly clustered or restarted owner replays its
// full owned armed set to peers.
func (x *Exchange) BindCluster(b ClusterBinding) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.cluster = b
	x.selfID = b.SelfID()
	for _, key := range x.order {
		if e := x.entries[key]; e.ownerSeq > x.ownerSeq && e.owner == x.selfID {
			x.ownerSeq = e.ownerSeq
		}
	}
	type unseq struct {
		key string
		e   *fleetSig
	}
	var missing []unseq
	for _, key := range x.order {
		e := x.entries[key]
		if b.Owns(key) {
			e.owner = x.selfID
			if e.armed && e.ownerSeq == 0 {
				missing = append(missing, unseq{key, e})
			}
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].e.armEpoch < missing[j].e.armEpoch })
	for _, u := range missing {
		x.ownerSeq++
		u.e.ownerSeq = x.ownerSeq
	}
}

// recordLocked snapshots e as a provenance record. Caller holds x.mu.
func (x *Exchange) recordLocked(key string, e *fleetSig) ProvenanceRecord {
	rec := ProvenanceRecord{
		Seq:            e.seq,
		Key:            key,
		Sig:            e.ws,
		FirstSeen:      e.firstSeen,
		ConfirmedBy:    sortedKeys(e.confirmedBy),
		PushedTo:       sortedKeys(e.pushedTo),
		Armed:          e.armed,
		ArmEpoch:       e.armEpoch,
		Owner:          e.owner,
		OwnerSeq:       e.ownerSeq,
		RemoteConfirms: e.remoteConfirms,
		Tenant:         e.tenant,
	}
	if e.owner != "" && e.owner != x.selfID && e.armed {
		// Replicated armed entry: persist only the slim record — the
		// signature, its owner, and the arming — never the confirmation
		// bookkeeping, which is the owner's alone. pushedTo stays: it is
		// this hub's own delivery state for its attached devices. An
		// *unarmed* foreign entry keeps its set: that is the deputy's
		// shadow copy, and it must survive a deputy restart to keep the
		// failover promise.
		rec.ConfirmedBy = nil
		rec.FirstSeen = ""
	}
	return rec
}

// persistHandoffLocked must be called with x.mu held and the dirty
// records already snapshotted. It takes persistMu (so writes land in
// mutation order), and returns the function the caller runs after
// releasing x.mu to perform the writes.
func (x *Exchange) persistHandoffLocked(recs []ProvenanceRecord) func() {
	if x.store == nil || len(recs) == 0 {
		return func() {}
	}
	x.persistMu.Lock()
	store := x.store
	return func() {
		defer x.persistMu.Unlock()
		// One write per mutation when the store can batch (FileProvenance
		// does), instead of an open/write/close cycle per record.
		if ba, ok := store.(interface {
			AppendBatch([]ProvenanceRecord) error
		}); ok {
			if err := ba.AppendBatch(recs); err != nil {
				x.persistErrors.Add(1)
				x.met.persistErrors.Inc()
			}
			return
		}
		for _, rec := range recs {
			if err := store.Append(rec); err != nil {
				x.persistErrors.Add(1)
				x.met.persistErrors.Inc()
			}
		}
	}
}

// Accept attaches one inbound wire session to the hub. send delivers one
// hub→client message over the session and is only ever called from the
// connection's dedicated push goroutine; closeSession tears the carrying
// session down (close the socket, signal the loopback peer) and is
// called exactly once, after the push queue has drained. The transport
// feeds client→hub messages to Conn.Handle and must close the Conn when
// its session dies.
func (x *Exchange) Accept(send func(wire.Message) error, closeSession func()) (*Conn, error) {
	return x.accept(send, nil, closeSession)
}

// AcceptStream attaches an inbound stream session whose write side
// takes already-encoded frames: writeFrames receives every frame of one
// queue drain in a single call, so the transport can push them to the
// kernel in one syscall (writev), and encode-once broadcast frames
// reach it as the same shared bytes every other session at that version
// gets — no per-subscriber marshal. Frames are immutable: the transport
// must not modify their contents (reslicing its own [][]byte during a
// partial write is fine).
func (x *Exchange) AcceptStream(writeFrames func(frames [][]byte) error, closeSession func()) (*Conn, error) {
	return x.accept(nil, writeFrames, closeSession)
}

func (x *Exchange) accept(send func(wire.Message) error, writeFrames func([][]byte) error, closeSession func()) (*Conn, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return nil, fmt.Errorf("exchange: closed")
	}
	c := &Conn{hub: x, closeSession: closeSession}
	cfg := QueueConfig[outMsg]{
		Merge: mergeOutMsgs,
		OnDeliver: func(o outMsg) {
			if m := o.message(); m.Type == wire.TypeDelta {
				x.batchBatches.Add(1)
				x.batchSigs.Add(uint64(len(m.Delta.Sigs)))
			}
		},
		// c.Close as OnDead is safe to hand over before c.out is assigned:
		// nothing can be enqueued (and thus no delivery can fail) until
		// the caller has the Conn.
		OnDead: c.Close,
		// Shared instruments: one gauge/histogram aggregates every
		// session's push queue.
		Depth:         x.met.pushDepth,
		InFlight:      x.met.pushInFlight,
		BatchSizes:    x.met.pushBatchSizes,
		CoalesceRatio: x.met.pushCoalesce,
	}
	if writeFrames != nil {
		cfg.DeliverBatch = func(batch []outMsg) error { return c.encodeBatch(batch, writeFrames) }
	} else {
		cfg.Deliver = func(o outMsg) error { return send(c.stamp(o.message())) }
	}
	c.out = NewQueue(cfg)
	return c, nil
}

// outMsg is one queued hub→client delivery: either a per-session
// message (acks, confirms, catch-up deltas, status) or a handle on an
// encode-once broadcast frame shared with every other session.
type outMsg struct {
	m      wire.Message
	shared *wire.Shared
}

// message returns the delivery's decoded form, version unstamped.
func (o outMsg) message() wire.Message {
	if o.shared != nil {
		return o.shared.Msg()
	}
	return o.m
}

// mergeOutMsgs coalesces two adjacent delta deliveries, preserving
// ordering relative to non-delta messages; the merged delta carries the
// newest epoch of the pair, so no stale epoch is ever sent. The merge
// always builds a fresh message — a Shared handed off to other queues
// is immutable and must never be appended into.
func mergeOutMsgs(prev, next outMsg) (outMsg, bool) {
	pm, nm := prev.message(), next.message()
	if pm.Type != wire.TypeDelta || nm.Type != wire.TypeDelta {
		return prev, false
	}
	merged := &wire.Delta{Epoch: pm.Delta.Epoch,
		Sigs: append(append(make([]wire.Signature, 0, len(pm.Delta.Sigs)+len(nm.Delta.Sigs)),
			pm.Delta.Sigs...), nm.Delta.Sigs...)}
	if nm.Delta.Epoch > merged.Epoch {
		merged.Epoch = nm.Delta.Epoch
	}
	out := pm
	out.Delta = merged
	return outMsg{m: out}, true
}

// Conn is the hub's side of one wire session — a device session bound
// by hello, or a peer-hub session bound by peer-hello. Transports
// create it with Exchange.Accept, feed inbound messages to Handle, and
// Close it when the session ends.
type Conn struct {
	hub          *Exchange
	out          *msgQueue
	closeSession func()
	// scratch is the reusable per-session frame-encode buffer; touched
	// only by encodeBatch on the queue's drain goroutine.
	scratch []byte

	mu      sync.Mutex
	device  string // set by a successful hello
	tenant  string // the device's tenant, resolved from its token claims
	peerHub string // set by a successful peer-hello
	// transportIdentity is the authenticated identity the transport
	// attached to the session — the mutual-TLS client-certificate
	// common name — or "" for an unauthenticated transport. With
	// WithPeerAuth, a peer-hello must claim exactly this identity.
	transportIdentity string
	ver               int // negotiated protocol version (0 before handshake)
	closed            bool
	closeOnce         sync.Once
}

// SetTransportIdentity records the transport-level authenticated
// identity (mutual-TLS client-certificate common name) for this
// session. Transports call it once, before feeding any message to
// Handle.
func (c *Conn) SetTransportIdentity(id string) {
	c.mu.Lock()
	c.transportIdentity = id
	c.mu.Unlock()
}

// Tenant returns the tenant the session was scoped to by its token
// claims ("" for the default tenant or before hello).
func (c *Conn) Tenant() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenant
}

// Device returns the device id bound by hello, or "".
func (c *Conn) Device() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.device
}

// PeerHub returns the cluster id bound by peer-hello, or "".
func (c *Conn) PeerHub() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerHub
}

// negotiate applies the wire version rule to a hello's advertised range
// (a bare pre-negotiation hello advertises exactly its envelope
// version) and records the session version. atLeast guards message sets
// that did not exist below a version (peer messages).
func (c *Conn) negotiate(envelopeV, minV, maxV, atLeast int) (int, error) {
	if maxV == 0 {
		minV, maxV = envelopeV, envelopeV
	} else if envelopeV < minV || envelopeV > maxV {
		// A range that does not even cover the hello's own envelope
		// version is a broken (or lying) client; trusting the range
		// would negotiate a version the peer demonstrably cannot frame.
		return 0, fmt.Errorf("inconsistent protocol version %d outside advertised range %d..%d",
			envelopeV, minV, maxV)
	}
	v, ok := wire.NegotiateMax(minV, maxV, c.hub.maxVer)
	if !ok || v < atLeast {
		return 0, fmt.Errorf("unsupported protocol version %d..%d (hub speaks %d..%d)",
			minV, maxV, wire.MinVersion, c.hub.maxVer)
	}
	c.mu.Lock()
	c.ver = v
	c.mu.Unlock()
	return v, nil
}

// sessionVersion is the version every delivery on this session is
// stamped and framed at: the negotiated version once the handshake
// settled it — a session negotiated at v1 must never receive a v2
// envelope, and only a v3+ session may receive a binary frame — or,
// before negotiation (status probes, refusals), the newest JSON
// version, which every endpoint ever shipped can parse.
func (c *Conn) sessionVersion() int {
	c.mu.Lock()
	v := c.ver
	c.mu.Unlock()
	if v == 0 {
		return wire.MaxJSONVersion
	}
	return v
}

// stamp sets the delivery version on one decoded message.
func (c *Conn) stamp(m wire.Message) wire.Message {
	m.V = c.sessionVersion()
	return m
}

// maxConnScratch caps the per-session encode buffer a Conn keeps
// between drains (the Reader-side twin of wire's read scratch cap).
const maxConnScratch = 64 << 10

// encodeBatch resolves one queue drain into encoded frames — shared
// broadcast frames are reused byte-for-byte across sessions, per-session
// messages are encoded into the Conn's reusable scratch — and hands all
// of them to the transport in a single call. It runs only on the
// queue's drain goroutine, and writeFrames is synchronous, so the
// scratch is free again when it returns.
func (c *Conn) encodeBatch(batch []outMsg, writeFrames func([][]byte) error) error {
	v := c.sessionVersion()
	frames := make([][]byte, len(batch))
	// Appending may move the scratch's backing array, so per-session
	// frames are recorded as offsets and re-sliced only after the last
	// append.
	scratch := c.scratch[:0]
	type span struct{ idx, start, end int }
	var spans []span
	for i, o := range batch {
		if o.shared != nil {
			b, err := o.shared.Frame(v)
			if err != nil {
				return err
			}
			frames[i] = b
			continue
		}
		m := o.m
		m.V = v
		start := len(scratch)
		var err error
		scratch, err = wire.AppendFrame(scratch, m)
		if err != nil {
			return err
		}
		spans = append(spans, span{i, start, len(scratch)})
	}
	for _, s := range spans {
		frames[s.idx] = scratch[s.start:s.end]
	}
	if cap(scratch) <= maxConnScratch {
		c.scratch = scratch[:0]
	} else {
		c.scratch = nil
	}
	return writeFrames(frames)
}

// push enqueues one per-session message; the delivery version is
// stamped at write time (sessionVersion).
func (c *Conn) push(m wire.Message) { c.out.Enqueue(outMsg{m: m}) }

// pushShared enqueues an encode-once broadcast frame; every session at
// the same negotiated version shares its encoded bytes.
func (c *Conn) pushShared(s *wire.Shared) { c.out.Enqueue(outMsg{shared: s}) }

// refuse sends a final failure ack and reports the protocol error.
func (c *Conn) refuse(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	c.push(wire.Message{Type: wire.TypeAck, Ack: &wire.Ack{OK: false, Error: msg}})
	return fmt.Errorf("exchange session: %s", msg)
}

// Handle processes one client→hub message. A non-nil error means the
// session violated the protocol (bad version, malformed signature,
// message before hello): the hub has already queued a failure ack where
// one applies, and the transport must Close the Conn.
func (c *Conn) Handle(m wire.Message) error {
	if err := m.Validate(); err != nil {
		// The TCP path validates at decode, but Handle is the hub's API
		// surface for any transport (the loopback hands messages over
		// directly): a structurally broken envelope — wrong or missing
		// payload — must refuse, not panic on a nil payload below.
		return c.refuse("%v", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("exchange session: closed")
	}
	device, tenant, peerHub := c.device, c.tenant, c.peerHub
	c.mu.Unlock()

	switch m.Type {
	case wire.TypeHello:
		return c.handleHello(m)
	case wire.TypePeerHello:
		return c.handlePeerHello(m)
	case wire.TypeStatusReq:
		// Status is answerable before hello: monitoring probes need no
		// device identity.
		c.push(wire.Message{Type: wire.TypeStatus, Status: c.hub.status()})
		return nil
	case wire.TypeReport:
		if device == "" {
			return c.refuse("report before hello")
		}
		return c.hub.admitReport(func() error { return c.handleReport(tenant, device, m.Report) })
	case wire.TypeForwardReport:
		if peerHub == "" {
			return c.refuse("forward-report before peer-hello")
		}
		return c.hub.admitReport(func() error { return c.handleForwardReport(m.Forward) })
	case wire.TypeReplicate:
		if peerHub == "" {
			return c.refuse("replicate before peer-hello")
		}
		if err := c.hub.InstallReplica(m.Replicate.Owner, m.Replicate.Records); err != nil {
			return c.refuse("%v", err)
		}
		return nil
	case wire.TypeHandoff:
		if peerHub == "" {
			return c.refuse("handoff before peer-hello")
		}
		if err := c.hub.ImportOwned(m.Handoff.From, m.Handoff.Records); err != nil {
			return c.refuse("%v", err)
		}
		return nil
	case wire.TypeMemberUpdate:
		if peerHub == "" {
			return c.refuse("member-update before peer-hello")
		}
		c.hub.applyMemberUpdate(*m.Member)
		return nil
	case wire.TypePing, wire.TypePingAck, wire.TypeLease, wire.TypeLeaseAck:
		if peerHub == "" {
			return c.refuse("%s before peer-hello", m.Type)
		}
		// Routed outside Exchange.mu: the node answers probes and grants
		// leases from its own state and may send replies synchronously.
		if cluster := c.hub.clusterBinding(); cluster != nil {
			cluster.HandleProbe(m)
		}
		return nil
	default:
		return c.refuse("unexpected client message type %q", m.Type)
	}
}

// handleHello validates the handshake and registers the device: version
// negotiation, supersede of any stale session with the same device id,
// an ok ack carrying the hub epoch and the negotiated version, then one
// catch-up delta with every armed signature the device's epoch
// predates. A v2 hello's per-gen epoch map takes precedence over the
// flat epoch: the hub resumes the device from the epoch recorded for
// *this* incarnation, or from zero when the device never spoke to it —
// which is what lets one device roam between the hubs of a cluster.
func (c *Conn) handleHello(m wire.Message) error {
	h := m.Hello
	ver, err := c.negotiate(m.V, h.MinV, h.MaxV, wire.MinVersion)
	if err != nil {
		return c.refuse("%v", err)
	}
	if h.Device == "" {
		return c.refuse("empty device id")
	}
	x := c.hub
	tenant := ""
	if x.verifier != nil {
		// Authentication happens before any registration: a refused hello
		// leaves no trace in the conns map. Each refusal is counted by
		// reason so a fleet operator can tell a key rollout gone wrong
		// (bad-signature storm) from clock skew (expired) at a glance.
		if h.Token == "" {
			x.met.authFailures.With("missing-token").Inc()
			return c.refuse("authentication required: hello carries no token")
		}
		claims, err := x.verifier.Verify(h.Token, time.Now())
		if err != nil {
			x.met.authFailures.With(authReason(err)).Inc()
			return c.refuse("authentication failed: %v", err)
		}
		if claims.Device != auth.WildcardDevice && claims.Device != h.Device {
			// A valid token presented with a hello claiming a different
			// device id is a spoof attempt, not a config slip.
			x.met.authFailures.With("device-mismatch").Inc()
			return c.refuse("token not issued for device %q", h.Device)
		}
		tenant = claims.Tenant
	}
	epoch := h.Epoch
	if h.Epochs != nil {
		epoch = h.Epochs[x.gen]
	}
	c.mu.Lock()
	already, alreadyPeer := c.device, c.peerHub
	c.mu.Unlock()
	if already != "" {
		// A second hello on one session would re-register the Conn under
		// a new id while x.conns still mapped the old id to it, so pushes
		// would be recorded against a device that never received them.
		return c.refuse("duplicate hello (session already bound to device %s)", already)
	}
	if alreadyPeer != "" {
		// A peer session moonlighting as a device would receive both
		// tiers' pushes and pollute the pushedTo bookkeeping.
		return c.refuse("hello on a session already bound to peer hub %s", alreadyPeer)
	}

	sk := sessKey(tenant, h.Device)
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return c.refuse("exchange closed")
	}
	// Reconnect-friendly registration: a new hello for a device that
	// still has a (possibly dead) session supersedes it. TCP clients
	// redial before the hub notices the old socket died. Sessions are
	// keyed by (tenant, device): the same device id in two tenants is
	// two devices.
	var stale *Conn
	if old, ok := x.conns[sk]; ok && old != c {
		stale = old
	} else if !ok {
		x.met.deviceSessions.Add(1)
	}
	c.mu.Lock()
	c.device = h.Device
	c.tenant = tenant
	c.mu.Unlock()
	x.conns[sk] = c

	c.push(wire.Message{Type: wire.TypeAck, Ack: &wire.Ack{OK: true, Epoch: x.epoch, Gen: x.gen, V: ver}})

	// Catch-up: every armed signature the client's epoch predates, as a
	// single batched delta, oldest arming first.
	var dirty []ProvenanceRecord
	var sigs []wire.Signature
	type armedEntry struct {
		key string
		e   *fleetSig
	}
	var catchup []armedEntry
	for _, key := range x.order {
		// Catch-up is tenant-scoped: a session only ever receives its own
		// tenant's armed signatures. The fleet epoch counter is global, so
		// a tenant's client may see epoch gaps — harmless, resume is
		// strictly "armEpoch greater than mine".
		if e := x.entries[key]; e.armed && e.tenant == tenant && e.armEpoch > epoch {
			catchup = append(catchup, armedEntry{key, e})
		}
	}
	sort.Slice(catchup, func(i, j int) bool { return catchup[i].e.armEpoch < catchup[j].e.armEpoch })
	for _, ae := range catchup {
		sigs = append(sigs, ae.e.ws)
		if !ae.e.pushedTo[h.Device] {
			ae.e.pushedTo[h.Device] = true
			dirty = append(dirty, x.recordLocked(ae.key, ae.e))
		}
	}
	if len(sigs) > 0 {
		c.push(wire.Message{Type: wire.TypeDelta, Delta: &wire.Delta{Epoch: x.epoch, Sigs: sigs}})
	}
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()

	if stale != nil {
		// A final failure ack tells the stale session's client to stop
		// for good instead of redialing into a supersession ping-pong;
		// Close drains the queue, so the ack goes out first. Close runs
		// on its own goroutine: it waits out the stale drain, which on a
		// wedged TCP peer only unblocks at the transport write deadline,
		// and the new session's handshake must not wait for that.
		stale.push(wire.Message{Type: wire.TypeAck,
			Ack: &wire.Ack{OK: false, Error: fmt.Sprintf("superseded by a newer session for device %s", h.Device)}})
		go stale.Close()
	}
	return nil
}

// handlePeerHello registers an inbound hub-to-hub session: version
// negotiation (the peer set needs wire.PeerVersion), supersede of any
// stale session from the same hub, an ok ack carrying this hub's
// owned-arming seq and gen, then a replay of every owned armed
// signature the peer's seq predates — one arm-broadcast each, oldest
// first, the hub-to-hub twin of the device catch-up delta.
func (c *Conn) handlePeerHello(m wire.Message) error {
	h := m.PeerHello
	ver, err := c.negotiate(m.V, h.MinV, h.MaxV, wire.PeerVersion)
	if err != nil {
		return c.refuse("%v", err)
	}
	if h.Hub == "" {
		return c.refuse("empty peer hub id")
	}
	c.mu.Lock()
	boundDevice, boundPeer, tid := c.device, c.peerHub, c.transportIdentity
	c.mu.Unlock()
	if c.hub.peerAuth && tid != h.Hub {
		// The claimed hub id must be backed by the session's mutual-TLS
		// certificate identity. A wrong-CA peer has no identity at all
		// (Go withholds — or the handshake rejects — an unverifiable
		// client cert), so it lands here with tid "" and is refused.
		c.hub.met.authFailures.With("peer-identity").Inc()
		return c.refuse("peer hub %q does not match transport identity %q", h.Hub, tid)
	}
	if boundDevice != "" || boundPeer != "" {
		return c.refuse("duplicate hello (session already bound)")
	}

	x := c.hub
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return c.refuse("exchange closed")
	}
	if x.cluster == nil {
		x.mu.Unlock()
		return c.refuse("hub is not clustered")
	}
	if h.Hub == x.selfID {
		x.mu.Unlock()
		return c.refuse("peer hub id %q collides with this hub", h.Hub)
	}
	var stale *Conn
	if old, ok := x.peers[h.Hub]; ok && old != c {
		stale = old
	} else if !ok {
		x.met.peerSessions.Add(1)
	}
	c.mu.Lock()
	c.peerHub = h.Hub
	c.mu.Unlock()
	x.peers[h.Hub] = c

	c.push(wire.Message{Type: wire.TypeAck,
		Ack: &wire.Ack{OK: true, Epoch: x.ownerSeq, Gen: x.gen, V: ver}})

	// Replay missed owned armings in seq order.
	type ownedEntry struct {
		key string
		e   *fleetSig
	}
	var replay []ownedEntry
	for _, key := range x.order {
		if e := x.entries[key]; e.armed && e.owner == x.selfID && e.ownerSeq > h.Seq {
			replay = append(replay, ownedEntry{key, e})
		}
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].e.ownerSeq < replay[j].e.ownerSeq })
	fence := x.cluster.Epoch()
	for _, oe := range replay {
		c.push(wire.Message{Type: wire.TypeArmBroadcast,
			Arm: &wire.ArmBroadcast{Owner: x.selfID, Seq: oe.e.ownerSeq,
				Confirmations: len(oe.e.confirmedBy), Sig: oe.e.ws, Fence: fence,
				Tenant: oe.e.tenant}})
	}
	if ver >= wire.MembershipVersion {
		// Seed the dialer's membership view: the snapshot predates any
		// admission this handshake itself triggers (PeerSeen below), whose
		// higher-epoch update follows over the regular links.
		snap := x.cluster.MemberSnapshot()
		c.push(wire.Message{Type: wire.TypeMemberUpdate, Member: &snap})
	}
	cluster := x.cluster
	x.mu.Unlock()

	if stale != nil {
		stale.push(wire.Message{Type: wire.TypeAck,
			Ack: &wire.Ack{OK: false, Error: fmt.Sprintf("superseded by a newer session for hub %s", h.Hub)}})
		go stale.Close()
	}
	// A completed inbound handshake is liveness (and, with an address, a
	// join request): revive or admit the dialer. Runs without x.mu — it
	// can re-bind ownership, which locks the hub.
	cluster.PeerSeen(h.Hub, h.Addr)
	return nil
}

// handleForwardReport records a peer-relayed device report against the
// original device — the owner's (device, signature) dedup therefore
// counts a confirmation at most once however many hops or retries it
// took — and sends each receipt back as a forward-confirm for the
// forwarding hub to relay to the device.
func (c *Conn) handleForwardReport(f *wire.ForwardReport) error {
	if f.Device == "" {
		return c.refuse("forward-report with empty device id")
	}
	sigs := make([]*core.Signature, 0, len(f.Sigs))
	for _, ws := range f.Sigs {
		sig, err := ws.ToCore()
		if err != nil {
			return c.refuse("malformed forwarded signature: %v", err)
		}
		sigs = append(sigs, sig)
	}
	hops := f.Hops
	if hops < 1 {
		hops = 1 // pre-v4 peers don't count legs; one was taken to get here
	}
	for _, confirm := range c.hub.reportFrom(f.Tenant, f.Device, sigs, hops) {
		c.push(wire.Message{Type: wire.TypeForwardConfirm,
			FwdConfirm: &wire.ForwardConfirm{Device: f.Device, Tenant: f.Tenant, Confirm: *confirm}})
	}
	return nil
}

// admitReport gates one report-path message (device report or peer
// forward-report) through the admission pool and observes the full
// handling duration, wait included. It runs on the session's transport
// read goroutine with no locks held, so an over-capacity wait is
// exactly the device-visible slow ack admission promises: the session
// stops reading, TCP stops acking, the storm backs up on the senders
// instead of in hub memory. A shed batch is dropped without error —
// the session stays up, and the client's full-history re-report on its
// next reconnect redelivers the signatures (at-least-once).
func (x *Exchange) admitReport(fn func() error) error {
	start := time.Now()
	release, ok := x.admit.Acquire()
	if !ok {
		return nil
	}
	defer release()
	admitted := time.Now()
	err := fn()
	end := time.Now()
	// Two latency series: report_seconds is what a device experiences
	// (wait included — the signal the latency SLO and the AIMD
	// controller react to), handle_seconds is what the hub itself costs
	// (wait excluded — separates "hub is slow" from "hub is queueing").
	x.met.reportSeconds.ObserveDuration(end.Sub(start))
	x.met.handleSeconds.ObserveDuration(end.Sub(admitted))
	return err
}

// handleReport records the batch's signatures as confirmations by
// device, arming at threshold, and answers each with a confirm receipt.
// The whole batch is one hub mutation: a reconnect re-reports a
// device's entire history in one report message, and that must not cost
// one lock acquisition and one store write per signature.
func (c *Conn) handleReport(tenant, device string, r *wire.Report) error {
	sigs := make([]*core.Signature, 0, len(r.Sigs))
	for _, ws := range r.Sigs {
		sig, err := ws.ToCore()
		if err != nil {
			return c.refuse("malformed reported signature: %v", err)
		}
		sigs = append(sigs, sig)
	}
	for _, confirm := range c.hub.reportFrom(tenant, device, sigs, 0) {
		c.push(wire.Message{Type: wire.TypeConfirm, Confirm: confirm})
	}
	return nil
}

// Close detaches the session: the device slot is released (unless a
// newer session superseded it), the push queue drains, and the transport
// teardown hook runs. Close is idempotent.
func (c *Conn) Close() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		device, tenant, peerHub := c.device, c.tenant, c.peerHub
		c.mu.Unlock()
		x := c.hub
		x.mu.Lock()
		if sk := sessKey(tenant, device); device != "" && x.conns[sk] == c {
			delete(x.conns, sk)
			x.met.deviceSessions.Add(-1)
		}
		if peerHub != "" && x.peers[peerHub] == c {
			delete(x.peers, peerHub)
			x.met.peerSessions.Add(-1)
		}
		x.mu.Unlock()
		c.out.Close()
		if c.closeSession != nil {
			c.closeSession()
		}
	})
}

// report records a single confirmation; tests drive the hub's dedup
// guards through it directly.
func (x *Exchange) report(device string, sig *core.Signature) (confirmations int, armed bool) {
	confirms := x.reportFrom("", device, []*core.Signature{sig}, 0)
	if len(confirms) == 0 {
		return 0, false
	}
	return confirms[0].Confirmations, confirms[0].Armed
}

// reportFrom records the batch as confirmations by device and arms
// signatures whose threshold is reached, under one hub lock and one
// provenance write. It returns a confirm receipt per signature and is
// called from transport goroutines with no service or core locks held.
//
// In a cluster the hub arbitrates only the signatures it owns. A
// foreign signature's report is relayed to its owner (the receipt
// arrives later as a forward-confirm and reaches the device through
// DeliverConfirm) — unless this hub already delivered the signature to
// that device, in which case the report is the push coming back and is
// answered locally as an echo. hops counts forwarding legs already
// taken: ownership can move while a forward sits in a retry outbox, so
// a forwarded report for a signature this hub no longer owns is
// re-forwarded to the current owner while hops < maxForwardHops, then
// counted locally — churn degrades to one extra hop, never a
// forwarding loop. Every fresh confirmation of an owned, still-unarmed
// signature is replicated to the key's deputy so arming survives an
// owner crash.
func (x *Exchange) reportFrom(tenant, device string, sigs []*core.Signature, hops int) []*wire.Confirm {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return nil
	}
	threshold := x.thresholdFor(tenant)
	confirms := make([]*wire.Confirm, 0, len(sigs))
	var dirty []ProvenanceRecord
	var fwd []wire.Signature
	var fwdKeys []string
	var broadcasts []*wire.ArmBroadcast
	var replKeys []string
	var replRecs []wire.OwnedRecord
	for _, sig := range sigs {
		// The hub key carries the tenant prefix; the device-facing
		// confirm carries the plain signature key the device reported —
		// tenancy never leaks into the device protocol.
		plainKey := sig.Key()
		key := tenantKey(tenant, plainKey)
		x.reports++
		x.met.reports.Inc()
		if x.cluster != nil && hops < maxForwardHops && !x.cluster.Owns(key) {
			if e, ok := x.entries[key]; ok && (e.pushedTo[device] || e.confirmedBy[device]) {
				// The device only holds the signature because this hub (or
				// a previous forward) already accounted for it: echo.
				x.echoes++
				x.met.echoes.Inc()
				confirms = append(confirms, &wire.Confirm{Key: plainKey,
					Confirmations: max(len(e.confirmedBy), e.remoteConfirms), Armed: e.armed})
				continue
			}
			x.forwards++
			x.met.forwards.Inc()
			fwd = append(fwd, wire.FromCore(sig))
			fwdKeys = append(fwdKeys, key)
			continue
		}
		e, ok := x.entries[key]
		if !ok {
			e = &fleetSig{
				sig:         &core.Signature{Kind: sig.Kind, Pairs: core.ClonePairs(sig.Pairs)},
				ws:          wire.FromCore(sig),
				seq:         len(x.order) + 1,
				firstSeen:   device,
				confirmedBy: make(map[string]bool),
				pushedTo:    make(map[string]bool),
				owner:       x.selfID,
				tenant:      tenant,
			}
			x.entries[key] = e
			x.order = append(x.order, key)
		}
		switch {
		case e.confirmedBy[device] || e.pushedTo[device]:
			// Already counted, or the device only has the signature
			// because the hub pushed it there: not an independent
			// observation.
			x.echoes++
			x.met.echoes.Inc()
		default:
			e.confirmedBy[device] = true
			x.confirms++
			x.met.confirms.Inc()
			if !e.armed && len(e.confirmedBy) >= threshold && x.mayArmLocked() {
				x.armLocked(e)
				if x.cluster != nil && e.owner == x.selfID {
					broadcasts = append(broadcasts, &wire.ArmBroadcast{Owner: x.selfID, Seq: e.ownerSeq,
						Confirmations: len(e.confirmedBy), Sig: e.ws, Fence: x.cluster.Epoch(),
						Tenant: e.tenant})
				}
			} else if !e.armed && len(e.confirmedBy) >= threshold {
				// At threshold without the quorum lease (minority partition
				// side): park the decision — the set keeps growing and
				// replicating, and LeaseChanged(true) arms it later.
				x.parkLocked(key)
				if x.cluster != nil && e.owner == x.selfID {
					replKeys = append(replKeys, key)
					replRecs = append(replRecs, ownedRecordLocked(e))
				}
			} else if x.cluster != nil && !e.armed && e.owner == x.selfID {
				// Pending owned confirmation: copy the full set to the
				// deputy. Each replicate carries the whole confirmedBy
				// union, so a lost or reordered copy is repaired by the
				// next one.
				replKeys = append(replKeys, key)
				replRecs = append(replRecs, ownedRecordLocked(e))
			}
			dirty = append(dirty, x.recordLocked(key, e))
		}
		confirms = append(confirms, &wire.Confirm{Key: plainKey, Confirmations: len(e.confirmedBy), Armed: e.armed})
	}
	// Owned armings fan out to every live inbound peer session as one
	// encode-once frame each; peers that are down catch up from their
	// next peer-hello's seq.
	for _, b := range broadcasts {
		sh := wire.NewShared(wire.Message{Type: wire.TypeArmBroadcast, Arm: b})
		for _, pc := range x.peers {
			pc.pushShared(sh)
		}
	}
	cluster := x.cluster
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()
	if len(fwd) > 0 {
		cluster.ForwardReport(tenant, device, fwd, fwdKeys, hops+1)
	}
	for i, key := range replKeys {
		cluster.Replicate(key, replRecs[i])
	}
	return confirms
}

// maxForwardHops bounds forwarding legs for one report: the device's
// own hub plus one re-forward after an ownership move. A report still
// not home after that is counted where it stands — with set-union
// confirmations and idempotent arming that costs at worst a slightly
// split count, never a loop.
const maxForwardHops = 2

// ownedRecordLocked snapshots an owned entry's provenance slice in its
// wire form (handoff / deputy replication). Caller holds x.mu.
func ownedRecordLocked(e *fleetSig) wire.OwnedRecord {
	return wire.OwnedRecord{
		Sig:         e.ws,
		FirstSeen:   e.firstSeen,
		ConfirmedBy: sortedKeys(e.confirmedBy),
		Armed:       e.armed,
		OwnerSeq:    e.ownerSeq,
		Tenant:      e.tenant,
	}
}

// pushArmedLocked marks e armed, assigns the next local fleet epoch,
// and pushes the delta to every attached device as one encode-once
// frame — the arming's device-facing half, shared by local armings,
// remote installs, and handoff imports. Caller holds x.mu. The fleet
// epoch therefore counts arm events exactly once per signature per
// hub: epoch == armed-signature count is the no-double-arm invariant
// the chaos tests assert.
func (x *Exchange) pushArmedLocked(e *fleetSig) {
	e.armed = true
	x.epoch++
	e.armEpoch = x.epoch
	x.met.armed.Inc()
	if len(x.parked) > 0 {
		// Arming from any path (remote install, handoff, unpark) settles
		// a parked decision for the same key.
		x.unparkLocked(tenantKey(e.tenant, e.sig.Key()))
	}
	d := wire.NewShared(wire.Message{Type: wire.TypeDelta,
		Delta: &wire.Delta{Epoch: x.epoch, Sigs: []wire.Signature{e.ws}}})
	for _, conn := range x.conns {
		// Deltas go only to the signature's own tenant: arming in tenant
		// A must be invisible to tenant B's devices. Lock order mu >
		// Conn.mu holds throughout the hub (handleHello binds the device
		// under both), so reading the session binding here is safe.
		conn.mu.Lock()
		dev, ten := conn.device, conn.tenant
		conn.mu.Unlock()
		if ten != e.tenant {
			continue
		}
		conn.pushShared(d)
		e.pushedTo[dev] = true
	}
}

// armLocked arms an owned entry: the device-facing push plus the owner
// arming seq (cluster mode). Caller holds x.mu and appends the dirty
// record.
func (x *Exchange) armLocked(e *fleetSig) {
	x.pushArmedLocked(e)
	if x.cluster != nil {
		x.ownerSeq++
		e.ownerSeq = x.ownerSeq
	}
}

// InstallRemote applies one peer arm-broadcast: the signature is
// recorded as armed under its owner, assigned this hub's next local
// fleet epoch, pushed to every attached device, and persisted as a
// replicated (slim) provenance record. Re-delivered broadcasts — a peer
// replay after an ownership-ring hiccup, an at-least-once forward
// outbox — only refresh the replicated metadata. It returns whether the
// broadcast newly armed the signature here.
//
// The fencing rule: a broadcast whose Fence (the sender's membership
// epoch) is older than this hub's membership epoch is refused with
// ErrFenced — unless the sender still owns the signature under this
// hub's ring, in which case the sender is merely behind on membership
// gossip, not deposed. A returning stale owner therefore cannot arm a
// signature the cluster re-owned while it was dead, and — because an
// owner change resets the entry into the new owner's seq namespace
// instead of taking a cross-owner max — it cannot regress or inflate
// the owner seq either.
func (x *Exchange) InstallRemote(b wire.ArmBroadcast) (bool, error) {
	sig, err := b.Sig.ToCore()
	if err != nil {
		return false, fmt.Errorf("exchange: remote arm from %s: %w", b.Owner, err)
	}
	key := tenantKey(b.Tenant, sig.Key())
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return false, fmt.Errorf("exchange: closed")
	}
	if x.cluster != nil && b.Fence < x.cluster.Epoch() && x.cluster.OwnerOf(key) != b.Owner {
		x.fenced++
		x.met.fenced.Inc()
		x.mu.Unlock()
		return false, ErrFenced
	}
	e, ok := x.entries[key]
	if !ok {
		e = &fleetSig{
			sig:         &core.Signature{Kind: sig.Kind, Pairs: core.ClonePairs(sig.Pairs)},
			ws:          b.Sig,
			seq:         len(x.order) + 1,
			confirmedBy: make(map[string]bool),
			pushedTo:    make(map[string]bool),
			tenant:      b.Tenant,
		}
		x.entries[key] = e
		x.order = append(x.order, key)
	}
	if e.owner != b.Owner {
		// Ownership moved: enter the new owner's seq namespace at its
		// seq, never max across namespaces.
		e.owner = b.Owner
		e.ownerSeq = b.Seq
	} else if b.Seq > e.ownerSeq {
		e.ownerSeq = b.Seq
	}
	if b.Confirmations > e.remoteConfirms {
		e.remoteConfirms = b.Confirmations
	}
	applied := !e.armed
	if applied {
		x.pushArmedLocked(e)
		x.remoteInstalls++
		x.met.remoteInstalls.Inc()
	}
	persist := x.persistHandoffLocked([]ProvenanceRecord{x.recordLocked(key, e)})
	x.mu.Unlock()
	persist()
	return applied, nil
}

// decodedRecord is one owned provenance record with its signature
// decoded and keyed — replica and handoff batches decode before taking
// the hub lock.
type decodedRecord struct {
	key string
	sig *core.Signature
	rec wire.OwnedRecord
}

func decodeOwnedRecords(from string, recs []wire.OwnedRecord) ([]decodedRecord, error) {
	out := make([]decodedRecord, 0, len(recs))
	for _, rec := range recs {
		sig, err := rec.Sig.ToCore()
		if err != nil {
			return nil, fmt.Errorf("exchange: owned record from %s: %w", from, err)
		}
		out = append(out, decodedRecord{tenantKey(rec.Tenant, sig.Key()), sig, rec})
	}
	return out, nil
}

// ensureEntryLocked returns the entry for key, creating an empty one
// (no owner, no firstSeen) if the hub has never seen the signature.
// Caller holds x.mu.
func (x *Exchange) ensureEntryLocked(key, tenant string, sig *core.Signature, ws wire.Signature) *fleetSig {
	e, ok := x.entries[key]
	if !ok {
		e = &fleetSig{
			sig:         &core.Signature{Kind: sig.Kind, Pairs: core.ClonePairs(sig.Pairs)},
			ws:          ws,
			seq:         len(x.order) + 1,
			confirmedBy: make(map[string]bool),
			pushedTo:    make(map[string]bool),
			tenant:      tenant,
		}
		x.entries[key] = e
		x.order = append(x.order, key)
	}
	return e
}

// broadcastArmsLocked fans freshly built arm-broadcasts out to every
// live inbound peer session, one encode-once frame each. Caller holds
// x.mu.
func (x *Exchange) broadcastArmsLocked(broadcasts []*wire.ArmBroadcast) {
	for _, b := range broadcasts {
		sh := wire.NewShared(wire.Message{Type: wire.TypeArmBroadcast, Arm: b})
		for _, pc := range x.peers {
			pc.pushShared(sh)
		}
	}
}

// InstallReplica applies an owner→deputy replicate batch: each record's
// pending confirmation set is merged (set union — at-least-once
// delivery and reordering are harmless) into the local shadow entry
// under the sender's ownership. A replica normally just sits until the
// owner either arms the signature (broadcast) or dies (the membership
// change re-owns the key and RebindOwnership promotes the shadow); a
// replica arriving after this hub already took ownership counts
// immediately and can arm at threshold.
func (x *Exchange) InstallReplica(owner string, recs []wire.OwnedRecord) error {
	ds, err := decodeOwnedRecords(owner, recs)
	if err != nil {
		return err
	}
	x.mu.Lock()
	if x.closed || x.cluster == nil {
		x.mu.Unlock()
		return fmt.Errorf("exchange: closed or not clustered")
	}
	var dirty []ProvenanceRecord
	var broadcasts []*wire.ArmBroadcast
	for _, d := range ds {
		e := x.ensureEntryLocked(d.key, d.rec.Tenant, d.sig, d.rec.Sig)
		if e.firstSeen == "" {
			e.firstSeen = d.rec.FirstSeen
		}
		for _, dev := range d.rec.ConfirmedBy {
			e.confirmedBy[dev] = true
		}
		if e.owner != x.selfID {
			e.owner = owner
		}
		x.met.replicaRecords.Inc()
		if e.owner == x.selfID && !e.armed && len(e.confirmedBy) >= x.thresholdFor(e.tenant) {
			if x.mayArmLocked() {
				x.armLocked(e)
				broadcasts = append(broadcasts, &wire.ArmBroadcast{Owner: x.selfID, Seq: e.ownerSeq,
					Confirmations: len(e.confirmedBy), Sig: e.ws, Fence: x.cluster.Epoch(),
					Tenant: e.tenant})
			} else {
				x.parkLocked(d.key)
			}
		}
		dirty = append(dirty, x.recordLocked(d.key, e))
	}
	x.broadcastArmsLocked(broadcasts)
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()
	return nil
}

// ImportOwned applies a handoff batch: provenance slices for keys whose
// ownership moved to this hub. Confirmation sets merge by union and
// arm state by or — a record already armed by the previous owner is
// installed (and re-sequenced into this owner's namespace), a pending
// record past threshold arms now, and everything else resumes counting
// exactly where the previous owner stopped. A record this hub does not
// own under its current ring (the sender's membership was behind) is
// kept as a shadow replica of the true owner instead of being dropped.
func (x *Exchange) ImportOwned(from string, recs []wire.OwnedRecord) error {
	ds, err := decodeOwnedRecords(from, recs)
	if err != nil {
		return err
	}
	x.mu.Lock()
	if x.closed || x.cluster == nil {
		x.mu.Unlock()
		return fmt.Errorf("exchange: closed or not clustered")
	}
	var dirty []ProvenanceRecord
	var broadcasts []*wire.ArmBroadcast
	for _, d := range ds {
		e := x.ensureEntryLocked(d.key, d.rec.Tenant, d.sig, d.rec.Sig)
		if e.firstSeen == "" {
			e.firstSeen = d.rec.FirstSeen
		}
		for _, dev := range d.rec.ConfirmedBy {
			e.confirmedBy[dev] = true
		}
		x.met.handoffRecords.Inc()
		if x.cluster.Owns(d.key) {
			prevOwner := e.owner
			e.owner = x.selfID
			switch {
			case !e.armed && d.rec.Armed:
				// The previous owner armed it and died before every peer saw
				// the broadcast: installing its decision is not a fresh one,
				// so the quorum lease does not gate it — arm under this
				// owner's seq and tell the cluster.
				x.armLocked(e)
				broadcasts = append(broadcasts, &wire.ArmBroadcast{Owner: x.selfID, Seq: e.ownerSeq,
					Confirmations: len(e.confirmedBy), Sig: e.ws, Fence: x.cluster.Epoch(),
					Tenant: e.tenant})
			case !e.armed && len(e.confirmedBy) >= x.thresholdFor(e.tenant):
				// The merged set crosses the threshold here: a fresh
				// decision, taken only under the lease.
				if x.mayArmLocked() {
					x.armLocked(e)
					broadcasts = append(broadcasts, &wire.ArmBroadcast{Owner: x.selfID, Seq: e.ownerSeq,
						Confirmations: len(e.confirmedBy), Sig: e.ws, Fence: x.cluster.Epoch(),
						Tenant: e.tenant})
				} else {
					x.parkLocked(d.key)
				}
			case e.armed && prevOwner != x.selfID:
				// Already armed here as a replica; adopting ownership moves
				// the arming into this owner's seq namespace so peer
				// catch-up replays stay coherent.
				x.ownerSeq++
				e.ownerSeq = x.ownerSeq
			}
		} else {
			if e.owner != x.selfID {
				e.owner = x.cluster.OwnerOf(d.key)
			}
			if d.rec.Armed && !e.armed {
				x.pushArmedLocked(e)
				x.remoteInstalls++
				x.met.remoteInstalls.Inc()
			}
		}
		dirty = append(dirty, x.recordLocked(d.key, e))
	}
	x.broadcastArmsLocked(broadcasts)
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()
	return nil
}

// RebindOwnership re-evaluates every entry against the current live
// ring after a membership change. Keys this hub gained are promoted —
// an armed replica is re-sequenced into this owner's namespace, a
// pending shadow set past threshold arms immediately (the deputy
// assuming a dead owner's keys is exactly this path) — and keys it
// lost are demoted, with their provenance slices returned grouped by
// new owner for the cluster node to hand off. The handoff ordering is
// therefore: membership applied first (so Owns answers move), local
// promotion/demotion second, handoff enqueue third — a report arriving
// in between is forwarded to the new owner, whose set-union merge makes
// the race harmless.
func (x *Exchange) RebindOwnership() map[string][]wire.OwnedRecord {
	x.mu.Lock()
	if x.closed || x.cluster == nil {
		x.mu.Unlock()
		return nil
	}
	handoffs := make(map[string][]wire.OwnedRecord)
	var dirty []ProvenanceRecord
	var broadcasts []*wire.ArmBroadcast
	for _, key := range x.order {
		e := x.entries[key]
		newOwner := x.cluster.OwnerOf(key)
		switch {
		case newOwner == x.selfID && e.owner != x.selfID:
			e.owner = x.selfID
			if e.armed {
				x.ownerSeq++
				e.ownerSeq = x.ownerSeq
			} else {
				e.ownerSeq = 0
				if len(e.confirmedBy) >= x.thresholdFor(e.tenant) {
					// Promotion arming (the deputy assuming a dead owner's
					// keys) is a fresh decision: only under the lease. Safe
					// against the deposed owner's residual lease because the
					// suspicion window outlives the lease TTL.
					if x.mayArmLocked() {
						x.armLocked(e)
						broadcasts = append(broadcasts, &wire.ArmBroadcast{Owner: x.selfID, Seq: e.ownerSeq,
							Confirmations: len(e.confirmedBy), Sig: e.ws, Fence: x.cluster.Epoch(),
							Tenant: e.tenant})
					} else {
						x.parkLocked(key)
					}
				}
			}
			dirty = append(dirty, x.recordLocked(key, e))
		case newOwner != x.selfID && e.owner == x.selfID:
			handoffs[newOwner] = append(handoffs[newOwner], ownedRecordLocked(e))
			e.owner = newOwner
			// The demoted entry leaves this owner's seq namespace; the new
			// owner re-sequences on import and its broadcasts re-stamp it.
			e.ownerSeq = 0
			dirty = append(dirty, x.recordLocked(key, e))
		}
	}
	x.broadcastArmsLocked(broadcasts)
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()
	return handoffs
}

// mayArmLocked asks the cluster binding whether a fresh arming
// decision is currently allowed — true outside a cluster or without a
// quorum lease. Caller holds x.mu; the binding's answer is one atomic
// load.
func (x *Exchange) mayArmLocked() bool {
	return x.cluster == nil || x.cluster.MayArm()
}

// parkLocked defers a threshold crossing until the lease returns.
// Caller holds x.mu.
func (x *Exchange) parkLocked(key string) {
	if !x.parked[key] {
		x.parked[key] = true
		x.met.parkedArms.Inc()
		x.met.parkedGauge.Set(int64(len(x.parked)))
	}
}

// unparkLocked settles a parked decision (the key armed, or no longer
// qualifies). Caller holds x.mu.
func (x *Exchange) unparkLocked(key string) {
	if x.parked[key] {
		delete(x.parked, key)
		x.met.parkedGauge.Set(int64(len(x.parked)))
	}
}

// clusterBinding reads the bound cluster node (nil outside a
// federation).
func (x *Exchange) clusterBinding() ClusterBinding {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.cluster
}

// LeaseChanged is the cluster node's notification that the quorum
// lease was acquired (held=true) or lost (held=false). On acquisition
// the hub re-scans the parked set and arms every entry that still
// qualifies — this hub's pending decisions deferred while it sat on
// the minority side of a partition; entries that armed meanwhile via a
// peer broadcast, or moved to another owner, simply unpark. On loss
// there is nothing to do: the parked set only grows via the arm-path
// gates. Called without x.mu held.
func (x *Exchange) LeaseChanged(held bool) {
	if !held {
		return
	}
	x.mu.Lock()
	if x.closed || len(x.parked) == 0 {
		x.mu.Unlock()
		return
	}
	keys := make([]string, 0, len(x.parked))
	for key := range x.parked {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var dirty []ProvenanceRecord
	var broadcasts []*wire.ArmBroadcast
	for _, key := range keys {
		e, ok := x.entries[key]
		if !ok || e.armed {
			x.unparkLocked(key)
			continue
		}
		if !x.mayArmLocked() {
			break // the lease flapped away mid-scan; the rest stays parked
		}
		if len(e.confirmedBy) < x.thresholdFor(e.tenant) {
			x.unparkLocked(key) // no longer qualifies (it never should shrink, but stay safe)
			continue
		}
		x.armLocked(e)
		if x.cluster != nil && e.owner == x.selfID {
			broadcasts = append(broadcasts, &wire.ArmBroadcast{Owner: x.selfID, Seq: e.ownerSeq,
				Confirmations: len(e.confirmedBy), Sig: e.ws, Fence: x.cluster.Epoch(),
				Tenant: e.tenant})
		}
		dirty = append(dirty, x.recordLocked(key, e))
	}
	x.broadcastArmsLocked(broadcasts)
	persist := x.persistHandoffLocked(dirty)
	x.mu.Unlock()
	persist()
}

// applyMemberUpdate forwards a peer's membership snapshot to the
// cluster binding. Runs without x.mu held across the apply — merging
// can re-bind ownership, which locks the hub.
func (x *Exchange) applyMemberUpdate(u wire.MemberUpdate) {
	x.mu.Lock()
	cluster := x.cluster
	x.mu.Unlock()
	if cluster != nil {
		cluster.ApplyMemberUpdate(u)
	}
}

// DeliverConfirm relays an owner's forward-confirm receipt to the
// reporting device's live session; a device that disconnected meanwhile
// simply misses the receipt (confirms are informational — the arming
// itself travels by broadcast and delta).
func (x *Exchange) DeliverConfirm(tenant, device string, cf wire.Confirm) {
	x.mu.Lock()
	conn, ok := x.conns[sessKey(tenant, device)]
	x.mu.Unlock()
	if ok {
		conn.push(wire.Message{Type: wire.TypeConfirm, Confirm: &cf})
	}
}

// RemoteSeqs returns, per foreign owner hub, the highest arming seq
// this hub has applied — the cluster node's resume points after a
// restart over durable provenance.
func (x *Exchange) RemoteSeqs() map[string]uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make(map[string]uint64)
	for _, key := range x.order {
		e := x.entries[key]
		if e.owner != "" && e.owner != x.selfID && e.ownerSeq > out[e.owner] {
			out[e.owner] = e.ownerSeq
		}
	}
	return out
}

// status snapshots the hub as a wire status payload.
func (x *Exchange) status() *wire.Status {
	x.mu.Lock()
	defer x.mu.Unlock()
	st := &wire.Status{
		Epoch:     x.epoch,
		Threshold: x.threshold,
		Batching:  wire.Batching{Batches: x.batchBatches.Load(), Signatures: x.batchSigs.Load()},
		Hub:       x.selfID,
	}
	for id := range x.conns {
		st.Devices = append(st.Devices, id)
	}
	sort.Strings(st.Devices)
	if x.cluster != nil {
		snap := x.cluster.MemberSnapshot()
		cs := &wire.ClusterStatus{
			Members:         x.cluster.Members(),
			OwnerSeq:        x.ownerSeq,
			Forwards:        x.forwards,
			MembershipEpoch: snap.Epoch,
			Ring:            snap.Members,
			Fenced:          x.fenced,
		}
		for id := range x.peers {
			cs.Peers = append(cs.Peers, id)
		}
		sort.Strings(cs.Peers)
		for _, key := range x.order {
			if e := x.entries[key]; e.owner != "" && e.owner != x.selfID {
				cs.Remote++
			} else {
				cs.Owned++
			}
		}
		st.Cluster = cs
	}
	for _, key := range x.order {
		e := x.entries[key]
		st.Provenance = append(st.Provenance, wire.SigStatus{
			Key:           key,
			Kind:          e.sig.Kind.String(),
			FirstSeen:     e.firstSeen,
			Confirmations: max(len(e.confirmedBy), e.remoteConfirms),
			ConfirmedBy:   x.confirmedByView(e),
			Armed:         e.armed,
			Owner:         e.owner,
			Tenant:        e.tenant,
		})
	}
	st.Tenants = x.tenantViewLocked()
	return st
}

// tenantViewLocked summarizes the non-default tenants: signatures,
// armings, effective threshold, and attached devices, per tenant. The
// default "" tenant is the status payload's top level itself. Caller
// holds x.mu.
func (x *Exchange) tenantViewLocked() []wire.TenantStatus {
	acc := make(map[string]*wire.TenantStatus)
	get := func(t string) *wire.TenantStatus {
		ts, ok := acc[t]
		if !ok {
			ts = &wire.TenantStatus{Tenant: t, Threshold: x.thresholdFor(t)}
			acc[t] = ts
		}
		return ts
	}
	for t := range x.tenantThresholds {
		if t != "" {
			get(t)
		}
	}
	for _, key := range x.order {
		if e := x.entries[key]; e.tenant != "" {
			ts := get(e.tenant)
			ts.Sigs++
			if e.armed {
				ts.Armed++
			}
		}
	}
	for _, conn := range x.conns {
		conn.mu.Lock()
		t := conn.tenant
		conn.mu.Unlock()
		if t != "" {
			get(t).Devices++
		}
	}
	if len(acc) == 0 {
		return nil
	}
	out := make([]wire.TenantStatus, 0, len(acc))
	for _, ts := range acc {
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// confirmedByView is the externally visible confirmation set: only the
// owning hub exposes it — a deputy's shadow copy is an implementation
// detail of failover, and showing it would break the operator contract
// that exactly one hub holds the authoritative set.
func (x *Exchange) confirmedByView(e *fleetSig) []string {
	if e.owner != "" && e.owner != x.selfID {
		return nil
	}
	return sortedKeys(e.confirmedBy)
}

// Status returns the hub's observability snapshot — the same payload a
// status-req receives over the wire and the daemon serves on /status.
func (x *Exchange) Status() wire.Status { return *x.status() }

// Provenance returns the audit records of every signature the fleet has
// seen, in first-report order.
func (x *Exchange) Provenance() []Provenance {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]Provenance, 0, len(x.order))
	for _, key := range x.order {
		e := x.entries[key]
		out = append(out, Provenance{
			Key:           key,
			Kind:          e.sig.Kind,
			FirstSeen:     e.firstSeen,
			Confirmations: max(len(e.confirmedBy), e.remoteConfirms),
			ConfirmedBy:   x.confirmedByView(e),
			Armed:         e.armed,
			Owner:         e.owner,
			Tenant:        e.tenant,
		})
	}
	return out
}

// ArmedCount returns how many signatures are armed fleet-wide.
func (x *Exchange) ArmedCount() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return int(x.epoch)
}

// Stats snapshots the hub counters.
func (x *Exchange) Stats() ExchangeStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return ExchangeStats{
		Epoch:             x.epoch,
		Devices:           len(x.conns),
		Reports:           x.reports,
		Confirmations:     x.confirms,
		Echoes:            x.echoes,
		DeltaBatches:      x.batchBatches.Load(),
		DeltaSignatures:   x.batchSigs.Load(),
		PersistErrors:     x.persistErrors.Load(),
		Forwards:          x.forwards,
		RemoteInstalls:    x.remoteInstalls,
		Fenced:            x.fenced,
		AdmissionAdmitted: x.admit.Admitted(),
		AdmissionDelayed:  x.admit.Delayed(),
		AdmissionShed:     x.admit.Shed(),
		Parked:            len(x.parked),
	}
}

// Close disconnects every session and shuts the hub down. Provenance
// already persisted survives for the next Exchange over the same store.
// Close is idempotent.
func (x *Exchange) Close() {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.closed = true
	conns := make([]*Conn, 0, len(x.conns)+len(x.peers))
	for _, c := range x.conns {
		conns = append(conns, c)
	}
	for _, c := range x.peers {
		conns = append(conns, c)
	}
	x.mu.Unlock()
	// Concurrently: each Close drains its push queue, and a wedged TCP
	// peer holds its drain until the transport write deadline — serial
	// teardown would stack those waits.
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *Conn) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
}

// msgQueue is a connection's ordered hub→client push queue: a
// Queue[outMsg] drained by a dedicated goroutine so the hub never
// blocks on a slow session, with delta coalescing — consecutive queued
// deltas collapse into one wire message carrying the newest epoch, so
// under a publish storm a slow subscriber receives one batched push,
// never a backlog of stale ones. Queued items are either per-session
// messages or handles on encode-once Shared broadcast frames; stream
// sessions (AcceptStream) receive each drain's frames in a single
// writeFrames call. A delivery failure kills the queue and fires
// OnDead: the session is unusable and its Conn must be torn down even
// if the peer never closes its side of the socket.
type msgQueue = Queue[outMsg]
