package immunity

import (
	"errors"
	"fmt"
	"sync"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Loopback is the in-process Transport: client→hub messages are handled
// synchronously by the hub's Conn, hub→client messages arrive on the
// Conn's push-queue goroutine. It carries exactly the same wire messages
// as the TCP transport — only the byte movement is elided — so tests and
// workloads that run over loopback exercise the full protocol, and the
// arming decisions they observe are the ones a real network produces.
type Loopback struct {
	hub *Exchange
}

// NewLoopback creates the in-process transport for hub.
func NewLoopback(hub *Exchange) *Loopback { return &Loopback{hub: hub} }

// Dial implements Transport.
func (l *Loopback) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	s := &loopbackSession{down: down}
	conn, err := l.hub.Accept(
		func(m wire.Message) error { recv(m); return nil },
		s.sessionClosed,
	)
	if err != nil {
		// A closed in-process hub can never come back — this Loopback is
		// bound to that one object — so the client must stop redialing,
		// exactly as it would for a hello refusal. (The TCP transport's
		// dial errors stay transient: its daemon can restart.)
		return nil, errPermanent{err}
	}
	s.conn = conn
	return s, nil
}

// loopbackSession is the client's handle on a loopback conversation.
type loopbackSession struct {
	conn *Conn
	down func(err error)

	mu          sync.Mutex
	localClosed bool
	downOnce    sync.Once
}

// Send hands the message straight to the hub. A protocol violation (the
// hub refusing the message) closes the session, mirroring a TCP hub
// hanging up.
func (s *loopbackSession) Send(m wire.Message) error {
	if err := s.conn.Handle(m); err != nil {
		s.conn.Close()
		return fmt.Errorf("loopback send: %w", err)
	}
	return nil
}

// Close implements Session.
func (s *loopbackSession) Close() error {
	s.mu.Lock()
	s.localClosed = true
	s.mu.Unlock()
	s.conn.Close()
	return nil
}

// sessionClosed is the hub's teardown hook: it fires down unless the
// client closed the session itself (a local Close must not look like a
// drop and trigger a redial).
func (s *loopbackSession) sessionClosed() {
	s.mu.Lock()
	local := s.localClosed
	s.mu.Unlock()
	if !local {
		s.downOnce.Do(func() { s.down(errors.New("loopback: hub closed session")) })
	}
}
