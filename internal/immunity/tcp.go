package immunity

import (
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// The real network transport: length-prefixed wire frames over TCP
// (JSON at v1/v2, binary at v3 — the frame header names the codec),
// optionally under TLS (see auth.ServerConfig and friends for the
// config shapes). ServeTCP is the hub side (one goroutine per accepted
// connection feeding frames into Exchange.Conn.Handle, one push-queue
// goroutine writing frames back); TCPTransport is the phone side.
// Reconnect and resubscribe-from-epoch live in ExchangeClient, not
// here — the transport only reports the session's death.

// writeTimeout bounds every frame write. A peer that stopped reading
// (wedged phone, half-dead socket) errors the session out instead of
// parking the writer goroutine forever on a full kernel send buffer.
const writeTimeout = 30 * time.Second

// handshakeTimeout bounds a server-side TLS handshake: a port scanner
// or plaintext client connecting to a TLS listener must fail fast (and
// be counted), not park an accept goroutine.
const handshakeTimeout = 10 * time.Second

// TCPTransport dials a fleet exchange served with ServeTCP.
type TCPTransport struct {
	addr        string
	dialTimeout time.Duration
	tlsCfg      *tls.Config
}

var _ Transport = (*TCPTransport)(nil)

// TCPOption configures a TCPTransport (and the dial side of
// FetchStatus).
type TCPOption func(*TCPTransport)

// WithDialTLS makes the transport dial TLS with cfg — auth.ClientConfig
// for a device (server-cert verification only), auth.PeerConfig for a
// hub's outbound peer link (mutual). Nil keeps plaintext.
func WithDialTLS(cfg *tls.Config) TCPOption {
	return func(t *TCPTransport) { t.tlsCfg = cfg }
}

// NewTCPTransport creates a transport for the hub at addr
// (host:port).
func NewTCPTransport(addr string, opts ...TCPOption) *TCPTransport {
	t := &TCPTransport{addr: addr, dialTimeout: 5 * time.Second}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// dialConn opens (and, under TLS, handshakes) one connection.
func (t *TCPTransport) dialConn() (net.Conn, error) {
	if t.tlsCfg != nil {
		d := &net.Dialer{Timeout: t.dialTimeout}
		nc, err := tls.DialWithDialer(d, "tcp", t.addr, t.tlsCfg)
		if err != nil {
			return nil, fmt.Errorf("tcp transport: %w", err)
		}
		return nc, nil
	}
	nc, err := net.DialTimeout("tcp", t.addr, t.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcp transport: %w", err)
	}
	return nc, nil
}

// Dial implements Transport.
func (t *TCPTransport) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	nc, err := t.dialConn()
	if err != nil {
		return nil, err
	}
	s := &tcpSession{nc: nc}
	go s.readLoop(recv, down)
	return s, nil
}

// tcpSession is one client-side TCP wire session.
type tcpSession struct {
	nc net.Conn

	wmu    sync.Mutex
	cmu    sync.Mutex
	closed bool
}

// Send writes one frame; concurrent senders are serialized.
func (s *tcpSession) Send(m wire.Message) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	return wire.WriteFrame(s.nc, m)
}

// Close implements Session; the read loop exits without firing down.
func (s *tcpSession) Close() error {
	s.cmu.Lock()
	s.closed = true
	s.cmu.Unlock()
	return s.nc.Close()
}

// readLoop delivers inbound frames until the connection dies; down fires
// exactly once, and only for remote deaths. The Reader's reused scratch
// makes the steady-state frame read one buffered read and no
// allocation; its codec dispatch handles the JSON→binary switch when
// the handshake negotiates v3.
func (s *tcpSession) readLoop(recv func(wire.Message), down func(err error)) {
	fr := wire.NewReader(s.nc)
	for {
		m, err := fr.ReadFrame()
		if err != nil {
			s.cmu.Lock()
			closed := s.closed
			s.cmu.Unlock()
			s.nc.Close()
			if !closed {
				down(err)
			}
			return
		}
		recv(m)
	}
}

// ExchangeServer serves a fleet exchange over TCP.
type ExchangeServer struct {
	hub    *Exchange
	ln     net.Listener
	tlsCfg *tls.Config
	// tlsFailures counts server-side handshake failures (nil-safe no-op
	// without TLS): plaintext clients, wrong-CA forced certs, scanners.
	tlsFailures *metrics.Counter

	mu     sync.Mutex
	socks  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeOption configures an ExchangeServer.
type ServeOption func(*ExchangeServer)

// WithServeTLS serves the listener under TLS with cfg (typically
// auth.ServerConfig: hub cert, and the fleet CA as the client pool so
// peer sessions carry a verified certificate identity into the hub's
// peer-auth check). Handshake failures are counted on the hub registry
// as immunity_hub_tls_handshake_failures_total. Nil keeps plaintext.
func WithServeTLS(cfg *tls.Config) ServeOption {
	return func(s *ExchangeServer) { s.tlsCfg = cfg }
}

// ServeTCP starts serving hub on addr (use "127.0.0.1:0" for an
// OS-assigned test port) and returns once the listener is live.
func ServeTCP(hub *Exchange, addr string, opts ...ServeOption) (*ExchangeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("exchange serve: %w", err)
	}
	s := &ExchangeServer{hub: hub, ln: ln, socks: make(map[net.Conn]struct{})}
	for _, opt := range opts {
		opt(s)
	}
	if s.tlsCfg != nil {
		s.tlsFailures = hub.Metrics().Counter("immunity_hub_tls_handshake_failures_total",
			"Server-side TLS handshakes that failed (plaintext probes, bad certs).")
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *ExchangeServer) Addr() string { return s.ln.Addr().String() }

func (s *ExchangeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.socks[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(nc)
	}
}

// serve runs the hub side of one connection: frames in → Conn.Handle,
// pushes out via the Conn's queue writing frames back. The write side
// is a stream session (AcceptStream): each queue drain hands over every
// pending frame — shared broadcast frames byte-identical across
// sessions — and writev pushes them to the kernel in one syscall.
func (s *ExchangeServer) serve(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.socks, raw)
		s.mu.Unlock()
	}()
	nc := raw
	transportIdentity := ""
	if s.tlsCfg != nil {
		// Handshake explicitly (instead of letting the first read drive
		// it) so a failure is counted and the session's certificate
		// identity — the peer-auth input — is extracted before any frame
		// is handled.
		tc := tls.Server(nc, s.tlsCfg)
		tc.SetDeadline(time.Now().Add(handshakeTimeout))
		if err := tc.Handshake(); err != nil {
			s.tlsFailures.Inc()
			nc.Close()
			return
		}
		tc.SetDeadline(time.Time{})
		transportIdentity = auth.PeerIdentity(tc.ConnectionState())
		nc = tc
	}
	var wmu sync.Mutex
	conn, err := s.hub.AcceptStream(
		func(frames [][]byte) error {
			wmu.Lock()
			defer wmu.Unlock()
			nc.SetWriteDeadline(time.Now().Add(writeTimeout))
			// net.Buffers advances through our local slice on partial
			// writes; the shared frame bytes themselves are never touched.
			bufs := net.Buffers(frames)
			_, err := bufs.WriteTo(nc)
			return err
		},
		func() { nc.Close() },
	)
	if err != nil {
		nc.Close()
		return
	}
	if transportIdentity != "" {
		conn.SetTransportIdentity(transportIdentity)
	}
	defer conn.Close()
	fr := wire.NewReader(nc)
	for {
		m, err := fr.ReadFrame()
		if err != nil {
			return // dead or misbehaving peer; deferred Close cleans up
		}
		if err := conn.Handle(m); err != nil {
			// Protocol violation: the failure ack is already queued; let
			// the push queue flush it before the deferred Close tears the
			// socket down.
			return
		}
	}
}

// Close stops accepting, drops every live connection, and waits for the
// per-connection goroutines to exit.
func (s *ExchangeServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	socks := make([]net.Conn, 0, len(s.socks))
	for nc := range s.socks {
		socks = append(socks, nc)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, nc := range socks {
		nc.Close()
	}
	s.wg.Wait()
}

// FetchStatus asks the hub at addr for its status snapshot over a
// throwaway TCP session (status-req needs no hello). It is how the fleet
// workload's client mode and external monitors observe gating. Pass
// WithDialTLS to probe a TLS-served hub.
func FetchStatus(addr string, timeout time.Duration, opts ...TCPOption) (wire.Status, error) {
	t := NewTCPTransport(addr, opts...)
	if timeout > 0 {
		t.dialTimeout = timeout
	}
	nc, err := t.dialConn()
	if err != nil {
		return wire.Status{}, fmt.Errorf("fetch status: %w", err)
	}
	defer nc.Close()
	if timeout > 0 {
		nc.SetDeadline(time.Now().Add(timeout))
	}
	// Framed at the JSON ceiling: a status probe precedes any
	// negotiation, and an old (pre-v3) daemon must still parse it.
	if err := wire.WriteFrame(nc, wire.Message{V: wire.MaxJSONVersion, Type: wire.TypeStatusReq}); err != nil {
		return wire.Status{}, fmt.Errorf("fetch status: %w", err)
	}
	fr := wire.NewReader(nc)
	for {
		m, err := fr.ReadFrame()
		if err != nil {
			return wire.Status{}, fmt.Errorf("fetch status: %w", err)
		}
		if m.Type == wire.TypeStatus {
			return *m.Status, nil
		}
	}
}
