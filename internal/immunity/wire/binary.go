// The v3 binary codec: a hand-rolled varint + length-delimited encoding
// of the wire message set. No reflection, no field names on the wire,
// no intermediate allocations beyond the output buffer — encoding a
// delta is an append loop, decoding is a cursor walk. The JSON codec
// (v1/v2) and this one carry exactly the same message set; the
// differential fuzz target (FuzzWireV3Differential) holds the two to
// byte-identical round-trip behavior.
//
// Layout after the frame header (see the package comment's diagram):
//
//	varint  envelope version V
//	byte    message type code (binHello..binArmBroadcast)
//	...     payload fields, in struct order
//
// Field encodings:
//
//	u64     unsigned varint
//	int     zigzag varint (JSON permits negatives; round-trip keeps them)
//	bool    one byte, 0 or 1
//	string  u64 length + bytes
//	slice   u64 n: 0 = nil, else n-1 elements (nil and empty stay
//	map             distinct, as they are under the JSON codec)
//	ptr     one presence byte, then the value
//
// Map keys are encoded sorted so equal messages encode to equal bytes —
// the property that lets Shared hand one frame to every session.
package wire

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"
)

// Message type codes. Append-only: a code, once shipped, is never
// reused or renumbered.
const (
	binHello byte = iota + 1
	binAck
	binReport
	binConfirm
	binDelta
	binStatusReq
	binStatus
	binPeerHello
	binForwardReport
	binForwardConfirm
	binArmBroadcast
	binMemberUpdate
	binHandoff
	binReplicate
	binPing
	binPingAck
	binLease
	binLeaseAck
)

// typeCode maps a message type to its binary code.
func typeCode(t Type) (byte, bool) {
	switch t {
	case TypeHello:
		return binHello, true
	case TypeAck:
		return binAck, true
	case TypeReport:
		return binReport, true
	case TypeConfirm:
		return binConfirm, true
	case TypeDelta:
		return binDelta, true
	case TypeStatusReq:
		return binStatusReq, true
	case TypeStatus:
		return binStatus, true
	case TypePeerHello:
		return binPeerHello, true
	case TypeForwardReport:
		return binForwardReport, true
	case TypeForwardConfirm:
		return binForwardConfirm, true
	case TypeArmBroadcast:
		return binArmBroadcast, true
	case TypeMemberUpdate:
		return binMemberUpdate, true
	case TypeHandoff:
		return binHandoff, true
	case TypeReplicate:
		return binReplicate, true
	case TypePing:
		return binPing, true
	case TypePingAck:
		return binPingAck, true
	case TypeLease:
		return binLease, true
	case TypeLeaseAck:
		return binLeaseAck, true
	}
	return 0, false
}

// codeType is typeCode's inverse.
func codeType(c byte) (Type, bool) {
	switch c {
	case binHello:
		return TypeHello, true
	case binAck:
		return TypeAck, true
	case binReport:
		return TypeReport, true
	case binConfirm:
		return TypeConfirm, true
	case binDelta:
		return TypeDelta, true
	case binStatusReq:
		return TypeStatusReq, true
	case binStatus:
		return TypeStatus, true
	case binPeerHello:
		return TypePeerHello, true
	case binForwardReport:
		return TypeForwardReport, true
	case binForwardConfirm:
		return TypeForwardConfirm, true
	case binArmBroadcast:
		return TypeArmBroadcast, true
	case binMemberUpdate:
		return TypeMemberUpdate, true
	case binHandoff:
		return TypeHandoff, true
	case binReplicate:
		return TypeReplicate, true
	case binPing:
		return TypePing, true
	case binPingAck:
		return TypePingAck, true
	case binLease:
		return TypeLease, true
	case binLeaseAck:
		return TypeLeaseAck, true
	}
	return "", false
}

// --- encoding ---

func appendU64(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendInt(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendStr(b []byte, s string) []byte {
	if !utf8.ValidString(s) {
		// The JSON codec coerces invalid UTF-8 on marshal — one U+FFFD
		// per invalid byte; do byte-for-byte the same, so a string that
		// would have gone through (mangled identically) under v2 never
		// turns a v3 session into a decode-refusal redial loop, and the
		// canonical signature key a mixed-version fleet derives from it
		// is the same whichever codec carried it.
		s = coerceUTF8(s)
	}
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// coerceUTF8 mirrors encoding/json's marshal behavior exactly: every
// individually invalid byte becomes its own U+FFFD (strings.ToValidUTF8
// would collapse a run into one, deriving a different string than the
// JSON codec for the same message).
func coerceUTF8(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b.WriteRune(utf8.RuneError)
			i++
			continue
		}
		b.WriteString(s[i : i+size])
		i += size
	}
	return b.String()
}

// appendLen encodes a slice/map length with the nil/empty distinction:
// 0 means nil, n+1 means length n.
func appendLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return binary.AppendUvarint(b, 0)
	}
	return binary.AppendUvarint(b, uint64(n)+1)
}

func appendStrs(b []byte, ss []string) []byte {
	b = appendLen(b, len(ss), ss == nil)
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

func appendSig(b []byte, s Signature) []byte {
	b = appendStr(b, s.Kind)
	b = appendLen(b, len(s.Pairs), s.Pairs == nil)
	for _, p := range s.Pairs {
		b = appendStr(b, p.Outer)
		b = appendStr(b, p.Inner)
	}
	return b
}

func appendSigs(b []byte, sigs []Signature) []byte {
	b = appendLen(b, len(sigs), sigs == nil)
	for _, s := range sigs {
		b = appendSig(b, s)
	}
	return b
}

func appendConfirm(b []byte, c Confirm) []byte {
	b = appendStr(b, c.Key)
	b = appendInt(b, c.Confirmations)
	return appendBool(b, c.Armed)
}

func appendMembers(b []byte, ms []MemberInfo) []byte {
	b = appendLen(b, len(ms), ms == nil)
	for _, m := range ms {
		b = appendStr(b, m.ID)
		b = appendStr(b, m.Addr)
		b = appendBool(b, m.Down)
	}
	return b
}

func appendOwnedRecords(b []byte, recs []OwnedRecord) []byte {
	b = appendLen(b, len(recs), recs == nil)
	for _, r := range recs {
		b = appendSig(b, r.Sig)
		b = appendStr(b, r.FirstSeen)
		b = appendStrs(b, r.ConfirmedBy)
		b = appendBool(b, r.Armed)
		b = appendU64(b, r.OwnerSeq)
		b = appendStr(b, r.Tenant)
	}
	return b
}

// appendBinary appends m's binary envelope (no frame header) to dst.
// It validates exactly as the JSON Encode does.
func appendBinary(dst []byte, m Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return dst, err
	}
	code, ok := typeCode(m.Type)
	if !ok {
		return dst, fmt.Errorf("wire encode: unknown type %q", m.Type)
	}
	b := appendInt(dst, m.V)
	b = append(b, code)
	switch m.Type {
	case TypeHello:
		h := m.Hello
		b = appendStr(b, h.Device)
		b = appendU64(b, h.Epoch)
		b = appendInt(b, h.MinV)
		b = appendInt(b, h.MaxV)
		// Epochs is the one collection the JSON codec marshals with
		// omitempty, collapsing empty to absent — encode the same way, or
		// the two codecs would disagree about one message (both decoders
		// normalize, see decodeNorm).
		b = appendLen(b, len(h.Epochs), len(h.Epochs) == 0)
		gens := make([]string, 0, len(h.Epochs))
		for g := range h.Epochs {
			gens = append(gens, g)
		}
		sort.Strings(gens)
		for _, g := range gens {
			b = appendStr(b, g)
			b = appendU64(b, h.Epochs[g])
		}
		b = appendStr(b, h.Token)
	case TypeAck:
		a := m.Ack
		b = appendBool(b, a.OK)
		b = appendStr(b, a.Error)
		b = appendU64(b, a.Epoch)
		b = appendStr(b, a.Gen)
		b = appendInt(b, a.V)
	case TypeReport:
		b = appendSigs(b, m.Report.Sigs)
	case TypeConfirm:
		b = appendConfirm(b, *m.Confirm)
	case TypeDelta:
		b = appendU64(b, m.Delta.Epoch)
		b = appendSigs(b, m.Delta.Sigs)
	case TypeStatusReq:
		// no payload
	case TypeStatus:
		st := m.Status
		b = appendU64(b, st.Epoch)
		b = appendInt(b, st.Threshold)
		b = appendStrs(b, st.Devices)
		b = appendLen(b, len(st.Provenance), st.Provenance == nil)
		for _, p := range st.Provenance {
			b = appendStr(b, p.Key)
			b = appendStr(b, p.Kind)
			b = appendStr(b, p.FirstSeen)
			b = appendInt(b, p.Confirmations)
			b = appendStrs(b, p.ConfirmedBy)
			b = appendBool(b, p.Armed)
			b = appendStr(b, p.Owner)
			b = appendStr(b, p.Tenant)
		}
		b = appendU64(b, st.Batching.Batches)
		b = appendU64(b, st.Batching.Signatures)
		b = appendStr(b, st.Hub)
		if st.Cluster == nil {
			b = append(b, 0)
		} else {
			cs := st.Cluster
			b = append(b, 1)
			b = appendStrs(b, cs.Members)
			b = appendStrs(b, cs.Peers)
			b = appendU64(b, cs.OwnerSeq)
			b = appendInt(b, cs.Owned)
			b = appendInt(b, cs.Remote)
			b = appendU64(b, cs.Forwards)
			b = appendU64(b, cs.MembershipEpoch)
			b = appendMembers(b, cs.Ring)
			b = appendU64(b, cs.Fenced)
		}
		// Tenants follows the JSON omitempty rule: empty encodes as
		// absent (see decodeNorm).
		b = appendLen(b, len(st.Tenants), len(st.Tenants) == 0)
		for _, ts := range st.Tenants {
			b = appendStr(b, ts.Tenant)
			b = appendInt(b, ts.Sigs)
			b = appendInt(b, ts.Armed)
			b = appendInt(b, ts.Threshold)
			b = appendInt(b, ts.Devices)
		}
	case TypePeerHello:
		h := m.PeerHello
		b = appendStr(b, h.Hub)
		b = appendU64(b, h.Seq)
		b = appendInt(b, h.MinV)
		b = appendInt(b, h.MaxV)
		b = appendStr(b, h.Addr)
	case TypeForwardReport:
		f := m.Forward
		b = appendStr(b, f.Hub)
		b = appendStr(b, f.Device)
		b = appendSigs(b, f.Sigs)
		b = appendInt(b, f.Hops)
		b = appendStr(b, f.Tenant)
	case TypeForwardConfirm:
		b = appendStr(b, m.FwdConfirm.Device)
		b = appendConfirm(b, m.FwdConfirm.Confirm)
		b = appendStr(b, m.FwdConfirm.Tenant)
	case TypeArmBroadcast:
		a := m.Arm
		b = appendStr(b, a.Owner)
		b = appendU64(b, a.Seq)
		b = appendInt(b, a.Confirmations)
		b = appendSig(b, a.Sig)
		b = appendU64(b, a.Fence)
		b = appendStr(b, a.Tenant)
	case TypeMemberUpdate:
		u := m.Member
		b = appendU64(b, u.Epoch)
		b = appendMembers(b, u.Members)
	case TypeHandoff:
		b = appendStr(b, m.Handoff.From)
		b = appendOwnedRecords(b, m.Handoff.Records)
	case TypeReplicate:
		b = appendStr(b, m.Replicate.Owner)
		b = appendOwnedRecords(b, m.Replicate.Records)
	case TypePing:
		b = appendStr(b, m.Ping.From)
		b = appendStr(b, m.Ping.Target)
		b = appendU64(b, m.Ping.Seq)
	case TypePingAck:
		b = appendStr(b, m.PingAck.From)
		b = appendStr(b, m.PingAck.Target)
		b = appendU64(b, m.PingAck.Seq)
		b = appendBool(b, m.PingAck.OK)
	case TypeLease:
		b = appendStr(b, m.Lease.From)
		b = appendU64(b, m.Lease.Epoch)
		b = appendU64(b, m.Lease.Seq)
	case TypeLeaseAck:
		b = appendStr(b, m.LeaseAck.From)
		b = appendU64(b, m.LeaseAck.Epoch)
		b = appendU64(b, m.LeaseAck.Seq)
		b = appendBool(b, m.LeaseAck.OK)
	}
	return b, nil
}

// EncodeBinary marshals the message with the v3 binary codec (envelope
// only, no frame header) — the binary twin of Encode.
func EncodeBinary(m Message) ([]byte, error) {
	b, err := appendBinary(nil, m)
	if err != nil {
		return nil, err
	}
	if len(b) > MaxFrame {
		return nil, fmt.Errorf("wire encode: frame %d bytes exceeds max %d", len(b), MaxFrame)
	}
	return b, nil
}

// --- decoding ---

// bdec is a cursor over one binary envelope. The first malformed field
// latches err; every subsequent read is a cheap no-op, so decode paths
// need a single error check at the end.
type bdec struct {
	b   []byte
	off int
	err error
}

func (d *bdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire binary decode: "+format, args...)
	}
}

func (d *bdec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

func (d *bdec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated bool")
		return false
	}
	c := d.b[d.off]
	d.off++
	if c > 1 {
		d.fail("bad bool byte %d", c)
		return false
	}
	return c == 1
}

func (d *bdec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

func (d *bdec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)]) // copies: decoded messages never alias the read buffer
	d.off += int(n)
	if !utf8.ValidString(s) {
		// The JSON codec cannot represent invalid UTF-8 (it would be
		// coerced to U+FFFD), so accepting it here would let the two
		// codecs disagree about one message. Same domain, both codecs.
		d.fail("string %q is not valid UTF-8", s)
		return ""
	}
	return s
}

// length decodes a slice/map length: (-1) for nil, else the length.
// Lengths are sanity-capped by the remaining payload (every element
// costs at least one byte), so an element count a frame cannot possibly
// back fails immediately.
func (d *bdec) length() int {
	n := d.u64()
	if d.err != nil || n == 0 {
		return -1
	}
	n--
	if n > uint64(len(d.b)-d.off) {
		d.fail("collection length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return -1
	}
	return int(n)
}

// maxPrealloc caps a collection's up-front allocation: the byte-count
// sanity check above bounds the element *count*, not count × element
// size, so a hostile frame could otherwise claim millions of elements
// and cost a multi-hundred-MB make before the first element fails to
// decode. Beyond the cap the slice grows by append, paying only for
// elements the payload actually contains.
const maxPrealloc = 1024

func prealloc(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

func (d *bdec) strs() []string {
	n := d.length()
	if n < 0 {
		return nil
	}
	out := make([]string, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *bdec) sig() Signature {
	s := Signature{Kind: d.str()}
	n := d.length()
	if n < 0 {
		return s
	}
	s.Pairs = make([]SigPair, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		s.Pairs = append(s.Pairs, SigPair{Outer: d.str(), Inner: d.str()})
	}
	return s
}

func (d *bdec) sigs() []Signature {
	n := d.length()
	if n < 0 {
		return nil
	}
	out := make([]Signature, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.sig())
	}
	return out
}

func (d *bdec) confirm() Confirm {
	return Confirm{Key: d.str(), Confirmations: d.int(), Armed: d.bool()}
}

func (d *bdec) members() []MemberInfo {
	n := d.length()
	if n < 0 {
		return nil
	}
	out := make([]MemberInfo, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, MemberInfo{ID: d.str(), Addr: d.str(), Down: d.bool()})
	}
	return out
}

func (d *bdec) ownedRecords() []OwnedRecord {
	n := d.length()
	if n < 0 {
		return nil
	}
	out := make([]OwnedRecord, 0, prealloc(n))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, OwnedRecord{Sig: d.sig(), FirstSeen: d.str(),
			ConfirmedBy: d.strs(), Armed: d.bool(), OwnerSeq: d.u64(), Tenant: d.str()})
	}
	return out
}

// DecodeBinary unmarshals and structurally validates one binary
// envelope — the binary twin of Decode. Trailing bytes are an error: a
// frame is exactly one message.
func DecodeBinary(b []byte) (Message, error) {
	d := &bdec{b: b}
	var m Message
	m.V = d.int()
	code := d.byte()
	t, ok := codeType(code)
	if d.err == nil && !ok {
		d.fail("unknown type code %d", code)
	}
	if d.err != nil {
		return Message{}, d.err
	}
	m.Type = t
	switch t {
	case TypeHello:
		h := &Hello{Device: d.str(), Epoch: d.u64(), MinV: d.int(), MaxV: d.int()}
		if n := d.length(); n > 0 {
			h.Epochs = make(map[string]uint64, prealloc(n))
			for i := 0; i < n && d.err == nil; i++ {
				g := d.str()
				h.Epochs[g] = d.u64()
			}
		}
		h.Token = d.str()
		m.Hello = h
	case TypeAck:
		m.Ack = &Ack{OK: d.bool(), Error: d.str(), Epoch: d.u64(), Gen: d.str(), V: d.int()}
	case TypeReport:
		m.Report = &Report{Sigs: d.sigs()}
	case TypeConfirm:
		c := d.confirm()
		m.Confirm = &c
	case TypeDelta:
		m.Delta = &Delta{Epoch: d.u64(), Sigs: d.sigs()}
	case TypeStatusReq:
		// no payload
	case TypeStatus:
		st := &Status{Epoch: d.u64(), Threshold: d.int(), Devices: d.strs()}
		if n := d.length(); n >= 0 {
			st.Provenance = make([]SigStatus, 0, prealloc(n))
			for i := 0; i < n && d.err == nil; i++ {
				st.Provenance = append(st.Provenance, SigStatus{Key: d.str(), Kind: d.str(), FirstSeen: d.str(),
					Confirmations: d.int(), ConfirmedBy: d.strs(), Armed: d.bool(), Owner: d.str(), Tenant: d.str()})
			}
		}
		st.Batching = Batching{Batches: d.u64(), Signatures: d.u64()}
		st.Hub = d.str()
		switch present := d.byte(); present {
		case 0:
		case 1:
			st.Cluster = &ClusterStatus{Members: d.strs(), Peers: d.strs(),
				OwnerSeq: d.u64(), Owned: d.int(), Remote: d.int(), Forwards: d.u64(),
				MembershipEpoch: d.u64(), Ring: d.members(), Fenced: d.u64()}
		default:
			d.fail("bad presence byte %d", present)
		}
		if n := d.length(); n > 0 {
			st.Tenants = make([]TenantStatus, 0, prealloc(n))
			for i := 0; i < n && d.err == nil; i++ {
				st.Tenants = append(st.Tenants, TenantStatus{Tenant: d.str(),
					Sigs: d.int(), Armed: d.int(), Threshold: d.int(), Devices: d.int()})
			}
		}
		m.Status = st
	case TypePeerHello:
		m.PeerHello = &PeerHello{Hub: d.str(), Seq: d.u64(), MinV: d.int(), MaxV: d.int(), Addr: d.str()}
	case TypeForwardReport:
		m.Forward = &ForwardReport{Hub: d.str(), Device: d.str(), Sigs: d.sigs(), Hops: d.int(), Tenant: d.str()}
	case TypeForwardConfirm:
		m.FwdConfirm = &ForwardConfirm{Device: d.str(), Confirm: d.confirm(), Tenant: d.str()}
	case TypeArmBroadcast:
		m.Arm = &ArmBroadcast{Owner: d.str(), Seq: d.u64(), Confirmations: d.int(), Sig: d.sig(), Fence: d.u64(), Tenant: d.str()}
	case TypeMemberUpdate:
		m.Member = &MemberUpdate{Epoch: d.u64(), Members: d.members()}
	case TypeHandoff:
		m.Handoff = &Handoff{From: d.str(), Records: d.ownedRecords()}
	case TypeReplicate:
		m.Replicate = &Replicate{Owner: d.str(), Records: d.ownedRecords()}
	case TypePing:
		m.Ping = &Ping{From: d.str(), Target: d.str(), Seq: d.u64()}
	case TypePingAck:
		m.PingAck = &PingAck{From: d.str(), Target: d.str(), Seq: d.u64(), OK: d.bool()}
	case TypeLease:
		m.Lease = &Lease{From: d.str(), Epoch: d.u64(), Seq: d.u64()}
	case TypeLeaseAck:
		m.LeaseAck = &LeaseAck{From: d.str(), Epoch: d.u64(), Seq: d.u64(), OK: d.bool()}
	}
	if d.err != nil {
		return Message{}, d.err
	}
	if d.off != len(d.b) {
		return Message{}, fmt.Errorf("wire binary decode: %d trailing bytes after %s", len(d.b)-d.off, t)
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return decodeNorm(m), nil
}
