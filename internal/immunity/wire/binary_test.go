package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"runtime"
	"testing"
)

// binaryFixtures is messageFixtures re-stamped at the binary version,
// plus edge shapes the JSON fixtures do not cover (nil vs empty
// collections, negative ints, empty strings).
func binaryFixtures() []Message {
	ws := FromCore(testSig())
	msgs := messageFixtures()
	for i := range msgs {
		msgs[i].V = BinaryVersion
	}
	msgs = append(msgs,
		Message{V: BinaryVersion, Type: TypeReport, Report: &Report{Sigs: []Signature{}}},
		Message{V: BinaryVersion, Type: TypeDelta, Delta: &Delta{Epoch: 1<<63 + 9, Sigs: nil}},
		Message{V: -2, Type: TypeConfirm, Confirm: &Confirm{Key: "", Confirmations: -7}},
		Message{V: BinaryVersion, Type: TypeHello,
			Hello: &Hello{Device: "d", Epochs: map[string]uint64{"g1": 3, "g2": 0}}},
		Message{V: BinaryVersion, Type: TypeStatus, Status: &Status{
			Devices:    []string{},
			Provenance: []SigStatus{{Key: "k", Kind: "deadlock", ConfirmedBy: nil}},
			Cluster:    &ClusterStatus{Members: []string{"a"}, Owned: -1}}},
		Message{V: BinaryVersion, Type: TypeArmBroadcast,
			Arm: &ArmBroadcast{Owner: "hub-a", Seq: 1, Sig: ws}},
	)
	return msgs
}

// TestBinaryRoundTrip: every message shape survives the binary codec
// exactly, including the nil/empty collection distinction the JSON
// codec preserves.
func TestBinaryRoundTrip(t *testing.T) {
	for _, m := range binaryFixtures() {
		b, err := EncodeBinary(m)
		if err != nil {
			t.Fatalf("encode %s: %v", m.Type, err)
		}
		got, err := DecodeBinary(b)
		if err != nil {
			t.Fatalf("decode %s: %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("binary round trip %s:\n got %+v\nwant %+v", m.Type, got, m)
		}
	}
}

// TestBinaryFrameRoundTrip: v3-stamped messages frame with the binary
// flag bit, read back through both ReadFrame and Reader, and interleave
// freely with JSON frames on one stream — the mixed-version property
// the handshake depends on.
func TestBinaryFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := binaryFixtures()
	// Interleave a JSON frame between every binary one.
	jm := Message{V: MaxJSONVersion, Type: TypeStatusReq}
	var want []Message
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Type, err)
		}
		if err := WriteFrame(&buf, jm); err != nil {
			t.Fatal(err)
		}
		want = append(want, m, jm)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for _, w := range want {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("read %s: %v", w.Type, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("frame round trip %s:\n got %+v\nwant %+v", w.Type, got, w)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("EOF after last frame, got %v", err)
	}
}

// TestBinaryFrameFlagBit: the header of a binary frame carries the flag
// bit, a JSON frame does not, and a pre-v3 reader treats a binary frame
// as an oversized length — a clean refusal, never a mis-parse.
func TestBinaryFrameFlagBit(t *testing.T) {
	bin, err := AppendFrame(nil, Message{V: BinaryVersion, Type: TypeStatusReq})
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(bin[:4])&binaryFlag == 0 {
		t.Fatal("binary frame header missing the codec flag bit")
	}
	js, err := AppendFrame(nil, Message{V: MaxJSONVersion, Type: TypeStatusReq})
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(js[:4])&binaryFlag != 0 {
		t.Fatal("JSON frame header carries the codec flag bit")
	}
	// A legacy reader (no flag handling) sees length >= 2^31 > MaxFrame.
	if n := binary.BigEndian.Uint32(bin[:4]); n <= MaxFrame {
		t.Fatalf("binary frame header %#x would parse as a plausible legacy length", n)
	}
}

// TestDecodeNormalizesEmptyEpochs: Hello.Epochs travels with omitempty
// under JSON, so an empty-but-present map cannot survive a JSON
// re-encode; both decoders collapse it to nil so decode→encode→decode
// is a fixed point under either codec.
func TestDecodeNormalizesEmptyEpochs(t *testing.T) {
	jb := []byte(`{"v":2,"type":"hello","hello":{"device":"d","epoch":0,"epochs":{}}}`)
	m, err := Decode(jb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hello.Epochs != nil {
		t.Fatalf("JSON decode kept the empty epochs map: %+v", m.Hello)
	}
	bb, err := EncodeBinary(Message{V: BinaryVersion, Type: TypeHello,
		Hello: &Hello{Device: "d", Epochs: map[string]uint64{}}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeBinary(bb)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Hello.Epochs != nil {
		t.Fatalf("binary round trip kept the empty epochs map: %+v", m2.Hello)
	}
}

// TestBinaryEncodeCoercesInvalidUTF8: the binary encoder mangles
// invalid UTF-8 to U+FFFD exactly as json.Marshal does — a bad string
// must not produce a frame the receiver refuses (which would turn a v3
// session into a redial/re-report loop a v2 session never had).
func TestBinaryEncodeCoercesInvalidUTF8(t *testing.T) {
	// Both a lone invalid byte and a run of them: JSON marshal emits one
	// U+FFFD per invalid byte, and a run-collapsing coercion would
	// derive a different canonical signature key than the JSON codec
	// for the same message — splitting confirmations across a
	// mixed-version fleet.
	for _, bad := range []string{"dev\xffice", "a\xff\xfeb", "\xff\xff\xff", "ok�already"} {
		b, err := EncodeBinary(Message{V: BinaryVersion, Type: TypeHello, Hello: &Hello{Device: bad}})
		if err != nil {
			t.Fatal(err)
		}
		m, err := DecodeBinary(b)
		if err != nil {
			t.Fatalf("%q: coerced frame refused: %v", bad, err)
		}
		jb, err := Encode(Message{V: MaxJSONVersion, Type: TypeHello, Hello: &Hello{Device: bad}})
		if err != nil {
			t.Fatal(err)
		}
		jm, err := Decode(jb)
		if err != nil {
			t.Fatal(err)
		}
		if m.Hello.Device != jm.Hello.Device {
			t.Fatalf("%q: codecs coerced differently: binary %q vs json %q", bad, m.Hello.Device, jm.Hello.Device)
		}
	}
}

// TestBinaryHostileLengthNoHugeAlloc: a frame claiming millions of
// elements it cannot back must fail with bounded allocation, not cost
// count × element-size up front.
func TestBinaryHostileLengthNoHugeAlloc(t *testing.T) {
	// A report envelope claiming 2M signatures, "backed" by 2 MiB of
	// 0xff so the byte-count sanity check passes — the first element
	// then fails to decode. Preallocating count × sizeof(Signature)
	// up front would cost ~80 MB here before that failure.
	const n = 2 << 20
	frame := []byte{0, binReport}
	frame = appendU64(frame, uint64(n)+1)
	frame = append(frame, bytes.Repeat([]byte{0xff}, n)...)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := DecodeBinary(frame); err == nil {
		t.Fatal("hostile length accepted")
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Fatalf("hostile length cost %d bytes of allocation", grew)
	}
}

// TestBinaryDecodeRejects: truncated, trailing-garbage, and
// hostile-length envelopes fail cleanly.
func TestBinaryDecodeRejects(t *testing.T) {
	good, err := EncodeBinary(Message{V: BinaryVersion, Type: TypeReport,
		Report: &Report{Sigs: []Signature{FromCore(testSig())}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		{},
		good[:len(good)-1],          // truncated
		append(good[:len(good):len(good)], 0), // trailing byte
		{0, 99},                     // unknown type code
		{0, binConfirm, 0xff, 0xff, 0xff, 0xff, 0xff}, // hostile string length
		{0, binStatusReq, 7},        // payload on payloadless type (trailing)
	}
	for i, b := range cases {
		if _, err := DecodeBinary(b); err == nil {
			t.Errorf("case %d: malformed envelope %v decoded without error", i, b)
		}
	}
}

// TestSharedFrameEncodeOnce: Shared returns the identical backing bytes
// for every caller at one version, distinct encodings per version, and
// the JSON/binary codec split follows the version.
func TestSharedFrameEncodeOnce(t *testing.T) {
	sh := NewShared(Message{Type: TypeDelta,
		Delta: &Delta{Epoch: 4, Sigs: []Signature{FromCore(testSig())}}})
	b3a, err := sh.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	b3b, err := sh.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	if &b3a[0] != &b3b[0] {
		t.Fatal("second Frame(3) re-encoded instead of sharing the cached bytes")
	}
	b2, err := sh.Frame(2)
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(b3a[:4])&binaryFlag == 0 {
		t.Fatal("v3 shared frame not binary")
	}
	if binary.BigEndian.Uint32(b2[:4])&binaryFlag != 0 {
		t.Fatal("v2 shared frame not JSON")
	}
	for v, b := range map[int][]byte{3: b3a, 2: b2} {
		m, err := ReadFrame(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("v%d shared frame does not decode: %v", v, err)
		}
		if m.V != v || m.Type != TypeDelta || m.Delta.Epoch != 4 {
			t.Fatalf("v%d shared frame decoded wrong: %+v", v, m)
		}
	}
}

// FuzzWireV3Differential holds the two codecs to the same behavior:
// any frame either codec accepts must round-trip bit-identically
// through the *other* codec — JSON-decoded messages re-encode through
// binary and back unchanged, binary-decoded messages re-encode through
// JSON and back unchanged. A divergence here is a message a v2 hub and
// a v3 hub would disagree about.
func FuzzWireV3Differential(f *testing.F) {
	var buf bytes.Buffer
	for _, m := range messageFixtures() {
		buf.Reset()
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, m := range binaryFixtures() {
		buf.Reset()
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Through the binary codec and back.
		bb, err := EncodeBinary(m)
		if err != nil {
			t.Fatalf("accepted message does not binary-encode: %+v: %v", m, err)
		}
		fromBin, err := DecodeBinary(bb)
		if err != nil {
			t.Fatalf("binary encoding does not decode: %+v: %v", m, err)
		}
		if !reflect.DeepEqual(fromBin, m) {
			t.Fatalf("binary round trip diverged:\n  in  %+v\n  out %+v", m, fromBin)
		}
		// Through the JSON codec and back.
		jb, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message does not JSON-encode: %+v: %v", m, err)
		}
		fromJSON, err := Decode(jb)
		if err != nil {
			t.Fatalf("JSON encoding does not decode: %+v: %v", m, err)
		}
		if !reflect.DeepEqual(fromJSON, m) {
			t.Fatalf("JSON round trip diverged:\n  in  %+v\n  out %+v", m, fromJSON)
		}
		// And the two agree byte-for-byte on the binary form (determinism:
		// the property that lets Shared hand one frame to every session).
		bb2, err := EncodeBinary(fromJSON)
		if err != nil || !bytes.Equal(bb, bb2) {
			t.Fatalf("binary encoding not deterministic across codecs (%v):\n  %x\n  %x", err, bb, bb2)
		}
	})
}
