package wire

import (
	"testing"
)

// benchDelta is a representative broadcast: one armed signature (the
// overwhelmingly common arming) pushed to the whole fleet.
func benchDelta() Message {
	return Message{Type: TypeDelta,
		Delta: &Delta{Epoch: 42, Sigs: []Signature{FromCore(testSig())}}}
}

const benchSubscribers = 64

// BenchmarkHubBroadcast measures the wire cost of pushing one arming to
// 64 subscribers — the marshal storm the encode-once fan-out removes.
// The v2 sub-benchmark is the old per-subscriber path (each session's
// queue JSON-encodes its own copy of the same message); the v3
// sub-benchmark is the shipped path (one Shared, every session handed
// the cached frame). cmd/microbench -wire runs the same two bodies and
// records the ratio in BENCH_wire.json.
func BenchmarkHubBroadcast(b *testing.B) {
	b.Run("v2-json-per-subscriber", func(b *testing.B) {
		m := benchDelta()
		m.V = 2
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for s := 0; s < benchSubscribers; s++ {
				if _, err := AppendFrame(nil, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("v3-encode-once", func(b *testing.B) {
		m := benchDelta()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sh := NewShared(m) // a fresh broadcast per arming, as the hub does
			for s := 0; s < benchSubscribers; s++ {
				if _, err := sh.Frame(BinaryVersion); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkWireEncode tracks the per-message codec cost (one encode,
// no fan-out) for the perf trajectory in BENCH_wire.json.
func BenchmarkWireEncode(b *testing.B) {
	b.Run("json", func(b *testing.B) {
		m := benchDelta()
		m.V = 2
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		m := benchDelta()
		m.V = BinaryVersion
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeBinary(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireDecode is BenchmarkWireEncode's read side.
func BenchmarkWireDecode(b *testing.B) {
	b.Run("json", func(b *testing.B) {
		m := benchDelta()
		m.V = 2
		buf, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Decode(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		m := benchDelta()
		m.V = BinaryVersion
		buf, err := EncodeBinary(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinary(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
