package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/dimmunix/dimmunix/internal/core"
)

// testSig builds a deterministic two-party deadlock signature.
func testSig() *core.Signature {
	a := core.Frame{Class: "com.app.Svc1", Method: "methodA", Line: 10}
	b := core.Frame{Class: "com.app.Svc2", Method: "methodB", Line: 20}
	return &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{a}, Inner: core.CallStack{a, b}},
			{Outer: core.CallStack{b}, Inner: core.CallStack{b, a}},
		},
	}
}

// TestSignatureRoundTrip: the canonical wire encoding preserves the
// signature key exactly — two devices that detect the same bug produce
// identical wire signatures.
func TestSignatureRoundTrip(t *testing.T) {
	orig := testSig()
	ws := FromCore(orig)
	back, err := ws.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != orig.Key() {
		t.Fatalf("round-trip changed key: %q -> %q", orig.Key(), back.Key())
	}
	if !reflect.DeepEqual(back.Pairs, orig.Pairs) {
		t.Fatalf("round-trip changed pairs: %+v -> %+v", orig.Pairs, back.Pairs)
	}
}

// TestSignatureDecodeRejects: malformed wire signatures fail cleanly.
func TestSignatureDecodeRejects(t *testing.T) {
	cases := []Signature{
		{Kind: "gridlock", Pairs: []SigPair{{Outer: "A.m:1", Inner: "A.m:1"}}},
		{Kind: "deadlock", Pairs: []SigPair{{Outer: "A.m:1", Inner: "A.m:1"}}}, // 1 pair: invalid deadlock
		{Kind: "deadlock", Pairs: []SigPair{{Outer: "garbage", Inner: "A.m:1"}, {Outer: "B.m:2", Inner: "B.m:2"}}},
	}
	for i, ws := range cases {
		if _, err := ws.ToCore(); err == nil {
			t.Errorf("case %d: malformed signature %+v decoded without error", i, ws)
		}
	}
}

// messageFixtures is one valid message of every type.
func messageFixtures() []Message {
	ws := FromCore(testSig())
	return []Message{
		{V: Version, Type: TypeHello, Hello: &Hello{Device: "phone0", Epoch: 7,
			MinV: MinVersion, MaxV: Version, Epochs: map[string]uint64{"f00dfeedf00dfeed": 7}}},
		{V: Version, Type: TypeAck, Ack: &Ack{OK: true, Epoch: 9, Gen: "f00dfeedf00dfeed", V: Version}},
		{V: Version, Type: TypeReport, Report: &Report{Sigs: []Signature{ws}}},
		{V: Version, Type: TypeConfirm, Confirm: &Confirm{Key: testSig().Key(), Confirmations: 2, Armed: true}},
		{V: Version, Type: TypeDelta, Delta: &Delta{Epoch: 3, Sigs: []Signature{ws, ws}}},
		{V: Version, Type: TypeStatusReq},
		{V: Version, Type: TypeStatus, Status: &Status{Epoch: 3, Threshold: 2, Devices: []string{"phone0"},
			Provenance: []SigStatus{{Key: "k", Kind: "deadlock", FirstSeen: "phone0", Confirmations: 2, ConfirmedBy: []string{"phone0", "phone1"}, Armed: true, Owner: "hub-a"}},
			Batching:   Batching{Batches: 4, Signatures: 9},
			Hub:        "hub-a",
			Cluster: &ClusterStatus{Members: []string{"hub-a", "hub-b"}, Peers: []string{"hub-b"},
				OwnerSeq: 5, Owned: 3, Remote: 2, Forwards: 11}}},
		{V: Version, Type: TypePeerHello, PeerHello: &PeerHello{Hub: "hub-b", Seq: 4, MinV: MinVersion, MaxV: Version}},
		{V: Version, Type: TypeForwardReport, Forward: &ForwardReport{Hub: "hub-b", Device: "phone0", Sigs: []Signature{ws}}},
		{V: Version, Type: TypeForwardConfirm, FwdConfirm: &ForwardConfirm{Device: "phone0",
			Confirm: Confirm{Key: testSig().Key(), Confirmations: 1}}},
		{V: Version, Type: TypeArmBroadcast, Arm: &ArmBroadcast{Owner: "hub-a", Seq: 6, Confirmations: 2, Sig: ws}},
	}
}

// TestNegotiate: the single negotiation rule picks the highest common
// version and refuses disjoint ranges on either side.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		min, max int
		want     int
		ok       bool
	}{
		{MinVersion, Version, Version, true},
		{1, 1, 1, true},               // old v1 client
		{Version, Version + 5, Version, true}, // newer client, common floor
		{Version + 1, Version + 5, 0, false},  // client too new
		{0, 0, 0, false},              // nonsense envelope version 0
		{43, 43, 0, false},            // museum piece far ahead
		{2, 1, 0, false},              // inverted range
	}
	for _, c := range cases {
		got, ok := Negotiate(c.min, c.max)
		if got != c.want || ok != c.ok {
			t.Errorf("Negotiate(%d, %d) = (%d, %v), want (%d, %v)", c.min, c.max, got, ok, c.want, c.ok)
		}
	}
}

// TestFrameRoundTrip: every message type survives WriteFrame/ReadFrame.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := messageFixtures()
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("write %s: %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %s:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("EOF after last frame, got %v", err)
	}
}

// TestValidateRejects: structurally broken envelopes are refused.
func TestValidateRejects(t *testing.T) {
	cases := []Message{
		{V: Version, Type: "teleport"},
		{V: Version, Type: TypeHello}, // missing payload
		{V: Version, Type: TypeHello, Hello: &Hello{Device: "d"}, Ack: &Ack{OK: true}}, // two payloads
		{V: Version, Type: TypeStatusReq, Delta: &Delta{}},                             // payload on payloadless type
		{V: Version, Type: TypeDelta, Ack: &Ack{}},                                     // wrong payload
		{V: Version, Type: TypePeerHello},                                              // missing peer payload
		{V: Version, Type: TypeArmBroadcast, PeerHello: &PeerHello{Hub: "h"}},          // wrong peer payload
		{V: Version, Type: TypeForwardReport, Forward: &ForwardReport{Hub: "h"}, Arm: &ArmBroadcast{}}, // two peer payloads
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid message %+v passed validation", i, m)
		}
	}
}

// TestReadFrameLimits: zero-length and oversized frames are rejected
// before any payload allocation.
func TestReadFrameLimits(t *testing.T) {
	var zero [4]byte
	if _, err := ReadFrame(bytes.NewReader(zero[:])); err == nil {
		t.Error("zero-length frame accepted")
	}
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:])); err == nil || !strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversized frame: err = %v, want exceeds-max", err)
	}
}

// FuzzWireDecode hammers the frame decoder: arbitrary bytes must never
// panic, and any frame that decodes must re-encode and decode to the
// same message (the canonical-form property reports rely on).
func FuzzWireDecode(f *testing.F) {
	var buf bytes.Buffer
	for _, m := range messageFixtures() {
		buf.Reset()
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, '{'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %+v: %v", m, err)
		}
		again, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %s: %v", b, err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("decode/encode/decode not stable:\n first %+v\n again %+v", m, again)
		}
		// Signatures that arrived in a well-formed frame must also fail
		// or succeed deterministically on the core decode path.
		if m.Type == TypeReport {
			for _, ws := range m.Report.Sigs {
				sig, err := ws.ToCore()
				if err != nil {
					continue
				}
				if FromCore(sig).Kind != ws.Kind {
					t.Fatalf("core round trip changed kind: %+v", ws)
				}
			}
		}
	})
}

// FuzzPeerFrameDecode hammers the peer (hub-to-hub) half of the frame
// decoder the way FuzzWireDecode hammers the device half: arbitrary
// bytes must never panic, decoded peer envelopes must hold exactly one
// peer payload, and any peer frame that decodes must survive an
// encode/decode round trip — a hostile or corrupt peer hub must not be
// able to wedge a cluster.
func FuzzPeerFrameDecode(f *testing.F) {
	ws := FromCore(testSig())
	peers := []Message{
		{V: Version, Type: TypePeerHello, PeerHello: &PeerHello{Hub: "hub-b", Seq: 12, MinV: 1, MaxV: Version}},
		{V: Version, Type: TypeForwardReport, Forward: &ForwardReport{Hub: "hub-b", Device: "phone3", Sigs: []Signature{ws, ws}}},
		{V: Version, Type: TypeForwardConfirm, FwdConfirm: &ForwardConfirm{Device: "phone3", Confirm: Confirm{Key: "k", Confirmations: 2, Armed: true}}},
		{V: Version, Type: TypeArmBroadcast, Arm: &ArmBroadcast{Owner: "hub-a", Seq: 9, Confirmations: 3, Sig: ws}},
	}
	var buf bytes.Buffer
	for _, m := range peers {
		buf.Reset()
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A torn peer frame and a frame whose JSON mixes peer and device payloads.
	f.Add([]byte{0, 0, 0, 8, '{', '"', 'v', '"', ':', '2', '}'})
	f.Add([]byte(`{"v":2,"type":"arm-broadcast","arm":{},"hello":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch m.Type {
		case TypePeerHello, TypeForwardReport, TypeForwardConfirm, TypeArmBroadcast:
		default:
			return // device messages are FuzzWireDecode's turf
		}
		// Exactly one payload, and it is the peer one: Validate passed.
		if (m.PeerHello != nil) == (m.Type != TypePeerHello) ||
			(m.Forward != nil) == (m.Type != TypeForwardReport) ||
			(m.FwdConfirm != nil) == (m.Type != TypeForwardConfirm) ||
			(m.Arm != nil) == (m.Type != TypeArmBroadcast) {
			t.Fatalf("peer envelope with mismatched payload survived decode: %+v", m)
		}
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded peer frame does not re-encode: %+v: %v", m, err)
		}
		again, err := Decode(b)
		if err != nil || !reflect.DeepEqual(m, again) {
			t.Fatalf("peer decode/encode/decode not stable: %+v vs %+v (%v)", m, again, err)
		}
		// A broadcast signature must decode deterministically.
		if m.Type == TypeArmBroadcast {
			if sig, err := m.Arm.Sig.ToCore(); err == nil && FromCore(sig).Kind != m.Arm.Sig.Kind {
				t.Fatalf("broadcast signature core round trip changed kind: %+v", m.Arm.Sig)
			}
		}
	})
}
