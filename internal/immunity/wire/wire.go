// Package wire defines the versioned, transport-agnostic message set of
// the fleet signature exchange. Every conversation between a phone and a
// fleet hub — whatever carries it: the in-process loopback, the TCP
// transport, a future QUIC or broker backend — is a sequence of these
// messages, so the exchange's semantics (confirm-before-arm gating,
// resubscribe-from-epoch catch-up, provenance) are defined once, here,
// independent of how bytes move.
//
// # Message table
//
//	type        direction      payload                  purpose
//	----        ---------      -------                  -------
//	hello       client → hub   device, epoch            subscribe; resume deltas after `epoch`
//	ack         hub → client   ok, error, epoch         handshake result (version/device checks)
//	report      client → hub   sigs                     locally detected signatures (confirmations)
//	confirm     hub → client   key, confirmations,      receipt for one reported signature with
//	                           armed                    its current fleet provenance
//	delta       hub → client   epoch, sigs              armed signatures; epoch after applying them
//	status-req  client → hub   —                        ask for the hub status snapshot
//	status      hub → client   epoch, threshold,        hub observability: provenance, connected
//	                           devices, provenance,     devices, delta-batching counters
//	                           batching
//
// Deltas to one client are ordered and their epochs strictly increase; a
// client that reconnects sends the last epoch it applied in hello and
// receives only what it is missing. A hub may coalesce several pending
// deltas into one (batching) — the coalesced delta carries the newest
// epoch, never a stale one.
//
// # Peer messages (hub federation)
//
// A cluster of hubs (internal/immunity/cluster) federates through four
// additional messages, carried over the same transports and framing:
//
//	type            direction       payload                 purpose
//	----            ---------       -------                 -------
//	peer-hello      dialer → hub    hub, version range,     subscribe to the answering hub's
//	                                seq                     owned armings after `seq`
//	forward-report  dialer → hub    hub, device, sigs       relay a device's report to the
//	                                                        signature's owning hub, keeping
//	                                                        the original device attribution
//	forward-confirm hub → dialer    device, confirm         the owner's receipt, relayed back
//	                                                        to the reporting device
//	arm-broadcast   hub → dialer    owner, seq, sig,        an owned signature armed; every
//	                                confirmations           peer installs it and pushes it to
//	                                                        its attached devices
//
// Each hub numbers its own armings with a per-owner monotonic `seq`; a
// peer that reconnects names the last seq it applied from the answering
// hub in peer-hello, and receives only the armings it missed — the
// hub-to-hub twin of the device tier's resubscribe-from-epoch.
//
// # Membership messages (elastic clusters, v4)
//
// A v4 cluster is elastic: hubs join, leave, crash, and return, and the
// ownership ring follows the live membership. Three more peer messages
// carry that (all require a negotiated version >= MembershipVersion;
// a v2/v3-pinned peer link simply never sends them and behaves as a
// static ring):
//
//	type            direction       payload                 purpose
//	----            ---------       -------                 -------
//	member-update   both            epoch, members          full membership snapshot: adopt
//	                                [{id, addr, down}]      if newer epoch, merge equal
//	                                                        epochs deterministically
//	handoff         dialer → hub    from, owned records     migrate an owned provenance
//	                                                        slice (confirmation sets, arm
//	                                                        state, owner seq) to the key's
//	                                                        new owner after a ring change
//	replicate       dialer → hub    owner, owned records    owner → deputy replication of a
//	                                                        pending (unarmed) confirmation
//	                                                        set, so arming survives an
//	                                                        owner crash
//
// # Probe and lease messages (partition-tolerant ownership, v6)
//
// Four more peer messages make ownership partition-safe (all require a
// negotiated version >= ProbeVersion):
//
//	type            direction       payload                 purpose
//	----            ---------       -------                 -------
//	ping            both            from, target, seq       SWIM failure-detector probe:
//	                                                        direct (target == receiver) or
//	                                                        an indirect probe request the
//	                                                        receiver relays through its own
//	                                                        link to target
//	ping-ack        both            from, target, seq, ok   probe answer / relayed verdict
//	lease           both            from, epoch, seq        quorum-lease renewal: countersign
//	                                                        the sender's right to arm
//	ack             both            from, epoch, seq, ok    grant, or refusal carrying the
//	                                                        granter's newer membership epoch
//
// A hub may arm owned signatures only while a majority of its
// membership view (down members included in the denominator) has acked
// a lease renewal within the lease TTL — two partition sides can never
// both hold a quorum over the same member universe, so split-brain
// arming is structurally impossible, not merely fenced after heal.
//
// Fencing: every arm-broadcast carries the sender's membership epoch
// (`fence`). A receiver refuses a broadcast whose fence is older than
// its own membership epoch unless the sender still owns the signature
// under the receiver's ring — which is what makes a returning stale
// owner's replayed armings refusable (no double-arm, no owner-seq
// regression) while same-epoch traffic flows untouched. peer-hello
// additionally advertises the dialer's reachable address (`addr`) so an
// answering hub can admit an unknown dialer into the membership and
// third parties learn where to dial it.
//
// # Versioning and the version matrix
//
// Every message envelope carries the protocol version `v`. A v2+ hello
// additionally advertises the supported range [min_v, max_v]; the hub
// acks the highest version both sides speak (ack `v`), so new message
// sets — and new codecs — ship as negotiated extensions instead of
// hard breaks. A hello with no common version — including a bare
// pre-negotiation hello whose envelope version the hub does not speak —
// is rejected with ack{ok:false} and a human-readable error, then the
// session closes: an old client fails cleanly instead of hanging on
// messages it cannot parse. Peer messages require a negotiated version
// of at least PeerVersion.
//
//	v   codec    introduced
//	-   -----    ----------
//	1   JSON     hello/ack/report/confirm/delta/status, flat epoch resume
//	2   JSON     range negotiation, per-gen epoch map, hub gen in ack,
//	             peer message set (federation)
//	3   binary   hand-rolled varint codec (binary.go): same message set
//	             and semantics as v2, different bytes on the wire
//	4   binary   elastic membership: member-update/handoff/replicate
//	             peer messages, arm-broadcast fencing epoch, peer-hello
//	             advertised address
//	5   binary   authenticated multi-tenant fabric: hello bearer token
//	             (resolved to a (tenant, device) principal by the hub's
//	             auth verifier), tenant scoping on the peer messages and
//	             provenance records, per-tenant status view. A hub with
//	             auth disabled ignores the token, so v≤4 interop is
//	             unchanged wherever auth is off
//	6   binary   partition-tolerant ownership: ping/ping-ack failure
//	             probes and lease/lease-ack quorum renewals. Links
//	             negotiated lower never carry them — their peers are
//	             judged by session liveness and counted as lease
//	             granters, the pre-v6 trust model
//
// The negotiation rules, applied by both ends:
//
//  1. A hello (or peer-hello) advertising [min_v, max_v] negotiates
//     the highest version in the intersection with the receiver's own
//     range (Negotiate / NegotiateMax); no intersection refuses the
//     session. A bare hello with no range advertises exactly its
//     envelope version.
//  2. Everything before the ack settles the version — hellos, refusal
//     acks, bare status probes — is framed as JSON at or below
//     MaxJSONVersion, which every version ever shipped can parse.
//  3. After the ack, every frame on the session is framed at exactly
//     the negotiated version: a v1 session never sees a v2 envelope,
//     and only a session negotiated at >= BinaryVersion ever sees a
//     binary frame.
//
// # Canonical signature encoding
//
// Signatures travel as their canonical textual form: the kind name plus
// one (outer, inner) call-stack key pair per thread, using the same
// ';'-joined frame encoding as the persistent history file
// (core.CallStack.Key / core.ParseCallStack). Two devices that detect
// the same bug therefore produce byte-identical wire signatures, which
// is what lets the hub count independent confirmations by key.
//
// # Framing
//
// Stream transports carry messages as length-prefixed frames. The
// 4-byte big-endian prefix packs the payload codec and length:
//
//	 0               1               2               3
//	+-+-------------+---------------+---------------+--------------+
//	|B|          payload length (31 bits, <= MaxFrame)             |
//	+-+-------------+---------------+---------------+--------------+
//	|  payload: JSON envelope (B=0) or binary v3 envelope (B=1)    |
//	|  ...                                                         |
//	+--------------------------------------------------------------+
//
// The B bit selects the codec, so one Reader decodes mixed-version
// traffic and the pre-negotiation handshake needs no out-of-band codec
// agreement. MaxFrame (4 MiB) fits in 31 bits with room to spare, and a
// pre-v3 endpoint that is wrongly handed a binary frame reads an
// impossible length and rejects it instead of mis-parsing: frames above
// MaxFrame fail before any payload allocation, so a corrupt or hostile
// peer cannot balloon the hub's memory either.
//
// The fan-out hot path never encodes per receiver: a broadcast is
// wrapped in a Shared, which encodes the message at most once per
// negotiated version and hands every session at that version the same
// immutable []byte (see Shared).
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/dimmunix/dimmunix/internal/core"
)

// Version is the newest protocol version this package speaks; MinVersion
// is the oldest it still accepts. A hub negotiates the highest version
// inside the intersection of its [MinVersion, Version] and the client's
// advertised range (a bare v1 hello advertises exactly its envelope
// version).
const (
	Version    = 6
	MinVersion = 1
	// PeerVersion is the minimum negotiated version for the peer message
	// set (hub federation).
	PeerVersion = 2
	// ProbeVersion is the minimum negotiated version for the probe and
	// lease peer messages (ping, ping-ack, lease, lease-ack). A link
	// negotiated lower never carries them: its peer is probed by the
	// legacy session-liveness signal and counted as granting leases
	// (staged-rollout trust).
	ProbeVersion = 6
	// AuthVersion is the version that introduced the authenticated
	// multi-tenant fabric (hello token, tenant-scoped peer messages).
	// The hello token itself travels in the pre-negotiation JSON hello,
	// so auth does not require negotiating this high — the constant
	// documents the protocol generation.
	AuthVersion = 5
	// MembershipVersion is the minimum negotiated version for the
	// elastic-membership peer messages (member-update, handoff,
	// replicate); links negotiated lower behave as a static ring.
	MembershipVersion = 4
	// BinaryVersion is the first version framed with the binary codec;
	// sessions negotiated below it stay on JSON.
	BinaryVersion = 3
	// MaxJSONVersion is the newest JSON-framed version — the envelope
	// version for everything sent before negotiation settles a session's
	// version (hellos, refusal acks, bare status probes), since every
	// endpoint ever shipped can parse it.
	MaxJSONVersion = 2
)

// Negotiate returns the highest protocol version in the intersection of
// the hub's supported range and a client range [min, max], and whether
// one exists. It is the single negotiation rule both ends apply.
func Negotiate(min, max int) (int, bool) {
	return NegotiateMax(min, max, Version)
}

// NegotiateMax is Negotiate with the receiver's ceiling lowered to
// `ceiling` — how an operator pins a hub to an older version during a
// staged rollout (a ceiling outside [MinVersion, Version] means no pin).
func NegotiateMax(min, max, ceiling int) (int, bool) {
	if ceiling < MinVersion || ceiling > Version {
		ceiling = Version
	}
	v := max
	if v > ceiling {
		v = ceiling
	}
	if v < MinVersion || v < min {
		return 0, false
	}
	return v, true
}

// MaxFrame bounds one frame's payload size (4 MiB). A delta carrying
// thousands of signatures stays far below this; anything larger is a
// corrupt length prefix or an attack.
const MaxFrame = 4 << 20

// Type names a wire message.
type Type string

// The message set.
const (
	TypeHello     Type = "hello"
	TypeAck       Type = "ack"
	TypeReport    Type = "report"
	TypeConfirm   Type = "confirm"
	TypeDelta     Type = "delta"
	TypeStatusReq Type = "status-req"
	TypeStatus    Type = "status"

	// The peer (hub-to-hub) message set; requires PeerVersion.
	TypePeerHello      Type = "peer-hello"
	TypeForwardReport  Type = "forward-report"
	TypeForwardConfirm Type = "forward-confirm"
	TypeArmBroadcast   Type = "arm-broadcast"

	// The elastic-membership message set; requires MembershipVersion.
	TypeMemberUpdate Type = "member-update"
	TypeHandoff      Type = "handoff"
	TypeReplicate    Type = "replicate"

	// The probe/lease message set (partition-tolerant ownership);
	// requires ProbeVersion.
	TypePing     Type = "ping"
	TypePingAck  Type = "ping-ack"
	TypeLease    Type = "lease"
	TypeLeaseAck Type = "lease-ack"
)

// Message is the envelope: the version, the type, and exactly the one
// payload field matching the type (status-req has no payload).
type Message struct {
	V    int  `json:"v"`
	Type Type `json:"type"`

	Hello   *Hello   `json:"hello,omitempty"`
	Ack     *Ack     `json:"ack,omitempty"`
	Report  *Report  `json:"report,omitempty"`
	Confirm *Confirm `json:"confirm,omitempty"`
	Delta   *Delta   `json:"delta,omitempty"`
	Status  *Status  `json:"status,omitempty"`

	PeerHello  *PeerHello      `json:"peer_hello,omitempty"`
	Forward    *ForwardReport  `json:"forward,omitempty"`
	FwdConfirm *ForwardConfirm `json:"fwd_confirm,omitempty"`
	Arm        *ArmBroadcast   `json:"arm,omitempty"`

	Member    *MemberUpdate `json:"member,omitempty"`
	Handoff   *Handoff      `json:"handoff,omitempty"`
	Replicate *Replicate    `json:"replicate,omitempty"`

	Ping     *Ping     `json:"ping,omitempty"`
	PingAck  *PingAck  `json:"ping_ack,omitempty"`
	Lease    *Lease    `json:"lease,omitempty"`
	LeaseAck *LeaseAck `json:"lease_ack,omitempty"`
}

// Hello subscribes a device. Epoch is the fleet delta epoch the device
// has already applied: 0 on first contact, the last delta's epoch on a
// reconnect, so the hub replays only the missing armed signatures.
//
// A v2 client also sends MinV/MaxV (its supported version range, see
// Negotiate) and Epochs, its merged multi-hub view: the last applied
// epoch per hub incarnation (gen). Epochs are only comparable within
// one incarnation, so a hub that finds its own gen in the map resumes
// the device from exactly the right point even when the device last
// spoke to a different hub of the cluster; a missing gen means replay
// from zero. Hubs prefer Epochs over the flat Epoch when present.
type Hello struct {
	Device string `json:"device"`
	Epoch  uint64 `json:"epoch"`

	MinV   int               `json:"min_v,omitempty"`
	MaxV   int               `json:"max_v,omitempty"`
	Epochs map[string]uint64 `json:"epochs,omitempty"`

	// Token (v5) is the device's bearer credential. A hub with an auth
	// verifier resolves it to a (tenant, device) principal and refuses
	// the hello when it is missing, invalid, or its device claim does
	// not match Device; a hub with auth disabled ignores it.
	Token string `json:"token,omitempty"`
}

// Ack answers a hello or a peer-hello. On success Epoch is the hub's
// current fleet epoch (for a peer-hello: its owned-arming seq), V is
// the negotiated protocol version (0 from a pre-negotiation hub means
// v1), and Gen identifies the hub incarnation — epochs and seqs are
// only comparable within one Gen, so a subscriber that sees a new Gen
// discards its stored resume point and resubscribes from zero (a
// restarted hub's counters may have regrown past the subscriber's,
// silently shrinking its catch-up). On failure Error says why the
// session was refused (version mismatch, empty device id) and the hub
// closes the session.
type Ack struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Epoch uint64 `json:"epoch"`
	Gen   string `json:"gen,omitempty"`
	V     int    `json:"nv,omitempty"`
}

// Report carries locally detected signatures upward. Each one counts as
// the device's independent confirmation unless the hub knows it pushed
// that signature to the device itself.
type Report struct {
	Sigs []Signature `json:"sigs"`
}

// Confirm is the hub's receipt for one reported signature.
type Confirm struct {
	Key           string `json:"key"`
	Confirmations int    `json:"confirmations"`
	Armed         bool   `json:"armed"`
}

// Delta pushes armed signatures downward. Epoch is the fleet epoch after
// applying Sigs; a client stores it and resumes from it on reconnect.
type Delta struct {
	Epoch uint64      `json:"epoch"`
	Sigs  []Signature `json:"sigs"`
}

// PeerHello subscribes one hub to another's owned armings. Hub is the
// dialing hub's cluster id; Seq is the answering hub's arming seq the
// dialer has already applied (0 on first contact — or after the
// answerer's Gen changed — so only missed armings replay). MinV/MaxV is
// the dialer's version range; the negotiated version must reach
// PeerVersion or the hub refuses.
type PeerHello struct {
	Hub  string `json:"hub"`
	Seq  uint64 `json:"seq"`
	MinV int    `json:"min_v,omitempty"`
	MaxV int    `json:"max_v,omitempty"`

	// Addr (v4) is the dialing hub's advertised wire address. An
	// answering hub that does not know the dialer admits it into the
	// membership under this address; empty means the dialer is not
	// joinable (static config or no reachable address).
	Addr string `json:"addr,omitempty"`
}

// ForwardReport relays a device's report from the hub it is attached to
// toward the signature's owning hub, preserving the original device
// attribution — the owner deduplicates confirmations by (device,
// signature), so a report that travels through any number of forwarding
// paths still counts at most once.
type ForwardReport struct {
	Hub    string      `json:"hub"`
	Device string      `json:"device"`
	Sigs   []Signature `json:"sigs"`

	// Hops (v4) counts forwarding legs. Ownership can move while a
	// forward sits in a retry outbox; a receiver that no longer owns a
	// forwarded signature re-forwards it to the current owner as long as
	// Hops stays below a small bound, then counts it locally — churn
	// degrades to one extra hop, never a forwarding loop.
	Hops int `json:"hops,omitempty"`

	// Tenant (v5) scopes the forwarded confirmations: the owner books
	// them under the tenant's entry, never another tenant's.
	Tenant string `json:"tenant,omitempty"`
}

// ForwardConfirm is the owner's receipt for one forwarded signature,
// addressed to the device that reported it; the forwarding hub relays
// it to the device's session as a plain confirm.
type ForwardConfirm struct {
	Device  string  `json:"device"`
	Confirm Confirm `json:"confirm"`

	// Tenant (v5) addresses the receipt: device ids are only unique
	// within a tenant, so the relaying hub looks the session up under
	// (tenant, device).
	Tenant string `json:"tenant,omitempty"`
}

// ArmBroadcast announces that the owning hub armed one of its owned
// signatures. Seq is the owner's monotonic arming sequence (the peer
// resume point); Confirmations is the count at arming, replicated so
// non-owner hubs can answer echo reports without a round trip.
type ArmBroadcast struct {
	Owner         string    `json:"owner"`
	Seq           uint64    `json:"seq"`
	Confirmations int       `json:"confirmations"`
	Sig           Signature `json:"sig"`

	// Fence (v4) is the sender's membership epoch at broadcast time. A
	// receiver whose membership epoch is newer refuses the broadcast
	// unless the sender still owns the signature under the receiver's
	// ring — the rule that fences a returning stale owner's replays.
	Fence uint64 `json:"fence,omitempty"`

	// Tenant (v5) scopes the arming: receivers install it under the
	// tenant's canonical key and push it only to that tenant's devices.
	Tenant string `json:"tenant,omitempty"`
}

// MemberInfo is one hub's entry in the membership: its cluster id, its
// advertised wire address (empty if not dialable), and whether the
// failure detector has marked it down. Down members stay listed — the
// ownership ring is computed over live members only, and a completed
// handshake with a down member revives it.
type MemberInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
	Down bool   `json:"down,omitempty"`
}

// MemberUpdate is a full membership snapshot at a membership epoch.
// Receivers adopt a strictly newer epoch wholesale; two snapshots at
// the same epoch that differ are merged deterministically (union of
// members, down wins, longest address wins) and the merge bumps the
// epoch — a join-semilattice, so concurrent membership changes converge
// without consensus. Ownership mistakes during convergence are safe by
// construction: confirmations are per-device unions, arming is
// idempotent, and stale owners are fenced.
type MemberUpdate struct {
	Epoch   uint64       `json:"epoch"`
	Members []MemberInfo `json:"members"`
}

// OwnedRecord is one signature's owned provenance slice as it travels
// in a handoff or a replicate: the pending confirmation set, the arm
// state, and the owner seq it was armed at (0 if unarmed).
type OwnedRecord struct {
	Sig         Signature `json:"sig"`
	FirstSeen   string    `json:"first_seen,omitempty"`
	ConfirmedBy []string  `json:"confirmed_by,omitempty"`
	Armed       bool      `json:"armed,omitempty"`
	OwnerSeq    uint64    `json:"owner_seq,omitempty"`

	// Tenant (v5) keeps a migrated or replicated record in its tenant's
	// namespace — the receiver re-derives the canonical key from
	// (Tenant, Sig), so handoff and failover never leak state across
	// tenants.
	Tenant string `json:"tenant,omitempty"`
}

// Handoff migrates owned provenance records from a hub that stopped
// owning them (membership changed under it) to their new owner. The
// receiver merges by union, so at-least-once delivery and out-of-order
// arrival are harmless; a record already past threshold arms at the
// receiver on import.
type Handoff struct {
	From    string        `json:"from"`
	Records []OwnedRecord `json:"records"`
}

// Replicate is the owner → deputy copy of a pending (unarmed) owned
// confirmation set, sent on every fresh confirmation so the deputy can
// resume counting — and arm at threshold — if the owner dies.
type Replicate struct {
	Owner   string        `json:"owner"`
	Records []OwnedRecord `json:"records"`
}

// Ping (v6) is one failure-detector probe. From is the probing hub.
// When Target equals the receiver's id the ping is direct and the
// receiver answers with a ping-ack over its own link to From. When
// Target names a third hub the ping is an indirect probe request
// (SWIM's ping-req): the receiver probes Target over its own link and
// relays the verdict back to From — which is what keeps one stalled
// TCP link from reading as a dead hub. Seq matches acks to probes; it
// is meaningful only to the hub that issued it.
type Ping struct {
	From   string `json:"from"`
	Target string `json:"target"`
	Seq    uint64 `json:"seq"`
}

// PingAck (v6) answers a ping. From is the answering hub, Target the
// hub whose liveness is being vouched for (== From for a direct ack;
// the probed third hub for a relayed indirect verdict), and Seq echoes
// the probe's Seq. OK is false only on a relayed verdict whose proxy
// probe timed out.
type PingAck struct {
	From   string `json:"from"`
	Target string `json:"target"`
	Seq    uint64 `json:"seq"`
	OK     bool   `json:"ok"`
}

// Lease (v6) asks a peer to countersign the sender's quorum lease: the
// sender may arm owned signatures and accept handoffs only while a
// majority of the membership view has acked a lease renewal within the
// lease TTL. Epoch is the sender's membership epoch — a granter with a
// newer view refuses, which keeps a healed-but-stale hub parked until
// it has merged the partition-era membership changes. Seq matches acks
// to renewals.
type Lease struct {
	From  string `json:"from"`
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// LeaseAck (v6) answers a lease renewal. OK grants; a refusal carries
// the granter's own Epoch so the requester knows it is behind on
// membership rather than partitioned.
type LeaseAck struct {
	From  string `json:"from"`
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	OK    bool   `json:"ok"`
}

// Status is the hub's observability snapshot.
type Status struct {
	Epoch      uint64      `json:"epoch"`
	Threshold  int         `json:"threshold"`
	Devices    []string    `json:"devices"`
	Provenance []SigStatus `json:"provenance"`
	Batching   Batching    `json:"batching"`

	// Hub and Cluster are set when the hub is part of a federated
	// cluster: Hub is its cluster id and Cluster the federation view.
	Hub     string         `json:"hub,omitempty"`
	Cluster *ClusterStatus `json:"cluster,omitempty"`

	// Tenants (v5) is the per-tenant view: one summary per non-default
	// tenant with provenance on this hub. A single-tenant fleet (every
	// session under the default "" tenant) has none, keeping the
	// pre-v5 status JSON byte-identical.
	Tenants []TenantStatus `json:"tenants,omitempty"`
}

// TenantStatus is one tenant's slice of the hub status.
type TenantStatus struct {
	Tenant    string `json:"tenant"`
	Sigs      int    `json:"sigs"`
	Armed     int    `json:"armed"`
	Threshold int    `json:"threshold"`
	Devices   int    `json:"devices"`
}

// ClusterStatus is the federation slice of a hub's status.
type ClusterStatus struct {
	// Members is the full ownership-ring membership (self included).
	Members []string `json:"members"`
	// Peers lists the hubs with a live inbound peer session.
	Peers []string `json:"peers"`
	// OwnerSeq is this hub's arming sequence for the signatures it owns.
	OwnerSeq uint64 `json:"owner_seq"`
	// Owned and Remote count provenance entries this hub owns vs. armed
	// entries replicated from peer owners.
	Owned  int `json:"owned"`
	Remote int `json:"remote"`
	// Forwards counts device-reported signatures relayed to their owner.
	Forwards uint64 `json:"forwards"`

	// MembershipEpoch (v4) is the hub's membership epoch and Ring the
	// full membership with liveness — the /status view an operator reads
	// to answer "who is in the cluster and who is alive".
	MembershipEpoch uint64       `json:"membership_epoch,omitempty"`
	Ring            []MemberInfo `json:"ring,omitempty"`
	// Fenced counts stale arm-broadcasts refused by the fencing rule.
	Fenced uint64 `json:"fenced,omitempty"`
}

// SigStatus is one signature's fleet provenance as reported by status.
// Owner is the cluster id of the owning hub ("" outside a cluster).
type SigStatus struct {
	Key           string   `json:"key"`
	Kind          string   `json:"kind"`
	FirstSeen     string   `json:"first_seen"`
	Confirmations int      `json:"confirmations"`
	ConfirmedBy   []string `json:"confirmed_by"`
	Armed         bool     `json:"armed"`
	Owner         string   `json:"owner,omitempty"`

	// Tenant (v5) is the fleet the signature belongs to ("" = default).
	Tenant string `json:"tenant,omitempty"`
}

// Batching reports the hub's delta coalescing: Batches delta messages
// sent carrying Signatures signatures total (Signatures/Batches > 1
// means publish storms were coalesced).
type Batching struct {
	Batches    uint64 `json:"batches"`
	Signatures uint64 `json:"signatures"`
}

// Signature is the canonical wire form of one deadlock antibody.
type Signature struct {
	Kind  string    `json:"kind"`
	Pairs []SigPair `json:"pairs"`
}

// SigPair is one thread's (outer, inner) call-stack pair, each stack in
// its canonical key form.
type SigPair struct {
	Outer string `json:"outer"`
	Inner string `json:"inner"`
}

// FromCore encodes a core signature canonically.
func FromCore(s *core.Signature) Signature {
	out := Signature{Kind: s.Kind.String(), Pairs: make([]SigPair, len(s.Pairs))}
	for i, p := range s.Pairs {
		out.Pairs[i] = SigPair{Outer: p.Outer.Key(), Inner: p.Inner.Key()}
	}
	return out
}

// FromCoreAll encodes a slice of core signatures.
func FromCoreAll(sigs []*core.Signature) []Signature {
	out := make([]Signature, len(sigs))
	for i, s := range sigs {
		out[i] = FromCore(s)
	}
	return out
}

// ParseKind maps a wire kind name back to the core kind. It is the
// single inverse of core.SigKind.String() on the wire — status readers
// and the signature decoder must agree on it.
func ParseKind(s string) (core.SigKind, error) {
	switch s {
	case core.DeadlockSig.String():
		return core.DeadlockSig, nil
	case core.StarvationSig.String():
		return core.StarvationSig, nil
	default:
		return 0, fmt.Errorf("unknown signature kind %q", s)
	}
}

// ToCore decodes and validates the signature.
func (s Signature) ToCore() (*core.Signature, error) {
	kind, err := ParseKind(s.Kind)
	if err != nil {
		return nil, fmt.Errorf("wire signature: %w", err)
	}
	sig := &core.Signature{Kind: kind, Pairs: make([]core.SigPair, len(s.Pairs))}
	for i, p := range s.Pairs {
		outer, err := core.ParseCallStack(p.Outer)
		if err != nil {
			return nil, fmt.Errorf("wire signature pair %d outer: %w", i, err)
		}
		inner, err := core.ParseCallStack(p.Inner)
		if err != nil {
			return nil, fmt.Errorf("wire signature pair %d inner: %w", i, err)
		}
		sig.Pairs[i] = core.SigPair{Outer: outer, Inner: inner}
	}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("wire signature: %w", err)
	}
	return sig, nil
}

// ToCoreAll decodes a slice of wire signatures.
func ToCoreAll(sigs []Signature) ([]*core.Signature, error) {
	out := make([]*core.Signature, len(sigs))
	for i, s := range sigs {
		sig, err := s.ToCore()
		if err != nil {
			return nil, fmt.Errorf("signature %d: %w", i, err)
		}
		out[i] = sig
	}
	return out, nil
}

// Validate checks the envelope's structural invariants: a known type and
// exactly the payload that type requires. It does not check the version
// — that is a session-level decision made at hello.
func (m Message) Validate() error {
	payloads := 0
	for _, p := range []bool{m.Hello != nil, m.Ack != nil, m.Report != nil,
		m.Confirm != nil, m.Delta != nil, m.Status != nil,
		m.PeerHello != nil, m.Forward != nil, m.FwdConfirm != nil, m.Arm != nil,
		m.Member != nil, m.Handoff != nil, m.Replicate != nil,
		m.Ping != nil, m.PingAck != nil, m.Lease != nil, m.LeaseAck != nil} {
		if p {
			payloads++
		}
	}
	want := func(p bool) error {
		if !p {
			return fmt.Errorf("wire message %s: missing payload", m.Type)
		}
		if payloads != 1 {
			return fmt.Errorf("wire message %s: %d payloads, want 1", m.Type, payloads)
		}
		return nil
	}
	switch m.Type {
	case TypeHello:
		return want(m.Hello != nil)
	case TypeAck:
		return want(m.Ack != nil)
	case TypeReport:
		return want(m.Report != nil)
	case TypeConfirm:
		return want(m.Confirm != nil)
	case TypeDelta:
		return want(m.Delta != nil)
	case TypeStatus:
		return want(m.Status != nil)
	case TypePeerHello:
		return want(m.PeerHello != nil)
	case TypeForwardReport:
		return want(m.Forward != nil)
	case TypeForwardConfirm:
		return want(m.FwdConfirm != nil)
	case TypeArmBroadcast:
		return want(m.Arm != nil)
	case TypeMemberUpdate:
		return want(m.Member != nil)
	case TypeHandoff:
		return want(m.Handoff != nil)
	case TypeReplicate:
		return want(m.Replicate != nil)
	case TypePing:
		return want(m.Ping != nil)
	case TypePingAck:
		return want(m.PingAck != nil)
	case TypeLease:
		return want(m.Lease != nil)
	case TypeLeaseAck:
		return want(m.LeaseAck != nil)
	case TypeStatusReq:
		if payloads != 0 {
			return fmt.Errorf("wire message %s: unexpected payload", m.Type)
		}
		return nil
	default:
		return fmt.Errorf("wire message: unknown type %q", m.Type)
	}
}

// Encode marshals the message to its JSON frame payload.
func Encode(m Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire encode: %w", err)
	}
	if len(b) > MaxFrame {
		return nil, fmt.Errorf("wire encode: frame %d bytes exceeds max %d", len(b), MaxFrame)
	}
	return b, nil
}

// decodeNorm canonicalizes a freshly decoded message. Hello.Epochs and
// Status.Tenants are marshaled with omitempty, so the JSON codec cannot
// re-encode an empty-but-present collection; both decoders collapse
// them to nil, keeping decode→encode→decode a fixed point under either
// codec (the property the decode and differential fuzz targets assert).
func decodeNorm(m Message) Message {
	if m.Hello != nil && m.Hello.Epochs != nil && len(m.Hello.Epochs) == 0 {
		m.Hello.Epochs = nil
	}
	if m.Status != nil && m.Status.Tenants != nil && len(m.Status.Tenants) == 0 {
		m.Status.Tenants = nil
	}
	return m
}

// Decode unmarshals and structurally validates one frame payload.
func Decode(b []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		return Message{}, fmt.Errorf("wire decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return decodeNorm(m), nil
}

// binaryFlag marks a frame header whose payload uses the binary codec.
// MaxFrame needs 23 bits, so the top bit of the length prefix is free.
const binaryFlag = 1 << 31

// AppendFrame appends one framed message to dst and returns the
// extended slice. The codec follows the envelope version: m.V >=
// BinaryVersion frames binary (flag bit set), anything lower frames
// JSON — which is exactly the session-version stamping rule, so callers
// only ever pick a version, never a codec.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	var err error
	hdr := uint32(0)
	if m.V >= BinaryVersion {
		hdr = binaryFlag
		dst, err = appendBinary(dst, m)
	} else {
		var b []byte
		b, err = Encode(m)
		dst = append(dst, b...)
	}
	if err != nil {
		return dst[:start], err
	}
	n := len(dst) - start - 4
	if n > MaxFrame {
		return dst[:start], fmt.Errorf("wire frame: %d bytes exceeds max %d", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(dst[start:start+4], hdr|uint32(n))
	return dst, nil
}

// framePool recycles WriteFrame's encode buffers; buffers that grew
// past maxPooled are dropped rather than pinned in the pool.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const maxPooled = 64 << 10

// WriteFrame writes one framed message to w as a single Write (one
// packet on an unbuffered socket), choosing the codec from m.V as
// AppendFrame does.
func WriteFrame(w io.Writer, m Message) error {
	bp := framePool.Get().(*[]byte)
	b, err := AppendFrame((*bp)[:0], m)
	if err == nil {
		if _, werr := w.Write(b); werr != nil {
			err = fmt.Errorf("wire write: %w", werr)
		}
	}
	if cap(b) <= maxPooled {
		*bp = b[:0]
	}
	framePool.Put(bp)
	return err
}

// decodeFrame dispatches a frame payload to the codec named by the
// header flag.
func decodeFrame(payload []byte, binaryCodec bool) (Message, error) {
	if binaryCodec {
		return DecodeBinary(payload)
	}
	return Decode(payload)
}

// parseHeader unpacks and validates a frame header: the payload length
// and the codec flag. It is the single reading of the header layout —
// the buffered and unbuffered read paths must never disagree about
// frame validity.
func parseHeader(hdr [4]byte) (n uint32, isBin bool, err error) {
	n = binary.BigEndian.Uint32(hdr[:])
	isBin = n&binaryFlag != 0
	n &^= binaryFlag
	if n == 0 {
		return 0, false, fmt.Errorf("wire read: zero-length frame")
	}
	if n > MaxFrame {
		return 0, false, fmt.Errorf("wire read: frame %d bytes exceeds max %d", n, MaxFrame)
	}
	return n, isBin, nil
}

// ReadFrame reads one framed message from r without reading ahead —
// callers that own the stream should use Reader, which buffers and
// reuses its payload scratch. Oversized or zero-length frames fail
// before any payload allocation.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err // io.EOF passes through for clean close detection
	}
	n, isBin, err := parseHeader(hdr)
	if err != nil {
		return Message{}, err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return Message{}, fmt.Errorf("wire read: %w", err)
	}
	return decodeFrame(b, isBin)
}

// maxScratch caps the payload buffer a Reader keeps between frames: the
// common frame reuses it allocation-free, a rare jumbo frame gets a
// transient buffer that is not retained.
const maxScratch = 64 << 10

// Reader reads frames from one stream. It owns a buffered reader — the
// header and body of a small frame cost one read from the kernel, not
// two — and a reused, size-capped scratch buffer, so steady-state frame
// reads allocate only what the decoded message itself needs. Decoded
// messages never alias the scratch (both codecs copy what they keep),
// which is what makes the reuse safe.
type Reader struct {
	br      *bufio.Reader
	scratch []byte
}

// NewReader wraps r; an existing *bufio.Reader is used as-is.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 32<<10)
	}
	return &Reader{br: br}
}

// ReadFrame reads and decodes the next frame.
func (r *Reader) ReadFrame() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return Message{}, err // io.EOF passes through for clean close detection
	}
	n, isBin, err := parseHeader(hdr)
	if err != nil {
		return Message{}, err
	}
	buf := r.scratch
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
		if n <= maxScratch {
			r.scratch = buf
		}
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Message{}, fmt.Errorf("wire read: %w", err)
	}
	return decodeFrame(buf, isBin)
}

// Shared is an encode-once broadcast frame: one immutable message,
// encoded at most once per negotiated session version, with every
// session at that version handed the same []byte. It is what turns a
// hub fan-out from O(subscribers) marshals into O(distinct versions):
// the exchange wraps each delta and arm-broadcast in a Shared and
// enqueues the handle, and each session's drain resolves it against its
// own negotiated version at write time.
//
// The wrapped message and every returned frame are immutable: callers
// must never modify the bytes (they are concurrently written to other
// sessions) and must not mutate the message after wrapping it.
type Shared struct {
	msg Message

	mu    sync.Mutex
	byVer map[int][]byte
}

// NewShared wraps m (payload pointers included) as an immutable
// broadcast. m.V is ignored — the version is chosen per session when a
// frame is requested.
func NewShared(m Message) *Shared { return &Shared{msg: m} }

// Msg returns the wrapped message with its version unstamped. The
// payload is shared: read-only.
func (s *Shared) Msg() Message { return s.msg }

// Message returns the wrapped message stamped at version v — the
// decoded-delivery twin of Frame for in-process transports.
func (s *Shared) Message(v int) Message {
	m := s.msg
	m.V = v
	return m
}

// Frame returns the full encoded frame (header included) for sessions
// negotiated at version v, encoding at most once per version however
// many sessions share it. The returned bytes are immutable.
func (s *Shared) Frame(v int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.byVer[v]; ok {
		return b, nil
	}
	b, err := AppendFrame(nil, s.Message(v))
	if err != nil {
		return nil, err
	}
	if s.byVer == nil {
		s.byVer = make(map[int][]byte, 2)
	}
	s.byVer[v] = b
	return b, nil
}
