package immunity

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
)

// testSig builds a deterministic two-party deadlock signature whose key is
// identical wherever it is built (so it deduplicates across devices).
func testSig(id int) *core.Signature {
	a := core.Frame{Class: "com.app.Svc1", Method: "methodA", Line: 10 + id*100}
	b := core.Frame{Class: "com.app.Svc2", Method: "methodB", Line: 20 + id*100}
	return &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{a}, Inner: core.CallStack{a}},
			{Outer: core.CallStack{b}, Inner: core.CallStack{b}},
		},
	}
}

// starveSig builds a starvation-kind signature.
func starveSig(id int) *core.Signature {
	f := core.Frame{Class: "com.app.Starve", Method: "m", Line: id}
	return &core.Signature{
		Kind:  core.StarvationSig,
		Pairs: []core.SigPair{{Outer: core.CallStack{f}, Inner: core.CallStack{f}}},
	}
}

// attach wires a core to a service the way the Zygote does: the core's
// store is the service, and a subscription hot-installs deltas.
func attach(t *testing.T, svc *Service, name string) (*core.Core, func()) {
	t.Helper()
	from := svc.Epoch()
	c, err := core.New(core.WithStore(svc))
	if err != nil {
		t.Fatal(err)
	}
	cancel := svc.Subscribe(name, from, func(_ uint64, sigs []*core.Signature) {
		for _, sig := range sigs {
			_, _, _ = c.InstallSignature(sig)
		}
	})
	t.Cleanup(func() { cancel(); c.Close() })
	return c, cancel
}

// waitFor polls until cond or the deadline. The deadline is generous:
// the stress tests run ~30 busy goroutines through the wire codec on
// (in CI) one race-instrumented CPU, where convergence can take many
// seconds — the deadline only bounds how long a genuine failure takes
// to report.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// detectDeadlock drives a real two-thread cycle through c's detection so
// the recorded signature is published to c's store (the service). The
// outer positions use the same frames as testSig(0).
func detectDeadlock(t *testing.T, c *core.Core) {
	t.Helper()
	t1 := c.NewThreadNode("t1", nil)
	t2 := c.NewThreadNode("t2", nil)
	lA := c.NewLockNode("A")
	lB := c.NewLockNode("B")
	posA, err := c.Intern(core.CallStack{{Class: "com.app.Svc1", Method: "methodA", Line: 10}})
	if err != nil {
		t.Fatal(err)
	}
	posB, err := c.Intern(core.CallStack{{Class: "com.app.Svc2", Method: "methodB", Line: 20}})
	if err != nil {
		t.Fatal(err)
	}
	// t1 holds A (acquired at posA), t2 holds B (acquired at posB).
	if err := c.Request(t1, lA, posA); err != nil {
		t.Fatal(err)
	}
	c.Acquired(t1, lA)
	if err := c.Request(t2, lB, posB); err != nil {
		t.Fatal(err)
	}
	c.Acquired(t2, lB)
	// t2 requests A (blocks behind t1), then t1 requests B: cycle.
	if err := c.Request(t2, lA, posA); err != nil {
		t.Fatal(err)
	}
	if err := c.Request(t1, lB, posB); err != nil {
		t.Fatal(err)
	}
	if c.Stats().DeadlocksDetected != 1 {
		t.Fatalf("deadlock not detected: %+v", c.Stats())
	}
}

// TestLivePropagation is the core propagation table: a signature that
// becomes known in process A — by real detection or by direct publication
// — is armed in already-running processes B and C without any restart.
func TestLivePropagation(t *testing.T) {
	cases := []struct {
		name    string
		inject  func(t *testing.T, svc *Service, a *core.Core)
		wantKey string
	}{
		{
			name:    "real deadlock detected in A",
			inject:  func(t *testing.T, _ *Service, a *core.Core) { detectDeadlock(t, a) },
			wantKey: testSig(0).Key(),
		},
		{
			name: "signature added via A's AddSignature",
			inject: func(t *testing.T, _ *Service, a *core.Core) {
				if _, fresh, err := a.AddSignature(testSig(1)); err != nil || !fresh {
					t.Fatalf("add: fresh=%v err=%v", fresh, err)
				}
			},
			wantKey: testSig(1).Key(),
		},
		{
			name: "published directly to the service",
			inject: func(t *testing.T, svc *Service, _ *core.Core) {
				if _, fresh, err := svc.Publish("vendor", testSig(2)); err != nil || !fresh {
					t.Fatalf("publish: fresh=%v err=%v", fresh, err)
				}
			},
			wantKey: testSig(2).Key(),
		},
		{
			name: "starvation signature propagates too",
			inject: func(t *testing.T, _ *Service, a *core.Core) {
				if _, _, err := a.AddSignature(starveSig(3)); err != nil {
					t.Fatal(err)
				}
			},
			wantKey: starveSig(3).Key(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc, err := NewService("phone0", core.NewMemHistory())
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			a, _ := attach(t, svc, "procA")
			b, _ := attach(t, svc, "procB")
			cCore, _ := attach(t, svc, "procC")

			tc.inject(t, svc, a)

			for _, target := range []*core.Core{b, cCore} {
				tgt := target
				waitFor(t, "signature armed in live process", func() bool {
					for _, info := range tgt.History() {
						sig := &core.Signature{Kind: info.Kind, Pairs: info.Pairs}
						if sig.Key() == tc.wantKey {
							return true
						}
					}
					return false
				})
				if got := tgt.Stats().SignaturesInstalled; got != 1 {
					t.Errorf("hot-installs = %d, want 1", got)
				}
			}
		})
	}
}

// TestPropagationArmsAvoidance: the hot-installed signature actually arms
// avoidance in the receiving process — a thread whose acquisition would
// instantiate it yields, with no restart of process B.
func TestPropagationArmsAvoidance(t *testing.T) {
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	a, _ := attach(t, svc, "procA")
	b, _ := attach(t, svc, "procB")

	detectDeadlock(t, a)
	waitFor(t, "B armed", func() bool { return b.HistorySize() == 1 })

	// In B, reproduce the first half of the pattern: t1 holds A at the
	// signature's first position; t2 then requesting at the second
	// position would make the signature instantiable → t2 must yield.
	t1 := b.NewThreadNode("t1", nil)
	t2 := b.NewThreadNode("t2", nil)
	lA := b.NewLockNode("A")
	lB := b.NewLockNode("B")
	posA, err := b.Intern(core.CallStack{{Class: "com.app.Svc1", Method: "methodA", Line: 10}})
	if err != nil {
		t.Fatal(err)
	}
	posB, err := b.Intern(core.CallStack{{Class: "com.app.Svc2", Method: "methodB", Line: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Request(t1, lA, posA); err != nil {
		t.Fatal(err)
	}
	b.Acquired(t1, lA)
	done := make(chan error, 1)
	go func() { done <- b.Request(t2, lB, posB) }()
	waitFor(t, "avoidance yield in B", func() bool { return b.Stats().Yields == 1 })
	b.Release(t1, lA)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServiceEpochAndCatchup: epochs are dense acceptance counters, and a
// subscriber naming an old epoch receives exactly the signatures after it.
func TestServiceEpochAndCatchup(t *testing.T) {
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for i := 0; i < 3; i++ {
		epoch, fresh, err := svc.Publish("local", testSig(i))
		if err != nil || !fresh {
			t.Fatalf("publish %d: fresh=%v err=%v", i, fresh, err)
		}
		if epoch != uint64(i+1) {
			t.Fatalf("epoch after publish %d = %d, want %d", i, epoch, i+1)
		}
	}

	got := make(chan delta, 4)
	cancel := svc.Subscribe("late", 1, func(epoch uint64, sigs []*core.Signature) {
		got <- delta{epoch: epoch, sigs: sigs}
	})
	defer cancel()
	select {
	case d := <-got:
		if d.epoch != 3 || len(d.sigs) != 2 {
			t.Fatalf("catch-up delta epoch=%d sigs=%d, want epoch=3 sigs=2", d.epoch, len(d.sigs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no catch-up delta")
	}

	// A live publish follows catch-up, in order.
	if _, _, err := svc.Publish("local", testSig(9)); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.epoch != 4 || len(d.sigs) != 1 {
			t.Fatalf("live delta epoch=%d sigs=%d, want epoch=4 sigs=1", d.epoch, len(d.sigs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no live delta")
	}
}

// TestServiceDedupAndProvenance: duplicate publications are rejected and
// the first source wins provenance.
func TestServiceDedupAndProvenance(t *testing.T) {
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, fresh, err := svc.Publish("procA", testSig(0)); err != nil || !fresh {
		t.Fatalf("first publish: fresh=%v err=%v", fresh, err)
	}
	epoch, fresh, err := svc.Publish("procB", testSig(0))
	if err != nil {
		t.Fatal(err)
	}
	if fresh || epoch != 1 {
		t.Errorf("duplicate publish: fresh=%v epoch=%d, want false/1", fresh, epoch)
	}
	if src := svc.SourceOf(testSig(0).Key()); src != "procA" {
		t.Errorf("source = %q, want procA", src)
	}
	st := svc.Stats()
	if st.Published != 1 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 published / 1 duplicate", st)
	}
}

// TestServiceSingleWriter: with the service in front, the on-flash file
// has exactly one writer; concurrent detections from many cores end up as
// clean, deduplicated blocks.
func TestServiceSingleWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "device.hist")
	svc, err := NewService("phone0", core.NewFileHistory(path))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const procs = 4
	cores := make([]*core.Core, procs)
	for i := range cores {
		cores[i], _ = attach(t, svc, fmt.Sprintf("proc%d", i))
	}
	done := make(chan error, procs)
	for i, c := range cores {
		go func(i int, c *core.Core) {
			for j := 0; j < 8; j++ {
				// Every process publishes the same 8 bugs: one writer, no dups.
				if _, _, err := c.AddSignature(testSig(j)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, c)
	}
	for i := 0; i < procs; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	sigs, err := core.NewFileHistory(path).Load()
	if err != nil {
		t.Fatalf("strict load: %v", err)
	}
	if len(sigs) != 8 {
		t.Fatalf("file has %d signatures, want 8", len(sigs))
	}
}

// TestServiceReloadFromStore: a service rebuilt over an existing store
// (device reboot) starts at the persisted epoch.
func TestServiceReloadFromStore(t *testing.T) {
	store := core.NewMemHistory()
	svc, err := NewService("phone0", store)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Publish("local", testSig(1)); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	svc2, err := NewService("phone0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Epoch(); got != 2 {
		t.Errorf("epoch after reload = %d, want 2", got)
	}
	// Dedup still holds across the reboot.
	if _, fresh, err := svc2.Publish("local", testSig(0)); err != nil || fresh {
		t.Errorf("re-publish after reload: fresh=%v err=%v, want false/nil", fresh, err)
	}
}

// TestSubscribeCancelStopsDelivery: after cancel, no further deltas reach
// the subscriber, and cancel is idempotent.
func TestSubscribeCancelStopsDelivery(t *testing.T) {
	svc, err := NewService("phone0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var n int
	ch := make(chan struct{}, 8)
	cancel := svc.Subscribe("obs", 0, func(uint64, []*core.Signature) { n++; ch <- struct{}{} })
	if _, _, err := svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	<-ch
	cancel()
	cancel()
	if _, _, err := svc.Publish("local", testSig(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if n != 1 {
		t.Errorf("deliveries after cancel = %d, want 1", n)
	}
	if subs := svc.Stats().Subscribers; subs != 0 {
		t.Errorf("subscribers = %d, want 0", subs)
	}
}
