// Package immunity is the platform's signature distribution tier: it
// turns per-process Dimmunix instances into platform-wide — and
// fleet-wide — immunity that takes effect while processes are running,
// not just at their next start.
//
// The paper's deployment stops at fork time: Zygote loads the shared
// on-flash history into each child, so an antibody discovered by one app
// protects other apps only after their next start, and every process
// appends to the history file independently. This package adds two
// layers on top of the per-process engine:
//
//   - Service, the on-device hub. One Service runs per phone (hosted in
//     the system server) and is the single writer of the persistent
//     history: process cores publish newly detected signatures to it
//     (by using the Service as their core's HistoryStore), the Service
//     merges and deduplicates them (core signature keys), persists them
//     to its backing store, and pushes the delta to every subscribed
//     live process, which hot-installs it via Core.InstallSignature —
//     flipping the named positions to the avoidance slow path. One
//     app's deadlock immunizes every running app within milliseconds,
//     no restart.
//
//   - Exchange, the cross-device hub (the Communix idea): phones
//     connect their Services to a fleet exchange that tracks, per
//     signature, its provenance — the first device that saw it and the
//     set of devices that independently confirmed it — and arms the
//     signature fleet-wide only once a configurable number of distinct
//     devices has confirmed it, so one device's false positive cannot
//     degrade the whole fleet.
//
// For fleets beyond what one hub can carry, the cluster subpackage
// federates several Exchanges into one logical hub: each signature is
// owned by exactly one hub (rendezvous hashing), non-owner hubs forward
// reports to the owner over the wire protocol's peer message set, and
// owned armings broadcast cluster-wide. Devices attach to any hub
// unchanged; the ExchangeClient's per-incarnation epoch map even lets
// one device roam between hubs (see NewMultiTransport).
//
// # Transports and the wire protocol
//
// The Exchange speaks only the versioned wire protocol defined in the
// wire subpackage (hello/ack handshake, report, confirm receipts,
// delta pushes, status — see wire's message table). Devices attach
// through a Transport:
//
//   - Loopback (NewLoopback) runs the full protocol in-process with no
//     sockets — zero-dependency tests and simulations, same messages,
//     same arming decisions.
//   - TCPTransport/ServeTCP move length-prefixed wire frames over real
//     sockets (JSON below wire v3, the binary codec at v3 — negotiated
//     per session, chosen per frame by the header's codec bit);
//     ExchangeClient redials dropped sessions with backoff and
//     resubscribes from the last delta epoch it applied, so a reconnect
//     receives exactly the armings it missed. The hub's write side is
//     encode-once: a broadcast delta or arm-broadcast is marshaled at
//     most once per negotiated version (wire.Shared) and each session's
//     drain hands every pending frame to the kernel in one writev.
//
// Connect(transport, deviceID, service) wires a phone in; the hub holds
// no references to Services and identifies devices only by their hello
// device id, which is what makes confirmation state survive reconnects.
//
// # Trust model and multi-tenancy
//
// A hosted exchange cannot take a socket's word for who it is: the
// confirm-before-arm threshold is meaningless if one attacker hellos as
// N devices. The auth subpackage supplies the trust fabric, and this
// package threads it through every connection path:
//
//   - Devices authenticate with bearer tokens (wire v5 hello): the
//     operator mints HMAC-signed tokens (auth.Mint, immunityd
//     -mint-token) carrying tenant/device/expiry claims, and a hub
//     built WithAuthVerifier refuses any hello whose token is missing,
//     malformed, forged, expired, or issued for a different device id —
//     each refusal counted by reason in
//     immunity_hub_auth_failures_total. The device claim must match the
//     hello's device id (auth.WildcardDevice opts a token out,
//     tenant-wide), so a stolen token cannot impersonate other devices.
//   - Hubs authenticate to devices with TLS server certificates
//     (WithServeTLS on the listener, WithDialTLS on the client's
//     transport): devices need no per-device PKI, just the fleet CA
//     (auth.NewCA, immunityd -gen-ca) as a trust root.
//   - Hubs authenticate to each other with mutual TLS: peer links dial
//     with the hub's own fleet-CA certificate, and a hub built
//     WithPeerAuth refuses any peer-hello whose claimed cluster id is
//     not backed by the session's verified certificate identity
//     (auth.PeerIdentity) — a rogue hub can neither join the mesh nor
//     replay arm-broadcasts.
//
// The verifier's tenant claim partitions one hub (or cluster) into
// isolated fleets: signature keys are canonicalized per tenant,
// provenance records carry the tenant, confirm thresholds can differ
// per tenant (WithTenantThreshold), and pushes, catch-up deltas, and
// cluster forwarding all stay within a record's tenant — tenant A's
// confirmations can never arm tenant B's fleet, and Status grows a
// per-tenant view. The fleet epoch counter stays global (a tenant's
// client may see epoch gaps; resume is strictly "armEpoch greater than
// mine", so gaps are harmless).
//
// Auth-disabled mode — no verifier, no TLS — keeps the pre-v5 behavior
// byte for byte: any socket may claim any identity and all traffic is
// one implicit tenant. That is the correct posture on a trusted network
// and is exactly what every wire v≤4 deployment already assumed; v≤4
// clients still interop against such a hub through the ordinary
// [min_v,max_v] version negotiation.
//
// # Durable provenance
//
// With WithProvenanceStore the hub upserts every confirmation, push,
// and arming to a ProvenanceStore (NewFileProvenance: a JSON-lines
// last-wins log). A restarted hub reloads that state before accepting
// sessions: it does not re-arm below threshold, loses no confirmation,
// and still refuses echoes of its own past pushes.
//
// # Epoch/delta protocol
//
// The Service's merged history is an append-only sequence; the epoch is
// the number of signatures accepted so far (epoch e ⇒ signatures with
// indices 0..e-1 exist). Publishing a new signature bumps the epoch by
// one and enqueues the delta (the new signature, tagged with the
// post-append epoch) to every subscriber. A subscriber names the epoch
// it already holds (typically captured just before its core loaded the
// history), and catch-up delivery replays every signature after that
// epoch before live deltas — so a process forked while a publish is in
// flight may receive a signature twice, which is harmless: hot-install
// deduplicates by signature key. Deliveries to one subscriber are
// ordered; across subscribers there is no ordering guarantee. The
// fleet tier runs the same scheme one level up: the Exchange's delta
// epoch counts fleet-wide armings, and a client's hello names the last
// fleet epoch it applied.
//
// Under a publish storm, pending deltas to one subscriber are coalesced
// into a single delivery carrying the newest epoch (ServiceStats and
// ExchangeStats count batches vs. signatures) — a slow subscriber
// receives one batched push, never a backlog of stale epochs.
//
// # Observability and admission control
//
// Every Exchange owns a metrics.Registry (share one across hubs with
// WithMetricsRegistry; read it with Exchange.Metrics): report/
// confirmation/echo/arming/forward counters, device and peer session
// gauges, push-queue depth and in-flight gauges with drain batch-size
// and coalesce-ratio histograms, report-handling latency, and persist
// error counters — rendered in Prometheus text format by
// Registry.WritePrometheus (immunityd serves it at /metrics). The
// cluster subpackage adds per-peer dial/reconnect/forward-outbox
// series on the same registry, and WithClientMetrics mirrors a device
// client's session health.
//
// WithAdmission(capacity, maxWait) puts a bounded permit pool in front
// of report ingest (device reports and peer forward-reports): at most
// capacity report messages are processed concurrently, an
// over-capacity message waits — on the session's transport read
// goroutine, so the device sees a slow ack and TCP applies
// backpressure — and a message still waiting after maxWait is shed:
// dropped without killing the session, recovered by the client's
// full-history re-report on its next reconnect (at-least-once). A
// report storm therefore degrades to bounded delay instead of
// unbounded hub memory. Keep maxWait well below the transport's 30s
// write timeout, or a delayed session's unread pushes can kill it
// before the verdict. WithAdmissionPool substitutes a caller-owned
// pool for the fixed-capacity one — the seam the adaptive controller
// plugs into.
//
// Three layers in the metrics package turn those raw series into a
// control loop. metrics.Rates samples tracked counters and histograms
// on a fixed interval into ring buffers and derives per-second rate
// gauges over sliding windows (immunity_hub_reports_per_second
// {window="1m"}, per-peer forward rates) plus windowed histogram
// quantiles — a burst is visible while it happens and the rate decays
// to zero when it stops, without any scrape-side PromQL.
// metrics.Evaluator re-checks declarative SLOs (a latency quantile or
// a rate against a target, e.g. "p99 report handling ≤ 25ms",
// "shed rate = 0") on every tick and runs an ok→warn→breach state
// machine per objective, exported as immunity_slo_state and served as
// JSON by immunityd's /slo. metrics.AdaptivePool closes the loop:
// bound to the evaluator, it resizes the admission pool by AIMD —
// additive increase while its SLO is ok and waiters were delayed,
// multiplicative decrease on breach or shed — so hub admission
// converges to the widest capacity the latency objective tolerates
// (immunityd -serve -admit auto). The report latency histogram has a
// wait-excluded twin (immunity_hub_report_handle_seconds) so a breach
// attributable to queueing is distinguishable from a slow hub.
//
// Two latency regimes matter when picking the SLO target: the
// wait-included p99 under admission contention is roughly
// sessions × per-batch handle time (the pool serializes batch
// handling), so a target between the paced-load and flood-load
// quantile buckets gives the state machine an unambiguous signal in
// both directions.
//
// The registry's instruments are lock-free and its own mutexes are
// leaves that never call out, so metric updates are safe under any
// hub, queue, or link lock; see the metrics package comment for the
// exact ordering contract.
//
// # Lock order relative to the engine lock
//
// Publish is called from inside the engine's critical section: a core
// that detects a deadlock appends to its store — the Service — while
// holding its engine lock (core.Core.mu) exclusively. The Service
// therefore must never call into any core synchronously: Publish only
// takes the service lock, appends, and enqueues; the hot-install calls
// (Core.InstallSignature, which takes the target core's engine lock)
// happen on per-subscriber delivery goroutines that hold no service
// lock while invoking the callback. The resulting order is
//
//	core.Core.mu (any process) > Service.mu > {subscriber queue lock,
//	Service.persistMu > backing-store locks}
//
// and delivery goroutines acquire core.Core.mu with no immunity lock
// held, so no cycle through the two subsystems is possible. The
// Exchange obeys the same rule one level up: Exchange.mu is only held
// to mutate fleet state and enqueue pushes (Exchange.mu >
// Exchange.persistMu > provenance-store locks); session deliveries into
// a phone's Service run on per-connection queue goroutines without
// Exchange.mu, and transport send callbacks run only on those
// goroutines.
package immunity

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dimmunix/dimmunix/internal/core"
)

// delta is one ordered delivery to a subscriber: the signatures accepted
// since the subscriber's last known epoch (deep copies, safe to install
// into any core), and the epoch after applying them.
type delta struct {
	epoch uint64
	sigs  []*core.Signature
}

// subscriber is one live process's (or observer's) ordered delivery
// queue: a Queue[delta] drained by a dedicated goroutine so Publish
// never blocks on a slow consumer and never calls into a core
// synchronously. Pending deltas are coalesced into one delivery
// carrying the newest epoch, so a subscriber that fell behind a publish
// storm catches up in a single callback and never observes a stale
// epoch.
type subscriber = Queue[delta]

// mergeDeltas coalesces two adjacent deltas into one carrying the
// newest epoch. It copies prev's signature slice — queued deltas are
// shared with the other subscribers' queues.
func mergeDeltas(prev, next delta) (delta, bool) {
	merged := delta{epoch: prev.epoch,
		sigs: append(append(make([]*core.Signature, 0, len(prev.sigs)+len(next.sigs)), prev.sigs...), next.sigs...)}
	if next.epoch > merged.epoch {
		merged.epoch = next.epoch
	}
	return merged, true
}

func newSubscriber(fn func(epoch uint64, sigs []*core.Signature), onBatch func(n int)) *subscriber {
	return NewQueue(QueueConfig[delta]{
		Deliver: func(d delta) error { fn(d.epoch, d.sigs); return nil },
		Merge:   mergeDeltas,
		OnDeliver: func(d delta) {
			if onBatch != nil {
				onBatch(len(d.sigs))
			}
		},
	})
}

// ServiceStats snapshots a Service's counters.
type ServiceStats struct {
	// Epoch is the current history epoch (number of accepted signatures).
	Epoch uint64
	// Published counts accepted (fresh) signatures since creation,
	// including those loaded from the backing store at construction.
	Published uint64
	// Duplicates counts publishes rejected as already known.
	Duplicates uint64
	// Deliveries counts delta deliveries enqueued (subscribers × deltas).
	Deliveries uint64
	// DeltaBatches and DeltaSignatures count what subscribers actually
	// received after coalescing: DeltaBatches callbacks carrying
	// DeltaSignatures signatures. DeltaSignatures/DeltaBatches > 1 means
	// publish storms were batched.
	DeltaBatches, DeltaSignatures uint64
	// Subscribers is the current number of live subscriptions.
	Subscribers int
	// PersistErrors counts failed appends to the backing store (the
	// in-memory history and the propagation still protect the platform).
	PersistErrors uint64
}

// Service is the on-device immunity hub: the single writer of the
// persistent history and the live propagation fan-out. It implements
// core.HistoryStore so it plugs directly into the Zygote as the store
// every forked core loads from and publishes to.
type Service struct {
	name  string
	store core.HistoryStore // backing persistence; nil = in-memory only

	mu      sync.Mutex
	sigs    []*core.Signature // accepted signatures, epoch order
	keys    map[string]uint64 // signature key -> epoch at acceptance
	sources map[string]string // signature key -> first publisher
	subs    map[int]*subscriber
	nextSub int
	closed  bool
	stats   ServiceStats

	// persistMu serializes backing-store appends in epoch order. It is
	// acquired while still holding mu (establishing the epoch) and
	// released after the append, so the file order always matches the
	// epoch order even under concurrent publishers — NewService re-derives
	// epochs from file order after a reboot. Lock order: mu > persistMu.
	persistMu sync.Mutex

	// Batching counters, bumped on subscriber drain goroutines.
	batchBatches atomic.Uint64
	batchSigs    atomic.Uint64
}

var _ core.HistoryStore = (*Service)(nil)

// NewService creates the device hub named name (the device/phone id in a
// fleet). store, which may be nil, is the backing persistent history; its
// contents are loaded, deduplicated, and become epochs 1..n.
func NewService(name string, store core.HistoryStore) (*Service, error) {
	s := &Service{
		name:    name,
		store:   store,
		keys:    make(map[string]uint64),
		sources: make(map[string]string),
		subs:    make(map[int]*subscriber),
	}
	if store != nil {
		sigs, err := store.Load()
		if err != nil {
			return nil, fmt.Errorf("immunity service %s: load store: %w", name, err)
		}
		merged, err := core.MergeHistories(sigs)
		if err != nil {
			return nil, fmt.Errorf("immunity service %s: %w", name, err)
		}
		for _, sig := range merged {
			s.sigs = append(s.sigs, sig)
			s.keys[sig.Key()] = uint64(len(s.sigs))
			s.sources[sig.Key()] = "store"
			s.stats.Published++
		}
	}
	return s, nil
}

// Name returns the service's device name.
func (s *Service) Name() string { return s.name }

// Epoch returns the current history epoch.
func (s *Service) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.sigs))
}

// Snapshot returns deep copies of all accepted signatures and the epoch
// they represent.
func (s *Service) Snapshot() ([]*core.Signature, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := core.MergeHistories(s.sigs)
	if err != nil {
		return nil, 0, err
	}
	return out, uint64(len(s.sigs)), nil
}

// Load implements core.HistoryStore: a forked core seeds its history with
// everything the service has accepted so far.
func (s *Service) Load() ([]*core.Signature, error) {
	sigs, _, err := s.Snapshot()
	return sigs, err
}

// Append implements core.HistoryStore: a core that detects a deadlock
// publishes it to the service instead of writing the history file itself.
// Append may be called with the publishing core's engine lock held; it
// never calls back into any core (see the package comment's lock order).
func (s *Service) Append(sig *core.Signature) error {
	_, _, err := s.Publish(s.name, sig)
	return err
}

// Publish offers a signature to the service, attributed to source. If the
// signature is new it is persisted to the backing store, assigned the
// next epoch, and pushed asynchronously to every subscriber. Publish
// reports the epoch after the call and whether the signature was fresh.
func (s *Service) Publish(source string, sig *core.Signature) (epoch uint64, fresh bool, err error) {
	if sig == nil {
		return 0, false, fmt.Errorf("immunity publish: nil signature")
	}
	if err := sig.Validate(); err != nil {
		return 0, false, fmt.Errorf("immunity publish: %w", err)
	}
	key := sig.Key()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, false, fmt.Errorf("immunity publish: service %s closed", s.name)
	}
	if _, ok := s.keys[key]; ok {
		s.stats.Duplicates++
		epoch = uint64(len(s.sigs))
		s.mu.Unlock()
		return epoch, false, nil
	}
	cp := &core.Signature{Kind: sig.Kind, Pairs: core.ClonePairs(sig.Pairs)}
	s.sigs = append(s.sigs, cp)
	epoch = uint64(len(s.sigs))
	s.keys[key] = epoch
	s.sources[key] = source
	s.stats.Published++
	d := delta{epoch: epoch, sigs: []*core.Signature{cp}}
	for _, sub := range s.subs {
		sub.Enqueue(d)
		s.stats.Deliveries++
	}
	store := s.store
	if store != nil {
		// Taken under mu: the holder of epoch n owns persistMu before the
		// publisher of epoch n+1 can request it, so appends land in epoch
		// order.
		s.persistMu.Lock()
	}
	s.mu.Unlock()

	// Persist outside the service lock: the store may take a file lock,
	// and subscribers must not wait on flash latency.
	if store != nil {
		err := store.Append(cp)
		s.persistMu.Unlock()
		if err != nil {
			s.mu.Lock()
			s.stats.PersistErrors++
			s.mu.Unlock()
		}
	}
	return epoch, true, nil
}

// Subscribe registers fn for every signature accepted after epoch `from`,
// starting with an immediate catch-up delta if the service is already
// ahead; fn receives the epoch after each delta and the delta's
// signatures (deep copies). Deliveries are ordered per subscriber and run
// on a dedicated goroutine; fn may call into cores (hot-install) but must
// not call Subscribe or Close on this service. The returned cancel stops
// delivery after the in-flight delta and waits for the delivery goroutine
// to exit. Together with Epoch and the HistoryStore methods this
// implements vm.SignatureBus.
func (s *Service) Subscribe(name string, from uint64, fn func(epoch uint64, sigs []*core.Signature)) (cancel func()) {
	sub := newSubscriber(fn, func(n int) {
		s.batchBatches.Add(1)
		s.batchSigs.Add(uint64(n))
	})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		sub.Close()
		return func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	if cur := uint64(len(s.sigs)); from < cur {
		catchup := delta{epoch: cur, sigs: make([]*core.Signature, 0, cur-from)}
		catchup.sigs = append(catchup.sigs, s.sigs[from:cur]...)
		sub.Enqueue(catchup)
		s.stats.Deliveries++
	}
	s.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.subs, id)
			s.mu.Unlock()
			sub.Close()
		})
	}
}

// SourceOf returns the first publisher recorded for a signature key, or
// "" if the key is unknown — the on-device half of provenance.
func (s *Service) SourceOf(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sources[key]
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Epoch = uint64(len(s.sigs))
	out.Subscribers = len(s.subs)
	out.DeltaBatches = s.batchBatches.Load()
	out.DeltaSignatures = s.batchSigs.Load()
	return out
}

// Close stops the service: subscribers are drained and detached, and
// further publishes fail. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	subs := make([]*subscriber, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subs = make(map[int]*subscriber)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// sortedKeys returns m's keys sorted, for deterministic rendering.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
