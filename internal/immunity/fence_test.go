package immunity

import (
	"errors"
	"testing"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// stubBinding is a scriptable ClusterBinding: tests control the
// membership epoch and the per-key owner directly to replay exactly
// the stale-owner scenarios the fencing rule exists for.
type stubBinding struct {
	self   string
	epoch  uint64
	owners map[string]string // key -> owner; missing keys default to self
}

func (s *stubBinding) SelfID() string    { return s.self }
func (s *stubBinding) Members() []string { return []string{s.self} }
func (s *stubBinding) Owns(key string) bool {
	return s.OwnerOf(key) == s.self
}
func (s *stubBinding) OwnerOf(key string) string {
	if o, ok := s.owners[key]; ok {
		return o
	}
	return s.self
}
func (s *stubBinding) Epoch() uint64 { return s.epoch }
func (s *stubBinding) MemberSnapshot() wire.MemberUpdate {
	return wire.MemberUpdate{Epoch: s.epoch, Members: []wire.MemberInfo{{ID: s.self}}}
}
func (s *stubBinding) ForwardReport(string, string, []wire.Signature, []string, int) {}
func (s *stubBinding) Replicate(string, wire.OwnedRecord)                            {}
func (s *stubBinding) ApplyMemberUpdate(wire.MemberUpdate)                           {}
func (s *stubBinding) PeerSeen(string, string)                                       {}
func (s *stubBinding) MayArm() bool                                                  { return true }
func (s *stubBinding) HandleProbe(wire.Message)                                      {}

func fenceSig(id int) wire.Signature {
	a := core.Frame{Class: "com.app.Fence", Method: "lockA", Line: 10 + id*100}
	b := core.Frame{Class: "com.app.Fence", Method: "lockB", Line: 20 + id*100}
	return wire.FromCore(&core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{a}, Inner: core.CallStack{a}},
			{Outer: core.CallStack{b}, Inner: core.CallStack{b}},
		},
	})
}

// TestFencingRefusesStaleOwner is the fencing regression test: a
// deposed owner replaying arm-broadcasts stamped with a pre-failover
// membership epoch must be refused (ErrFenced, no arming, counted),
// while the *current* owner's broadcasts — and a behind-on-gossip
// sender that still owns the key — stay installable.
func TestFencingRefusesStaleOwner(t *testing.T) {
	hub := newTestHub(t, 2)
	ws := fenceSig(0)
	sig, err := ws.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	key := sig.Key()

	// Membership at epoch 3; the key was re-owned by hub-b after its
	// original owner hub-a was failed over.
	bind := &stubBinding{self: "local", epoch: 3, owners: map[string]string{key: "hub-b"}}
	hub.BindCluster(bind)

	// The stale owner hub-a replays its old broadcast, fenced at the
	// epoch it armed under (1 < 3) — refused, nothing armed, counted.
	applied, err := hub.InstallRemote(wire.ArmBroadcast{Owner: "hub-a", Seq: 7, Confirmations: 2, Sig: ws, Fence: 1})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale owner's broadcast: applied=%v err=%v, want ErrFenced", applied, err)
	}
	if hub.ArmedCount() != 0 {
		t.Fatal("fenced broadcast armed the signature")
	}
	if got := hub.Stats().Fenced; got != 1 {
		t.Fatalf("fenced count = %d, want 1", got)
	}
	// A fenced broadcast must not have created a phantom entry either:
	// provenance stays empty.
	if got := len(hub.Provenance()); got != 0 {
		t.Fatalf("fenced broadcast left %d provenance entries", got)
	}

	// The current owner, even one tick behind on membership gossip
	// (fence 2 < epoch 3), is merely behind — not deposed: installable.
	applied, err = hub.InstallRemote(wire.ArmBroadcast{Owner: "hub-b", Seq: 1, Confirmations: 2, Sig: ws, Fence: 2})
	if err != nil || !applied {
		t.Fatalf("current owner's broadcast: applied=%v err=%v, want applied", applied, err)
	}

	// Replays from the deposed owner stay fenced after the install too.
	if _, err = hub.InstallRemote(wire.ArmBroadcast{Owner: "hub-a", Seq: 8, Confirmations: 2, Sig: ws, Fence: 1}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale replay after install: err=%v, want ErrFenced", err)
	}
	if got := hub.Stats().Fenced; got != 2 {
		t.Fatalf("fenced count = %d, want 2", got)
	}

	// The stale owner catches up on membership (fence == epoch): its
	// broadcast for a key it genuinely owns again is accepted.
	ws2 := fenceSig(1)
	applied, err = hub.InstallRemote(wire.ArmBroadcast{Owner: "hub-a", Seq: 9, Confirmations: 2, Sig: ws2, Fence: 3})
	if err != nil || !applied {
		t.Fatalf("caught-up owner's broadcast: applied=%v err=%v, want applied", applied, err)
	}
}

// TestFencingOwnerChangeResetsSeqNamespace: when ownership of an armed
// signature moves, the entry enters the new owner's seq namespace at
// the new owner's seq — never a max across namespaces, so a new owner
// starting from seq 1 is not masked by the old owner's higher numbers.
func TestFencingOwnerChangeResetsSeqNamespace(t *testing.T) {
	hub := newTestHub(t, 2)
	ws := fenceSig(2)
	sig, err := ws.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	key := sig.Key()
	bind := &stubBinding{self: "local", epoch: 1, owners: map[string]string{key: "hub-a"}}
	hub.BindCluster(bind)

	if _, err := hub.InstallRemote(wire.ArmBroadcast{Owner: "hub-a", Seq: 41, Confirmations: 2, Sig: ws, Fence: 1}); err != nil {
		t.Fatal(err)
	}
	// Failover: hub-b owns the key at epoch 2 and rebroadcasts from its
	// own namespace.
	bind.epoch = 2
	bind.owners[key] = "hub-b"
	if _, err := hub.InstallRemote(wire.ArmBroadcast{Owner: "hub-b", Seq: 1, Confirmations: 2, Sig: ws, Fence: 2}); err != nil {
		t.Fatal(err)
	}
	seqs := hub.RemoteSeqs()
	if got := seqs["hub-b"]; got != 1 {
		t.Fatalf("new owner's resume seq = %d, want 1 (namespace not reset: %v)", got, seqs)
	}
	if got := seqs["hub-a"]; got != 0 {
		t.Fatalf("deposed owner still claims resume seq %d, want 0 (%v)", got, seqs)
	}
}
