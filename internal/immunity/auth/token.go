// Package auth is the trust fabric of the fleet exchange: bearer-token
// device authentication with tenant scoping, and the TLS material that
// encrypts and authenticates every device and hub-to-hub link.
//
// # Tokens
//
// A token is a compact HMAC-SHA256 bearer credential minted by the
// fleet operator and carried in the wire v5 hello:
//
//	base64url(JSON claims) "." base64url(HMAC-SHA256(key, claims))
//
// The claims name a principal — the tenant the device belongs to, the
// device id the token is good for, an expiry, and the id of the signing
// key — and the hub's Verifier resolves a presented token back to that
// (tenant, device) principal or refuses it with a typed error (expired,
// bad signature, malformed), which the hub counts per reason. The
// device claim must match the hello's device id (WildcardDevice opts a
// token out, tenant-wide), so a stolen device-bound token cannot be
// replayed under a different identity and one socket cannot hello as N
// devices to defeat the confirm-before-arm threshold.
//
// Two Verifier implementations ship: a single static key (Static) and a
// file-backed keyring (Keyring) mapping key ids to keys, so operators
// can rotate keys by issuing under a new kid while old tokens age out.
//
// # Trust model
//
// Tokens authenticate devices to hubs; TLS server certificates
// authenticate hubs to devices; mutual TLS authenticates hubs to each
// other (see tls.go). Auth-disabled mode (no verifier, no TLS) keeps
// the pre-v5 behavior byte for byte: any socket may claim any identity,
// which is acceptable on a trusted network and is what every wire v≤4
// deployment already assumed.
package auth

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"
)

// WildcardDevice is the device claim of a tenant-wide enrollment
// token: it authenticates any hello device id within its tenant. Use
// device-bound tokens in production; the wildcard is the dev/CI
// convenience for fleets of generated device names.
const WildcardDevice = "*"

// Claims is the principal a token asserts: the tenant the device
// belongs to ("" = the default single-tenant fleet), the device id the
// token is bound to (WildcardDevice for a tenant-wide token), the
// unix-seconds expiry (0 = never expires), and the id of the key that
// signed it (keyring lookup; "" with a static verifier).
type Claims struct {
	Tenant string `json:"tenant,omitempty"`
	Device string `json:"device"`
	Exp    int64  `json:"exp,omitempty"`
	Kid    string `json:"kid,omitempty"`
}

// Typed verification failures, distinguishable so refusals can be
// counted per reason.
var (
	ErrMalformed    = errors.New("auth: malformed token")
	ErrBadSignature = errors.New("auth: bad token signature")
	ErrExpired      = errors.New("auth: token expired")
	ErrUnknownKey   = errors.New("auth: unknown signing key")
)

// Verifier resolves a presented bearer token to its claims or refuses
// it with one of the typed errors above. Implementations must be safe
// for concurrent use — the hub verifies on session handshake
// goroutines.
type Verifier interface {
	Verify(token string, now time.Time) (Claims, error)
}

var enc = base64.RawURLEncoding

func sign(key []byte, payload string) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(payload))
	return mac.Sum(nil)
}

// Mint signs c under key and returns the encoded token.
func Mint(key []byte, c Claims) (string, error) {
	if c.Device == "" {
		return "", fmt.Errorf("auth: mint: empty device claim")
	}
	body, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("auth: mint: %w", err)
	}
	payload := enc.EncodeToString(body)
	return payload + "." + enc.EncodeToString(sign(key, payload)), nil
}

// parse splits and decodes a token without verifying the signature,
// returning the claims, the signed payload, and the presented MAC.
func parse(token string) (Claims, string, []byte, error) {
	payload, macStr, ok := strings.Cut(token, ".")
	if !ok || payload == "" || macStr == "" {
		return Claims{}, "", nil, ErrMalformed
	}
	body, err := enc.DecodeString(payload)
	if err != nil {
		return Claims{}, "", nil, ErrMalformed
	}
	mac, err := enc.DecodeString(macStr)
	if err != nil {
		return Claims{}, "", nil, ErrMalformed
	}
	var c Claims
	if err := json.Unmarshal(body, &c); err != nil || c.Device == "" {
		return Claims{}, "", nil, ErrMalformed
	}
	return c, payload, mac, nil
}

// verifyWith checks the MAC (constant time) and the expiry.
func verifyWith(key []byte, c Claims, payload string, mac []byte, now time.Time) (Claims, error) {
	if !hmac.Equal(mac, sign(key, payload)) {
		return Claims{}, ErrBadSignature
	}
	if c.Exp != 0 && now.Unix() >= c.Exp {
		return Claims{}, ErrExpired
	}
	return c, nil
}

// Static is a Verifier holding one signing key; the claims' kid is
// ignored. It is the single-key deployment (`immunityd -auth-key`).
type Static struct{ key []byte }

// NewStatic wraps key as a single-key verifier.
func NewStatic(key []byte) *Static { return &Static{key: append([]byte(nil), key...)} }

// Verify implements Verifier.
func (s *Static) Verify(token string, now time.Time) (Claims, error) {
	c, payload, mac, err := parse(token)
	if err != nil {
		return Claims{}, err
	}
	return verifyWith(s.key, c, payload, mac, now)
}

// Keyring is a Verifier mapping key ids to signing keys — the rotation
// story: issue new tokens under a fresh kid, keep the old key listed
// until its tokens expire, then drop it.
type Keyring struct{ keys map[string][]byte }

// NewKeyring copies keys (kid → key bytes).
func NewKeyring(keys map[string][]byte) *Keyring {
	kr := &Keyring{keys: make(map[string][]byte, len(keys))}
	for kid, k := range keys {
		kr.keys[kid] = append([]byte(nil), k...)
	}
	return kr
}

// LoadKeyring reads a keyring file: one `kid:key` pair per line, the
// key in raw form ('#' comments and blank lines skipped). A line with
// no ':' names a key with kid "" — the default key a kid-less token
// verifies against.
func LoadKeyring(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("auth: keyring: %w", err)
	}
	defer f.Close()
	keys := make(map[string][]byte)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kid, key, ok := strings.Cut(line, ":")
		if !ok {
			kid, key = "", line
		}
		keys[kid] = []byte(key)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("auth: keyring: %w", err)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("auth: keyring %s holds no keys", path)
	}
	return NewKeyring(keys), nil
}

// Verify implements Verifier: the claims' kid selects the key.
func (kr *Keyring) Verify(token string, now time.Time) (Claims, error) {
	c, payload, mac, err := parse(token)
	if err != nil {
		return Claims{}, err
	}
	key, ok := kr.keys[c.Kid]
	if !ok {
		return Claims{}, ErrUnknownKey
	}
	return verifyWith(key, c, payload, mac, now)
}
