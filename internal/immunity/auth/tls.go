// TLS material for the fleet fabric: a dev CA (one ECDSA P-256 root,
// minted in one command), leaf issuance for hubs and peers, and the
// three tls.Config shapes every connection path uses:
//
//   - device → hub: server-cert verification only; the device proves
//     itself with a bearer token, not a cert, so fleets need no
//     per-device PKI.
//   - hub accept: serves the hub cert; when a client CA pool is
//     configured, any *presented* client cert must chain to it
//     (VerifyClientCertIfGiven) — which lets one listener serve both
//     token-only device sessions and cert-bearing peer sessions.
//   - hub → hub: mutual TLS; the peer's certificate common name is its
//     cluster identity, checked against the peer-hello, so a rogue hub
//     without a fleet-CA cert can neither join the mesh nor replay
//     arm-broadcasts.
package auth

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// DefaultHosts are the SANs a dev cert is issued for when the caller
// names none — enough for loopback CI topologies and local operation.
var DefaultHosts = []string{"127.0.0.1", "::1", "localhost"}

// CA is a certificate authority: the self-signed root plus its key,
// able to issue leaf certificates for hubs and peers.
type CA struct {
	cert    *x509.Certificate
	key     *ecdsa.PrivateKey
	certPEM []byte
}

func serial() (*big.Int, error) {
	limit := new(big.Int).Lsh(big.NewInt(1), 128)
	return rand.Int(rand.Reader, limit)
}

// NewCA mints a fresh dev CA named name (10-year validity).
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("auth: ca key: %w", err)
	}
	sn, err := serial()
	if err != nil {
		return nil, fmt.Errorf("auth: ca serial: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber:          sn,
		Subject:               pkix.Name{CommonName: name},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("auth: ca cert: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("auth: ca cert: %w", err)
	}
	return &CA{cert: cert, key: key,
		certPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})}, nil
}

// LoadCA reads a CA minted by Save.
func LoadCA(certFile, keyFile string) (*CA, error) {
	certPEM, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("auth: load ca: %w", err)
	}
	keyPEM, err := os.ReadFile(keyFile)
	if err != nil {
		return nil, fmt.Errorf("auth: load ca: %w", err)
	}
	cb, _ := pem.Decode(certPEM)
	kb, _ := pem.Decode(keyPEM)
	if cb == nil || kb == nil {
		return nil, fmt.Errorf("auth: load ca: not PEM")
	}
	cert, err := x509.ParseCertificate(cb.Bytes)
	if err != nil {
		return nil, fmt.Errorf("auth: load ca cert: %w", err)
	}
	key, err := x509.ParseECPrivateKey(kb.Bytes)
	if err != nil {
		return nil, fmt.Errorf("auth: load ca key: %w", err)
	}
	return &CA{cert: cert, key: key, certPEM: certPEM}, nil
}

// Save writes the CA certificate and key as PEM files (the key 0600).
func (ca *CA) Save(certFile, keyFile string) error {
	if err := os.WriteFile(certFile, ca.certPEM, 0o644); err != nil {
		return fmt.Errorf("auth: save ca: %w", err)
	}
	kder, err := x509.MarshalECPrivateKey(ca.key)
	if err != nil {
		return fmt.Errorf("auth: save ca key: %w", err)
	}
	kpem := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: kder})
	if err := os.WriteFile(keyFile, kpem, 0o600); err != nil {
		return fmt.Errorf("auth: save ca key: %w", err)
	}
	return nil
}

// CertPEM returns the CA certificate in PEM form.
func (ca *CA) CertPEM() []byte { return append([]byte(nil), ca.certPEM...) }

// Pool returns a cert pool holding only this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// Issue mints a leaf certificate under this CA: CommonName = name (the
// identity mutual-TLS peers are checked against), SANs = hosts
// (DefaultHosts when empty), valid for client and server use so one
// cert serves a hub's listener and its outbound peer dials.
func (ca *CA) Issue(name string, hosts []string) (certPEM, keyPEM []byte, err error) {
	if len(hosts) == 0 {
		hosts = DefaultHosts
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("auth: leaf key: %w", err)
	}
	sn, err := serial()
	if err != nil {
		return nil, nil, fmt.Errorf("auth: leaf serial: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber: sn,
		Subject:      pkix.Name{CommonName: name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(2 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tpl.IPAddresses = append(tpl.IPAddresses, ip)
		} else {
			tpl.DNSNames = append(tpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, nil, fmt.Errorf("auth: leaf cert: %w", err)
	}
	kder, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, fmt.Errorf("auth: leaf key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: kder}), nil
}

// IssueTLS is Issue returning a ready tls.Certificate.
func (ca *CA) IssueTLS(name string, hosts []string) (tls.Certificate, error) {
	certPEM, keyPEM, err := ca.Issue(name, hosts)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.X509KeyPair(certPEM, keyPEM)
}

// ServerConfig builds a hub listener's TLS config: serve cert, and —
// when clientCAs is non-nil — verify any presented client certificate
// against it. VerifyClientCertIfGiven (not RequireAndVerify) is what
// lets one listener carry both token-authenticated device sessions
// (no cert) and mutually-authenticated peer sessions (fleet-CA cert);
// the exchange separately refuses a peer-hello on a session with no
// verified cert identity when peer auth is required.
func ServerConfig(cert tls.Certificate, clientCAs *x509.CertPool) *tls.Config {
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	if clientCAs != nil {
		cfg.ClientCAs = clientCAs
		cfg.ClientAuth = tls.VerifyClientCertIfGiven
	}
	return cfg
}

// ClientConfig builds a device-side TLS config: verify the hub's
// server certificate against roots. serverName overrides the dial
// address for certificate verification ("" uses the dialed host).
func ClientConfig(roots *x509.CertPool, serverName string) *tls.Config {
	return &tls.Config{
		RootCAs:    roots,
		ServerName: serverName,
		MinVersion: tls.VersionTLS12,
	}
}

// PeerConfig builds a hub's outbound peer-link TLS config: mutual —
// present cert, verify the answering hub against roots.
func PeerConfig(cert tls.Certificate, roots *x509.CertPool, serverName string) *tls.Config {
	cfg := ClientConfig(roots, serverName)
	cfg.Certificates = []tls.Certificate{cert}
	return cfg
}

// PeerIdentity extracts the verified client-certificate identity (leaf
// CommonName) from a completed handshake, or "" when the client
// presented no certificate. With VerifyClientCertIfGiven a presented
// cert has already chained to the client CA pool by the time the
// handshake completes, so a non-empty return is an authenticated
// identity.
func PeerIdentity(state tls.ConnectionState) string {
	if len(state.PeerCertificates) == 0 {
		return ""
	}
	return state.PeerCertificates[0].Subject.CommonName
}
