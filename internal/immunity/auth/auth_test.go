package auth

import (
	"crypto/tls"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var t0 = time.Unix(1700000000, 0)

// TestTokenMatrix is the negative-path matrix: a good token verifies to
// its claims, and every tampering — expiry, wrong key, truncation,
// claim surgery — is refused with the right typed error.
func TestTokenMatrix(t *testing.T) {
	key := []byte("fleet-signing-key")
	v := NewStatic(key)
	good, err := Mint(key, Claims{Tenant: "acme", Device: "phone-1", Exp: t0.Add(time.Hour).Unix()})
	if err != nil {
		t.Fatal(err)
	}

	c, err := v.Verify(good, t0)
	if err != nil {
		t.Fatalf("good token refused: %v", err)
	}
	if c.Tenant != "acme" || c.Device != "phone-1" {
		t.Fatalf("wrong claims: %+v", c)
	}

	cases := []struct {
		name  string
		token string
		at    time.Time
		want  error
	}{
		{"expired", good, t0.Add(2 * time.Hour), ErrExpired},
		{"expiry boundary", good, t0.Add(time.Hour), ErrExpired},
		{"truncated", good[:len(good)-5], t0, ErrBadSignature},
		{"no dot", "nodotatall", t0, ErrMalformed},
		{"empty", "", t0, ErrMalformed},
		{"garbage payload", "!!!!.AAAA", t0, ErrMalformed},
	}
	// Claim surgery: re-mint the same claims under a different key.
	forged, err := Mint([]byte("attacker-key"), Claims{Tenant: "acme", Device: "phone-1"})
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name  string
		token string
		at    time.Time
		want  error
	}{"wrong key", forged, t0, ErrBadSignature})

	for _, tc := range cases {
		if _, err := v.Verify(tc.token, tc.at); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// A token with no expiry never expires.
	forever, err := Mint(key, Claims{Device: "phone-2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(forever, t0.Add(100 * 365 * 24 * time.Hour)); err != nil {
		t.Fatalf("no-expiry token refused: %v", err)
	}
}

func TestKeyring(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys")
	if err := os.WriteFile(path, []byte("# fleet keys\nv1:old-key\nv2:new-key\ndefault-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err := LoadKeyring(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		kid, key string
	}{{"v1", "old-key"}, {"v2", "new-key"}, {"", "default-key"}} {
		tok, err := Mint([]byte(tc.key), Claims{Device: "d", Kid: tc.kid})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := kr.Verify(tok, t0); err != nil {
			t.Errorf("kid %q refused: %v", tc.kid, err)
		}
	}
	// Unknown kid and cross-kid key reuse both refuse.
	tok, _ := Mint([]byte("old-key"), Claims{Device: "d", Kid: "v9"})
	if _, err := kr.Verify(tok, t0); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown kid: got %v", err)
	}
	tok, _ = Mint([]byte("old-key"), Claims{Device: "d", Kid: "v2"})
	if _, err := kr.Verify(tok, t0); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-kid key: got %v", err)
	}
}

// TestTLSHandshakes drives the three config shapes over a real socket:
// a token-only client (no cert) and a cert-bearing peer both complete
// against one listener; the peer's identity comes out of the handshake;
// and a certificate from a different CA is refused.
func TestTLSHandshakes(t *testing.T) {
	ca, err := NewCA("fleet-ca")
	if err != nil {
		t.Fatal(err)
	}
	hubCert, err := ca.IssueTLS("hub0", nil)
	if err != nil {
		t.Fatal(err)
	}
	peerCert, err := ca.IssueTLS("hub1", nil)
	if err != nil {
		t.Fatal(err)
	}
	rogueCA, err := NewCA("rogue-ca")
	if err != nil {
		t.Fatal(err)
	}
	rogueCert, err := rogueCA.IssueTLS("hub1", nil)
	if err != nil {
		t.Fatal(err)
	}

	srvCfg := ServerConfig(hubCert, ca.Pool())
	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		id  string
		err error
	}
	accepted := make(chan result, 3)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				tc := nc.(*tls.Conn)
				if err := tc.Handshake(); err != nil {
					accepted <- result{err: err}
					return
				}
				accepted <- result{id: PeerIdentity(tc.ConnectionState())}
			}(nc)
		}
	}()

	dial := func(cfg *tls.Config) error {
		c, err := tls.Dial("tcp", ln.Addr().String(), cfg)
		if err != nil {
			return err
		}
		defer c.Close()
		return c.Handshake()
	}

	// Device shape: no client cert, server verified against the CA.
	if err := dial(ClientConfig(ca.Pool(), "")); err != nil {
		t.Fatalf("device handshake: %v", err)
	}
	if r := <-accepted; r.err != nil || r.id != "" {
		t.Fatalf("device session: identity %q err %v", r.id, r.err)
	}
	// Peer shape: mutual, identity = cert CN.
	if err := dial(PeerConfig(peerCert, ca.Pool(), "")); err != nil {
		t.Fatalf("peer handshake: %v", err)
	}
	if r := <-accepted; r.err != nil || r.id != "hub1" {
		t.Fatalf("peer session: identity %q err %v", r.id, r.err)
	}
	// Wrong-CA peer, polite client: Go withholds a cert whose issuer is
	// not in the server's advertised CA list, so the session completes
	// with NO identity — and the exchange's peer-hello identity check is
	// what refuses it. The invariant here: a wrong-CA cert never comes
	// out of PeerIdentity as an authenticated identity.
	if err := dial(PeerConfig(rogueCert, ca.Pool(), "")); err != nil {
		t.Fatalf("polite wrong-CA dial: %v", err)
	}
	if r := <-accepted; r.err != nil || r.id != "" {
		t.Fatalf("wrong-CA cert yielded identity %q (err %v)", r.id, r.err)
	}
	// Wrong-CA peer, hostile client: force the cert onto the wire —
	// the server's verification must kill the handshake.
	hostile := ClientConfig(ca.Pool(), "")
	hostile.GetClientCertificate = func(*tls.CertificateRequestInfo) (*tls.Certificate, error) {
		return &rogueCert, nil
	}
	if err := dial(hostile); err == nil {
		if r := <-accepted; r.err == nil {
			t.Fatal("forced wrong-CA peer cert accepted")
		}
	} else {
		<-accepted
	}
	// Client without the CA refuses the server.
	if err := dial(ClientConfig(rogueCA.Pool(), "")); err == nil {
		t.Fatal("client trusted a server outside its CA")
	}
}

// TestCASaveLoad round-trips the CA through PEM files and issues a
// working cert from the reloaded CA.
func TestCASaveLoad(t *testing.T) {
	dir := t.TempDir()
	ca, err := NewCA("fleet-ca")
	if err != nil {
		t.Fatal(err)
	}
	certFile, keyFile := filepath.Join(dir, "ca.pem"), filepath.Join(dir, "ca-key.pem")
	if err := ca.Save(certFile, keyFile); err != nil {
		t.Fatal(err)
	}
	ca2, err := LoadCA(certFile, keyFile)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca2.IssueTLS("hub0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", ServerConfig(cert, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { nc.(*tls.Conn).Handshake(); nc.Close() }()
		}
	}()
	// Verified against the original CA's pool: same root.
	c, err := tls.Dial("tcp", ln.Addr().String(), ClientConfig(ca.Pool(), ""))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
