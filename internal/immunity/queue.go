package immunity

import (
	"sync"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
)

// Queue is the one ordered-coalescing delivery queue behind every
// asynchronous push path in the immunity tier: the Service's
// per-subscriber delta queues, the Exchange's per-session wire push
// queues, and the cluster's hub-to-hub forward outboxes. It owns a
// dedicated drain goroutine, so producers never block on a slow
// consumer, and it delivers strictly in enqueue order with optional
// coalescing: adjacent queued items the Merge hook accepts collapse
// into one delivery, so a consumer that fell behind a publish storm
// catches up in a single callback instead of chewing through a backlog
// of stale ones.
//
// A Deliver error ends the queue in one of two ways, chosen at
// construction:
//
//   - drop (default): the queue closes, pending items are discarded,
//     and OnDead fires once on a fresh goroutine — the session is
//     unusable and its owner must tear it down (the Exchange push
//     queues: a send failure means the wire session died).
//   - retry (RetryOnError): the failed item and everything behind it
//     stay queued and the drain parks until Resume — the cluster's
//     forward outboxes: a peer link redial replaces the session and
//     resumes the drain, so a forwarded confirmation is never silently
//     dropped by a transient partition (the receiving hub deduplicates,
//     making redelivery safe).
//
// Close stops the queue after delivering what is already enqueued (in
// retry mode: unless parked on a dead session) and waits for the drain
// goroutine to exit. Enqueue after Close is a no-op.
type Queue[T any] struct {
	cfg QueueConfig[T]

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []T
	inFlight int // items taken by the drain, not yet delivered or re-queued
	closed   bool
	paused   bool
	done     chan struct{}

	// Last values pushed to the shared Depth/InFlight gauges, so gauge
	// updates are deltas and several queues can share one instrument.
	repDepth    int
	repInFlight int
}

// QueueConfig configures a Queue.
type QueueConfig[T any] struct {
	// Deliver sends one (possibly merged) item, in order, on the drain
	// goroutine with no queue lock held. Required unless DeliverBatch is
	// set.
	Deliver func(T) error
	// DeliverBatch, when set, replaces Deliver: each drained (coalesced)
	// batch is handed over in one call, letting a stream transport write
	// every queued frame in a single syscall. An error applies to the
	// whole batch — drop mode kills the queue, retry mode re-queues the
	// entire batch and parks (redelivery of its already-sent prefix must
	// be safe for the receiver, as it is for every wire message).
	DeliverBatch func([]T) error
	// Merge, when set, coalesces two adjacent queued items: it returns
	// the combined item and true to merge, or false to keep them as
	// separate deliveries. Merge must not mutate prev or next in place —
	// queued items may be shared with other queues.
	Merge func(prev, next T) (T, bool)
	// OnDeliver, when set, observes each successful delivery (after
	// coalescing) — batching counters.
	OnDeliver func(T)
	// OnDead, when set, fires exactly once, on a fresh goroutine, when a
	// Deliver error kills a drop-mode queue — unless Close already
	// initiated teardown, in which case the error is the expected
	// consequence of the owner's shutdown and OnDead is suppressed (the
	// owner must not be told to tear down a session it is already
	// tearing down).
	OnDead func()
	// RetryOnError selects retry mode: a Deliver error re-queues the
	// failed item at the front and parks the drain until Resume.
	RetryOnError bool

	// Cap, when positive, bounds the queue: an Enqueue that would grow
	// the depth (queued + in-flight) past Cap first spills the oldest
	// queued items, handing each to OnDrop. Retry-mode outboxes use it
	// so a long partition costs bounded memory instead of an unbounded
	// backlog; receiver-side dedup plus the device tier's full-history
	// re-report on reconnect restore at-least-once delivery for what
	// was spilled. The newest item is never spilled.
	Cap int
	// OnDrop, when set, observes each item spilled by Cap, outside the
	// queue lock.
	OnDrop func(T)

	// Depth and InFlight, when set, track this queue's item counts live
	// as gauge deltas: Depth counts queued + in-flight items (what
	// Pending reports), InFlight counts only the batch the drain has
	// taken. Both instruments may be shared across queues — the gauge
	// then aggregates the fleet of sessions.
	Depth    *metrics.Gauge
	InFlight *metrics.Gauge
	// BatchSizes, when set, observes the length of every drained batch
	// after coalescing; CoalesceRatio observes raw/coalesced items per
	// drain (1 = nothing merged).
	BatchSizes    *metrics.Histogram
	CoalesceRatio *metrics.Histogram
}

// NewQueue starts a queue and its drain goroutine.
func NewQueue[T any](cfg QueueConfig[T]) *Queue[T] {
	q := &Queue[T]{cfg: cfg, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.drain()
	return q
}

// Enqueue appends an item, spilling the oldest queued items when a Cap
// is set and the depth would exceed it. Never blocks.
func (q *Queue[T]) Enqueue(v T) {
	var dropped []T
	q.mu.Lock()
	if !q.closed {
		q.queue = append(q.queue, v)
		if q.cfg.Cap > 0 {
			for len(q.queue)+q.inFlight > q.cfg.Cap && len(q.queue) > 1 {
				dropped = append(dropped, q.queue[0])
				q.queue = q.queue[1:]
			}
		}
		q.syncGaugesLocked()
		q.cond.Signal()
	}
	q.mu.Unlock()
	if q.cfg.OnDrop != nil {
		for _, d := range dropped {
			q.cfg.OnDrop(d)
		}
	}
}

// Resume un-parks a retry-mode drain after its session was replaced;
// the failed item is redelivered first. No-op when not parked.
func (q *Queue[T]) Resume() {
	q.mu.Lock()
	if q.paused {
		q.paused = false
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Pending returns how many items are queued plus how many the drain
// has taken but not yet delivered, so depth never under-reports by an
// in-flight batch; parked retry queues report their held-back items.
func (q *Queue[T]) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue) + q.inFlight
}

// syncGaugesLocked pushes the current depth/in-flight counts to the
// shared gauges as deltas. Callers hold q.mu; the gauge ops are
// atomics, so this is safe under the queue lock.
func (q *Queue[T]) syncGaugesLocked() {
	if q.cfg.Depth != nil {
		d := len(q.queue) + q.inFlight
		q.cfg.Depth.Add(int64(d - q.repDepth))
		q.repDepth = d
	}
	if q.cfg.InFlight != nil {
		q.cfg.InFlight.Add(int64(q.inFlight - q.repInFlight))
		q.repInFlight = q.inFlight
	}
}

// coalesce folds adjacent mergeable items of batch into single
// deliveries, preserving order relative to unmergeable ones.
func (q *Queue[T]) coalesce(batch []T) []T {
	if q.cfg.Merge == nil {
		return batch
	}
	out := batch[:0]
	for _, v := range batch {
		if len(out) > 0 {
			if merged, ok := q.cfg.Merge(out[len(out)-1], v); ok {
				out[len(out)-1] = merged
				continue
			}
		}
		out = append(out, v)
	}
	return out
}

// kill ends the queue after a drop-mode delivery error. It fires
// OnDead only when the owner had not already initiated teardown via
// Close — a delivery error racing Close is the expected consequence of
// the owner's own shutdown, and firing OnDead then would run the
// owner's teardown path a second time, concurrently.
func (q *Queue[T]) kill() {
	q.mu.Lock()
	ownerClosed := q.closed
	q.closed = true
	q.queue = nil
	q.inFlight = 0
	q.syncGaugesLocked()
	q.cond.Broadcast()
	q.mu.Unlock()
	if !ownerClosed && q.cfg.OnDead != nil {
		go q.cfg.OnDead()
	}
}

// drain delivers queued items in order until closed.
func (q *Queue[T]) drain() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for (len(q.queue) == 0 || q.paused) && !q.closed {
			q.cond.Wait()
		}
		if q.closed && (len(q.queue) == 0 || q.paused) {
			// Parked on a dead session at close: the leftovers cannot be
			// delivered — the peer-side state (resubscribe-from-seq,
			// receiver dedup) makes dropping them safe.
			q.queue = nil
			q.syncGaugesLocked()
			q.mu.Unlock()
			return
		}
		batch := q.queue
		raw := len(batch)
		q.queue = nil
		q.inFlight = raw
		q.syncGaugesLocked()
		q.mu.Unlock()
		batch = q.coalesce(batch)
		if len(batch) != raw {
			// Coalescing collapsed items: the in-flight count tracks what
			// remains to be delivered.
			q.mu.Lock()
			q.inFlight = len(batch)
			q.syncGaugesLocked()
			q.mu.Unlock()
		}
		if q.cfg.BatchSizes != nil {
			q.cfg.BatchSizes.Observe(float64(len(batch)))
		}
		if q.cfg.CoalesceRatio != nil && len(batch) > 0 {
			q.cfg.CoalesceRatio.Observe(float64(raw) / float64(len(batch)))
		}
		if q.cfg.DeliverBatch != nil {
			if err := q.cfg.DeliverBatch(batch); err != nil {
				if !q.cfg.RetryOnError {
					q.kill()
					return
				}
				q.mu.Lock()
				q.queue = append(batch, q.queue...)
				q.inFlight = 0
				q.paused = true
				q.syncGaugesLocked()
				q.mu.Unlock()
				continue
			}
			q.settleBatch(len(batch))
			if q.cfg.OnDeliver != nil {
				for _, v := range batch {
					q.cfg.OnDeliver(v)
				}
			}
			continue
		}
		for i, v := range batch {
			if err := q.cfg.Deliver(v); err != nil {
				if !q.cfg.RetryOnError {
					q.kill()
					return
				}
				q.mu.Lock()
				// Park with the failed item and everything behind it
				// (including anything enqueued since) intact.
				q.queue = append(batch[i:], q.queue...)
				q.inFlight = 0
				q.paused = true
				q.syncGaugesLocked()
				q.mu.Unlock()
				break
			}
			q.settleBatch(1)
			if q.cfg.OnDeliver != nil {
				q.cfg.OnDeliver(v)
			}
		}
	}
}

// settleBatch retires n delivered (coalesced) items from the in-flight
// count.
func (q *Queue[T]) settleBatch(n int) {
	q.mu.Lock()
	q.inFlight -= n
	if q.inFlight < 0 {
		q.inFlight = 0
	}
	q.syncGaugesLocked()
	q.mu.Unlock()
}

// Close stops the queue after delivering what is already enqueued, and
// waits for the drain goroutine to exit. Idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}
