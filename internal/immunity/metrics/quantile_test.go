package metrics

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %v, want 0", got)
	}
}

func TestQuantileAllInFirstBucket(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.01 {
			t.Fatalf("Quantile(%v) = %v, want first bound 0.01", q, got)
		}
	}
}

func TestQuantileBeyondLastFiniteBucket(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	// Every observation overflows the finite ladder into +Inf; the
	// estimate clamps to the largest finite bound rather than inventing
	// an infinite latency.
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	for _, q := range []float64{0.5, 0.99} {
		if got := h.Quantile(q); got != 1 {
			t.Fatalf("Quantile(%v) = %v, want largest finite bound 1", q, got)
		}
	}
	// A histogram with no finite buckets at all has only +Inf to offer.
	inf := newHistogram(nil)
	inf.Observe(3)
	if got := inf.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("bucketless Quantile = %v, want +Inf", got)
	}
}

// TestQuantileMatchesExportedBuckets cross-checks Quantile against the
// rendered _bucket cumulative counts: an independent reimplementation
// over the text exposition must agree with the in-memory answer.
func TestQuantileMatchesExportedBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("xcheck_seconds", "Cross-check.", DurationBuckets())
	for i := 0; i < 500; i++ {
		h.Observe(float64(i%97) * 0.001) // 0..96ms spread over several buckets
	}
	h.Observe(1e6) // one +Inf-bucket overflow

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^xcheck_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	var bounds []float64
	var cums []uint64
	for _, m := range re.FindAllStringSubmatch(b.String(), -1) {
		bound, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("unparseable le %q", m[1])
		}
		cum, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bound)
		cums = append(cums, cum)
	}
	if len(bounds) != len(DurationBuckets())+1 {
		t.Fatalf("rendered %d buckets, want %d", len(bounds), len(DurationBuckets())+1)
	}
	total := cums[len(cums)-1]
	if total != h.Count() {
		t.Fatalf("+Inf cumulative %d != Count %d", total, h.Count())
	}
	quantileFromText := func(q float64) float64 {
		rank := uint64(math.Ceil(q * float64(total)))
		if rank < 1 {
			rank = 1
		}
		for i, cum := range cums {
			if cum >= rank {
				if !math.IsInf(bounds[i], 1) {
					return bounds[i]
				}
				return bounds[len(bounds)-2] // largest finite bound
			}
		}
		return math.Inf(1)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		want := quantileFromText(q)
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, exported buckets say %v", q, got, want)
		}
	}
}
