package metrics

import (
	"os"
	"strings"
	"testing"
	"time"
)

// populateRegistry exercises every instrument kind the registry renders:
// counters, gauges, float gauges, labeled vecs (including values that
// need escaping), histograms, pool admission series, build info, and the
// raw-labeled rate gauges.
func populateRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("immunity_hub_reports_total", "Reports.").Add(42)
	reg.Gauge("immunity_hub_devices", "Devices.").Set(7)
	reg.FloatGauge("immunity_hub_uptime_seconds", "Uptime.").Set(12.5)
	v := reg.CounterVec("immunity_cluster_peer_forwards_total", "Forwards.", "peer")
	v.With("hub1").Add(3)
	v.With(`we"ird\pe er` + "\n").Add(1) // escaping must round-trip the lint grammar
	h := reg.Histogram("immunity_hub_report_seconds", "Latency.", DurationBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.0001)
	}
	h.Observe(1e9) // +Inf bucket
	p := NewPool(reg, "immunity_hub_admission", 1, 0)
	if release, ok := p.Acquire(); ok {
		if _, ok := p.Acquire(); ok {
			t.Fatal("second acquire should shed")
		}
		release()
	}
	reg.Info("immunity_build_info", "Build metadata.",
		[2]string{"version", "test"}, [2]string{"wire_min", "1"}, [2]string{"wire_max", "3"})

	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{10 * time.Second, time.Minute}})
	r.TrackCounter("immunity_hub_reports_total")
	r.TrackCounter("immunity_cluster_peer_forwards_total")
	r.TrackHistogram("immunity_hub_report_seconds")
	e := NewEvaluator(reg, r, []SLO{
		{Name: "report-latency", QuantileOf: "immunity_hub_report_seconds", Target: 0.025},
		{Name: "shed-zero", RateOf: "immunity_hub_admission_shed_total", Target: 0},
	})
	if e == nil {
		t.Fatal("evaluator should construct")
	}
	r.Tick()
	r.Tick()
	return reg
}

func TestLintCleanOnPopulatedRegistry(t *testing.T) {
	reg := populateRegistry(t)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(strings.NewReader(b.String())); len(problems) != 0 {
		t.Fatalf("renderer emitted a non-conforming exposition:\n%s\n---\n%s",
			strings.Join(problems, "\n"), b.String())
	}
}

func TestLintFlagsCorruptedExpositions(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of at least one problem
	}{
		{
			"help after type",
			"# TYPE a counter\n# HELP a help\na 1\n",
			"HELP for a after its TYPE",
		},
		{
			"second help",
			"# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n",
			"second HELP",
		},
		{
			"sample before type",
			"a 1\n",
			"before any TYPE",
		},
		{
			"unknown type",
			"# TYPE a enum\na 1\n",
			`unknown TYPE "enum"`,
		},
		{
			"reopened family",
			"# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE a counter\na 2\n",
			"reopened",
		},
		{
			"nonmonotone le",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"not strictly increasing",
		},
		{
			"decreasing cumulative counts",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative count decreased",
		},
		{
			"ladder missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_sum 1\nh_count 2\n",
			"does not end at +Inf",
		},
		{
			"count disagrees with +Inf bucket",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
			"_count 4 != +Inf bucket 5",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		{
			"bad escape",
			"# TYPE a counter\na{x=\"v\\t\"} 1\n",
			`illegal escape \t`,
		},
		{
			"duplicate label",
			"# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n",
			`duplicate label "x"`,
		},
		{
			"unquoted label value",
			"# TYPE a counter\na{x=v} 1\n",
			"not quoted",
		},
		{
			"non-float value",
			"# TYPE a counter\na pizza\n",
			"not a float",
		},
		{
			"illegal metric name",
			"# TYPE 9a counter\n9a 1\n",
			"illegal metric name",
		},
		{
			"type but no samples",
			"# TYPE a counter\n# TYPE b counter\nb 1\n",
			"TYPE but no samples",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Lint(strings.NewReader(tc.text))
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}

func TestLintAcceptsTimestampsAndFreeComments(t *testing.T) {
	text := "# a free comment\n# HELP a help text with  spaces\n# TYPE a counter\na{x=\"ok\"} 1 1712000000\n"
	if problems := Lint(strings.NewReader(text)); len(problems) != 0 {
		t.Fatalf("valid exposition flagged: %v", problems)
	}
}

// TestPromLintFile lints an exposition file named by PROMLINT_FILE — CI
// points it at a live immunityd /metrics scrape.
func TestPromLintFile(t *testing.T) {
	path := os.Getenv("PROMLINT_FILE")
	if path == "" {
		t.Skip("PROMLINT_FILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if problems := Lint(f); len(problems) != 0 {
		t.Fatalf("live scrape %s is non-conforming:\n%s", path, strings.Join(problems, "\n"))
	}
}
