// Package metrics is the immunity tier's dependency-free observability
// registry: counters, gauges, and fixed-bucket histograms, rendered in
// the Prometheus text exposition format (served by cmd/immunityd at
// /metrics, next to /status).
//
// The design goal is that instruments are safe to touch from any hot
// path, under any subsystem lock. Two rules make that hold:
//
//   - Instrument operations (Counter.Add, Gauge.Set, Histogram.Observe,
//     Vec.With on a warmed label) are lock-free atomics. They never take
//     the registry lock, so callers may invoke them while holding
//     Exchange.mu, cluster link locks, or Queue locks.
//   - The registry mutexes (Registry.mu and each Vec's series lock) are
//     leaves in the global lock order: no registry or instrument method
//     calls back into caller code, so registering or rendering can never
//     deadlock against a subsystem lock. Registration normally happens
//     once at construction; WritePrometheus takes the registry locks
//     only to snapshot atomic values.
//
// Every constructor is idempotent by metric name: asking the same
// registry for the same name returns the existing instrument (and
// panics on a type mismatch — a programming error). That lets several
// hubs in one process share one registry: each grabs the same counters
// and the rendered values aggregate the fleet. For the same reason
// gauges here only support relative updates through shared instruments
// (Add) or whole-owner updates (Set) — prefer Add(±n) deltas when an
// instrument is shared across owners.
//
// All methods are nil-receiver safe: a nil *Registry hands out nil
// instruments and every operation on a nil instrument is a no-op, so
// subsystems thread an optional registry without guarding call sites.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set replaces the gauge value. Only use when this owner is the sole
// writer; shared gauges must use Add deltas.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a float-valued instantaneous value (per-second rates,
// uptime seconds). It only supports whole-owner Set: the writers are
// single-owner samplers, never shared hot paths.
type FloatGauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns an upper-bound estimate for quantile q (0..1) from
// the bucket counts: the upper bound of the first bucket whose
// cumulative count covers q. +Inf observations report the largest
// finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantileFromCounts(h.upper, h.bucketCounts(), q)
}

// bucketCounts snapshots the per-bucket (non-cumulative) counts; the
// last slot is the +Inf bucket.
func (h *Histogram) bucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// quantileFromCounts is Quantile's engine over an explicit per-bucket
// count snapshot (len(upper)+1 slots, +Inf last), shared with the
// windowed quantiles of the Rates sampler.
func quantileFromCounts(upper []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(upper) {
				return upper[i]
			}
			if len(upper) > 0 {
				return upper[len(upper)-1]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// DurationBuckets are histogram bounds (seconds) spanning 100µs..10s,
// sized for push-path latencies.
func DurationBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// SizeBuckets are histogram bounds for batch sizes (items).
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// RatioBuckets are histogram bounds for coalesce ratios (raw items per
// delivered item; 1 means no coalescing happened).
func RatioBuckets() []float64 {
	return []float64{1, 1.5, 2, 3, 5, 8, 16, 32, 64}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one registered metric name: its metadata plus either a
// single unlabeled instrument or a set of labeled series.
type family struct {
	name     string
	help     string
	typ      string
	labelKey string // "" for unlabeled families
	raw      bool   // series keys are pre-rendered label blocks ({a="x",b="y"})
	buckets  []float64

	mu     sync.Mutex
	series map[string]any // label value -> *Counter/*Gauge/*FloatGauge/*Histogram
	order  []string       // label values in first-seen order
}

func (f *family) get(label string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[label]; ok {
		return m
	}
	m := mk()
	f.series[label] = m
	f.order = append(f.order, label)
	return m
}

// Registry holds a process's metric families in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ, labelKey string, buckets []float64) *family {
	return r.familyRaw(name, help, typ, labelKey, buckets, false)
}

func (r *Registry) familyRaw(name, help, typ, labelKey string, buckets []float64, raw bool) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || f.labelKey != labelKey || f.raw != raw {
			panic(fmt.Sprintf("metrics: %q re-registered as %s/%q (was %s/%q)",
				name, typ, labelKey, f.typ, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelKey: labelKey, raw: raw,
		buckets: buckets, series: make(map[string]any)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// lookupFamily returns the family registered under name, or nil. Used
// by the Rates sampler to resolve tracked families lazily, so series
// that first appear after tracking starts (a peer link's labeled
// counters, say) are still picked up.
func (r *Registry) lookupFamily(name string) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Counter returns the counter registered under name, creating it on
// first use. Nil-safe: a nil registry returns a nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeCounter, "", nil)
	return f.get("", func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeGauge, "", nil)
	return f.get("", func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram registered under name. The buckets
// of the first registration win; bounds must be ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeHistogram, "", buckets)
	return f.get("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// FloatGauge returns the float gauge registered under name.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, typeGauge, "", nil)
	return f.get("", func() any { return new(FloatGauge) }).(*FloatGauge)
}

// Info registers the Prometheus info-metric idiom: a constant 1-valued
// gauge whose label pairs carry identity (build version, wire range) a
// plain sample can't — scrapes join it against counters to tell a
// restart from a counter reset. Pairs render in the given order.
func (r *Registry) Info(name, help string, pairs ...[2]string) {
	if r == nil {
		return
	}
	f := r.familyRaw(name, help, typeGauge, "", nil, true)
	f.get(renderLabels(pairs), func() any { return new(Gauge) }).(*Gauge).Set(1)
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// CounterVec is a family of counters distinguished by one label.
type CounterVec struct {
	f *family
}

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, typeCounter, labelKey, nil)}
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(label, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a family of gauges distinguished by one label.
type GaugeVec struct {
	f *family
}

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, typeGauge, labelKey, nil)}
}

// With returns the gauge for one label value.
func (v *GaugeVec) With(label string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(label, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeValue reads a gauge family's instantaneous value: the series
// selected by label, or — when label is "" — the sum across every
// series in the family (a queue-depth family summed across peers).
// The second return reports whether the family exists and a matching
// gauge series was found. Nil-safe.
func (r *Registry) GaugeValue(name, label string) (float64, bool) {
	f := r.lookupFamily(name)
	if f == nil || f.typ != typeGauge {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sum, found := 0.0, false
	for l, m := range f.series {
		if label != "" && l != label {
			continue
		}
		switch inst := m.(type) {
		case *Gauge:
			sum += float64(inst.Value())
			found = true
		case *FloatGauge:
			sum += inst.Value()
			found = true
		}
	}
	return sum, found
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		f.mu.Lock()
		labels := make([]string, len(f.order))
		copy(labels, f.order)
		series := make(map[string]any, len(f.series))
		for k, v := range f.series {
			series[k] = v
		}
		f.mu.Unlock()
		if len(labels) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, label := range labels {
			writeSeries(&b, f, label, series[label])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, label string, m any) {
	suffix := labelSuffix(f.labelKey, label)
	if f.raw {
		suffix = label // the series key is the rendered label block
	}
	switch inst := m.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, suffix, inst.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %d\n", f.name, suffix, inst.Value())
	case *FloatGauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, suffix, formatFloat(inst.Value()))
	case *Histogram:
		var cum uint64
		for i, upper := range inst.upper {
			cum += inst.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				bucketSuffix(f.labelKey, label, formatFloat(upper)), cum)
		}
		cum += inst.counts[len(inst.upper)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			bucketSuffix(f.labelKey, label, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, suffix, formatFloat(inst.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, suffix, cum)
	}
}

// labelSuffix renders the one-label selector; %q matches Prometheus
// label escaping (backslash, quote, newline).
func labelSuffix(key, value string) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", key, value)
}

// renderLabels renders ordered label pairs as one {k="v",...} block —
// the series key of a raw family (Info, the rate gauges).
func renderLabels(pairs [][2]string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

func bucketSuffix(key, value, le string) string {
	if key == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s=%q,le=%q}", key, value, le)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
