package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reports_total", "Total reports.")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter value = %d, want 4", got)
	}
	g := reg.Gauge("sessions", "Live sessions.")
	g.Add(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value = %d, want 3", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reports_total counter",
		"reports_total 4",
		"# TYPE sessions gauge",
		"sessions 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryIdempotentByName(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("idempotent counter not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch on re-register should panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if s := h.Sum(); s < 5.56 || s > 5.57 {
		t.Fatalf("sum = %v, want ~5.565", s)
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Fatalf("p50 = %v, want 0.1 (bucket upper bound)", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %v, want 1 (largest finite bound for +Inf sample)", q)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestVecSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("peer_dials_total", "Dial attempts per peer.", "peer")
	v.With("hub1").Add(2)
	v.With("hub2").Inc()
	if v.With("hub1").Value() != 2 {
		t.Fatal("labeled counter not stable across With calls")
	}
	g := reg.GaugeVec("outbox_pending", "Forward outbox depth.", "peer")
	g.With("hub1").Add(7)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`peer_dials_total{peer="hub1"} 2`,
		`peer_dials_total{peer="hub2"} 1`,
		`outbox_pending{peer="hub1"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var reg *Registry
	reg.Counter("a", "").Add(1)
	reg.Gauge("b", "").Set(2)
	reg.Histogram("c", "", DurationBuckets()).Observe(1)
	reg.CounterVec("d", "", "k").With("v").Inc()
	reg.GaugeVec("e", "", "k").With("v").Add(1)
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var p *Pool
	release, ok := p.Acquire()
	if !ok {
		t.Fatal("nil pool must admit")
	}
	release()
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DurationBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if s := h.Sum(); s < 7.99 || s > 8.01 {
		t.Fatalf("sum = %v, want ~8", s)
	}
}

func TestPoolAdmitDelayShed(t *testing.T) {
	reg := NewRegistry()
	p := NewPool(reg, "admission", 1, 50*time.Millisecond)

	release, ok := p.Acquire()
	if !ok {
		t.Fatal("first acquire should admit immediately")
	}
	if p.Admitted() != 1 {
		t.Fatalf("admitted = %d, want 1", p.Admitted())
	}

	// Second acquire waits; release the first permit shortly after so
	// it lands as delayed.
	go func() {
		time.Sleep(10 * time.Millisecond)
		release()
	}()
	release2, ok := p.Acquire()
	if !ok {
		t.Fatal("second acquire should be delayed, not shed")
	}
	if p.Delayed() != 1 {
		t.Fatalf("delayed = %d, want 1", p.Delayed())
	}

	// Third acquire while the permit is held sheds at max wait.
	if _, ok := p.Acquire(); ok {
		t.Fatal("third acquire should shed")
	}
	if p.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", p.Shed())
	}
	release2()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"admission_admitted_total 1",
		"admission_delayed_total 1",
		"admission_shed_total 1",
		"admission_in_use 0",
		"admission_capacity 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNewPoolZeroCapacityDisabled(t *testing.T) {
	if p := NewPool(NewRegistry(), "x", 0, time.Second); p != nil {
		t.Fatal("capacity 0 should disable admission (nil pool)")
	}
}
