package metrics

import (
	"testing"
	"time"
)

// TestAIMDSlowStartRecoverySlope: after a breach cuts capacity, the
// recovery under an ok SLO with demand doubles per tick up to the
// last-known-good capacity, then falls back to additive +Step probing
// — the slope is 1→2→4→8→16→32, then 33, 34, ... instead of six
// minutes of +1 ticks.
func TestAIMDSlowStartRecoverySlope(t *testing.T) {
	reg := NewRegistry()
	a := NewAdaptivePool(reg, "test_pool", time.Second, AIMDConfig{
		SLO: "lat", Initial: 32, Min: 1, Max: 64, Step: 1, Backoff: 0.03,
	})

	// Breach at capacity 32: the multiplicative cut floors at Min and
	// records 32 as last-known-good.
	a.stepVerdict(false, true, SLOBreach, true)
	if got := a.Capacity(); got != 1 {
		t.Fatalf("capacity after breach = %d, want 1", got)
	}
	if a.Decreases() != 1 {
		t.Fatalf("decreases = %d, want 1", a.Decreases())
	}

	// Recovery: each ok-with-demand tick doubles toward 32, then +1.
	want := []int{2, 4, 8, 16, 32, 33, 34}
	for i, w := range want {
		a.stepVerdict(false, true, SLOOK, true)
		if got := a.Capacity(); got != w {
			t.Fatalf("recovery tick %d: capacity = %d, want %d (slope %v)", i+1, got, w, want)
		}
	}
	if got := a.Increases(); got != uint64(len(want)) {
		t.Fatalf("increases = %d, want %d", got, len(want))
	}

	// No demand, no probe — slow-start must not creep an idle pool up.
	a.stepVerdict(false, true, SLOBreach, true) // re-cut from 34
	if got := a.Capacity(); got != 1 {
		t.Fatalf("capacity after second breach = %d, want 1", got)
	}
	a.stepVerdict(false, false, SLOOK, true)
	if got := a.Capacity(); got != 1 {
		t.Fatalf("capacity grew without demand: %d", got)
	}
	// Warn holds capacity even with demand (hysteresis).
	a.stepVerdict(false, true, SLOWarn, true)
	if got := a.Capacity(); got != 1 {
		t.Fatalf("capacity moved on warn: %d", got)
	}
	// And the new last-known-good is 34: doubling caps there.
	for i := 0; i < 10; i++ {
		a.stepVerdict(false, true, SLOOK, true)
	}
	// 1→2→4→8→16→32→34 (capped), then +1 per tick: 10 ticks land on 38.
	if got := a.Capacity(); got != 38 {
		t.Fatalf("capacity after 10 recovery ticks = %d, want 38", got)
	}
}
