package metrics

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"sync"
	"time"
)

// Alert is one breach/clear notification as delivered to the sinks:
// the JSON body of the webhook POST, and the IMMUNITY_ALERT_* env of
// the exec hook.
type Alert struct {
	// SLO is the objective's name; Kind is "breach" or "clear".
	SLO  string `json:"slo"`
	Kind string `json:"kind"`
	// Observed/Target/Window are the objective's reading at the
	// transition tick.
	Observed float64 `json:"observed"`
	Target   float64 `json:"target"`
	Window   string  `json:"window"`
	// Breaches is the objective's lifetime escalation count.
	Breaches uint64    `json:"breaches_total"`
	At       time.Time `json:"at"`
}

// AlertConfig shapes the egress sinks. Both may be set; both may be
// empty (the alerter still tracks transitions and counts, useful for
// tests and dry runs).
type AlertConfig struct {
	// URL receives one HTTP POST per alert with the Alert JSON body.
	URL string
	// Exec is a shell command run per alert ("sh -c"), with the alert
	// in IMMUNITY_ALERT_SLO, _KIND, _OBSERVED, _TARGET, _WINDOW env.
	Exec string
	// Cooldown suppresses a repeat of the same (slo, kind) alert within
	// the window — a flapping objective pages once, not per flap
	// (default 1m; negative disables the guard).
	Cooldown time.Duration
	// Timeout bounds one webhook POST or exec run (default 5s).
	Timeout time.Duration
}

// Alerter turns SLO state transitions into egress: breach and
// breach→ok clear transitions (warn is hysteresis, not pageable) fire
// a webhook POST and/or an exec hook, deduplicated by a per-(slo,kind)
// cooldown, counted on
//
//	immunity_slo_alerts_total{slo="..."}          alerts emitted
//	immunity_slo_alert_failures_total             deliveries that failed
//
// Delivery runs on its own goroutines — a slow webhook never stalls
// the evaluation tick. Watch registers on the evaluator's verdict
// hook; Close waits for in-flight deliveries.
type Alerter struct {
	cfg    AlertConfig
	sent   *CounterVec
	failed *Counter

	client *http.Client
	now    func() time.Time // test seam
	wg     sync.WaitGroup

	mu       sync.Mutex
	states   map[string]string    // last seen state per objective
	lastSent map[string]time.Time // (slo|kind) -> last emission
}

// NewAlerter builds the alerter and registers its counters. A nil
// registry disables counting but not delivery.
func NewAlerter(reg *Registry, cfg AlertConfig) *Alerter {
	if cfg.Cooldown == 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	return &Alerter{
		cfg: cfg,
		sent: reg.CounterVec("immunity_slo_alerts_total",
			"SLO breach/clear alerts emitted to the configured sinks.", "slo"),
		failed: reg.Counter("immunity_slo_alert_failures_total",
			"Alert deliveries that failed (webhook non-2xx/error, exec failure)."),
		client:   &http.Client{Timeout: cfg.Timeout},
		now:      time.Now,
		states:   make(map[string]string),
		lastSent: make(map[string]time.Time),
	}
}

// Watch registers the alerter on the evaluator's verdict hook: after
// every evaluation tick it diffs each objective's state against the
// last tick and emits on pageable transitions.
func (a *Alerter) Watch(e *Evaluator) {
	if a == nil || e == nil {
		return
	}
	e.OnVerdict(func() { a.check(e.Snapshot()) })
}

// check diffs one snapshot against the remembered states and fires the
// alerts the transitions warrant. Exported to the package's tests via
// Watch; callable directly with a hand-built snapshot.
func (a *Alerter) check(snap []SLOStatus) {
	for _, st := range snap {
		a.mu.Lock()
		prev, seen := a.states[st.Name]
		a.states[st.Name] = st.State
		a.mu.Unlock()
		switch {
		case st.State == "breach" && prev != "breach":
			a.emit("breach", st)
		case seen && prev == "breach" && st.State == "ok":
			a.emit("clear", st)
		}
	}
}

// emit applies the cooldown guard, counts the alert, and hands it to
// the sinks asynchronously.
func (a *Alerter) emit(kind string, st SLOStatus) {
	now := a.now()
	dedupKey := st.Name + "|" + kind
	a.mu.Lock()
	if a.cfg.Cooldown > 0 {
		if last, ok := a.lastSent[dedupKey]; ok && now.Sub(last) < a.cfg.Cooldown {
			a.mu.Unlock()
			return
		}
	}
	a.lastSent[dedupKey] = now
	a.mu.Unlock()

	a.sent.With(st.Name).Inc()
	alert := Alert{SLO: st.Name, Kind: kind, Observed: st.Observed,
		Target: st.Target, Window: st.Window, Breaches: st.Breaches, At: now}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.deliver(alert)
	}()
}

func (a *Alerter) deliver(alert Alert) {
	if a.cfg.URL != "" {
		if err := a.post(alert); err != nil {
			a.failed.Inc()
		}
	}
	if a.cfg.Exec != "" {
		if err := a.run(alert); err != nil {
			a.failed.Inc()
		}
	}
}

func (a *Alerter) post(alert Alert) error {
	body, err := json.Marshal(alert)
	if err != nil {
		return err
	}
	resp, err := a.client.Post(a.cfg.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("alert webhook: %s", resp.Status)
	}
	return nil
}

func (a *Alerter) run(alert Alert) error {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, "sh", "-c", a.cfg.Exec)
	cmd.Env = append(cmd.Environ(),
		"IMMUNITY_ALERT_SLO="+alert.SLO,
		"IMMUNITY_ALERT_KIND="+alert.Kind,
		fmt.Sprintf("IMMUNITY_ALERT_OBSERVED=%g", alert.Observed),
		fmt.Sprintf("IMMUNITY_ALERT_TARGET=%g", alert.Target),
		"IMMUNITY_ALERT_WINDOW="+alert.Window,
	)
	return cmd.Run()
}

// Close waits for in-flight deliveries to finish.
func (a *Alerter) Close() {
	if a == nil {
		return
	}
	a.wg.Wait()
}
