package metrics

import (
	"sync"
	"time"
)

// SLOState is an objective's position in the ok/warn/breach machine.
type SLOState int

const (
	// SLOOK: the objective holds.
	SLOOK SLOState = iota
	// SLOWarn: violating, but not for long enough to page.
	SLOWarn
	// SLOBreach: violated for BreachAfter consecutive ticks.
	SLOBreach
)

func (s SLOState) String() string {
	switch s {
	case SLOWarn:
		return "warn"
	case SLOBreach:
		return "breach"
	default:
		return "ok"
	}
}

// SLO declares one objective over the Rates sampler: a windowed
// histogram quantile (p99 report latency < target seconds), a windowed
// counter rate (shed rate == 0), or an instantaneous gauge reading
// (push backlog < target frames). The objective holds while the
// observed value is <= Target; a window with no data holds trivially —
// an idle system breaches nothing.
type SLO struct {
	// Name identifies the objective (the slo label of its state gauge
	// and its entry on /slo).
	Name string

	// QuantileOf names a histogram family; the observed value is its
	// Quantile (default 0.99) over the trailing Window. Takes precedence
	// over RateOf.
	QuantileOf string
	Quantile   float64

	// RateOf names a counter family; the observed value is its
	// per-second rate over the trailing Window.
	RateOf string

	// GaugeOf names a gauge family; the observed value is the
	// instantaneous reading at tick time — no windowing — of the
	// Label-selected series, or the sum across every series when Label
	// is "" (a backlog family summed across peers). Evaluated only when
	// QuantileOf and RateOf are empty.
	GaugeOf string

	// Label selects one series of a labeled source family ("" for the
	// unlabeled instrument; for GaugeOf, "" sums the family).
	Label string

	// Window is the trailing evaluation window (default: the sampler's
	// shortest window).
	Window time.Duration

	// Target is the inclusive ceiling the observed value must stay at
	// or under (seconds for quantile objectives, per-second for rates).
	Target float64

	// BreachAfter is how many consecutive violating ticks escalate to
	// breach (default 2; 1 skips warn entirely). ClearAfter is how many
	// consecutive holding ticks return any violation state to ok
	// (default 3).
	BreachAfter int
	ClearAfter  int
}

// SLOTransition records one state change.
type SLOTransition struct {
	From string    `json:"from"`
	To   string    `json:"to"`
	At   time.Time `json:"at"`
}

// SLOStatus is one objective's evaluation snapshot (the /slo payload).
type SLOStatus struct {
	Name     string  `json:"name"`
	State    string  `json:"state"`
	Observed float64 `json:"observed"`
	Target   float64 `json:"target"`
	Window   string  `json:"window"`
	// HasData reports whether the window held any observation at the
	// last tick; Observed is 0, not meaningful, without it.
	HasData bool `json:"has_data"`
	// Breaches counts ok/warn→breach escalations since start.
	Breaches       uint64         `json:"breaches_total"`
	LastTransition *SLOTransition `json:"last_transition,omitempty"`
}

// Evaluator drives declared SLOs off the Rates ticker: every tick it
// computes each objective's observed value, advances the ok/warn/breach
// machine, and exports the verdicts as
//
//	immunity_slo_state{slo="report-latency"}    0 ok / 1 warn / 2 breach
//	immunity_slo_breaches_total{slo="..."}      escalations to breach
//
// The hysteresis is deliberate: one bad tick is warn (noise-tolerant),
// BreachAfter consecutive bad ticks breach (pageable), ClearAfter
// consecutive good ticks recover — so the breach→ok transition after a
// storm is a real drain signal, not a flap. Controllers registered with
// OnVerdict (the AIMD admission pool) run after every evaluation tick,
// outside the evaluator lock.
type Evaluator struct {
	reg   *Registry
	rates *Rates

	mu       sync.Mutex
	slos     []*sloEval
	verdicts []func()
}

type sloEval struct {
	cfg        SLO
	state      SLOState
	badStreak  int
	goodStreak int
	observed   float64
	hasData    bool
	breaches   uint64
	last       *SLOTransition
	stateGauge *Gauge
	breachCtr  *Counter
}

// NewEvaluator declares the objectives and registers the evaluator on
// the sampler's tick. Source families are auto-tracked on rates. A nil
// registry or sampler returns nil (evaluation disabled; nil-safe).
func NewEvaluator(reg *Registry, rates *Rates, slos []SLO) *Evaluator {
	if reg == nil || rates == nil {
		return nil
	}
	e := &Evaluator{reg: reg, rates: rates}
	stateVec := reg.GaugeVec("immunity_slo_state",
		"SLO state machine position per objective: 0 ok, 1 warn, 2 breach.", "slo")
	breachVec := reg.CounterVec("immunity_slo_breaches_total",
		"Escalations to breach per objective.", "slo")
	for _, cfg := range slos {
		if cfg.QuantileOf != "" {
			if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
				cfg.Quantile = 0.99
			}
			rates.TrackHistogram(cfg.QuantileOf)
		} else if cfg.RateOf != "" {
			rates.TrackCounter(cfg.RateOf)
		}
		if cfg.Window <= 0 {
			cfg.Window = rates.windows[0]
		}
		if cfg.BreachAfter <= 0 {
			cfg.BreachAfter = 2
		}
		if cfg.ClearAfter <= 0 {
			cfg.ClearAfter = 3
		}
		s := &sloEval{cfg: cfg,
			stateGauge: stateVec.With(cfg.Name),
			breachCtr:  breachVec.With(cfg.Name)}
		s.stateGauge.Set(int64(SLOOK))
		e.slos = append(e.slos, s)
	}
	rates.OnTick(e.tick)
	return e
}

// OnVerdict registers fn to run after every evaluation tick, outside
// the evaluator lock (fn may call State/Snapshot freely).
func (e *Evaluator) OnVerdict(fn func()) {
	if e == nil || fn == nil {
		return
	}
	e.mu.Lock()
	e.verdicts = append(e.verdicts, fn)
	e.mu.Unlock()
}

func (e *Evaluator) tick() {
	e.mu.Lock()
	now := time.Now()
	for _, s := range e.slos {
		s.observed, s.hasData = e.observe(s.cfg)
		bad := s.hasData && s.observed > s.cfg.Target
		prev := s.state
		if bad {
			s.badStreak++
			s.goodStreak = 0
			if s.badStreak >= s.cfg.BreachAfter {
				s.state = SLOBreach
			} else if s.state == SLOOK {
				s.state = SLOWarn
			}
		} else {
			s.goodStreak++
			s.badStreak = 0
			if s.state != SLOOK && s.goodStreak >= s.cfg.ClearAfter {
				s.state = SLOOK
			}
		}
		if s.state != prev {
			s.last = &SLOTransition{From: prev.String(), To: s.state.String(), At: now}
			if s.state == SLOBreach {
				s.breaches++
				s.breachCtr.Inc()
			}
		}
		s.stateGauge.Set(int64(s.state))
	}
	fns := append([]func(){}, e.verdicts...)
	e.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

func (e *Evaluator) observe(cfg SLO) (float64, bool) {
	if cfg.QuantileOf != "" {
		return e.rates.WindowQuantile(cfg.QuantileOf, cfg.Label, cfg.Quantile, cfg.Window)
	}
	if cfg.RateOf != "" {
		return e.rates.Rate(cfg.RateOf, cfg.Label, cfg.Window)
	}
	if cfg.GaugeOf != "" {
		return e.reg.GaugeValue(cfg.GaugeOf, cfg.Label)
	}
	return 0, false
}

// State returns the named objective's current state.
func (e *Evaluator) State(name string) (SLOState, bool) {
	if e == nil {
		return SLOOK, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range e.slos {
		if s.cfg.Name == name {
			return s.state, true
		}
	}
	return SLOOK, false
}

// Snapshot returns every objective's status in declaration order.
func (e *Evaluator) Snapshot() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.slos))
	for _, s := range e.slos {
		st := SLOStatus{
			Name:     s.cfg.Name,
			State:    s.state.String(),
			Observed: s.observed,
			Target:   s.cfg.Target,
			Window:   windowLabel(s.cfg.Window),
			HasData:  s.hasData,
			Breaches: s.breaches,
		}
		if s.last != nil {
			t := *s.last
			st.LastTransition = &t
		}
		out = append(out, st)
	}
	return out
}
