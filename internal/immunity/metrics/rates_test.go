package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRatesCounterWindows(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reports_total", "Reports.")
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second, 10 * time.Second}})
	r.TrackCounter("reports_total")

	r.Tick() // baseline sample
	c.Add(10)
	r.Tick() // 10 in 1 tick

	if rate, ok := r.Rate("reports_total", "", 2*time.Second); !ok || rate != 10 {
		t.Fatalf("rate = %v ok=%v, want 10 true (one 1s step)", rate, ok)
	}
	c.Add(2)
	r.Tick() // 12 over 2 ticks
	if rate, ok := r.Rate("reports_total", "", 2*time.Second); !ok || rate != 6 {
		t.Fatalf("rate = %v, want (10+2)/2s = 6", rate)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reports_per_second gauge",
		`reports_per_second{window="2s"} 6`,
		`reports_per_second{window="10s"} 6`, // clamped to available history
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	// Decay: with the source quiet, enough ticks push the activity out
	// of every window and the gauges return to zero.
	for i := 0; i < 11; i++ {
		r.Tick()
	}
	if rate, ok := r.Rate("reports_total", "", 10*time.Second); !ok || rate != 0 {
		t.Fatalf("post-quiet rate = %v, want 0", rate)
	}
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `reports_per_second{window="10s"} 0`) {
		t.Fatalf("quiet gauge should decay to 0:\n%s", b.String())
	}
}

func TestRatesLabeledCounterAndLateSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("peer_forwards_total", "Forwards per peer.", "peer")
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{5 * time.Second}})
	// Tracking precedes registration of any series — and even of use.
	r.TrackCounter("peer_forwards_total")
	r.Tick()

	v.With("hub1").Add(4)
	r.Tick() // hub1's baseline sample
	v.With("hub1").Add(2)
	v.With("hub2").Add(3) // a series appearing after tracking started
	r.Tick()
	v.With("hub2").Add(3)
	r.Tick()

	if rate, ok := r.Rate("peer_forwards_total", "hub1", 5*time.Second); !ok || rate <= 0 {
		t.Fatalf("hub1 rate = %v ok=%v, want > 0", rate, ok)
	}
	if rate, ok := r.Rate("peer_forwards_total", "hub2", 5*time.Second); !ok || rate != 3 {
		t.Fatalf("hub2 rate = %v ok=%v, want 3 (one step past its baseline)", rate, ok)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`peer_forwards_per_second{peer="hub1",window="5s"}`,
		`peer_forwards_per_second{peer="hub2",window="5s"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2: %v", len(snap), snap)
	}
	if _, ok := snap[`peer_forwards_per_second{peer="hub2"}`]["5s"]; !ok {
		t.Fatalf("snapshot missing hub2 window entry: %v", snap)
	}
}

func TestRatesWindowQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	r.TrackHistogram("lat_seconds")

	if _, ok := r.WindowQuantile("lat_seconds", "", 0.99, 2*time.Second); ok {
		t.Fatal("quantile before any tick should report no data")
	}
	r.Tick()
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // lands in the (0.1, 1] bucket
	}
	r.Tick()
	if q, ok := r.WindowQuantile("lat_seconds", "", 0.99, 2*time.Second); !ok || q != 1 {
		t.Fatalf("window p99 = %v ok=%v, want 1", q, ok)
	}

	// The cumulative histogram remembers the burst forever; the window
	// forgets it once enough quiet ticks pass — the property that lets
	// a latency SLO recover after a storm.
	r.Tick()
	r.Tick()
	r.Tick()
	if _, ok := r.WindowQuantile("lat_seconds", "", 0.99, 2*time.Second); ok {
		t.Fatal("drained window should report no data")
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("cumulative p99 = %v, still 1 by design", q)
	}
}

func TestRatesNilSafety(t *testing.T) {
	var r *Rates
	r.TrackCounter("x")
	r.TrackHistogram("y")
	r.OnTick(func() {})
	r.Tick()
	r.Start()
	r.Stop()
	if _, ok := r.Rate("x", "", time.Second); ok {
		t.Fatal("nil rates should report no data")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil rates snapshot should be nil")
	}
	if NewRates(nil, RatesConfig{}) != nil {
		t.Fatal("nil registry should disable the sampler")
	}
}

func TestRatesStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks_total", "")
	r := NewRates(reg, RatesConfig{Interval: 5 * time.Millisecond, Windows: []time.Duration{50 * time.Millisecond}})
	r.TrackCounter("ticks_total")
	fired := make(chan struct{}, 1)
	r.OnTick(func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	r.Start()
	r.Start() // idempotent
	c.Add(100)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("ticker never fired")
	}
	r.Stop()
	r.Stop() // idempotent
}
