package metrics

import (
	"runtime"
	"sync"
	"time"
)

// Pool is a bounded permit pool: the admission-control primitive the
// Exchange puts in front of report ingest. A caller must Acquire a
// permit before doing admitted work and release it after; when all
// permits are taken the caller waits up to the pool's max wait (bounded
// delay — on the hub this blocks the session's transport read
// goroutine, which the device sees as a slow ack and TCP sees as
// backpressure), and is shed if the wait expires. A max wait <= 0 sheds
// immediately on a full pool — no waiter is queued and no timer is
// allocated. Every verdict is counted on the pool's registry
// instruments:
//
//	<name>_admitted_total   permits granted without waiting
//	<name>_delayed_total    permits granted after a bounded wait
//	<name>_shed_total       acquisitions abandoned at max wait
//	<name>_in_use           permits currently held
//	<name>_capacity         the pool size (live: Resize updates it)
//
// The capacity is dynamic: Resize grows or shrinks the pool at runtime
// (the seam AdaptivePool's AIMD controller drives). Waiters queue FIFO;
// a released permit is handed to the oldest waiter directly, so a
// resize down never strands an already-queued caller and a resize up
// admits queued waiters immediately.
//
// A nil *Pool admits everything immediately (admission disabled).
type Pool struct {
	maxWait time.Duration

	admitted *Counter
	delayed  *Counter
	shed     *Counter
	inUse    *Gauge
	capGauge *Gauge

	mu       sync.Mutex
	capacity int
	held     int // permits out (granted or being handed to a waiter)
	waiters  []*permitWaiter
}

// permitWaiter is one blocked Acquire. The grantor sets granted and
// closes ch under Pool.mu; the timeout path re-checks granted under the
// same lock, so a permit handed over concurrently with the deadline is
// always either accepted or still countable — never leaked.
type permitWaiter struct {
	ch      chan struct{}
	granted bool
}

// NewPool creates a pool of capacity permits with the given bounded
// wait, registering its instruments under the name prefix. A capacity
// <= 0 returns nil (admission disabled).
func NewPool(reg *Registry, name string, capacity int, maxWait time.Duration) *Pool {
	if capacity <= 0 {
		return nil
	}
	p := &Pool{
		maxWait:  maxWait,
		capacity: capacity,
		admitted: reg.Counter(name+"_admitted_total", "Permits granted without waiting."),
		delayed:  reg.Counter(name+"_delayed_total", "Permits granted after a bounded wait."),
		shed:     reg.Counter(name+"_shed_total", "Acquisitions abandoned at the max wait."),
		inUse:    reg.Gauge(name+"_in_use", "Permits currently held."),
		capGauge: reg.Gauge(name+"_capacity", "Size of the permit pool."),
	}
	p.capGauge.Set(int64(capacity))
	return p
}

// Acquire obtains a permit, waiting up to the pool's max wait. It
// returns a release func and true on admission, or nil and false when
// the acquisition was shed. The release func must be called exactly
// once; it is never nil when ok is true.
//
// A successful acquire yields the processor once before returning, with
// the permit held. The pool serializes its callers, and a caller that
// re-acquires in a tight loop — one hot session flooding reports —
// would otherwise monopolize the permits for a whole preemption slice
// on a saturated box, starving every other session: the yield is the
// fairness point that lets concurrent callers reach the pool and queue
// behind the holder.
func (p *Pool) Acquire() (release func(), ok bool) {
	if p == nil {
		return func() {}, true
	}
	p.mu.Lock()
	if p.held < p.capacity {
		p.held++
		p.mu.Unlock()
		p.admitted.Inc()
		p.inUse.Add(1)
		runtime.Gosched()
		return p.release, true
	}
	if p.maxWait <= 0 {
		p.mu.Unlock()
		p.shed.Inc()
		return nil, false
	}
	w := &permitWaiter{ch: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()

	t := time.NewTimer(p.maxWait)
	defer t.Stop()
	select {
	case <-w.ch:
	case <-t.C:
		p.mu.Lock()
		if !w.granted {
			for i, q := range p.waiters {
				if q == w {
					p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
					break
				}
			}
			p.mu.Unlock()
			p.shed.Inc()
			return nil, false
		}
		// A grant raced the deadline: the permit is already ours.
		p.mu.Unlock()
	}
	p.delayed.Inc()
	p.inUse.Add(1)
	runtime.Gosched()
	return p.release, true
}

func (p *Pool) release() {
	p.inUse.Add(-1)
	p.mu.Lock()
	// Hand the permit straight to the oldest waiter — unless a resize
	// shrank the pool below what is out, in which case the permit
	// retires instead.
	if len(p.waiters) > 0 && p.held <= p.capacity {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		w.granted = true
		close(w.ch)
	} else {
		p.held--
	}
	p.mu.Unlock()
}

// Resize sets the pool capacity (clamped to >= 1) and immediately
// grants queued waiters any new headroom. Permits already out are never
// revoked: a resize below the in-use count just stops back-filling
// until enough holders release.
func (p *Pool) Resize(capacity int) {
	if p == nil {
		return
	}
	if capacity < 1 {
		capacity = 1
	}
	p.mu.Lock()
	p.capacity = capacity
	for p.held < p.capacity && len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.held++
		w.granted = true
		close(w.ch)
	}
	p.mu.Unlock()
	p.capGauge.Set(int64(capacity))
}

// Capacity returns the current pool size (0 for a nil pool).
func (p *Pool) Capacity() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Admitted returns the admitted-without-wait count.
func (p *Pool) Admitted() uint64 {
	if p == nil {
		return 0
	}
	return p.admitted.Value()
}

// Delayed returns the admitted-after-wait count.
func (p *Pool) Delayed() uint64 {
	if p == nil {
		return 0
	}
	return p.delayed.Value()
}

// Shed returns the shed count.
func (p *Pool) Shed() uint64 {
	if p == nil {
		return 0
	}
	return p.shed.Value()
}
