package metrics

import (
	"runtime"
	"time"
)

// Pool is a bounded permit pool: the admission-control primitive the
// Exchange puts in front of report ingest. A caller must Acquire a
// permit before doing admitted work and release it after; when all
// permits are taken the caller waits up to the pool's max wait (bounded
// delay — on the hub this blocks the session's transport read
// goroutine, which the device sees as a slow ack and TCP sees as
// backpressure), and is shed if the wait expires. Every verdict is
// counted on the pool's registry instruments:
//
//	<name>_admitted_total   permits granted without waiting
//	<name>_delayed_total    permits granted after a bounded wait
//	<name>_shed_total       acquisitions abandoned at max wait
//	<name>_in_use           permits currently held
//	<name>_capacity         the pool size
//
// A nil *Pool admits everything immediately (admission disabled).
type Pool struct {
	sem     chan struct{}
	maxWait time.Duration

	admitted *Counter
	delayed  *Counter
	shed     *Counter
	inUse    *Gauge
}

// NewPool creates a pool of capacity permits with the given bounded
// wait, registering its instruments under the name prefix. A capacity
// <= 0 returns nil (admission disabled).
func NewPool(reg *Registry, name string, capacity int, maxWait time.Duration) *Pool {
	if capacity <= 0 {
		return nil
	}
	p := &Pool{
		sem:      make(chan struct{}, capacity),
		maxWait:  maxWait,
		admitted: reg.Counter(name+"_admitted_total", "Permits granted without waiting."),
		delayed:  reg.Counter(name+"_delayed_total", "Permits granted after a bounded wait."),
		shed:     reg.Counter(name+"_shed_total", "Acquisitions abandoned at the max wait."),
		inUse:    reg.Gauge(name+"_in_use", "Permits currently held."),
	}
	reg.Gauge(name+"_capacity", "Size of the permit pool.").Set(int64(capacity))
	return p
}

// Acquire obtains a permit, waiting up to the pool's max wait. It
// returns a release func and true on admission, or nil and false when
// the acquisition was shed. The release func must be called exactly
// once; it is never nil when ok is true.
//
// A successful acquire yields the processor once before returning, with
// the permit held. The pool serializes its callers, and a caller that
// re-acquires in a tight loop — one hot session flooding reports —
// would otherwise monopolize the permits for a whole preemption slice
// on a saturated box, starving every other session: the yield is the
// fairness point that lets concurrent callers reach the pool and queue
// behind the holder.
func (p *Pool) Acquire() (release func(), ok bool) {
	if p == nil {
		return func() {}, true
	}
	select {
	case p.sem <- struct{}{}:
		p.admitted.Inc()
		p.inUse.Add(1)
		runtime.Gosched()
		return p.release, true
	default:
	}
	t := time.NewTimer(p.maxWait)
	defer t.Stop()
	select {
	case p.sem <- struct{}{}:
		p.delayed.Inc()
		p.inUse.Add(1)
		runtime.Gosched()
		return p.release, true
	case <-t.C:
		p.shed.Inc()
		return nil, false
	}
}

func (p *Pool) release() {
	<-p.sem
	p.inUse.Add(-1)
}

// Admitted returns the admitted-without-wait count.
func (p *Pool) Admitted() uint64 {
	if p == nil {
		return 0
	}
	return p.admitted.Value()
}

// Delayed returns the admitted-after-wait count.
func (p *Pool) Delayed() uint64 {
	if p == nil {
		return 0
	}
	return p.delayed.Value()
}

// Shed returns the shed count.
func (p *Pool) Shed() uint64 {
	if p == nil {
		return 0
	}
	return p.shed.Value()
}
