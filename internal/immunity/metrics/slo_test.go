package metrics

import (
	"strings"
	"testing"
	"time"
)

// sloFixture wires a histogram-backed latency SLO onto a manually ticked
// sampler: drive h.Observe between Tick calls to steer the verdict.
func sloFixture(t *testing.T, slo SLO) (*Registry, *Histogram, *Rates, *Evaluator) {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	e := NewEvaluator(reg, r, []SLO{slo})
	if e == nil {
		t.Fatal("evaluator should construct")
	}
	return reg, h, r, e
}

func TestSLOStateMachine(t *testing.T) {
	reg, h, r, e := sloFixture(t, SLO{
		Name:       "report-latency",
		QuantileOf: "lat_seconds",
		Target:     0.01, // breached by observations above 10ms
		// defaults: BreachAfter 2, ClearAfter 3, Window = shortest (2s)
	})

	mustState := func(want SLOState) {
		t.Helper()
		got, ok := e.State("report-latency")
		if !ok || got != want {
			t.Fatalf("state = %v ok=%v, want %v", got, ok, want)
		}
	}

	r.Tick() // empty window holds trivially
	mustState(SLOOK)

	h.Observe(0.5) // p99 → bucket bound 1 > 0.01
	r.Tick()
	mustState(SLOWarn) // one bad tick: warn, not breach

	h.Observe(0.5)
	r.Tick()
	mustState(SLOBreach) // second consecutive bad tick escalates

	// Quiet ticks drain the window; ClearAfter(3) good ticks recover.
	r.Tick() // breach-era observations still inside the 2s window: bad
	r.Tick()
	r.Tick()
	mustState(SLOBreach) // hysteresis: two good ticks are not enough
	r.Tick()
	mustState(SLOOK)

	snap := e.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d objectives, want 1", len(snap))
	}
	s := snap[0]
	if s.Name != "report-latency" || s.State != "ok" || s.Breaches != 1 {
		t.Fatalf("snapshot = %+v, want ok with 1 breach", s)
	}
	if s.LastTransition == nil || s.LastTransition.From != "breach" || s.LastTransition.To != "ok" {
		t.Fatalf("last transition = %+v, want breach→ok", s.LastTransition)
	}
	if s.Window != "2s" || s.Target != 0.01 {
		t.Fatalf("snapshot carries window %q target %v, want 2s / 0.01", s.Window, s.Target)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`immunity_slo_state{slo="report-latency"} 0`,
		`immunity_slo_breaches_total{slo="report-latency"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSLOWarnRecoversWithoutBreach(t *testing.T) {
	// A 1s window over a 1s tick forgets each tick's observations on the
	// next one — a single bad tick can then clear without breaching.
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{time.Second}})
	e := NewEvaluator(reg, r, []SLO{{
		Name:       "lat",
		QuantileOf: "lat_seconds",
		Target:     0.01,
		ClearAfter: 1,
	}})
	r.Tick() // baseline
	h.Observe(0.5)
	r.Tick() // warn
	if st, _ := e.State("lat"); st != SLOWarn {
		t.Fatalf("state = %v, want warn after one bad tick", st)
	}
	r.Tick() // good tick with ClearAfter 1 → straight back to ok
	if st, _ := e.State("lat"); st != SLOOK {
		t.Fatalf("state = %v, want ok (warn cleared without breaching)", st)
	}
	if e.Snapshot()[0].Breaches != 0 {
		t.Fatal("a cleared warn must not count as a breach")
	}
}

func TestSLORateObjective(t *testing.T) {
	reg := NewRegistry()
	shed := reg.Counter("shed_total", "Sheds.")
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	e := NewEvaluator(reg, r, []SLO{{
		Name:        "shed-zero",
		RateOf:      "shed_total",
		Target:      0, // any shedding at all violates
		BreachAfter: 1,
	}})
	r.Tick()
	r.Tick()
	if st, _ := e.State("shed-zero"); st != SLOOK {
		t.Fatalf("state = %v, want ok while nothing sheds", st)
	}
	shed.Inc()
	r.Tick()
	if st, _ := e.State("shed-zero"); st != SLOBreach {
		t.Fatalf("state = %v, want breach with BreachAfter 1", st)
	}
}

func TestEvaluatorNilSafety(t *testing.T) {
	var e *Evaluator
	e.OnVerdict(func() {})
	if _, ok := e.State("x"); ok {
		t.Fatal("nil evaluator should know no SLOs")
	}
	if e.Snapshot() != nil {
		t.Fatal("nil evaluator snapshot should be nil")
	}
	if NewEvaluator(nil, nil, nil) != nil {
		t.Fatal("nil registry/rates should disable evaluation")
	}
}

// adaptiveFixture binds an AdaptivePool to a latency SLO over a manually
// ticked sampler. maxWait 0 makes over-capacity acquires shed instantly,
// which is what the decrease-on-shed test needs.
func adaptiveFixture(t *testing.T, cfg AIMDConfig) (*Histogram, *Rates, *AdaptivePool) {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	e := NewEvaluator(reg, r, []SLO{{
		Name:       "lat",
		QuantileOf: "lat_seconds",
		Target:     0.01,
	}})
	cfg.SLO = "lat"
	a := NewAdaptivePool(reg, "adm", 0, cfg)
	a.Bind(e)
	return h, r, a
}

func TestAdaptivePoolIncreasesOnDemand(t *testing.T) {
	h, r, a := adaptiveFixture(t, AIMDConfig{Initial: 2, Max: 4})
	r.Tick()
	if a.Capacity() != 2 {
		t.Fatalf("capacity = %d, want initial 2", a.Capacity())
	}

	// Idle ok ticks must not grow the pool.
	r.Tick()
	r.Tick()
	if a.Capacity() != 2 || a.Increases() != 0 {
		t.Fatalf("idle pool crept: capacity=%d increases=%d", a.Capacity(), a.Increases())
	}

	// Demand + fast latency → additive growth, one step per tick.
	admit := func() {
		release, ok := a.Acquire()
		if !ok {
			t.Fatal("acquire under capacity should admit")
		}
		h.Observe(0.0005) // under target
		release()
	}
	admit()
	r.Tick()
	if a.Capacity() != 3 || a.Increases() != 1 {
		t.Fatalf("capacity=%d increases=%d, want 3/1", a.Capacity(), a.Increases())
	}
	admit()
	r.Tick()
	if a.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", a.Capacity())
	}
	admit()
	r.Tick() // already at Max: hold
	if a.Capacity() != 4 || a.Increases() != 2 {
		t.Fatalf("capacity=%d increases=%d, want clamp at Max 4", a.Capacity(), a.Increases())
	}
}

func TestAdaptivePoolBacksOffOnBreach(t *testing.T) {
	h, r, a := adaptiveFixture(t, AIMDConfig{Initial: 8})
	slow := func() {
		release, ok := a.Acquire()
		if !ok {
			t.Fatal("acquire under capacity should admit")
		}
		h.Observe(0.5) // way over target
		release()
	}
	r.Tick()
	slow()
	r.Tick() // warn: hold
	if a.Capacity() != 8 {
		t.Fatalf("warn must hold capacity, got %d", a.Capacity())
	}
	slow()
	r.Tick() // breach: 8 → 4
	if a.Capacity() != 4 || a.Decreases() != 1 {
		t.Fatalf("capacity=%d decreases=%d, want 4/1", a.Capacity(), a.Decreases())
	}
	slow()
	r.Tick() // still breached: 4 → 2
	slow()
	r.Tick() // 2 → 1
	slow()
	r.Tick() // clamped at Min: capacity holds, no phantom decrease
	if a.Capacity() != 1 {
		t.Fatalf("capacity = %d, want convergence to Min 1", a.Capacity())
	}
	if a.Decreases() != 3 {
		t.Fatalf("decreases = %d, want 3 (no count when already at Min)", a.Decreases())
	}
}

func TestAdaptivePoolBacksOffOnShed(t *testing.T) {
	_, r, a := adaptiveFixture(t, AIMDConfig{Initial: 2})
	r.Tick()
	// Saturate and shed without any latency signal: the shed alone must
	// trigger the multiplicative retreat.
	r1, _ := a.Acquire()
	r2, _ := a.Acquire()
	if _, ok := a.Acquire(); ok {
		t.Fatal("third acquire at capacity 2 with zero wait must shed")
	}
	r.Tick()
	if a.Capacity() != 1 || a.Decreases() != 1 {
		t.Fatalf("capacity=%d decreases=%d, want 1/1 after shed", a.Capacity(), a.Decreases())
	}
	r1()
	r2()
}

func TestAdaptivePoolDefaults(t *testing.T) {
	a := NewAdaptivePool(NewRegistry(), "adm", 0, AIMDConfig{})
	cfg := a.Config()
	if cfg.Initial != 8 || cfg.Min != 1 || cfg.Max != 64 || cfg.Step != 1 || cfg.Backoff != 0.5 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if a.Capacity() != 8 {
		t.Fatalf("capacity = %d, want default initial 8", a.Capacity())
	}
	var nilA *AdaptivePool
	nilA.Bind(nil)
	if nilA.Increases() != 0 || nilA.Decreases() != 0 {
		t.Fatal("nil adaptive pool counters should read 0")
	}
	if zc := nilA.Config(); zc.SLO != "" || zc.SLOs != nil || zc.Initial != 0 || zc.Max != 0 {
		t.Fatal("nil adaptive pool config should be zero")
	}
}
