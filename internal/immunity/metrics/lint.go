package metrics

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a Prometheus text-format (0.0.4) exposition for the
// structural rules scrapers depend on and returns one message per
// violation (empty means clean). It is the renderer's conformance
// oracle — the registry's own test feeds it a fully-populated
// WritePrometheus render, and CI feeds it live immunityd scrapes.
//
// Checked:
//   - line grammar: # HELP / # TYPE comments and samples parse; metric
//     and label names are legal; label values use only the \\, \", \n
//     escapes; sample values parse as floats.
//   - family structure: HELP at most once and before TYPE, TYPE before
//     any sample, a known TYPE keyword, and all of a family's lines
//     contiguous (no family reopened later in the exposition).
//   - histograms: every series has its _bucket ladder with numeric,
//     strictly increasing le values ending at +Inf, non-decreasing
//     cumulative counts, and _sum/_count present with _count equal to
//     the +Inf bucket.
func Lint(r io.Reader) []string {
	l := &linter{families: make(map[string]*lintFamily)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		l.line(line, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errf(line, "read: %v", err)
	}
	l.closeFamily()
	return l.problems
}

var (
	lintMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lintLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type lintFamily struct {
	typ      string
	helpSeen bool
	typeSeen bool
	samples  int
	closed   bool
}

// lintHistSeries accumulates one histogram series (label set minus le).
type lintHistSeries struct {
	firstLine int
	les       []float64
	counts    []float64
	sum       bool
	count     *float64
}

type linter struct {
	problems []string
	families map[string]*lintFamily
	current  string
	// histogram bookkeeping for the current family
	histSeries map[string]*lintHistSeries
	histOrder  []string
}

func (l *linter) errf(line int, format string, args ...any) {
	l.problems = append(l.problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		fields := strings.SplitN(s, " ", 4)
		if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
			l.meta(n, fields[1], fields[2], s)
			return
		}
		return // free comment: legal, ignored
	}
	l.sample(n, s)
}

func (l *linter) meta(n int, kind, name, full string) {
	if !lintMetricName.MatchString(name) {
		l.errf(n, "illegal metric name %q in %s", name, kind)
		return
	}
	if name != l.current {
		l.closeFamily()
		l.current = name
	}
	f := l.families[name]
	if f == nil {
		f = &lintFamily{}
		l.families[name] = f
	}
	if f.closed {
		l.errf(n, "family %s reopened: its lines must be contiguous", name)
		f.closed = false
	}
	switch kind {
	case "HELP":
		if f.helpSeen {
			l.errf(n, "second HELP for %s", name)
		}
		if f.typeSeen {
			l.errf(n, "HELP for %s after its TYPE", name)
		}
		if f.samples > 0 {
			l.errf(n, "HELP for %s after its samples", name)
		}
		f.helpSeen = true
	case "TYPE":
		typ := strings.TrimSpace(strings.TrimPrefix(full, "# TYPE "+name))
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown TYPE %q for %s", typ, name)
		}
		if f.typeSeen {
			l.errf(n, "second TYPE for %s", name)
		}
		if f.samples > 0 {
			l.errf(n, "TYPE for %s after its samples", name)
		}
		f.typeSeen = true
		f.typ = typ
	}
}

func (l *linter) sample(n int, s string) {
	name, labels, value, ok := parseSampleLine(s, func(format string, args ...any) {
		l.errf(n, format, args...)
	})
	if !ok {
		return
	}
	if !lintMetricName.MatchString(name) {
		l.errf(n, "illegal metric name %q", name)
		return
	}
	fam := l.sampleFamily(name)
	if fam == "" {
		l.errf(n, "sample %s before any TYPE", name)
		return
	}
	f := l.families[fam]
	if f.closed {
		l.errf(n, "sample %s after family %s was closed: family lines must be contiguous", name, fam)
	}
	f.samples++
	if f.typ == "histogram" {
		l.histSample(n, fam, name, labels, value)
	}
}

// sampleFamily resolves which family a sample name belongs to: the
// current family directly, or via the histogram/summary suffixes.
func (l *linter) sampleFamily(name string) string {
	cur := l.current
	if cur == "" {
		return ""
	}
	if name == cur {
		return cur
	}
	f := l.families[cur]
	if f != nil && (f.typ == "histogram" || f.typ == "summary") {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if name == cur+suf {
				return cur
			}
		}
	}
	return ""
}

func (l *linter) histSample(n int, fam, name string, labels [][2]string, value string) {
	if l.histSeries == nil {
		l.histSeries = make(map[string]*lintHistSeries)
	}
	// The series identity is the label set minus le, order-insensitive.
	var le string
	var rest [][2]string
	for _, kv := range labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		rest = append(rest, kv)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i][0] < rest[j][0] })
	key := renderLabels(rest)
	sr := l.histSeries[key]
	if sr == nil {
		sr = &lintHistSeries{firstLine: n}
		l.histSeries[key] = sr
		l.histOrder = append(l.histOrder, key)
	}
	v, verr := strconv.ParseFloat(value, 64)
	switch name {
	case fam + "_bucket":
		if le == "" {
			l.errf(n, "%s_bucket without le label", fam)
			return
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			l.errf(n, "%s_bucket le=%q is not numeric", fam, le)
			return
		}
		if k := len(sr.les); k > 0 && bound <= sr.les[k-1] {
			l.errf(n, "%s_bucket le=%q not strictly increasing", fam, le)
		}
		if verr == nil {
			if k := len(sr.counts); k > 0 && v < sr.counts[k-1] {
				l.errf(n, "%s_bucket%s cumulative count decreased", fam, key)
			}
			sr.counts = append(sr.counts, v)
		}
		sr.les = append(sr.les, bound)
	case fam + "_sum":
		sr.sum = true
	case fam + "_count":
		if verr == nil {
			sr.count = &v
		}
	}
}

// closeFamily runs the end-of-family checks (histogram ladders) and
// marks the family contiguity-closed.
func (l *linter) closeFamily() {
	if l.current == "" {
		return
	}
	f := l.families[l.current]
	if f != nil {
		f.closed = true
		if f.typeSeen && f.samples == 0 {
			l.problems = append(l.problems, fmt.Sprintf("family %s has TYPE but no samples", l.current))
		}
		if f.typ == "histogram" {
			for _, key := range l.histOrder {
				sr := l.histSeries[key]
				at := func(format string, args ...any) {
					l.problems = append(l.problems,
						fmt.Sprintf("line %d: %s", sr.firstLine, fmt.Sprintf(format, args...)))
				}
				if len(sr.les) == 0 {
					at("histogram %s%s has no _bucket samples", l.current, key)
					continue
				}
				last := sr.les[len(sr.les)-1]
				if last != posInf() {
					at("histogram %s%s bucket ladder does not end at +Inf", l.current, key)
				}
				if !sr.sum {
					at("histogram %s%s missing _sum", l.current, key)
				}
				switch {
				case sr.count == nil:
					at("histogram %s%s missing _count", l.current, key)
				case len(sr.counts) > 0 && *sr.count != sr.counts[len(sr.counts)-1]:
					at("histogram %s%s _count %v != +Inf bucket %v",
						l.current, key, *sr.count, sr.counts[len(sr.counts)-1])
				}
			}
		}
	}
	l.current = ""
	l.histSeries = nil
	l.histOrder = nil
}

func posInf() float64 {
	inf, _ := strconv.ParseFloat("+Inf", 64)
	return inf
}

// parseSampleLine parses `name{k="v",...} value [timestamp]`, reporting
// grammar violations through errf. ok is false when the line is too
// broken to extract parts from.
func parseSampleLine(s string, errf func(string, ...any)) (name string, labels [][2]string, value string, ok bool) {
	i := strings.IndexAny(s, "{ ")
	if i < 0 {
		errf("malformed sample %q", s)
		return "", nil, "", false
	}
	name = s[:i]
	rest := s[i:]
	if rest[0] == '{' {
		var perr bool
		labels, rest, perr = parseLabelBlock(rest, errf)
		if perr {
			return "", nil, "", false
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		errf("sample %s: want `value [timestamp]`, got %q", name, strings.TrimSpace(rest))
		return "", nil, "", false
	}
	value = fields[0]
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		errf("sample %s: value %q is not a float", name, value)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			errf("sample %s: timestamp %q is not an integer", name, fields[1])
		}
	}
	return name, labels, value, true
}

// parseLabelBlock parses a {k="v",...} block, validating label names,
// escapes, and duplicates. It returns the remainder after '}'.
func parseLabelBlock(s string, errf func(string, ...any)) (labels [][2]string, rest string, broken bool) {
	seen := make(map[string]bool)
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], false
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			errf("unterminated label block %q", s)
			return nil, "", true
		}
		key := s[i:j]
		if !lintLabelName.MatchString(key) {
			errf("illegal label name %q", key)
		}
		if seen[key] {
			errf("duplicate label %q", key)
		}
		seen[key] = true
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			errf("label %s: value is not quoted", key)
			return nil, "", true
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				errf("label %s: unterminated value", key)
				return nil, "", true
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					errf("label %s: dangling backslash", key)
					return nil, "", true
				}
				esc := s[i+1]
				switch esc {
				case '\\', '"', 'n':
				default:
					errf("label %s: illegal escape \\%c", key, esc)
				}
				val.WriteByte(c)
				val.WriteByte(esc)
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, [2]string{key, val.String()})
	}
}
