package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSLOGaugeObjective: a GaugeOf objective reads the instantaneous
// sum across a labeled gauge family — the forward-outbox shape, one
// series per peer — and breaches when the backlog exceeds the target.
func TestSLOGaugeObjective(t *testing.T) {
	reg := NewRegistry()
	depth := reg.GaugeVec("outbox_pending", "Backlog.", "peer")
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	e := NewEvaluator(reg, r, []SLO{{
		Name:        "outbox-backlog",
		GaugeOf:     "outbox_pending",
		Target:      10,
		BreachAfter: 1,
	}})

	r.Tick() // family empty: no data, holds trivially
	if st, ok := e.State("outbox-backlog"); !ok || st != SLOOK {
		t.Fatalf("empty gauge family: state=%v ok=%v, want ok/SLOOK", st, ok)
	}

	depth.With("hub-b").Set(6)
	depth.With("hub-c").Set(3)
	r.Tick() // sum 9 <= 10 holds
	if st, _ := e.State("outbox-backlog"); st != SLOOK {
		t.Fatalf("backlog 9: state=%v, want SLOOK", st)
	}

	depth.With("hub-c").Set(7)
	r.Tick() // sum 13 > 10, BreachAfter 1 escalates immediately
	if st, _ := e.State("outbox-backlog"); st != SLOBreach {
		t.Fatalf("backlog 13: state=%v, want SLOBreach", st)
	}
	snap := e.Snapshot()
	if len(snap) != 1 || !snap[0].HasData || snap[0].Observed != 13 {
		t.Fatalf("snapshot = %+v, want observed 13 with data", snap)
	}
}

// TestGaugeValueLabelAndMissing: label selection, missing families, and
// wrong-typed families.
func TestGaugeValueLabelAndMissing(t *testing.T) {
	reg := NewRegistry()
	depth := reg.GaugeVec("pending", "Backlog.", "peer")
	depth.With("a").Set(4)
	depth.With("b").Set(5)
	reg.Counter("hits_total", "Hits.").Inc()

	if v, ok := reg.GaugeValue("pending", "a"); !ok || v != 4 {
		t.Fatalf("labeled read = %v/%v, want 4/true", v, ok)
	}
	if v, ok := reg.GaugeValue("pending", ""); !ok || v != 9 {
		t.Fatalf("summed read = %v/%v, want 9/true", v, ok)
	}
	if _, ok := reg.GaugeValue("pending", "zzz"); ok {
		t.Fatal("unknown label reported data")
	}
	if _, ok := reg.GaugeValue("absent", ""); ok {
		t.Fatal("missing family reported data")
	}
	if _, ok := reg.GaugeValue("hits_total", ""); ok {
		t.Fatal("counter family reported as gauge")
	}
	var nilReg *Registry
	if _, ok := nilReg.GaugeValue("pending", ""); ok {
		t.Fatal("nil registry reported data")
	}
}

// TestAIMDWorstOfMultipleSLOs: a breach on a secondary (backlog)
// objective must force the multiplicative retreat even while the
// primary latency objective reads ok.
func TestAIMDWorstOfMultipleSLOs(t *testing.T) {
	reg := NewRegistry()
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	reg.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1})
	e := NewEvaluator(reg, r, []SLO{
		{Name: "report-latency", QuantileOf: "lat_seconds", Target: 0.01},
		{Name: "push-backlog", GaugeOf: "immunity_hub_push_pending", Target: 100, BreachAfter: 1},
	})

	pool := NewAdaptivePool(reg, "adm", time.Millisecond, AIMDConfig{
		SLO: "report-latency", SLOs: []string{"push-backlog"}, Initial: 16})
	pool.Bind(e)

	backlog := reg.Gauge("immunity_hub_push_pending", "Backlog.")
	r.Tick() // both ok
	if got := pool.Capacity(); got != 16 {
		t.Fatalf("capacity after healthy tick = %d, want 16 (no demand, no probe)", got)
	}

	backlog.Set(500) // secondary objective breaches; latency stays ok
	r.Tick()
	if got := pool.Capacity(); got != 8 {
		t.Fatalf("capacity after backlog breach = %d, want 8 (backoff 0.5)", got)
	}
	if pool.Decreases() != 1 {
		t.Fatalf("decreases = %d, want 1", pool.Decreases())
	}
}

// TestAlerterTransitionsAndDedup: breach fires once (cooldown eats the
// flap), clear fires on breach→ok, warn transitions never page, and
// the webhook receives well-formed JSON.
func TestAlerterTransitionsAndDedup(t *testing.T) {
	var mu sync.Mutex
	var got []Alert
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var a Alert
		if err := json.Unmarshal(body, &a); err != nil {
			t.Errorf("bad alert body %q: %v", body, err)
		}
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	}))
	defer srv.Close()

	reg := NewRegistry()
	al := NewAlerter(reg, AlertConfig{URL: srv.URL, Cooldown: time.Hour})
	clock := time.Unix(1000, 0)
	al.now = func() time.Time { return clock }

	st := func(state string) []SLOStatus {
		return []SLOStatus{{Name: "report-latency", State: state, Observed: 0.5,
			Target: 0.01, Window: "2s", Breaches: 1}}
	}
	al.check(st("ok"))     // baseline
	al.check(st("warn"))   // not pageable
	al.check(st("breach")) // pages
	al.check(st("ok"))     // clears
	al.check(st("breach")) // re-breach inside cooldown: deduplicated
	al.check(st("ok"))     // re-clear inside cooldown: deduplicated
	al.Close()

	mu.Lock()
	if len(got) != 2 {
		t.Fatalf("delivered %d alerts, want 2 (breach + clear): %+v", len(got), got)
	}
	kinds := map[string]bool{}
	for _, a := range got {
		kinds[a.Kind] = true
		if a.SLO != "report-latency" || a.Target != 0.01 || a.Window != "2s" {
			t.Fatalf("malformed alert %+v", a)
		}
	}
	mu.Unlock()
	if !kinds["breach"] || !kinds["clear"] {
		t.Fatalf("kinds = %v, want breach and clear", kinds)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `immunity_slo_alerts_total{slo="report-latency"} 2`) {
		t.Fatalf("render missing alert count:\n%s", b.String())
	}

	// Past the cooldown the same transition pages again.
	clock = clock.Add(2 * time.Hour)
	al.check(st("breach"))
	al.Close()
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("delivered %d alerts after cooldown, want 3", n)
	}
}

// TestAlerterExecHookAndFailureCount: the exec sink sees the alert in
// its environment; a failing webhook is counted, not fatal.
func TestAlerterExecHookAndFailureCount(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "alert.txt")
	reg := NewRegistry()
	al := NewAlerter(reg, AlertConfig{
		Exec: `printf '%s %s' "$IMMUNITY_ALERT_SLO" "$IMMUNITY_ALERT_KIND" > ` + out,
		URL:  "http://127.0.0.1:1/unroutable", // fails fast, counted
	})
	al.check([]SLOStatus{{Name: "shed-zero", State: "breach"}})
	al.Close()

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("exec hook did not run: %v", err)
	}
	if string(data) != "shed-zero breach" {
		t.Fatalf("exec hook env = %q, want %q", data, "shed-zero breach")
	}
	if got := reg.Counter("immunity_slo_alert_failures_total", "").Value(); got != 1 {
		t.Fatalf("failure count = %d, want 1", got)
	}
}

// TestAlerterWatch: wired through the evaluator's verdict hook, a real
// SLO breach emits without any manual snapshot plumbing.
func TestAlerterWatch(t *testing.T) {
	reg := NewRegistry()
	backlog := reg.Gauge("backlog_depth", "Backlog.")
	r := NewRates(reg, RatesConfig{Interval: time.Second, Windows: []time.Duration{2 * time.Second}})
	e := NewEvaluator(reg, r, []SLO{{
		Name: "backlog", GaugeOf: "backlog_depth", Target: 5, BreachAfter: 1}})
	al := NewAlerter(reg, AlertConfig{}) // no sinks: counting only
	al.Watch(e)

	r.Tick()
	backlog.Set(50)
	r.Tick()
	al.Close()
	if got := reg.CounterVec("immunity_slo_alerts_total", "", "slo").With("backlog").Value(); got != 1 {
		t.Fatalf("alerts counted = %d, want 1", got)
	}
}
