package metrics

import "time"

// AIMDConfig shapes the additive-increase/multiplicative-decrease
// admission controller. Zero values take the defaults noted per field.
type AIMDConfig struct {
	// SLO names the latency objective (on the bound Evaluator) whose
	// verdicts drive the controller.
	SLO string
	// SLOs lists additional objectives the controller also watches; the
	// step reacts to the worst state across SLO and SLOs, so a backlog
	// objective (push-queue depth, forward-outbox lag) forces the same
	// multiplicative retreat as the latency one even while latency still
	// reads healthy.
	SLOs []string
	// Initial is the starting capacity (default 8, clamped to
	// [Min, Max]).
	Initial int
	// Min and Max bound the capacity (defaults 1 and 64).
	Min, Max int
	// Step is the additive increase per holding tick (default 1).
	Step int
	// Backoff is the multiplicative decrease factor on breach or shed
	// (default 0.5; must be in (0,1)).
	Backoff float64
}

// AdaptivePool is a Pool whose capacity is an AIMD control loop over
// the SLO evaluator's verdicts instead of a hand-picked flag:
//
//   - latency SLO ok and the pool saw demand since the last tick →
//     capacity += Step (additive probe for headroom; no demand, no
//     probe — an idle pool must not creep up);
//   - latency SLO breached, or any acquisition was shed → capacity =
//     max(Min, capacity*Backoff) (multiplicative retreat).
//
// The latency objective is measured with the admission wait included,
// so sustained overload reads as a breach and the pool retreats toward
// Min — brownout semantics: protect the hub's processing latency and
// push the queueing onto TCP backpressure, where the senders feel it.
// When the storm drains, the windowed quantile recovers, the SLO
// transitions breach→ok, and demand grows the pool back — in
// slow-start below the last-known-good capacity (the capacity held
// just before the breach forced a decrease): each tick doubles, capped
// at that level, because +Step per tick takes most of a minute to
// reclaim a deep multiplicative cut the hub already proved it can
// serve. At and above last-known-good the controller is back in
// untested territory and probes additively as before. Warn holds
// capacity (hysteresis, no flapping).
//
// Every decision is visible: <name>_capacity follows Resize live, and
// the controller's moves are counted on
//
//	<name>_aimd_increases_total
//	<name>_aimd_decreases_total
type AdaptivePool struct {
	*Pool
	cfg       AIMDConfig
	increases *Counter
	decreases *Counter

	// Verdict deltas since the last tick; only touched from the
	// evaluator's tick goroutine (Bind documents the single-driver
	// contract).
	lastVerdicts uint64
	lastShed     uint64
	// lastGood is the capacity held just before the most recent
	// decrease — the slow-start ceiling: recovery doubles per tick up
	// to it, then probes additively. 0 until the first decrease.
	lastGood int
}

// NewAdaptivePool builds the pool at cfg.Initial capacity with the
// usual Pool instruments under name, plus the AIMD trace counters. The
// controller is inert until Bind.
func NewAdaptivePool(reg *Registry, name string, maxWait time.Duration, cfg AIMDConfig) *AdaptivePool {
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max <= 0 {
		cfg.Max = 64
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Initial <= 0 {
		cfg.Initial = 8
	}
	if cfg.Initial < cfg.Min {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial > cfg.Max {
		cfg.Initial = cfg.Max
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	if cfg.Backoff <= 0 || cfg.Backoff >= 1 {
		cfg.Backoff = 0.5
	}
	return &AdaptivePool{
		Pool: NewPool(reg, name, cfg.Initial, maxWait),
		cfg:  cfg,
		increases: reg.Counter(name+"_aimd_increases_total",
			"Additive capacity increases by the AIMD admission controller."),
		decreases: reg.Counter(name+"_aimd_decreases_total",
			"Multiplicative capacity decreases by the AIMD admission controller."),
	}
}

// Config returns the controller shape after defaulting.
func (a *AdaptivePool) Config() AIMDConfig {
	if a == nil {
		return AIMDConfig{}
	}
	return a.cfg
}

// Bind attaches the controller to the evaluator: one AIMD step per
// evaluation tick. Bind once — the step's verdict bookkeeping assumes a
// single driving tick loop.
func (a *AdaptivePool) Bind(e *Evaluator) {
	if a == nil || e == nil {
		return
	}
	e.OnVerdict(func() { a.step(e) })
}

// Increases and Decreases return the AIMD trace counts.
func (a *AdaptivePool) Increases() uint64 {
	if a == nil {
		return 0
	}
	return a.increases.Value()
}

func (a *AdaptivePool) Decreases() uint64 {
	if a == nil {
		return 0
	}
	return a.decreases.Value()
}

func (a *AdaptivePool) step(e *Evaluator) {
	shedNow := a.Shed()
	verdicts := a.Admitted() + a.Delayed() + shedNow
	demand := verdicts > a.lastVerdicts
	shed := shedNow > a.lastShed
	a.lastVerdicts, a.lastShed = verdicts, shedNow

	state, known := e.State(a.cfg.SLO)
	for _, name := range a.cfg.SLOs {
		st, ok := e.State(name)
		if !ok {
			continue
		}
		if !known || st > state {
			state = st
		}
		known = true
	}
	a.stepVerdict(shed, demand, state, known)
}

// stepVerdict applies one control decision to the capacity — split
// from step so tests can drive the recovery slope without an evaluator
// and real clock behind it.
func (a *AdaptivePool) stepVerdict(shed, demand bool, state SLOState, known bool) {
	capNow := a.Capacity()
	switch {
	case shed || (known && state == SLOBreach):
		next := int(float64(capNow) * a.cfg.Backoff)
		if next < a.cfg.Min {
			next = a.cfg.Min
		}
		if next < capNow {
			a.lastGood = capNow
			a.Resize(next)
			a.decreases.Inc()
		}
	case known && state == SLOOK && demand:
		var next int
		if capNow < a.lastGood {
			// Slow-start: double back toward the capacity that held
			// before the breach rather than crawl +Step per tick.
			next = capNow * 2
			if next > a.lastGood {
				next = a.lastGood
			}
		} else {
			next = capNow + a.cfg.Step
		}
		if next > a.cfg.Max {
			next = a.cfg.Max
		}
		if next > capNow {
			a.Resize(next)
			a.increases.Inc()
		}
	}
}
