package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPoolZeroWaitShedsImmediately(t *testing.T) {
	reg := NewRegistry()
	p := NewPool(reg, "adm", 1, 0)
	release, ok := p.Acquire()
	if !ok {
		t.Fatal("first acquire should admit")
	}
	start := time.Now()
	if _, ok := p.Acquire(); ok {
		t.Fatal("over-capacity acquire with zero wait must shed")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("zero-wait shed took %v, want immediate", d)
	}
	if p.Shed() != 1 || p.Delayed() != 0 {
		t.Fatalf("shed=%d delayed=%d, want 1/0", p.Shed(), p.Delayed())
	}
	release()
}

func TestPoolResizeGrantsWaiters(t *testing.T) {
	reg := NewRegistry()
	p := NewPool(reg, "adm", 1, 5*time.Second)
	release, ok := p.Acquire()
	if !ok {
		t.Fatal("first acquire should admit")
	}
	got := make(chan func(), 1)
	go func() {
		r, ok := p.Acquire()
		if !ok {
			t.Error("queued acquire should be granted by Resize")
			got <- nil
			return
		}
		got <- r
	}()
	// Wait for the waiter to queue, then grow the pool: the headroom
	// must reach the queued caller without any release.
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		queued := len(p.waiters)
		p.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.Resize(2)
	select {
	case r := <-got:
		if r != nil {
			r()
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Resize(2) did not grant the queued waiter")
	}
	if p.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", p.Capacity())
	}
	if p.Delayed() != 1 {
		t.Fatalf("delayed = %d, want 1 (the resize-granted waiter)", p.Delayed())
	}
	release()
}

func TestPoolResizeDownNeverRevokes(t *testing.T) {
	reg := NewRegistry()
	p := NewPool(reg, "adm", 2, 0)
	r1, ok1 := p.Acquire()
	r2, ok2 := p.Acquire()
	if !ok1 || !ok2 {
		t.Fatal("both permits should admit at capacity 2")
	}
	p.Resize(1)
	if p.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", p.Capacity())
	}
	// Outstanding permits survive the shrink; new demand sheds.
	if _, ok := p.Acquire(); ok {
		t.Fatal("acquire above the shrunk capacity must shed")
	}
	r1()
	r2()
	// After both release, the pool backfills to exactly the new size.
	r3, ok := p.Acquire()
	if !ok {
		t.Fatal("acquire after releases should admit")
	}
	if _, ok := p.Acquire(); ok {
		t.Fatal("second acquire must shed at capacity 1")
	}
	r3()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "adm_capacity 1") {
		t.Fatalf("capacity gauge should follow Resize:\n%s", b.String())
	}
}

func TestPoolResizeClampsToOne(t *testing.T) {
	p := NewPool(NewRegistry(), "adm", 4, 0)
	p.Resize(-3)
	if p.Capacity() != 1 {
		t.Fatalf("capacity = %d, want clamp to 1", p.Capacity())
	}
	var nilPool *Pool
	nilPool.Resize(5) // no-op, no panic
	if nilPool.Capacity() != 0 {
		t.Fatal("nil pool capacity should be 0")
	}
}
