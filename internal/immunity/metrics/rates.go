package metrics

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultRateWindows are the trailing windows the daemon's rate gauges
// cover: short enough to see a storm start, long enough to see it end.
func DefaultRateWindows() []time.Duration {
	return []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute}
}

// RatesConfig shapes one Rates sampler.
type RatesConfig struct {
	// Interval is the sampling tick (default 1s). Every tracked family
	// is snapshotted once per tick.
	Interval time.Duration
	// Windows are the trailing windows the derived per-second gauges
	// report (default DefaultRateWindows). Sorted ascending; the
	// shortest window is the default for SLO evaluation.
	Windows []time.Duration
}

// Rates turns the registry's monotone counters into windowed per-second
// rate gauges — the series an operator actually watches. On every tick
// it snapshots each tracked counter family into a small ring and
// republishes, for every window W, a raw-labeled float gauge
//
//	<base>_per_second{window="10s"}             (unlabeled source)
//	<base>_per_second{peer="hub1",window="1m"}  (labeled source)
//
// where <base> is the source name with a trailing _total stripped. The
// gauges live on the same registry, so /metrics and /status carry the
// rates next to the totals, and they decay to zero when the source goes
// quiet — a counter can only prove something happened, a rate shows it
// stopped.
//
// Tracked histograms are snapshotted the same way (per-bucket counts in
// the ring), which is what makes windowed quantiles possible at all: a
// cumulative histogram never forgets a storm, but WindowQuantile over
// the last W of bucket deltas recovers once the storm drains — the
// property the SLO evaluator's breach→ok transition depends on.
//
// Tick-driven hooks (OnTick) run after each sample pass with no Rates
// lock held; the SLO Evaluator and uptime gauge ride on them. All
// methods are nil-receiver safe.
type Rates struct {
	reg      *Registry
	interval time.Duration
	windows  []time.Duration
	ringCap  int

	mu       sync.Mutex
	counters []*counterTrack
	hists    []*histTrack
	hooks    []func()
	started  bool

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// NewRates creates a sampler over reg. Nothing is sampled until
// counters/histograms are tracked and either Start runs the ticker or
// Tick is driven manually (tests).
func NewRates(reg *Registry, cfg RatesConfig) *Rates {
	if reg == nil {
		return nil
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = time.Second
	}
	windows := append([]time.Duration(nil), cfg.Windows...)
	if len(windows) == 0 {
		windows = DefaultRateWindows()
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	ringCap := int(windows[len(windows)-1]/interval) + 1
	if ringCap < 2 {
		ringCap = 2
	}
	return &Rates{
		reg:      reg,
		interval: interval,
		windows:  windows,
		ringCap:  ringCap,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling tick.
func (r *Rates) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// Windows returns the trailing windows, ascending.
func (r *Rates) Windows() []time.Duration {
	if r == nil {
		return nil
	}
	return append([]time.Duration(nil), r.windows...)
}

// counterTrack follows one counter family (resolved lazily by name, so
// tracking may precede registration) and owns its derived rate gauges.
type counterTrack struct {
	name    string
	outName string
	rings   map[string]*sampleRing // source label -> value ring
}

// histTrack follows one histogram family for windowed quantiles.
type histTrack struct {
	name  string
	upper []float64
	rings map[string]*bucketRing // source label -> bucket-count ring
}

// TrackCounter samples the counter family registered under name on
// every tick and publishes its per-window rate gauges. Labeled families
// get one rate series per (source label, window) pair; series appearing
// after tracking starts are picked up on their first tick.
func (r *Rates) TrackCounter(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.counters {
		if t.name == name {
			return
		}
	}
	base := strings.TrimSuffix(name, "_total")
	r.counters = append(r.counters, &counterTrack{
		name:    name,
		outName: base + "_per_second",
		rings:   make(map[string]*sampleRing),
	})
}

// TrackHistogram samples the histogram family registered under name on
// every tick, enabling WindowQuantile over it.
func (r *Rates) TrackHistogram(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.hists {
		if t.name == name {
			return
		}
	}
	r.hists = append(r.hists, &histTrack{name: name, rings: make(map[string]*bucketRing)})
}

// OnTick registers fn to run after every sample pass, outside the Rates
// lock (fn may call Rate/WindowQuantile/Snapshot freely).
func (r *Rates) OnTick(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Start runs the sampling ticker in a goroutine until Stop.
func (r *Rates) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stopCh:
				return
			case <-t.C:
				r.Tick()
			}
		}
	}()
}

// Stop halts the ticker. Idempotent; safe before Start.
func (r *Rates) Stop() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

// Tick runs one sample pass: snapshot every tracked family, refresh the
// rate gauges, then run the hooks. Exported so tests (and the storm
// harness) can drive the sampler deterministically.
func (r *Rates) Tick() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, t := range r.counters {
		r.sampleCounter(t)
	}
	for _, t := range r.hists {
		r.sampleHist(t)
	}
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

func (r *Rates) sampleCounter(t *counterTrack) {
	f := r.reg.lookupFamily(t.name)
	if f == nil || f.typ != typeCounter {
		return
	}
	f.mu.Lock()
	labels := append([]string(nil), f.order...)
	vals := make([]uint64, len(labels))
	for i, lb := range labels {
		if c, ok := f.series[lb].(*Counter); ok {
			vals[i] = c.Value()
		}
	}
	key := f.labelKey
	f.mu.Unlock()
	for i, lb := range labels {
		ring := t.rings[lb]
		if ring == nil {
			ring = &sampleRing{vals: make([]uint64, r.ringCap)}
			t.rings[lb] = ring
		}
		ring.push(vals[i])
	}
	out := r.reg.familyRaw(t.outName,
		"Per-second rate of "+t.name+" over the trailing window.", typeGauge, "", nil, true)
	for lb, ring := range t.rings {
		for _, w := range r.windows {
			g := out.get(rateSeriesKey(key, lb, w), func() any { return new(FloatGauge) }).(*FloatGauge)
			g.Set(ring.rate(w, r.interval))
		}
	}
}

func (r *Rates) sampleHist(t *histTrack) {
	f := r.reg.lookupFamily(t.name)
	if f == nil || f.typ != typeHistogram {
		return
	}
	f.mu.Lock()
	labels := append([]string(nil), f.order...)
	snaps := make([][]uint64, len(labels))
	for i, lb := range labels {
		if h, ok := f.series[lb].(*Histogram); ok {
			snaps[i] = h.bucketCounts()
			if t.upper == nil {
				t.upper = append([]float64(nil), h.upper...)
			}
		}
	}
	f.mu.Unlock()
	for i, lb := range labels {
		if snaps[i] == nil {
			continue
		}
		ring := t.rings[lb]
		if ring == nil {
			ring = &bucketRing{vals: make([][]uint64, r.ringCap)}
			t.rings[lb] = ring
		}
		ring.push(snaps[i])
	}
}

// Rate returns the per-second rate of tracked counter family name over
// the trailing window (label selects a series of a labeled family, ""
// the unlabeled one). ok is false while the ring holds fewer than two
// samples — before the first full tick there is no rate to report.
func (r *Rates) Rate(name, label string, window time.Duration) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.counters {
		if t.name != name {
			continue
		}
		ring := t.rings[label]
		if ring == nil || ring.n < 2 {
			return 0, false
		}
		return ring.rate(window, r.interval), true
	}
	return 0, false
}

// WindowQuantile estimates quantile q of tracked histogram family name
// (label as in Rate) over the observations of the trailing window. ok
// is false when the window holds no observation — an idle system has no
// latency, not a zero latency.
func (r *Rates) WindowQuantile(name, label string, q float64, window time.Duration) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.hists {
		if t.name != name {
			continue
		}
		ring := t.rings[label]
		if ring == nil {
			return 0, false
		}
		delta, ok := ring.windowDelta(window, r.interval)
		if !ok {
			return 0, false
		}
		var total uint64
		for _, c := range delta {
			total += c
		}
		if total == 0 {
			return 0, false
		}
		return quantileFromCounts(t.upper, delta, q), true
	}
	return 0, false
}

// Snapshot returns every derived rate, keyed by output series name
// (source label included, e.g. `immunity_cluster_peer_forwards_per_second{peer="hub1"}`)
// and then by window label ("10s", "1m"). The /status payload embeds it.
func (r *Rates) Snapshot() map[string]map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[string]float64)
	for _, t := range r.counters {
		f := r.reg.lookupFamily(t.name)
		var key string
		if f != nil {
			key = f.labelKey
		}
		for lb, ring := range t.rings {
			name := t.outName
			if key != "" {
				name += renderLabels([][2]string{{key, lb}})
			}
			byWindow := make(map[string]float64, len(r.windows))
			for _, w := range r.windows {
				byWindow[windowLabel(w)] = ring.rate(w, r.interval)
			}
			out[name] = byWindow
		}
	}
	return out
}

// sampleRing is a fixed ring of counter snapshots.
type sampleRing struct {
	vals []uint64
	n    int // total pushes
}

func (s *sampleRing) push(v uint64) {
	s.vals[s.n%len(s.vals)] = v
	s.n++
}

// at returns the sample k ticks back (0 = newest).
func (s *sampleRing) at(k int) uint64 {
	return s.vals[(s.n-1-k)%len(s.vals)]
}

// span clamps a window to the ticks of history actually held.
func (s *sampleRing) span(window, interval time.Duration) int {
	steps := int(window / interval)
	if m := s.n - 1; steps > m {
		steps = m
	}
	if m := len(s.vals) - 1; steps > m {
		steps = m
	}
	return steps
}

func (s *sampleRing) rate(window, interval time.Duration) float64 {
	steps := s.span(window, interval)
	if steps <= 0 {
		return 0
	}
	cur, old := s.at(0), s.at(steps)
	if cur <= old {
		return 0
	}
	return float64(cur-old) / (float64(steps) * interval.Seconds())
}

// bucketRing is a fixed ring of histogram bucket-count snapshots.
type bucketRing struct {
	vals [][]uint64
	n    int
}

func (b *bucketRing) push(counts []uint64) {
	b.vals[b.n%len(b.vals)] = counts
	b.n++
}

// windowDelta returns per-bucket observation counts over the trailing
// window (newest snapshot minus the one window ticks back).
func (b *bucketRing) windowDelta(window, interval time.Duration) ([]uint64, bool) {
	steps := int(window / interval)
	if m := b.n - 1; steps > m {
		steps = m
	}
	if m := len(b.vals) - 1; steps > m {
		steps = m
	}
	if steps <= 0 {
		return nil, false
	}
	cur := b.vals[(b.n-1)%len(b.vals)]
	old := b.vals[(b.n-1-steps)%len(b.vals)]
	delta := make([]uint64, len(cur))
	for i := range cur {
		if i < len(old) && cur[i] > old[i] {
			delta[i] = cur[i] - old[i]
		}
	}
	return delta, true
}

// rateSeriesKey renders the raw label block of one derived rate series.
func rateSeriesKey(labelKey, label string, window time.Duration) string {
	if labelKey == "" {
		return renderLabels([][2]string{{"window", windowLabel(window)}})
	}
	return renderLabels([][2]string{{labelKey, label}, {"window", windowLabel(window)}})
}

// windowLabel renders a window compactly: 10s, 1m, 5m, 1h.
func windowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return strconv.Itoa(int(d/time.Hour)) + "h"
	case d >= time.Minute && d%time.Minute == 0:
		return strconv.Itoa(int(d/time.Minute)) + "m"
	case d >= time.Second && d%time.Second == 0:
		return strconv.Itoa(int(d/time.Second)) + "s"
	default:
		return d.String()
	}
}
