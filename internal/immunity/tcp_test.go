package immunity

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// tcpFleet builds n phones connected to the hub over real sockets.
func tcpFleet(t *testing.T, hub *Exchange, addr string, n int) []*phoneSim {
	t.Helper()
	tr := NewTCPTransport(addr)
	phones := make([]*phoneSim, n)
	for i := range phones {
		svc, err := NewService(fmt.Sprintf("phone%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		proc, _ := attach(t, svc, "app")
		client, err := Connect(tr, svc.Name(), svc)
		if err != nil {
			t.Fatal(err)
		}
		phones[i] = &phoneSim{svc: svc, proc: proc, client: client}
		t.Cleanup(func() { client.Close(); svc.Close() })
	}
	return phones
}

// TestTCPFleetEndToEnd: the full confirm-before-arm scenario over real
// sockets — gating below threshold, arming and fleet-wide install at it.
func TestTCPFleetEndToEnd(t *testing.T) {
	hub := newTestHub(t, 2)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	phones := tcpFleet(t, hub, srv.Addr(), 3)
	key := testSig(0).Key()

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub sees first report", func() bool { return len(hub.Provenance()) == 1 })
	time.Sleep(20 * time.Millisecond)
	for i := 1; i < 3; i++ {
		if phones[i].armedOn(key) {
			t.Fatalf("phone%d armed below the confirmation threshold", i)
		}
	}
	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.armedOn(key) })
	}
	prov := hub.Provenance()[0]
	if !prov.Armed || prov.Confirmations != 2 {
		t.Fatalf("after threshold over TCP: %+v", prov)
	}

	// FetchStatus sees the same picture over its own throwaway session.
	st, err := FetchStatus(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Threshold != 2 || len(st.Provenance) != 1 || !st.Provenance[0].Armed {
		t.Fatalf("status = %+v, want epoch 1, threshold 2, one armed signature", st)
	}
	if len(st.Devices) != 3 {
		t.Fatalf("status devices = %v, want 3", st.Devices)
	}
}

// TestTCPReconnectRestoresConfirmation is the regression test for the
// close-then-reconnect path: ExchangeClient.Close followed by a new
// Connect of the same device id must resume the device's prior
// confirmation state — its earlier confirmation still counts (nothing is
// lost) and its re-report does not count twice (nothing is double
// counted, so a single device bouncing cannot arm the fleet alone).
func TestTCPReconnectRestoresConfirmation(t *testing.T) {
	hub := newTestHub(t, 2)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	phones := tcpFleet(t, hub, srv.Addr(), 2)

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first confirmation", func() bool {
		prov := hub.Provenance()
		return len(prov) == 1 && prov[0].Confirmations == 1
	})

	// phone0 disconnects and reconnects as a fresh client over TCP; the
	// epoch-0 resubscription re-reports its whole local history.
	phones[0].client.Close()
	reportsBefore := hub.Stats().Reports
	client, err := Connect(NewTCPTransport(srv.Addr()), "phone0", phones[0].svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	phones[0].client = client
	waitFor(t, "re-report landed", func() bool { return hub.Stats().Reports > reportsBefore })

	prov := hub.Provenance()[0]
	if prov.Armed {
		t.Fatalf("reconnect armed the fleet below threshold: %+v", prov)
	}
	if prov.Confirmations != 1 || len(prov.ConfirmedBy) != 1 || prov.ConfirmedBy[0] != "phone0" {
		t.Fatalf("reconnect did not restore confirmation state: %+v, want exactly phone0", prov)
	}

	// The restored state still counts toward the threshold: one more
	// distinct device arms the fleet.
	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	key := testSig(0).Key()
	waitFor(t, "fleet armed at threshold", func() bool {
		prov := hub.Provenance()[0]
		return prov.Armed && prov.Confirmations == 2
	})
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.armedOn(key) })
	}
}

// TestTCPSessionDropReconnects: a dropped socket (server restart) is
// redialed automatically, the hello resubscribes from the last applied
// epoch, and traffic resumes — no client restart needed.
func TestTCPSessionDropReconnects(t *testing.T) {
	hub := newTestHub(t, 1)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	phones := tcpFleet(t, hub, addr, 2)
	key0 := testSig(0).Key()

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "phone1 armed", func() bool { return phones[1].armedOn(key0) })

	// Drop every socket; the hub stays up (only the listener bounces).
	srv.Close()
	srv2, err := ServeTCP(hub, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "clients redialed", func() bool {
		return phones[0].client.Reconnects() >= 1 && phones[1].client.Reconnects() >= 1
	})

	// New detections still propagate after the bounce.
	if _, _, err := phones[0].svc.Publish("local", testSig(1)); err != nil {
		t.Fatal(err)
	}
	key1 := testSig(1).Key()
	waitFor(t, "phone1 armed with post-bounce antibody", func() bool { return phones[1].armedOn(key1) })
}

// TestClientEpochRegressionResync: a client whose stored fleet epoch is
// ahead of the hub's (the hub restarted without durable provenance, so
// its epoch counter reset) must detect the regression from the ack and
// resubscribe from zero — otherwise its catch-up filter would skip
// armings that happened while it was disconnected, forever.
func TestClientEpochRegressionResync(t *testing.T) {
	hub := newTestHub(t, 1)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	// A on TCP; B on loopback (unaffected by the TCP bounce).
	svcA, err := NewService("phoneA", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()
	procA, _ := attach(t, svcA, "app")
	clientA, err := Connect(NewTCPTransport(addr), "phoneA", svcA)
	if err != nil {
		t.Fatal(err)
	}
	defer clientA.Close()
	svcB, err := NewService("phoneB", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svcB.Close()
	clientB, err := Connect(NewLoopback(hub), "phoneB", svcB)
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()

	if _, _, err := svcB.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	a := &phoneSim{svc: svcA, proc: procA}
	waitFor(t, "A armed with sig0", func() bool { return a.armedOn(testSig(0).Key()) })

	// Simulate A having synced with a pre-restart hub whose epochs ran
	// far ahead of this one's.
	clientA.mu.Lock()
	clientA.fleetEpochs[clientA.hubGen] = 99
	clientA.mu.Unlock()

	// Drop A's socket; while A is disconnected, the fleet arms sig1.
	srv.Close()
	if _, _, err := svcB.Publish("local", testSig(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sig1 armed while A is away", func() bool { return hub.ArmedCount() == 2 })
	srv2, err := ServeTCP(hub, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// A's redial hellos with epoch 99, sees the ack's lower epoch,
	// resets, and the epoch-0 catch-up replays what it missed.
	waitFor(t, "A armed with sig1 after resync", func() bool { return a.armedOn(testSig(1).Key()) })
	waitFor(t, "A's epoch matches the hub", func() bool { return clientA.FleetEpoch() == 2 })
}

// TestClientHubGenerationResync: a hub restarted WITHOUT durable
// provenance whose epoch counter has regrown to meet the client's is
// undetectable by epoch comparison alone — the ack's generation id must
// trigger the resubscribe-from-zero, or the client silently skips
// armings filtered against an epoch from the previous incarnation.
func TestClientHubGenerationResync(t *testing.T) {
	hub1, err := NewExchange(1)
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := ServeTCP(hub1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	svcA, err := NewService("phoneA", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svcA.Close()
	procA, _ := attach(t, svcA, "app")
	clientA, err := Connect(NewTCPTransport(addr), "phoneA", svcA)
	if err != nil {
		t.Fatal(err)
	}
	defer clientA.Close()
	a := &phoneSim{svc: svcA, proc: procA}

	svcB1, err := NewService("phoneB", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svcB1.Close()
	clientB1, err := Connect(NewLoopback(hub1), "phoneB", svcB1)
	if err != nil {
		t.Fatal(err)
	}
	defer clientB1.Close()
	if _, _, err := svcB1.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "A armed with sig0 at epoch 1", func() bool { return a.armedOn(testSig(0).Key()) })

	// The hub dies with its state (no store). Before the TCP port comes
	// back — so A cannot reconnect early — a fresh hub arms a DIFFERENT
	// signature, regrowing its epoch to exactly A's (1).
	srv1.Close()
	hub1.Close()
	clientB1.Close()
	hub2 := newTestHub(t, 1)
	svcB2, err := NewService("phoneB2", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svcB2.Close()
	clientB2, err := Connect(NewLoopback(hub2), "phoneB2", svcB2)
	if err != nil {
		t.Fatal(err)
	}
	defer clientB2.Close()
	if _, _, err := svcB2.Publish("local", testSig(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "new hub armed sig1 at its epoch 1", func() bool { return hub2.ArmedCount() == 1 })

	srv2, err := ServeTCP(hub2, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// A reconnects with epoch 1 against a hub whose epoch is also 1 —
	// only the generation change reveals that sig1 is news to A.
	waitFor(t, "A armed with sig1 after generation resync", func() bool { return a.armedOn(testSig(1).Key()) })
}

// TestTCPVersionMismatchRejected: an old client speaking a different
// protocol version is answered with a clean failure ack and a closed
// connection — never a hang.
func TestTCPVersionMismatchRejected(t *testing.T) {
	hub := newTestHub(t, 1)
	srv, err := ServeTCP(hub, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	old := wire.Message{V: wire.Version + 41, Type: wire.TypeHello,
		Hello: &wire.Hello{Device: "museum-piece", Epoch: 0}}
	if err := wire.WriteFrame(nc, old); err != nil {
		t.Fatal(err)
	}
	m, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatalf("want failure ack, got read error %v", err)
	}
	if m.Type != wire.TypeAck || m.Ack.OK {
		t.Fatalf("want failure ack, got %+v", m)
	}
	if !strings.Contains(m.Ack.Error, "version") {
		t.Fatalf("ack error %q does not name the version", m.Ack.Error)
	}
	// The hub hangs up after the refusal: the next read fails fast
	// rather than deadline-expiring (which would mean a hang).
	start := time.Now()
	if _, err := wire.ReadFrame(nc); err == nil {
		t.Fatal("connection still open after version refusal")
	}
	if time.Since(start) > 4*time.Second {
		t.Fatal("old client hung instead of being disconnected")
	}
	// And the client-side API surfaces it as a permanent connect error.
	svc, err := NewService("old-phone", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := Connect(badVersionTransport{NewTCPTransport(srv.Addr())}, "old-phone", svc); err == nil {
		t.Fatal("version-mismatched Connect succeeded")
	}
}

// badVersionTransport rewrites outgoing hellos to a wrong version,
// simulating an old client binary on the real TCP path.
type badVersionTransport struct{ inner Transport }

func (b badVersionTransport) Dial(recv func(wire.Message), down func(err error)) (Session, error) {
	s, err := b.inner.Dial(recv, down)
	if err != nil {
		return nil, err
	}
	return badVersionSession{s}, nil
}

type badVersionSession struct{ Session }

func (s badVersionSession) Send(m wire.Message) error {
	if m.Type == wire.TypeHello {
		m.V = 0
	}
	return s.Session.Send(m)
}
