package immunity

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Transport is a device's path to a fleet exchange: it moves wire
// messages and nothing else. Dial opens one session; recv is invoked for
// every hub→client message in order (on a transport goroutine, with no
// client locks held), and down is invoked at most once when the session
// dies for any reason other than a local Close. The two built-in
// implementations are the in-process Loopback and the TCP transport.
type Transport interface {
	Dial(recv func(wire.Message), down func(err error)) (Session, error)
}

// Session is one live wire session from the client's side.
type Session interface {
	// Send delivers one client→hub message. It may fail when the session
	// has died; the client recovers by redialing.
	Send(m wire.Message) error
	// Close tears the session down. The down callback does not fire for
	// a local Close.
	Close() error
}

// helloTimeout bounds how long a dial waits for the hub's ack.
const helloTimeout = 10 * time.Second

// dialAttempt quarantines one dial's epoch advances until the handshake
// accepts the session. Guarded by ExchangeClient.mu.
type dialAttempt struct {
	maxEpoch uint64 // highest delta epoch received on this attempt's session
}

// errPermanent wraps session errors that redialing cannot fix (the hub
// refused the handshake: version mismatch, bad device id).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// ExchangeClient bridges one phone's Service to a fleet exchange over a
// Transport. It owns the protocol session: hello/ack handshake carrying
// the fleet epoch already applied (so a reconnect receives only missed
// deltas), upward reports of locally detected signatures, downward delta
// installs into the Service, and automatic redial with backoff when the
// transport session drops.
type ExchangeClient struct {
	id    string
	t     Transport
	svc   *Service
	maxV  int    // highest wire version to advertise (WithClientWireCeiling)
	token string // bearer token carried in every hello (WithClientToken)

	mu        sync.Mutex
	fromFleet map[string]bool // keys received from the hub; not re-reported
	// ver is the negotiated wire version of the current session (from
	// the ack; 0 while no session is up). Every client→hub message after
	// the hello is stamped — and therefore framed — at exactly this
	// version: a v2 hub never sees a binary frame.
	ver int
	// fleetEpochs is the client's merged multi-hub view: the newest
	// delta epoch applied per hub incarnation (gen, learned from the
	// ack). The whole map travels in every hello, so whichever hub of a
	// federated cluster answers the dial finds its own resume point —
	// epochs are only comparable within one incarnation, and a hub the
	// client never spoke to simply replays from zero (hot-install
	// dedupes). hubGen is the incarnation currently attached.
	fleetEpochs map[string]uint64
	hubGen      string
	sess        Session
	// curAtt is the dial attempt whose session passed the handshake;
	// only its deltas may advance fleetEpochs. A session the handshake
	// later condemns (foreign flat-epoch filter, epoch regression) still
	// installs every delta it delivers — an antibody is never refused —
	// but its epochs are quarantined in the attempt: otherwise a
	// condemned session's delta racing the redial would fast-forward the
	// resume point past armings that were filtered out and lose them for
	// good.
	curAtt      *dialAttempt
	ackCh       chan wire.Ack
	cancelLocal func()
	closed      bool
	permErr     error // set when the hub refused us for good

	downCh     chan struct{}
	closeCh    chan struct{}
	wg         sync.WaitGroup
	reconnects atomic.Uint64
	closeOnce  sync.Once

	// Optional mirrors onto a shared registry (WithClientMetrics). All
	// nil — and therefore no-ops — unless the option was given.
	metReconnects *metrics.Counter
	metReports    *metrics.Counter
	metInstalls   *metrics.Counter
}

// ClientOption configures an ExchangeClient.
type ClientOption func(*ExchangeClient)

// WithClientWireCeiling caps the wire version the client advertises in
// its hello at v — e.g. 2 keeps the session on the JSON codec against
// any hub, which is how the version-matrix tests model a not-yet-
// upgraded device. Values outside [wire.MinVersion, wire.Version] mean
// no cap.
func WithClientWireCeiling(v int) ClientOption {
	return func(c *ExchangeClient) { c.maxV = v }
}

// WithClientToken attaches a bearer token (see immunity/auth) to every
// hello the client sends — required against an auth-enabled hub, whose
// verifier must accept the token and find this device id in its device
// claim. The token rides in the pre-negotiation hello (ignored by
// auth-disabled hubs of any version), so the same client works against
// both. An empty token leaves the hello bare.
func WithClientToken(token string) ClientOption {
	return func(c *ExchangeClient) { c.token = token }
}

// WithClientMetrics mirrors the client's session health onto reg,
// labelled by device id: immunity_client_reconnects_total (redials
// after a drop), immunity_client_reports_total (report messages sent
// upward), immunity_client_installs_total (fleet signatures installed
// from deltas). The registry's instruments are lock-free, so the hooks
// are safe on the transport goroutine.
func WithClientMetrics(reg *metrics.Registry) ClientOption {
	return func(c *ExchangeClient) {
		c.metReconnects = reg.CounterVec("immunity_client_reconnects_total",
			"Redials after a dropped hub session, per device.", "device").With(c.id)
		c.metReports = reg.CounterVec("immunity_client_reports_total",
			"Report messages sent to the hub, per device.", "device").With(c.id)
		c.metInstalls = reg.CounterVec("immunity_client_installs_total",
			"Fleet signatures installed from hub deltas, per device.", "device").With(c.id)
	}
}

// Connect attaches a phone's Service to the fleet exchange reachable
// through t, under deviceID. The initial dial and handshake are
// synchronous — a refused handshake (e.g. protocol version mismatch) or
// unreachable hub fails here — after which the client keeps itself
// connected: a dropped session is redialed with backoff, the hello
// carries the last applied fleet epoch, and the device's entire local
// history is re-reported (the hub discards echoes and duplicates, so
// re-reporting is idempotent). Disconnect with Close.
func Connect(t Transport, deviceID string, svc *Service, opts ...ClientOption) (*ExchangeClient, error) {
	if svc == nil {
		return nil, fmt.Errorf("exchange connect %s: nil service", deviceID)
	}
	if deviceID == "" {
		return nil, fmt.Errorf("exchange connect: empty device id")
	}
	c := &ExchangeClient{
		id:          deviceID,
		t:           t,
		svc:         svc,
		fromFleet:   make(map[string]bool),
		fleetEpochs: make(map[string]uint64),
		downCh:      make(chan struct{}, 1),
		closeCh:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.maxV < wire.MinVersion || c.maxV > wire.Version {
		c.maxV = wire.Version
	}
	if err := c.dial(); err != nil {
		return nil, fmt.Errorf("exchange connect %s: %w", deviceID, err)
	}
	c.resubscribe()
	c.wg.Add(1)
	go c.reconnectLoop()
	return c, nil
}

// dial opens one session and completes the hello/ack handshake.
func (c *ExchangeClient) dial() error {
	ackCh := make(chan wire.Ack, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("client closed")
	}
	c.ackCh = ackCh
	epoch := c.fleetEpochs[c.hubGen]
	epochs := make(map[string]uint64, len(c.fleetEpochs))
	for g, e := range c.fleetEpochs {
		epochs[g] = e
	}
	c.mu.Unlock()
	clearAck := func() {
		c.mu.Lock()
		if c.ackCh == ackCh {
			c.ackCh = nil
		}
		c.mu.Unlock()
	}

	att := &dialAttempt{}
	sess, err := c.t.Dial(func(m wire.Message) { c.recv(att, m) }, c.down)
	if err != nil {
		clearAck()
		return err
	}
	// The hello is framed at the floor of the advertised range: a hub
	// still speaking only v1 (a mid-rollout fleet) understands the
	// envelope and ignores the range fields it never knew, while a
	// range-aware hub negotiates up to the highest common version from
	// min_v/max_v. Framing at wire.Version instead would make an old
	// hub refuse a client that is perfectly able to speak v1.
	hello := wire.Message{V: wire.MinVersion, Type: wire.TypeHello,
		Hello: &wire.Hello{Device: c.id, Epoch: epoch,
			MinV: wire.MinVersion, MaxV: c.maxV, Epochs: epochs, Token: c.token}}
	ackWait := helloTimeout
	if err := sess.Send(hello); err != nil {
		// A refused handshake surfaces differently per transport: over
		// TCP the hub queues the failure ack and hangs up (Send itself
		// succeeded), over loopback the refusal IS the Send error while
		// the ack still arrives on the queue goroutine. Give the ack a
		// short window so a refusal classifies as permanent on both
		// transports; absent one, report the send error as transient.
		ackWait = 500 * time.Millisecond
		defer func() {
			clearAck()
			sess.Close()
		}()
		select {
		case ack := <-ackCh:
			if !ack.OK {
				return errPermanent{fmt.Errorf("hub refused: %s", ack.Error)}
			}
		case <-time.After(ackWait):
		case <-c.closeCh:
		}
		return err
	}
	negV := wire.MinVersion // a pre-negotiation hub acks without a version: v1
	select {
	case ack := <-ackCh:
		if !ack.OK {
			clearAck()
			sess.Close()
			return errPermanent{fmt.Errorf("hub refused: %s", ack.Error)}
		}
		if ack.V != 0 {
			negV = ack.V
		}
		// Compare against the epoch the hello actually carried for this
		// gen — the value the hub's catch-up filtered against. Reading
		// the live map here would race the recv goroutine: a delta
		// applied during the handshake bumps it past ack.Epoch and would
		// masquerade as a regression, tearing down a healthy session.
		sent := epochs[ack.Gen]
		c.mu.Lock()
		c.hubGen = ack.Gen
		c.pruneEpochsLocked()
		c.mu.Unlock()
		if ack.V == 0 && epoch > sent {
			// A pre-negotiation (v1) hub ignores the per-gen map and
			// filtered this session's catch-up by the flat epoch — which
			// was keyed to a *different* incarnation and overshoots what
			// we hold for this one, silently shrinking the replay. hubGen
			// is now bound to this hub, so the redial's flat epoch is its
			// own resume point and the catch-up is exact.
			clearAck()
			sess.Close()
			return fmt.Errorf("pre-negotiation hub (gen %q) filtered catch-up by foreign epoch %d (ours for it: %d): redialing",
				ack.Gen, epoch, sent)
		}
		if ack.Epoch < sent {
			// The hub's epoch is outright behind the one we stored for
			// this very incarnation (a provenance store rolled back under
			// it): our resume point is fiction and this session's
			// catch-up was filtered against it. Resubscribe from scratch;
			// the redial's epoch-0 entry replays the full armed set
			// (hot-install dedupes whatever we already hold). A *new*
			// incarnation needs no such reset — its gen is absent from
			// our map, so the hub already replayed from zero.
			c.mu.Lock()
			c.fleetEpochs[ack.Gen] = 0
			c.mu.Unlock()
			clearAck()
			sess.Close()
			return fmt.Errorf("hub epoch regressed (gen %q, epoch %d vs our %d): resubscribing from 0", ack.Gen, ack.Epoch, sent)
		}
	case <-time.After(ackWait):
		clearAck()
		sess.Close()
		return errors.New("timed out waiting for hub ack")
	case <-c.closeCh:
		clearAck()
		sess.Close()
		return errors.New("client closed")
	}
	c.mu.Lock()
	if c.closed {
		// Close raced the tail of the handshake and saw no session to
		// tear down; installing sess now would leak it (and keep the
		// device registered on the hub) forever.
		c.mu.Unlock()
		sess.Close()
		return errors.New("client closed")
	}
	c.sess = sess
	c.curAtt = att
	c.ver = negV
	// Merge deltas that arrived before the handshake settled: on an
	// accepted session they are safe resume-point advances.
	if att.maxEpoch > c.fleetEpochs[c.hubGen] {
		c.fleetEpochs[c.hubGen] = att.maxEpoch
	}
	c.ackCh = nil // handshake done; later acks are unsolicited
	c.mu.Unlock()
	return nil
}

// resubscribe (re)wires the local report path: the whole local history
// is replayed from epoch 0 through the report filter, so signatures
// detected before connecting — or while disconnected — reach the hub.
func (c *ExchangeClient) resubscribe() {
	c.mu.Lock()
	old := c.cancelLocal
	c.cancelLocal = nil
	c.mu.Unlock()
	if old != nil {
		old()
	}
	cancel := c.svc.Subscribe("exchange:"+c.id, 0, func(_ uint64, sigs []*core.Signature) {
		c.reportLocal(sigs)
	})
	c.mu.Lock()
	closed := c.closed
	if !closed {
		c.cancelLocal = cancel
	}
	c.mu.Unlock()
	if closed {
		cancel()
	}
}

// reportLocal forwards locally accepted signatures to the hub in one
// report message, filtering out signatures that came *from* the hub. A
// failed send marks the session dead (a write stall is a dead session
// even while its read side idles along) so the reconnect resubscribes
// and re-reports the full history — a detection must never be silently
// lost.
func (c *ExchangeClient) reportLocal(sigs []*core.Signature) {
	c.mu.Lock()
	sess := c.sess
	ver := c.ver
	out := make([]wire.Signature, 0, len(sigs))
	for _, sig := range sigs {
		if !c.fromFleet[sig.Key()] {
			out = append(out, wire.FromCore(sig))
		}
	}
	c.mu.Unlock()
	if sess == nil || len(out) == 0 {
		return
	}
	// Stamped — and therefore framed — at the session's negotiated
	// version: binary to a v3 hub, JSON to anything older.
	if err := sess.Send(wire.Message{V: ver, Type: wire.TypeReport, Report: &wire.Report{Sigs: out}}); err != nil {
		c.down(err)
		return
	}
	c.metReports.Inc()
}

// recv handles one hub→client message on behalf of dial attempt att
// (transport goroutine).
func (c *ExchangeClient) recv(att *dialAttempt, m wire.Message) {
	switch m.Type {
	case wire.TypeAck:
		c.mu.Lock()
		ackCh := c.ackCh
		if m.Ack.OK && ackCh != nil {
			// Bind the incarnation before handing the ack to dial: the
			// catch-up delta may arrive on this goroutine before dial's
			// select runs, and its epoch must be recorded under the gen
			// that produced it.
			c.hubGen = m.Ack.Gen
		}
		c.mu.Unlock()
		if ackCh != nil {
			select {
			case ackCh <- *m.Ack:
			default:
			}
		} else if !m.Ack.OK {
			// An unsolicited failure ack is the hub telling an
			// established session to go away for good (e.g. superseded
			// by a newer session for the same device): stop redialing.
			c.mu.Lock()
			c.permErr = fmt.Errorf("hub: %s", m.Ack.Error)
			c.mu.Unlock()
		}
	case wire.TypeDelta:
		c.applyDelta(att, m.Delta)
	case wire.TypeConfirm, wire.TypeStatus:
		// Receipts and status snapshots are informational.
	}
}

// applyDelta installs fleet-armed signatures into the phone's Service.
// Each key is marked before publishing so the local delta subscription
// never echoes it back as a confirmation. The resume point only
// advances for the accepted session's deltas — an attempt the
// handshake condemns keeps its epochs quarantined (see curAtt).
func (c *ExchangeClient) applyDelta(att *dialAttempt, d *wire.Delta) {
	applied := true
	for _, ws := range d.Sigs {
		sig, err := ws.ToCore()
		if err != nil {
			// A malformed push must not take the device down — but it
			// must not count as applied either, or the epoch would claim
			// an antibody the device never installed.
			applied = false
			continue
		}
		c.mu.Lock()
		c.fromFleet[sig.Key()] = true
		c.mu.Unlock()
		_, _, _ = c.svc.Publish("fleet", sig)
		c.metInstalls.Inc()
	}
	if !applied {
		return // next reconnect re-requests this delta's range
	}
	c.mu.Lock()
	if d.Epoch > att.maxEpoch {
		att.maxEpoch = d.Epoch
		if c.curAtt == att && att.maxEpoch > c.fleetEpochs[c.hubGen] {
			c.fleetEpochs[c.hubGen] = att.maxEpoch
		}
	}
	c.mu.Unlock()
}

// pruneEpochsLocked bounds the per-gen epoch map: a device that rode
// out many memory-only hub restarts must not accumulate resume points
// for incarnations that no longer exist. Dropping one only costs a full
// replay on a hub that somehow returns under a dropped gen — redundant
// traffic, never a lost antibody. Caller holds c.mu.
func (c *ExchangeClient) pruneEpochsLocked() {
	const maxGens = 16
	for g := range c.fleetEpochs {
		if len(c.fleetEpochs) <= maxGens {
			break
		}
		if g != c.hubGen {
			delete(c.fleetEpochs, g)
		}
	}
}

// down is invoked by the transport when the session dies.
func (c *ExchangeClient) down(error) {
	select {
	case c.downCh <- struct{}{}:
	default:
	}
}

// shutdownSession releases the client's live resources — the local
// report subscription and the wire session — without marking the client
// closed. It backs both the permanent-stop path (a client the hub
// refused must not keep receiving Service deltas on a dead session) and
// Close itself.
func (c *ExchangeClient) shutdownSession() {
	c.mu.Lock()
	cancel := c.cancelLocal
	c.cancelLocal = nil
	sess := c.sess
	c.sess = nil
	c.ver = 0
	c.curAtt = nil // a dead session's stragglers must not move the resume point
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if sess != nil {
		sess.Close()
	}
}

// reconnectLoop redials dropped sessions with exponential backoff. A
// permanent refusal (the hub rejecting the handshake, or superseding
// this session) stops the loop and releases the subscription and
// session.
func (c *ExchangeClient) reconnectLoop() {
	defer c.wg.Done()
	backoffMin, backoffMax := 5*time.Millisecond, 500*time.Millisecond
	for {
		select {
		case <-c.closeCh:
			return
		case <-c.downCh:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.permErr != nil {
			c.mu.Unlock()
			c.shutdownSession()
			return
		}
		if c.sess != nil {
			c.sess.Close()
			c.sess = nil
		}
		c.ver = 0
		c.curAtt = nil
		c.mu.Unlock()

		backoff := backoffMin
		for {
			err := c.dial()
			if err == nil {
				c.reconnects.Add(1)
				c.metReconnects.Inc()
				c.resubscribe()
				break
			}
			var perm errPermanent
			if errors.As(err, &perm) {
				c.mu.Lock()
				c.permErr = perm.err
				c.mu.Unlock()
				c.shutdownSession()
				return
			}
			select {
			case <-c.closeCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		}
	}
}

// DeviceID returns the client's device id.
func (c *ExchangeClient) DeviceID() string { return c.id }

// WireVersion returns the negotiated wire protocol version of the
// current session, or 0 while disconnected.
func (c *ExchangeClient) WireVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver
}

// FleetEpoch returns the newest fleet delta epoch the client applied
// from the hub incarnation it is currently attached to.
func (c *ExchangeClient) FleetEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fleetEpochs[c.hubGen]
}

// FleetEpochs returns the client's merged multi-hub view: the newest
// applied epoch per hub incarnation it has spoken to.
func (c *ExchangeClient) FleetEpochs() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.fleetEpochs))
	for g, e := range c.fleetEpochs {
		out[g] = e
	}
	return out
}

// Reconnects returns how many times the client redialed after a drop.
func (c *ExchangeClient) Reconnects() uint64 { return c.reconnects.Load() }

// Err returns the permanent error that stopped the client, if any (e.g.
// the hub refusing the protocol version after an upgrade).
func (c *ExchangeClient) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.permErr
}

// Close disconnects the phone from the hub: local reporting stops, the
// session closes, and the redial loop exits. The hub keeps the device's
// confirmation state — a later Connect with the same device id resumes
// it. Close is idempotent.
func (c *ExchangeClient) Close() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.closeCh)
		c.shutdownSession()
		c.wg.Wait()
	})
}
