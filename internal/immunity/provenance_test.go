package immunity

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// TestFileProvenanceUpsert: the JSON-lines log replays last-wins, in
// first-seen order, and skips a torn tail without losing the prefix.
func TestFileProvenanceUpsert(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.prov")
	store := NewFileProvenance(path)
	recA := ProvenanceRecord{Seq: 1, Key: "a", Sig: wire.FromCore(testSig(0)),
		FirstSeen: "phone0", ConfirmedBy: []string{"phone0"}}
	recB := ProvenanceRecord{Seq: 2, Key: "b", Sig: wire.FromCore(testSig(1)),
		FirstSeen: "phone1", ConfirmedBy: []string{"phone1"}}
	for _, rec := range []ProvenanceRecord{recA, recB} {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Upsert: "a" arms.
	recA.ConfirmedBy = []string{"phone0", "phone1"}
	recA.Armed = true
	recA.ArmEpoch = 1
	if err := store.Append(recA); err != nil {
		t.Fatal(err)
	}
	// Torn tail from a crashed write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"key":"c","first_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "a" || recs[1].Key != "b" {
		t.Fatalf("load = %+v, want [a b]", recs)
	}
	if !recs[0].Armed || recs[0].ArmEpoch != 1 || len(recs[0].ConfirmedBy) != 2 {
		t.Fatalf("upsert lost: %+v", recs[0])
	}
	// Missing file is an empty store.
	empty, err := NewFileProvenance(filepath.Join(t.TempDir(), "absent")).Load()
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing file: recs=%v err=%v", empty, err)
	}
}

// TestExchangeRestartPreservesProvenance is the durable-gating scenario:
// a hub restart mid-scenario must neither arm below threshold (the
// restarted hub still refuses echoes of its own pushes and remembers
// which device already confirmed) nor lose the first confirmation (one
// more distinct device arms the fleet).
func TestExchangeRestartPreservesProvenance(t *testing.T) {
	store := NewFileProvenance(filepath.Join(t.TempDir(), "fleet.prov"))
	key := testSig(0).Key()

	// Life 1: phone0 confirms; at threshold 2 the signature stays
	// unarmed, but the confirmation is persisted.
	hub1, err := NewExchange(2, WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	phones := fleetSim(t, hub1, 2)
	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first confirmation persisted", func() bool {
		recs, err := store.Load()
		return err == nil && len(recs) == 1 && len(recs[0].ConfirmedBy) == 1
	})
	phones[0].client.Close()
	phones[1].client.Close()
	hub1.Close()

	// Life 2: the restarted hub reloads provenance before serving.
	hub2, err := NewExchange(2, WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	prov := hub2.Provenance()
	if len(prov) != 1 || prov[0].Armed || prov[0].Confirmations != 1 || prov[0].FirstSeen != "phone0" {
		t.Fatalf("restarted hub provenance = %+v, want phone0's single unarmed confirmation", prov)
	}

	// The phones reconnect (fresh clients, as after any hub outage);
	// phone0's epoch-0 re-report of its own detection must not double
	// count.
	lb := NewLoopback(hub2)
	for i, ph := range phones {
		client, err := Connect(lb, fmt.Sprintf("phone%d", i), ph.svc)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		ph.client = client
	}
	time.Sleep(20 * time.Millisecond) // let a wrong re-arm have its chance
	if prov := hub2.Provenance()[0]; prov.Armed || prov.Confirmations != 1 {
		t.Fatalf("restart inflated provenance: %+v", prov)
	}
	if phones[1].armedOn(key) {
		t.Fatal("phone1 armed below threshold after hub restart")
	}

	// The preserved confirmation still counts: phone1's independent
	// detection is the second confirmation and arms the fleet.
	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fleet armed after restart", func() bool {
		prov := hub2.Provenance()[0]
		return prov.Armed && prov.Confirmations == 2
	})
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.armedOn(key) })
	}

	// Life 3: a third boot sees the armed state and catches a new phone
	// up from it.
	hub2.Close()
	hub3, err := NewExchange(2, WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	defer hub3.Close()
	if got := hub3.ArmedCount(); got != 1 {
		t.Fatalf("third boot armed count = %d, want 1", got)
	}
	svc, err := NewService("phone-new", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	proc, _ := attach(t, svc, "app")
	client, err := Connect(NewLoopback(hub3), "phone-new", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	newcomer := &phoneSim{svc: svc, proc: proc}
	waitFor(t, "newcomer caught up from persisted arming", func() bool { return newcomer.armedOn(key) })
}

// TestCatchupRecordsMatchSignatures: when arming order differs from
// first-report order, the catch-up path must persist each record with
// its own signature — a record whose Key names one bug but whose Sig is
// another would corrupt echo suppression after a restart.
func TestCatchupRecordsMatchSignatures(t *testing.T) {
	store := NewMemProvenance()
	hub := newTestHub(t, 2, WithProvenanceStore(store))
	phones := fleetSim(t, hub, 2)

	// sig 0 is reported first but arms second; sig 1 arms first.
	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sig0 reported", func() bool { return len(hub.Provenance()) == 1 })
	for i := range phones {
		if _, _, err := phones[i].svc.Publish("local", testSig(1)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "sig1 armed", func() bool { return hub.ArmedCount() == 1 })
	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sig0 armed", func() bool { return hub.ArmedCount() == 2 })

	// A new device's hello takes the catch-up path for both signatures.
	svc, err := NewService("phone-new", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	client, err := Connect(NewLoopback(hub), "phone-new", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	waitFor(t, "newcomer caught up", func() bool { return svc.Epoch() == 2 })

	recs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("store has %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		sig, err := rec.Sig.ToCore()
		if err != nil {
			t.Fatal(err)
		}
		if sig.Key() != rec.Key {
			t.Fatalf("record key %q carries the signature of %q", rec.Key, sig.Key())
		}
	}
}

// TestExchangeRestartOverTCP: the same durability property across the
// real transport — clients that keep redialing a bounced daemon resume
// against the reloaded provenance with no state loss.
func TestExchangeRestartOverTCP(t *testing.T) {
	store := NewFileProvenance(filepath.Join(t.TempDir(), "fleet.prov"))
	key := testSig(0).Key()

	hub1, err := NewExchange(2, WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := ServeTCP(hub1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()
	phones := tcpFleet(t, hub1, addr, 2)

	if _, _, err := phones[0].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "confirmation persisted", func() bool {
		recs, err := store.Load()
		return err == nil && len(recs) == 1 && len(recs[0].ConfirmedBy) == 1
	})

	// Hub process "reboots": server and hub die, a new hub over the same
	// store comes back on the same port; the clients redial on their own.
	srv1.Close()
	hub1.Close()
	hub2, err := NewExchange(2, WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	srv2, err := ServeTCP(hub2, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "clients redialed after reboot", func() bool {
		return phones[0].client.Reconnects() >= 1 && phones[1].client.Reconnects() >= 1
	})
	if prov := hub2.Provenance()[0]; prov.Armed || prov.Confirmations != 1 {
		t.Fatalf("rebooted hub lost or inflated provenance: %+v", prov)
	}

	if _, _, err := phones[1].svc.Publish("local", testSig(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fleet armed after reboot", func() bool {
		prov := hub2.Provenance()[0]
		return prov.Armed && prov.Confirmations == 2
	})
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.armedOn(key) })
	}
}

// countLines returns the number of newline-terminated records in the log.
func countLines(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}

// TestFileProvenanceCompaction: once dead upsert lines exceed the
// threshold the log rewrites itself to a snapshot — one line per live
// key — and a store reopened over the snapshot loads the same state.
func TestFileProvenanceCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.prov")
	store := NewFileProvenance(path, WithCompactThreshold(10))
	// 3 keys × 20 upserts each: plenty of dead weight.
	for round := 0; round < 20; round++ {
		for k := 0; k < 3; k++ {
			rec := ProvenanceRecord{Seq: k + 1, Key: fmt.Sprintf("key%d", k),
				Sig: wire.FromCore(testSig(k)), FirstSeen: "phone0",
				ConfirmedBy: []string{"phone0"}, RemoteConfirms: round}
			if err := store.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if store.Compactions() == 0 {
		t.Fatal("no compaction despite 57 dead lines over threshold 10")
	}
	if lines := countLines(t, path); lines > 3+10+1 {
		t.Fatalf("log still holds %d lines after compaction (3 live keys, threshold 10)", lines)
	}
	// A fresh store over the compacted log sees the latest records.
	recs, err := NewFileProvenance(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("loaded %d records, want 3", len(recs))
	}
	for _, rec := range recs {
		if rec.RemoteConfirms != 19 {
			t.Fatalf("record %s lost its last upsert: %+v", rec.Key, rec)
		}
	}
}

// TestFileProvenanceCompactionCrashSafe: a stale temp file from a
// crashed compaction is ignored by Load and overwritten by the next
// one; the log itself is never the torn artifact.
func TestFileProvenanceCompactionCrashSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.prov")
	// Simulate a compaction that died before rename.
	if err := os.WriteFile(path+".compact", []byte("{torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := NewFileProvenance(path, WithCompactThreshold(5))
	for i := 0; i < 20; i++ {
		rec := ProvenanceRecord{Seq: 1, Key: "only", Sig: wire.FromCore(testSig(0)), RemoteConfirms: i}
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if store.Compactions() == 0 {
		t.Fatal("no compaction")
	}
	recs, err := NewFileProvenance(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].RemoteConfirms != 19 {
		t.Fatalf("post-crash compacted log loads %+v", recs)
	}
}

// TestExchangeRestartAfterCompaction: a hub whose provenance log
// compacted under heavy upserting restarts with confirmations intact —
// the snapshot is as good as the full log.
func TestExchangeRestartAfterCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.prov")
	store := NewFileProvenance(path, WithCompactThreshold(4))
	hub := newTestHub(t, 4, WithProvenanceStore(store))
	// Many distinct devices confirm many signatures below threshold:
	// every report upserts existing keys, breeding dead lines.
	for round := 0; round < 3; round++ {
		for s := 0; s < 4; s++ {
			hub.report(fmt.Sprintf("phone%d", round), testSig(s))
		}
	}
	if store.Compactions() == 0 {
		t.Fatal("no compaction during the upsert storm")
	}
	hub.Close()

	hub2, err := NewExchange(4, WithProvenanceStore(NewFileProvenance(path)))
	if err != nil {
		t.Fatal(err)
	}
	defer hub2.Close()
	provs := hub2.Provenance()
	if len(provs) != 4 {
		t.Fatalf("restarted hub resumed %d signatures, want 4", len(provs))
	}
	for _, p := range provs {
		if p.Confirmations != 3 || p.Armed {
			t.Fatalf("restarted provenance wrong: %+v", p)
		}
	}
	// The fourth confirmation still arms: nothing was lost to compaction.
	if confirms, armed := hub2.report("phone9", testSig(0)); confirms != 4 || !armed {
		t.Fatalf("post-restart report: confirms=%d armed=%v, want 4/true", confirms, armed)
	}
}
