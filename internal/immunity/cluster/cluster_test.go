package cluster_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/core"
	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// testSig builds a deterministic two-party deadlock signature.
func testSig(id int) *core.Signature {
	a := core.Frame{Class: "com.app.Svc1", Method: "methodA", Line: 10 + id*100}
	b := core.Frame{Class: "com.app.Svc2", Method: "methodB", Line: 20 + id*100}
	return &core.Signature{
		Kind: core.DeadlockSig,
		Pairs: []core.SigPair{
			{Outer: core.CallStack{a}, Inner: core.CallStack{a}},
			{Outer: core.CallStack{b}, Inner: core.CallStack{b}},
		},
	}
}

// sigOwnedBy scans signature ids until the ring assigns one to owner —
// tests that need a known owner pick their signature this way instead
// of hardcoding hash outcomes.
func sigOwnedBy(t *testing.T, r *cluster.Ring, owner string) *core.Signature {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if sig := testSig(i); r.Owner(sig.Key()) == owner {
			return sig
		}
	}
	t.Fatalf("no test signature owned by %s in 10000 tries", owner)
	return nil
}

// sigOwnedDeputy finds a test signature with a specific owner AND a
// specific deputy — for tests that must steer a device's reports
// through a hub that holds no replica of the confirmation set.
func sigOwnedDeputy(t *testing.T, r *cluster.Ring, owner, deputy string) *core.Signature {
	t.Helper()
	for i := 0; i < 10000; i++ {
		sig := testSig(i)
		if r.Owner(sig.Key()) == owner && r.Deputy(sig.Key()) == deputy {
			return sig
		}
	}
	t.Fatalf("no test signature owned by %s with deputy %s in 10000 tries", owner, deputy)
	return nil
}

// waitFor polls until cond or a generous deadline (1-CPU CI with many
// goroutines converges slowly; the deadline only bounds how long a
// genuine failure takes to report).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// phone is one simulated device: its service and exchange client.
type phone struct {
	svc    *immunity.Service
	client *immunity.ExchangeClient
}

// newPhone connects a device through the given transport.
func newPhone(t *testing.T, name string, tr immunity.Transport) *phone {
	t.Helper()
	svc, err := immunity.NewService(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := immunity.Connect(tr, name, svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); svc.Close() })
	return &phone{svc: svc, client: client}
}

// holds reports whether the phone's service holds the signature key.
func (p *phone) holds(key string) bool {
	sigs, _, err := p.svc.Snapshot()
	if err != nil {
		return false
	}
	for _, sig := range sigs {
		if sig.Key() == key {
			return true
		}
	}
	return false
}

// hubNames builds n cluster ids hub0..hub{n-1}.
func hubNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("hub%d", i)
	}
	return out
}

// loopbackCluster federates n in-process hubs over loopback transports.
func loopbackCluster(t *testing.T, n, threshold int) ([]*immunity.Exchange, []*cluster.Node) {
	t.Helper()
	ids := hubNames(n)
	hubs := make([]*immunity.Exchange, n)
	for i := range hubs {
		hub, err := immunity.NewExchange(threshold)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(hub.Close)
		hubs[i] = hub
	}
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		var peers []cluster.Member
		for j := range hubs {
			if j != i {
				peers = append(peers, cluster.Member{ID: ids[j], Transport: immunity.NewLoopback(hubs[j])})
			}
		}
		node, err := cluster.New(cluster.Config{Self: ids[i], Hub: hubs[i], Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		nodes[i] = node
	}
	return hubs, nodes
}

// TestClusterGatesAtOwnerAndPropagates: devices split across a 3-hub
// loopback cluster confirm the same deadlock; below threshold nothing
// arms anywhere, at threshold the owner arms and every hub — and every
// attached device — receives it.
func TestClusterGatesAtOwnerAndPropagates(t *testing.T) {
	hubs, nodes := loopbackCluster(t, 3, 2)
	sig := testSig(0)
	key := sig.Key()
	owner := nodes[0].Ring().Owner(key)

	phones := make([]*phone, 3)
	for i := range phones {
		phones[i] = newPhone(t, fmt.Sprintf("phone%d", i), immunity.NewLoopback(hubs[i]))
	}

	// First confirmation, from a phone attached to hub0 (owner or not).
	if _, _, err := phones[0].svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "owner sees first confirmation", func() bool {
		for _, hub := range hubs {
			for _, p := range hub.Provenance() {
				if p.Key == key && p.Confirmations == 1 {
					return true
				}
			}
		}
		return false
	})
	time.Sleep(20 * time.Millisecond)
	for i, hub := range hubs {
		if hub.ArmedCount() != 0 {
			t.Fatalf("hub%d armed below the confirmation threshold", i)
		}
	}
	for i, p := range phones[1:] {
		if p.holds(key) {
			t.Fatalf("phone%d holds the signature below the confirmation threshold", i+1)
		}
	}

	// Second confirmation from a different hub completes the threshold.
	if _, _, err := phones[1].svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	for i, hub := range hubs {
		h := hub
		waitFor(t, fmt.Sprintf("hub%d armed", i), func() bool { return h.ArmedCount() == 1 })
	}
	for i, p := range phones {
		ph := p
		waitFor(t, fmt.Sprintf("phone%d armed", i), func() bool { return ph.holds(key) })
	}

	// The owner holds the full provenance (2 distinct confirmers); every
	// other hub holds a replicated armed entry attributed to the owner.
	for i, hub := range hubs {
		provs := hub.Provenance()
		var found *immunity.Provenance
		for j := range provs {
			if provs[j].Key == key {
				found = &provs[j]
			}
		}
		if found == nil || !found.Armed {
			t.Fatalf("hub%d: signature not armed in provenance: %+v", i, provs)
		}
		if found.Owner != owner {
			t.Fatalf("hub%d: owner = %q, want %q", i, found.Owner, owner)
		}
		if hubNames(3)[i] == owner {
			if found.Confirmations != 2 || len(found.ConfirmedBy) != 2 {
				t.Fatalf("owner %s: confirmations = %d (%v), want 2 distinct", owner, found.Confirmations, found.ConfirmedBy)
			}
		} else if len(found.ConfirmedBy) != 0 {
			t.Fatalf("non-owner hub%d replicated the confirmation set: %v", i, found.ConfirmedBy)
		}
	}
}

// TestClusterForwardedReportNeverDoubleCounts: a device whose report
// travels through a non-owner hub counts exactly once at the owner, no
// matter how many times the device reconnects and re-reports.
func TestClusterForwardedReportNeverDoubleCounts(t *testing.T) {
	hubs, nodes := loopbackCluster(t, 3, 3)
	// A signature owned by hub1 with deputy hub2, reported by a device
	// attached to hub0: every report takes the forwarding path (hub0,
	// holding no deputy replica of the set, can never echo it locally).
	sig := sigOwnedDeputy(t, nodes[0].Ring(), "hub1", "hub2")
	key := sig.Key()

	svc, err := immunity.NewService("roamer", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	client, err := immunity.Connect(immunity.NewLoopback(hubs[0]), "roamer", svc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	confirmsAtOwner := func() int {
		for _, p := range hubs[1].Provenance() {
			if p.Key == key {
				return p.Confirmations
			}
		}
		return 0
	}
	waitFor(t, "owner counts the forwarded confirmation", func() bool { return confirmsAtOwner() == 1 })

	// Reconnect twice: each reconnect re-reports the full local history
	// through hub0, which forwards again; the owner must still count one.
	for i := 0; i < 2; i++ {
		client.Close()
		client, err = immunity.Connect(immunity.NewLoopback(hubs[0]), "roamer", svc)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "re-report reaches the owner", func() bool {
			return hubs[1].Stats().Reports >= uint64(2+i)
		})
	}
	defer client.Close()
	time.Sleep(20 * time.Millisecond)
	if got := confirmsAtOwner(); got != 1 {
		t.Fatalf("confirmations after re-reports = %d, want 1 (double-counted a forwarded report)", got)
	}

	// And the same device roaming to the owner directly still counts once.
	client.Close()
	client, err = immunity.Connect(immunity.NewLoopback(hubs[1]), "roamer", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	time.Sleep(20 * time.Millisecond)
	if got := confirmsAtOwner(); got != 1 {
		t.Fatalf("confirmations after roaming to the owner = %d, want 1", got)
	}
	if hubs[1].ArmedCount() != 0 {
		t.Fatal("armed below threshold")
	}
}

// tcpHub serves one hub over TCP and returns its address.
func tcpHub(t *testing.T, hub *immunity.Exchange, addr string) (*immunity.ExchangeServer, string) {
	t.Helper()
	srv, err := immunity.ServeTCP(hub, addr)
	if err != nil {
		t.Fatal(err)
	}
	return srv, srv.Addr()
}

// TestClusterOwnerRestartPreservesConfirmations: the owner hub dies
// after two of three confirmations and comes back over the same
// provenance store; the third confirmation — forwarded through a
// non-owner — must arm, proving the forwarded counts survived the
// restart via the owner's provenance log.
func TestClusterOwnerRestartPreservesConfirmations(t *testing.T) {
	store := immunity.NewMemProvenance()

	hubA, err := immunity.NewExchange(3)
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	srvA, addrA := tcpHub(t, hubA, "127.0.0.1:0")
	defer srvA.Close()

	hubB, err := immunity.NewExchange(3, immunity.WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	srvB, addrB := tcpHub(t, hubB, "127.0.0.1:0")

	nodeA, err := cluster.New(cluster.Config{Self: "hubA", Hub: hubA,
		Peers: []cluster.Member{{ID: "hubB", Transport: immunity.NewTCPTransport(addrB)}}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := cluster.New(cluster.Config{Self: "hubB", Hub: hubB,
		Peers: []cluster.Member{{ID: "hubA", Transport: immunity.NewTCPTransport(addrA)}}})
	if err != nil {
		t.Fatal(err)
	}

	sig := sigOwnedBy(t, nodeA.Ring(), "hubB")
	key := sig.Key()
	confirmsAtOwner := func(hub *immunity.Exchange) int {
		for _, p := range hub.Provenance() {
			if p.Key == key {
				return p.Confirmations
			}
		}
		return 0
	}

	// d1 through the non-owner (forwarded), d2 directly at the owner.
	d1 := newPhone(t, "d1", immunity.NewTCPTransport(addrA))
	d2 := newPhone(t, "d2", immunity.NewTCPTransport(addrB))
	if _, _, err := d1.svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d2.svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "owner counts two confirmations", func() bool { return confirmsAtOwner(hubB) == 2 })

	// Owner restarts: node, server, hub all die; a new incarnation
	// resumes from the same store on the same address.
	nodeB.Close()
	srvB.Close()
	hubB.Close()
	hubB2, err := immunity.NewExchange(3, immunity.WithProvenanceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	defer hubB2.Close()
	srvB2, err := immunity.ServeTCP(hubB2, addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB2.Close()
	nodeB2, err := cluster.New(cluster.Config{Self: "hubB", Hub: hubB2,
		Peers: []cluster.Member{{ID: "hubA", Transport: immunity.NewTCPTransport(addrA)}}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB2.Close()

	if got := confirmsAtOwner(hubB2); got != 2 {
		t.Fatalf("restarted owner resumed %d confirmations, want 2", got)
	}

	// The third, threshold-completing confirmation arrives through the
	// non-owner hub — whose link redials the restarted owner on its own.
	d3 := newPhone(t, "d3", immunity.NewTCPTransport(addrA))
	if _, _, err := d3.svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restarted owner arms at the threshold", func() bool { return hubB2.ArmedCount() == 1 })
	waitFor(t, "arming reaches the non-owner hub", func() bool { return hubA.ArmedCount() == 1 })
	for _, p := range []*phone{d1, d2, d3} {
		ph := p
		waitFor(t, "devices armed", func() bool { return ph.holds(key) })
	}
	if got := confirmsAtOwner(hubB2); got != 3 {
		t.Fatalf("owner confirmations after arming = %d, want 3", got)
	}
}

// TestClusterPartitionResubscribesFromSeq: a peer partitioned away from
// an owner misses some armings; on reconnect it replays exactly the
// missed ones — no duplicates, no gaps.
func TestClusterPartitionResubscribesFromSeq(t *testing.T) {
	hubA, err := immunity.NewExchange(1)
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	srvA, addrA := tcpHub(t, hubA, "127.0.0.1:0")
	defer srvA.Close()
	hubB, err := immunity.NewExchange(1)
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Close()
	srvB, addrB := tcpHub(t, hubB, "127.0.0.1:0")

	nodeA, err := cluster.New(cluster.Config{Self: "hubA", Hub: hubA,
		Peers: []cluster.Member{{ID: "hubB", Transport: immunity.NewTCPTransport(addrB)}}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := cluster.New(cluster.Config{Self: "hubB", Hub: hubB,
		Peers: []cluster.Member{{ID: "hubA", Transport: immunity.NewTCPTransport(addrA)}}})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	// Three distinct signatures all owned by hubB, armed on first report.
	var sigs []*core.Signature
	for i := 0; len(sigs) < 3 && i < 10000; i++ {
		if sig := testSig(i); nodeA.Ring().Owner(sig.Key()) == "hubB" {
			sigs = append(sigs, sig)
		}
	}
	if len(sigs) < 3 {
		t.Fatal("not enough hubB-owned signatures")
	}

	// The device rides loopback so the TCP bounce below partitions only
	// the hub-to-hub link, not the device's own session.
	dB := newPhone(t, "dB", immunity.NewLoopback(hubB))
	if _, _, err := dB.svc.Publish("local", sigs[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first arming replicated to hubA", func() bool { return hubA.ArmedCount() == 1 })

	// Partition: every socket into hubB dies (hubA's link included) and
	// the listener bounces. While partitioned, hubB arms two more.
	srvB.Close()
	for _, sig := range sigs[1:] {
		if _, _, err := dB.svc.Publish("local", sig); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "owner armed all three during the partition", func() bool { return hubB.ArmedCount() == 3 })
	if hubA.ArmedCount() != 1 {
		t.Fatalf("partitioned hub advanced to %d armings", hubA.ArmedCount())
	}

	srvB2, err := immunity.ServeTCP(hubB, addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB2.Close()

	waitFor(t, "reconnected peer replayed the missed armings", func() bool { return hubA.ArmedCount() == 3 })
	peerB := func() PeerStatusOf {
		for _, ps := range nodeA.Status() {
			if ps.ID == "hubB" {
				return PeerStatusOf{ps, true}
			}
		}
		return PeerStatusOf{}
	}
	// The cursor merge trails the installs by one handshake step
	// (replay received mid-handshake is merged when dial accepts the
	// session), so poll for the settled value rather than sampling.
	waitFor(t, "peer cursor settled at 3", func() bool {
		ps := peerB()
		return ps.ok && ps.LastApplied == 3
	})
	ps := peerB()
	if ps.Applied != 3 || ps.Duplicates != 0 {
		t.Errorf("replay applied %d broadcasts with %d duplicates, want exactly the 3 missed and 0 duplicates",
			ps.Applied, ps.Duplicates)
	}
}

// PeerStatusOf wraps an optional peer status lookup.
type PeerStatusOf struct {
	cluster.PeerStatus
	ok bool
}

// flappyTransport accepts every dial and completes the peer handshake
// with an OK ack — then immediately drops the session. The worst kind
// of peer for the redial loop: dial() keeps succeeding, so a backoff
// reset on dial success (the old behavior) redials at the 5ms floor
// forever.
type flappyTransport struct {
	dials atomic.Uint64
}

type flappySession struct {
	t    *flappyTransport
	recv func(wire.Message)
	down func(error)
}

func (f *flappyTransport) Dial(recv func(wire.Message), down func(err error)) (immunity.Session, error) {
	f.dials.Add(1)
	return &flappySession{t: f, recv: recv, down: down}, nil
}

func (s *flappySession) Send(m wire.Message) error {
	if m.Type == wire.TypePeerHello {
		s.recv(wire.Message{V: m.V, Type: wire.TypeAck,
			Ack: &wire.Ack{OK: true, Epoch: 0, Gen: "flap-gen", V: wire.PeerVersion}})
		s.down(errors.New("peer dropped the session right after the handshake"))
	}
	return nil
}

func (s *flappySession) Close() error { return nil }

// TestClusterFlappingPeerBacksOff: a peer that acks the handshake and
// instantly drops must be redialed with growing backoff, not hammered
// at the 5ms floor; the dial counter in the metrics registry is how
// both this test and an operator see the hammer is gone.
func TestClusterFlappingPeerBacksOff(t *testing.T) {
	hub, err := immunity.NewExchange(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	reg := metrics.NewRegistry()
	flappy := &flappyTransport{}
	node, err := cluster.New(cluster.Config{
		Self:    "hub0",
		Hub:     hub,
		Peers:   []cluster.Member{{ID: "flappy", Transport: flappy}},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)

	const window = 500 * time.Millisecond
	time.Sleep(window)
	dials := flappy.dials.Load()
	// With backoff doubling from 5ms after every short-lived session,
	// ~7 attempts fit in the window; without the fix the loop redials
	// back-to-back and racks up hundreds.
	if dials > 12 {
		t.Fatalf("flapping peer dialed %d times in %v — the redial hammer is back", dials, window)
	}
	if dials == 0 {
		t.Fatal("link never dialed the peer")
	}
	metDials := reg.CounterVec("immunity_cluster_peer_dials_total",
		"Dial attempts per peer link (first dial included).", "peer").With("flappy").Value()
	if metDials != dials {
		t.Fatalf("registry counted %d dials, transport saw %d", metDials, dials)
	}
	var st cluster.PeerStatus
	for _, ps := range node.Status() {
		if ps.ID == "flappy" {
			st = ps
		}
	}
	if st.Dials != dials {
		t.Fatalf("PeerStatus.Dials = %d, transport saw %d", st.Dials, dials)
	}
}
