// Package cluster federates immunity.Exchange hubs into one logical
// fleet hub, removing the single-hub scaling and availability ceiling
// on the road to million-device fleets: devices attach to *any* hub
// unchanged, and the hubs divide the confirm-before-arm bookkeeping
// among themselves.
//
// # Ownership ring
//
// Every signature (by canonical call-stack key) is owned by exactly one
// hub, chosen by a rendezvous hash over the live membership (Ring).
// The owner is the sole arbiter of the confirm threshold: it holds the
// signature's full provenance — first-seen device, the deduplicated
// (device, signature) confirmation set, pushed-to bookkeeping — while
// every other hub persists only a slim replicated record once the
// signature arms (plus, on the key's deputy, a shadow copy of the
// pending confirmation set; see failover below). Per-hub state
// therefore shrinks as the cluster grows: each hub carries its 1/n
// slice of the provenance plus the (shared) armed set.
//
// # Peer protocol
//
// Hubs connect pairwise over the ordinary wire transports (loopback in
// process, TCP across machines): every node dials every live member
// and keeps the link alive with redial + backoff. On one link, the
// dialer sends peer-hello (its hub id, advertised address, version
// range, and the last arming seq it applied from the answering hub),
// forward-report (device reports for signatures the answerer owns),
// member-update (membership snapshots), handoff (ownership transfers),
// and replicate (deputy shadow copies); the answerer replies with an
// ack (negotiated version, its incarnation gen, its current arming
// seq), replays the owned armings the dialer missed, pushes its own
// membership snapshot, and thereafter pushes arm-broadcast for every
// owned signature it arms and forward-confirm receipts for forwarded
// reports. Since every pair has a link in each direction, every arming
// reaches every hub exactly once, and a report forwarded through any
// hub reaches the owner in one hop (re-forwarding after an ownership
// move is hop-bounded by wire.ForwardReport.Hops).
//
// Reports are forwarded with their original device attribution and the
// owner deduplicates confirmations by (device, signature), so a
// forwarding path — including its at-least-once retry outbox — can
// never double-count. A device report for a foreign signature the local
// hub itself delivered to that device is answered locally as an echo
// and never forwarded at all.
//
// Arming installs are idempotent (a hub applies a broadcast once and
// treats replays as cursor advances), each hub assigns its own local,
// strictly monotonic delta epoch as it installs — devices keep the
// per-hub epoch contract they already had — and the client's per-gen
// epoch map in hello lets one device roam between hubs of the cluster
// without replaying the world.
//
// # Elastic membership
//
// The membership is no longer static config: it is a convergent state
// machine (Membership) replicated as member-update snapshots at a
// monotonically increasing epoch. A hub joins by dialing any existing
// member — the answerer admits it from the peer-hello's advertised
// address, bumps the epoch, dials back, and broadcasts; the joiner
// learns the full membership (and every other member's address) from
// the snapshots pushed back, and dials the rest. A hub leaves by
// down-marking itself at a bumped epoch (Node.Leave) and handing off
// its owned slices before it disconnects. Snapshots merge as a
// join-semilattice — higher epoch adopted wholesale, equal epochs take
// the deterministic field-wise union and bump — so no consensus round
// is needed; membership disagreement windows are rendered harmless one
// layer up by set-union confirmation merges, idempotent arming, and
// the fencing rule. Rendezvous hashing bounds the churn: adding or
// removing one member moves only the keys that member wins or held.
//
// Every membership change funnels through one strictly ordered
// pipeline (applyMembership): publish the new live ring, dial links to
// new members, broadcast the snapshot, re-bind ownership in the hub
// (promote gained keys, arming any deputy shadow already at
// threshold), and finally enqueue the demoted slices as handoff
// messages to their new owners. A handoff migrates the full owned
// record — confirmation set, first-seen, arm state, owner seq — and
// the importer merges by set union, so a handoff racing fresh reports
// or a crossed re-ownership converges instead of double-counting.
//
// # Failover: deputies, probes, and fencing
//
// Each key's deputy is its second-highest rendezvous scorer — by the
// rendezvous property, exactly the hub the ring promotes if the owner
// vanishes. An owner replicates every pending (unarmed) confirmation
// set to the key's deputy as it grows, piggybacked on the existing
// peer link, so the would-be successor already holds the set when the
// owner dies. Failure detection (enabled by Config.FailoverAfter or
// any Probe* override) is SWIM-style probing over the peer links, not
// a per-link timer: the prober direct-pings one live member per
// interval, escalates an unanswered ping to indirect ping-reqs relayed
// through k proxy members — so a single stalled or half-open link can
// no longer declare a live owner dead by itself — and marks a member
// down only after it stays unreachable through the whole suspicion
// window. The membership pipeline then promotes this hub for every key
// it was deputy of, arming on the spot any shadow set at threshold —
// arming availability survives the owner crash. A completed handshake
// in either direction revives a down-marked member (and hands its keys
// back); peers below wire.ProbeVersion cannot answer probes and are
// judged by link-session liveness instead.
//
// # Quorum leases: why both partition sides cannot arm
//
// Fencing (below) reconciles a split after heal; the quorum lease
// prevents split-brain arming from happening at all. Whenever failure
// detection is on (and Config.NoLease is unset), the hub may take a
// *fresh* arming decision — a confirmation set crossing its threshold,
// a promoted shadow set arming — only while it holds a lease
// acknowledged by a strict majority of every member it has ever known,
// down members included (see immunity.ClusterBinding.MayArm). The
// trust chain is:
//
//	probe suspicion → membership mark-down → ring promotion
//	quorum lease    → the (promoted) owner's right to arm
//	epoch fencing   → backstop against stale replay after heal
//
// The lease renews in rounds over the peer links (wire.Lease /
// wire.LeaseAck, one TTL per granted round). Because the quorum
// denominator counts down members and each side's member universe only
// ever grows, two disjoint partition fragments can never both assemble
// a majority: the minority side's lease expires within one TTL
// (immunity_cluster_lease_lost_total), its pending arming decisions
// park inside the hub (it degrades to read-only forwarding and
// confirmation counting), and the parked set is re-scanned when the
// healed cluster grants its lease back. A granter acks only a
// requester whose membership epoch is at least its own, so a returning
// stale owner stays parked until it has merged the partition-era
// membership. Promotion is safe against the deposed owner's residual
// lease because the suspicion window is never shorter than the lease
// TTL — by the time a member is marked down, the last lease it could
// hold has expired. Legacy peers below wire.ProbeVersion cannot ack a
// lease; they count as granting while their link session is live,
// trading the guarantee for availability during a staged rollout.
//
// The membership epoch doubles as the fencing token: every
// arm-broadcast carries the sender's epoch (wire.ArmBroadcast.Fence),
// and a receiver refuses a broadcast whose fence is older than its own
// epoch when the sender no longer owns the key under the receiver's
// ring (immunity.ErrFenced). A stale owner returning from a partition
// can therefore never double-arm against the promoted deputy or
// regress the owner seq — its replayed broadcasts are fenced until it
// re-merges the membership, is revived, and receives its slice back by
// handoff; a fenced broadcast never advances the link cursor. With
// leases on, fencing is the second line of defense; with NoLease it is
// the only one, and two live partitions may each arm the same
// signature for their own devices — the same arming decision twice,
// never a conflicting one.
//
// # Partitions and restarts
//
// A severed link parks the forward outbox, redials with jittered
// backoff — so the fleet does not thunder-herd the healed side of a
// partition at one instant — and resubscribes from the last applied
// arming seq: the reconnect replays exactly the missed armings. The
// outbox is bounded (Config.ForwardOutboxCap): a partition outlasting
// the cap spills the oldest messages, counted in
// immunity_cluster_forward_dropped_total, and receiver-side dedup plus
// the device tier's full-history re-report on reconnect restore
// at-least-once delivery for what was spilled. A restarted
// owner reloads its owned provenance (confirmation counts survive) and
// its arming seq from the provenance store; a restarted non-owner
// reloads the replicated armed set — and, on a deputy, the shadow
// confirmation sets — and resumes each peer cursor from the highest
// seq it had applied (Exchange.RemoteSeqs). A memory-only restart
// changes the hub's gen, which peers detect from the ack and
// resubscribe from zero — redundant replay, never a lost arming.
//
// # Lock order
//
// The pipeline mutex is the top of the order: applyMembership holds
// applyMu across ring publish, link creation, and the hub re-bind, so
//
//	applyMu > Exchange.mu (any hub) > Membership.mu
//	applyMu > Node.linksMu > link.mu
//
// Membership.mu is a leaf (the pure binding reads Epoch and
// MemberSnapshot take it under Exchange.mu and call nothing);
// Node.linksMu and link.mu are never held while calling into the hub,
// and the hub calls into the node under Exchange.mu only via the pure
// ring/membership reads (Owns, OwnerOf, Epoch, MemberSnapshot). The
// mutating binding calls (ForwardReport, Replicate, ApplyMemberUpdate,
// PeerSeen) run after Exchange.mu is released. All cross-hub calls
// (InstallRemote, InstallReplica, ImportOwned, DeliverConfirm,
// Conn.Handle) run on transport or queue goroutines that hold no lock
// of the other hub, so no cycle between two hubs' locks is possible.
// The metrics registry (Config.Metrics) sits below all of these: its
// instruments are lock-free atomics and its own locks are leaves that
// never call out (see package immunity/metrics), so links update their
// counters under link.mu freely.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// helloTimeout bounds how long a peer handshake waits for the ack.
const helloTimeout = 10 * time.Second

// linkMinUptime is how long a handshaken peer session must survive
// before the redial backoff resets. A peer that completes the
// hello/ack handshake and then drops the session immediately (a
// flapping hub, a proxy that accepts and kills, a crash loop) would
// otherwise be redialed at the minimum backoff forever — dial success
// alone proves nothing about session health.
const linkMinUptime = time.Second

// defaultForwardOutboxCap bounds a peer link's forward outbox when
// Config.ForwardOutboxCap is unset: enough for a storm's worth of
// forwards across a transient partition, small enough that a
// partitioned link costs megabytes, not the heap.
const defaultForwardOutboxCap = 4096

// Member names one remote hub of the cluster seed and how to reach it:
// a ready transport (immunity.NewTCPTransport across machines,
// immunity.NewLoopback in process), an address for Config.Resolve to
// dial, or both (the transport wins; the address is still advertised
// to peers so *they* can dial the member).
type Member struct {
	ID        string
	Transport immunity.Transport
	Addr      string
}

// Config assembles one cluster node.
type Config struct {
	// Self is this hub's cluster id (must be unique in the membership).
	Self string
	// SelfAddr is the address this node advertises in its peer-hellos
	// and membership snapshots — what other members hand to
	// Config.Resolve to dial us. Empty on a node that is only ever
	// dialed out from (tests, loopback).
	SelfAddr string
	// Hub is the local exchange this node federates.
	Hub *immunity.Exchange
	// Peers seed the membership. Unlike the pre-elastic static ring
	// this need not be the complete member set on every node: a joining
	// node may list a single existing member and learns the rest from
	// its membership snapshots.
	Peers []Member
	// Resolve builds a transport for a member discovered at runtime (a
	// joiner admitted from its peer-hello, a member learned from a
	// snapshot). Nil restricts outbound links to the configured Peers.
	Resolve func(m wire.MemberInfo) immunity.Transport
	// FailoverAfter is the failure-detection budget: roughly how long a
	// member must stay unreachable — by direct and indirect probes, not
	// just on this node's own link — before it is marked dead and this
	// node assumes ownership of the keys it is deputy for. It seeds the
	// probe timing defaults (interval D/4, timeout D/8, suspicion D/2)
	// and the lease TTL. 0 disables failure detection, and with it the
	// quorum lease (a dead owner parks its slice until it returns).
	FailoverAfter time.Duration
	// ProbeInterval, ProbeTimeout, and ProbeSuspect override the
	// SWIM-style prober's cadence: one direct ping per interval
	// (round-robin over live members), escalation to indirect ping-reqs
	// after timeout, mark-down after a suspicion window without any
	// proof of life. Zero values derive from FailoverAfter; setting any
	// of them with FailoverAfter == 0 enables failure detection on its
	// own.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	ProbeSuspect  time.Duration
	// ProbeIndirect is how many proxy members relay indirect ping-reqs
	// when a direct probe times out (default 2).
	ProbeIndirect int
	// LeaseTTL is the quorum-lease lifetime (default: the suspicion
	// window, and always clamped to ProbeTimeout+ProbeSuspect so a
	// deposed owner's last lease has certainly expired before its
	// deputy can be promoted).
	LeaseTTL time.Duration
	// NoLease disables the quorum lease while keeping probe-based
	// failure detection: arming falls back to epoch fencing alone, so a
	// symmetric partition may arm on both sides — the pre-lease
	// behavior the partition regression tests pin down.
	NoLease bool
	// ForwardOutboxCap bounds each peer link's forward outbox (queued +
	// in-flight messages); 0 means the 4096 default, negative means
	// unbounded. When a long partition fills the outbox the oldest
	// messages spill (immunity_cluster_forward_dropped_total);
	// receiver-side dedup plus the device tier's full-history re-report
	// restore at-least-once delivery for what was spilled.
	ForwardOutboxCap int
	// WireCeiling caps the wire version this node's outbound peer links
	// advertise — pair it with immunity.WithWireCeiling on the hub to
	// pin a whole node during a staged rollout. 0 (or any value outside
	// [wire.PeerVersion, wire.Version]) means the newest.
	WireCeiling int
	// Metrics, when set, registers per-peer link instruments (dials,
	// reconnects, connected, applied/duplicate broadcasts, forward
	// outbox depth + in-flight) plus node-level membership gauges and
	// handoff/failover/replication counters. Typically the same
	// registry the hub got via immunity.WithMetricsRegistry, so one
	// /metrics render covers both tiers. Nil disables link metrics.
	Metrics *metrics.Registry
}

// Node federates one Exchange into the cluster: it binds the ownership
// ring into the hub, dials a peer link to every live member, forwards
// device reports to their owners, replicates owned pending sets to
// their deputies, installs peers' arm-broadcasts, and runs the
// membership/failover machinery.
type Node struct {
	self     string
	selfAddr string
	hub      *immunity.Exchange
	maxV     int
	reg      *metrics.Registry
	resolve  func(m wire.MemberInfo) immunity.Transport

	membership *Membership
	ring       atomic.Pointer[Ring]
	prober     *prober
	lease      *leaseManager
	outboxCap  int

	// applyMu serializes the membership pipeline (applyMembership) so
	// two triggers cannot interleave their re-bind and handoff phases.
	applyMu sync.Mutex

	linksMu sync.Mutex
	closed  bool
	links   map[string]*link
	// transports holds the seed peers' preconfigured transports;
	// members beyond the seed go through resolve.
	transports map[string]immunity.Transport

	metFailovers      *metrics.Counter
	metHandoffs       *metrics.Counter
	metReplicas       *metrics.Counter
	metEpoch          *metrics.Gauge
	metForwardDropped *metrics.Counter

	closeOnce sync.Once
	closeCh   chan struct{}
	wg        sync.WaitGroup
}

var _ immunity.ClusterBinding = (*Node)(nil)

// New builds the node, binds it to cfg.Hub, and starts the peer links.
// It returns immediately; links to peers that are not up yet connect in
// the background with backoff.
func New(cfg Config) (*Node, error) {
	if cfg.Hub == nil {
		return nil, fmt.Errorf("cluster: nil hub")
	}
	ids := []string{cfg.Self}
	seed := make([]wire.MemberInfo, 0, len(cfg.Peers))
	transports := make(map[string]immunity.Transport, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.Transport == nil && (cfg.Resolve == nil || p.Addr == "") {
			return nil, fmt.Errorf("cluster: peer %q has no transport and no resolvable address", p.ID)
		}
		ids = append(ids, p.ID)
		seed = append(seed, wire.MemberInfo{ID: p.ID, Addr: p.Addr})
		if p.Transport != nil {
			transports[p.ID] = p.Transport
		}
	}
	// NewRing validates the seed (unique, non-empty ids) besides
	// building the initial ring.
	ring, err := NewRing(ids...)
	if err != nil {
		return nil, err
	}
	maxV := cfg.WireCeiling
	if maxV < wire.PeerVersion || maxV > wire.Version {
		maxV = wire.Version
	}
	outboxCap := cfg.ForwardOutboxCap
	switch {
	case outboxCap == 0:
		outboxCap = defaultForwardOutboxCap
	case outboxCap < 0:
		outboxCap = 0 // unbounded
	}
	n := &Node{
		self:       cfg.Self,
		selfAddr:   cfg.SelfAddr,
		hub:        cfg.Hub,
		maxV:       maxV,
		reg:        cfg.Metrics,
		resolve:    cfg.Resolve,
		membership: newMembership(cfg.Self, cfg.SelfAddr, seed),
		outboxCap:  outboxCap,
		links:      make(map[string]*link, len(cfg.Peers)),
		transports: transports,
		closeCh:    make(chan struct{}),
	}
	n.ring.Store(ring)
	n.metFailovers = cfg.Metrics.Counter("immunity_cluster_failovers_total",
		"Members marked down by the failure detector (deputy promotions).")
	n.metHandoffs = cfg.Metrics.Counter("immunity_cluster_handoff_sent_total",
		"Owned records handed off to new owners after membership changes.")
	n.metReplicas = cfg.Metrics.Counter("immunity_cluster_replicated_total",
		"Pending confirmation-set records replicated to deputies.")
	n.metEpoch = cfg.Metrics.Gauge("immunity_cluster_membership_epoch",
		"Current membership epoch (the arm-broadcast fencing token).")
	n.metEpoch.Set(1)
	n.metForwardDropped = cfg.Metrics.Counter("immunity_cluster_forward_dropped_total",
		"Oldest forward-outbox messages spilled by the per-peer cap during long partitions.")
	pc := resolveProbe(cfg)
	if pc.enabled {
		n.prober = newProber(n, pc)
		if !cfg.NoLease {
			n.lease = newLeaseManager(n, pc.leaseTTL)
		}
	}
	// Bind before any link (or device) traffic: the hub must know the
	// ring before it accepts its first report or peer-hello.
	cfg.Hub.BindCluster(n)
	n.ensureLinks(n.membership.live())
	if n.prober != nil {
		n.wg.Add(1)
		go n.prober.run()
	}
	if n.lease != nil {
		n.wg.Add(1)
		go n.lease.run()
	}
	return n, nil
}

// SelfID implements immunity.ClusterBinding.
func (n *Node) SelfID() string { return n.self }

// Members implements immunity.ClusterBinding: the live ring members.
func (n *Node) Members() []string { return n.ring.Load().Members() }

// Owns implements immunity.ClusterBinding. Pure: called under
// Exchange.mu, it only consults the atomically published ring.
func (n *Node) Owns(key string) bool { return n.ring.Load().Owner(key) == n.self }

// OwnerOf implements immunity.ClusterBinding. Pure, like Owns.
func (n *Node) OwnerOf(key string) string { return n.ring.Load().Owner(key) }

// Epoch implements immunity.ClusterBinding: the membership epoch, the
// fencing token stamped on outgoing arm-broadcasts. Pure (leaf lock).
func (n *Node) Epoch() uint64 { return n.membership.epochNow() }

// MemberSnapshot implements immunity.ClusterBinding: the full
// membership at its epoch, pushed to freshly handshaken peers. Pure
// (leaf lock).
func (n *Node) MemberSnapshot() wire.MemberUpdate { return n.membership.snapshot() }

// Ring returns the current ownership ring.
func (n *Node) Ring() *Ring { return n.ring.Load() }

// OwnerDeputy answers "who owns this signature key, and who takes over
// if that owner dies" under the current ring — the /status
// ?owner=<sig-key> lookup.
func (n *Node) OwnerDeputy(key string) (owner, deputy string) {
	r := n.ring.Load()
	return r.Owner(key), r.Deputy(key)
}

// ForwardReport implements immunity.ClusterBinding: it groups the
// signatures by owning hub and enqueues one forward-report per owner on
// that link's outbox, carrying the hop count so a report bouncing
// between hubs with disagreeing rings dies out instead of looping.
// Enqueue-only — a partitioned owner's outbox holds the report until
// the link redials (the owner's dedup makes the at-least-once delivery
// safe).
func (n *Node) ForwardReport(tenant, device string, sigs []wire.Signature, keys []string, hops int) {
	r := n.ring.Load()
	groups := make(map[string][]wire.Signature)
	for i, ws := range sigs {
		owner := r.Owner(keys[i])
		if owner == n.self {
			continue // ring said foreign moments ago; a membership race, drop to local handling next report
		}
		groups[owner] = append(groups[owner], ws)
	}
	for owner, group := range groups {
		if l := n.linkFor(owner); l != nil {
			// The version is stamped at delivery time with the live
			// session's negotiated version (link.deliver). The tenant
			// travels with the report so the owner counts it in the right
			// namespace (all sigs of one call share one tenant: reports
			// arrive per session, sessions are tenant-bound).
			l.outbox.Enqueue(wire.Message{Type: wire.TypeForwardReport,
				Forward: &wire.ForwardReport{Hub: n.self, Device: device, Tenant: tenant,
					Sigs: group, Hops: hops}})
		}
	}
}

// Replicate implements immunity.ClusterBinding: it enqueues one owned
// pending record for the key's deputy, so the hub the ring would
// promote on this node's death already holds the confirmation set.
// Enqueue-only, at-least-once; the deputy merges by set union.
func (n *Node) Replicate(key string, rec wire.OwnedRecord) {
	dep := n.ring.Load().Deputy(key)
	if dep == "" || dep == n.self {
		return
	}
	l := n.linkFor(dep)
	if l == nil {
		return
	}
	n.metReplicas.Inc()
	l.outbox.Enqueue(wire.Message{Type: wire.TypeReplicate,
		Replicate: &wire.Replicate{Owner: n.self, Records: []wire.OwnedRecord{rec}}})
}

// ApplyMemberUpdate implements immunity.ClusterBinding: it merges a
// peer's membership snapshot and, if the map changed, runs the
// pipeline. Called without Exchange.mu held.
func (n *Node) ApplyMemberUpdate(u wire.MemberUpdate) {
	if n.membership.apply(u) {
		n.applyMembership()
	}
}

// PeerSeen implements immunity.ClusterBinding: a completed peer
// handshake admits an unknown hub (using the address it advertised) or
// revives a down-marked one. Called without Exchange.mu held.
func (n *Node) PeerSeen(hub, addr string) {
	if n.membership.seen(hub, addr) {
		n.applyMembership()
	}
}

// ensureLinks starts an outbound link to every live member that does
// not have one yet, resolving transports from the configured seed
// first and Config.Resolve second. Members it cannot reach (no
// transport, no resolver) are skipped — they may still dial us.
func (n *Node) ensureLinks(live []wire.MemberInfo) {
	seqs := n.hub.RemoteSeqs()
	var started []*link
	n.linksMu.Lock()
	if n.closed {
		n.linksMu.Unlock()
		return
	}
	for _, m := range live {
		if m.ID == n.self {
			continue
		}
		if _, ok := n.links[m.ID]; ok {
			continue
		}
		t := n.transports[m.ID]
		if t == nil && n.resolve != nil {
			t = n.resolve(m)
		}
		if t == nil {
			continue
		}
		l := newLink(n, m.ID, t, seqs[m.ID], n.maxV, n.reg)
		n.links[m.ID] = l
		started = append(started, l)
	}
	n.linksMu.Unlock()
	for _, l := range started {
		n.wg.Add(1)
		go n.runLink(l)
	}
}

// linkFor returns the outbound link to id, nil if none exists.
func (n *Node) linkFor(id string) *link {
	n.linksMu.Lock()
	defer n.linksMu.Unlock()
	return n.links[id]
}

// broadcast enqueues m on every peer link's outbox.
func (n *Node) broadcast(m wire.Message) {
	n.linksMu.Lock()
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.linksMu.Unlock()
	for _, l := range links {
		l.outbox.Enqueue(m)
	}
}

// PeerStatus is one outbound peer link's observability snapshot (JSON
// tags serve the daemon's /status links section).
type PeerStatus struct {
	// ID is the peer hub's cluster id.
	ID string `json:"id"`
	// Connected reports a live, handshaken session.
	Connected bool `json:"connected"`
	// Down reports the membership's view: true once the failure
	// detector (or a merged snapshot) declared the member dead.
	Down bool `json:"down,omitempty"`
	// LastApplied is the peer's arming seq this node has applied up to.
	LastApplied uint64 `json:"last_applied"`
	// Dials counts dial attempts (successful or not) on this link; a
	// count growing much faster than Reconnects means the peer is being
	// hammered or is unreachable.
	Dials uint64 `json:"dials"`
	// Reconnects counts completed handshakes after the first.
	Reconnects uint64 `json:"reconnects"`
	// Applied and Duplicates count arm-broadcasts that newly armed a
	// signature here vs. replays that only advanced the cursor.
	Applied    uint64 `json:"applied"`
	Duplicates uint64 `json:"duplicates"`
	// PendingForwards is the outbox depth (reports waiting for the link).
	PendingForwards int `json:"pending_forwards"`
}

// Status snapshots the node's peer links, sorted by peer id.
func (n *Node) Status() []PeerStatus {
	n.linksMu.Lock()
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.linksMu.Unlock()
	sort.Slice(links, func(i, j int) bool { return links[i].peerID < links[j].peerID })
	out := make([]PeerStatus, 0, len(links))
	for _, l := range links {
		l.mu.Lock()
		out = append(out, PeerStatus{
			ID:              l.peerID,
			Connected:       l.sess != nil,
			Down:            !n.membership.isUp(l.peerID),
			LastApplied:     l.lastApplied,
			Dials:           l.dials,
			Reconnects:      l.reconnects,
			Applied:         l.applied,
			Duplicates:      l.duplicates,
			PendingForwards: l.outbox.Pending(),
		})
		l.mu.Unlock()
	}
	return out
}

// Close tears the node down: every link's session closes, outboxes
// drain what a live session can still take, and the link goroutines
// exit. The hub itself is left to its owner. Idempotent.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closeCh)
		n.linksMu.Lock()
		n.closed = true
		links := make([]*link, 0, len(n.links))
		for _, l := range n.links {
			links = append(links, l)
		}
		n.linksMu.Unlock()
		for _, l := range links {
			l.close()
		}
		n.wg.Wait()
	})
}

// link is one outbound peer connection: this node dialing one remote
// hub. It owns the handshake (peer-hello with the resume seq), the
// redial loop, and the forward outbox.
type link struct {
	node   *Node
	peerID string
	t      immunity.Transport
	outbox *immunity.Queue[wire.Message]
	downCh chan struct{}
	maxV   int // highest wire version to advertise in peer-hello

	mu          sync.Mutex
	closed      bool // set by close(); a handshake that loses the race must not install its session
	sess        immunity.Session
	ackCh       chan wire.Ack
	gen         string // peer hub incarnation, from its ack
	ver         int    // negotiated wire version of the current session (0 while down)
	lastApplied uint64
	// lastUp is when the link last had a live session (creation time
	// before the first handshake) — kept for debugging; liveness
	// judgment belongs to the prober, which probes through other
	// members before believing this link's word.
	lastUp time.Time
	// cur is the dial attempt whose session passed the handshake; only
	// its broadcasts may advance lastApplied. An attempt the handshake
	// condemned (gen change, seq rollback) still installs what it
	// receives — an antibody is never refused — but its seqs are
	// quarantined in the attempt, not the cursor: otherwise a condemned
	// replay racing the cursor reset could fast-forward past armings
	// that were filtered against the stale seq and lose them for good.
	cur        *dialAttempt
	dials      uint64
	reconnects uint64
	applied    uint64
	duplicates uint64
	handshakes uint64

	// Per-peer registry instruments (nil without Config.Metrics; nil
	// instruments are no-ops). Updated under l.mu — lock-free atomics.
	metDials      *metrics.Counter
	metReconnects *metrics.Counter
	metConnected  *metrics.Gauge
	metApplied    *metrics.Counter
	metDuplicates *metrics.Counter
	metForwards   *metrics.Counter
}

// dialAttempt quarantines one dial's cursor advances until the
// handshake accepts the session. Guarded by link.mu.
type dialAttempt struct {
	maxSeq    uint64 // highest owner seq received on this attempt's session
	fencedLow uint64 // lowest fenced owner seq on this session (0 = none)
}

// cursor is the seq this attempt may advance the durable cursor to:
// the highest seq received, floored below the lowest fenced seq. A
// replay burst that races a partition heal is fenced until the sender
// is merged back into the ring; letting a later accepted arm carry the
// cursor past the refused prefix would mask those armings forever —
// the floor keeps them inside the next handshake's replay window.
func (a *dialAttempt) cursor() uint64 {
	if a.fencedLow > 0 && a.fencedLow-1 < a.maxSeq {
		return a.fencedLow - 1
	}
	return a.maxSeq
}

func newLink(n *Node, peerID string, t immunity.Transport, resumeSeq uint64, maxV int, reg *metrics.Registry) *link {
	l := &link{node: n, peerID: peerID, t: t, lastApplied: resumeSeq,
		lastUp: time.Now(), maxV: maxV, downCh: make(chan struct{}, 1)}
	l.metDials = reg.CounterVec("immunity_cluster_peer_dials_total",
		"Dial attempts per peer link (first dial included).", "peer").With(peerID)
	l.metReconnects = reg.CounterVec("immunity_cluster_peer_reconnects_total",
		"Completed peer handshakes after the first.", "peer").With(peerID)
	l.metConnected = reg.GaugeVec("immunity_cluster_peer_connected",
		"Live handshaken outbound sessions to the peer.", "peer").With(peerID)
	l.metApplied = reg.CounterVec("immunity_cluster_applied_total",
		"Arm-broadcasts from the peer that newly armed a signature here.", "peer").With(peerID)
	l.metDuplicates = reg.CounterVec("immunity_cluster_duplicates_total",
		"Arm-broadcast replays from the peer (cursor advances only).", "peer").With(peerID)
	l.metForwards = reg.CounterVec("immunity_cluster_peer_forwards_total",
		"Forward-report messages delivered to the peer.", "peer").With(peerID)
	l.outbox = immunity.NewQueue(immunity.QueueConfig[wire.Message]{
		Deliver:      l.deliver,
		RetryOnError: true,
		// A partition longer than the cap's worth of traffic spills the
		// oldest messages rather than growing without bound; the spill is
		// safe for the same reason redelivery is (receiver dedup + the
		// device tier re-reporting its full history on reconnect).
		Cap:    n.outboxCap,
		OnDrop: func(wire.Message) { n.metForwardDropped.Inc() },
		// Per-peer forward-outbox lag: depth is what a partition is
		// holding back, in-flight what the drain has taken.
		Depth: reg.GaugeVec("immunity_cluster_forward_pending",
			"Forward-outbox items pending (queued + in flight) per peer.", "peer").With(peerID),
		InFlight: reg.GaugeVec("immunity_cluster_forward_inflight",
			"Forward-outbox items taken by the drain, not yet delivered.", "peer").With(peerID),
	})
	return l
}

// deliver sends one outbox message over the current session, stamped —
// and therefore framed — at that session's negotiated version (a
// redial may land on a peer speaking a different version than the one
// the message was enqueued under); with no session (or a dead one) it
// errors, parking the outbox until the redial calls Resume. Membership
// messages to a peer negotiated below wire.MembershipVersion are
// dropped (dequeued) here — an old peer runs its static ring and has
// nothing to do with them.
func (l *link) deliver(m wire.Message) error {
	l.mu.Lock()
	sess := l.sess
	ver := l.ver
	l.mu.Unlock()
	if sess == nil {
		return errors.New("peer link down")
	}
	if ver == 0 {
		ver = wire.PeerVersion
	}
	switch m.Type {
	case wire.TypeMemberUpdate, wire.TypeHandoff, wire.TypeReplicate:
		if ver < wire.MembershipVersion {
			return nil
		}
	}
	m.V = ver
	if err := sess.Send(m); err != nil {
		l.down(err)
		return err
	}
	if m.Type == wire.TypeForwardReport {
		// Counted on delivery, not enqueue: the per-peer forward rate on
		// /metrics then reflects traffic that actually left, and a parked
		// outbox reads as the rate dropping to zero.
		l.metForwards.Inc()
	}
	return nil
}

// down marks the session dead and wakes the redial loop.
func (l *link) down(error) {
	select {
	case l.downCh <- struct{}{}:
	default:
	}
}

// Direct-send failure classes: the prober and lease treat a legacy
// peer (live session below wire.ProbeVersion) as answering, and a
// down/missing link as an immediate probe failure worth escalating.
var (
	errNoLink     = errors.New("cluster: no link to peer")
	errLinkDown   = errors.New("cluster: peer link down")
	errLegacyPeer = errors.New("cluster: peer below probe wire version")
)

// sendDirect sends one probe/lease message on the live session,
// bypassing the forward outbox: a parked outbox must never delay — or
// worse, replay after heal — a liveness or lease request whose meaning
// is "now".
func (l *link) sendDirect(m wire.Message) error {
	l.mu.Lock()
	sess := l.sess
	ver := l.ver
	l.mu.Unlock()
	if sess == nil {
		return errLinkDown
	}
	if ver < wire.ProbeVersion {
		return errLegacyPeer
	}
	m.V = ver
	if err := sess.Send(m); err != nil {
		l.down(err)
		return err
	}
	return nil
}

// sendDirect routes one probe/lease message to a peer's live session.
// Never called with prober or lease locks held: loopback transports
// deliver synchronously, so a send can nest the peer's (and, on a
// relayed ack, our own) handlers on this goroutine's stack.
func (n *Node) sendDirect(peer string, m wire.Message) error {
	l := n.linkFor(peer)
	if l == nil {
		return errNoLink
	}
	return l.sendDirect(m)
}

// recv handles one hub→dialer message on behalf of dial attempt att
// (transport goroutine, no link lock held while calling into the local
// hub).
func (l *link) recv(att *dialAttempt, m wire.Message) {
	switch m.Type {
	case wire.TypeAck:
		l.mu.Lock()
		ackCh := l.ackCh
		l.mu.Unlock()
		if ackCh != nil {
			select {
			case ackCh <- *m.Ack:
			default:
			}
		} else if !m.Ack.OK {
			// Unsolicited failure ack: the peer superseded or evicted this
			// session; drop it and let the redial loop sort it out.
			l.down(errors.New(m.Ack.Error))
		}
	case wire.TypeArmBroadcast:
		applied, err := l.node.hub.InstallRemote(*m.Arm)
		if err != nil {
			// Malformed or fenced: never kill the link over one frame,
			// and never advance the cursor — a fenced stale owner's seq
			// must not mask the armings the promoted owner will send
			// under the same numbers. A fenced arm from the peer itself
			// additionally floors the cursor below its seq: after a
			// partition heals, the reconnect replay can race the
			// membership merge that puts the sender back in the ring,
			// and every arm refused in that window must stay inside the
			// next handshake's replay.
			if errors.Is(err, immunity.ErrFenced) && m.Arm.Owner == l.peerID {
				l.mu.Lock()
				if att.fencedLow == 0 || m.Arm.Seq < att.fencedLow {
					att.fencedLow = m.Arm.Seq
				}
				if l.cur == att && l.lastApplied >= m.Arm.Seq {
					l.lastApplied = m.Arm.Seq - 1
				}
				l.mu.Unlock()
			}
			return
		}
		l.mu.Lock()
		if m.Arm.Owner == l.peerID && m.Arm.Seq > att.maxSeq {
			att.maxSeq = m.Arm.Seq
			// Only an accepted session moves the durable cursor; replay
			// that raced the handshake is merged in when dial accepts.
			if l.cur == att && att.cursor() > l.lastApplied {
				l.lastApplied = att.cursor()
			}
		}
		if applied {
			l.applied++
			l.metApplied.Inc()
		} else {
			l.duplicates++
			l.metDuplicates.Inc()
		}
		l.mu.Unlock()
	case wire.TypeForwardConfirm:
		l.node.hub.DeliverConfirm(m.FwdConfirm.Tenant, m.FwdConfirm.Device, m.FwdConfirm.Confirm)
	case wire.TypeMemberUpdate:
		// The answerer's membership snapshot (pushed at handshake and
		// relayed on changes): merge, and run the pipeline if it moved
		// us.
		l.node.ApplyMemberUpdate(*m.Member)
	}
}

// dial opens one session and completes the peer-hello/ack handshake.
func (l *link) dial() error {
	ackCh := make(chan wire.Ack, 1)
	att := &dialAttempt{}
	l.mu.Lock()
	l.ackCh = ackCh
	seq := l.lastApplied
	l.mu.Unlock()
	clearAck := func() {
		l.mu.Lock()
		if l.ackCh == ackCh {
			l.ackCh = nil
		}
		l.mu.Unlock()
	}

	sess, err := l.t.Dial(func(m wire.Message) { l.recv(att, m) }, l.down)
	if err != nil {
		clearAck()
		return err
	}
	// A successful transport connect is the liveness proof: revive the
	// member BEFORE the hello goes out, because the hello's answer is a
	// replay burst that may be delivered synchronously — if the peer
	// were still down-marked here, every replayed arm would be fenced
	// against the pre-revival ring and the burst lost until the next
	// handshake. Reviving first lands the replay in the merged ring.
	// (Should the handshake still fail, the prober re-condemns a member
	// this connect wrongly revived; membership mistakes are safe by
	// construction — see the package comment's fencing rule.)
	if l.node.membership.seen(l.peerID, "") {
		l.node.applyMembership()
	}
	// The peer-hello precedes negotiation, so it is framed at the JSON
	// ceiling — any peer version can parse it — while the advertised
	// range caps at this node's ceiling. The advertised address lets
	// the answerer admit us into its membership and dial back.
	hello := wire.Message{V: wire.MaxJSONVersion, Type: wire.TypePeerHello,
		PeerHello: &wire.PeerHello{Hub: l.node.self, Addr: l.node.selfAddr,
			Seq: seq, MinV: wire.PeerVersion, MaxV: l.maxV}}
	if err := sess.Send(hello); err != nil {
		clearAck()
		sess.Close()
		return err
	}
	select {
	case ack := <-ackCh:
		clearAck()
		if !ack.OK {
			// Unlike a device client, a peer never gives up for good: the
			// refusal may be a mid-rollout config gap (the peer not yet
			// clustered, an old binary) that the next redial outlives.
			sess.Close()
			return fmt.Errorf("peer %s refused: %s", l.peerID, ack.Error)
		}
		l.mu.Lock()
		genChanged := l.gen != "" && ack.Gen != l.gen
		l.gen = ack.Gen
		if genChanged || ack.Epoch < seq {
			// The peer is a new incarnation (or its arming seq rolled
			// back): our cursor is fiction and this session's replay was
			// filtered against it. Restart the subscription from zero —
			// InstallRemote dedupes the re-replay. The condemned attempt
			// is never accepted (l.cur stays off it), so broadcasts it
			// already delivered cannot fast-forward the fresh cursor past
			// armings the stale filter skipped.
			l.lastApplied = 0
			l.mu.Unlock()
			sess.Close()
			return fmt.Errorf("peer %s restarted (gen %q, seq %d vs our %d): resubscribing from 0",
				l.peerID, ack.Gen, ack.Epoch, seq)
		}
		if l.closed {
			// Node.Close raced the tail of the handshake and already tore
			// down (nil) l.sess; installing this one now would leak it —
			// and keep this node registered as a live peer on the remote
			// hub — forever.
			l.mu.Unlock()
			sess.Close()
			return errors.New("node closed")
		}
		l.sess = sess
		l.cur = att
		if l.ver = ack.V; l.ver == 0 {
			l.ver = wire.PeerVersion
		}
		l.lastUp = time.Now()
		// Merge replay that arrived before the handshake settled: those
		// broadcasts were filtered against the seq we sent, so on an
		// accepted session they are safe cursor advances — up to the
		// fenced floor, which marks armings this session failed to
		// install and the next replay must carry again.
		if att.cursor() > l.lastApplied {
			l.lastApplied = att.cursor()
		}
		if l.handshakes++; l.handshakes > 1 {
			l.reconnects++
			l.metReconnects.Inc()
		}
		l.mu.Unlock()
		l.outbox.Resume()
		return nil
	case <-time.After(helloTimeout):
		clearAck()
		sess.Close()
		return fmt.Errorf("peer %s: timed out waiting for ack", l.peerID)
	case <-l.downCh:
		// The session died mid-handshake (or a fault layer severed it):
		// abort now instead of burning the full hello timeout — after a
		// partition heals, that stall would delay the reconnect replay
		// by up to helloTimeout for nothing.
		clearAck()
		sess.Close()
		return fmt.Errorf("peer %s: session died during handshake", l.peerID)
	case <-l.node.closeCh:
		clearAck()
		sess.Close()
		return errors.New("node closed")
	}
}

// close tears the link down (node Close only).
func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	sess := l.sess
	l.sess = nil
	l.ver = 0
	l.cur = nil
	l.mu.Unlock()
	if sess != nil {
		sess.Close()
	}
	l.outbox.Close()
}

// runLink keeps one peer link alive until the node closes: dial with
// backoff, then wait for the session to drop and redial. The resume seq
// in each peer-hello makes every reconnect replay exactly the missed
// armings. Backoff resets only after a session survives linkMinUptime —
// a handshake completing proves nothing by itself, and resetting on
// dial success let a peer that acks and instantly drops be redialed in
// a tight 5ms loop forever.
func (n *Node) runLink(l *link) {
	defer n.wg.Done()
	backoffMin, backoffMax := 5*time.Millisecond, 2*time.Second
	backoff := backoffMin
	sleep := func() bool {
		// Jitter the wait to half-to-full backoff: every hub backs off
		// from a partition on the same clock, and without jitter they
		// would all thunder-herd the healed side at the same instant.
		wait := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-n.closeCh:
			return false
		case <-time.After(wait):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
		return true
	}
	for {
		select {
		case <-n.closeCh:
			return
		default:
		}
		// No session is live here, so any queued down event is the old
		// session's corpse twitching — drain it rather than let it tear
		// down the session we are about to dial.
		select {
		case <-l.downCh:
		default:
		}
		l.mu.Lock()
		l.dials++
		l.mu.Unlock()
		l.metDials.Inc()
		if err := l.dial(); err != nil {
			if !sleep() {
				return
			}
			continue
		}
		// The revival itself happened inside dial(), before the hello —
		// an outbound connect is a liveness proof, and merging the member
		// back in first is what lets the handshake's replay land instead
		// of being fenced against the pre-revival ring. Deliberately no
		// re-check here: killing a live session to force a re-merge would
		// also kill the probe path that keeps the revived member alive,
		// and the prober would re-condemn it before the next handshake —
		// a revive/condemn livelock with every link down.
		connectedAt := time.Now()
		l.metConnected.Add(1)
		select {
		case <-n.closeCh:
			l.metConnected.Add(-1)
			return
		case <-l.downCh:
			l.mu.Lock()
			sess := l.sess
			l.sess = nil
			l.ver = 0
			l.cur = nil // a dead session's stragglers must not move the cursor
			l.lastUp = time.Now()
			l.mu.Unlock()
			if sess != nil {
				// Closed OUTSIDE l.mu: Close can wait on the peer hub's
				// connection teardown, whose in-flight handlers may be
				// blocked taking this very lock (a probe ack riding a
				// synchronous loopback delivery) — holding it here closes
				// a lock cycle with the fault layer's sever path.
				sess.Close()
			}
			l.metConnected.Add(-1)
		}
		if time.Since(connectedAt) >= linkMinUptime {
			backoff = backoffMin
		} else if !sleep() {
			// A session that died young counts as a failed attempt: keep
			// backing off before the redial.
			return
		}
	}
}
