// Package cluster federates immunity.Exchange hubs into one logical
// fleet hub, removing the single-hub scaling and availability ceiling
// on the road to million-device fleets: devices attach to *any* hub
// unchanged, and the hubs divide the confirm-before-arm bookkeeping
// among themselves.
//
// # Ownership ring
//
// Every signature (by canonical call-stack key) is owned by exactly one
// hub, chosen by a rendezvous hash over the static membership (Ring).
// The owner is the sole arbiter of the confirm threshold: it holds the
// signature's full provenance — first-seen device, the deduplicated
// (device, signature) confirmation set, pushed-to bookkeeping — while
// every other hub persists only a slim replicated record once the
// signature arms. Per-hub state therefore shrinks as the cluster grows:
// each hub carries its 1/n slice of the provenance plus the (shared)
// armed set.
//
// # Peer protocol
//
// Hubs connect pairwise over the ordinary wire transports (loopback in
// process, TCP across machines): every node dials every other member
// and keeps the link alive with redial + backoff. On one link, the
// dialer sends peer-hello (its hub id, version range, and the last
// arming seq it applied from the answering hub) and forward-report
// (device reports for signatures the answerer owns); the answerer
// replies with an ack (negotiated version, its incarnation gen, its
// current arming seq), replays the owned armings the dialer missed, and
// thereafter pushes arm-broadcast for every owned signature it arms and
// forward-confirm receipts for forwarded reports. Since every pair has
// a link in each direction, every arming reaches every hub exactly
// once, and a report forwarded through any hub reaches the owner in one
// hop.
//
// Reports are forwarded with their original device attribution and the
// owner deduplicates confirmations by (device, signature), so a
// forwarding path — including its at-least-once retry outbox — can
// never double-count. A device report for a foreign signature the local
// hub itself delivered to that device is answered locally as an echo
// and never forwarded at all.
//
// Arming installs are idempotent (a hub applies a broadcast once and
// treats replays as cursor advances), each hub assigns its own local,
// strictly monotonic delta epoch as it installs — devices keep the
// per-hub epoch contract they already had — and the client's per-gen
// epoch map in hello lets one device roam between hubs of the cluster
// without replaying the world.
//
// # Partitions and restarts
//
// A severed link parks the forward outbox (nothing is dropped),
// redials with backoff, and resubscribes from the last applied arming
// seq — the reconnect replays exactly the missed armings. A restarted
// owner reloads its owned provenance (confirmation counts survive) and
// its arming seq from the provenance store; a restarted non-owner
// reloads the replicated armed set and resumes each peer cursor from
// the highest seq it had applied (Exchange.RemoteSeqs). A memory-only
// restart changes the hub's gen, which peers detect from the ack and
// resubscribe from zero — redundant replay, never a lost arming.
//
// # Lock order
//
// Node and link mutexes are leaves: the node never calls into its
// Exchange while holding them, and the Exchange calls into the node
// only via ClusterBinding — Owns (pure, under Exchange.mu) and
// ForwardReport (after Exchange.mu is released, enqueue-only). All
// cross-hub calls (InstallRemote, DeliverConfirm, Conn.Handle) run on
// transport or queue goroutines that hold no lock of the other hub, so
// the global order is
//
//	Exchange.mu (any hub) > {Node.mu, link.mu, queue locks}
//
// and no cycle between two hubs' locks is possible. The metrics
// registry (Config.Metrics) sits below all of these: its instruments
// are lock-free atomics and its own locks are leaves that never call
// out (see package immunity/metrics), so links update their counters
// under link.mu freely.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// helloTimeout bounds how long a peer handshake waits for the ack.
const helloTimeout = 10 * time.Second

// linkMinUptime is how long a handshaken peer session must survive
// before the redial backoff resets. A peer that completes the
// hello/ack handshake and then drops the session immediately (a
// flapping hub, a proxy that accepts and kills, a crash loop) would
// otherwise be redialed at the minimum backoff forever — dial success
// alone proves nothing about session health.
const linkMinUptime = time.Second

// Member names one remote hub of the cluster and the transport that
// reaches it (immunity.NewTCPTransport across machines,
// immunity.NewLoopback in process).
type Member struct {
	ID        string
	Transport immunity.Transport
}

// Config assembles one cluster node.
type Config struct {
	// Self is this hub's cluster id (must be unique in the membership).
	Self string
	// Hub is the local exchange this node federates.
	Hub *immunity.Exchange
	// Peers are the other members. The ownership ring is Self + Peers
	// and must be configured identically (same id set) on every node.
	Peers []Member
	// WireCeiling caps the wire version this node's outbound peer links
	// advertise — pair it with immunity.WithWireCeiling on the hub to
	// pin a whole node during a staged rollout. 0 (or any value outside
	// [wire.PeerVersion, wire.Version]) means the newest.
	WireCeiling int
	// Metrics, when set, registers per-peer link instruments (dials,
	// reconnects, connected, applied/duplicate broadcasts, forward
	// outbox depth + in-flight) labeled by peer id. Typically the same
	// registry the hub got via immunity.WithMetricsRegistry, so one
	// /metrics render covers both tiers. Nil disables link metrics.
	Metrics *metrics.Registry
}

// Node federates one Exchange into the cluster: it binds the ownership
// ring into the hub, dials a peer link to every other member, forwards
// device reports to their owners, and installs peers' arm-broadcasts.
type Node struct {
	self  string
	hub   *immunity.Exchange
	ring  *Ring
	links map[string]*link

	closeOnce sync.Once
	closeCh   chan struct{}
	wg        sync.WaitGroup
}

var _ immunity.ClusterBinding = (*Node)(nil)

// New builds the node, binds it to cfg.Hub, and starts the peer links.
// It returns immediately; links to peers that are not up yet connect in
// the background with backoff.
func New(cfg Config) (*Node, error) {
	if cfg.Hub == nil {
		return nil, fmt.Errorf("cluster: nil hub")
	}
	ids := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p.Transport == nil {
			return nil, fmt.Errorf("cluster: peer %q has no transport", p.ID)
		}
		ids = append(ids, p.ID)
	}
	ring, err := NewRing(ids...)
	if err != nil {
		return nil, err
	}
	maxV := cfg.WireCeiling
	if maxV < wire.PeerVersion || maxV > wire.Version {
		maxV = wire.Version
	}
	n := &Node{
		self:    cfg.Self,
		hub:     cfg.Hub,
		ring:    ring,
		links:   make(map[string]*link, len(cfg.Peers)),
		closeCh: make(chan struct{}),
	}
	// Bind before any link (or device) traffic: the hub must know the
	// ring before it accepts its first report or peer-hello.
	cfg.Hub.BindCluster(n)
	// Resume each peer cursor from what the reloaded provenance already
	// holds, so a restarted node replays only genuinely missed armings.
	seqs := cfg.Hub.RemoteSeqs()
	for _, p := range cfg.Peers {
		l := newLink(n, p, seqs[p.ID], maxV, cfg.Metrics)
		n.links[p.ID] = l
		n.wg.Add(1)
		go n.runLink(l)
	}
	return n, nil
}

// SelfID implements immunity.ClusterBinding.
func (n *Node) SelfID() string { return n.self }

// Members implements immunity.ClusterBinding.
func (n *Node) Members() []string { return n.ring.Members() }

// Owns implements immunity.ClusterBinding. Pure: called under
// Exchange.mu, it only consults the immutable ring.
func (n *Node) Owns(key string) bool { return n.ring.Owner(key) == n.self }

// Ring returns the ownership ring.
func (n *Node) Ring() *Ring { return n.ring }

// ForwardReport implements immunity.ClusterBinding: it groups the
// signatures by owning hub and enqueues one forward-report per owner on
// that link's outbox. Enqueue-only — a partitioned owner's outbox holds
// the report until the link redials (the owner's dedup makes the
// at-least-once delivery safe).
func (n *Node) ForwardReport(device string, sigs []wire.Signature, keys []string) {
	groups := make(map[string][]wire.Signature)
	for i, ws := range sigs {
		owner := n.ring.Owner(keys[i])
		if owner == n.self {
			continue // ring said foreign moments ago; a membership race, drop to local handling next report
		}
		groups[owner] = append(groups[owner], ws)
	}
	for owner, group := range groups {
		if l, ok := n.links[owner]; ok {
			// The version is stamped at delivery time with the live
			// session's negotiated version (link.deliver).
			l.outbox.Enqueue(wire.Message{Type: wire.TypeForwardReport,
				Forward: &wire.ForwardReport{Hub: n.self, Device: device, Sigs: group}})
		}
	}
}

// PeerStatus is one outbound peer link's observability snapshot.
type PeerStatus struct {
	// ID is the peer hub's cluster id.
	ID string
	// Connected reports a live, handshaken session.
	Connected bool
	// LastApplied is the peer's arming seq this node has applied up to.
	LastApplied uint64
	// Dials counts dial attempts (successful or not) on this link; a
	// count growing much faster than Reconnects means the peer is being
	// hammered or is unreachable.
	Dials uint64
	// Reconnects counts completed handshakes after the first.
	Reconnects uint64
	// Applied and Duplicates count arm-broadcasts that newly armed a
	// signature here vs. replays that only advanced the cursor.
	Applied, Duplicates uint64
	// PendingForwards is the outbox depth (reports waiting for the link).
	PendingForwards int
}

// Status snapshots the node's peer links, sorted by peer id.
func (n *Node) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(n.links))
	for _, id := range n.ring.Members() {
		l, ok := n.links[id]
		if !ok {
			continue // self
		}
		l.mu.Lock()
		out = append(out, PeerStatus{
			ID:              l.peerID,
			Connected:       l.sess != nil,
			LastApplied:     l.lastApplied,
			Dials:           l.dials,
			Reconnects:      l.reconnects,
			Applied:         l.applied,
			Duplicates:      l.duplicates,
			PendingForwards: l.outbox.Pending(),
		})
		l.mu.Unlock()
	}
	return out
}

// Close tears the node down: every link's session closes, outboxes
// drain what a live session can still take, and the link goroutines
// exit. The hub itself is left to its owner. Idempotent.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closeCh)
		for _, l := range n.links {
			l.close()
		}
		n.wg.Wait()
	})
}

// link is one outbound peer connection: this node dialing one remote
// hub. It owns the handshake (peer-hello with the resume seq), the
// redial loop, and the forward outbox.
type link struct {
	node   *Node
	peerID string
	t      immunity.Transport
	outbox *immunity.Queue[wire.Message]
	downCh chan struct{}
	maxV   int // highest wire version to advertise in peer-hello

	mu          sync.Mutex
	closed      bool // set by close(); a handshake that loses the race must not install its session
	sess        immunity.Session
	ackCh       chan wire.Ack
	gen         string // peer hub incarnation, from its ack
	ver         int    // negotiated wire version of the current session (0 while down)
	lastApplied uint64
	// cur is the dial attempt whose session passed the handshake; only
	// its broadcasts may advance lastApplied. An attempt the handshake
	// condemned (gen change, seq rollback) still installs what it
	// receives — an antibody is never refused — but its seqs are
	// quarantined in the attempt, not the cursor: otherwise a condemned
	// replay racing the cursor reset could fast-forward past armings
	// that were filtered against the stale seq and lose them for good.
	cur        *dialAttempt
	dials      uint64
	reconnects uint64
	applied    uint64
	duplicates uint64
	handshakes uint64

	// Per-peer registry instruments (nil without Config.Metrics; nil
	// instruments are no-ops). Updated under l.mu — lock-free atomics.
	metDials      *metrics.Counter
	metReconnects *metrics.Counter
	metConnected  *metrics.Gauge
	metApplied    *metrics.Counter
	metDuplicates *metrics.Counter
	metForwards   *metrics.Counter
}

// dialAttempt quarantines one dial's cursor advances until the
// handshake accepts the session. Guarded by link.mu.
type dialAttempt struct {
	maxSeq uint64 // highest owner seq received on this attempt's session
}

func newLink(n *Node, p Member, resumeSeq uint64, maxV int, reg *metrics.Registry) *link {
	l := &link{node: n, peerID: p.ID, t: p.Transport, lastApplied: resumeSeq,
		maxV: maxV, downCh: make(chan struct{}, 1)}
	l.metDials = reg.CounterVec("immunity_cluster_peer_dials_total",
		"Dial attempts per peer link (first dial included).", "peer").With(p.ID)
	l.metReconnects = reg.CounterVec("immunity_cluster_peer_reconnects_total",
		"Completed peer handshakes after the first.", "peer").With(p.ID)
	l.metConnected = reg.GaugeVec("immunity_cluster_peer_connected",
		"Live handshaken outbound sessions to the peer.", "peer").With(p.ID)
	l.metApplied = reg.CounterVec("immunity_cluster_applied_total",
		"Arm-broadcasts from the peer that newly armed a signature here.", "peer").With(p.ID)
	l.metDuplicates = reg.CounterVec("immunity_cluster_duplicates_total",
		"Arm-broadcast replays from the peer (cursor advances only).", "peer").With(p.ID)
	l.metForwards = reg.CounterVec("immunity_cluster_peer_forwards_total",
		"Forward-report messages delivered to the peer.", "peer").With(p.ID)
	l.outbox = immunity.NewQueue(immunity.QueueConfig[wire.Message]{
		Deliver:      l.deliver,
		RetryOnError: true,
		// Per-peer forward-outbox lag: depth is what a partition is
		// holding back, in-flight what the drain has taken.
		Depth: reg.GaugeVec("immunity_cluster_forward_pending",
			"Forward-outbox items pending (queued + in flight) per peer.", "peer").With(p.ID),
		InFlight: reg.GaugeVec("immunity_cluster_forward_inflight",
			"Forward-outbox items taken by the drain, not yet delivered.", "peer").With(p.ID),
	})
	return l
}

// deliver sends one outbox message over the current session, stamped —
// and therefore framed — at that session's negotiated version (a
// redial may land on a peer speaking a different version than the one
// the message was enqueued under); with no session (or a dead one) it
// errors, parking the outbox until the redial calls Resume.
func (l *link) deliver(m wire.Message) error {
	l.mu.Lock()
	sess := l.sess
	ver := l.ver
	l.mu.Unlock()
	if sess == nil {
		return errors.New("peer link down")
	}
	if ver == 0 {
		ver = wire.PeerVersion
	}
	m.V = ver
	if err := sess.Send(m); err != nil {
		l.down(err)
		return err
	}
	if m.Type == wire.TypeForwardReport {
		// Counted on delivery, not enqueue: the per-peer forward rate on
		// /metrics then reflects traffic that actually left, and a parked
		// outbox reads as the rate dropping to zero.
		l.metForwards.Inc()
	}
	return nil
}

// down marks the session dead and wakes the redial loop.
func (l *link) down(error) {
	select {
	case l.downCh <- struct{}{}:
	default:
	}
}

// recv handles one hub→dialer message on behalf of dial attempt att
// (transport goroutine, no link lock held while calling into the local
// hub).
func (l *link) recv(att *dialAttempt, m wire.Message) {
	switch m.Type {
	case wire.TypeAck:
		l.mu.Lock()
		ackCh := l.ackCh
		l.mu.Unlock()
		if ackCh != nil {
			select {
			case ackCh <- *m.Ack:
			default:
			}
		} else if !m.Ack.OK {
			// Unsolicited failure ack: the peer superseded or evicted this
			// session; drop it and let the redial loop sort it out.
			l.down(errors.New(m.Ack.Error))
		}
	case wire.TypeArmBroadcast:
		applied, err := l.node.hub.InstallRemote(*m.Arm)
		if err != nil {
			return // malformed broadcast: never kill the link over one frame
		}
		l.mu.Lock()
		if m.Arm.Owner == l.peerID && m.Arm.Seq > att.maxSeq {
			att.maxSeq = m.Arm.Seq
			// Only an accepted session moves the durable cursor; replay
			// that raced the handshake is merged in when dial accepts.
			if l.cur == att && att.maxSeq > l.lastApplied {
				l.lastApplied = att.maxSeq
			}
		}
		if applied {
			l.applied++
			l.metApplied.Inc()
		} else {
			l.duplicates++
			l.metDuplicates.Inc()
		}
		l.mu.Unlock()
	case wire.TypeForwardConfirm:
		l.node.hub.DeliverConfirm(m.FwdConfirm.Device, m.FwdConfirm.Confirm)
	}
}

// dial opens one session and completes the peer-hello/ack handshake.
func (l *link) dial() error {
	ackCh := make(chan wire.Ack, 1)
	att := &dialAttempt{}
	l.mu.Lock()
	l.ackCh = ackCh
	seq := l.lastApplied
	l.mu.Unlock()
	clearAck := func() {
		l.mu.Lock()
		if l.ackCh == ackCh {
			l.ackCh = nil
		}
		l.mu.Unlock()
	}

	sess, err := l.t.Dial(func(m wire.Message) { l.recv(att, m) }, l.down)
	if err != nil {
		clearAck()
		return err
	}
	// The peer-hello precedes negotiation, so it is framed at the JSON
	// ceiling — any peer version can parse it — while the advertised
	// range caps at this node's ceiling.
	hello := wire.Message{V: wire.MaxJSONVersion, Type: wire.TypePeerHello,
		PeerHello: &wire.PeerHello{Hub: l.node.self, Seq: seq, MinV: wire.PeerVersion, MaxV: l.maxV}}
	if err := sess.Send(hello); err != nil {
		clearAck()
		sess.Close()
		return err
	}
	select {
	case ack := <-ackCh:
		clearAck()
		if !ack.OK {
			// Unlike a device client, a peer never gives up for good: the
			// refusal may be a mid-rollout config gap (the peer not yet
			// clustered, an old binary) that the next redial outlives.
			sess.Close()
			return fmt.Errorf("peer %s refused: %s", l.peerID, ack.Error)
		}
		l.mu.Lock()
		genChanged := l.gen != "" && ack.Gen != l.gen
		l.gen = ack.Gen
		if genChanged || ack.Epoch < seq {
			// The peer is a new incarnation (or its arming seq rolled
			// back): our cursor is fiction and this session's replay was
			// filtered against it. Restart the subscription from zero —
			// InstallRemote dedupes the re-replay. The condemned attempt
			// is never accepted (l.cur stays off it), so broadcasts it
			// already delivered cannot fast-forward the fresh cursor past
			// armings the stale filter skipped.
			l.lastApplied = 0
			l.mu.Unlock()
			sess.Close()
			return fmt.Errorf("peer %s restarted (gen %q, seq %d vs our %d): resubscribing from 0",
				l.peerID, ack.Gen, ack.Epoch, seq)
		}
		if l.closed {
			// Node.Close raced the tail of the handshake and already tore
			// down (nil) l.sess; installing this one now would leak it —
			// and keep this node registered as a live peer on the remote
			// hub — forever.
			l.mu.Unlock()
			sess.Close()
			return errors.New("node closed")
		}
		l.sess = sess
		l.cur = att
		if l.ver = ack.V; l.ver == 0 {
			l.ver = wire.PeerVersion
		}
		// Merge replay that arrived before the handshake settled: those
		// broadcasts were filtered against the seq we sent, so on an
		// accepted session they are safe cursor advances.
		if att.maxSeq > l.lastApplied {
			l.lastApplied = att.maxSeq
		}
		if l.handshakes++; l.handshakes > 1 {
			l.reconnects++
			l.metReconnects.Inc()
		}
		l.mu.Unlock()
		l.outbox.Resume()
		return nil
	case <-time.After(helloTimeout):
		clearAck()
		sess.Close()
		return fmt.Errorf("peer %s: timed out waiting for ack", l.peerID)
	case <-l.node.closeCh:
		clearAck()
		sess.Close()
		return errors.New("node closed")
	}
}

// close tears the link down (node Close only).
func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	sess := l.sess
	l.sess = nil
	l.ver = 0
	l.cur = nil
	l.mu.Unlock()
	if sess != nil {
		sess.Close()
	}
	l.outbox.Close()
}

// runLink keeps one peer link alive until the node closes: dial with
// backoff, then wait for the session to drop and redial. The resume seq
// in each peer-hello makes every reconnect replay exactly the missed
// armings. Backoff resets only after a session survives linkMinUptime —
// a handshake completing proves nothing by itself, and resetting on
// dial success let a peer that acks and instantly drops be redialed in
// a tight 5ms loop forever.
func (n *Node) runLink(l *link) {
	defer n.wg.Done()
	backoffMin, backoffMax := 5*time.Millisecond, 2*time.Second
	backoff := backoffMin
	sleep := func() bool {
		select {
		case <-n.closeCh:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
		return true
	}
	for {
		select {
		case <-n.closeCh:
			return
		default:
		}
		// No session is live here, so any queued down event is the old
		// session's corpse twitching — drain it rather than let it tear
		// down the session we are about to dial.
		select {
		case <-l.downCh:
		default:
		}
		l.mu.Lock()
		l.dials++
		l.mu.Unlock()
		l.metDials.Inc()
		if err := l.dial(); err != nil {
			if !sleep() {
				return
			}
			continue
		}
		connectedAt := time.Now()
		l.metConnected.Add(1)
		select {
		case <-n.closeCh:
			l.metConnected.Add(-1)
			return
		case <-l.downCh:
			l.mu.Lock()
			if l.sess != nil {
				l.sess.Close()
				l.sess = nil
			}
			l.ver = 0
			l.cur = nil // a dead session's stragglers must not move the cursor
			l.mu.Unlock()
			l.metConnected.Add(-1)
		}
		if time.Since(connectedAt) >= linkMinUptime {
			backoff = backoffMin
		} else if !sleep() {
			// A session that died young counts as a failed attempt: keep
			// backing off before the redial.
			return
		}
	}
}
