package cluster

import (
	"sort"
	"sync"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Membership is the cluster's convergent membership state machine: a
// map of member infos (id, advertised address, down flag) plus an
// epoch, replicated between hubs as wire.MemberUpdate snapshots on the
// ordinary peer links. There is no consensus round and none is needed:
// the snapshots form a join-semilattice (adopt the higher epoch
// wholesale; at equal epochs take the field-wise deterministic union —
// member union by id, Down wins, the greater non-empty address wins —
// and bump), so any two hubs that keep exchanging snapshots converge
// on the same membership at the same epoch. Membership mistakes are
// safe by construction one layer up: confirmation sets merge by set
// union, arming is idempotent, and a hub arming under a stale view is
// fenced by the epoch (see the package comment's fencing rule).
//
// The epoch doubles as the fencing token: it increases on every local
// mutation (admit, mark-down, revive, leave) and on every merge that
// changed the map, so "my epoch is newer than your fence" is exactly
// "the membership has moved since you armed".
//
// Locking: Membership.mu is a leaf. Every method takes it and calls
// nothing outside this struct, so the pure binding reads
// (Epoch, MemberSnapshot) are safe under Exchange.mu.
type Membership struct {
	self     string
	selfAddr string

	mu      sync.Mutex
	leaving bool
	epoch   uint64
	members map[string]wire.MemberInfo
}

func newMembership(self, selfAddr string, seed []wire.MemberInfo) *Membership {
	ms := &Membership{
		self:     self,
		selfAddr: selfAddr,
		epoch:    1,
		members:  make(map[string]wire.MemberInfo, len(seed)+1),
	}
	for _, m := range seed {
		if m.ID != "" && m.ID != self {
			ms.members[m.ID] = m
		}
	}
	ms.members[self] = wire.MemberInfo{ID: self, Addr: selfAddr}
	return ms
}

// mergeInfo resolves one member present in both of two equal-epoch
// snapshots. Down wins (a death observation is never un-observed by a
// merge — only an explicit revive does that, at a higher epoch), and
// the greater non-empty address wins so both sides pick the same one.
func mergeInfo(a, b wire.MemberInfo) wire.MemberInfo {
	out := a
	if b.Down {
		out.Down = true
	}
	if betterAddr(b.Addr, out.Addr) {
		out.Addr = b.Addr
	}
	return out
}

// betterAddr reports whether address a should replace b in a merge:
// any address beats none, ties broken lexically (greater wins).
func betterAddr(a, b string) bool {
	if a == "" {
		return false
	}
	if b == "" {
		return true
	}
	return a > b
}

// apply merges a peer's snapshot and reports whether the member map
// changed (the caller re-rings, re-binds ownership, and rebroadcasts
// iff it did). A higher epoch is adopted wholesale; an equal epoch
// with a differing map takes the deterministic union and bumps; a
// lower epoch is ignored (the peer learns our state from our next
// broadcast or its next handshake). Whatever the peer claimed, this
// hub reasserts itself as up — a peer can never speak for us — unless
// it is deliberately leaving.
func (ms *Membership) apply(u wire.MemberUpdate) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	changed := false
	switch {
	case u.Epoch > ms.epoch:
		fresh := make(map[string]wire.MemberInfo, len(u.Members))
		for _, m := range u.Members {
			if m.ID != "" {
				fresh[m.ID] = m
			}
		}
		if !sameMembers(ms.members, fresh) {
			changed = true
		}
		ms.members = fresh
		ms.epoch = u.Epoch
	case u.Epoch == ms.epoch:
		for _, m := range u.Members {
			if m.ID == "" {
				continue
			}
			cur, ok := ms.members[m.ID]
			if !ok {
				ms.members[m.ID] = m
				changed = true
				continue
			}
			if merged := mergeInfo(cur, m); merged != cur {
				ms.members[m.ID] = merged
				changed = true
			}
		}
		if changed {
			ms.epoch++
		}
	}
	if ms.reassertSelfLocked() {
		changed = true
	}
	return changed
}

// reassertSelfLocked forces this hub into the map, up, at its own
// advertised address, bumping the epoch if anything had to change so
// the correction outranks the view that dropped or down-marked us.
func (ms *Membership) reassertSelfLocked() bool {
	if ms.leaving {
		return false
	}
	cur, ok := ms.members[ms.self]
	want := cur
	want.ID = ms.self
	want.Down = false
	if ms.selfAddr != "" {
		want.Addr = ms.selfAddr
	}
	if ok && want == cur {
		return false
	}
	ms.members[ms.self] = want
	ms.epoch++
	return true
}

func sameMembers(a, b map[string]wire.MemberInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for id, m := range a {
		if b[id] != m {
			return false
		}
	}
	return true
}

// bump applies one local mutation; if mutate reports a change, the
// epoch advances and bump returns true (the caller runs the
// re-ring/re-bind/rebroadcast pipeline).
func (ms *Membership) bump(mutate func(members map[string]wire.MemberInfo) bool) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if !mutate(ms.members) {
		return false
	}
	ms.epoch++
	return true
}

// markDown records a peer death observed by the failure detector.
// Self is never marked down this way (leave does that deliberately).
func (ms *Membership) markDown(id string) bool {
	if id == ms.self {
		return false
	}
	return ms.bump(func(members map[string]wire.MemberInfo) bool {
		cur, ok := members[id]
		if !ok || cur.Down {
			return false
		}
		cur.Down = true
		members[id] = cur
		return true
	})
}

// seen records a completed peer handshake: an unknown hub joins the
// membership, a down-marked hub is revived, and a newly learned
// address is kept. addr may be empty (an outbound handshake proves
// liveness without teaching us a new address).
func (ms *Membership) seen(id, addr string) bool {
	if id == "" || id == ms.self {
		return false
	}
	return ms.bump(func(members map[string]wire.MemberInfo) bool {
		cur, ok := members[id]
		if !ok {
			members[id] = wire.MemberInfo{ID: id, Addr: addr}
			return true
		}
		next := cur
		next.Down = false
		if betterAddr(addr, next.Addr) {
			next.Addr = addr
		}
		if next == cur {
			return false
		}
		members[id] = next
		return true
	})
}

// leave marks this hub down in its own snapshot so the survivors'
// rings exclude it; the caller's pipeline then demotes every owned
// signature and hands the slices off before the node shuts down.
func (ms *Membership) leave() bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.leaving {
		return false
	}
	ms.leaving = true
	cur := ms.members[ms.self]
	cur.ID = ms.self
	cur.Down = true
	ms.members[ms.self] = cur
	ms.epoch++
	return true
}

// count is how many members this hub has ever known — down members
// included. It is the quorum lease's denominator: down members still
// count against the majority, so a minority partition fragment that
// marks the other side down cannot vote itself a quorum, and because
// the map only grows (short of a higher-epoch wholesale adoption,
// which itself reflects a larger view), two disjoint fragments can
// never both hold one.
func (ms *Membership) count() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.members)
}

// isUp reports whether id is a known, not-down member.
func (ms *Membership) isUp(id string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	cur, ok := ms.members[id]
	return ok && !cur.Down
}

// epochNow returns the current membership epoch (the fencing token).
func (ms *Membership) epochNow() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.epoch
}

// snapshot returns the full membership at its epoch, members sorted by
// id — the wire form broadcast to peers and shown on /status.
func (ms *Membership) snapshot() wire.MemberUpdate {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := wire.MemberUpdate{Epoch: ms.epoch, Members: make([]wire.MemberInfo, 0, len(ms.members))}
	for _, m := range ms.members {
		out.Members = append(out.Members, m)
	}
	sort.Slice(out.Members, func(i, j int) bool { return out.Members[i].ID < out.Members[j].ID })
	return out
}

// live returns the not-down members (the ownership ring's domain),
// sorted by id.
func (ms *Membership) live() []wire.MemberInfo {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]wire.MemberInfo, 0, len(ms.members))
	for _, m := range ms.members {
		if !m.Down {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
