package cluster

import (
	"errors"
	"sync"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// probeConfig is the resolved failure-detection timing: every zero
// Config knob derived from FailoverAfter (see resolveProbe).
type probeConfig struct {
	enabled  bool
	interval time.Duration // one direct ping per interval, round-robin
	timeout  time.Duration // direct → indirect escalation, indirect → suspect
	suspect  time.Duration // suspicion window before mark-down
	indirect int           // proxies per indirect ping-req fan-out
	leaseTTL time.Duration
}

// resolveProbe derives the prober/lease timings from Config.
// FailoverAfter acts as the overall detection budget D: interval D/4,
// timeout D/8, suspicion D/2. Explicit Probe* knobs override, and any
// of them being set enables detection on its own (D is then
// back-derived for the remaining defaults). The lease TTL is clamped
// to timeout+suspect — the earliest a partitioned member can be
// marked down — so a deposed owner's last lease has always expired
// before its deputy may be promoted and arm.
func resolveProbe(cfg Config) probeConfig {
	d := cfg.FailoverAfter
	enabled := d > 0 || cfg.ProbeInterval > 0 || cfg.ProbeTimeout > 0 || cfg.ProbeSuspect > 0
	if !enabled {
		return probeConfig{}
	}
	if d <= 0 {
		switch {
		case cfg.ProbeInterval > 0:
			d = 4 * cfg.ProbeInterval
		case cfg.ProbeSuspect > 0:
			d = 2 * cfg.ProbeSuspect
		default:
			d = 8 * cfg.ProbeTimeout
		}
	}
	pc := probeConfig{enabled: true, interval: cfg.ProbeInterval,
		timeout: cfg.ProbeTimeout, suspect: cfg.ProbeSuspect,
		indirect: cfg.ProbeIndirect, leaseTTL: cfg.LeaseTTL}
	if pc.interval <= 0 {
		pc.interval = maxDur(d/4, 2*time.Millisecond)
	}
	if pc.timeout <= 0 {
		pc.timeout = maxDur(pc.interval/2, time.Millisecond)
	}
	if pc.suspect <= 0 {
		pc.suspect = maxDur(d/2, 2*pc.timeout)
	}
	if pc.indirect <= 0 {
		pc.indirect = 2
	}
	if pc.leaseTTL <= 0 || pc.leaseTTL > pc.timeout+pc.suspect {
		pc.leaseTTL = pc.timeout + pc.suspect
	}
	return pc
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// prober is the SWIM-style failure detector: each interval it
// direct-pings one live member (round-robin); a ping unanswered past
// the timeout escalates to indirect ping-reqs relayed through k proxy
// members, so one stalled or half-open link cannot by itself declare
// a live peer dead; a member that answers neither within another
// timeout becomes a suspect, and a suspect with no proof of life for
// the whole suspicion window is marked down (the deputy-promotion
// trigger). Any message a peer authored — ack, relayed ack, its own
// ping or lease traffic — is proof of life and clears its suspicion.
//
// Lock discipline: prober.mu is never held across sendDirect —
// loopback transports deliver synchronously, so a probe chain
// origin→proxy→target nests all three hubs' handlers on one goroutine
// stack; every handler collects under its own mu, unlocks, then sends.
type prober struct {
	n *Node
	probeConfig

	mu       sync.Mutex
	seq      uint64
	pending  map[uint64]*probe
	relays   map[uint64]relay
	suspects map[string]time.Time
	rr       int

	metProbes   *metrics.Counter
	metIndirect *metrics.Counter
	metSuspects *metrics.Counter
}

// probe is one outstanding ping awaiting its ack.
type probe struct {
	seq        uint64
	target     string
	sentAt     time.Time
	indirectAt time.Time // zero until escalated to ping-reqs
	onBehalf   bool      // a proxy probe answering another hub's ping-req
}

// relay remembers whose ping-req an onBehalf probe answers: the ack
// travels back under the origin's own seq.
type relay struct {
	origin    string
	originSeq uint64
}

func newProber(n *Node, pc probeConfig) *prober {
	p := &prober{n: n, probeConfig: pc,
		pending:  make(map[uint64]*probe),
		relays:   make(map[uint64]relay),
		suspects: make(map[string]time.Time)}
	p.metProbes = n.reg.Counter("immunity_cluster_probes_total",
		"Direct pings sent by the failure detector.")
	p.metIndirect = n.reg.Counter("immunity_cluster_probe_indirect_total",
		"Probes escalated to indirect ping-reqs through proxy members.")
	p.metSuspects = n.reg.Counter("immunity_cluster_probe_suspects_total",
		"Members entering suspicion (unreachable by direct and indirect probes).")
	return p
}

func (p *prober) run() {
	defer p.n.wg.Done()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.n.closeCh:
			return
		case <-t.C:
		}
		p.tick()
	}
}

// tick is one detector round: sweep outstanding probes (escalate
// direct timeouts, fail indirect ones into suspicion), judge suspects
// against the suspicion window, then open one new direct probe.
func (p *prober) tick() {
	now := time.Now()
	type escalation struct {
		seq    uint64
		target string
	}
	var escalate []escalation
	var failed []string
	var dead []string
	p.mu.Lock()
	for seq, pr := range p.pending {
		switch {
		case pr.onBehalf:
			if now.Sub(pr.sentAt) >= p.timeout {
				// The origin hears nothing and times out on its side.
				delete(p.pending, seq)
				delete(p.relays, seq)
			}
		case pr.indirectAt.IsZero():
			if now.Sub(pr.sentAt) >= p.timeout {
				pr.indirectAt = now
				escalate = append(escalate, escalation{seq, pr.target})
			}
		default:
			if now.Sub(pr.indirectAt) >= p.timeout {
				delete(p.pending, seq)
				failed = append(failed, pr.target)
			}
		}
	}
	p.mu.Unlock()
	for _, e := range escalate {
		p.sendIndirect(e.seq, e.target)
	}
	for _, id := range failed {
		p.suspectPeer(id)
	}
	p.mu.Lock()
	for id, since := range p.suspects {
		if now.Sub(since) >= p.suspect {
			delete(p.suspects, id)
			dead = append(dead, id)
		}
	}
	p.mu.Unlock()
	for _, id := range dead {
		if p.n.membership.markDown(id) {
			p.n.metFailovers.Inc()
			p.n.applyMembership()
		}
	}
	if target := p.nextTarget(); target != "" {
		p.probeDirect(target)
	}
}

// probeDirect opens one direct ping. A peer with no live session
// escalates to indirect immediately — other members may still reach
// it, and only their silence too may condemn it. A live legacy
// session (below wire.ProbeVersion) counts as the answer itself.
func (p *prober) probeDirect(target string) {
	p.mu.Lock()
	p.seq++
	s := p.seq
	p.pending[s] = &probe{seq: s, target: target, sentAt: time.Now()}
	p.mu.Unlock()
	p.metProbes.Inc()
	err := p.n.sendDirect(target, wire.Message{Type: wire.TypePing,
		Ping: &wire.Ping{From: p.n.self, Target: target, Seq: s}})
	switch {
	case err == nil:
		return // acked via handleAck, or swept into escalation
	case errors.Is(err, errLegacyPeer):
		p.mu.Lock()
		delete(p.pending, s)
		p.mu.Unlock()
		p.aliveProof(target)
	default:
		p.mu.Lock()
		if pr := p.pending[s]; pr != nil {
			pr.indirectAt = time.Now()
		}
		p.mu.Unlock()
		p.sendIndirect(s, target)
	}
}

// sendIndirect fans a ping-req for target out to up to k reachable
// proxy members; their relayed acks come back under seq. With no
// reachable proxy the probe simply ages into suspicion.
func (p *prober) sendIndirect(seq uint64, target string) {
	p.metIndirect.Inc()
	msg := wire.Message{Type: wire.TypePing,
		Ping: &wire.Ping{From: p.n.self, Target: target, Seq: seq}}
	sent := 0
	for _, m := range p.n.membership.live() {
		if sent >= p.indirect {
			break
		}
		if m.ID == p.n.self || m.ID == target {
			continue
		}
		if p.n.sendDirect(m.ID, msg) == nil {
			sent++
		}
	}
}

// nextTarget picks the next live member to probe, round-robin, skipping
// ones with a probe already outstanding.
func (p *prober) nextTarget() string {
	live := p.n.membership.live()
	ids := make([]string, 0, len(live))
	for _, m := range live {
		if m.ID != p.n.self {
			ids = append(ids, m.ID)
		}
	}
	if len(ids) == 0 {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for range ids {
		id := ids[p.rr%len(ids)]
		p.rr++
		outstanding := false
		for _, pr := range p.pending {
			if !pr.onBehalf && pr.target == id {
				outstanding = true
				break
			}
		}
		if !outstanding {
			return id
		}
	}
	return ""
}

// suspectPeer starts (or keeps) the suspicion clock for id; the window
// runs from the first failed probe, not the latest.
func (p *prober) suspectPeer(id string) {
	p.mu.Lock()
	if _, ok := p.suspects[id]; !ok {
		p.suspects[id] = time.Now()
		p.mu.Unlock()
		p.metSuspects.Inc()
		return
	}
	p.mu.Unlock()
}

// aliveProof clears any suspicion of id: it authored a message, so it
// is alive. Revival of a down-marked member stays handshake-driven
// (PeerSeen) — a single relayed frame does not rejoin a member.
func (p *prober) aliveProof(id string) {
	if id == "" || id == p.n.self {
		return
	}
	p.mu.Lock()
	delete(p.suspects, id)
	p.mu.Unlock()
}

// handlePing answers a direct ping (Target is us) or serves a
// ping-req: probe the target with our own seq, remember whose
// question it was, and relay the ack under the origin's seq.
func (p *prober) handlePing(pg wire.Ping) {
	p.aliveProof(pg.From)
	if pg.Target == "" || pg.Target == p.n.self {
		p.n.sendDirect(pg.From, wire.Message{Type: wire.TypePingAck,
			PingAck: &wire.PingAck{From: p.n.self, Target: p.n.self, Seq: pg.Seq, OK: true}})
		return
	}
	p.mu.Lock()
	p.seq++
	s := p.seq
	p.pending[s] = &probe{seq: s, target: pg.Target, sentAt: time.Now(), onBehalf: true}
	p.relays[s] = relay{origin: pg.From, originSeq: pg.Seq}
	p.mu.Unlock()
	err := p.n.sendDirect(pg.Target, wire.Message{Type: wire.TypePing,
		Ping: &wire.Ping{From: p.n.self, Target: pg.Target, Seq: s}})
	if err == nil {
		return // the target's ack relays via handleAck
	}
	p.mu.Lock()
	delete(p.pending, s)
	delete(p.relays, s)
	p.mu.Unlock()
	if errors.Is(err, errLegacyPeer) {
		// Our live legacy session to the target is, by the rollout
		// fiction, the target answering.
		p.aliveProof(pg.Target)
		p.n.sendDirect(pg.From, wire.Message{Type: wire.TypePingAck,
			PingAck: &wire.PingAck{From: p.n.self, Target: pg.Target, Seq: pg.Seq, OK: true}})
	}
}

// handleAck settles an outstanding probe — ours, or one we ran on a
// ping-req origin's behalf, whose answer we relay under its seq.
func (p *prober) handleAck(a wire.PingAck) {
	p.aliveProof(a.From)
	if !a.OK {
		return
	}
	p.mu.Lock()
	pr, ok := p.pending[a.Seq]
	if !ok || pr.target != a.Target {
		p.mu.Unlock()
		return
	}
	delete(p.pending, a.Seq)
	rel, isRelay := p.relays[a.Seq]
	delete(p.relays, a.Seq)
	p.mu.Unlock()
	p.aliveProof(a.Target)
	if isRelay {
		p.n.sendDirect(rel.origin, wire.Message{Type: wire.TypePingAck,
			PingAck: &wire.PingAck{From: p.n.self, Target: a.Target, Seq: rel.originSeq, OK: true}})
	}
}

// HandleProbe implements the probe/lease leg of
// immunity.ClusterBinding: the hub routes every ping/lease frame from
// a registered peer session here, outside Exchange.mu. Pings are
// always answered (even with the prober off — a peer running
// detection deserves the truth); lease grants are judged against our
// membership epoch whether or not we run a lease ourselves.
func (n *Node) HandleProbe(m wire.Message) {
	switch m.Type {
	case wire.TypePing:
		if m.Ping == nil {
			return
		}
		if n.prober != nil {
			n.prober.handlePing(*m.Ping)
		} else if m.Ping.Target == "" || m.Ping.Target == n.self {
			n.sendDirect(m.Ping.From, wire.Message{Type: wire.TypePingAck,
				PingAck: &wire.PingAck{From: n.self, Target: n.self, Seq: m.Ping.Seq, OK: true}})
		}
	case wire.TypePingAck:
		if m.PingAck == nil {
			return
		}
		if n.prober != nil {
			n.prober.handleAck(*m.PingAck)
		}
	case wire.TypeLease:
		if m.Lease == nil {
			return
		}
		if n.prober != nil {
			n.prober.aliveProof(m.Lease.From)
		}
		ok := m.Lease.Epoch >= n.membership.epochNow()
		n.sendDirect(m.Lease.From, wire.Message{Type: wire.TypeLeaseAck,
			LeaseAck: &wire.LeaseAck{From: n.self, Epoch: n.membership.epochNow(), Seq: m.Lease.Seq, OK: ok}})
	case wire.TypeLeaseAck:
		if m.LeaseAck == nil {
			return
		}
		if n.prober != nil {
			n.prober.aliveProof(m.LeaseAck.From)
		}
		if n.lease != nil {
			n.lease.ack(m.LeaseAck.From, m.LeaseAck.Seq, m.LeaseAck.OK)
		}
	}
}
