package cluster_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// switchTransport retargets loopback dials at runtime so a test can
// model a hub crash (Swap(nil): dials fail transiently, peer links keep
// redialing) and restart (Swap(newHub): the next redial lands on the
// reborn Exchange, like a TCP reconnect to a restarted daemon).
type switchTransport struct {
	hub atomic.Pointer[immunity.Exchange]
}

func (s *switchTransport) Dial(recv func(wire.Message), down func(err error)) (immunity.Session, error) {
	hub := s.hub.Load()
	if hub == nil {
		return nil, fmt.Errorf("hub is down")
	}
	sess, err := immunity.NewLoopback(hub).Dial(recv, down)
	if err != nil {
		// %v not %w: strip the loopback's permanent classification — a
		// hub behind a switch can restart.
		return nil, fmt.Errorf("dial: %v", err)
	}
	return sess, nil
}

// switchCluster federates n restartable hubs: every peer link runs
// through a switchTransport, and each hub persists to its own store so
// a restart resumes its provenance.
func switchCluster(t *testing.T, n, threshold int, failoverAfter time.Duration) (
	hubs []*immunity.Exchange, nodes []*cluster.Node,
	switches []*switchTransport, restart func(i int),
) {
	t.Helper()
	ids := hubNames(n)
	stores := make([]*immunity.MemProvenance, n)
	switches = make([]*switchTransport, n)
	for i := range switches {
		stores[i] = immunity.NewMemProvenance()
		switches[i] = &switchTransport{}
	}
	hubs = make([]*immunity.Exchange, n)
	nodes = make([]*cluster.Node, n)
	start := func(i int) {
		hub, err := immunity.NewExchange(threshold, immunity.WithProvenanceStore(stores[i]))
		if err != nil {
			t.Fatal(err)
		}
		var peers []cluster.Member
		for j := range switches {
			if j != i {
				peers = append(peers, cluster.Member{ID: ids[j], Transport: switches[j]})
			}
		}
		node, err := cluster.New(cluster.Config{
			Self: ids[i], Hub: hub, Peers: peers, FailoverAfter: failoverAfter,
		})
		if err != nil {
			t.Fatal(err)
		}
		hubs[i], nodes[i] = hub, node
		switches[i].hub.Store(hub)
	}
	for i := range hubs {
		start(i)
	}
	t.Cleanup(func() {
		for i := range nodes {
			if nodes[i] != nil {
				nodes[i].Close()
			}
			if hubs[i] != nil {
				hubs[i].Close()
			}
		}
	})
	return hubs, nodes, switches, start
}

// provenanceOf returns the hub's provenance entry for key.
func provenanceOf(hub *immunity.Exchange, key string) (immunity.Provenance, bool) {
	for _, p := range hub.Provenance() {
		if p.Key == key {
			return p, true
		}
	}
	return immunity.Provenance{}, false
}

// TestClusterOwnerFailoverDeputyArms is the chaos acceptance scenario,
// scripted: the owner of an in-flight signature is killed
// mid-confirmation (one confirmation short of threshold, the pending
// set replicated to its deputy), the deputy assumes ownership and arms
// at threshold from the inherited set, the deposed owner's stale
// arm-broadcast replay is fenced, and the restarted owner resyncs to
// the same armed state — federation equivalence with zero double-arms.
func TestClusterOwnerFailoverDeputyArms(t *testing.T) {
	hubs, nodes, switches, restart := switchCluster(t, 3, 2, 25*time.Millisecond)
	// Owner hub2, deputy hub1; devices attach to hub0, so every report
	// is forwarded and no device session dies with the victim.
	sig := sigOwnedDeputy(t, nodes[0].Ring(), "hub2", "hub1")
	key := sig.Key()
	ws := wire.FromCore(sig)

	// One confirmation: pending at the owner, replicated to the deputy.
	d1 := newPhone(t, "d1", immunity.NewLoopback(hubs[0]))
	if _, _, err := d1.svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "owner to hold the pending confirmation", func() bool {
		p, ok := provenanceOf(hubs[2], key)
		return ok && p.Confirmations == 1 && !p.Armed
	})
	waitFor(t, "deputy to hold the replica", func() bool {
		_, ok := provenanceOf(hubs[1], key)
		return ok
	})
	preEpoch := nodes[0].Epoch()

	// Crash the owner: no leave, no drain.
	switches[2].hub.Store(nil)
	nodes[2].Close()
	hubs[2].Close()
	nodes[2], hubs[2] = nil, nil
	waitFor(t, "survivors to fail the owner over to its deputy", func() bool {
		return len(nodes[0].Members()) == 2 && len(nodes[1].Members()) == 2 &&
			nodes[0].Ring().Owner(key) == "hub1"
	})

	// The second confirmation arrives while the owner is dead: only the
	// deputy's inherited set can cross the threshold.
	d2 := newPhone(t, "d2", immunity.NewLoopback(hubs[0]))
	if _, _, err := d2.svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deputy to arm at threshold from the inherited set", func() bool {
		return hubs[1].ArmedCount() == 1 && hubs[0].ArmedCount() == 1
	})
	p, ok := provenanceOf(hubs[1], key)
	if !ok || !p.Armed || p.Confirmations != 2 {
		t.Fatalf("deputy's armed entry: %+v", p)
	}
	inherited := false
	for _, dev := range p.ConfirmedBy {
		if dev == "d1" {
			inherited = true
		}
	}
	if !inherited {
		t.Fatalf("deputy armed without the replicated confirmation: confirmedBy=%v", p.ConfirmedBy)
	}

	// The deposed owner replays its arm-broadcast stamped with the
	// pre-failover epoch: fenced — refused, not counted, no seq state.
	_, err := hubs[0].InstallRemote(wire.ArmBroadcast{
		Owner: "hub2", Seq: 9, Confirmations: 2, Sig: ws, Fence: preEpoch,
	})
	if !errors.Is(err, immunity.ErrFenced) {
		t.Fatalf("stale owner's replay: err=%v, want ErrFenced", err)
	}
	if got := hubs[0].Stats().Fenced; got != 1 {
		t.Fatalf("fenced count = %d, want 1", got)
	}
	if seq := hubs[0].RemoteSeqs()["hub2"]; seq != 0 {
		t.Fatalf("fenced replay advanced hub2's resume seq to %d", seq)
	}

	// Restart the owner over its own store: it rejoins, takes the key
	// back by handoff, and converges to the same armed state.
	restart(2)
	waitFor(t, "the restarted owner to rejoin and resync", func() bool {
		for _, n := range nodes {
			if len(n.Members()) != 3 {
				return false
			}
		}
		return hubs[2].ArmedCount() == 1
	})
	for i, hub := range hubs {
		if got := hub.ArmedCount(); got != 1 {
			t.Fatalf("hub%d armed count = %d, want 1", i, got)
		}
		if st := hub.Stats(); st.Epoch != 1 {
			t.Fatalf("hub%d delta epoch = %d, want 1 (double-arm)", i, st.Epoch)
		}
	}
	// And both devices hold the antibody.
	waitFor(t, "devices to hold the armed signature", func() bool {
		return d1.holds(key) && d2.holds(key)
	})
}
