package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/auth"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
)

// tenantCluster federates n hubs that all require token auth under one
// fleet key and apply the given per-tenant confirm thresholds.
func tenantCluster(t *testing.T, n, threshold int, key []byte, tenantThresholds map[string]int) ([]*immunity.Exchange, []*cluster.Node) {
	t.Helper()
	ids := hubNames(n)
	hubs := make([]*immunity.Exchange, n)
	for i := range hubs {
		opts := []immunity.ExchangeOption{immunity.WithAuthVerifier(auth.NewStatic(key))}
		for tenant, th := range tenantThresholds {
			opts = append(opts, immunity.WithTenantThreshold(tenant, th))
		}
		hub, err := immunity.NewExchange(threshold, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(hub.Close)
		hubs[i] = hub
	}
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		var peers []cluster.Member
		for j := range hubs {
			if j != i {
				peers = append(peers, cluster.Member{ID: ids[j], Transport: immunity.NewLoopback(hubs[j])})
			}
		}
		node, err := cluster.New(cluster.Config{Self: ids[i], Hub: hubs[i], Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		nodes[i] = node
	}
	return hubs, nodes
}

// tenantPhone connects a device whose token scopes it into a tenant.
func tenantPhone(t *testing.T, name, tenant string, key []byte, tr immunity.Transport) *phone {
	t.Helper()
	token, err := auth.Mint(key, auth.Claims{Tenant: tenant, Device: name})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := immunity.NewService(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := immunity.Connect(tr, name, svc, immunity.WithClientToken(token))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); svc.Close() })
	return &phone{svc: svc, client: client}
}

// TestClusterTenantIsolation: two tenants share a 3-hub cluster. Each
// tenant's confirmations only count toward its own threshold (alpha at
// the default 2, beta raised to 3), an arming only reaches the tenant
// that earned it, and every hub's provenance keeps the tenants' records
// disjoint — the same signature armed by alpha stays invisible to beta.
func TestClusterTenantIsolation(t *testing.T) {
	key := []byte("tenant-cluster-key")
	hubs, _ := tenantCluster(t, 3, 2, key, map[string]int{"beta": 3})

	// Three alpha phones and four beta phones, spread across the hubs so
	// confirmations route through owner-forwarding with tenant-prefixed
	// keys. The last phone of each tenant never publishes: a publisher's
	// own service holds the signature locally, so only a pure observer
	// proves an arming was (or was not) pushed to it.
	alpha := make([]*phone, 3)
	for i := range alpha {
		alpha[i] = tenantPhone(t, fmt.Sprintf("alpha-phone%d", i), "alpha", key,
			immunity.NewLoopback(hubs[i%len(hubs)]))
	}
	beta := make([]*phone, 4)
	for i := range beta {
		beta[i] = tenantPhone(t, fmt.Sprintf("beta-phone%d", i), "beta", key,
			immunity.NewLoopback(hubs[i%len(hubs)]))
	}
	alphaObserver, betaObserver := alpha[2], beta[3]
	sig := testSig(0)
	sigKey := sig.Key()

	// Alpha reaches its threshold of 2: alpha arms, beta must not see it.
	for _, p := range alpha[:2] {
		if _, _, err := p.svc.Publish("local", sig); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "alpha observer armed", func() bool { return alphaObserver.holds(sigKey) })
	time.Sleep(20 * time.Millisecond)
	if betaObserver.holds(sigKey) || beta[2].holds(sigKey) {
		t.Fatal("beta devices received alpha's arming")
	}

	// Two beta confirmations sit below beta's raised threshold of 3 even
	// though the same signature is already armed for alpha.
	for _, p := range beta[:2] {
		if _, _, err := p.svc.Publish("local", sig); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "beta confirmations recorded", func() bool {
		for _, hub := range hubs {
			for _, ts := range hub.Status().Tenants {
				if ts.Tenant == "beta" && ts.Sigs == 1 {
					return true
				}
			}
		}
		return false
	})
	time.Sleep(20 * time.Millisecond)
	if beta[2].holds(sigKey) || betaObserver.holds(sigKey) {
		t.Fatal("beta armed below beta's threshold of 3")
	}

	// The third beta confirmation arms beta — for beta's phones only.
	if _, _, err := beta[2].svc.Publish("local", sig); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "beta observer armed at threshold 3", func() bool { return betaObserver.holds(sigKey) })

	// Provenance stays disjoint per tenant on every hub that holds the
	// owned records: the alpha record was confirmed only by alpha
	// devices, the beta record only by beta devices, and the per-tenant
	// status views carry each tenant's own threshold.
	waitFor(t, "both tenants' records armed", func() bool {
		armed := map[string]bool{}
		for _, hub := range hubs {
			for _, rec := range hub.Provenance() {
				if rec.Armed {
					armed[rec.Tenant] = true
				}
			}
		}
		return armed["alpha"] && armed["beta"]
	})
	for hi, hub := range hubs {
		for _, rec := range hub.Provenance() {
			want := rec.Tenant + "-phone"
			for _, dev := range rec.ConfirmedBy {
				if len(dev) < len(want) || dev[:len(want)] != want {
					t.Fatalf("hub%d: tenant %q record confirmed by %q", hi, rec.Tenant, dev)
				}
			}
		}
		for _, ts := range hub.Status().Tenants {
			switch ts.Tenant {
			case "alpha":
				if ts.Threshold != 2 {
					t.Fatalf("hub%d: alpha threshold = %d, want the default 2", hi, ts.Threshold)
				}
			case "beta":
				if ts.Threshold != 3 {
					t.Fatalf("hub%d: beta threshold = %d, want the per-tenant 3", hi, ts.Threshold)
				}
			}
		}
	}
}
