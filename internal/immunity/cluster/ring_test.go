package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingOwnerDeterministic: every node, whatever order it lists the
// membership in, picks the same owner for the same key — the property
// that lets ownership need no coordination.
func TestRingOwnerDeterministic(t *testing.T) {
	a, err := NewRing("hub-a", "hub-b", "hub-c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing("hub-c", "hub-a", "hub-b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sig-key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs by member order: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance: rendezvous hashing spreads ownership roughly evenly;
// a pathological skew would concentrate the cluster's bookkeeping on
// one hub and defeat the partitioning.
func TestRingBalance(t *testing.T) {
	r, err := NewRing("hub-a", "hub-b", "hub-c", "hub-d")
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("com.app.Cls.method:%d;com.app.Other.m:%d", i, i*7))]++
	}
	want := keys / r.Size()
	for _, m := range r.Members() {
		got := counts[m]
		if got < want/2 || got > want*2 {
			t.Errorf("member %s owns %d of %d keys (expected near %d)", m, got, keys, want)
		}
	}
}

// TestRingStabilityUnderGrowth: adding a member moves only the keys the
// new member wins — existing keys never shuffle between old members.
func TestRingStabilityUnderGrowth(t *testing.T) {
	old, err := NewRing("hub-a", "hub-b", "hub-c")
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing("hub-a", "hub-b", "hub-c", "hub-d")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sig-%d", i)
		was, is := old.Owner(key), grown.Owner(key)
		if was != is {
			moved++
			if is != "hub-d" {
				t.Fatalf("key %q moved between existing members: %q -> %q", key, was, is)
			}
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("growth moved %d of %d keys (expected near %d)", moved, keys, keys/4)
	}
}

// TestRingRejectsBadMembership: empty, duplicate, and blank ids fail.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing("a", "a"); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing("a", ""); err == nil {
		t.Error("blank member accepted")
	}
	r, err := NewRing("only")
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner("anything") != "only" {
		t.Error("single-member ring does not own everything")
	}
}

// TestRingDeputyPromotion: the deputy is exactly the member the ring
// elects when the owner is removed — the rendezvous property the whole
// failover design rests on (the hub holding the replicated
// confirmation set is the hub that takes over).
func TestRingDeputyPromotion(t *testing.T) {
	members := []string{"hub-a", "hub-b", "hub-c", "hub-d", "hub-e"}
	r, err := NewRing(members...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("sig-%d", i)
		owner, deputy := r.Owner(key), r.Deputy(key)
		if deputy == owner || deputy == "" {
			t.Fatalf("key %q: deputy %q invalid (owner %q)", key, deputy, owner)
		}
		var survivors []string
		for _, m := range members {
			if m != owner {
				survivors = append(survivors, m)
			}
		}
		shrunk, err := NewRing(survivors...)
		if err != nil {
			t.Fatal(err)
		}
		if got := shrunk.Owner(key); got != deputy {
			t.Fatalf("key %q: removing owner %q promotes %q, but deputy was %q", key, owner, got, deputy)
		}
	}
	one, err := NewRing("solo")
	if err != nil {
		t.Fatal(err)
	}
	if one.Deputy("anything") != "" {
		t.Error("single-member ring has a deputy")
	}
}

// TestRingChurnBounds is the property test behind "membership changes
// are cheap": over random member sets, removing one member reassigns
// only that member's keys (every one of them to its deputy), and
// adding one member moves only the keys the newcomer wins. Seeded
// generator — the cases are random but reproducible.
func TestRingChurnBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("hub-%d-%d", trial, rng.Intn(1_000_000))
		}
		r, err := NewRing(members...)
		if err != nil {
			trial-- // random collision on ids: redraw
			continue
		}
		members = r.Members()

		// Leave: drop a random member; its keys go to its deputy, every
		// other key keeps its owner.
		leaver := members[rng.Intn(len(members))]
		var rest []string
		for _, m := range members {
			if m != leaver {
				rest = append(rest, m)
			}
		}
		shrunk, err := NewRing(rest...)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 200; k++ {
			key := fmt.Sprintf("key-%d-%d", trial, k)
			was, is := r.Owner(key), shrunk.Owner(key)
			if was == leaver {
				if dep := r.Deputy(key); is != dep {
					t.Fatalf("trial %d: leaver %q's key %q went to %q, want deputy %q", trial, leaver, key, is, dep)
				}
			} else if was != is {
				t.Fatalf("trial %d: key %q not owned by leaver moved %q -> %q", trial, key, was, is)
			}
		}

		// Join: add a fresh member; only keys the newcomer wins move.
		joiner := fmt.Sprintf("hub-join-%d", trial)
		grown, err := NewRing(append(append([]string{}, members...), joiner)...)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 200; k++ {
			key := fmt.Sprintf("key-%d-%d", trial, k)
			was, is := r.Owner(key), grown.Owner(key)
			if was != is && is != joiner {
				t.Fatalf("trial %d: join of %q moved key %q between old members %q -> %q", trial, joiner, key, was, is)
			}
		}
	}
}
