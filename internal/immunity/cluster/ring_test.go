package cluster

import (
	"fmt"
	"testing"
)

// TestRingOwnerDeterministic: every node, whatever order it lists the
// membership in, picks the same owner for the same key — the property
// that lets ownership need no coordination.
func TestRingOwnerDeterministic(t *testing.T) {
	a, err := NewRing("hub-a", "hub-b", "hub-c")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing("hub-c", "hub-a", "hub-b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sig-key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs by member order: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance: rendezvous hashing spreads ownership roughly evenly;
// a pathological skew would concentrate the cluster's bookkeeping on
// one hub and defeat the partitioning.
func TestRingBalance(t *testing.T) {
	r, err := NewRing("hub-a", "hub-b", "hub-c", "hub-d")
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("com.app.Cls.method:%d;com.app.Other.m:%d", i, i*7))]++
	}
	want := keys / r.Size()
	for _, m := range r.Members() {
		got := counts[m]
		if got < want/2 || got > want*2 {
			t.Errorf("member %s owns %d of %d keys (expected near %d)", m, got, keys, want)
		}
	}
}

// TestRingStabilityUnderGrowth: adding a member moves only the keys the
// new member wins — existing keys never shuffle between old members.
func TestRingStabilityUnderGrowth(t *testing.T) {
	old, err := NewRing("hub-a", "hub-b", "hub-c")
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing("hub-a", "hub-b", "hub-c", "hub-d")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sig-%d", i)
		was, is := old.Owner(key), grown.Owner(key)
		if was != is {
			moved++
			if is != "hub-d" {
				t.Fatalf("key %q moved between existing members: %q -> %q", key, was, is)
			}
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("growth moved %d of %d keys (expected near %d)", moved, keys, keys/4)
	}
}

// TestRingRejectsBadMembership: empty, duplicate, and blank ids fail.
func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing("a", "a"); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing("a", ""); err == nil {
		t.Error("blank member accepted")
	}
	r, err := NewRing("only")
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner("anything") != "only" {
		t.Error("single-member ring does not own everything")
	}
}
