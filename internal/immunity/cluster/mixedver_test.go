package cluster_test

import (
	"testing"

	"github.com/dimmunix/dimmunix/internal/immunity"
	"github.com/dimmunix/dimmunix/internal/immunity/cluster"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// TestClusterMixedVersionPeers models a staged v3 rollout: one hub of a
// two-hub federation is pinned to the v2 JSON codec (hub ceiling +
// link ceiling), the other runs the newest version. Forwarding to a
// v2-pinned owner, its arm-broadcast back over the v2 link, and the
// v3 hub's own broadcasts toward the pinned peer must all interoperate
// — the device tiers on both ends see identical armings.
func TestClusterMixedVersionPeers(t *testing.T) {
	newHub, err := immunity.NewExchange(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(newHub.Close)
	oldHub, err := immunity.NewExchange(1, immunity.WithWireCeiling(wire.PeerVersion))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(oldHub.Close)

	newNode, err := cluster.New(cluster.Config{Self: "hub-new", Hub: newHub,
		Peers: []cluster.Member{{ID: "hub-old", Transport: immunity.NewLoopback(oldHub)}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(newNode.Close)
	oldNode, err := cluster.New(cluster.Config{Self: "hub-old", Hub: oldHub,
		Peers:       []cluster.Member{{ID: "hub-new", Transport: immunity.NewLoopback(newHub)}},
		WireCeiling: wire.PeerVersion})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(oldNode.Close)

	// A device on the v3 hub reports a signature owned by the pinned
	// hub: the report forwards over a v2 JSON link, the owner arms, and
	// the arm-broadcast returns over v2 — then fans out to the v3 hub's
	// devices on its own (binary-capable) sessions.
	phoneNew := newPhone(t, "phone-new", immunity.NewLoopback(newHub))
	phoneOld := newPhone(t, "phone-old", immunity.NewLoopback(oldHub))
	oldOwned := sigOwnedBy(t, newNode.Ring(), "hub-old")
	if _, _, err := phoneNew.svc.Publish("local", oldOwned); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "forwarded report armed at the v2-pinned owner", func() bool {
		return oldHub.ArmedCount() == 1 && newHub.ArmedCount() == 1
	})
	waitFor(t, "both device tiers hold the arming", func() bool {
		return phoneNew.holds(oldOwned.Key()) && phoneOld.holds(oldOwned.Key())
	})

	// And the reverse: a signature owned by the v3 hub, reported on the
	// pinned hub, crosses the other way.
	newOwned := sigOwnedBy(t, newNode.Ring(), "hub-new")
	if _, _, err := phoneOld.svc.Publish("local", newOwned); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reverse forwarding armed cluster-wide", func() bool {
		return oldHub.ArmedCount() == 2 && newHub.ArmedCount() == 2
	})
	waitFor(t, "both device tiers hold the second arming", func() bool {
		return phoneNew.holds(newOwned.Key()) && phoneOld.holds(newOwned.Key())
	})
}
