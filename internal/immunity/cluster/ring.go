package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is the cluster's ownership function: a rendezvous (highest
// random weight) hash over the member hub ids. Every hub evaluates the
// same pure function over the same membership, so ownership needs no
// coordination, no token ranges, and no state — and when a member is
// added, only the keys whose highest-weight hub changed move (1/n of
// the space on average), which is the property that makes growing the
// cluster cheap.
type Ring struct {
	members []string // sorted, unique
}

// NewRing builds a ring over the given member ids (order-insensitive;
// at least one, no duplicates, no empties).
func NewRing(members ...string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster ring: no members")
	}
	sorted := append([]string{}, members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster ring: empty member id")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster ring: duplicate member id %q", m)
		}
	}
	return &Ring{members: sorted}, nil
}

// Members returns the membership, sorted.
func (r *Ring) Members() []string {
	return append([]string{}, r.members...)
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// score is the rendezvous weight of (member, key).
func score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0}) // separator: ("ab","c") must not collide with ("a","bc")
	h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the member owning key: the highest rendezvous score,
// ties broken by member id so every hub picks the same winner.
func (r *Ring) Owner(key string) string {
	best := r.members[0]
	bestScore := score(best, key)
	for _, m := range r.members[1:] {
		if s := score(m, key); s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Deputy returns the second-highest scorer for key ("" on a one-member
// ring), with the same tie-break as Owner. The deputy is the key's
// failover target: by the rendezvous property, removing the owner from
// the membership promotes exactly the deputy —
// NewRing(members − owner).Owner(key) == Deputy(key) — so the hub that
// holds the replicated confirmation set is precisely the hub the ring
// elects when the owner dies.
func (r *Ring) Deputy(key string) string {
	if len(r.members) < 2 {
		return ""
	}
	better := func(m string, s uint64, thanM string, thanS uint64) bool {
		return s > thanS || (s == thanS && m < thanM)
	}
	var best, second string
	var bestScore, secondScore uint64
	for _, m := range r.members {
		s := score(m, key)
		switch {
		case best == "" || better(m, s, best, bestScore):
			second, secondScore = best, bestScore
			best, bestScore = m, s
		case second == "" || better(m, s, second, secondScore):
			second, secondScore = m, s
		}
	}
	return second
}
