package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/metrics"
	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// leaseManager runs the quorum lease that gates fresh arming decisions
// (see the package comment's trust chain). It renews in rounds: every
// TTL/3 it opens a new round, asks every live peer for a grant
// (wire.TypeLease, answered by wire.TypeLeaseAck), and holds the lease
// for one TTL from the round's start once a strict majority has
// granted. The majority is counted over every member this hub has ever
// known — down members included — so a minority partition fragment can
// never assemble one: it marks the other side down, stops hearing
// acks, and its lease expires within one TTL, at which point the hub
// parks fresh arming (Exchange.LeaseChanged(false)) until the healed
// cluster grants the lease back.
//
// Grant rule (the receive side lives in Node.HandleProbe): a granter
// acks a requester only when the requester's membership epoch is at
// least its own — a returning stale owner must merge the
// partition-era membership before it may arm again. There is no
// per-granter exclusivity: the lease proves connectivity to a
// majority, not uniqueness; uniqueness of arming per key is the
// ring's job, and the lease's job is to keep only one partition side
// able to exercise it.
//
// Legacy peers (live session below wire.ProbeVersion) cannot ack; they
// count as granting while their session is live, trading the guarantee
// for availability during a staged rollout.
type leaseManager struct {
	n   *Node
	ttl time.Duration

	// held is read lock-free by MayArm on every arming decision.
	held atomic.Bool

	mu         sync.Mutex
	round      uint64
	roundStart time.Time
	acks       map[string]bool
	// prevAcks/prevStart keep the previous round countable: a grant
	// that crossed the wire slower than one renewal tick still proves
	// a majority as of that round's solicit time (see ack).
	prevAcks  map[string]bool
	prevStart time.Time
	expiry    time.Time

	acquired atomic.Uint64
	lost     atomic.Uint64

	metHeld     *metrics.Gauge
	metAcquired *metrics.Counter
	metLost     *metrics.Counter
	metRefused  *metrics.Counter
}

func newLeaseManager(n *Node, ttl time.Duration) *leaseManager {
	lm := &leaseManager{n: n, ttl: ttl}
	lm.metHeld = n.reg.Gauge("immunity_cluster_lease_held",
		"1 while this hub holds the quorum lease that permits fresh arming decisions.")
	lm.metAcquired = n.reg.Counter("immunity_cluster_lease_acquired_total",
		"Quorum-lease acquisitions (first grant and every re-acquisition after a loss).")
	lm.metLost = n.reg.Counter("immunity_cluster_lease_lost_total",
		"Quorum-lease expiries: the hub lost its majority (minority partition side) and parked fresh arming.")
	lm.metRefused = n.reg.Counter("immunity_cluster_lease_refused_total",
		"Lease grants refused by peers (requester's membership epoch behind the granter's).")
	return lm
}

// run renews the lease until the node closes. Three renewal rounds fit
// in one TTL, so a single dropped round never loses a held lease; and
// because ack counts the previous round too, only rounds whose grants
// never arrive at all (a real cut) burn down the TTL.
func (lm *leaseManager) run() {
	defer lm.n.wg.Done()
	tick := lm.ttl / 3
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	lm.renew() // first round immediately: a solo or all-granting cluster arms without waiting a tick
	for {
		select {
		case <-lm.n.closeCh:
			return
		case <-t.C:
		}
		lm.renew()
	}
}

// renew expires an overdue lease, opens a new round, and solicits
// grants from every live peer. Sends happen with no lease lock held —
// a loopback peer's ack nests synchronously back into ack().
func (lm *leaseManager) renew() {
	now := time.Now()
	lm.mu.Lock()
	lostNow := lm.held.Load() && now.After(lm.expiry)
	if lostNow {
		lm.held.Store(false)
	}
	lm.round++
	round := lm.round
	lm.prevAcks, lm.prevStart = lm.acks, lm.roundStart
	lm.roundStart = now
	lm.acks = make(map[string]bool)
	lm.mu.Unlock()
	if lostNow {
		lm.lost.Add(1)
		lm.metLost.Inc()
		lm.metHeld.Set(0)
		lm.n.hub.LeaseChanged(false)
	}
	msg := wire.Message{Type: wire.TypeLease,
		Lease: &wire.Lease{From: lm.n.self, Epoch: lm.n.membership.epochNow(), Seq: round}}
	var legacy []string
	for _, m := range lm.n.membership.live() {
		if m.ID == lm.n.self {
			continue
		}
		if err := lm.n.sendDirect(m.ID, msg); errors.Is(err, errLegacyPeer) {
			legacy = append(legacy, m.ID)
		}
	}
	for _, id := range legacy {
		lm.ack(id, round, true)
	}
	// A single-member cluster (or one whose grants all arrived
	// synchronously over loopback) is its own majority: evaluate even
	// with zero acks this call.
	lm.ack("", round, true)
}

// ack records one grant (or refusal) for round seq and, when the
// strict majority over all known members is reached, extends — or
// newly acquires — the lease. Grants for the immediately previous
// round still count: an ack slower than one renewal tick proves a
// majority as of that round's solicit time, so the lease extends from
// there instead of the evidence being discarded — without this, three
// consecutive slow (not lost) rounds cost a held lease under load.
// Safety is unchanged: a true minority fragment receives no acks at
// all, and any extension is bounded by solicit time + TTL.
func (lm *leaseManager) ack(from string, seq uint64, ok bool) {
	if !ok {
		lm.metRefused.Inc()
		return
	}
	lm.mu.Lock()
	var acks map[string]bool
	var start time.Time
	switch seq {
	case lm.round:
		acks, start = lm.acks, lm.roundStart
	case lm.round - 1:
		acks, start = lm.prevAcks, lm.prevStart
	}
	if acks == nil {
		lm.mu.Unlock()
		return // older than the previous round: must not extend the lease
	}
	if from != "" {
		acks[from] = true
	}
	grants := 1 + len(acks) // self always grants
	acquired := false
	if grants > lm.n.membership.count()/2 {
		// Max-merge: a late previous-round majority must not retract an
		// expiry the current round already established.
		if exp := start.Add(lm.ttl); exp.After(lm.expiry) {
			lm.expiry = exp
		}
		if !lm.held.Load() {
			lm.held.Store(true)
			acquired = true
		}
	}
	lm.mu.Unlock()
	if acquired {
		lm.acquired.Add(1)
		lm.metAcquired.Inc()
		lm.metHeld.Set(1)
		lm.n.hub.LeaseChanged(true)
	}
}

// MayArm implements the arming gate of immunity.ClusterBinding: with
// no lease configured (failure detection off, or Config.NoLease) every
// fresh arming decision is allowed — the pre-lease behavior — else
// only while the quorum lease is held. Pure (one atomic load): called
// under Exchange.mu on every threshold crossing.
func (n *Node) MayArm() bool {
	return n.lease == nil || n.lease.held.Load()
}

// LeaseStats reports the quorum lease's state: whether it is held now
// and how many times it was acquired and lost. With no lease
// configured, held is true (arming is never gated) and the counts are
// zero.
func (n *Node) LeaseStats() (held bool, acquired, lost uint64) {
	if n.lease == nil {
		return true, 0, 0
	}
	return n.lease.held.Load(), n.lease.acquired.Load(), n.lease.lost.Load()
}
