package cluster

import (
	"time"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// Failure detection lives in probe.go: the SWIM-style prober marks a
// member down only after direct and indirect probes through other
// members fail for the whole suspicion window, then drives the
// applyMembership pipeline below — the deputy-promotion trigger.

// applyMembership is the single pipeline behind every membership
// change (merge, admit, revive, mark-down, leave). Strictly ordered:
//
//  1. rebuild the live ring and publish it atomically — from here on
//     Owns/OwnerOf answer under the new membership;
//  2. ensure an outbound link to every live member we can reach (a
//     joiner learned from a handshake or a member-update gets dialed
//     here);
//  3. broadcast the membership snapshot on every link (dropped at
//     delivery for peers below wire.MembershipVersion);
//  4. re-bind ownership in the hub — promote this hub's gained keys
//     (arming any replica already at threshold), demote its lost ones;
//  5. enqueue the demoted slices as handoff messages to their new
//     owners.
//
// Membership first, local promotion second, handoff enqueue last:
// a report racing the pipeline is either forwarded under the old ring
// (the old owner demotes and hands the confirmation off) or the new
// one (the new owner merges it by set union) — both converge.
// Serialized by applyMu so two triggers cannot interleave their
// re-bind and handoff phases.
func (n *Node) applyMembership() {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()

	live := n.membership.live()
	ids := make([]string, 0, len(live))
	for _, m := range live {
		ids = append(ids, m.ID)
	}
	if len(ids) == 0 {
		// A leaving sole member: nothing to hand off to, keep self so
		// the ring stays total.
		ids = []string{n.self}
	}
	ring, err := NewRing(ids...)
	if err != nil {
		return // unreachable: live() yields unique non-empty ids
	}
	n.ring.Store(ring)
	snap := n.membership.snapshot()
	n.metEpoch.Set(int64(snap.Epoch))

	n.ensureLinks(live)
	n.broadcast(wire.Message{Type: wire.TypeMemberUpdate, Member: &snap})

	handoffs := n.hub.RebindOwnership()
	for owner, recs := range handoffs {
		l := n.linkFor(owner)
		if l == nil {
			continue // unreachable new owner: the records stay local as shadow replicas
		}
		n.metHandoffs.Add(uint64(len(recs)))
		l.outbox.Enqueue(wire.Message{Type: wire.TypeHandoff,
			Handoff: &wire.Handoff{From: n.self, Records: recs}})
	}
}

// Leave removes this hub from the cluster gracefully: it marks itself
// down at a bumped epoch, broadcasts the new membership, demotes every
// owned signature, hands the slices off to their new owners, and
// waits (bounded) for the outboxes to drain. The node is still
// running afterwards — typically Close follows.
func (n *Node) Leave() {
	if !n.membership.leave() {
		return
	}
	n.applyMembership()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n.pendingOutbox() == 0 {
			return
		}
		select {
		case <-n.closeCh:
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// pendingOutbox sums the queued messages across all peer links.
func (n *Node) pendingOutbox() int {
	n.linksMu.Lock()
	defer n.linksMu.Unlock()
	total := 0
	for _, l := range n.links {
		total += l.outbox.Pending()
	}
	return total
}
