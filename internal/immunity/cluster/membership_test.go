package cluster

import (
	"testing"

	"github.com/dimmunix/dimmunix/internal/immunity/wire"
)

// TestMembershipMergeConverges: two members that exchange snapshots in
// both directions — whatever the interleaving — end with identical
// member maps, because the equal-epoch merge is a deterministic union.
func TestMembershipMergeConverges(t *testing.T) {
	a := newMembership("a", "addr-a", []wire.MemberInfo{{ID: "b", Addr: "addr-b"}})
	b := newMembership("b", "addr-b", []wire.MemberInfo{{ID: "a", Addr: "addr-a"}})

	// Diverge: a admits c, b marks d... b admits d.
	a.seen("c", "addr-c")
	b.seen("d", "addr-d")

	// Exchange until quiescent (bounded — convergence must not need
	// more than a few rounds).
	for i := 0; i < 10; i++ {
		ca := a.apply(b.snapshot())
		cb := b.apply(a.snapshot())
		if !ca && !cb {
			break
		}
	}
	sa, sb := a.snapshot(), b.snapshot()
	if len(sa.Members) != 4 || len(sb.Members) != 4 {
		t.Fatalf("merged sizes: a=%d b=%d, want 4 each (%v / %v)", len(sa.Members), len(sb.Members), sa, sb)
	}
	for i := range sa.Members {
		if sa.Members[i] != sb.Members[i] {
			t.Fatalf("diverged after merge:\n  a: %v\n  b: %v", sa.Members, sb.Members)
		}
	}
}

// TestMembershipHigherEpochAdoptedWholesale: a snapshot at a higher
// epoch replaces the local map (including down flags), and a lower
// epoch is ignored.
func TestMembershipHigherEpochAdoptedWholesale(t *testing.T) {
	m := newMembership("a", "", []wire.MemberInfo{{ID: "b"}, {ID: "c"}})
	if !m.apply(wire.MemberUpdate{Epoch: 9, Members: []wire.MemberInfo{
		{ID: "a"}, {ID: "b", Down: true}, {ID: "c"},
	}}) {
		t.Fatal("higher-epoch snapshot reported no change")
	}
	if m.isUp("b") {
		t.Fatal("down flag not adopted from higher epoch")
	}
	if m.epochNow() != 9 {
		t.Fatalf("epoch = %d, want 9", m.epochNow())
	}
	if m.apply(wire.MemberUpdate{Epoch: 3, Members: []wire.MemberInfo{{ID: "b"}}}) {
		t.Fatal("stale snapshot applied")
	}
	if !m.isUp("a") || m.epochNow() != 9 {
		t.Fatal("stale snapshot mutated state")
	}
}

// TestMembershipReassertsSelf: no snapshot can down-mark or evict the
// local hub — the correction bumps the epoch so it outranks the view
// that dropped us. (A peer's failure detector may genuinely have seen
// us partitioned; when the partition heals, our reassertion plus the
// handshake revival win.)
func TestMembershipReassertsSelf(t *testing.T) {
	m := newMembership("a", "addr-a", nil)
	if !m.apply(wire.MemberUpdate{Epoch: 5, Members: []wire.MemberInfo{
		{ID: "a", Addr: "addr-a", Down: true}, {ID: "b"},
	}}) {
		t.Fatal("no change reported")
	}
	if !m.isUp("a") {
		t.Fatal("self stayed down-marked")
	}
	if m.epochNow() <= 5 {
		t.Fatalf("epoch = %d, want > 5 (reassertion must outrank the down-mark)", m.epochNow())
	}

	// But a leaving hub stays down: leave is deliberate.
	if !m.leave() {
		t.Fatal("leave reported no change")
	}
	m.apply(wire.MemberUpdate{Epoch: m.epochNow(), Members: []wire.MemberInfo{{ID: "a"}}})
	for _, mi := range m.snapshot().Members {
		if mi.ID == "a" && !mi.Down {
			t.Fatal("leaving hub reasserted itself up")
		}
	}
}

// TestMembershipDownWinsAtEqualEpoch: merging equal-epoch snapshots, a
// death observation survives the union (only an explicit revive at a
// later epoch undoes it), and the merge bumps the epoch so the merged
// view outranks both inputs.
func TestMembershipDownWinsAtEqualEpoch(t *testing.T) {
	m := newMembership("a", "", []wire.MemberInfo{{ID: "b"}, {ID: "c"}})
	e := m.epochNow()
	if !m.apply(wire.MemberUpdate{Epoch: e, Members: []wire.MemberInfo{{ID: "c", Down: true}}}) {
		t.Fatal("no change reported")
	}
	if m.isUp("c") {
		t.Fatal("down did not win the merge")
	}
	if m.epochNow() != e+1 {
		t.Fatalf("epoch = %d, want %d", m.epochNow(), e+1)
	}

	// seen revives at a fresh epoch and keeps the better address.
	if !m.seen("c", "addr-c") {
		t.Fatal("revive reported no change")
	}
	if !m.isUp("c") {
		t.Fatal("handshake did not revive the member")
	}
	for _, mi := range m.snapshot().Members {
		if mi.ID == "c" && mi.Addr != "addr-c" {
			t.Fatalf("revive lost the learned address: %+v", mi)
		}
	}
}

// TestMembershipLiveExcludesDown: the ring's domain is the not-down
// members only.
func TestMembershipLiveExcludesDown(t *testing.T) {
	m := newMembership("a", "", []wire.MemberInfo{{ID: "b"}, {ID: "c"}})
	if !m.markDown("b") {
		t.Fatal("markDown reported no change")
	}
	if m.markDown("b") {
		t.Fatal("second markDown reported a change")
	}
	if m.markDown("a") {
		t.Fatal("markDown downed self")
	}
	live := m.live()
	if len(live) != 2 || live[0].ID != "a" || live[1].ID != "c" {
		t.Fatalf("live = %v, want [a c]", live)
	}
}
