package immunity

import (
	"fmt"
	"sync"
	"testing"

	"github.com/dimmunix/dimmunix/internal/core"
)

// TestStressPublishSubscribeHotInstall is the -race gate for the
// propagation tier: concurrent publishers (detections on many devices),
// subscriber churn (processes starting and dying mid-publish), and
// hot-installs into cores carrying live lock traffic, all at once.
func TestStressPublishSubscribeHotInstall(t *testing.T) {
	const (
		devices  = 3
		procs    = 3 // stable processes per device
		sigsEach = 24
		churners = 2 // processes that subscribe/unsubscribe in a loop
	)
	hub := newTestHub(t, 2)
	lb := NewLoopback(hub)

	type phone struct {
		svc   *Service
		cores []*core.Core
	}
	phones := make([]*phone, devices)
	for d := range phones {
		svc, err := NewService(fmt.Sprintf("phone%d", d), core.NewMemHistory())
		if err != nil {
			t.Fatal(err)
		}
		ph := &phone{svc: svc}
		for p := 0; p < procs; p++ {
			c, _ := attach(t, svc, fmt.Sprintf("proc%d", p))
			ph.cores = append(ph.cores, c)
		}
		client, err := Connect(lb, svc.Name(), svc)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close(); svc.Close() })
		phones[d] = ph
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Lock traffic: every stable core runs goroutines hammering locks at
	// positions that signatures will name mid-run, exercising the
	// fast→slow flip under hot-install.
	for _, ph := range phones {
		for _, c := range ph.cores {
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(c *core.Core, g int) {
					defer wg.Done()
					tn := c.NewThreadNode(fmt.Sprintf("traffic%d", g), nil)
					ln := c.NewLockNode(fmt.Sprintf("lock%d", g))
					pos, err := c.Intern(core.CallStack{{Class: "com.app.Svc1", Method: "methodA", Line: 10 + g*100}})
					if err != nil {
						return
					}
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := c.Request(tn, ln, pos); err != nil {
							return
						}
						c.Acquired(tn, ln)
						c.Release(tn, ln)
					}
				}(c, g)
			}
		}
	}

	// Subscriber churn against device 0's service.
	for ch := 0; ch < churners; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := core.New(core.WithStore(phones[0].svc))
				if err != nil {
					return
				}
				cancel := phones[0].svc.Subscribe(fmt.Sprintf("churn%d-%d", ch, i), 0, func(_ uint64, sigs []*core.Signature) {
					for _, sig := range sigs {
						_, _, _ = c.InstallSignature(sig)
					}
				})
				cancel()
				c.Close()
			}
		}(ch)
	}

	// Publishers: every device publishes the same sigsEach bugs (so the
	// hub sees cross-device confirmations) plus device-unique ones.
	var pubWG sync.WaitGroup
	for d, ph := range phones {
		pubWG.Add(1)
		go func(d int, ph *phone) {
			defer pubWG.Done()
			for i := 0; i < sigsEach; i++ {
				if _, _, err := ph.svc.Publish("local", testSig(i)); err != nil {
					t.Errorf("publish shared: %v", err)
				}
				if _, _, err := ph.svc.Publish("local", testSig(1000+d*100+i)); err != nil {
					t.Errorf("publish unique: %v", err)
				}
			}
		}(d, ph)
	}
	pubWG.Wait()

	// Convergence: every stable core eventually holds all shared sigs
	// (locally published on its own device) and, via the hub, the armed
	// shared set; unique sigs stay below threshold and must NOT cross
	// devices.
	for d, ph := range phones {
		for pi, c := range ph.cores {
			cc := c
			waitFor(t, fmt.Sprintf("phone%d proc%d converged", d, pi), func() bool {
				return cc.HistorySize() >= sigsEach+sigsEach // shared + own device's unique
			})
		}
	}
	close(stop)
	wg.Wait()

	// Gating invariant: unique signatures (one confirming device each)
	// must not have crossed devices.
	for d, ph := range phones {
		for od := range phones {
			if od == d {
				continue
			}
			foreign := testSig(1000 + od*100).Key()
			for _, info := range ph.cores[0].History() {
				sig := &core.Signature{Kind: info.Kind, Pairs: info.Pairs}
				if sig.Key() == foreign {
					t.Fatalf("phone%d armed phone%d's unconfirmed signature", d, od)
				}
			}
		}
	}
	// Provenance sanity: shared sigs armed with `devices` confirmations.
	armed := 0
	for _, prov := range hub.Provenance() {
		if prov.Armed {
			armed++
			if prov.Confirmations < 2 {
				t.Fatalf("armed below threshold: %+v", prov)
			}
		}
	}
	if armed != sigsEach {
		t.Errorf("armed %d fleet signatures, want %d", armed, sigsEach)
	}
}
